// Package grad implements reverse-mode differentiation over SPMD
// computations, including the collective transposition rules that
// underpin the paper's backward-pass claims (§2.2): the adjoint of an
// AllGather is a ReduceScatter on the same axis and groups, and vice
// versa — which is exactly why "the AllGathers will become
// ReduceScatters" during back-propagation and both decomposition kinds
// appear in a training step.
//
// The supported operation set covers what the partitioned layer
// builders emit in forward passes: einsums, element-wise arithmetic,
// data movement (copy/reshape/transpose/concat/slice), and the
// collectives. Gradients are appended to the same computation, so the
// overlap pipeline can subsequently decompose the backward collectives
// it produced.
package grad

import (
	"fmt"
	"strings"

	"overlap/internal/hlo"
	"overlap/internal/tensor"
)

// Append differentiates root with respect to each instruction in wrt,
// seeding the root's cotangent with seed (same shape as root; pass a
// ones-like parameter or the loss gradient). The backward instructions
// are appended to c, and the returned map gives the gradient
// instruction for every wrt entry. Instructions that root does not
// depend on get a zero gradient.
func Append(c *hlo.Computation, root, seed *hlo.Instruction, wrt []*hlo.Instruction) (map[*hlo.Instruction]*hlo.Instruction, error) {
	if !sameShape(root.Shape, seed.Shape) {
		return nil, fmt.Errorf("grad: seed shape %v does not match root %v", seed.Shape, root.Shape)
	}

	// Restrict to the instructions root transitively depends on. The
	// walk is iterative with an explicit stack: backward graphs are as
	// deep as the forward program is long, and a recursive walk over a
	// many-thousand-instruction chain would grow the goroutine stack
	// without bound.
	reachable := map[*hlo.Instruction]bool{root: true}
	stack := []*hlo.Instruction{root}
	for len(stack) > 0 {
		in := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, op := range in.Operands {
			if !reachable[op] {
				reachable[op] = true
				stack = append(stack, op)
			}
		}
	}

	// cotangents accumulates partial adjoints per instruction.
	cotangents := map[*hlo.Instruction][]*hlo.Instruction{root: {seed}}
	total := func(in *hlo.Instruction) *hlo.Instruction {
		parts := cotangents[in]
		if len(parts) == 0 {
			return c.Zeros("", in.Shape)
		}
		acc := parts[0]
		for _, p := range parts[1:] {
			acc = c.Add(acc, p)
		}
		return acc
	}

	// Process in reverse schedule order so every instruction's cotangent
	// is complete before it propagates to its operands.
	instrs := c.Instructions()
	for i := len(instrs) - 1; i >= 0; i-- {
		in := instrs[i]
		if !reachable[in] || len(cotangents[in]) == 0 {
			continue
		}
		if in.Op == hlo.OpParameter || in.Op == hlo.OpConstant || in.Op == hlo.OpZero {
			continue
		}
		dy := total(in)
		cotangents[in] = []*hlo.Instruction{dy}
		adjs, err := adjoints(c, in, dy)
		if err != nil {
			return nil, err
		}
		for idx, adj := range adjs {
			if adj == nil {
				continue
			}
			op := in.Operands[idx]
			cotangents[op] = append(cotangents[op], adj)
		}
	}

	out := make(map[*hlo.Instruction]*hlo.Instruction, len(wrt))
	for _, w := range wrt {
		out[w] = total(w)
	}
	return out, nil
}

// adjoints returns the cotangent contribution for each operand of in,
// given in's cotangent dy. A nil entry means no contribution (e.g. the
// start half of an async pair).
func adjoints(c *hlo.Computation, in, dy *hlo.Instruction) ([]*hlo.Instruction, error) {
	switch in.Op {
	case hlo.OpAdd:
		return []*hlo.Instruction{dy, dy}, nil

	case hlo.OpCopy:
		return []*hlo.Instruction{dy}, nil

	case hlo.OpReshape:
		return []*hlo.Instruction{c.Reshape(dy, in.Operands[0].Shape...)}, nil

	case hlo.OpTranspose:
		inv := make([]int, len(in.Perm))
		for i, p := range in.Perm {
			inv[p] = i
		}
		return []*hlo.Instruction{c.Transpose(dy, inv...)}, nil

	case hlo.OpEinsum:
		return einsumAdjoints(c, in, dy)

	case hlo.OpConcat:
		out := make([]*hlo.Instruction, len(in.Operands))
		offset := 0
		for i, op := range in.Operands {
			starts := make([]int, len(in.Shape))
			limits := append([]int(nil), in.Shape...)
			starts[in.Axis] = offset
			limits[in.Axis] = offset + op.Shape[in.Axis]
			out[i] = c.Slice(dy, starts, limits)
			offset += op.Shape[in.Axis]
		}
		return out, nil

	case hlo.OpSlice:
		low := append([]int(nil), in.Starts...)
		high := make([]int, len(in.Shape))
		for d := range high {
			high[d] = in.Operands[0].Shape[d] - in.Limits[d]
		}
		return []*hlo.Instruction{c.Pad(dy, low, high, 0)}, nil

	case hlo.OpAllGather:
		// Adjoint of gather-and-concatenate is reduce-and-scatter: each
		// device keeps the summed cotangent of the shard it contributed.
		return []*hlo.Instruction{c.ReduceScatter(dy, in.CollectiveAxis, in.Groups)}, nil

	case hlo.OpReduceScatter:
		// Adjoint of reduce-and-scatter is gather: every contribution
		// receives the cotangent of the shard it was reduced into.
		return []*hlo.Instruction{c.AllGather(dy, in.CollectiveAxis, in.Groups)}, nil

	case hlo.OpAllReduce:
		// Summing over the group is self-adjoint.
		return []*hlo.Instruction{c.AllReduce(dy, in.Groups)}, nil

	case hlo.OpCollectivePermute:
		// The adjoint permutation reverses every source→target pair.
		rev := make([]hlo.SourceTargetPair, len(in.Pairs))
		for i, p := range in.Pairs {
			rev[i] = hlo.SourceTargetPair{Source: p.Target, Target: p.Source}
		}
		return []*hlo.Instruction{c.CollectivePermute(dy, rev)}, nil

	case hlo.OpTuple:
		return nil, fmt.Errorf("grad: differentiate a tuple operand, not the tuple")

	default:
		return nil, fmt.Errorf("grad: no adjoint rule for %s (%s)", in.Op, in.Name)
	}
}

// einsumAdjoints derives the two operand adjoints of a two-operand
// einsum by the standard transpose rule: dA = einsum(out,B -> A) and
// dB = einsum(out,A -> B). Every label of an operand must appear in the
// output or the other operand (true of matmul-like specs; a label
// summed away from a single operand would need a broadcast rule).
func einsumAdjoints(c *hlo.Computation, in, dy *hlo.Instruction) ([]*hlo.Instruction, error) {
	spec, err := tensor.ParseEinsum(in.EinsumSpec)
	if err != nil {
		return nil, err
	}
	if len(spec.Inputs) != 2 {
		return nil, fmt.Errorf("grad: einsum %s is not two-operand", in.Name)
	}
	mk := func(side int) (*hlo.Instruction, error) {
		self, other := spec.Inputs[side], spec.Inputs[1-side]
		for i := 0; i < len(self); i++ {
			l := self[i]
			if !strings.ContainsRune(spec.Output, rune(l)) && !strings.ContainsRune(other, rune(l)) {
				return nil, fmt.Errorf("grad: einsum %s sums label %q away from one operand", in.Name, l)
			}
		}
		adjSpec := spec.Output + "," + other + "->" + self
		return c.Einsum(adjSpec, dy, in.Operands[1-side]), nil
	}
	dA, err := mk(0)
	if err != nil {
		return nil, err
	}
	dB, err := mk(1)
	if err != nil {
		return nil, err
	}
	return []*hlo.Instruction{dA, dB}, nil
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
