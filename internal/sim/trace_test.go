package sim

import (
	"encoding/json"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/machine"
)

func traceSite() *hlo.Computation {
	c := hlo.NewComputation("trace")
	buf := c.Parameter(0, "buf", []int{1 << 20})
	a := c.Parameter(1, "a", []int{1024, 1024})
	b := c.Parameter(2, "b", []int{1024, 1024})
	start := c.CollectivePermuteStart(buf, []hlo.SourceTargetPair{{Source: 0, Target: 1}, {Source: 1, Target: 0}})
	ein := c.Einsum("mk,kn->mn", a, b)
	_ = ein
	done := c.CollectivePermuteDone(start)
	c.AllGather(done, 0, [][]int{{0, 1}})
	return c
}

func TestSimulateTraceEvents(t *testing.T) {
	spec := machine.TPUv4()
	bd, events, err := SimulateTrace(traceSite(), 2, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	cats := map[string]int{}
	for _, e := range events {
		cats[e.Cat]++
		if e.Dur <= 0 || e.TS < 0 {
			t.Fatalf("degenerate event %+v", e)
		}
		if e.PID < 0 || e.PID >= 2 {
			t.Fatalf("event on unknown device %+v", e)
		}
		if e.Ph != "X" {
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	for _, want := range []string{"compute", "transfer", "collective"} {
		if cats[want] == 0 {
			t.Errorf("no %q events recorded (got %v)", want, cats)
		}
	}
	// The breakdown must match the plain simulation.
	plain, err := Simulate(traceSite(), 2, spec)
	if err != nil {
		t.Fatal(err)
	}
	if plain.StepTime != bd.StepTime {
		t.Fatalf("tracing changed the simulation: %v vs %v", bd.StepTime, plain.StepTime)
	}
}

func TestTraceJSONWellFormed(t *testing.T) {
	_, events, err := SimulateTrace(traceSite(), 2, machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := TraceJSON(events)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if len(decoded.TraceEvents) != len(events) {
		t.Fatalf("lost events in JSON: %d vs %d", len(decoded.TraceEvents), len(events))
	}
}

func TestTraceDeviceWindow(t *testing.T) {
	// The recording window is deliberately part of the trace contract:
	// consumers (and the concurrent runtime, which emits on the same
	// tracks) rely on devices >= 8 being dropped, not merged.
	if TraceMaxDevices != 8 {
		t.Fatalf("TraceMaxDevices = %d, the documented window is 8", TraceMaxDevices)
	}
	c := hlo.NewComputation("many")
	a := c.Parameter(0, "a", []int{128, 128})
	c.Einsum("mk,kn->mn", a, a)
	const devices = 32
	bd, events, err := SimulateTrace(c, devices, machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, e := range events {
		if e.PID >= TraceMaxDevices {
			t.Fatalf("event recorded for device %d beyond the window", e.PID)
		}
		seen[e.PID]++
	}
	// Every device inside the window is recorded; the einsum runs on
	// all 32 devices, so a missing pid would mean the window truncated
	// the wrong end.
	for d := 0; d < TraceMaxDevices; d++ {
		if seen[d] == 0 {
			t.Fatalf("no events for in-window device %d (got pids %v)", d, seen)
		}
	}
	// Dropping events must not perturb the simulation itself: the
	// breakdown still averages over all 32 devices.
	plain, err := Simulate(c, devices, machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	if plain.StepTime != bd.StepTime || plain.Compute != bd.Compute {
		t.Fatalf("truncation changed the simulation: %+v vs %+v", bd, plain)
	}
}
