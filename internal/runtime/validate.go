package runtime

import (
	"overlap/internal/hlo"
	"overlap/internal/tensor"
)

// validate preflights a run so that device goroutines cannot deadlock on
// malformed programs: every blocking collective must be joinable by all
// of its devices, every posted transfer must have exactly one reader,
// and loops must be shaped the way the interpreter expects. Programs
// produced by internal/core satisfy all of this; the checks exist so
// hand-built or fuzzed programs fail fast with an error instead of
// hanging the goroutine fleet.
func validate(c *hlo.Computation, numDevices int, args [][]*tensor.Tensor, opts Options) error {
	if numDevices <= 0 {
		return formatErr("need at least one device")
	}
	if opts.TimeScale > 0 {
		if err := opts.Spec.Validate(); err != nil {
			return err
		}
	}
	if _, err := ParseTransport(string(opts.Transport)); err != nil {
		return err
	}
	if opts.KernelSplitK < 0 || opts.KernelSplitK > 64 {
		return formatErr("kernel split-K %d out of range [0,64]", opts.KernelSplitK)
	}
	params := c.Parameters()
	if len(args) != len(params) {
		return formatErr("computation %s has %d parameters, got %d arguments", c.Name, len(params), len(args))
	}
	for _, p := range params {
		set := args[p.ParamIndex]
		if len(set) != 1 && len(set) != numDevices {
			return formatErr("parameter %d has %d values, want 1 or %d", p.ParamIndex, len(set), numDevices)
		}
		for _, v := range set {
			if !sameShape(v.Shape(), p.Shape) {
				return formatErr("parameter %d value shape %v, declared %v", p.ParamIndex, v.Shape(), p.Shape)
			}
		}
	}
	return validateSeq(c, numDevices, false)
}

func validateSeq(c *hlo.Computation, n int, inLoop bool) error {
	for _, in := range c.Instructions() {
		switch in.Op {
		case hlo.OpAllGather, hlo.OpReduceScatter, hlo.OpAllReduce, hlo.OpAllToAll:
			if err := validateGroups(in, n); err != nil {
				return err
			}

		case hlo.OpCollectivePermute:
			if err := validatePairs(in, n); err != nil {
				return err
			}

		case hlo.OpCollectivePermuteStart:
			if err := validatePairs(in, n); err != nil {
				return err
			}
			dones := 0
			var done *hlo.Instruction
			for _, u := range in.Users() {
				if u.Op == hlo.OpCollectivePermuteDone {
					dones++
					done = u
				}
			}
			if dones != 1 {
				return formatErr("%s has %d done users, want exactly 1", in.Name, dones)
			}
			if !samePairs(in.Pairs, done.Pairs) {
				return formatErr("%s and %s disagree on permute pairs", in.Name, done.Name)
			}
			if c.Find(done.Name) != done {
				return formatErr("%s completes in a different sequence than %s", done.Name, in.Name)
			}

		case hlo.OpCollectivePermuteDone:
			if len(in.Operands) != 1 || in.Operands[0].Op != hlo.OpCollectivePermuteStart {
				return formatErr("%s does not complete a collective-permute-start", in.Name)
			}

		case hlo.OpLoop:
			if inLoop {
				return formatErr("nested loop %s unsupported", in.Name)
			}
			if in.Body == nil || in.TripCount < 0 {
				return formatErr("loop %s is malformed", in.Name)
			}
			root := in.Body.Root()
			if root == nil || root.Op != hlo.OpTuple || len(root.Operands) != len(in.Operands) {
				return formatErr("loop %s body root must be a tuple of the %d carried values", in.Name, len(in.Operands))
			}
			if in.ResultIndex < 0 || in.ResultIndex >= len(in.Operands) {
				return formatErr("loop %s result index %d out of range", in.Name, in.ResultIndex)
			}
			for _, p := range in.Body.Parameters() {
				if p.ParamIndex < 0 || p.ParamIndex >= len(in.Operands) {
					return formatErr("loop %s body parameter %s index %d out of range", in.Name, p.Name, p.ParamIndex)
				}
			}
			if err := validateSeq(in.Body, n, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateGroups checks that every device joins exactly one group of a
// blocking group collective — otherwise its rendezvous would wait
// forever for a device that never arrives.
func validateGroups(in *hlo.Instruction, n int) error {
	seen := make([]bool, n)
	for _, g := range in.Groups {
		for _, d := range g {
			if d < 0 || d >= n {
				return formatErr("%s group device %d out of range [0,%d)", in.Name, d, n)
			}
			if seen[d] {
				return formatErr("%s lists device %d in two groups", in.Name, d)
			}
			seen[d] = true
		}
	}
	for d, ok := range seen {
		if !ok {
			return formatErr("device %d does not participate in %s", d, in.Name)
		}
	}
	return nil
}

// validatePairs checks a permute's source-target pairs: devices in
// range, no source sending twice, no target receiving twice — the
// uniqueness that lets one mailbox slot per transfer instance suffice.
func validatePairs(in *hlo.Instruction, n int) error {
	srcSeen := make([]bool, n)
	dstSeen := make([]bool, n)
	for _, p := range in.Pairs {
		if p.Source < 0 || p.Source >= n || p.Target < 0 || p.Target >= n {
			return formatErr("%s pair %d->%d out of range [0,%d)", in.Name, p.Source, p.Target, n)
		}
		if srcSeen[p.Source] {
			return formatErr("%s source %d sends twice", in.Name, p.Source)
		}
		if dstSeen[p.Target] {
			return formatErr("%s target %d receives twice", in.Name, p.Target)
		}
		srcSeen[p.Source] = true
		dstSeen[p.Target] = true
	}
	return nil
}

func samePairs(a, b []hlo.SourceTargetPair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
