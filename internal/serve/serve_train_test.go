package serve

import (
	"testing"
)

func trainRequest(strategy string) Request {
	return Request{
		Model: "GPT_32B", Devices: 4, Dim: 2,
		Scenario: "train", Strategy: strategy, Check: true,
	}
}

// TestTrainScenarioServes pins the training-step serving contract: the
// first train request compiles a plan for the fwd+bwd+update program,
// identical requests hit the cache with zero compilation, and the
// served digests stay bit-identical and interpreter-checked. The two
// strategies fingerprint as distinct scenarios.
func TestTrainScenarioServes(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	c0 := svCompiles.Value()
	first, _, _, err := postRun(ts, trainRequest("ddp"))
	if err != nil {
		t.Fatal(err)
	}
	if first.Plan != "miss" {
		t.Fatalf("cold train request plan = %q, want miss", first.Plan)
	}
	if !first.Checked || first.Digest == "" {
		t.Fatalf("train run not checked or missing digest: %+v", first)
	}
	compiles := svCompiles.Value() - c0
	if compiles == 0 {
		t.Fatal("cold train request did not compile")
	}

	warm, _, _, err := postRun(ts, trainRequest("ddp"))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Plan != "hit" {
		t.Fatalf("warm train request plan = %q, want hit", warm.Plan)
	}
	if warm.Fingerprint != first.Fingerprint || warm.Digest != first.Digest {
		t.Fatalf("warm train response diverges: %+v vs %+v", warm, first)
	}
	if got := svCompiles.Value() - c0; got != compiles {
		t.Fatalf("warm train request compiled (%v -> %v)", compiles, got)
	}

	mega, _, _, err := postRun(ts, trainRequest("megatron"))
	if err != nil {
		t.Fatal(err)
	}
	if mega.Fingerprint == first.Fingerprint {
		t.Fatal("megatron and ddp training programs share a fingerprint")
	}
}

// TestTrainScenarioValidation: unknown scenarios and strategies, and
// inline HLO under the train scenario, are caller errors.
func TestTrainScenarioValidation(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	req := trainRequest("ddp")
	req.Scenario = "finetune"
	if _, status, _, _ := postRun(ts, req); status != 400 {
		t.Fatalf("unknown scenario: status %d, want 400", status)
	}

	req = trainRequest("adam")
	if _, status, _, _ := postRun(ts, req); status != 400 {
		t.Fatalf("unknown strategy: status %d, want 400", status)
	}

	req = trainRequest("ddp")
	req.Model, req.Program = "", "invalid"
	if _, status, _, _ := postRun(ts, req); status != 400 {
		t.Fatalf("train scenario with inline program: status %d, want 400", status)
	}
}
