// Package models defines the evaluated workloads of the paper — the six
// production models of Table 1 and the weak-scaled GPT family of Table 2
// — and builds their per-layer SPMD training-step graphs with the
// partitioning strategies of §2.2 (2D for the large dense models, 1D for
// BigSSL, mixture-of-experts dispatch for GLaM).
package models

import (
	"fmt"

	"overlap/internal/topology"
)

// Arch selects the layer architecture family.
type Arch int

const (
	// ArchDense is a decoder-only dense transformer (GPT, Meena) or
	// encoder (MLPerf BERT).
	ArchDense Arch = iota
	// ArchEncDec is a text-to-text encoder-decoder (T5); its backward
	// pass carries extra AllToAll relayouts (§6.1).
	ArchEncDec
	// ArchMoE is a sparsely activated mixture-of-experts model (GLaM).
	ArchMoE
	// ArchSpeech is a 1D-partitioned speech encoder (BigSSL).
	ArchSpeech
)

func (a Arch) String() string {
	switch a {
	case ArchDense:
		return "dense"
	case ArchEncDec:
		return "enc-dec"
	case ArchMoE:
		return "moe"
	default:
		return "speech"
	}
}

// Config is one evaluated model: the Table 1 / Table 2 hyperparameters
// plus the mesh layout used to partition it.
type Config struct {
	Name string
	Arch Arch

	// ParamsB is the reported parameter count in billions.
	ParamsB float64
	// Layers, ModelDim, FFDim, Batch and Chips are the Table 1/2 rows.
	Layers   int
	ModelDim int
	FFDim    int
	Batch    int
	Chips    int

	// SeqLen is the training sequence length (not given in the tables;
	// chosen per model family).
	SeqLen int
	// HeadDim is the per-head attention dimension.
	HeadDim int

	// MeshX and MeshY are the model-parallel mesh extents (x is the
	// slow, first axis). For 1D-partitioned models MeshY is the
	// model-parallel ring and MeshX the data-parallel extent.
	MeshX, MeshY int

	// Experts is the expert count for ArchMoE.
	Experts int
	// ExtraAllToAll adds per-layer activation-sized AllToAll relayouts
	// (the T5 backward collectives §6.1 attributes ~10% of runtime to).
	ExtraAllToAll int
}

// Mesh returns the model's logical device mesh.
func (c Config) Mesh() *topology.Mesh {
	return topology.NewTorus2D(c.MeshX, c.MeshY)
}

// Tokens returns the global token count of one batch.
func (c Config) Tokens() int { return c.Batch * c.SeqLen }

// Heads returns the attention head count.
func (c Config) Heads() int { return c.ModelDim / c.HeadDim }

// Validate checks divisibility constraints of the partitioning.
func (c Config) Validate() error {
	type check struct {
		what string
		val  int
		by   int
	}
	checks := []check{
		{"model dim by mesh x", c.ModelDim, c.MeshX},
		{"model dim by mesh y", c.ModelDim, c.MeshY},
		{"ff dim by mesh x", c.FFDim, c.MeshX},
		{"tokens by mesh y", c.Tokens(), c.MeshY},
		{"heads by mesh x", c.Heads(), c.MeshX},
		{"model dim by head dim", c.ModelDim, c.HeadDim},
	}
	if c.Arch == ArchSpeech {
		// 1D partitioning: the model ring is the y axis, data
		// parallelism the x axis.
		checks = []check{
			{"model dim by ring", c.ModelDim, c.MeshY},
			{"ff dim by ring", c.FFDim, c.MeshY},
			{"tokens by dp", c.Tokens(), c.MeshX},
			{"heads by ring", c.Heads(), c.MeshY},
		}
	}
	if c.Arch == ArchMoE {
		checks = append(checks,
			check{"experts by mesh y", c.Experts, c.MeshY},
			check{"tokens by mesh y squared (dispatch relayout)", c.Tokens(), c.MeshY * c.MeshY})
	}
	if c.ExtraAllToAll > 0 {
		checks = append(checks, check{"tokens by mesh y squared (relayout)", c.Tokens(), c.MeshY * c.MeshY})
	}
	for _, ch := range checks {
		if ch.by == 0 || ch.val%ch.by != 0 {
			return fmt.Errorf("models: %s: %s (%d %% %d != 0)", c.Name, ch.what, ch.val, ch.by)
		}
	}
	if c.MeshX*c.MeshY > c.Chips {
		return fmt.Errorf("models: %s: mesh %dx%d exceeds %d chips", c.Name, c.MeshX, c.MeshY, c.Chips)
	}
	return nil
}

// Table1 returns the six evaluated applications of Table 1.
func Table1() []Config {
	return []Config{
		{
			Name: "GPT_1T", Arch: ArchDense, ParamsB: 1030,
			Layers: 142, ModelDim: 24576, FFDim: 98304,
			Batch: 4096, SeqLen: 2048, HeadDim: 128,
			Chips: 2048, MeshX: 16, MeshY: 128,
		},
		{
			Name: "Meena_500B", Arch: ArchDense, ParamsB: 507,
			Layers: 120, ModelDim: 18432, FFDim: 65536,
			Batch: 2048, SeqLen: 2048, HeadDim: 128,
			Chips: 1024, MeshX: 16, MeshY: 64,
		},
		{
			Name: "MLPerf_200B", Arch: ArchDense, ParamsB: 199,
			Layers: 66, ModelDim: 12288, FFDim: 98304,
			Batch: 4096, SeqLen: 512, HeadDim: 128,
			Chips: 1024, MeshX: 16, MeshY: 64,
		},
		{
			Name: "T5_300B", Arch: ArchEncDec, ParamsB: 290,
			Layers: 64, ModelDim: 12288, FFDim: 36864,
			Batch: 3072, SeqLen: 512, HeadDim: 128,
			Chips: 512, MeshX: 8, MeshY: 64,
			ExtraAllToAll: 2,
		},
		{
			Name: "GLaM_1T", Arch: ArchMoE, ParamsB: 1160,
			Layers: 32, ModelDim: 8192, FFDim: 32768,
			Batch: 1024, SeqLen: 1024, HeadDim: 128,
			Chips: 1024, MeshX: 16, MeshY: 64,
			Experts: 64,
		},
		{
			Name: "BigSSL_10B", Arch: ArchSpeech, ParamsB: 10.4,
			Layers: 48, ModelDim: 3072, FFDim: 12288,
			Batch: 64, SeqLen: 512, HeadDim: 128,
			Chips: 128, MeshX: 16, MeshY: 8,
		},
	}
}

// Table2 returns the weak-scaled GPT family of Table 2.
func Table2() []Config {
	base := func(name string, paramsB float64, layers, d, f, batch, chips, mx, my int) Config {
		return Config{
			Name: name, Arch: ArchDense, ParamsB: paramsB,
			Layers: layers, ModelDim: d, FFDim: f,
			Batch: batch, SeqLen: 2048, HeadDim: 128,
			Chips: chips, MeshX: mx, MeshY: my,
		}
	}
	return []Config{
		base("GPT_32B", 32.2, 40, 8192, 32768, 512, 64, 4, 16),
		base("GPT_64B", 64.2, 51, 10240, 40960, 512, 128, 8, 16),
		base("GPT_128B", 128.6, 71, 12288, 49152, 1024, 256, 8, 32),
		base("GPT_256B", 257.7, 80, 16384, 65536, 2048, 512, 16, 32),
		base("GPT_512B", 513.4, 102, 20480, 81920, 3072, 1024, 16, 64),
		base("GPT_1T", 1030, 142, 24576, 98304, 4096, 2048, 16, 128),
	}
}

// ByName returns the Table 1 or Table 2 config with the given name.
func ByName(name string) (Config, error) {
	for _, c := range append(Table1(), Table2()...) {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("models: unknown model %q", name)
}
