package partition

import (
	"fmt"

	"overlap/internal/hlo"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// Value is a sharded tensor in a partitioned program: the per-device HLO
// instruction that holds its local shard, the logical (global) shape,
// the sharding, and the set of mesh axes over which the local values are
// still un-reduced partial sums.
type Value struct {
	Instr    *hlo.Instruction
	Logical  []int
	Sharding Sharding
	Partial  []int // mesh axes pending reduction
}

// IsPartial reports whether the value awaits a cross-device reduction.
func (v *Value) IsPartial() bool { return len(v.Partial) > 0 }

// Builder lowers a sharding-annotated layer description into a
// per-device SPMD computation, inserting the collectives the
// partitioning strategy requires.
type Builder struct {
	Mesh *topology.Mesh
	Comp *hlo.Computation

	nextParam int
}

// NewBuilder returns a builder emitting into a fresh computation with
// the given name.
func NewBuilder(name string, mesh *topology.Mesh) *Builder {
	return &Builder{Mesh: mesh, Comp: hlo.NewComputation(name)}
}

// Parameter declares a sharded input. The HLO parameter carries the
// local (per-device) shape.
func (b *Builder) Parameter(name string, logical []int, s Sharding) *Value {
	if err := s.Validate(logical, b.Mesh); err != nil {
		panic(err)
	}
	local := s.ShardShape(logical, b.Mesh)
	in := b.Comp.Parameter(b.nextParam, name, local)
	b.nextParam++
	return &Value{Instr: in, Logical: append([]int(nil), logical...), Sharding: s}
}

// AllGather unshards dimension dim of v by gathering along its mesh
// axis: the inserted subgroup AllGather is exactly the collective the
// overlap pass later decomposes.
func (b *Builder) AllGather(v *Value, dim int) *Value {
	axis := v.Sharding.DimAxis(dim)
	if axis == Replicated {
		panic(fmt.Sprintf("partition: AllGather on replicated dim %d of %s", dim, v.Instr.Name))
	}
	if v.IsPartial() {
		panic(fmt.Sprintf("partition: AllGather on partial value %s; reduce first", v.Instr.Name))
	}
	groups := b.Mesh.AxisGroups(axis)
	out := b.Comp.AllGather(v.Instr, dim, groups)
	return &Value{Instr: out, Logical: v.Logical, Sharding: v.Sharding.WithDim(dim, Replicated)}
}

// Einsum lowers a logical einsum onto the local shards, propagating the
// operand shardings to the output:
//
//   - an output label sharded in an operand stays sharded on that axis;
//   - a contracted label sharded in BOTH operands on the same axis makes
//     the output a partial sum over that axis (to be resolved by
//     ReduceScatter or AllReduce);
//   - a contracted label sharded in only one operand is an error — the
//     caller must AllGather it first, which is precisely the structure
//     the paper's partitioning strategies produce.
func (b *Builder) Einsum(spec string, lhs, rhs *Value) *Value {
	parsed, err := tensor.ParseEinsum(spec)
	if err != nil {
		panic(err)
	}
	if len(parsed.Inputs) != 2 {
		panic(fmt.Sprintf("partition: einsum %q must have two operands", spec))
	}
	if lhs.IsPartial() || rhs.IsPartial() {
		panic(fmt.Sprintf("partition: einsum %q over partial operand; reduce first", spec))
	}

	// Label → mesh axis for each operand.
	labelAxis := func(v *Value, labels string) map[byte]int {
		m := map[byte]int{}
		for i := 0; i < len(labels); i++ {
			if a := v.Sharding.DimAxis(i); a != Replicated {
				m[labels[i]] = a
			}
		}
		return m
	}
	la := labelAxis(lhs, parsed.Inputs[0])
	ra := labelAxis(rhs, parsed.Inputs[1])

	var partial []int
	for i := 0; i < len(parsed.ContractedLabels()); i++ {
		label := parsed.ContractedLabels()[i]
		axL, okL := la[label]
		axR, okR := ra[label]
		switch {
		case okL && okR:
			if axL != axR {
				panic(fmt.Sprintf("partition: einsum %q contracts label %q sharded on different axes %d/%d", spec, label, axL, axR))
			}
			partial = append(partial, axL)
		case okL || okR:
			panic(fmt.Sprintf("partition: einsum %q contracts label %q sharded on one operand only; AllGather it first", spec, label))
		}
	}

	outSharding := ReplicatedSharding(len(parsed.Output))
	for i := 0; i < len(parsed.Output); i++ {
		label := parsed.Output[i]
		axL, okL := la[label]
		axR, okR := ra[label]
		switch {
		case okL && okR:
			if axL != axR {
				panic(fmt.Sprintf("partition: einsum %q batch label %q sharded on different axes", spec, label))
			}
			outSharding.Axes[i] = axL
		case okL:
			outSharding.Axes[i] = axL
		case okR:
			outSharding.Axes[i] = axR
		}
	}

	logical, err := parsed.OutputShape(lhs.Logical, rhs.Logical)
	if err != nil {
		panic(err)
	}
	out := b.Comp.Einsum(spec, lhs.Instr, rhs.Instr)
	return &Value{Instr: out, Logical: logical, Sharding: outSharding, Partial: partial}
}

// ReduceScatter resolves the partial sum over axis and simultaneously
// shards dimension dim along it — the producer-side collective the
// overlap pass decomposes (Fig 3's subgroup ReduceScatter).
func (b *Builder) ReduceScatter(v *Value, dim, axis int) *Value {
	if !removeAxis(&v.Partial, axis) {
		panic(fmt.Sprintf("partition: ReduceScatter over axis %d but %s is not partial over it", axis, v.Instr.Name))
	}
	if v.Sharding.DimAxis(dim) != Replicated {
		panic(fmt.Sprintf("partition: ReduceScatter onto already-sharded dim %d of %s", dim, v.Instr.Name))
	}
	groups := b.Mesh.AxisGroups(axis)
	out := b.Comp.ReduceScatter(v.Instr, dim, groups)
	return &Value{
		Instr:    out,
		Logical:  v.Logical,
		Sharding: v.Sharding.WithDim(dim, axis),
		Partial:  append([]int(nil), v.Partial...),
	}
}

// AllReduce resolves the partial sum over axis, leaving the sharding
// unchanged — the Megatron-style alternative to ReduceScatter.
func (b *Builder) AllReduce(v *Value, axis int) *Value {
	if !removeAxis(&v.Partial, axis) {
		panic(fmt.Sprintf("partition: AllReduce over axis %d but %s is not partial over it", axis, v.Instr.Name))
	}
	groups := b.Mesh.AxisGroups(axis)
	out := b.Comp.AllReduce(v.Instr, groups)
	return &Value{
		Instr:    out,
		Logical:  v.Logical,
		Sharding: v.Sharding,
		Partial:  append([]int(nil), v.Partial...),
	}
}

// AllToAll re-shards v from dimension from to dimension to along the
// given mesh axis (the mixture-of-experts dispatch pattern): dimension
// from becomes sharded on the axis, dimension to becomes replicated.
func (b *Builder) AllToAll(v *Value, from, to, axis int) *Value {
	if v.Sharding.DimAxis(to) != axis {
		panic(fmt.Sprintf("partition: AllToAll expects dim %d of %s sharded on axis %d", to, v.Instr.Name, axis))
	}
	if v.Sharding.DimAxis(from) != Replicated {
		panic(fmt.Sprintf("partition: AllToAll expects dim %d of %s replicated", from, v.Instr.Name))
	}
	groups := b.Mesh.AxisGroups(axis)
	out := b.Comp.AllToAll(v.Instr, from, to, groups)
	// Logically the sharding moves from "to" to "from": the local shard
	// of "from" shrinks while "to" fills out. (Block ordering along "to"
	// follows group order, matching UnshardTensor's layout.)
	s := v.Sharding.WithDim(to, Replicated).WithDim(from, axis)
	return &Value{Instr: out, Logical: v.Logical, Sharding: s}
}

// RelayoutAllToAll emits an activation relayout: a same-dimension
// AllToAll along the given mesh axis on the value's dimension sharded by
// that axis (or dimension 0 when none is). It models the token
// redistribution of mixture-of-experts dispatch/combine and the T5
// backward relayouts — collectives with the right cost that the overlap
// technique cannot decompose. Sharding metadata is unchanged (shard
// contents permute within the dimension).
func (b *Builder) RelayoutAllToAll(v *Value, axis int) *Value {
	dim := 0
	for i, a := range v.Sharding.Axes {
		if a == axis {
			dim = i
		}
	}
	groups := b.Mesh.AxisGroups(axis)
	out := b.Comp.AllToAll(v.Instr, dim, dim, groups)
	return &Value{Instr: out, Logical: v.Logical, Sharding: v.Sharding, Partial: append([]int(nil), v.Partial...)}
}

// Add element-wise adds two identically sharded values.
func (b *Builder) Add(x, y *Value) *Value {
	if x.Sharding.String() != y.Sharding.String() || x.IsPartial() != y.IsPartial() {
		panic("partition: Add over differently sharded values")
	}
	out := b.Comp.Add(x.Instr, y.Instr)
	return &Value{Instr: out, Logical: x.Logical, Sharding: x.Sharding, Partial: append([]int(nil), x.Partial...)}
}

func removeAxis(axes *[]int, axis int) bool {
	for i, a := range *axes {
		if a == axis {
			*axes = append((*axes)[:i], (*axes)[i+1:]...)
			return true
		}
	}
	return false
}
