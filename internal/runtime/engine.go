package runtime

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"overlap/internal/hlo"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// engine owns one concurrent execution: the shared rendezvous registry
// for blocking collectives, the link fabric for asynchronous transfers,
// and the abort machinery that lets any device fail the run without
// deadlocking the others.
type engine struct {
	comp *hlo.Computation
	n    int
	opts Options

	fabric *fabric

	mu    sync.Mutex
	gens  map[rvKey]*genState
	abort chan struct{}
	once  sync.Once
	err   error

	epoch time.Time
}

func newEngine(c *hlo.Computation, numDevices int, opts Options) *engine {
	e := &engine{
		comp:  c,
		n:     numDevices,
		opts:  opts,
		gens:  map[rvKey]*genState{},
		abort: make(chan struct{}),
	}
	e.fabric = newFabric(e)
	return e
}

// fail records the first error and releases every blocked goroutine.
func (e *engine) fail(err error) {
	e.once.Do(func() {
		e.err = err
		close(e.abort)
	})
}

// run launches one goroutine per device, joins them, winds down the
// fabric, and assembles the per-device values and measured breakdown.
func (e *engine) run(args [][]*tensor.Tensor) (*Result, error) {
	devices := make([]*device, e.n)
	paramFor := func(p *hlo.Instruction, dev int) *tensor.Tensor {
		set := args[p.ParamIndex]
		if len(set) == 1 {
			return set[0]
		}
		return set[dev]
	}

	e.epoch = time.Now()
	var wg sync.WaitGroup
	for d := 0; d < e.n; d++ {
		dev := newDevice(e, d)
		devices[d] = dev
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panicking kernel (malformed einsum spec, shape bug)
			// must not crash the whole process: convert it into the
			// engine's first-error slot, which also closes the abort
			// channel so peer devices blocked on fabric sends drain
			// instead of deadlocking.
			defer func() {
				if r := recover(); r != nil {
					e.fail(fmt.Errorf("runtime: device %d: panic: %v", dev.id, r))
				}
			}()
			dev.run(paramFor)
		}()
	}
	wg.Wait()
	e.fabric.shutdown()

	if e.err != nil {
		return nil, e.err
	}
	return e.assemble(devices), nil
}

// assemble merges the per-device arenas, stats, and trace buffers into
// the caller-facing result. It runs after every goroutine has joined, so
// all device- and link-local state is safely visible.
func (e *engine) assemble(devices []*device) *Result {
	res := &Result{
		All: make(map[*hlo.Instruction][]*tensor.Tensor, e.comp.NumInstructions()),
	}
	for _, in := range e.comp.Instructions() {
		per := make([]*tensor.Tensor, e.n)
		for d, dev := range devices {
			per[d] = dev.values[in]
		}
		res.All[in] = per
	}
	if root := e.comp.Root(); root != nil {
		res.Values = res.All[root]
	}

	var b sim.Breakdown
	for _, dev := range devices {
		if dev.finished > b.StepTime {
			b.StepTime = dev.finished
		}
		b.Compute += dev.compute / float64(e.n)
		b.CollectiveWire += dev.wire / float64(e.n)
		b.Exposed += dev.exposed / float64(e.n)
		if dev.asyncSends > b.AsyncTransfers {
			b.AsyncTransfers = dev.asyncSends
		}
		if dev.peakInFlight > b.PeakInFlight {
			b.PeakInFlight = dev.peakInFlight
		}
	}
	res.Breakdown = b
	b.Record("runtime")

	if e.opts.Trace {
		for _, dev := range devices {
			res.Trace = append(res.Trace, dev.trace...)
		}
		res.Trace = append(res.Trace, e.fabric.traceEvents()...)
		sort.SliceStable(res.Trace, func(i, j int) bool {
			a, b := res.Trace[i], res.Trace[j]
			if a.PID != b.PID {
				return a.PID < b.PID
			}
			if a.TID != b.TID {
				return a.TID < b.TID
			}
			return a.TS < b.TS
		})
	}
	return res
}

// traceWindow returns the number of leading devices whose spans are
// recorded, following the simulator's truncation convention.
func (e *engine) traceWindow() int {
	w := e.opts.TraceDevices
	if w <= 0 {
		w = sim.TraceMaxDevices
	}
	if w > e.n {
		w = e.n
	}
	return w
}

// since returns seconds elapsed from the execution epoch.
func (e *engine) since() float64 { return time.Since(e.epoch).Seconds() }
