package core

import (
	"fmt"

	"overlap/internal/hlo"
)

// MakeAsync splits every blocking CollectivePermute in the computation
// into a CollectivePermuteStart/CollectivePermuteDone pair (§5.2). The
// pair is left adjacent; the scheduling passes then pull starts early
// and push dones late to create overlap.
//
// The pass is idempotent: a second call finds no blocking permutes and
// returns without touching the computation, so existing Start/Done
// pairs are never re-wrapped and a schedule already produced by the
// scheduling passes is left exactly as it stands.
func MakeAsync(c *hlo.Computation) int {
	blocking := false
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpCollectivePermute {
			blocking = true
			break
		}
	}
	if !blocking {
		return 0
	}
	converted := 0
	c.WithRootPreserved(func() {
		for _, in := range c.Instructions() {
			if in.Op != hlo.OpCollectivePermute {
				continue
			}
			start := c.CollectivePermuteStart(in.Operands[0], in.Pairs)
			done := c.CollectivePermuteDone(start)
			// A custom-named permute (e.g. the gradient-bucket pass's
			// "gbktK." prefix) keeps its name on the async pair so trace
			// spans and overlap attribution stay addressable; auto-named
			// permutes keep the auto-derived start/done names.
			if in.Name != fmt.Sprintf("%s.%d", in.Op, in.ID) {
				start.Name = in.Name + ".start"
				done.Name = in.Name + ".done"
			}
			c.ReplaceAllUsesWith(in, done)
			converted++
		}
		// Re-sort before DCE so the computation's true sink is back in root
		// position (appends put the new dones after it).
		c.ScheduleStableTopological()
		c.RemoveDeadCode()
	})
	return converted
}
