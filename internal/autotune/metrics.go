package autotune

import "overlap/internal/obs"

// Tuner-side instrumentation handles, resolved once against the
// process-wide registry: how many searches ran, how often the decision
// cache answered, how wide the candidate space was, how many runtime
// executions the searches paid for, and how well the fitted machine
// calibration tracks the measurements.
var (
	atTunes = obs.Default().Counter("overlap_autotune_tunes_total",
		"Autotune searches performed (cache hits included).")
	atCacheHits = obs.Default().Counter("overlap_autotune_cache_hits_total",
		"Tunes answered from the decision cache with zero executions.")
	atCacheMisses = obs.Default().Counter("overlap_autotune_cache_misses_total",
		"Tunes that had to search (cache cold, stale, or disabled).")
	atCandidates = obs.Default().Counter("overlap_autotune_candidates_total",
		"Candidates evaluated by the simulator ranking stage.")
	atExecutions = obs.Default().Counter("overlap_autotune_executions_total",
		"Runtime executions performed by tuning (warmups and repeats included).")
	atResidual = obs.Default().Gauge("overlap_autotune_calibration_residual",
		"RMS relative step-time error of the latest machine-calibration fit.")
	atCacheCorrupt = obs.Default().Counter("overlap_autotune_cache_corrupt_total",
		"Existing decision-cache files that failed to parse and were treated as cold.")
)
