package core

import (
	"fmt"

	"overlap/internal/hlo"
)

// Apply runs the full overlap pipeline on the computation in place:
//
//  1. find decomposable AllGather-Einsum / Einsum-ReduceScatter sites
//     (picking one candidate per einsum with the §5.5 rule),
//  2. gate each site on the cost model when enabled,
//  3. rewrite accepted sites into Looped CollectiveEinsums,
//  4. apply the fusion-friendliness rewrites and accumulation fusion,
//  5. split CollectivePermutes into asynchronous start/done pairs and
//     run the selected scheduler.
//
// With SchedulerNone the collectives are decomposed but left blocking
// (a useful ablation); to keep the baseline program untouched simply do
// not call Apply.
func Apply(c *hlo.Computation, opts Options) (Report, error) {
	var report Report
	if err := opts.Spec.Validate(); err != nil {
		return report, err
	}

	var applyErr error
	c.WithRootPreserved(func() {
		// Gradient bucketing runs first so it consumes the backward
		// pass's ring AllReduces before SplitAllReduce would
		// canonicalize them away.
		if opts.GradBucketBytes > 0 {
			report.Buckets = BucketAllReduces(c, opts.GradBucketBytes)
		}
		if opts.SplitAllReduce {
			CanonicalizeAllReduce(c)
		}
		if opts.RematerializeGathers {
			RematerializeGathers(c)
		}

		var chooser CandidateChooser = FirstChooser{}
		if opts.UseCostModel {
			chooser = CostChooser{Spec: opts.Spec}
		}
		patterns := FindPatterns(c, chooser)
		report.SitesFound = len(patterns)

		for _, p := range patterns {
			d := Evaluate(p, opts)
			report.Decisions = append(report.Decisions, d)
			if opts.UseCostModel && !d.Enable {
				report.SitesRejected++
				continue
			}
			if err := Decompose(c, p, opts); err != nil {
				applyErr = fmt.Errorf("core: decomposing %s at %s: %w", p.Kind, p.Einsum.Name, err)
				return
			}
			report.SitesDecomposed++
		}

		if opts.ConcatToPadMax {
			RewriteConcatToPadMax(c)
		}
		if opts.FuseAddIntoEinsum {
			report.FusionsFormed = FuseAccumulation(c, opts.OverlapFriendlyFusion)
		}

		if opts.Scheduler != SchedulerNone {
			// §5.2: the overlap schedulers consume the memory-minimizing
			// pass's output; their tie-breaks preserve that order.
			if err := ScheduleMinMemory(c); err != nil {
				applyErr = fmt.Errorf("core: min-memory scheduling: %w", err)
				return
			}
			MakeAsync(c)
			var err error
			switch opts.Scheduler {
			case SchedulerBottomUp:
				err = ScheduleBottomUp(c, opts.Spec)
			case SchedulerTopDown:
				err = ScheduleTopDown(c, opts.Spec)
			}
			if err != nil {
				applyErr = fmt.Errorf("core: scheduling: %w", err)
				return
			}
		}
	})
	if applyErr != nil {
		return report, applyErr
	}
	return report, c.Verify()
}
