package runtime_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/runtime"
)

// TestCrashReleasesPeersInEveryPhase is the abort-path table: a device
// crash injected while the program is in each pipeline regime — before
// any transfer is posted, between a permute start and its done, while
// peers are blocked inside a blocking-collective rendezvous, and inside
// a fusion body — must release every peer goroutine and return the
// injected crash as the run's first error, never deadlock and never
// surface a cascade error. The 5s RunContext deadline is a tripwire:
// if a peer were left blocked, the error would be a deadline instead
// of the crash and the test fails. The whole table also runs in CI's
// race job (go test -race ./...).
func TestCrashReleasesPeersInEveryPhase(t *testing.T) {
	const n = 4
	rng := rand.New(rand.NewSource(17))
	site := goldenSites(n, rng)[0]

	// The decomposed, unrolled, fused program: asynchronous permute
	// starts/dones with partial einsums between them and fusion bodies.
	decomposed := site.build()
	if _, err := core.Apply(decomposed, forceOpts(true, true)); err != nil {
		t.Fatal(err)
	}
	instrs := decomposed.Instructions()
	idxOf := func(op hlo.OpCode, after int) int {
		for i := after; i < len(instrs); i++ {
			if instrs[i].Op == op {
				return i
			}
		}
		return -1
	}
	startIdx := idxOf(hlo.OpCollectivePermuteStart, 0)
	doneIdx := idxOf(hlo.OpCollectivePermuteDone, startIdx)
	fusionIdx := idxOf(hlo.OpFusion, 0)
	if startIdx < 0 || doneIdx < 0 {
		t.Fatal("decomposed program has no async permute pair")
	}
	if startIdx+1 >= doneIdx {
		t.Fatal("no instruction scheduled between start and done; the overlap schedule should interleave compute")
	}

	// The untransformed program keeps its blocking AllGather, so
	// crashing one device right at the collective leaves every peer
	// blocked in rendezvous until the abort releases them.
	blocking := site.build()
	agIdx := -1
	for i, in := range blocking.Instructions() {
		if in.Op == hlo.OpAllGather {
			agIdx = i
			break
		}
	}
	if agIdx < 0 {
		t.Fatal("blocking program has no all-gather")
	}

	cases := []struct {
		name   string
		comp   *hlo.Computation
		device int
		k      int
	}{
		{"before-first-post", decomposed, 2, 0},
		{"between-start-and-done", decomposed, 1, startIdx + 1},
		{"inside-rendezvous", blocking, 1, agIdx},
		{"mid-fusion", decomposed, 3, fusionIdx},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.k < 0 {
				t.Skipf("program has no instruction for phase %s", tc.name)
			}
			crash := runtime.Fault{Kind: runtime.FaultCrash, Device: tc.device, K: tc.k}
			opts := runtime.Options{Faults: &runtime.FaultPlan{Faults: []runtime.Fault{crash}}}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()

			t0 := time.Now()
			_, err := runtime.RunContext(ctx, tc.comp, site.n, site.args, opts)
			elapsed := time.Since(t0)
			if err == nil {
				t.Fatalf("crash at instruction %d did not fail the run", tc.k)
			}
			if elapsed > 4*time.Second {
				t.Fatalf("abort took %s to release the peers", elapsed)
			}
			if errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("peers were released by the deadline, not the abort: %v", err)
			}
			var re *runtime.RunError
			if !errors.As(err, &re) {
				t.Fatalf("error %v is not a *RunError", err)
			}
			if !errors.Is(err, runtime.ErrInjectedCrash) {
				t.Fatalf("first error %v is not the injected crash", err)
			}
			if re.Device != tc.device {
				t.Fatalf("error attributes device %d, want crashed device %d", re.Device, tc.device)
			}
			if re.Fault != crash.String() {
				t.Fatalf("error fault %q, want %q", re.Fault, crash)
			}
		})
	}
}
