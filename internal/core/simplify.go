package core

import (
	"fmt"
	"strings"

	"overlap/internal/hlo"
)

// Compiler-hygiene passes: common-subexpression elimination and
// algebraic simplification. They run standalone (and in the fuzz
// harness); the overlap pipeline itself never needs them, but graphs
// assembled by autodiff or by hand often do — adjoint construction in
// particular produces Add-with-zero chains and duplicate transposes.

// CSE deduplicates structurally identical instructions: same opcode,
// same operands (after earlier dedup) and same attributes. Collectives
// are deduplicated too — two identical AllGathers of the same operand
// are one gather (the inverse of RematerializeGathers, for callers that
// prefer memory over sites). Parameters and constants with distinct
// literals stay distinct. Returns the number of instructions removed.
func CSE(c *hlo.Computation) int {
	removed := 0
	c.WithRootPreserved(func() {
		seen := map[string]*hlo.Instruction{}
		for _, in := range c.Instructions() {
			if in.Op == hlo.OpParameter {
				continue
			}
			key := cseKey(in)
			if prev, ok := seen[key]; ok {
				c.ReplaceAllUsesWith(in, prev)
				removed++
				continue
			}
			seen[key] = in
		}
		c.ScheduleStableTopological()
		c.RemoveDeadCode()
	})
	return removed
}

// cseKey builds a structural fingerprint. Operand identity uses pointer
// addresses, which is sound because we scan in schedule order: operands
// are already canonicalized when their users are keyed.
func cseKey(in *hlo.Instruction) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", in.Op)
	for _, op := range in.Operands {
		fmt.Fprintf(&b, "%p,", op)
	}
	fmt.Fprintf(&b, "|%v|%s|%d|%v%v%g|%v%v|%v%v|%v|%v|%v|%d|%d|%d",
		in.Shape, in.EinsumSpec, in.Axis,
		in.PadLow, in.PadHigh, in.PadValue,
		in.Starts, in.Limits,
		in.Offsets, in.SliceSizes,
		in.Perm, in.Groups, in.Pairs,
		in.CollectiveAxis, in.TripCount, in.ResultIndex)
	if in.Literal != nil {
		fmt.Fprintf(&b, "|%v", in.Literal.Data())
	}
	if in.Body != nil {
		fmt.Fprintf(&b, "|body:%p", in.Body) // bodies are never shared
	}
	return b.String()
}

// Simplify applies local algebraic rewrites to a fixed point:
//
//	copy(copy(x))            → copy(x)
//	reshape(reshape(x))      → reshape(x)
//	transpose(transpose(x))  → composed transpose (identity removed)
//	add(x, zero) / add(zero, x) → x (via copy to keep a node)
//	concat(x)                → x
//	slice covering all of x  → x
//	pad with no padding      → x
//	reshape to the same shape → x
//
// Returns the number of rewrites applied.
func Simplify(c *hlo.Computation) int {
	total := 0
	for {
		n := simplifyOnce(c)
		total += n
		if n == 0 {
			return total
		}
	}
}

func simplifyOnce(c *hlo.Computation) int {
	rewrites := 0
	c.WithRootPreserved(func() {
		replace := func(in, with *hlo.Instruction) {
			c.ReplaceAllUsesWith(in, with)
			rewrites++
		}
		for _, in := range c.Instructions() {
			switch in.Op {
			case hlo.OpCopy:
				if src := in.Operands[0]; src.Op == hlo.OpCopy {
					in.ReplaceOperand(src, src.Operands[0])
					rewrites++
				}
			case hlo.OpReshape:
				src := in.Operands[0]
				if src.Op == hlo.OpReshape {
					in.ReplaceOperand(src, src.Operands[0])
					rewrites++
					continue
				}
				if sameIntSlice(in.Shape, src.Shape) {
					replace(in, src)
				}
			case hlo.OpTranspose:
				src := in.Operands[0]
				if src.Op == hlo.OpTranspose {
					composed := make([]int, len(in.Perm))
					for i, p := range in.Perm {
						composed[i] = src.Perm[p]
					}
					if isIdentityPerm(composed) {
						replace(in, src.Operands[0])
					}
					continue
				}
				if isIdentityPerm(in.Perm) {
					replace(in, src)
				}
			case hlo.OpAdd:
				a, b := in.Operands[0], in.Operands[1]
				switch {
				case a.Op == hlo.OpZero:
					replace(in, b)
				case b.Op == hlo.OpZero:
					replace(in, a)
				}
			case hlo.OpConcat:
				if len(in.Operands) == 1 {
					replace(in, in.Operands[0])
				}
			case hlo.OpSlice:
				if sameIntSlice(in.Shape, in.Operands[0].Shape) && allZero(in.Starts) {
					replace(in, in.Operands[0])
				}
			case hlo.OpPad:
				if allZero(in.PadLow) && allZero(in.PadHigh) {
					replace(in, in.Operands[0])
				}
			}
		}
		c.ScheduleStableTopological()
		c.RemoveDeadCode()
	})
	return rewrites
}

func sameIntSlice(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allZero(a []int) bool {
	for _, v := range a {
		if v != 0 {
			return false
		}
	}
	return true
}

func isIdentityPerm(p []int) bool {
	for i, v := range p {
		if v != i {
			return false
		}
	}
	return true
}
