package serve

import (
	"testing"
)

// TestPlanCacheLRU pins the eviction order: capacity overflow evicts
// the least-recently-used entry, and a get refreshes recency.
func TestPlanCacheLRU(t *testing.T) {
	pc := newPlanCache(2)
	pc.put("a", dummyPlan("a"))
	pc.put("b", dummyPlan("b"))

	// Touch a so b becomes the LRU victim.
	if _, ok := pc.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}

	e0 := svPlanEvictions.Value()
	pc.put("c", dummyPlan("c"))
	if d := svPlanEvictions.Value() - e0; d != 1 {
		t.Fatalf("eviction counter moved %v, want 1", d)
	}
	if _, ok := pc.get("b"); ok {
		t.Fatal("b survived eviction; LRU order is wrong")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := pc.get(key); !ok {
			t.Fatalf("%s was evicted; LRU order is wrong", key)
		}
	}
	if pc.len() != 2 {
		t.Fatalf("len = %d, want 2", pc.len())
	}
}

// TestPlanCacheReplace: re-putting a key updates in place without
// growing or evicting.
func TestPlanCacheReplace(t *testing.T) {
	pc := newPlanCache(2)
	pc.put("a", dummyPlan("v1"))
	e0 := svPlanEvictions.Value()
	pc.put("a", dummyPlan("v2"))
	if d := svPlanEvictions.Value() - e0; d != 0 {
		t.Fatalf("replacing a key evicted %v entries", d)
	}
	got, ok := pc.get("a")
	if !ok || got.plan.BestName != "v2" {
		t.Fatalf("get after replace = %v, want v2", got)
	}
	if pc.len() != 1 {
		t.Fatalf("len = %d, want 1", pc.len())
	}
}

// TestPlanCacheKeys lists the cached fingerprints.
func TestPlanCacheKeys(t *testing.T) {
	pc := newPlanCache(4)
	pc.put("a", dummyPlan("a"))
	pc.put("b", dummyPlan("b"))
	keys := pc.keys()
	if len(keys) != 2 {
		t.Fatalf("keys = %v, want 2 entries", keys)
	}
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("keys = %v, want a and b", keys)
	}
}
