// Command traceviz renders the simulated execution of one model layer
// as an ASCII timeline, making the overlap visible in a terminal:
// transfers ('=') running under compute ('#') are hidden communication,
// transfers under stalls ('.') are exposed.
//
// Usage:
//
//	traceviz -model GPT_32B               # baseline (blocking)
//	traceviz -model GPT_32B -overlap      # decomposed + scheduled
//	traceviz -model GPT_32B -overlap -width 160
package main

import (
	"flag"
	"fmt"
	"os"

	"overlap"
	"overlap/internal/machine"
	"overlap/internal/models"
	"overlap/internal/sim"
)

func main() {
	model := flag.String("model", "GPT_32B", "model name from Table 1 or Table 2")
	apply := flag.Bool("overlap", false, "apply the overlap pipeline first")
	width := flag.Int("width", 120, "timeline width in columns")
	flag.Parse()

	cfg, err := models.ByName(*model)
	if err != nil {
		fail(err)
	}
	c, err := overlap.BuildLayerStep(cfg)
	if err != nil {
		fail(err)
	}
	if *apply {
		if _, err := overlap.Apply(c, overlap.DefaultOptions(overlap.TPUv4())); err != nil {
			fail(err)
		}
	}
	bd, events, err := sim.SimulateTrace(c, cfg.Mesh().NumDevices(), machine.TPUv4())
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s, one layer step: %.3f ms, %.0f%% exposed communication\n",
		cfg.Name, 1e3*bd.StepTime, 100*bd.CommFraction())
	fmt.Print(sim.RenderTimeline(events, *width))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "traceviz: %v\n", err)
	os.Exit(1)
}
