package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"overlap/internal/autotune"
	"overlap/internal/sim"
)

// testConfig keeps compiles cheap: one executed candidate, tiny wire
// delays, no disk cache (each server starts cold and stays hermetic).
func testConfig() Config {
	return Config{
		DisableDiskCache: true,
		TuneTopK:         1,
		TuneTimeScale:    5,
		RunTimeScale:     5,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postRun sends one /v1/run request and decodes the response; a non-200
// status returns the raw body in err.
func postRun(ts *httptest.Server, req Request) (*RunResponse, int, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, nil, err
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, resp.StatusCode, nil, err
	}
	raw := buf.Bytes()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, raw, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var rr RunResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		return nil, resp.StatusCode, raw, err
	}
	return &rr, resp.StatusCode, raw, nil
}

func miniatureRequest() Request {
	return Request{Model: "GPT_32B", Devices: 4, Dim: 2}
}

// TestWarmPathZeroCompilation pins the serving contract at the heart of
// the daemon: the first request compiles, every identical request after
// it is answered from the plan cache with zero compilation — witnessed
// by the compile counter standing still.
func TestWarmPathZeroCompilation(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	c0 := svCompiles.Value()
	first, _, _, err := postRun(ts, miniatureRequest())
	if err != nil {
		t.Fatalf("cold request: %v", err)
	}
	if first.Plan != "miss" {
		t.Fatalf("cold request plan = %q, want miss", first.Plan)
	}
	if svCompiles.Value()-c0 != 1 {
		t.Fatalf("cold request ran %v compiles, want 1", svCompiles.Value()-c0)
	}

	c1 := svCompiles.Value()
	for i := 0; i < 3; i++ {
		warm, _, _, err := postRun(ts, miniatureRequest())
		if err != nil {
			t.Fatalf("warm request %d: %v", i, err)
		}
		if warm.Plan != "hit" {
			t.Fatalf("warm request %d plan = %q, want hit", i, warm.Plan)
		}
		if warm.Digest != first.Digest {
			t.Fatalf("warm request %d digest %s != cold digest %s", i, warm.Digest, first.Digest)
		}
		if warm.TimingMS.Plan > first.TimingMS.Plan {
			t.Errorf("warm plan acquisition (%.3fms) slower than the cold compile (%.3fms)",
				warm.TimingMS.Plan, first.TimingMS.Plan)
		}
	}
	if d := svCompiles.Value() - c1; d != 0 {
		t.Fatalf("warm path ran %v compiles, want 0", d)
	}
}

// TestConcurrentIdenticalFingerprintSingleCompile is the soak the issue
// demands: 16 concurrent clients with the same fingerprint trigger
// exactly one compile (pinned by the counter metric), and every client
// gets a bit-identical answer that matches the lockstep interpreter on
// the same compiled program. CI runs this under -race.
func TestConcurrentIdenticalFingerprintSingleCompile(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	const clients = 16
	req := miniatureRequest()
	req.Seed = 5

	c0 := svCompiles.Value()
	var wg sync.WaitGroup
	responses := make([]*RunResponse, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], _, _, errs[i] = postRun(ts, req)
		}(i)
	}
	wg.Wait()

	if d := svCompiles.Value() - c0; d != 1 {
		t.Fatalf("%d concurrent identical requests ran %v compiles, want exactly 1", clients, d)
	}
	sources := map[string]int{}
	for i := range responses {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		sources[responses[i].Plan]++
		if responses[i].Digest != responses[0].Digest {
			t.Fatalf("client %d digest %s diverges from client 0's %s",
				i, responses[i].Digest, responses[0].Digest)
		}
	}
	if sources["miss"] != 1 {
		t.Fatalf("plan sources %v: want exactly one miss", sources)
	}
	if sources["miss"]+sources["coalesced"]+sources["hit"] != clients {
		t.Fatalf("plan sources %v do not account for all %d clients", sources, clients)
	}

	// The shared digest must be the interpreter's answer on the same
	// compiled program — fetch the artifact and replay it in lockstep.
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json",
		bytes.NewReader(mustJSON(t, req)))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	plan, err := autotune.DecodePlan(buf.Bytes())
	if err != nil {
		t.Fatalf("decoding served plan: %v", err)
	}
	comp, err := plan.Computation()
	if err != nil {
		t.Fatal(err)
	}
	args := Args(comp, req.Seed)
	all, err := sim.InterpretAll(comp, plan.Devices, args)
	if err != nil {
		t.Fatalf("interpreter: %v", err)
	}
	want := Digest(Outputs(comp, all, plan.Devices))
	if responses[0].Digest != want {
		t.Fatalf("served digest %s != interpreter digest %s", responses[0].Digest, want)
	}
}

// TestRunErrorStructured5xx pins graceful degradation: a faulted run
// answers 503 with the structured RunError attribution, the daemon
// keeps serving, and the plan cache is not poisoned — the next healthy
// request is a warm hit.
func TestRunErrorStructured5xx(t *testing.T) {
	cfg := testConfig()
	cfg.DebugFaults = true
	_, ts := newTestServer(t, cfg)

	healthy, _, _, err := postRun(ts, miniatureRequest())
	if err != nil {
		t.Fatalf("priming request: %v", err)
	}

	e0 := svRunErrors.Value()
	faulted := miniatureRequest()
	faulted.Fault = "crash:dev:1"
	faulted.DeadlineMS = 30000
	_, status, raw, err := postRun(ts, faulted)
	if err == nil {
		t.Fatal("faulted run succeeded, want structured 5xx")
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("faulted run status = %d, want 503; body %s", status, raw)
	}
	if svRunErrors.Value()-e0 != 1 {
		t.Fatalf("run-error counter moved %v, want 1", svRunErrors.Value()-e0)
	}
	var body struct {
		Error    string `json:"error"`
		RunError *struct {
			Device int    `json:"device"`
			Phase  string `json:"phase"`
			Fault  string `json:"fault"`
			Cause  string `json:"cause"`
		} `json:"run_error"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("5xx body is not JSON: %v\n%s", err, raw)
	}
	if body.RunError == nil {
		t.Fatalf("5xx body carries no structured run_error: %s", raw)
	}
	if body.RunError.Device != 1 {
		t.Errorf("run_error.device = %d, want 1", body.RunError.Device)
	}
	if body.RunError.Fault == "" || body.RunError.Cause == "" {
		t.Errorf("run_error missing fault/cause: %s", raw)
	}
	if body.Fingerprint == "" {
		t.Errorf("5xx body missing the fingerprint: %s", raw)
	}

	// The daemon survived and the plan survived: same fingerprint, warm
	// hit, zero new compiles, bit-identical answer.
	c0 := svCompiles.Value()
	after, _, _, err := postRun(ts, miniatureRequest())
	if err != nil {
		t.Fatalf("request after faulted run: %v", err)
	}
	if after.Plan != "hit" {
		t.Fatalf("plan after faulted run = %q, want hit (cache must not be poisoned)", after.Plan)
	}
	if after.Digest != healthy.Digest {
		t.Fatalf("digest after faulted run diverges: %s != %s", after.Digest, healthy.Digest)
	}
	if d := svCompiles.Value() - c0; d != 0 {
		t.Fatalf("faulted run poisoned the cache: %v recompiles", d)
	}
}

// TestFaultRejectedWithoutDebugFaults: chaos is an operator decision;
// callers cannot inject faults into a production daemon.
func TestFaultRejectedWithoutDebugFaults(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	req := miniatureRequest()
	req.Fault = "crash:dev:1"
	_, status, _, err := postRun(ts, req)
	if err == nil || status != http.StatusForbidden {
		t.Fatalf("fault request without DebugFaults: status %d (err %v), want 403", status, err)
	}
}

// TestRequestValidation pins the request-surface errors.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	cases := []struct {
		name   string
		method string
		body   string
		status int
	}{
		{"get method", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"bad json", http.MethodPost, "{", http.StatusBadRequest},
		{"no devices", http.MethodPost, `{"model":"GPT_32B"}`, http.StatusBadRequest},
		{"model and program", http.MethodPost, `{"model":"GPT_32B","program":"x","devices":2}`, http.StatusBadRequest},
		{"neither model nor program", http.MethodPost, `{"devices":2}`, http.StatusBadRequest},
		{"unknown model", http.MethodPost, `{"model":"nope","devices":2}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+"/v1/run", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// TestPlansEndpoint lists cached fingerprints after a run.
func TestPlansEndpoint(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	first, _, _, err := postRun(ts, miniatureRequest())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/plans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Plans []string `json:"plans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Plans) != 1 || body.Plans[0] != first.Fingerprint {
		t.Fatalf("plans = %v, want [%s]", body.Plans, first.Fingerprint)
	}
}

// TestShutdownDrains pins the graceful-drain contract: Shutdown answers
// in-flight work, then refuses new requests with 503.
func TestShutdownDrains(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	if _, _, _, err := postRun(ts, miniatureRequest()); err != nil {
		t.Fatalf("priming request: %v", err)
	}

	inflight := make(chan error, 1)
	go func() {
		_, _, _, err := postRun(ts, miniatureRequest())
		inflight <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the request enter the handler

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}

	_, status, _, err := postRun(ts, miniatureRequest())
	if err == nil || status != http.StatusServiceUnavailable {
		t.Fatalf("request after drain: status %d (err %v), want 503", status, err)
	}
}

// TestHealthAndMetricsEndpoints sanity-checks the operational surface.
func TestHealthAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
