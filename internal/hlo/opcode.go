// Package hlo implements a small XLA-HLO-like intermediate representation:
// a dataflow graph of tensor-producing instructions held in a scheduled
// sequence. It carries exactly the operations the ASPLOS'23 overlap paper
// manipulates — einsums, the MPI-style collectives of intra-layer model
// parallelism, slice/update bookkeeping ops, and the asynchronous
// CollectivePermuteStart/Done pair introduced by the scheduling pass.
//
// A Computation's instruction list doubles as its schedule: instructions
// execute in list order on every participating device (SPMD), and the
// scheduling passes in internal/core reorder the list without changing the
// dataflow edges.
package hlo

// OpCode identifies the operation an Instruction performs.
type OpCode int

// The supported operation set. It deliberately mirrors the subset of XLA
// HLO that the paper's compiler passes touch.
const (
	OpInvalid OpCode = iota

	// Data sources.
	OpParameter // computation input
	OpConstant  // literal tensor
	OpZero      // zero-filled tensor of a declared shape (no literal storage)

	// Dense compute.
	OpEinsum // general two-operand Einstein summation
	OpAdd    // element-wise addition
	OpMax    // element-wise maximum

	// Data movement / bookkeeping.
	OpCopy               // explicit buffer copy (models loop-carried aliasing copies)
	OpReshape            // row-major reinterpretation
	OpTranspose          // dimension permutation
	OpConcat             // concatenation along one axis
	OpPad                // low/high padding with a fill value
	OpSlice              // static slice
	OpDynamicSlice       // slice at a partition-dependent offset
	OpDynamicUpdateSlice // scatter a slice at a partition-dependent offset

	// Collectives (blocking).
	OpAllGather         // concatenate shards across a device group
	OpReduceScatter     // sum across a group, keep own shard
	OpAllReduce         // sum across a group, keep full result
	OpAllToAll          // transpose shards across a group
	OpCollectivePermute // point-to-point transfers along source→target pairs

	// Asynchronous collective pair produced by the scheduling pass.
	OpCollectivePermuteStart
	OpCollectivePermuteDone

	// Fusion of several element-wise/bookkeeping ops (and at most one
	// einsum) into a single kernel.
	OpFusion

	// Tuple groups several values as the computation result so
	// dead-code elimination keeps every output subgraph alive; it has a
	// rank-0 placeholder shape and no cost.
	OpTuple

	// Loop is a counted (while-style) loop with loop-carried buffers:
	// the operands are the initial values, the Body's parameters receive
	// the carried values each iteration, the Body's root must be a Tuple
	// naming the next values, and the Loop's own result is the carried
	// buffer selected by ResultIndex after TripCount iterations. The
	// rolled form of the Looped CollectiveEinsum (§5.1) is emitted this
	// way; the expanded form unrolls it into the parent sequence.
	OpLoop
)

var opNames = map[OpCode]string{
	OpInvalid:                "invalid",
	OpParameter:              "parameter",
	OpConstant:               "constant",
	OpZero:                   "zero",
	OpEinsum:                 "einsum",
	OpAdd:                    "add",
	OpMax:                    "max",
	OpCopy:                   "copy",
	OpReshape:                "reshape",
	OpTranspose:              "transpose",
	OpConcat:                 "concatenate",
	OpPad:                    "pad",
	OpSlice:                  "slice",
	OpDynamicSlice:           "dynamic-slice",
	OpDynamicUpdateSlice:     "dynamic-update-slice",
	OpAllGather:              "all-gather",
	OpReduceScatter:          "reduce-scatter",
	OpAllReduce:              "all-reduce",
	OpAllToAll:               "all-to-all",
	OpCollectivePermute:      "collective-permute",
	OpCollectivePermuteStart: "collective-permute-start",
	OpCollectivePermuteDone:  "collective-permute-done",
	OpFusion:                 "fusion",
	OpTuple:                  "tuple",
	OpLoop:                   "loop",
}

// String returns the HLO-style lowercase name of the opcode.
func (op OpCode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return "unknown"
}

// IsCollective reports whether the op moves data between devices.
func (op OpCode) IsCollective() bool {
	switch op {
	case OpAllGather, OpReduceScatter, OpAllReduce, OpAllToAll,
		OpCollectivePermute, OpCollectivePermuteStart, OpCollectivePermuteDone:
		return true
	}
	return false
}

// IsDeviceLocal reports whether the op executes entirely within one
// device: no data crosses a link and no cross-device synchronization is
// required. Execution engines (the lockstep interpreter in internal/sim,
// the concurrent runtime in internal/runtime) dispatch on this to
// separate per-device evaluation from communication handling. Loop is
// not device-local because its body may contain collectives.
func (op OpCode) IsDeviceLocal() bool {
	switch op {
	case OpParameter, OpConstant, OpZero, OpEinsum, OpAdd, OpMax, OpCopy,
		OpReshape, OpTranspose, OpConcat, OpPad, OpSlice,
		OpDynamicSlice, OpDynamicUpdateSlice, OpFusion, OpTuple:
		return true
	}
	return false
}

// IsAsyncStart reports whether the op begins an asynchronous transfer.
func (op OpCode) IsAsyncStart() bool { return op == OpCollectivePermuteStart }

// IsAsyncDone reports whether the op completes an asynchronous transfer.
func (op OpCode) IsAsyncDone() bool { return op == OpCollectivePermuteDone }
