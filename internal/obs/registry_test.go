package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // dropped: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}

	g := r.Gauge("g", "a gauge")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same", "h")
	b := r.Counter("same", "h")
	if a != b {
		t.Fatal("re-registering a name must return the same handle")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles must share state")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("same", "h")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", got)
	}
	s := h.snapshot("h_seconds", "latency")
	wantCum := []uint64{1, 3, 4, 5} // cumulative over 0.1, 1, 10, +Inf
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].LE, 1) {
		t.Fatal("last bucket must be +Inf")
	}
}

func TestDisabledRegistryDropsUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{1})
	g := r.Gauge("g", "")
	r.SetEnabled(false)
	c.Inc()
	h.Observe(0.5)
	g.Set(9)
	if c.Value() != 0 || h.Count() != 0 || g.Value() != 0 {
		t.Fatal("disabled registry must drop updates")
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled registry must record again")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_seconds", "", TimeBuckets())
	const workers, each = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(1e-5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %v, want %d", got, workers*each)
	}
	if got := h.Count(); got != workers*each {
		t.Fatalf("histogram count = %d, want %d", got, workers*each)
	}
}

func TestHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", TimeBuckets())
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(2)
		h.Observe(3e-4)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocated %.1f times per op, want 0", allocs)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad ExpBuckets args must panic")
		}
	}()
	ExpBuckets(0, 2, 3)
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read zero")
	}
}
