// Package autotune searches the overlap pipeline's variant space for
// the configuration that actually runs fastest, instead of trusting the
// hand-set core.Options knobs or the §5.5 analytic estimate alone.
//
// The search is two-stage, mirroring how the paper's "apply only when
// beneficial" rule generalizes from one site to a whole program:
//
//  1. every enumerated candidate (core.EnumerateOptions, plus the
//     untransformed blocking baseline) is applied to a clone of the
//     program and ranked by the discrete-event simulator's predicted
//     step time — cheap, analytic, §5.5's cost model writ large;
//  2. the top-K predicted candidates (always including the paper's
//     DefaultOptions configuration, so tuning can never regress it) are
//     executed for real on the concurrent goroutine runtime, each run
//     cross-checked bit-identical against the lockstep interpreter, and
//     the winner is picked by measured wall-clock.
//
// Because stage 2 observes real breakdowns, the tuner also *calibrates*
// the machine model: it fits effective compute throughput, link
// bandwidth and per-op overhead so simulated and measured times track
// each other, and reports the residual error of the fit (calibrate.go).
//
// Tuning the same program on the same machine twice is free: decisions
// persist in a JSON cache keyed by (program fingerprint, machine spec
// fingerprint, device count), and a warm hit performs zero runtime
// executions (cache.go).
package autotune

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/obs"
	"overlap/internal/runtime"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// Options configures one Tune call.
type Options struct {
	// Spec is the machine model candidates are ranked and executed
	// against; it must validate.
	Spec machine.Spec

	// TopK bounds how many distinct candidates stage 2 executes on the
	// runtime (the DefaultOptions configuration is added on top when it
	// does not rank there). Zero means 3.
	TopK int

	// TimeScale is the runtime's wire-delay injection scale (see
	// runtime.Options); zero means 200, which keeps miniature tunes fast
	// while still making communication visible in wall-clock. Negative
	// disables injection (measured times then reflect compute only).
	TimeScale float64

	// Repeats is how many times each stage-2 candidate runs; the minimum
	// wall-clock is kept, damping scheduler noise. Zero means 1.
	Repeats int

	// CachePath overrides the decision-cache location; empty means the
	// per-user default (DefaultCachePath).
	CachePath string

	// DisableCache skips both cache lookup and store.
	DisableCache bool

	// Calibrate fits the machine spec to the measured breakdowns and
	// reports the residual (Result.Calibration, Result.Residual).
	Calibrate bool

	// RunID correlates the tune with the caller's run-scoped telemetry:
	// candidate executions run under "<RunID>.<candidate>.r<repeat>"
	// (the warmup under "<RunID>.warmup") and structured logs carry it.
	// Empty mints a fresh obs.NewRunID.
	RunID string
}

func (o Options) withDefaults() Options {
	if o.TopK == 0 {
		o.TopK = 3
	}
	if o.TimeScale == 0 {
		o.TimeScale = 200
	}
	if o.Repeats <= 0 {
		o.Repeats = 1
	}
	return o
}

// Candidate is one enumerated configuration and what the search learned
// about it.
type Candidate struct {
	// Name is a short human-readable label ("baseline", "rolled", or the
	// knob fingerprint).
	Name string
	// Opts is the pipeline configuration; meaningless when Baseline.
	Opts core.Options
	// Baseline marks the untransformed blocking program (no Apply call).
	Baseline bool

	// Predicted is the simulator's breakdown of the transformed program,
	// in modeled seconds.
	Predicted sim.Breakdown
	// Measured is the runtime's breakdown of the fastest repeat, in
	// wall-clock seconds; valid only when Executed.
	Measured sim.Breakdown
	// MeasuredWall is the fastest repeat's wall-clock step time.
	MeasuredWall float64
	// Executed reports whether stage 2 ran this candidate.
	Executed bool
	// Checked reports that the runtime outputs were verified
	// bit-identical against the lockstep interpreter.
	Checked bool
	// DuplicateOf names an earlier candidate that produced a
	// byte-identical transformed program; duplicates are ranked and
	// executed only once, under the canonical candidate's name.
	DuplicateOf string
	// Err records why a candidate dropped out (apply or simulate
	// failure); such candidates are never executed.
	Err string

	transformed *hlo.Computation
}

// Result is what one Tune call decided.
type Result struct {
	// Best is the winning configuration; apply it with ApplyBest or
	// core.Apply. Meaningless when BestIsBaseline.
	Best core.Options
	// BestIsBaseline reports that the untransformed blocking program won
	// — the §5.5 "apply only when beneficial" verdict at whole-program
	// granularity.
	BestIsBaseline bool
	// BestName is the winner's candidate name.
	BestName string
	// PredictedWall and MeasuredWall are the winner's simulated step
	// time (modeled seconds) and measured step time (wall seconds).
	PredictedWall, MeasuredWall float64

	// Candidates lists every enumerated configuration, sorted by
	// predicted step time (errored candidates last).
	Candidates []Candidate
	// Executions counts runtime runs performed; zero on a warm cache
	// hit.
	Executions int

	// CacheHit reports the decision came from the cache; CachePath is
	// where the cache lives (empty when disabled).
	CacheHit  bool
	CachePath string
	// Fingerprint identifies the (program, spec, devices) key the
	// decision is cached under.
	Fingerprint string

	// Calibration is the fitted rescaling of the machine spec (identity
	// unless Options.Calibrate was set and at least two candidates were
	// measured); CalibratedSpec is the spec with it applied, and
	// Residual is the root-mean-square relative step-time error of the
	// calibrated simulator against the measurements (-1 when no fit was
	// possible).
	Calibration    machine.Calibration
	CalibratedSpec machine.Spec
	Residual       float64

	// RunID is the tune's run identity (Options.RunID or freshly
	// minted), the key its structured logs and candidate executions
	// correlate under.
	RunID string
}

// ApplyBest applies the winning configuration to c in place; when the
// blocking baseline won it leaves c untouched and returns an empty
// report. Besides rewriting the program it configures the kernel
// engine's process-global split-K factor (tensor.SetKernelSplitK) —
// that knob is part of the tuned decision but acts at execution time,
// not in the program text, so applying the decision must set it or a
// later bare Run would not execute the measured winner. Executors that
// run plans concurrently must not rely on the global: they carry the
// factor per run via runtime.Options.KernelSplitK (see
// runtime.ExplicitSplitK), which insulates an executing plan from
// ApplyBest on another.
func (r *Result) ApplyBest(c *hlo.Computation) (core.Report, error) {
	if r.BestIsBaseline {
		tensor.SetKernelSplitK(0)
		return core.Report{}, nil
	}
	tensor.SetKernelSplitK(r.Best.KernelSplitK)
	return core.Apply(c, r.Best)
}

// ProgramFingerprint returns the cache identity of a computation: a
// hash of its printed form, so any structural change re-tunes.
func ProgramFingerprint(c *hlo.Computation) string {
	return fmt.Sprintf("%x", sha256.Sum256([]byte(c.Format())))[:16]
}

// Tune searches the pipeline variant space for the computation and
// returns the fastest configuration by measured wall-clock. c is not
// modified; args follows sim.Interpret's convention (args[i][d] is
// parameter i's value on device d, a single entry replicates).
func Tune(c *hlo.Computation, numDevices int, args [][]*tensor.Tensor, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if c == nil {
		return nil, fmt.Errorf("autotune: nil computation")
	}
	if numDevices < 1 {
		return nil, fmt.Errorf("autotune: need at least one device")
	}
	if err := opts.Spec.Validate(); err != nil {
		return nil, err
	}

	if opts.RunID == "" {
		opts.RunID = obs.NewRunID()
	}
	res := &Result{
		Fingerprint:    cacheKey(c, opts.Spec, numDevices),
		Calibration:    machine.Identity(),
		CalibratedSpec: opts.Spec,
		Residual:       -1,
		RunID:          opts.RunID,
	}

	atTunes.Inc()

	// Warm path: a cached decision answers without touching the runtime.
	if !opts.DisableCache {
		res.CachePath = cachePath(opts)
		if entry, ok := cacheLookup(res.CachePath, res.Fingerprint); ok {
			atCacheHits.Inc()
			entry.fill(res, opts.Spec)
			obs.Log().Info("autotune.tune", "run_id", res.RunID,
				"fingerprint", res.Fingerprint, "cache_hit", true, "best", res.BestName)
			return res, nil
		}
	}
	atCacheMisses.Inc()

	// Stage 1: enumerate, transform clones, rank by simulated time.
	cands := enumerate(c, numDevices, opts)
	stage1(cands, c, numDevices, opts)
	res.Candidates = rank(cands)
	atCandidates.Add(float64(len(res.Candidates)))

	// Stage 2: execute the top-K (plus the paper's default) for real.
	if err := stage2(res, c, numDevices, args, opts); err != nil {
		return nil, err
	}
	atExecutions.Add(float64(res.Executions))

	if opts.Calibrate {
		calibrate(res, numDevices, opts)
		if res.Residual >= 0 {
			atResidual.Set(res.Residual)
		}
	}

	if !opts.DisableCache {
		if err := cacheStore(res.CachePath, res.Fingerprint, res); err != nil {
			return nil, fmt.Errorf("autotune: storing decision: %w", err)
		}
	}
	obs.Log().Info("autotune.tune", "run_id", res.RunID,
		"fingerprint", res.Fingerprint, "cache_hit", false,
		"best", res.BestName, "executions", res.Executions)
	return res, nil
}

// enumerate builds the candidate list: the blocking baseline plus every
// configuration core.EnumerateOptions yields.
func enumerate(c *hlo.Computation, numDevices int, opts Options) []*Candidate {
	cands := []*Candidate{{Name: "baseline", Baseline: true}}
	for _, o := range core.EnumerateOptions(opts.Spec, numDevices, c) {
		name := o.Fingerprint()
		if o.Rolled {
			name = "rolled"
		}
		cands = append(cands, &Candidate{Name: name, Opts: o})
	}
	return cands
}

// stage1 transforms a clone of the program per candidate, dedups
// byte-identical results, and simulates each unique survivor. The dedup
// key is the transformed program text plus the kernel split-K factor:
// the factor changes execution (it reassociates skinny contractions)
// without changing a single emitted instruction, so two candidates with
// identical text but different factors are distinct measurements.
func stage1(cands []*Candidate, c *hlo.Computation, numDevices int, opts Options) {
	seen := map[string]*Candidate{}
	for _, cand := range cands {
		clone := c.Clone()
		if !cand.Baseline {
			if _, err := core.Apply(clone, cand.Opts); err != nil {
				cand.Err = err.Error()
				continue
			}
		}
		text := fmt.Sprintf("ksplit=%d\n%s", cand.Opts.KernelSplitK, clone.Format())
		if first, dup := seen[text]; dup {
			cand.DuplicateOf = first.Name
			cand.Predicted = first.Predicted
			continue
		}
		seen[text] = cand
		cand.transformed = clone
		bd, err := sim.Simulate(clone, numDevices, opts.Spec)
		if err != nil {
			cand.Err = err.Error()
			cand.transformed = nil
			delete(seen, text)
			continue
		}
		cand.Predicted = bd
	}
}

// rank orders candidates by predicted step time; duplicates follow
// their canonical candidate, errored candidates sink to the end.
func rank(cands []*Candidate) []Candidate {
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		switch {
		case (a.Err == "") != (b.Err == ""):
			return a.Err == ""
		case a.Err != "":
			return false
		}
		if a.Predicted.StepTime != b.Predicted.StepTime {
			return a.Predicted.StepTime < b.Predicted.StepTime
		}
		// Ties (e.g. duplicates): keep unique candidates first.
		return a.transformed != nil && b.transformed == nil
	})
	out := make([]Candidate, len(cands))
	for i, c := range cands {
		out[i] = *c
	}
	return out
}

// stage2 executes the top-K unique candidates — forcing the paper's
// DefaultOptions configuration into the set so the tuned result can
// never be slower than it in the same measurement session — and picks
// the fastest by wall-clock.
func stage2(res *Result, c *hlo.Computation, numDevices int, args [][]*tensor.Tensor, opts Options) error {
	defaultFP := defaultFingerprint(opts.Spec)
	toRun := []int{}
	haveDefault := false
	for i := range res.Candidates {
		cand := &res.Candidates[i]
		if cand.transformed == nil || len(toRun) >= opts.TopK {
			continue
		}
		toRun = append(toRun, i)
		if cand.coversFingerprint(defaultFP, res.Candidates) {
			haveDefault = true
		}
	}
	if !haveDefault {
		for i := range res.Candidates {
			cand := &res.Candidates[i]
			if cand.transformed != nil && cand.coversFingerprint(defaultFP, res.Candidates) {
				toRun = append(toRun, i)
				haveDefault = true
				break
			}
		}
	}
	if len(toRun) == 0 {
		return fmt.Errorf("autotune: no candidate survived stage 1 (first error: %s)", firstErr(res.Candidates))
	}

	ropts := runtime.Options{Spec: opts.Spec, TimeScale: opts.TimeScale}

	// Each candidate's kernel split-K factor travels in the run's own
	// options and in the interpreter's explicit-factor entry point — the
	// two engines must agree on the factor for the bitwise cross-check
	// to be meaningful. Nothing touches the process-global knob, so a
	// tune never perturbs plans executing concurrently elsewhere in the
	// process (and their ApplyBest never perturbs this tune).

	// One untimed warmup run: the first execution in a process pays for
	// thread-pool and allocator spin-up that would otherwise be charged
	// to whichever candidate happens to run first.
	ropts.RunID = opts.RunID + ".warmup"
	ropts.KernelSplitK = runtime.ExplicitSplitK(res.Candidates[toRun[0]].Opts.KernelSplitK)
	if warm, err := runtime.Run(res.Candidates[toRun[0]].transformed, numDevices, args, ropts); err == nil && warm != nil {
		res.Executions++
	}

	best := -1
	for _, i := range toRun {
		cand := &res.Candidates[i]
		ropts.KernelSplitK = runtime.ExplicitSplitK(cand.Opts.KernelSplitK)
		want, err := sim.InterpretSplitK(cand.transformed, numDevices, args, cand.Opts.KernelSplitK)
		if err != nil {
			return fmt.Errorf("autotune: interpreting %s: %w", cand.Name, err)
		}
		for r := 0; r < opts.Repeats; r++ {
			ropts.RunID = fmt.Sprintf("%s.%s.r%d", opts.RunID, cand.Name, r)
			run, err := runtime.Run(cand.transformed, numDevices, args, ropts)
			if err != nil {
				return fmt.Errorf("autotune: executing %s: %w", cand.Name, err)
			}
			res.Executions++
			if r == 0 {
				for d := range want {
					if !run.Values[d].Equal(want[d]) {
						return fmt.Errorf("autotune: %s: device %d diverges bitwise from the interpreter", cand.Name, d)
					}
				}
				cand.Checked = true
			}
			if !cand.Executed || run.Breakdown.StepTime < cand.MeasuredWall {
				cand.Measured = run.Breakdown
				cand.MeasuredWall = run.Breakdown.StepTime
			}
			cand.Executed = true
		}
		if best < 0 || cand.MeasuredWall < res.Candidates[best].MeasuredWall {
			best = i
		}
	}

	w := res.Candidates[best]
	res.Best = w.Opts
	res.BestIsBaseline = w.Baseline
	res.BestName = w.Name
	res.PredictedWall = w.Predicted.StepTime
	res.MeasuredWall = w.MeasuredWall
	return nil
}

// coversFingerprint reports whether this candidate is, or canonically
// stands in for (via dedup), the configuration with the given knob
// fingerprint.
func (cand *Candidate) coversFingerprint(fp string, all []Candidate) bool {
	if !cand.Baseline && cand.Opts.Fingerprint() == fp {
		return true
	}
	for _, other := range all {
		if other.DuplicateOf == cand.Name && !other.Baseline && other.Opts.Fingerprint() == fp {
			return true
		}
	}
	return false
}

// defaultFingerprint is the knob identity of the paper's deployed
// configuration within the enumerated space (cost-model gate off — the
// search itself is the gate).
func defaultFingerprint(spec machine.Spec) string {
	o := core.DefaultOptions(spec)
	o.UseCostModel = false
	return o.Fingerprint()
}

func firstErr(cands []Candidate) string {
	for _, c := range cands {
		if c.Err != "" {
			return c.Err
		}
	}
	return "none"
}
