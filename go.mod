module overlap

go 1.22
