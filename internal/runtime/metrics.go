package runtime

import "overlap/internal/obs"

// Runtime-side instrumentation handles, resolved once against the
// process-wide registry. The per-device goroutines update them
// concurrently from the execution hot path, which is exactly the
// workload the registry's atomic handles are built for: no locks, no
// allocation, safe under -race.
var (
	rtInstructions = obs.Default().Counter("overlap_runtime_instructions_total",
		"Instructions executed across all runtime devices (loop bodies counted per iteration).")
	rtComputeSpans = obs.Default().Histogram("overlap_runtime_compute_span_seconds",
		"Wall-clock duration of local-instruction evaluations on runtime devices.", obs.TimeBuckets())
	rtStallSpans = obs.Default().Histogram("overlap_runtime_stall_span_seconds",
		"Wall-clock duration of waits on asynchronous transfer dones.", obs.TimeBuckets())
	rtCollectiveSpans = obs.Default().Histogram("overlap_runtime_collective_span_seconds",
		"Wall-clock duration of blocking-collective rendezvous waits.", obs.TimeBuckets())
	rtTransfers = obs.Default().Counter("overlap_runtime_transfers_total",
		"Asynchronous transfers posted onto link goroutines.")
	rtTransferBytes = obs.Default().Counter("overlap_runtime_transfer_bytes_total",
		"Payload bytes posted onto link goroutines.")
)
