package serve

import (
	"sort"
	"sync"

	"overlap/internal/obs"
)

// flightRecorder is the daemon's bounded in-memory trace store: the
// last N runs in a ring, plus a kept set of the K most interesting runs
// (slowest or failed) that survive ring wraparound. The answer to "show
// me the trace of the slow run from 30 seconds ago" without unbounded
// memory: steady-state traffic cycles through the ring, while the runs
// an operator actually asks about — the outliers and the failures —
// stay addressable until something more interesting displaces them.
type flightRecorder struct {
	mu   sync.Mutex
	size int // ring capacity
	keep int // kept-set capacity

	seq     int64
	ring    []string // run IDs, oldest first once full (circular via next)
	next    int
	entries map[string]*recordedRun
	kept    map[string]struct{}
}

// recordedRun is one stored trace with its recording order and its
// keep-worthiness score.
type recordedRun struct {
	seq   int64
	score float64
	trace *obs.RunTrace
}

// keepScore ranks how much a trace deserves to outlive the ring:
// failures always outrank successes (a crashed run is the one the
// operator greps for), and among equals, slower runs win.
func keepScore(t *obs.RunTrace) float64 {
	s := t.TotalMS
	if t.StepMS > s {
		s = t.StepMS
	}
	if t.Status == obs.StatusFailed {
		s += 1e12
	}
	return s
}

func newFlightRecorder(size, keep int) *flightRecorder {
	return &flightRecorder{
		size:    size,
		keep:    keep,
		ring:    make([]string, 0, size),
		entries: make(map[string]*recordedRun),
		kept:    make(map[string]struct{}),
	}
}

// record stores one run's trace. When the ring wraps, the overwritten
// run either moves to the kept set (it outranks the weakest keeper, or
// a keep slot is free) or is evicted for good — eviction is counted in
// svTraceEvictions so memory pressure is visible in /metrics.
func (fr *flightRecorder) record(t *obs.RunTrace) {
	if t == nil || t.ID == "" {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()

	fr.seq++
	entry := &recordedRun{seq: fr.seq, score: keepScore(t), trace: t}

	if old, dup := fr.entries[t.ID]; dup {
		// Same ID recorded twice (caller retry): replace in place, the
		// ring slot it already occupies stays valid.
		entry.seq = old.seq
		fr.entries[t.ID] = entry
		svTracesRecorded.Inc()
		return
	}

	if len(fr.ring) < fr.size {
		fr.ring = append(fr.ring, t.ID)
	} else {
		victim := fr.ring[fr.next]
		fr.ring[fr.next] = t.ID
		fr.next = (fr.next + 1) % fr.size
		fr.retire(victim)
	}
	fr.entries[t.ID] = entry
	svTracesRecorded.Inc()
}

// retire decides a ring-overwritten run's fate: kept or evicted.
// Called with fr.mu held.
func (fr *flightRecorder) retire(id string) {
	e, ok := fr.entries[id]
	if !ok {
		return
	}
	if fr.keep > 0 && len(fr.kept) < fr.keep {
		fr.kept[id] = struct{}{}
		return
	}
	// Kept set full: the victim displaces the weakest keeper only when
	// it is strictly more interesting.
	weakestID, weakest := "", (*recordedRun)(nil)
	for kid := range fr.kept {
		ke := fr.entries[kid]
		if weakest == nil || ke.score < weakest.score ||
			(ke.score == weakest.score && ke.seq < weakest.seq) {
			weakestID, weakest = kid, ke
		}
	}
	if weakest != nil && e.score > weakest.score {
		delete(fr.kept, weakestID)
		delete(fr.entries, weakestID)
		fr.kept[id] = struct{}{}
	} else {
		delete(fr.entries, id)
	}
	svTraceEvictions.Inc()
}

// get returns the stored trace for a run ID, nil when unknown (evicted
// or never recorded).
func (fr *flightRecorder) get(id string) *obs.RunTrace {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if e, ok := fr.entries[id]; ok {
		return e.trace
	}
	return nil
}

// RunSummary is one flight-recorder entry as /v1/runs lists it.
type RunSummary struct {
	ID       string  `json:"id"`
	Scenario string  `json:"scenario"`
	Model    string  `json:"model,omitempty"`
	Status   string  `json:"status"`
	Start    string  `json:"start,omitempty"`
	StepMS   float64 `json:"step_ms,omitempty"`
	TotalMS  float64 `json:"total_ms,omitempty"`
	Kept     bool    `json:"kept,omitempty"`
}

// list returns every recorded run, newest first.
func (fr *flightRecorder) list() []RunSummary {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	all := make([]*recordedRun, 0, len(fr.entries))
	for _, e := range fr.entries {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq > all[j].seq })
	out := make([]RunSummary, 0, len(all))
	for _, e := range all {
		t := e.trace
		_, kept := fr.kept[t.ID]
		out = append(out, RunSummary{
			ID:       t.ID,
			Scenario: t.Scenario,
			Model:    t.Model,
			Status:   t.Status,
			Start:    t.Start,
			StepMS:   t.StepMS,
			TotalMS:  t.TotalMS,
			Kept:     kept,
		})
	}
	return out
}
