package serve

import (
	"context"
	"errors"
	"time"
)

// errOverloaded is returned when the bounded inbox is full; the HTTP
// layer maps it to 503 so callers back off instead of queueing without
// bound.
var errOverloaded = errors.New("serve: batcher inbox full")

// buildFunc compiles the plan for one fingerprint. The batcher
// guarantees at most one concurrent call per fingerprint and joins
// every waiter onto it — N simultaneous callers with identical
// fingerprints share one compile.
type buildFunc func() (*cachedPlan, error)

// planOutcome is what one plan acquisition learned: the plan, where it
// came from, and the timing breakdown the response reports.
type planOutcome struct {
	plan *cachedPlan
	// source is "hit" (plan cache), "miss" (this request triggered the
	// compile), or "coalesced" (joined a compile another request
	// triggered).
	source string
	// batchSize is how many requests the flush that picked this job up
	// carried.
	batchSize int
	// queueWait is enqueue→flush; planWait is flush→plan availability
	// (≈0 on hits).
	queueWait, planWait time.Duration
}

type planResult struct {
	outcome planOutcome
	err     error
}

// job is one request waiting for a plan: the fingerprint it needs, how
// to build it on a miss, and the response channel the batcher answers
// on (buffered, so an abandoned waiter never blocks delivery).
type job struct {
	key      string
	build    buildFunc
	resp     chan planResult
	enqueued time.Time
	source   string
	batch    int
}

// flight is one in-progress compile and everyone waiting on it.
type flight struct {
	waiters []*job
	started time.Time
}

type flightResult struct {
	key string
	val *cachedPlan
	err error
}

// batcher coalesces plan acquisitions: requests land in a bounded
// inbox, a single goroutine collects them into batches (flushing at
// maxBatch requests or maxWait after the first), groups each batch by
// fingerprint, answers hits from the plan cache, and launches exactly
// one compile per missing fingerprint — with requests in later batches
// joining compiles still in flight rather than starting their own. All
// coalescing state (the inflight map) is owned by the loop goroutine;
// workers communicate results back over the done channel.
type batcher struct {
	cache    *planCache
	inbox    chan *job
	done     chan *flightResult
	maxBatch int
	maxWait  time.Duration
	closed   chan struct{}
}

func newBatcher(cache *planCache, inboxSize, maxBatch int, maxWait time.Duration) *batcher {
	if inboxSize < 1 {
		inboxSize = 1
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxWait <= 0 {
		maxWait = time.Millisecond
	}
	b := &batcher{
		cache:    cache,
		inbox:    make(chan *job, inboxSize),
		done:     make(chan *flightResult),
		maxBatch: maxBatch,
		maxWait:  maxWait,
		closed:   make(chan struct{}),
	}
	go b.loop()
	return b
}

// submit enqueues a plan acquisition and blocks until the batcher
// answers or ctx expires. A full inbox fails fast with errOverloaded.
// An expired waiter abandons its (buffered) response channel; the
// batcher's eventual delivery is dropped on the floor, never blocked.
func (b *batcher) submit(ctx context.Context, key string, build buildFunc) (planOutcome, error) {
	j := &job{key: key, build: build, resp: make(chan planResult, 1), enqueued: time.Now()}
	select {
	case b.inbox <- j:
		svQueueDepth.Set(float64(len(b.inbox)))
	default:
		svOverload.Inc()
		return planOutcome{}, errOverloaded
	}
	select {
	case r := <-j.resp:
		return r.outcome, r.err
	case <-ctx.Done():
		return planOutcome{}, ctx.Err()
	}
}

// close stops the batcher after the caller has stopped submitting (the
// server closes it only once the HTTP layer has fully drained): the
// loop finishes every in-flight compile, answers every waiter, and
// exits.
func (b *batcher) close() {
	close(b.inbox)
	<-b.closed
}

func (b *batcher) loop() {
	defer close(b.closed)
	inflight := map[string]*flight{}
	for {
		select {
		case j, ok := <-b.inbox:
			if !ok {
				for len(inflight) > 0 {
					b.finish(<-b.done, inflight)
				}
				return
			}
			b.flush(b.collect(j, inflight), inflight)
		case d := <-b.done:
			b.finish(d, inflight)
		}
	}
}

// collect gathers one batch: the triggering job plus whatever arrives
// until the batch is full or maxWait elapses. Compile completions keep
// being serviced while collecting — a flush must never deadlock against
// its own workers.
func (b *batcher) collect(first *job, inflight map[string]*flight) []*job {
	batch := []*job{first}
	timer := time.NewTimer(b.maxWait)
	defer timer.Stop()
	for len(batch) < b.maxBatch {
		select {
		case j, ok := <-b.inbox:
			if !ok {
				return batch
			}
			batch = append(batch, j)
		case d := <-b.done:
			b.finish(d, inflight)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// flush groups the batch by fingerprint and resolves each group: join
// an in-flight compile, answer from the plan cache, or launch the one
// compile the whole group shares.
func (b *batcher) flush(batch []*job, inflight map[string]*flight) {
	now := time.Now()
	svBatchSize.Observe(float64(len(batch)))
	svQueueDepth.Set(float64(len(b.inbox)))
	groups := map[string][]*job{}
	for _, j := range batch {
		svQueueSeconds.Observe(now.Sub(j.enqueued).Seconds())
		j.batch = len(batch)
		groups[j.key] = append(groups[j.key], j)
	}
	for key, jobs := range groups {
		if f, ok := inflight[key]; ok {
			for _, j := range jobs {
				j.source = "coalesced"
			}
			svPlanCoalesced.Add(float64(len(jobs)))
			f.waiters = append(f.waiters, jobs...)
			continue
		}
		if cp, ok := b.cache.get(key); ok {
			svPlanHits.Add(float64(len(jobs)))
			for _, j := range jobs {
				j.source = "hit"
				b.answer(j, cp, nil, now)
			}
			continue
		}
		// Miss: the first waiter's build runs once for the whole group;
		// everyone else coalesces onto it.
		svPlanMisses.Inc()
		svCompiles.Inc()
		jobs[0].source = "miss"
		for _, j := range jobs[1:] {
			j.source = "coalesced"
		}
		if n := len(jobs) - 1; n > 0 {
			svPlanCoalesced.Add(float64(n))
		}
		inflight[key] = &flight{waiters: jobs, started: now}
		build := jobs[0].build
		go func(key string) {
			cp, err := build()
			b.done <- &flightResult{key: key, val: cp, err: err}
		}(key)
	}
}

// finish lands one compile: store the plan (failures store nothing —
// the next request retries rather than caching poison), answer every
// waiter, and clear the in-flight slot.
func (b *batcher) finish(d *flightResult, inflight map[string]*flight) {
	f := inflight[d.key]
	delete(inflight, d.key)
	if f == nil {
		return
	}
	if d.err == nil {
		b.cache.put(d.key, d.val)
	}
	for _, j := range f.waiters {
		b.answer(j, d.val, d.err, f.started)
	}
}

// answer delivers one job's result; the buffered response channel makes
// this non-blocking even when the waiter gave up.
func (b *batcher) answer(j *job, cp *cachedPlan, err error, flushed time.Time) {
	planWait := time.Since(flushed)
	svPlanSeconds.Observe(planWait.Seconds())
	// A job that joined an already-running flight enqueued *after* the
	// flight began; clamp so reported waits never go negative.
	queueWait := flushed.Sub(j.enqueued)
	if queueWait < 0 {
		queueWait = 0
	}
	j.resp <- planResult{
		outcome: planOutcome{
			plan:      cp,
			source:    j.source,
			batchSize: j.batch,
			queueWait: queueWait,
			planWait:  planWait,
		},
		err: err,
	}
}
