package runtime_test

import (
	"fmt"
	"math/rand"
	"testing"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/runtime"
	"overlap/internal/sim"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// siteCase bundles a buildable decomposition site with its per-device
// arguments, mirroring the core equivalence harness (which lives in
// package core and is not importable here).
type siteCase struct {
	name  string
	build func() *hlo.Computation
	args  [][]*tensor.Tensor
	n     int
}

// goldenSites builds the decomposable site shapes of the paper's three
// AllGather cases and the ReduceScatter case (both operand sides where
// they differ) over a ring of n devices.
func goldenSites(n int, rng *rand.Rand) []siteCase {
	groups := topology.NewRing(n).AxisGroups(0)
	const m, k, nn, g = 4, 6, 5, 1
	perDevice := func(shape []int) []*tensor.Tensor {
		out := make([]*tensor.Tensor, n)
		for d := range out {
			out[d] = tensor.Rand(rng, shape...)
		}
		return out
	}
	return []siteCase{
		{
			name: "ag-noncontracting",
			build: func() *hlo.Computation {
				c := hlo.NewComputation("ag1")
				a := c.Parameter(0, "a", []int{m, k})
				b := c.Parameter(1, "b", []int{k, nn})
				full := c.AllGather(a, 0, groups)
				c.Einsum("mk,kn->mn", full, b)
				return c
			},
			args: [][]*tensor.Tensor{perDevice([]int{m, k}), perDevice([]int{k, nn})},
			n:    n,
		},
		{
			name: "ag-noncontracting-rhs",
			build: func() *hlo.Computation {
				c := hlo.NewComputation("ag1r")
				a := c.Parameter(0, "a", []int{m, k})
				b := c.Parameter(1, "b", []int{k, nn})
				full := c.AllGather(b, 1, groups)
				c.Einsum("mk,kn->mn", a, full)
				return c
			},
			args: [][]*tensor.Tensor{perDevice([]int{m, k}), perDevice([]int{k, nn})},
			n:    n,
		},
		{
			name: "ag-contracting",
			build: func() *hlo.Computation {
				c := hlo.NewComputation("ag2")
				a := c.Parameter(0, "a", []int{m, k})
				b := c.Parameter(1, "b", []int{k * n, nn})
				full := c.AllGather(a, 1, groups)
				c.Einsum("mk,kn->mn", full, b)
				return c
			},
			args: [][]*tensor.Tensor{perDevice([]int{m, k}), {tensor.Rand(rng, k*n, nn)}},
			n:    n,
		},
		{
			name: "ag-batch",
			build: func() *hlo.Computation {
				c := hlo.NewComputation("ag3")
				a := c.Parameter(0, "a", []int{g, m, k})
				b := c.Parameter(1, "b", []int{g * n, k, nn})
				full := c.AllGather(a, 0, groups)
				c.Einsum("gmk,gkn->gmn", full, b)
				return c
			},
			args: [][]*tensor.Tensor{perDevice([]int{g, m, k}), {tensor.Rand(rng, g*n, k, nn)}},
			n:    n,
		},
		{
			name: "rs-lhs",
			build: func() *hlo.Computation {
				c := hlo.NewComputation("rs")
				a := c.Parameter(0, "a", []int{m * n, k})
				b := c.Parameter(1, "b", []int{k, nn})
				ein := c.Einsum("mk,kn->mn", a, b)
				c.ReduceScatter(ein, 0, groups)
				return c
			},
			args: [][]*tensor.Tensor{perDevice([]int{m * n, k}), perDevice([]int{k, nn})},
			n:    n,
		},
		{
			name: "rs-rhs",
			build: func() *hlo.Computation {
				c := hlo.NewComputation("rsr")
				a := c.Parameter(0, "a", []int{m, k})
				b := c.Parameter(1, "b", []int{k, nn * n})
				ein := c.Einsum("mk,kn->mn", a, b)
				c.ReduceScatter(ein, 1, groups)
				return c
			},
			args: [][]*tensor.Tensor{perDevice([]int{m, k}), perDevice([]int{k, nn * n})},
			n:    n,
		},
	}
}

// forceOpts returns pipeline options that decompose unconditionally.
func forceOpts(unroll, bidi bool) core.Options {
	return core.Options{
		Spec:                  machine.TPUv4(),
		Unroll:                unroll,
		Bidirectional:         bidi,
		UseCostModel:          false,
		Scheduler:             core.SchedulerBottomUp,
		FuseAddIntoEinsum:     true,
		OverlapFriendlyFusion: true,
	}
}

// variant is one pipeline configuration to cross-validate the runtime
// against the interpreter on.
type variant struct {
	name  string
	apply func(c *hlo.Computation) error
}

func variants() []variant {
	pipeline := func(opts core.Options) func(*hlo.Computation) error {
		return func(c *hlo.Computation) error {
			report, err := core.Apply(c, opts)
			if err != nil {
				return err
			}
			if report.SitesDecomposed == 0 {
				return fmt.Errorf("pipeline decomposed nothing (found %d sites)", report.SitesFound)
			}
			return nil
		}
	}
	rolled := core.Options{Spec: machine.TPUv4(), Rolled: true, UseCostModel: false, Scheduler: core.SchedulerNone}
	return []variant{
		{"blocking", func(*hlo.Computation) error { return nil }},
		{"rolled", pipeline(rolled)},
		{"decomposed", pipeline(forceOpts(false, false))},
		{"unrolled", pipeline(forceOpts(true, false))},
		{"bidirectional", pipeline(forceOpts(false, true))},
		{"unrolled-bidirectional", pipeline(forceOpts(true, true))},
	}
}

// TestCrossValidateGolden checks, for every golden decomposition case
// and every pipeline variant, that the concurrent runtime's per-device
// outputs are bit-identical to the lockstep interpreter's on the same
// transformed program — and numerically equal to the untransformed
// baseline. This is the runtime's correctness anchor.
func TestCrossValidateGolden(t *testing.T) {
	const n = 4
	for _, v := range variants() {
		rng := rand.New(rand.NewSource(7))
		for _, site := range goldenSites(n, rng) {
			t.Run(site.name+"/"+v.name, func(t *testing.T) {
				base := site.build()
				ref, err := sim.Interpret(base, site.n, site.args)
				if err != nil {
					t.Fatalf("baseline interpret: %v", err)
				}

				transformed := site.build()
				if err := v.apply(transformed); err != nil {
					t.Fatalf("apply: %v", err)
				}
				want, err := sim.Interpret(transformed, site.n, site.args)
				if err != nil {
					t.Fatalf("transformed interpret: %v", err)
				}

				res, err := runtime.Run(transformed, site.n, site.args, runtime.Options{})
				if err != nil {
					t.Fatalf("runtime run: %v", err)
				}
				for d := 0; d < site.n; d++ {
					if !res.Values[d].Equal(want[d]) {
						t.Fatalf("device %d: runtime diverges bitwise from interpreter by %v",
							d, res.Values[d].MaxDifference(want[d]))
					}
					if !res.Values[d].AllClose(ref[d], 1e-9) {
						t.Fatalf("device %d: runtime diverges from baseline by %v",
							d, res.Values[d].MaxDifference(ref[d]))
					}
				}
				if res.Breakdown.StepTime <= 0 {
					t.Fatalf("measured step time %v, want > 0", res.Breakdown.StepTime)
				}
			})
		}
	}
}

// TestInteriorValues checks the All map against sim.InterpretAll for
// every top-level instruction of a scheduled program, not just the root.
func TestInteriorValues(t *testing.T) {
	const n = 4
	rng := rand.New(rand.NewSource(11))
	site := goldenSites(n, rng)[0]
	c := site.build()
	if _, err := core.Apply(c, forceOpts(true, true)); err != nil {
		t.Fatal(err)
	}
	want, err := sim.InterpretAll(c, n, site.args)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(c, n, site.args, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range c.Instructions() {
		for d := 0; d < n; d++ {
			if !res.All[in][d].Equal(want[in][d]) {
				t.Fatalf("%s device %d: runtime value diverges from interpreter", in.Name, d)
			}
		}
	}
}

// TestSingleDevice runs a degenerate one-device ring end to end.
func TestSingleDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	site := goldenSites(1, rng)[0]
	c := site.build()
	want, err := sim.Interpret(c, 1, site.args)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(c, 1, site.args, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Values[0].Equal(want[0]) {
		t.Fatal("single-device runtime diverges from interpreter")
	}
}

// TestBlockingPermute exercises the blocking CollectivePermute path,
// including a device left out of the pairs (which must receive zeros).
func TestBlockingPermute(t *testing.T) {
	const n = 3
	build := func() *hlo.Computation {
		c := hlo.NewComputation("perm")
		a := c.Parameter(0, "a", []int{2, 3})
		c.CollectivePermute(a, []hlo.SourceTargetPair{{Source: 0, Target: 1}, {Source: 1, Target: 0}})
		return c
	}
	rng := rand.New(rand.NewSource(5))
	args := [][]*tensor.Tensor{{tensor.Rand(rng, 2, 3), tensor.Rand(rng, 2, 3), tensor.Rand(rng, 2, 3)}}
	c := build()
	want, err := sim.Interpret(c, n, args)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(build(), n, args, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < n; d++ {
		if !res.Values[d].Equal(want[d]) {
			t.Fatalf("device %d diverges", d)
		}
	}
}

// TestValidation checks that malformed runs fail fast with an error
// instead of deadlocking the device goroutines.
func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	site := goldenSites(4, rng)[0]

	if _, err := runtime.Run(site.build(), 0, site.args, runtime.Options{}); err == nil {
		t.Error("want error for zero devices")
	}
	if _, err := runtime.Run(site.build(), 4, site.args[:1], runtime.Options{}); err == nil {
		t.Error("want error for missing argument")
	}
	// A group collective whose groups miss a device would hang its
	// rendezvous; validation must reject it.
	c := hlo.NewComputation("partial")
	a := c.Parameter(0, "a", []int{2, 2})
	c.AllGather(a, 0, [][]int{{0, 1}})
	args := [][]*tensor.Tensor{{tensor.Rand(rng, 2, 2)}}
	if _, err := runtime.Run(c, 3, args, runtime.Options{}); err == nil {
		t.Error("want error for device outside every collective group")
	}
	// Wrong-shaped argument.
	bad := [][]*tensor.Tensor{{tensor.Rand(rng, 3, 3)}, site.args[1]}
	if _, err := runtime.Run(site.build(), 4, bad, runtime.Options{}); err == nil {
		t.Error("want error for mis-shaped argument")
	}
}

// TestTraceRecording runs a decomposed program with tracing on and
// checks the recorded spans land on the simulator's pid/tid tracks,
// include both compute and transfer events, respect the device window,
// and serialize as a Chrome trace.
func TestTraceRecording(t *testing.T) {
	const n = 4
	rng := rand.New(rand.NewSource(13))
	site := goldenSites(n, rng)[0]
	c := site.build()
	if _, err := core.Apply(c, forceOpts(false, false)); err != nil {
		t.Fatal(err)
	}
	opts := runtime.Options{
		Spec:         machine.TPUv4(),
		TimeScale:    200,
		Trace:        true,
		TraceDevices: 2,
	}
	res, err := runtime.Run(c, n, site.args, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace events recorded")
	}
	var computes, transfers int
	for _, ev := range res.Trace {
		if ev.PID >= 2 {
			t.Fatalf("event %s on device %d, window is 2", ev.Name, ev.PID)
		}
		switch ev.TID {
		case sim.TraceTIDCompute:
			computes++
		case sim.TraceTIDTransfer:
			transfers++
		default:
			t.Fatalf("event %s on unknown track %d", ev.Name, ev.TID)
		}
		if ev.Ph != "X" || ev.Dur < 0 {
			t.Fatalf("event %s is not a well-formed complete span", ev.Name)
		}
	}
	if computes == 0 || transfers == 0 {
		t.Fatalf("want both compute and transfer spans, got %d/%d", computes, transfers)
	}
	if _, err := sim.TraceJSON(res.Trace); err != nil {
		t.Fatalf("trace serialization: %v", err)
	}
	if res.Breakdown.AsyncTransfers == 0 || res.Breakdown.PeakInFlight == 0 {
		t.Fatalf("breakdown did not observe async transfers: %+v", res.Breakdown)
	}
	if res.Breakdown.CollectiveWire <= 0 {
		t.Fatalf("breakdown recorded no wire time: %+v", res.Breakdown)
	}
}
