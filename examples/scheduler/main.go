// scheduler contrasts the two §5.2 scheduling approaches on one
// decomposed layer: the bottom-up reverse list scheduler (Algorithm 2)
// and the top-down start-early/done-late heuristic. It prints the
// instruction order each produces around the asynchronous
// CollectivePermute pairs and the simulated step times.
//
// Run with: go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	"overlap"
	"overlap/internal/hlo"
)

func buildSite() *overlap.Computation {
	const n = 8
	c := overlap.NewComputation("site")
	groups := overlap.NewRing(n).AxisGroups(0)
	a := c.Parameter(0, "a", []int{512, 2048})
	b := c.Parameter(1, "b", []int{2048, 8192})
	full := c.AllGather(a, 0, groups)
	c.Einsum("mk,kn->mn", full, b)
	return c
}

func main() {
	const n = 8
	spec := overlap.TPUv4()
	for _, sched := range []overlap.SchedulerKind{overlap.SchedulerBottomUp, overlap.SchedulerTopDown, overlap.SchedulerNone} {
		c := buildSite()
		opts := overlap.DefaultOptions(spec)
		opts.Scheduler = sched
		opts.UseCostModel = false
		if _, err := overlap.Apply(c, opts); err != nil {
			log.Fatal(err)
		}
		bd, err := overlap.Simulate(c, n, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %v: step %.3f ms, exposed comm %.3f ms ===\n",
			sched, 1e3*bd.StepTime, 1e3*bd.Exposed)
		for i, in := range c.Instructions() {
			marker := "   "
			switch in.Op {
			case hlo.OpCollectivePermuteStart:
				marker = ">> " // transfer begins
			case hlo.OpCollectivePermuteDone:
				marker = "<< " // transfer must have landed
			}
			fmt.Printf("  %s%2d %s\n", marker, i, in.Op)
		}
		fmt.Println()
	}
}
