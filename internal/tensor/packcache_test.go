package tensor

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestPackCacheHitsAcrossIterations verifies the cache's purpose: a
// recurring packed operand (the decomposed loop's weight shard) packs
// once, then every later kernel execution against it is a hit — and
// the bytes never differ from the uncached engine.
func TestPackCacheHitsAcrossIterations(t *testing.T) {
	defer SetPackCache(true)
	SetPackCache(true)
	rng := rand.New(rand.NewSource(31))
	x := Rand(rng, 4, 96)
	w := Rand(rng, 64, 96) // rhs of "mk,nk->mn": packed every run
	want := ReferenceEinsum("mk,nk->mn", x, w)

	first := Einsum("mk,nk->mn", x, w) // populate (or refresh) the entry
	hits0 := kernelPackHits.Value()
	const iters = 20
	for i := 0; i < iters; i++ {
		if got := Einsum("mk,nk->mn", x, w); !got.Equal(want) || !first.Equal(want) {
			t.Fatal("cached pack produced different bytes than the reference")
		}
	}
	if gained := kernelPackHits.Value() - hits0; gained < iters {
		t.Fatalf("expected >= %d pack hits across iterations, got %g", iters, gained)
	}
}

// TestPackCacheInvalidationOnMutation is the staleness regression: any
// observable mutation of a cached operand — Set, writes through Data,
// in-place accumulation, or being the output of a kernel — must force
// a repack, so results always reflect current contents.
func TestPackCacheInvalidationOnMutation(t *testing.T) {
	defer SetPackCache(true)
	SetPackCache(true)
	rng := rand.New(rand.NewSource(32))
	const spec = "mk,nk->mn"
	x := Rand(rng, 4, 64)
	w := Rand(rng, 32, 64)
	check := func(stage string) {
		t.Helper()
		if got, want := Einsum(spec, x, w), ReferenceEinsum(spec, x, w); !got.Equal(want) {
			t.Fatalf("%s: kernel served a stale pack (max diff %g)", stage, got.MaxDifference(want))
		}
	}
	check("cold")
	check("warm")

	w.Set(42.5, 3, 7)
	check("after Set")

	w.Data()[11] = -3.25
	check("after write through Data")

	AddInPlace(w, Rand(rng, 32, 64))
	check("after AddInPlace")

	// A tensor used as a kernel output and then as an operand: run()'s
	// mutation note must invalidate too.
	EinsumAddInto(w, "mk,kn->mn", Rand(rng, 32, 16), Rand(rng, 16, 64))
	check("after being a kernel output")
}

// TestPackCacheEvictionBound pins the LRU bound: churning more distinct
// operands than one plan side holds evicts in LRU order instead of
// growing without bound, and evictions are counted.
func TestPackCacheEvictionBound(t *testing.T) {
	defer SetPackCache(true)
	SetPackCache(true)
	rng := rand.New(rand.NewSource(33))
	const spec = "mk,nk->mn" // rhs side packs
	e, err := einsumLookup(spec)
	if err != nil || e.plan.rhsPack == nil {
		t.Fatalf("spec %q did not build an rhs pack cache", spec)
	}
	x := Rand(rng, 2, 32)
	evict0 := kernelPackEvictions.Value()
	for i := 0; i < packCacheMaxEntries+10; i++ {
		Einsum(spec, x, Rand(rng, 8, 32))
	}
	pc := e.plan.rhsPack
	pc.mu.Lock()
	entries, recency := len(pc.entries), len(pc.recency)
	pc.mu.Unlock()
	if entries > packCacheMaxEntries || recency != entries {
		t.Fatalf("pack cache holds %d entries (recency %d), bound %d",
			entries, recency, packCacheMaxEntries)
	}
	if kernelPackEvictions.Value() == evict0 {
		t.Fatal("eviction churn was not counted")
	}
}

// TestPackCacheDisabled verifies the toggle: with the cache off the
// engine packs into pooled scratch every run, still byte-identical.
func TestPackCacheDisabled(t *testing.T) {
	defer SetPackCache(true)
	rng := rand.New(rand.NewSource(34))
	x := Rand(rng, 4, 64)
	w := Rand(rng, 32, 64)
	SetPackCache(true)
	on := Einsum("mk,nk->mn", x, w)
	SetPackCache(false)
	hits0 := kernelPackHits.Value()
	off := Einsum("mk,nk->mn", x, w)
	if kernelPackHits.Value() != hits0 {
		t.Fatal("disabled cache still served a hit")
	}
	if !on.Equal(off) {
		t.Fatal("cache on/off produced different bytes")
	}
}

// TestPackCacheConcurrentUse exercises the cache from concurrent
// goroutines — shared hits, racing first-fills, and invalidating
// mutations of a goroutine-private tensor — and is the workload the CI
// race job runs under -race. Shared tensors are only read; each
// goroutine mutates its own operand between kernels.
func TestPackCacheConcurrentUse(t *testing.T) {
	defer SetPackCache(true)
	SetPackCache(true)
	rng := rand.New(rand.NewSource(35))
	x := Rand(rng, 2, 48)
	shared := Rand(rng, 24, 48) // cached pack read by every goroutine
	want := ReferenceEinsum("mk,nk->mn", x, shared)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			own := Rand(rng, 24, 48)
			for i := 0; i < 50; i++ {
				if got := Einsum("mk,nk->mn", x, shared); !got.Equal(want) {
					errs <- fmt.Errorf("shared operand: wrong bytes on iteration %d", i)
					return
				}
				own.Set(rng.Float64(), i%24, i%48)
				got := Einsum("mk,nk->mn", x, own)
				ref := ReferenceEinsum("mk,nk->mn", x, own)
				if !got.Equal(ref) {
					errs <- fmt.Errorf("private operand: stale pack on iteration %d", i)
					return
				}
			}
			errs <- nil
		}(int64(100 + g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestGetZeroBufReturnsZeroedPrefix is the pool-poisoning regression:
// a recycled buffer carries the previous kernel's garbage, including
// in the oversized tail its power-of-two class rounds up to, so
// accumulator scratch must come back fully zeroed at the requested
// length no matter what was recycled.
func TestGetZeroBufReturnsZeroedPrefix(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		dirty := getBuf(100) // class 7 (128 capacity): tail beyond 100 is junk
		for i := range *dirty {
			(*dirty)[i] = 1e9
		}
		// Poison the tail the pool rounds up to, then recycle.
		full := (*dirty)[:cap(*dirty)]
		for i := range full {
			full[i] = -1e9
		}
		putBuf(dirty)
		z := getZeroBuf(70) // same class: likely reuses the poisoned buffer
		if len(*z) != 70 {
			t.Fatalf("getZeroBuf(70) returned length %d", len(*z))
		}
		for i, v := range *z {
			if v != 0 {
				t.Fatalf("trial %d: getZeroBuf element %d = %g, want 0", trial, i, v)
			}
		}
		putBuf(z)
	}
}

// TestTensorVersionTracking pins which operations count as observable
// mutations: construction is version 0; Set, Data and AddInPlace bump;
// read-only accessors do not.
func TestTensorVersionTracking(t *testing.T) {
	x := New(2, 3)
	if x.Version() != 0 {
		t.Fatalf("fresh tensor version %d, want 0", x.Version())
	}
	x.At(1, 2)
	x.Shape()
	x.NumElements()
	if x.Version() != 0 {
		t.Fatal("read-only accessors bumped the version")
	}
	x.Set(1, 0, 0)
	v1 := x.Version()
	if v1 == 0 {
		t.Fatal("Set did not bump the version")
	}
	_ = x.Data()
	v2 := x.Version()
	if v2 == v1 {
		t.Fatal("Data did not bump the version (live slice escapes)")
	}
	AddInPlace(x, New(2, 3))
	if x.Version() == v2 {
		t.Fatal("AddInPlace did not bump the version")
	}
}
