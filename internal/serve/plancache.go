package serve

import (
	"container/list"
	"sync"

	"overlap/internal/autotune"
	"overlap/internal/hlo"
)

// cachedPlan is a compiled plan held hot: the immutable artifact plus
// its parsed computation. The computation is executed concurrently by
// every request that shares the plan — the runtime treats the graph as
// read-only (the 16-client soak pins this under -race) — so the serve
// hot path is one map lookup and zero parsing, zero compilation.
type cachedPlan struct {
	plan *autotune.Plan
	comp *hlo.Computation
}

// planCache is a fixed-capacity LRU of compiled plans keyed by the
// autotune fingerprint. It is the in-memory tier above the on-disk
// decision cache: the disk cache spares tuning *executions*, this cache
// spares the whole compile (tune + apply + parse). A run failure never
// evicts anything — plans are pure functions of their fingerprint, so a
// failed run says nothing about the plan (see the poisoning regression
// test).
type planCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *entry
	entries map[string]*list.Element
}

type planEntry struct {
	key string
	val *cachedPlan
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached plan and marks it most recently used.
func (pc *planCache) get(key string) (*cachedPlan, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.entries[key]
	if !ok {
		return nil, false
	}
	pc.order.MoveToFront(el)
	return el.Value.(*planEntry).val, true
}

// put inserts (or refreshes) a plan, evicting the least recently used
// entry when over capacity.
func (pc *planCache) put(key string, val *cachedPlan) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[key]; ok {
		el.Value.(*planEntry).val = val
		pc.order.MoveToFront(el)
		return
	}
	pc.entries[key] = pc.order.PushFront(&planEntry{key: key, val: val})
	for pc.order.Len() > pc.cap {
		oldest := pc.order.Back()
		pc.order.Remove(oldest)
		delete(pc.entries, oldest.Value.(*planEntry).key)
		svPlanEvictions.Inc()
	}
}

// len reports the current entry count.
func (pc *planCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.order.Len()
}

// keys returns the cached fingerprints, most recently used first.
func (pc *planCache) keys() []string {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := make([]string, 0, pc.order.Len())
	for el := pc.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*planEntry).key)
	}
	return out
}
