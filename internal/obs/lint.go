package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// LintPrometheus validates data against the Prometheus text exposition
// format closely enough to catch exporter drift in CI: every non-blank
// line must be a well-formed # HELP / # TYPE comment or a sample with a
// legal metric name, optional well-formed label set, and a parseable
// value; samples must follow a # TYPE header for their family; and
// histogram families must end with matching _sum and _count series. It
// returns the number of samples seen.
func LintPrometheus(data []byte) (int, error) {
	samples := 0
	typed := map[string]string{} // family -> declared type
	for i, line := range strings.Split(string(data), "\n") {
		n := i + 1
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, family, rest, err := parseComment(line)
			if err != nil {
				return samples, fmt.Errorf("line %d: %v", n, err)
			}
			if kind == "TYPE" {
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return samples, fmt.Errorf("line %d: unknown metric type %q", n, rest)
				}
				if _, dup := typed[family]; dup {
					return samples, fmt.Errorf("line %d: duplicate # TYPE for %q", n, family)
				}
				typed[family] = rest
			}
			continue
		}
		name, _, err := parseSample(line)
		if err != nil {
			return samples, fmt.Errorf("line %d: %v", n, err)
		}
		family := sampleFamily(name, typed)
		if _, ok := typed[family]; !ok {
			return samples, fmt.Errorf("line %d: sample %q precedes its # TYPE header", n, name)
		}
		samples++
	}
	for family, kind := range typed {
		if kind != "histogram" {
			continue
		}
		for _, suffix := range []string{"_sum", "_count", "_bucket"} {
			if !strings.Contains(string(data), family+suffix) {
				return samples, fmt.Errorf("histogram %q missing %s series", family, suffix)
			}
		}
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples found")
	}
	return samples, nil
}

// parseComment validates a # HELP or # TYPE line and returns its kind,
// metric family, and remainder.
func parseComment(line string) (kind, family, rest string, err error) {
	fields := strings.SplitN(strings.TrimPrefix(line, "#"), " ", 4)
	// "# KIND name rest..." splits into ["", KIND, name, rest].
	if len(fields) < 3 || fields[0] != "" {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	kind = fields[1]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", fmt.Errorf("unknown comment kind %q (want HELP or TYPE)", kind)
	}
	family = fields[2]
	if !validMetricName(family) {
		return "", "", "", fmt.Errorf("invalid metric name %q", family)
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return kind, family, rest, nil
}

// parseSample validates one "name[{labels}] value [timestamp]" line.
func parseSample(line string) (name string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := lintLabels(rest[i+1 : j]); err != nil {
			return "", 0, fmt.Errorf("%v in %q", err, line)
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", 0, fmt.Errorf("sample %q needs a name and a value", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !validMetricName(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", 0, fmt.Errorf("sample %q needs a value (and at most a timestamp)", line)
	}
	value, err = parsePromFloat(fields[0])
	if err != nil {
		return "", 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, value, nil
}

// lintLabels validates a comma-separated name="value" list.
func lintLabels(s string) error {
	if s == "" {
		return nil
	}
	for _, pair := range strings.Split(s, ",") {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return fmt.Errorf("label %q missing '='", pair)
		}
		name, val := pair[:eq], pair[eq+1:]
		if !validLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			return fmt.Errorf("label value %s must be quoted", val)
		}
	}
	return nil
}

// parsePromFloat accepts Prometheus sample values: Go floats plus the
// +Inf / -Inf / NaN spellings.
func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "NaN", "Nan":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// sampleFamily strips the histogram/summary sample suffixes so the
// series maps back to its # TYPE declaration.
func sampleFamily(name string, typed map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if k, ok := typed[base]; ok && (k == "histogram" || k == "summary") {
				return base
			}
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
