package core

import (
	"math/rand"
	"strings"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/sim"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// bucketProgram builds three ring AllReduces of different shapes — a
// stand-in for per-weight gradient reductions — rooted in a tuple.
func bucketProgram(n int) (*hlo.Computation, []*hlo.Instruction) {
	c := hlo.NewComputation("buckets")
	groups := topology.NewRing(n).AxisGroups(0)
	a := c.Parameter(0, "a", []int{4, 8})
	b := c.Parameter(1, "b", []int{8})
	d := c.Parameter(2, "d", []int{2, 2, 2})
	rs := []*hlo.Instruction{
		c.AllReduce(a, groups),
		c.AllReduce(b, groups),
		c.AllReduce(d, groups),
	}
	c.Tuple(rs...)
	return c, rs
}

// intArgs supplies small integer-valued tensors: integer sums are exact
// in float64 no matter the association, so the bucketed ring all-reduce
// must reproduce the blocking collective bit for bit.
func intArgs(rng *rand.Rand, c *hlo.Computation, n int) [][]*tensor.Tensor {
	params := c.Parameters()
	args := make([][]*tensor.Tensor, len(params))
	for i, p := range params {
		shards := make([]*tensor.Tensor, n)
		for dev := range shards {
			t := tensor.New(p.Shape...)
			for j := range t.Data() {
				t.Data()[j] = float64(rng.Intn(17) - 8)
			}
			shards[dev] = t
		}
		args[i] = shards
	}
	return args
}

func interpretRootOperands(t *testing.T, c *hlo.Computation, n int, args [][]*tensor.Tensor) [][]*tensor.Tensor {
	t.Helper()
	all, err := sim.InterpretAll(c, n, args)
	if err != nil {
		t.Fatal(err)
	}
	root := c.Root()
	out := make([][]*tensor.Tensor, len(root.Operands))
	for i, op := range root.Operands {
		out[i] = all[op]
	}
	return out
}

func TestBucketAllReducesMatchesBlocking(t *testing.T) {
	const n = 4
	rng := rand.New(rand.NewSource(7))
	ref, _ := bucketProgram(n)
	args := intArgs(rng, ref, n)
	want := interpretRootOperands(t, ref, n, args)

	for _, maxBytes := range []int64{1, 64, 1 << 20} {
		c, _ := bucketProgram(n)
		infos := BucketAllReduces(c, maxBytes)
		if len(infos) == 0 {
			t.Fatalf("maxBytes=%d: no buckets formed", maxBytes)
		}
		if err := c.Verify(); err != nil {
			t.Fatalf("maxBytes=%d: %v", maxBytes, err)
		}
		for _, in := range c.Instructions() {
			if in.Op == hlo.OpAllReduce {
				t.Fatalf("maxBytes=%d: blocking AllReduce %s survived the pass", maxBytes, in.Name)
			}
		}
		got := interpretRootOperands(t, c, n, args)
		for i := range want {
			for dev := 0; dev < n; dev++ {
				if !got[i][dev].Equal(want[i][dev]) {
					t.Fatalf("maxBytes=%d: root operand %d device %d diverges from blocking all-reduce", maxBytes, i, dev)
				}
			}
		}
	}
}

func TestBucketAllReducesByteBound(t *testing.T) {
	const n = 4
	c, _ := bucketProgram(n)
	// Payloads are 128B + 32B + 32B; a 64-byte bound forces the first
	// into its own bucket and lets the two small ones share.
	infos := BucketAllReduces(c, 64)
	if len(infos) != 2 {
		t.Fatalf("got %d buckets, want 2: %+v", len(infos), infos)
	}
	if len(infos[0].Members) != 1 || len(infos[1].Members) != 2 {
		t.Fatalf("bucket membership %+v, want [1, 2]", infos)
	}
	one, _ := bucketProgram(n)
	all := BucketAllReduces(one, 1<<20)
	if len(all) != 1 || len(all[0].Members) != 3 {
		t.Fatalf("unbounded bucket %+v, want one bucket of 3", all)
	}
	if all[0].Bytes != 192 {
		t.Fatalf("bucket bytes %d, want 192", all[0].Bytes)
	}
}

func TestBucketNamesCarryPrefix(t *testing.T) {
	const n = 4
	c, _ := bucketProgram(n)
	infos := BucketAllReduces(c, 1<<20)
	if len(infos) != 1 {
		t.Fatalf("want one bucket, got %+v", infos)
	}
	permutes := 0
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpCollectivePermute && strings.HasPrefix(in.Name, "gbkt0.") {
			permutes++
		}
	}
	// N reduce-scatter steps plus N-1 all-gather shifts.
	if want := 2*n - 1; permutes != want {
		t.Fatalf("found %d prefixed permutes, want %d", permutes, want)
	}
	// The prefix must survive MakeAsync so trace spans stay addressable.
	MakeAsync(c)
	prefixedStarts := 0
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpCollectivePermuteStart && strings.HasPrefix(in.Name, "gbkt0.") {
			prefixedStarts++
		}
	}
	if prefixedStarts != 2*n-1 {
		t.Fatalf("found %d prefixed starts after MakeAsync, want %d", prefixedStarts, 2*n-1)
	}
}

// TestBucketDependentAllReducesSplit: an AllReduce feeding another must
// not share its bucket (the concat would create a cycle); the pass cuts
// the bucket and the program still evaluates correctly.
func TestBucketDependentAllReducesSplit(t *testing.T) {
	const n = 2
	build := func() *hlo.Computation {
		c := hlo.NewComputation("dep")
		groups := topology.NewRing(n).AxisGroups(0)
		a := c.Parameter(0, "a", []int{4})
		r1 := c.AllReduce(a, groups)
		r2 := c.AllReduce(c.Add(r1, a), groups)
		c.Tuple(r1, r2)
		return c
	}
	rng := rand.New(rand.NewSource(11))
	ref := build()
	args := intArgs(rng, ref, n)
	want := interpretRootOperands(t, ref, n, args)

	c := build()
	infos := BucketAllReduces(c, 1<<20)
	if len(infos) != 2 {
		t.Fatalf("dependent AllReduces share a bucket: %+v", infos)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	got := interpretRootOperands(t, c, n, args)
	for i := range want {
		for dev := 0; dev < n; dev++ {
			if !got[i][dev].Equal(want[i][dev]) {
				t.Fatalf("root operand %d device %d diverges", i, dev)
			}
		}
	}
}

// TestApplyWithBucketsSchedulesAsync: through the full pipeline, the
// bucket permutes become scheduled start/done pairs and the program
// still verifies and matches the blocking baseline.
func TestApplyWithBucketsSchedulesAsync(t *testing.T) {
	const n = 4
	rng := rand.New(rand.NewSource(13))
	ref, _ := bucketProgram(n)
	args := intArgs(rng, ref, n)
	want := interpretRootOperands(t, ref, n, args)

	c, _ := bucketProgram(n)
	opts := DefaultOptions(machine.TPUv4())
	opts.UseCostModel = false
	opts.GradBucketBytes = 1 << 20
	report, err := Apply(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Buckets) != 1 {
		t.Fatalf("report.Buckets = %+v, want one bucket", report.Buckets)
	}
	starts := 0
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpCollectivePermuteStart {
			starts++
		}
	}
	if starts == 0 {
		t.Fatal("bucket permutes were not made asynchronous")
	}
	got := interpretRootOperands(t, c, n, args)
	for i := range want {
		for dev := 0; dev < n; dev++ {
			if !got[i][dev].Equal(want[i][dev]) {
				t.Fatalf("root operand %d device %d diverges after Apply", i, dev)
			}
		}
	}
}
