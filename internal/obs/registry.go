package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds a set of named metrics. Registration (Counter, Gauge,
// Histogram) takes a lock and may allocate; the returned handles are
// then updated lock- and allocation-free with atomics, so the runtime's
// per-device goroutines can bump them from the hot path concurrently.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
	enabled atomic.Bool
}

// metric is the exporter-facing view every metric kind implements.
type metric interface {
	kind() string
	snapshot(name, help string) MetricSnapshot
	help() string
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{metrics: map[string]metric{}}
	r.enabled.Store(true)
	return r
}

// SetEnabled turns recording on or off. A disabled registry's handles
// drop updates at the cost of one atomic load, which bounds the
// instrumentation overhead measurable by benchmarks.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether handles record updates.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// register installs m under name or returns the existing metric; a name
// reused with a different kind is a programming error and panics.
func (r *Registry) register(name, help, kind string, m metric) metric {
	if name == "" {
		panic("obs: metric needs a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.metrics[name]; ok {
		if got.kind() != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, got.kind()))
		}
		return got
	}
	r.metrics[name] = m
	return m
}

// Counter returns the monotonically increasing metric with the given
// name, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "counter", &Counter{reg: r, helpText: help}).(*Counter)
}

// Gauge returns the set-to-current-value metric with the given name,
// creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "gauge", &Gauge{reg: r, helpText: help}).(*Gauge)
}

// Histogram returns the fixed-bucket distribution metric with the given
// name, creating it on first use. buckets are ascending upper bounds in
// the observed unit; the implicit +Inf bucket is added automatically.
// Re-registering an existing histogram ignores the buckets argument.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets must ascend", name))
		}
	}
	h := &Histogram{reg: r, helpText: help, bounds: append([]float64(nil), buckets...)}
	h.counts = make([]atomic.Uint64, len(buckets)+1)
	return r.register(name, help, "histogram", h).(*Histogram)
}

// Snapshot returns a point-in-time copy of every metric, sorted by
// name, from which the exporters render.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	metrics := make(map[string]metric, len(r.metrics))
	for name, m := range r.metrics {
		metrics[name] = m
	}
	r.mu.Unlock()

	sort.Strings(names)
	out := make([]MetricSnapshot, 0, len(names))
	for _, name := range names {
		m := metrics[name]
		out = append(out, m.snapshot(name, m.help()))
	}
	return out
}

// MetricSnapshot is one metric's exported state.
type MetricSnapshot struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Help string `json:"help,omitempty"`

	// Value carries a counter's or gauge's reading; unused for
	// histograms.
	Value float64 `json:"value"`

	// Buckets, Sum and Count carry a histogram's cumulative bucket
	// counts (le = upper bound, +Inf last), total of observations, and
	// observation count.
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Count   uint64           `json:"count,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket. Its JSON form
// renders the upper bound as a string ("0.001", "+Inf") — the same
// spelling Prometheus uses for le labels — because +Inf has no JSON
// number representation.
type BucketSnapshot struct {
	LE    float64 `json:"-"`
	Count uint64  `json:"count"`
}

// MarshalJSON implements the stable bucket schema {"le": "...",
// "count": n}.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, formatValue(b.LE), b.Count)), nil
}

// ---- counter ----

// Counter is a monotonically increasing float64. The zero value is not
// usable; obtain one from Registry.Counter.
type Counter struct {
	reg      *Registry
	helpText string
	bits     atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are dropped to preserve
// monotonicity. Allocation-free.
func (c *Counter) Add(delta float64) {
	if c == nil || delta <= 0 || !c.reg.enabled.Load() {
		return
	}
	atomicAddFloat(&c.bits, delta)
}

// Value returns the current reading.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

func (c *Counter) kind() string { return "counter" }
func (c *Counter) help() string { return c.helpText }
func (c *Counter) snapshot(name, help string) MetricSnapshot {
	return MetricSnapshot{Name: name, Type: "counter", Help: help, Value: c.Value()}
}

// ---- gauge ----

// Gauge is a value that can go up and down. The zero value is not
// usable; obtain one from Registry.Gauge.
type Gauge struct {
	reg      *Registry
	helpText string
	bits     atomic.Uint64 // float64 bits
}

// Set stores the current value. Allocation-free.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.reg.enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta. Allocation-free.
func (g *Gauge) Add(delta float64) {
	if g == nil || delta == 0 || !g.reg.enabled.Load() {
		return
	}
	atomicAddFloat(&g.bits, delta)
}

// Value returns the current reading.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) kind() string { return "gauge" }
func (g *Gauge) help() string { return g.helpText }
func (g *Gauge) snapshot(name, help string) MetricSnapshot {
	return MetricSnapshot{Name: name, Type: "gauge", Help: help, Value: g.Value()}
}

// ---- histogram ----

// Histogram counts observations into fixed buckets. The zero value is
// not usable; obtain one from Registry.Histogram.
type Histogram struct {
	reg      *Registry
	helpText string
	bounds   []float64 // ascending upper bounds; +Inf implicit
	counts   []atomic.Uint64
	sumBits  atomic.Uint64 // float64 bits
	count    atomic.Uint64
}

// Observe records one value. Allocation-free: a linear scan over the
// (small, fixed) bucket bounds plus three atomic updates.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.reg.enabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) kind() string { return "histogram" }
func (h *Histogram) help() string { return h.helpText }
func (h *Histogram) snapshot(name, help string) MetricSnapshot {
	s := MetricSnapshot{Name: name, Type: "histogram", Help: help, Sum: h.Sum(), Count: h.Count()}
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, BucketSnapshot{LE: le, Count: cum})
	}
	return s
}

// ExpBuckets returns n ascending bucket bounds starting at start and
// growing by factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// TimeBuckets are the default bounds for span durations in seconds:
// 1µs up to ~67s in powers of four.
func TimeBuckets() []float64 { return ExpBuckets(1e-6, 4, 13) }

// atomicAddFloat CAS-adds delta onto a float64 stored as uint64 bits.
func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}
