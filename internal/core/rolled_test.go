package core

import (
	"math/rand"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/sim"
	"overlap/internal/topology"
)

func rolledOpts() Options {
	opts := forceOpts(false, false, SchedulerNone, false)
	opts.Rolled = true
	return opts
}

// TestRolledEquivalenceMatrix proves the rolled (counted-loop) emission
// computes exactly what the blocking original did, for every site shape
// and several ring sizes.
func TestRolledEquivalenceMatrix(t *testing.T) {
	kinds := []siteKind{
		siteAGNonContracting, siteAGNonContractingRHS, siteAGContracting,
		siteAGBatch, siteRS, siteRSRHS,
	}
	rng := rand.New(rand.NewSource(31))
	for _, kind := range kinds {
		for _, n := range []int{2, 3, 4, 6} {
			tc := makeSite(kind, ringGroups(n), n, rng)
			checkEquivalence(t, tc, rolledOpts(), label(kind, n, rolledOpts())+"/rolled")
		}
	}
}

// TestRolledOnMeshAxis checks the rolled form on subgroup rings with
// non-unit stride.
func TestRolledOnMeshAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	mesh := topology.NewTorus2D(2, 3)
	for axis := 0; axis < 2; axis++ {
		groups := mesh.AxisGroups(axis)
		for _, kind := range []siteKind{siteAGNonContracting, siteRS} {
			tc := makeSite(kind, groups, mesh.NumDevices(), rng)
			checkEquivalence(t, tc, rolledOpts(), label(kind, mesh.Dim(axis), rolledOpts())+"/rolled-mesh")
		}
	}
}

// TestRolledStructure: the rewrite produces exactly one loop whose body
// carries the per-iteration aliasing Copy and a blocking
// CollectivePermute — the §5.4.1 premise.
func TestRolledStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tc := makeSite(siteRS, ringGroups(4), 4, rng)
	c := tc.build()
	if _, err := Apply(c, rolledOpts()); err != nil {
		t.Fatal(err)
	}
	var loop *hlo.Instruction
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpLoop {
			if loop != nil {
				t.Fatal("more than one loop emitted")
			}
			loop = in
		}
	}
	if loop == nil {
		t.Fatal("no loop emitted")
	}
	if loop.TripCount != 4 || loop.ResultIndex != 0 {
		t.Fatalf("loop trip=%d result=%d", loop.TripCount, loop.ResultIndex)
	}
	hasCopy, hasCP := false, false
	for _, in := range loop.Body.Instructions() {
		switch in.Op {
		case hlo.OpCopy:
			hasCopy = true
		case hlo.OpCollectivePermute:
			hasCP = true
		}
	}
	if !hasCopy || !hasCP {
		t.Fatalf("loop body missing copy (%v) or permute (%v)", hasCopy, hasCP)
	}
}

// TestRolledSlowerThanExpanded: the rolled form cannot overlap and pays
// the aliasing copies, so the expanded + scheduled pipeline must beat it
// — the quantitative reason the paper's implementation unrolls.
func TestRolledSlowerThanExpanded(t *testing.T) {
	const n = 8
	spec := machine.TPUv4()
	rolled := bigSite(n)
	if _, err := Apply(rolled, rolledOpts()); err != nil {
		t.Fatal(err)
	}
	rolledBd, err := sim.Simulate(rolled, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	expanded := bigSite(n)
	if _, err := Apply(expanded, forceOpts(true, true, SchedulerBottomUp, true)); err != nil {
		t.Fatal(err)
	}
	expandedBd, err := sim.Simulate(expanded, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	if expandedBd.StepTime >= rolledBd.StepTime {
		t.Fatalf("expanded %.3gs not faster than rolled %.3gs", expandedBd.StepTime, rolledBd.StepTime)
	}
}

// TestRolledLoopCostMatchesSimulation: the machine model's serial loop
// cost approximates what the simulator measures for a symmetric ring.
func TestRolledLoopCostMatchesSimulation(t *testing.T) {
	const n = 4
	spec := machine.TPUv4()
	c := bigSite(n)
	if _, err := Apply(c, rolledOpts()); err != nil {
		t.Fatal(err)
	}
	var loop *hlo.Instruction
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpLoop {
			loop = in
		}
	}
	if loop == nil {
		t.Fatal("no loop")
	}
	est := spec.InstructionCost(loop)
	bd, err := sim.Simulate(c, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	// The estimate serializes wire and compute; the simulation's step
	// must be within a factor of ~2 of it (the blocking permutes do
	// serialize on a ring).
	if bd.StepTime < est/2 || bd.StepTime > est*2 {
		t.Fatalf("loop cost estimate %.3g vs simulated %.3g", est, bd.StepTime)
	}
}

// TestIterOffsetEval covers the iteration-variant offset arithmetic.
func TestIterOffsetEval(t *testing.T) {
	ring, ok := RingFromGroups(ringGroups(4))
	if !ok {
		t.Fatal("ring rejected")
	}
	off := ring.PosOffsetIter(1, 8) // ((pos + iter + 1) mod 4) * 8
	if got := off.EvalIter(2, 0); got != 24 {
		t.Fatalf("EvalIter(2,0) = %d, want 24", got)
	}
	if got := off.EvalIter(2, 3); got != 16 {
		t.Fatalf("EvalIter(2,3) = %d, want 16", got)
	}
	if got := off.Eval(2); got != 24 {
		t.Fatal("Eval must be EvalIter(·, 0)")
	}
}
