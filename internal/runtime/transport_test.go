package runtime_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	goruntime "runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"overlap/internal/hlo"
	"overlap/internal/runtime"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// TestMain lets this test binary serve as its own transport worker: a
// TransportProc run re-executes os.Executable(), which during `go test`
// is the test binary itself. MaybeWorker never returns in a worker
// process and is free otherwise.
func TestMain(m *testing.M) {
	runtime.MaybeWorker()
	os.Exit(m.Run())
}

// transports lists the fabric implementations every conformance case
// runs under.
var transports = []runtime.TransportKind{runtime.TransportChan, runtime.TransportProc}

// TestTransportConformanceGolden is the shared-suite half of the
// transport contract: for every golden decomposition case and pipeline
// variant, both transports must produce results bit-identical to the
// lockstep interpreter — and therefore to each other. Only the movement
// layer differs between them; any divergence is a transport bug by
// construction.
func TestTransportConformanceGolden(t *testing.T) {
	const n = 4
	vars := variants()
	if testing.Short() {
		vars = vars[:3]
	}
	for _, v := range vars {
		rng := rand.New(rand.NewSource(7))
		for _, site := range goldenSites(n, rng) {
			transformed := site.build()
			if err := v.apply(transformed); err != nil {
				t.Fatalf("%s/%s apply: %v", site.name, v.name, err)
			}
			want, err := sim.Interpret(transformed, site.n, site.args)
			if err != nil {
				t.Fatalf("%s/%s interpret: %v", site.name, v.name, err)
			}
			got := map[runtime.TransportKind][]*tensor.Tensor{}
			for _, tr := range transports {
				tr := tr
				t.Run(fmt.Sprintf("%s/%s/%s", site.name, v.name, tr), func(t *testing.T) {
					res, err := runtime.Run(transformed, site.n, site.args, runtime.Options{Transport: tr})
					if err != nil {
						t.Fatalf("runtime run: %v", err)
					}
					for d := 0; d < site.n; d++ {
						if !res.Values[d].Equal(want[d]) {
							t.Fatalf("device %d: transport %s diverges bitwise from interpreter by %v",
								d, tr, res.Values[d].MaxDifference(want[d]))
						}
					}
					got[tr] = res.Values
				})
			}
			if a, b := got[runtime.TransportChan], got[runtime.TransportProc]; a != nil && b != nil {
				for d := range a {
					if !a[d].Equal(b[d]) {
						t.Fatalf("%s/%s device %d: chan and proc transports disagree bitwise", site.name, v.name, d)
					}
				}
			}
		}
	}
}

// faultSite builds one decomposed golden site and extracts its directed
// fabric edges, for fault scenarios that must address a real link.
func faultSite(t *testing.T) (siteCase, [][2]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	site := goldenSites(4, rng)[0]
	c := site.build()
	if err := variants()[2].apply(c); err != nil { // decomposed
		t.Fatalf("apply: %v", err)
	}
	var edges [][2]int
	seen := map[[2]int]bool{}
	c.Walk(func(in *hlo.Instruction) {
		if in.Op != hlo.OpCollectivePermuteStart {
			return
		}
		for _, p := range in.Pairs {
			e := [2]int{p.Source, p.Target}
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
	})
	if len(edges) == 0 {
		t.Fatal("decomposed site has no fabric edges")
	}
	site.build = func() *hlo.Computation { return c }
	return site, edges
}

// TestTransportConformanceFaults pins identical failure semantics
// across transports: the same seeded fault plan must surface the same
// *RunError attribution — device, instruction, phase, fault string, and
// sentinel class — whether the fault acted on a Go channel or on a real
// socket.
func TestTransportConformanceFaults(t *testing.T) {
	site, edges := faultSite(t)
	comp := site.build()
	edge := edges[0]

	cases := []struct {
		name     string
		fault    runtime.Fault
		deadline time.Duration
		sentinel error
	}{
		{
			name:     "drop-stalls",
			fault:    runtime.Fault{Kind: runtime.FaultDrop, Src: edge[0], Dst: edge[1], K: 0},
			deadline: 200 * time.Millisecond,
			sentinel: context.DeadlineExceeded,
		},
		{
			name:     "dup-detected",
			fault:    runtime.Fault{Kind: runtime.FaultDuplicate, Src: edge[0], Dst: edge[1], K: 0},
			deadline: 10 * time.Second,
			sentinel: runtime.ErrDuplicateDelivery,
		},
		{
			name:     "delay-stalls",
			fault:    runtime.Fault{Kind: runtime.FaultDelay, Src: edge[0], Dst: edge[1], K: -1, Delay: 30 * time.Second},
			deadline: 200 * time.Millisecond,
			sentinel: context.DeadlineExceeded,
		},
		{
			name:     "crash-attributed",
			fault:    runtime.Fault{Kind: runtime.FaultCrash, Device: 1, K: 2},
			deadline: 10 * time.Second,
			sentinel: runtime.ErrInjectedCrash,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := map[runtime.TransportKind]*runtime.RunError{}
			for _, tr := range transports {
				plan := &runtime.FaultPlan{Seed: 3, Faults: []runtime.Fault{tc.fault}}
				ctx, cancel := context.WithTimeout(context.Background(), tc.deadline)
				_, err := runtime.RunContext(ctx, comp, site.n, site.args, runtime.Options{Faults: plan, Transport: tr})
				cancel()
				if err == nil {
					t.Fatalf("%s: injected %s but the run succeeded", tr, tc.fault)
				}
				if !errors.Is(err, tc.sentinel) {
					t.Fatalf("%s: error %v does not unwrap to %v", tr, err, tc.sentinel)
				}
				var re *runtime.RunError
				if !errors.As(err, &re) {
					t.Fatalf("%s: error %v is not a *RunError", tr, err)
				}
				got[tr] = re
			}
			a, b := got[runtime.TransportChan], got[runtime.TransportProc]
			if a.Device != b.Device || a.Instr != b.Instr || a.Phase != b.Phase || a.Fault != b.Fault {
				t.Fatalf("transports attribute the same fault differently:\n  chan: device=%d instr=%q phase=%s fault=%q\n  proc: device=%d instr=%q phase=%s fault=%q",
					a.Device, a.Instr, a.Phase, a.Fault, b.Device, b.Instr, b.Phase, b.Fault)
			}
		})
	}
}

// workerProcs scans /proc for live transport-worker children of this
// process (identified by the worker environment variable).
func workerProcs(t *testing.T) []int {
	t.Helper()
	self := os.Getpid()
	entries, err := os.ReadDir("/proc")
	if err != nil {
		t.Skipf("no /proc: %v", err)
	}
	var pids []int
	for _, ent := range entries {
		pid, err := strconv.Atoi(ent.Name())
		if err != nil {
			continue
		}
		stat, err := os.ReadFile(filepath.Join("/proc", ent.Name(), "stat"))
		if err != nil {
			continue
		}
		// Field 4 of /proc/pid/stat (after the parenthesized comm) is the ppid.
		rest := string(stat)
		if i := strings.LastIndexByte(rest, ')'); i >= 0 {
			rest = rest[i+2:]
		}
		fields := strings.Fields(rest)
		if len(fields) < 2 || fields[1] != strconv.Itoa(self) {
			continue
		}
		env, err := os.ReadFile(filepath.Join("/proc", ent.Name(), "environ"))
		if err != nil {
			continue
		}
		if strings.Contains(string(env), "OVERLAP_PROC_WORKER=") {
			pids = append(pids, pid)
		}
	}
	return pids
}

// TestTransportProcCleanShutdown pins the no-leak half of the proc
// contract: after a successful run and after an aborted one, every
// worker process is reaped and the goroutine count returns to baseline.
func TestTransportProcCleanShutdown(t *testing.T) {
	site, edges := faultSite(t)
	comp := site.build()
	baseline := goruntime.NumGoroutine()

	// Successful run.
	if _, err := runtime.Run(comp, site.n, site.args, runtime.Options{Transport: runtime.TransportProc}); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if pids := workerProcs(t); len(pids) != 0 {
		t.Fatalf("worker processes leaked after a clean run: %v", pids)
	}

	// Aborted run: a dropped delivery stalls the receiver until the
	// context deadline fires mid-flight.
	plan := &runtime.FaultPlan{Seed: 5, Faults: []runtime.Fault{
		{Kind: runtime.FaultDrop, Src: edges[0][0], Dst: edges[0][1], K: 0},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, err := runtime.RunContext(ctx, comp, site.n, site.args, runtime.Options{Faults: plan, Transport: runtime.TransportProc})
	if err == nil {
		t.Fatal("dropped delivery did not fail the run")
	}
	var re *runtime.RunError
	if !errors.As(err, &re) {
		t.Fatalf("abort error %v is not a *RunError", err)
	}
	if pids := workerProcs(t); len(pids) != 0 {
		t.Fatalf("worker processes leaked after an aborted run: %v", pids)
	}

	deadline := time.Now().Add(5 * time.Second)
	for goruntime.NumGoroutine() > baseline+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d at start, %d after runs", baseline, goruntime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTransportProcWorkerSIGTERM pins worker-death detection: killing a
// worker process mid-run must fail the run promptly with a structured
// ErrWorkerExit attributing the dead device — never hang, never return
// a wrong answer — and the survivors must still be reaped.
func TestTransportProcWorkerSIGTERM(t *testing.T) {
	site, edges := faultSite(t)
	comp := site.build()
	// A long injected delay keeps transfers in flight (and workers
	// needed) while the signal lands.
	plan := &runtime.FaultPlan{Seed: 9, Faults: []runtime.Fault{
		{Kind: runtime.FaultDelay, Src: edges[0][0], Dst: edges[0][1], K: -1, Delay: 20 * time.Second},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	errCh := make(chan error, 1)
	go func() {
		_, err := runtime.RunContext(ctx, comp, site.n, site.args, runtime.Options{Faults: plan, Transport: runtime.TransportProc})
		errCh <- err
	}()

	// Wait for workers to appear, then SIGTERM one.
	var victim int
	for deadline := time.Now().Add(10 * time.Second); ; {
		if pids := workerProcs(t); len(pids) > 0 {
			victim = pids[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no worker processes appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := syscall.Kill(victim, syscall.SIGTERM); err != nil {
		t.Fatalf("kill worker %d: %v", victim, err)
	}

	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("run succeeded despite a killed worker")
		}
		if !errors.Is(err, runtime.ErrWorkerExit) {
			t.Fatalf("error %v does not unwrap to ErrWorkerExit", err)
		}
		var re *runtime.RunError
		if !errors.As(err, &re) {
			t.Fatalf("error %v is not a *RunError", err)
		}
		if re.Device < 0 {
			t.Fatalf("worker exit not attributed to a device: %v", re)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not fail after its worker was killed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if pids := workerProcs(t); len(pids) == 0 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("worker processes leaked after worker death: %v", pids)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
