package sim

import (
	"strings"
	"testing"

	"overlap/internal/machine"
)

func TestRenderTimeline(t *testing.T) {
	_, events, err := SimulateTrace(traceSite(), 2, machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTimeline(events, 80)
	if !strings.Contains(out, "dev  0 comp") || !strings.Contains(out, "xfer") {
		t.Fatalf("timeline missing device rows:\n%s", out)
	}
	for _, glyph := range []string{"#", "=", "C"} {
		if !strings.Contains(out, glyph) {
			t.Errorf("timeline missing %q glyphs:\n%s", glyph, out)
		}
	}
	// Every row must be exactly the requested width between the bars.
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			j := strings.LastIndexByte(line, '|')
			if j-i-1 != 80 {
				t.Fatalf("row width %d, want 80: %q", j-i-1, line)
			}
		}
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	if out := RenderTimeline(nil, 80); !strings.Contains(out, "no events") {
		t.Fatalf("empty render = %q", out)
	}
}
