package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// RunTraceVersion is the schema version of the serialized RunTrace
// artifact. Decoding rejects any other version; extend the schema by
// adding fields, never by repurposing existing ones (a golden test pins
// the encoding).
const RunTraceVersion = 1

// Run statuses.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// Wire-span verdicts: where one wire span's instruction's wire time
// went, per the attribution analyzer. A span is stamped with its
// *instruction's* verdict (attribution aggregates a collective's ring
// steps across devices), so every span of one decomposed collective
// carries the same verdict — the per-op Figure 9 call, readable in
// place on the timeline.
const (
	VerdictHidden  = "hidden"
	VerdictPartial = "partially-hidden"
	VerdictExposed = "exposed"
)

// NewRunID returns a fresh, unique run identity ("r-" + 16 hex chars).
// Every execution path that lacks a caller-supplied ID mints one here,
// so a run's spans, metrics, structured logs, and failure all correlate
// under a single key.
func NewRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// recognizable constant rather than aborting telemetry.
		return "r-0000000000000000"
	}
	return "r-" + hex.EncodeToString(b[:])
}

// RunTrace is the run-scoped trace artifact: one execution's identity,
// the serve-path stages that led to it (queue → plan → admission →
// run), the per-device/per-instruction/per-transfer spans the executor
// measured — wire spans stamped with their attribution verdict — and
// the per-collective attribution report. It serializes to stable JSON
// (EncodeJSON/DecodeRunTrace) and to a Chrome trace (ChromeTrace) from
// this one code path, so the daemon's flight recorder, the CLIs'
// -trace-out files, and traceviz all speak the same artifact.
type RunTrace struct {
	Version  int    `json:"version"`
	ID       string `json:"id"`
	Scenario string `json:"scenario"`

	// Model, Fingerprint, and Devices identify what ran: the workload
	// name, the plan-cache fingerprint it compiled under, and the SPMD
	// ring size.
	Model       string `json:"model,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Devices     int    `json:"devices,omitempty"`

	// Start is the wall-clock start in RFC3339Nano, informational only
	// (span times are run-relative).
	Start string `json:"start,omitempty"`

	// Status is "ok" or "failed"; Error attributes a failure (device,
	// instruction, phase, injected fault) when Status is "failed".
	Status string         `json:"status"`
	Error  *RunTraceError `json:"error,omitempty"`

	// Stages are the coarse serve-path intervals of this run's request
	// (queue, plan, admission, run), in milliseconds from request start.
	Stages []RunStage `json:"stages,omitempty"`

	// Spans are the fine-grained executor spans, milliseconds from run
	// start; wire spans carry their attribution verdict.
	Spans []RunSpan `json:"spans,omitempty"`

	// Attribution is the per-collective hidden/exposed breakdown of the
	// span stream — the report the span verdicts are derived from.
	Attribution *AttributionReport `json:"attribution,omitempty"`

	// StepMS is the measured device step time; TotalMS the end-to-end
	// request latency (equals StepMS-ish for CLI runs).
	StepMS            float64 `json:"step_ms,omitempty"`
	TotalMS           float64 `json:"total_ms,omitempty"`
	OverlapEfficiency float64 `json:"overlap_efficiency,omitempty"`
}

// RunTraceError is a failed run's structured attribution, mirroring the
// runtime's RunError fields without importing it (obs is a leaf).
type RunTraceError struct {
	Device      int    `json:"device"`
	Instruction string `json:"instruction,omitempty"`
	Phase       string `json:"phase,omitempty"`
	Fault       string `json:"fault,omitempty"`
	Cause       string `json:"cause"`
}

// RunStage is one coarse serve-path interval of a run's request.
type RunStage struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// RunSpan is one executor span in the artifact: a compute-track event
// or a transfer-engine event, with wire spans stamped by the
// attribution analyzer.
type RunSpan struct {
	Device  int     `json:"device"`
	Track   int     `json:"track"`
	Cat     string  `json:"cat"`
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`

	// Verdict, HiddenFraction, and Under appear on wire spans only
	// (transfer-track transfers and blocking collective waits): the
	// instruction-level attribution verdict, its hidden fraction, and
	// the compute instructions that did the hiding, largest share
	// first.
	Verdict        string   `json:"verdict,omitempty"`
	HiddenFraction float64  `json:"hidden_fraction,omitempty"`
	Under          []string `json:"under,omitempty"`
}

// NewRunTrace assembles the artifact from an execution's span stream:
// it runs the attribution analyzer once, stamps every wire span with
// its instruction's verdict, and embeds the full report. Spans are
// sorted (device, track, start, name) so the encoding is deterministic
// regardless of collection order. Metadata fields (Model, Fingerprint,
// Stages, timings) are the caller's to fill in.
func NewRunTrace(id, scenario string, spans []Span) *RunTrace {
	rep := Attribute(spans)
	byName := make(map[string]*Attribution, len(rep.Collectives))
	for i := range rep.Collectives {
		byName[rep.Collectives[i].Name] = &rep.Collectives[i]
	}

	sorted := append([]Span(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Name < b.Name
	})

	t := &RunTrace{
		Version:           RunTraceVersion,
		ID:                id,
		Scenario:          scenario,
		Status:            StatusOK,
		OverlapEfficiency: rep.OverlapEfficiency(),
	}
	if len(rep.Collectives) > 0 || rep.StallSeconds > 0 {
		t.Attribution = &rep
	}
	for _, s := range sorted {
		rs := RunSpan{
			Device:  s.Device,
			Track:   s.Track,
			Cat:     s.Cat,
			Name:    s.Name,
			StartMS: s.Start * 1e3,
			DurMS:   s.Dur * 1e3,
		}
		if isWireSpan(s) {
			if a, ok := byName[s.Name]; ok {
				rs.Verdict = verdictOf(*a)
				rs.HiddenFraction = a.HiddenFraction()
				for i, u := range a.Under {
					if i == 3 {
						break
					}
					rs.Under = append(rs.Under, u.Name)
				}
			}
		}
		t.Spans = append(t.Spans, rs)
	}
	return t
}

// isWireSpan reports whether a span represents wire occupancy the
// analyzer attributes: an asynchronous transfer on the transfer track,
// or a blocking collective wait on the compute track.
func isWireSpan(s Span) bool {
	return (s.Track == TrackTransfer && s.Cat == CatTransfer) ||
		(s.Track == TrackCompute && s.Cat == CatCollective)
}

// verdictOf maps one collective's attribution onto its span verdict.
func verdictOf(a Attribution) string {
	switch {
	case a.Blocking || a.Hidden == 0:
		return VerdictExposed
	case a.Exposed <= 1e-12*a.Wire:
		return VerdictHidden
	default:
		return VerdictPartial
	}
}

// SetError marks the trace failed with the given attribution.
func (t *RunTrace) SetError(e RunTraceError) {
	t.Status = StatusFailed
	t.Error = &e
}

// EncodeJSON renders the artifact as stable, indented JSON (trailing
// newline included): field order is fixed by the struct, spans are
// pre-sorted, so encoding the same trace twice is byte-identical.
func (t *RunTrace) EncodeJSON() ([]byte, error) {
	data, err := json.MarshalIndent(t, "", " ")
	if err != nil {
		return nil, fmt.Errorf("obs: encoding run trace: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeRunTrace parses a serialized artifact, rejecting version
// mismatches and traces without an ID.
func DecodeRunTrace(data []byte) (*RunTrace, error) {
	var t RunTrace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("obs: run trace does not parse: %w", err)
	}
	if t.Version != RunTraceVersion {
		return nil, fmt.Errorf("obs: run trace version %d (want %d)", t.Version, RunTraceVersion)
	}
	if t.ID == "" {
		return nil, fmt.Errorf("obs: run trace has no id")
	}
	return &t, nil
}

// chromeEvent is one complete ("X") event in the Chrome trace format,
// with an args map carrying the run-scoped annotations (verdict, run
// id). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeStagePID is the pid the serve-path stage spans render under in
// the Chrome export — a pseudo-process above the device rows.
const ChromeStagePID = -1

// ChromeTrace renders the artifact as a Chrome trace file (loadable in
// Perfetto / chrome://tracing): device spans on their pid/tid tracks
// with wire spans annotated by verdict and hiding instructions, the
// serve-path stages as a pseudo-process, and the run identity in the
// file metadata. The output is deterministic: encoding the same trace
// twice is byte-identical (args maps marshal with sorted keys).
func (t *RunTrace) ChromeTrace() ([]byte, error) {
	events := make([]chromeEvent, 0, len(t.Spans)+len(t.Stages))
	for _, st := range t.Stages {
		events = append(events, chromeEvent{
			Name: st.Name, Cat: "stage", Ph: "X",
			TS: st.StartMS * 1e3, Dur: st.DurMS * 1e3,
			PID: ChromeStagePID, TID: 0,
		})
	}
	for _, s := range t.Spans {
		ev := chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: s.StartMS * 1e3, Dur: s.DurMS * 1e3,
			PID: s.Device, TID: s.Track,
		}
		if s.Verdict != "" {
			ev.Args = map[string]any{
				"verdict":         s.Verdict,
				"hidden_fraction": s.HiddenFraction,
			}
			if len(s.Under) > 0 {
				ev.Args["hidden_under"] = s.Under
			}
		}
		events = append(events, ev)
	}
	meta := map[string]any{
		"run_id":   t.ID,
		"scenario": t.Scenario,
		"status":   t.Status,
	}
	if t.Model != "" {
		meta["model"] = t.Model
	}
	if t.Fingerprint != "" {
		meta["fingerprint"] = t.Fingerprint
	}
	data, err := json.MarshalIndent(struct {
		TraceEvents []chromeEvent  `json:"traceEvents"`
		Metadata    map[string]any `json:"metadata"`
	}{events, meta}, "", " ")
	if err != nil {
		return nil, fmt.Errorf("obs: encoding chrome trace: %w", err)
	}
	return append(data, '\n'), nil
}
