package runtime

import (
	"sync"
	"time"

	"overlap/internal/hlo"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// mailKey addresses one asynchronous transfer instance: which
// CollectivePermuteStart produced it and the per-device execution count
// of that start. SPMD keeps the counters symmetric — the sender's k-th
// execution of a start pairs with the receiver's k-th execution of the
// matching done — so no further coordination is needed to match them.
type mailKey struct {
	start *hlo.Instruction
	inst  int
}

// parcel is one tensor in flight on a link.
type parcel struct {
	key   mailKey
	data  *tensor.Tensor
	bytes int64
}

// link is one directed (src,dst) connection: a buffered channel plus a
// goroutine that imposes the modeled wire time. Because every parcel for
// the edge passes through one goroutine, transfers on the same link
// serialize — the property that makes the injected delays compose like
// real link occupancy.
type link struct {
	src, dst int
	ch       chan parcel
	trace    []sim.TraceEvent
}

// fabric owns every link and every device's mailbox set.
type fabric struct {
	eng   *engine
	links map[[2]int]*link
	wg    sync.WaitGroup

	mailMu []sync.Mutex
	mail   []map[mailKey]chan *tensor.Tensor

	// delivered marks transfer instances already handed to each device,
	// enforcing the at-most-once invariant the capacity-1 mailboxes rely
	// on: a second delivery of the same key (possible only under
	// duplicate-delivery fault injection, or a fabric bug) fails the run
	// instead of wedging a link goroutine.
	delivered []map[mailKey]bool
}

// linkBuffer bounds parcels queued on one edge before the wire; a start
// only blocks posting if this many sends are already pending there,
// and even then the link goroutine is always draining, so posting can
// stall but never deadlock.
const linkBuffer = 64

// newFabric discovers the directed edges used by any asynchronous
// permute in the program (including loop bodies) and starts one link
// goroutine per edge.
func newFabric(e *engine) *fabric {
	f := &fabric{
		eng:       e,
		links:     map[[2]int]*link{},
		mailMu:    make([]sync.Mutex, e.n),
		mail:      make([]map[mailKey]chan *tensor.Tensor, e.n),
		delivered: make([]map[mailKey]bool, e.n),
	}
	for d := 0; d < e.n; d++ {
		f.mail[d] = map[mailKey]chan *tensor.Tensor{}
		f.delivered[d] = map[mailKey]bool{}
	}
	e.comp.Walk(func(in *hlo.Instruction) {
		if in.Op != hlo.OpCollectivePermuteStart {
			return
		}
		for _, p := range in.Pairs {
			edge := [2]int{p.Source, p.Target}
			if _, ok := f.links[edge]; ok {
				continue
			}
			l := &link{src: p.Source, dst: p.Target, ch: make(chan parcel, linkBuffer)}
			f.links[edge] = l
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				f.serve(l)
			}()
		}
	})
	return f
}

// serve is one link goroutine: drain parcels in order, hold the wire for
// the modeled time, deliver into the destination mailbox. Sleeping here
// releases the OS thread, so device goroutines compute while transfers
// are in flight — including on a single-core host. The sleep selects
// against the engine's abort so a failed run never waits out an
// in-flight transfer, and the injector can drop, duplicate, or delay
// individual deliveries at this choke point.
func (f *fabric) serve(l *link) {
	e := f.eng
	lf := e.injLink(l.src, l.dst)
	for p := range l.ch {
		start := e.since()
		wire := e.transferDelay(p.bytes)
		var dup *Fault
		if lf != nil {
			k := lf.next()
			if flt, ok := lf.drops[k]; ok {
				e.inj.record(flt, p.key.start.Name)
				rtFaultDrops.Inc()
				continue // lost on the wire: never delivered
			}
			for _, flt := range lf.delays {
				if flt.K >= 0 && flt.K != k {
					continue
				}
				extra := flt.Delay
				if flt.Jitter > 0 {
					extra += time.Duration(lf.rng.Float64() * float64(flt.Jitter))
				}
				wire += extra
				e.inj.record(flt, p.key.start.Name)
				rtFaultDelays.Inc()
			}
			if flt, ok := lf.dups[k]; ok {
				flt := flt
				dup = &flt
			}
		}
		if !e.sleep(wire) {
			continue // aborted mid-wire: keep draining without sleeping
		}
		if e.opts.Trace && l.src < e.traceWindow() {
			l.trace = append(l.trace, sim.TraceEvent{
				Name: p.key.start.Name, Cat: "transfer", Ph: "X",
				TS: start * 1e6, Dur: (e.since() - start) * 1e6,
				PID: l.src, TID: sim.TraceTIDTransfer,
			})
		}
		f.deliver(l.dst, p.key, p.data, "")
		if dup != nil {
			e.inj.record(*dup, p.key.start.Name)
			rtFaultDuplicates.Inc()
			f.deliver(l.dst, p.key, p.data, dup.String())
		}
	}
}

// deliver hands one parcel to its destination mailbox, enforcing
// at-most-once delivery per transfer instance. fault carries the
// injected-fault description when this delivery is itself the fault (a
// duplicate); a detected duplicate fails the run with a structured
// error attributed to the receiving device.
func (f *fabric) deliver(dst int, key mailKey, data *tensor.Tensor, fault string) {
	f.mailMu[dst].Lock()
	if f.delivered[dst][key] {
		f.mailMu[dst].Unlock()
		f.eng.fail(&RunError{
			Device: dst, Instr: key.start.Name, Phase: PhaseReceive,
			Elapsed: f.eng.sinceDur(), Fault: fault, Err: ErrDuplicateDelivery,
		})
		return
	}
	f.delivered[dst][key] = true
	ch, ok := f.mail[dst][key]
	if !ok {
		ch = make(chan *tensor.Tensor, 1)
		f.mail[dst][key] = ch
	}
	f.mailMu[dst].Unlock()
	// The at-most-once mark above guarantees room in the capacity-1
	// mailbox, so this send cannot block in a healthy run; the abort arm
	// is belt-and-braces for faulted ones.
	select {
	case ch <- data:
	case <-f.eng.abort:
	}
}

// post enqueues a transfer on its link without waiting for the wire.
// It reports false if the run aborted while the link queue was full, or
// if no link exists for the edge — a malformed program or a pair
// mutated after fabric construction — which fails the run with an error
// naming the edge instead of blocking on a nil channel forever.
func (f *fabric) post(src, dst int, key mailKey, data *tensor.Tensor, bytes int64) bool {
	l, ok := f.links[[2]int{src, dst}]
	if !ok {
		f.eng.fail(&RunError{
			Device: src, Instr: key.start.Name, Phase: PhasePost,
			Elapsed: f.eng.sinceDur(),
			Err:     formatErr("%w %d->%d (permute pair absent at fabric build time)", ErrMissingLink, src, dst),
		})
		return false
	}
	p := parcel{key: key, data: data, bytes: bytes}
	select {
	case l.ch <- p:
		rtTransfers.Inc()
		rtTransferBytes.Add(float64(bytes))
		return true
	case <-f.eng.abort:
		return false
	}
}

// receive blocks until the transfer addressed by key arrives at device
// dst, or the run aborts.
func (f *fabric) receive(dst int, key mailKey) (*tensor.Tensor, bool) {
	select {
	case t := <-f.mailbox(dst, key):
		return t, true
	case <-f.eng.abort:
		return nil, false
	}
}

// mailbox returns the single-parcel channel for one transfer instance at
// one device, creating it on first use by either side. Each key carries
// exactly one parcel (validation enforces unique pair sources, the
// fabric enforces at-most-once delivery), so delivery into the
// capacity-1 channel never blocks a link goroutine.
func (f *fabric) mailbox(dev int, key mailKey) chan *tensor.Tensor {
	f.mailMu[dev].Lock()
	defer f.mailMu[dev].Unlock()
	ch, ok := f.mail[dev][key]
	if !ok {
		ch = make(chan *tensor.Tensor, 1)
		f.mail[dev][key] = ch
	}
	return ch
}

// shutdown closes every link and joins the link goroutines. Called after
// all devices have returned: remaining parcels (possible only on abort)
// drain into mailboxes nobody reads, which cannot block because each
// key's channel has room for its one parcel and in-flight sleeps select
// against the abort.
func (f *fabric) shutdown() {
	for _, l := range f.links {
		close(l.ch)
	}
	f.wg.Wait()
}

// traceEvents merges the per-link transfer spans. Only called after
// shutdown, when link goroutines no longer append.
func (f *fabric) traceEvents() []sim.TraceEvent {
	var out []sim.TraceEvent
	for _, l := range f.links {
		out = append(out, l.trace...)
	}
	return out
}
