package core

import (
	"math/rand"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// TestDecompositionEquivalenceMatrix drives every site shape through
// every optimization combination on several ring sizes and proves the
// rewritten program computes exactly what the blocking original did —
// the paper's "semantically equivalent graph transformation" claim.
func TestDecompositionEquivalenceMatrix(t *testing.T) {
	kinds := []siteKind{
		siteAGNonContracting, siteAGNonContractingRHS, siteAGContracting,
		siteAGBatch, siteRS, siteRSRHS,
	}
	rings := []int{2, 3, 4, 5, 6, 8}
	scheds := []SchedulerKind{SchedulerNone, SchedulerBottomUp, SchedulerTopDown}
	rng := rand.New(rand.NewSource(2023))
	for _, kind := range kinds {
		for _, n := range rings {
			tc := makeSite(kind, ringGroups(n), n, rng)
			for _, unroll := range []bool{false, true} {
				for _, bidi := range []bool{false, true} {
					for _, sched := range scheds {
						for _, fuse := range []bool{false, true} {
							opts := forceOpts(unroll, bidi, sched, fuse)
							checkEquivalence(t, tc, opts, label(kind, n, opts))
						}
					}
				}
			}
		}
	}
}

// TestDecompositionOnMeshAxis applies the decomposition to subgroup
// collectives along each axis of a 2D mesh — the multi-group ring case
// with non-unit stride the 2D partitioning strategies produce.
func TestDecompositionOnMeshAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mesh := topology.NewTorus2D(2, 4)
	for axis := 0; axis < 2; axis++ {
		groups := mesh.AxisGroups(axis)
		for _, kind := range []siteKind{siteAGNonContracting, siteAGContracting, siteRS} {
			tc := makeSite(kind, groups, mesh.NumDevices(), rng)
			for _, bidi := range []bool{false, true} {
				opts := forceOpts(true, bidi, SchedulerBottomUp, true)
				checkEquivalence(t, tc, opts, label(kind, mesh.Dim(axis), opts)+"/mesh-axis")
			}
		}
	}
}

// TestAllGatherShardSchedule verifies Fig 6: in the decomposed
// AllGather loop the partial computed at step i targets shard
// (pos + i) mod N, and every transfer is the circular shift left
// {0,N-1},{1,0},....
func TestAllGatherShardSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tc := makeSite(siteAGNonContracting, ringGroups(4), 4, rng)
	c := tc.build()
	opts := forceOpts(false, false, SchedulerNone, false)
	if _, err := Apply(c, opts); err != nil {
		t.Fatal(err)
	}
	var updates []hlo.DynOffset
	var permutes []*hlo.Instruction
	for _, in := range c.Instructions() {
		switch in.Op {
		case hlo.OpDynamicUpdateSlice:
			updates = append(updates, in.Offsets[0])
		case hlo.OpCollectivePermute:
			permutes = append(permutes, in)
		}
	}
	if len(updates) != 4 {
		t.Fatalf("expected 4 partial updates, got %d", len(updates))
	}
	for i, off := range updates {
		// Device at ring position pos updates shard (pos+i): offset
		// evaluates to ((pos+i) mod 4) * shardRows with shardRows = 4.
		for pos := 0; pos < 4; pos++ {
			want := ((pos + i) % 4) * 4
			if got := off.Eval(pos); got != want {
				t.Fatalf("step %d pos %d offset = %d, want %d", i, pos, got, want)
			}
		}
	}
	if len(permutes) != 3 {
		t.Fatalf("expected N-1=3 collective permutes, got %d", len(permutes))
	}
	for _, cp := range permutes {
		for _, pr := range cp.Pairs {
			if pr.Target != (pr.Source+3)%4 {
				t.Fatalf("permute pair %v is not a circular shift left", pr)
			}
		}
	}
}

// TestReduceScatterShardSchedule verifies Fig 7: the partial computed at
// step i targets shard (pos + i + 1) mod N so the final shard id aligns
// with the device position, and the loop issues N transfers.
func TestReduceScatterShardSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tc := makeSite(siteRS, ringGroups(4), 4, rng)
	c := tc.build()
	opts := forceOpts(false, false, SchedulerNone, false)
	if _, err := Apply(c, opts); err != nil {
		t.Fatal(err)
	}
	var slices []hlo.DynOffset
	permutes := 0
	for _, in := range c.Instructions() {
		switch in.Op {
		case hlo.OpDynamicSlice:
			slices = append(slices, in.Offsets[0])
		case hlo.OpCollectivePermute:
			permutes++
		}
	}
	if len(slices) != 4 {
		t.Fatalf("expected 4 operand slices, got %d", len(slices))
	}
	for i, off := range slices {
		for pos := 0; pos < 4; pos++ {
			want := ((pos + i + 1) % 4) * 4 // shard rows = 4
			if got := off.Eval(pos); got != want {
				t.Fatalf("step %d pos %d slice offset = %d, want %d", i, pos, got, want)
			}
		}
	}
	if permutes != 4 {
		t.Fatalf("expected N=4 collective permutes (Algorithm 1), got %d", permutes)
	}
}

// TestUnrolledReduceScatterStructure verifies Fig 8: with unrolling the
// loop forms two shift-by-two chains plus one alignment epilogue
// permute, and no Copy instructions remain.
func TestUnrolledReduceScatterStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tc := makeSite(siteRS, ringGroups(4), 4, rng)
	c := tc.build()
	if _, err := Apply(c, forceOpts(true, false, SchedulerNone, false)); err != nil {
		t.Fatal(err)
	}
	shift2, shift1, copies := 0, 0, 0
	for _, in := range c.Instructions() {
		switch in.Op {
		case hlo.OpCollectivePermute:
			delta := (in.Pairs[0].Target - in.Pairs[0].Source + 4) % 4
			if delta == 2 {
				shift2++
			} else if delta == 1 {
				shift1++
			}
		case hlo.OpCopy:
			copies++
		}
	}
	if shift2 != 4 { // two chains × N/2 steps
		t.Fatalf("expected 4 shift-by-2 permutes, got %d", shift2)
	}
	if shift1 != 1 { // alignment epilogue
		t.Fatalf("expected 1 epilogue permute, got %d", shift1)
	}
	if copies != 0 {
		t.Fatalf("unrolled loop still has %d copies", copies)
	}
}

// TestNonUnrolledLoopHasCopies verifies the §5.4.1 premise: the naive
// rolled loop carries explicit Copy instructions that unrolling removes.
func TestNonUnrolledLoopHasCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, kind := range []siteKind{siteAGNonContracting, siteRS} {
		tc := makeSite(kind, ringGroups(4), 4, rng)
		c := tc.build()
		if _, err := Apply(c, forceOpts(false, false, SchedulerNone, false)); err != nil {
			t.Fatal(err)
		}
		copies := 0
		for _, in := range c.Instructions() {
			if in.Op == hlo.OpCopy {
				copies++
			}
		}
		if copies == 0 {
			t.Fatalf("%s: naive loop emitted no copies", siteKindNames[kind])
		}
	}
}

// TestBidirectionalTransferStructure verifies Figs 9–10: the
// bidirectional variants send shards in both ring directions and halve
// the number of serial steps.
func TestBidirectionalTransferStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, kind := range []siteKind{siteAGNonContracting, siteRS} {
		tc := makeSite(kind, ringGroups(4), 4, rng)
		c := tc.build()
		if _, err := Apply(c, forceOpts(true, true, SchedulerNone, false)); err != nil {
			t.Fatal(err)
		}
		leftCount, rightCount := 0, 0
		for _, in := range c.Instructions() {
			if in.Op != hlo.OpCollectivePermute {
				continue
			}
			delta := (in.Pairs[0].Target - in.Pairs[0].Source + 4) % 4
			switch delta {
			case 3:
				leftCount++
			case 1:
				rightCount++
			}
		}
		if leftCount == 0 || rightCount == 0 {
			t.Fatalf("%s: bidirectional loop uses one direction only (left=%d right=%d)",
				siteKindNames[kind], leftCount, rightCount)
		}
	}
}

// TestOddRingFallsBackToUnidirectional confirms the bidirectional option
// degrades gracefully on odd rings.
func TestOddRingFallsBackToUnidirectional(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tc := makeSite(siteAGNonContracting, ringGroups(3), 3, rng)
	c := tc.build()
	if _, err := Apply(c, forceOpts(true, true, SchedulerBottomUp, true)); err != nil {
		t.Fatal(err)
	}
	// Equivalence is the real check.
	checkEquivalence(t, tc, forceOpts(true, true, SchedulerBottomUp, true), "odd-ring-fallback")
}

// TestDecomposePreservesOtherUsers: an einsum feeding both a
// ReduceScatter and the AllGather of the next layer must stay correct
// when only one site is rewritten.
func TestMultipleSitesInOneComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, m, k, nn = 4, 4, 6, 5
	build := func() *hlo.Computation {
		c := hlo.NewComputation("two_sites")
		a := c.Parameter(0, "a", []int{m, k})
		b := c.Parameter(1, "b", []int{k, nn})
		w := c.Parameter(2, "w", []int{nn, k})
		full := c.AllGather(a, 0, ringGroups(n))
		h := c.Einsum("mk,kn->mn", full, b) // site 1: AG-einsum
		ein2 := c.Einsum("mn,nk->mk", h, w)
		c.ReduceScatter(ein2, 0, ringGroups(n)) // site 2: einsum-RS
		return c
	}
	mk := func(shape ...int) []*tensor.Tensor {
		out := make([]*tensor.Tensor, n)
		for d := range out {
			out[d] = tensor.Rand(rng, shape...)
		}
		return out
	}
	tc2 := testCase{build: build, n: n, args: [][]*tensor.Tensor{mk(m, k), mk(k, nn), mk(nn, k)}}
	opts := forceOpts(true, true, SchedulerBottomUp, true)
	base := build()
	report, err := Apply(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.SitesDecomposed != 2 {
		t.Fatalf("decomposed %d sites, want 2", report.SitesDecomposed)
	}
	checkEquivalence(t, tc2, opts, "two-sites")
}
