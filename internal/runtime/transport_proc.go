//go:build unix

package runtime

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"overlap/internal/obs"
	"overlap/internal/runtime/wire"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// procTransport runs the fabric's data plane across OS processes: each
// logical device that touches at least one directed edge gets its own
// spawned worker process (a re-exec of this binary, gated by
// MaybeWorker's environment variable), and a transfer crosses three
// Unix sockets on its way from post to deliver:
//
//	parent ──frame──▶ worker[src] ──frame──▶ worker[dst] ──frame──▶ parent
//	 (serialize)        (wire sleep,           (forward up)          (deserialize,
//	                     drop/dup act here)                           deliver)
//
// The parent keeps everything that must stay deterministic: fault
// decisions come from the run's seeded injector before the frame goes
// down (the worker only acts them out, on the real sockets), and
// mailbox addressing never leaves the fabric. Compute stays on the
// parent's device goroutines — the workers are fabric endpoints, which
// is exactly the slice of the system a multi-machine deployment would
// move onto the network first.
type procTransport struct {
	eng *engine
	fab *fabric

	workers map[int]*procWorker
	edges   map[[2]int]*procEdge

	closing atomic.Bool
	sendWG  sync.WaitGroup
	readWG  sync.WaitGroup

	// pending matches a posted frame to its delivery for the transfer
	// trace span (only touched when tracing is on).
	pendMu  sync.Mutex
	pending map[pendingKey]float64
}

type pendingKey struct {
	name     string
	inst     int
	src, dst int
}

// procWorker is the parent's handle on one spawned device process.
type procWorker struct {
	id      int
	cmd     *exec.Cmd
	control *os.File   // parent end of the control socketpair
	writeMu sync.Mutex // serializes outbound frames on the control socket
	trace   []sim.TraceEvent
}

// procEdge is the parent-side queue for one directed edge, mirroring
// the channel transport's link: per-edge ordering (and therefore wire
// serialization) is preserved because one sender goroutine drains it.
type procEdge struct {
	src, dst int
	ch       chan parcel
	trace    []sim.TraceEvent
}

func newProcTransportChecked(e *engine, f *fabric) (transport, error) {
	return newProcTransport(e, f), nil
}

func newProcTransport(e *engine, f *fabric) *procTransport {
	return &procTransport{
		eng:     e,
		fab:     f,
		workers: map[int]*procWorker{},
		edges:   map[[2]int]*procEdge{},
		pending: map[pendingKey]float64{},
	}
}

// workerEnv gates worker mode in a re-exec'd binary; workerEdgesEnv
// describes the worker's edge file descriptors. See MaybeWorker.
const (
	workerEnv      = "OVERLAP_PROC_WORKER"
	workerEdgesEnv = "OVERLAP_PROC_EDGES"
)

// start spawns one worker per participating device, wires the edge
// socketpairs between them, and brings up the parent's per-edge sender
// and per-worker reader goroutines. Any failure tears down what was
// already spawned and fails the run before a device goroutine starts.
func (t *procTransport) start(edges [][2]int) error {
	type edgeFDs struct {
		spec string // "o:<peer>:<fd>" / "i:<peer>:<fd>" fragments
		fds  []*os.File
	}
	perWorker := map[int]*edgeFDs{}
	worker := func(id int) *edgeFDs {
		w, ok := perWorker[id]
		if !ok {
			w = &edgeFDs{}
			perWorker[id] = w
		}
		return w
	}
	fail := func(err error) error {
		for _, w := range perWorker {
			for _, f := range w.fds {
				f.Close()
			}
		}
		t.shutdown()
		return formatErr("proc transport: %w", err)
	}

	for _, edge := range edges {
		src, dst := edge[0], edge[1]
		fds, err := socketpair()
		if err != nil {
			return fail(err)
		}
		// Both ends travel to children (blocking is fine here — each
		// child flips its own inherited copy); the parent only holds
		// them until Start. Child fd numbers start at 3: fd 3 is the
		// control socket, the edge fds follow in ExtraFiles order.
		outEnd := os.NewFile(uintptr(fds[0]), "edge-out")
		inEnd := os.NewFile(uintptr(fds[1]), "edge-in")
		ws, wd := worker(src), worker(dst)
		ws.fds = append(ws.fds, outEnd)
		ws.spec += fmt.Sprintf("o:%d:%d,", dst, 3+len(ws.fds))
		wd.fds = append(wd.fds, inEnd)
		wd.spec += fmt.Sprintf("i:%d:%d,", src, 3+len(wd.fds))
		t.edges[edge] = &procEdge{src: src, dst: dst, ch: make(chan parcel, linkBuffer)}
	}

	exe, err := os.Executable()
	if err != nil {
		return fail(err)
	}
	for id, wf := range perWorker {
		fds, err := socketpair()
		if err != nil {
			return fail(err)
		}
		// The parent's end is poller-registered so shutdown's Close
		// wakes the reader goroutine; the child's end stays blocking
		// until the worker flips its own copy.
		childCtl := os.NewFile(uintptr(fds[1]), "control-child")
		parentCtl, err := pollableFile(fds[0], "control-parent")
		if err != nil {
			childCtl.Close()
			return fail(err)
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("%s=%d", workerEnv, id),
			fmt.Sprintf("%s=%s", workerEdgesEnv, strings.TrimSuffix(wf.spec, ",")),
		)
		cmd.ExtraFiles = append([]*os.File{childCtl}, wf.fds...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			parentCtl.Close()
			childCtl.Close()
			return fail(err)
		}
		// The child holds its own duplicates now.
		childCtl.Close()
		for _, f := range wf.fds {
			f.Close()
		}
		wf.fds = nil
		w := &procWorker{id: id, cmd: cmd, control: parentCtl}
		t.workers[id] = w
		rtTransportWorkers.Inc()
		obs.Log().Debug("runtime.worker_spawn", "run_id", t.eng.opts.RunID,
			"device", id, "pid", cmd.Process.Pid)
	}

	for _, l := range t.edges {
		l := l
		t.sendWG.Add(1)
		go func() {
			defer t.sendWG.Done()
			t.serveEdge(l)
		}()
	}
	for _, w := range t.workers {
		w := w
		t.readWG.Add(1)
		go func() {
			defer t.readWG.Done()
			t.readWorker(w)
		}()
	}
	return nil
}

// post enqueues a transfer on its edge queue without waiting for the
// wire.
func (t *procTransport) post(src, dst int, p parcel) bool {
	l := t.edges[[2]int{src, dst}]
	select {
	case l.ch <- p:
		return true
	case <-t.eng.abort:
		return false
	}
}

// serveEdge drains one edge queue: decide the parcel's fault actions
// from the seeded injector, serialize the tensor into a frame, and send
// it down the source worker's control socket. Wire pacing happens in
// the worker; serialization cost is measured here, as a span and a
// histogram sample, because it is the genuinely new cost the process
// fabric adds over the channel one.
func (t *procTransport) serveEdge(l *procEdge) {
	e := t.eng
	lf := e.injLink(l.src, l.dst)
	w := t.workers[l.src]
	traced := e.opts.Trace && l.src < e.traceWindow()
	for p := range l.ch {
		wireDur := e.transferDelay(p.bytes)
		drop, dup, extra := e.faultActions(lf, p.key.start.Name)
		fr := wire.Frame{
			Src: l.src, Dst: l.dst,
			Name:   p.key.start.Name,
			Inst:   p.key.inst,
			WireNS: wireDur.Nanoseconds() + extra,
			Shape:  p.data.Shape(),
			Data:   p.data.Data(),
		}
		if drop {
			fr.Flags |= wire.FlagDrop
		}
		if dup != nil {
			fr.Flags |= wire.FlagDup
			fr.Fault = dup.String()
		}
		t0 := e.since()
		w.writeMu.Lock()
		err := wire.WriteFrame(w.control, &fr)
		w.writeMu.Unlock()
		ser := e.since() - t0
		rtSerializeSpans.Observe(ser)
		rtWireFrames.Inc()
		rtWireFrameBytes.Add(float64(8 * len(fr.Data)))
		if err != nil {
			if !t.closing.Load() {
				e.fail(&RunError{
					Device: l.src, Instr: p.key.start.Name, Phase: PhasePost,
					Elapsed: e.sinceDur(),
					Err:     formatErr("%w %d: %v", ErrWorkerExit, l.src, err),
				})
			}
			continue // keep draining so posters never block forever
		}
		if traced {
			l.trace = append(l.trace, sim.TraceEvent{
				Name: p.key.start.Name, Cat: "serialize", Ph: "X",
				TS: t0 * 1e6, Dur: ser * 1e6,
				PID: l.src, TID: sim.TraceTIDTransfer,
			})
			if !drop {
				t.pendMu.Lock()
				t.pending[pendingKey{fr.Name, fr.Inst, l.src, l.dst}] = t0
				t.pendMu.Unlock()
			}
		}
	}
}

// readWorker drains one worker's control socket: every frame coming up
// is a transfer that finished its socket journey, deserialized here and
// handed to the fabric for delivery. An EOF or read error while the run
// is still live means the worker died — a real fabric failure, surfaced
// as a structured *RunError attributed to that device.
func (t *procTransport) readWorker(w *procWorker) {
	e := t.eng
	var fr wire.Frame
	for {
		err := wire.ReadFrame(w.control, &fr)
		if err != nil {
			if t.closing.Load() {
				return
			}
			cause := err
			if err == io.EOF {
				cause = formatErr("control socket closed")
			}
			e.fail(&RunError{
				Device: w.id, Phase: PhaseReceive,
				Elapsed: e.sinceDur(),
				Err:     formatErr("%w %d: %v", ErrWorkerExit, w.id, cause),
			})
			return
		}
		t0 := e.since()
		// FromValues copies, so the frame's buffers are reusable.
		data := tensor.FromValues(fr.Shape, fr.Data)
		des := e.since() - t0
		rtDeserializeSpans.Observe(des)
		if e.opts.Trace && w.id < e.traceWindow() {
			w.trace = append(w.trace, sim.TraceEvent{
				Name: fr.Name, Cat: "deserialize", Ph: "X",
				TS: t0 * 1e6, Dur: des * 1e6,
				PID: w.id, TID: sim.TraceTIDTransfer,
			})
			t.pendMu.Lock()
			if post, ok := t.pending[pendingKey{fr.Name, fr.Inst, fr.Src, fr.Dst}]; ok {
				delete(t.pending, pendingKey{fr.Name, fr.Inst, fr.Src, fr.Dst})
				w.trace = append(w.trace, sim.TraceEvent{
					Name: fr.Name, Cat: "transfer", Ph: "X",
					TS: post * 1e6, Dur: (e.since() - post) * 1e6,
					PID: fr.Src, TID: sim.TraceTIDTransfer,
				})
			}
			t.pendMu.Unlock()
		}
		t.fab.deliverNamed(fr.Dst, fr.Name, fr.Inst, data, fr.Fault)
	}
}

// shutdown winds the process fabric down: stop the senders, close the
// control sockets (the workers exit on EOF), join the readers, and reap
// every worker — escalating to SIGKILL only if a worker ignores the
// close for longer than the grace period.
func (t *procTransport) shutdown() {
	t.closing.Store(true)
	for _, l := range t.edges {
		close(l.ch)
	}
	t.sendWG.Wait()
	for _, w := range t.workers {
		w.control.Close()
	}
	t.readWG.Wait()
	for _, w := range t.workers {
		done := make(chan struct{})
		go func(w *procWorker) {
			_ = w.cmd.Wait()
			close(done)
		}(w)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			_ = w.cmd.Process.Kill()
			<-done
		}
	}
}

// traceEvents merges the per-edge serialize spans and per-worker
// deserialize/transfer spans.
func (t *procTransport) traceEvents() []sim.TraceEvent {
	var out []sim.TraceEvent
	for _, l := range t.edges {
		out = append(out, l.trace...)
	}
	for _, w := range t.workers {
		out = append(out, w.trace...)
	}
	return out
}

// workerPids lists the live worker process IDs (test hook for the
// no-leaked-processes assertions).
func (t *procTransport) workerPids() []int {
	var pids []int
	for _, w := range t.workers {
		if w.cmd.Process != nil {
			pids = append(pids, w.cmd.Process.Pid)
		}
	}
	return pids
}
