package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, in Frame) Frame {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &in); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	var out Frame
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left over after one frame", buf.Len())
	}
	return out
}

// TestFrameRoundTrip encodes representative frames and decodes them
// back: every field — including flags, fault attribution, negative
// zero, NaN payload bits, and empty shapes — must survive bit for bit.
func TestFrameRoundTrip(t *testing.T) {
	nan := math.Float64frombits(0x7ff8000000000001)
	frames := []Frame{
		{Src: 0, Dst: 1, Name: "cps.0", Inst: 0, Shape: []int{2, 3}, Data: []float64{1, 2, 3, 4, 5, 6}},
		{Src: 3, Dst: 0, Name: "gbkt2.permute.17", Inst: 41, WireNS: 12345678, Shape: []int{1}, Data: []float64{math.Copysign(0, -1)}},
		{Src: 1, Dst: 2, Name: "x", Inst: 7, Flags: FlagDup, Fault: "dup:link:1-2:7", Shape: []int{4}, Data: []float64{nan, math.Inf(1), math.Inf(-1), -1e-300}},
		// Rank 0 is a scalar: one element, no dims.
		{Src: 2, Dst: 3, Name: "drop-me", Inst: 1, Flags: FlagDrop, Fault: "drop:link:2-3:1", WireNS: 1, Shape: []int{}, Data: []float64{42.5}},
	}
	for _, in := range frames {
		out := roundTrip(t, in)
		if out.Src != in.Src || out.Dst != in.Dst || out.Name != in.Name ||
			out.Inst != in.Inst || out.WireNS != in.WireNS ||
			out.Flags != in.Flags || out.Fault != in.Fault {
			t.Fatalf("header fields changed: got %+v, want %+v", out, in)
		}
		if len(in.Shape) == 0 {
			if len(out.Shape) != 0 || len(out.Data) != 1 {
				t.Fatalf("scalar frame decoded with shape %v data %v", out.Shape, out.Data)
			}
		} else if !reflect.DeepEqual(out.Shape, in.Shape) {
			t.Fatalf("shape changed: got %v, want %v", out.Shape, in.Shape)
		}
		for i := range in.Data {
			if math.Float64bits(out.Data[i]) != math.Float64bits(in.Data[i]) {
				t.Fatalf("element %d changed bits: got %x, want %x",
					i, math.Float64bits(out.Data[i]), math.Float64bits(in.Data[i]))
			}
		}
	}
}

// TestFrameReuseAcrossReads checks the documented Shape/Data reuse: a
// second decode into the same Frame must not alias or resize away the
// correct values.
func TestFrameReuseAcrossReads(t *testing.T) {
	var buf bytes.Buffer
	big := Frame{Src: 0, Dst: 1, Name: "a", Shape: []int{8}, Data: []float64{1, 2, 3, 4, 5, 6, 7, 8}}
	small := Frame{Src: 1, Dst: 0, Name: "b", Inst: 2, Shape: []int{2}, Data: []float64{9, 10}}
	if err := WriteFrame(&buf, &big); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, &small); err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := ReadFrame(&buf, &f); err != nil {
		t.Fatal(err)
	}
	if err := ReadFrame(&buf, &f); err != nil {
		t.Fatal(err)
	}
	if f.Name != "b" || len(f.Data) != 2 || f.Data[0] != 9 || f.Data[1] != 10 {
		t.Fatalf("second decode into reused frame got %+v", f)
	}
}

// TestFrameCleanEOF pins the shutdown contract: a reader at a cleanly
// closed stream gets untouched io.EOF, while a stream cut mid-frame is
// an error that is NOT io.EOF.
func TestFrameCleanEOF(t *testing.T) {
	var f Frame
	if err := ReadFrame(bytes.NewReader(nil), &f); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}

	var buf bytes.Buffer
	in := Frame{Src: 0, Dst: 1, Name: "n", Shape: []int{1}, Data: []float64{1}}
	if err := WriteFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{2, 4, 10, len(whole) - 1} {
		err := ReadFrame(bytes.NewReader(whole[:cut]), &f)
		// A cut exactly after the length prefix surfaces as a wrapped
		// io.EOF; what matters is that no truncation is ever the bare
		// io.EOF a clean close returns.
		if err == nil || err == io.EOF {
			t.Fatalf("stream cut at %d/%d bytes: got %v, want a truncation error", cut, len(whole), err)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("stream cut at %d bytes: %v wraps neither io.ErrUnexpectedEOF nor io.EOF", cut, err)
		}
	}
}

// TestFrameRejectsCorruption drives hostile byte streams through the
// decoder: absurd lengths, wrong versions, and interior length fields
// that overrun the frame must all be rejected without panics or
// allocations proportional to the claimed size.
func TestFrameRejectsCorruption(t *testing.T) {
	encode := func(in Frame) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &in); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := encode(Frame{Src: 0, Dst: 1, Name: "abc", Fault: "f", Inst: 3, Shape: []int{2}, Data: []float64{1, 2}})

	mutate := func(name string, f func(b []byte)) {
		b := append([]byte(nil), base...)
		f(b)
		var out Frame
		if err := ReadFrame(bytes.NewReader(b), &out); err == nil {
			t.Fatalf("%s: decoder accepted a corrupt frame", name)
		}
	}
	mutate("huge length prefix", func(b []byte) {
		binary.LittleEndian.PutUint32(b, MaxFrameBytes+1)
	})
	mutate("tiny length prefix", func(b []byte) {
		binary.LittleEndian.PutUint32(b, 4)
	})
	mutate("wrong version", func(b []byte) { b[4] = Version + 1 })
	mutate("name overruns frame", func(b []byte) {
		binary.LittleEndian.PutUint16(b[22:], uint16(0xffff))
	})
	mutate("rank overruns frame", func(b []byte) {
		// rank sits after name (3) + faultLen (2+1) + inst (4).
		off := 24 + 3 + 2 + 1 + 4
		binary.LittleEndian.PutUint32(b[off:], 1<<20)
	})
	mutate("payload does not fill frame", func(b []byte) {
		// Shrink the claimed dim so elements stop matching the bytes.
		off := 24 + 3 + 2 + 1 + 4 + 4
		binary.LittleEndian.PutUint32(b[off:], 1)
	})

	// A name longer than the cap is refused at encode time.
	var buf bytes.Buffer
	err := WriteFrame(&buf, &Frame{Name: strings.Repeat("x", maxNameLen+1), Shape: []int{}, Data: []float64{}})
	if err == nil {
		t.Fatal("WriteFrame accepted an oversized name")
	}
}
