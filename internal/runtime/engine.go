package runtime

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"overlap/internal/hlo"
	"overlap/internal/obs"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// engine owns one concurrent execution: the shared rendezvous registry
// for blocking collectives, the link fabric for asynchronous transfers,
// the fault injector (nil when no plan is set), and the abort machinery
// that lets any device — or the run deadline — fail the run without
// deadlocking the others.
type engine struct {
	comp *hlo.Computation
	n    int
	opts Options

	fabric  *fabric
	inj     *injector
	devices []*device

	// splitK is Options.KernelSplitK resolved into the tensor layer's
	// encoding (SplitKInherit / 0 / factor), threaded through every
	// sim.EvalLocalSplitK call so the run never consults the mutable
	// process-global knob mid-flight.
	splitK int

	mu    sync.Mutex
	gens  map[rvKey]*genState
	abort chan struct{}
	once  sync.Once
	err   error

	epoch    time.Time
	failedAt time.Time
}

func newEngine(c *hlo.Computation, numDevices int, opts Options) (*engine, error) {
	e := &engine{
		comp:  c,
		n:     numDevices,
		opts:  opts,
		gens:  map[rvKey]*genState{},
		abort: make(chan struct{}),
	}
	switch {
	case opts.KernelSplitK == 0:
		e.splitK = tensor.SplitKInherit
	case opts.KernelSplitK == 1:
		e.splitK = 0
	default:
		e.splitK = opts.KernelSplitK
	}
	if opts.Faults != nil && len(opts.Faults.Faults) > 0 {
		e.inj = newInjector(opts.Faults)
	}
	f, err := newFabric(e)
	if err != nil {
		return nil, err
	}
	e.fabric = f
	return e, nil
}

// fail records the first error and releases every blocked goroutine.
// Everything that can stop a run funnels through here, so the error the
// caller sees is always the first failure, never a cascade effect —
// and always carries the run's ID for correlation.
func (e *engine) fail(err error) {
	e.once.Do(func() {
		var re *RunError
		if errors.As(err, &re) && re.RunID == "" {
			re.RunID = e.opts.RunID
		}
		e.err = err
		e.failedAt = time.Now()
		rtAborts.Inc()
		obs.Log().Error("runtime.abort", "run_id", e.opts.RunID, "error", err.Error())
		close(e.abort)
	})
}

// sleep holds the caller for d of modeled wire or collective time, but
// wakes immediately when the run aborts — a failed run must never wait
// out an in-flight transfer. It reports false when the abort cut the
// sleep short.
func (e *engine) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-e.abort:
		return false
	}
}

// run launches one goroutine per device, arms the deadline watchdog,
// joins everything, winds down the fabric, and assembles the per-device
// values and measured breakdown.
func (e *engine) run(ctx context.Context, args [][]*tensor.Tensor) (*Result, error) {
	e.devices = make([]*device, e.n)
	paramFor := func(p *hlo.Instruction, dev int) *tensor.Tensor {
		set := args[p.ParamIndex]
		if len(set) == 1 {
			return set[0]
		}
		return set[dev]
	}

	e.epoch = time.Now()
	// Bring the transport's data plane up before any device goroutine
	// exists: a worker-spawn failure becomes a structured run error, not
	// a fleet of devices blocked on a fabric that never formed. The
	// transport tears its own partial state down on failure, so the
	// normal shutdown below must not run again.
	if err := e.fabric.start(); err != nil {
		e.fail(&RunError{
			Device: -1, Phase: PhaseTransport,
			Elapsed: e.sinceDur(), Err: err,
		})
		return nil, e.err
	}
	var wg sync.WaitGroup
	for d := 0; d < e.n; d++ {
		dev := newDevice(e, d)
		e.devices[d] = dev
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panicking kernel (malformed einsum spec, shape bug)
			// must not crash the whole process: convert it into the
			// engine's first-error slot, which also closes the abort
			// channel so peer devices blocked on fabric sends drain
			// instead of deadlocking.
			defer func() {
				if r := recover(); r != nil {
					_, instr := dev.stat()
					e.fail(&RunError{
						Device: dev.id, Instr: instr, Phase: PhaseCompute,
						Elapsed: e.sinceDur(), Err: fmt.Errorf("panic: %v", r),
					})
				}
			}()
			dev.run(paramFor)
		}()
	}

	// The watchdog turns a stalled transfer or livelocked rendezvous
	// into a structured, attributed error instead of a hang: when the
	// context expires it fails the run, which releases every select on
	// e.abort.
	var watchdog sync.WaitGroup
	watchStop := make(chan struct{})
	if ctx.Done() != nil {
		watchdog.Add(1)
		go func() {
			defer watchdog.Done()
			select {
			case <-ctx.Done():
				derr := e.deadlineError(ctx.Err())
				e.fail(derr)
				if e.err == derr {
					// The deadline won the race to be the first error
					// (fail is once-only, so e.err is stable here).
					rtAbortDeadlines.Inc()
				}
			case <-watchStop:
			}
		}()
	}

	wg.Wait()
	close(watchStop)
	watchdog.Wait()
	e.fabric.shutdown()

	if e.err != nil {
		rtAbortJoin.Observe(time.Since(e.failedAt).Seconds())
		return nil, e.err
	}
	return e.assemble(e.devices), nil
}

// deadlineError attributes a deadline abort: to the fired drop/delay
// fault when injection caused the stall, otherwise to the device that
// has been blocked the longest in the most communication-bound phase.
func (e *engine) deadlineError(cause error) *RunError {
	re := &RunError{Device: -1, Elapsed: e.sinceDur(), Err: cause}
	if e.inj != nil {
		if ff, ok := e.inj.firstStall(); ok {
			re.Device = ff.fault.Dst
			re.Instr = ff.instr
			re.Phase = PhaseReceive
			re.Fault = ff.fault.String()
			return re
		}
	}
	rank := map[Phase]int{PhaseReceive: 3, PhasePost: 2, PhaseRendezvous: 1, PhaseCompute: 0}
	bestSince := 0.0
	for _, dev := range e.devices {
		st, instr := dev.stat()
		if st.phase == "" {
			continue
		}
		better := re.Phase == "" ||
			rank[st.phase] > rank[re.Phase] ||
			(rank[st.phase] == rank[re.Phase] && st.since < bestSince)
		if better {
			re.Device = dev.id
			re.Instr = instr
			re.Phase = st.phase
			bestSince = st.since
		}
	}
	return re
}

// assemble merges the per-device arenas, stats, and trace buffers into
// the caller-facing result. It runs after every goroutine has joined, so
// all device- and link-local state is safely visible.
func (e *engine) assemble(devices []*device) *Result {
	res := &Result{
		RunID: e.opts.RunID,
		All:   make(map[*hlo.Instruction][]*tensor.Tensor, e.comp.NumInstructions()),
	}
	for _, in := range e.comp.Instructions() {
		per := make([]*tensor.Tensor, e.n)
		for d, dev := range devices {
			per[d] = dev.values[in]
		}
		res.All[in] = per
	}
	if root := e.comp.Root(); root != nil {
		res.Values = res.All[root]
	}

	var b sim.Breakdown
	for _, dev := range devices {
		if dev.finished > b.StepTime {
			b.StepTime = dev.finished
		}
		b.Compute += dev.compute / float64(e.n)
		b.CollectiveWire += dev.wire / float64(e.n)
		b.Exposed += dev.exposed / float64(e.n)
		if dev.asyncSends > b.AsyncTransfers {
			b.AsyncTransfers = dev.asyncSends
		}
		if dev.peakInFlight > b.PeakInFlight {
			b.PeakInFlight = dev.peakInFlight
		}
	}
	res.Breakdown = b
	b.Record("runtime")

	if e.opts.Trace {
		for _, dev := range devices {
			res.Trace = append(res.Trace, dev.trace...)
		}
		res.Trace = append(res.Trace, e.fabric.traceEvents()...)
		sort.SliceStable(res.Trace, func(i, j int) bool {
			a, b := res.Trace[i], res.Trace[j]
			if a.PID != b.PID {
				return a.PID < b.PID
			}
			if a.TID != b.TID {
				return a.TID < b.TID
			}
			return a.TS < b.TS
		})
	}
	return res
}

// traceWindow returns the number of leading devices whose spans are
// recorded, following the simulator's truncation convention.
func (e *engine) traceWindow() int {
	w := e.opts.TraceDevices
	if w <= 0 {
		w = sim.TraceMaxDevices
	}
	if w > e.n {
		w = e.n
	}
	return w
}

// since returns seconds elapsed from the execution epoch.
func (e *engine) since() float64 { return time.Since(e.epoch).Seconds() }

// sinceDur returns the elapsed run time as a duration.
func (e *engine) sinceDur() time.Duration { return time.Since(e.epoch) }

// injLink returns the fault state for one directed edge, nil when no
// fault addresses it.
func (e *engine) injLink(src, dst int) *linkFaults {
	if e.inj == nil {
		return nil
	}
	return e.inj.links[[2]int{src, dst}]
}
