package serve

import (
	"fmt"
	"sync"
	"testing"

	"overlap/internal/obs"
)

func mkTrace(id string, totalMS float64, failed bool) *obs.RunTrace {
	t := obs.NewRunTrace(id, "run", nil)
	t.TotalMS = totalMS
	if failed {
		t.SetError(obs.RunTraceError{Device: 0, Cause: "injected"})
	}
	return t
}

// TestFlightRecorderEviction drives the ring far past wraparound and
// asserts the policy: the slowest runs and the failed run survive in
// the kept set, fast ordinary runs from early traffic are gone, and
// every ring overwrite is eviction-counted.
func TestFlightRecorderEviction(t *testing.T) {
	fr := newFlightRecorder(4, 2)
	before := svTraceEvictions.Value()

	// Two keep-worthy runs up front: a very slow run and a failure.
	fr.record(mkTrace("r-slow", 5000, false))
	fr.record(mkTrace("r-failed", 10, true))
	// Then enough fast runs to wrap the ring several times over.
	for i := 0; i < 20; i++ {
		fr.record(mkTrace(fmt.Sprintf("r-fast-%02d", i), 1+float64(i)/100, false))
	}

	if got := fr.get("r-slow"); got == nil {
		t.Error("slowest run did not survive ring wraparound")
	}
	if got := fr.get("r-failed"); got == nil {
		t.Error("failed run did not survive ring wraparound")
	}
	if got := fr.get("r-fast-00"); got != nil {
		t.Error("early fast run should have been evicted")
	}
	// The last 4 fast runs still sit in the ring.
	for i := 16; i < 20; i++ {
		id := fmt.Sprintf("r-fast-%02d", i)
		if fr.get(id) == nil {
			t.Errorf("%s should still be in the ring", id)
		}
	}

	// 22 records into a size-4 ring force 18 overwrites; 2 victims moved
	// to the kept set without evicting anyone, but every later overwrite
	// evicted something (the victim or a displaced keeper).
	evicted := svTraceEvictions.Value() - before
	if evicted != 16 {
		t.Errorf("eviction counter moved by %v, want 16", evicted)
	}

	list := fr.list()
	if len(list) != 6 {
		t.Fatalf("list has %d entries, want 6 (ring 4 + kept 2)", len(list))
	}
	// Newest first: the most recent record leads.
	if list[0].ID != "r-fast-19" {
		t.Errorf("list is not newest-first: leads with %s", list[0].ID)
	}
	keptCount := 0
	for _, s := range list {
		if s.Kept {
			keptCount++
			if s.ID != "r-slow" && s.ID != "r-failed" {
				t.Errorf("unexpected kept entry %s", s.ID)
			}
		}
	}
	if keptCount != 2 {
		t.Errorf("kept %d entries, want 2", keptCount)
	}
}

// TestFlightRecorderFailedOutranksSlow pins the keep ranking: when the
// kept set is full of slow successes, a failed run still displaces one.
func TestFlightRecorderFailedOutranksSlow(t *testing.T) {
	fr := newFlightRecorder(2, 1)
	fr.record(mkTrace("r-slow", 9999, false))
	fr.record(mkTrace("r-a", 1, false))
	fr.record(mkTrace("r-b", 1, false)) // wraps: r-slow retires into the kept slot
	if fr.get("r-slow") == nil {
		t.Fatal("slow run should hold the keep slot")
	}
	fr.record(mkTrace("r-failed", 1, true))
	fr.record(mkTrace("r-c", 1, false))
	fr.record(mkTrace("r-d", 1, false)) // wraps twice: r-failed retires, displacing r-slow
	if fr.get("r-failed") == nil {
		t.Error("failed run should displace the slow success from the keep slot")
	}
	if fr.get("r-slow") != nil {
		t.Error("slow success should have been displaced by the failure")
	}
}

// TestFlightRecorderConcurrent hammers record/list/get from many
// goroutines; run under -race this is the data-race witness for the
// daemon's read-while-record traffic.
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := newFlightRecorder(8, 2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fr.record(mkTrace(fmt.Sprintf("r-%d-%03d", w, i), float64(i), i%7 == 0))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, s := range fr.list() {
					if tr := fr.get(s.ID); tr != nil && tr.ID != s.ID {
						t.Errorf("get(%s) returned trace %s", s.ID, tr.ID)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if len(fr.list()) == 0 {
		t.Error("recorder empty after concurrent traffic")
	}
}
