package experiments

import (
	"fmt"
	"math/rand"
	"text/tabwriter"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/runtime"
	"overlap/internal/sim"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// DefaultTransport is the fabric transport the wall-clock experiments
// execute on (overlapbench -transport sets it). The transport
// comparison experiment ignores it: that one always measures both.
var DefaultTransport = runtime.TransportChan

// transportParams sizes the measured site. The defaults keep one run
// short enough that spawning worker processes per repetition stays
// cheap while the decomposed site still has enough async transfers for
// the overlap-efficiency column to mean something; the test uses a
// miniature configuration.
type transportParams struct {
	devices   int
	m, k, n   int     // per-shard partial-einsum shape
	reps      int     // measured repetitions (plus one warm-up)
	timeScale float64 // wire-delay scale (modeled seconds sleep this much longer)
}

func defaultTransportParams() transportParams {
	return transportParams{devices: 4, m: 4, k: 8192, n: 256, reps: 3, timeScale: 4000}
}

// Transport measures the same decomposed AllGather/einsum site on both
// fabric transports — in-process channels and per-device worker
// processes over Unix sockets — and reports each one's measured step
// breakdown plus its overlap efficiency (the fraction of injected wire
// occupancy hidden under compute). Results must stay bit-identical
// across transports; a divergence is an error, not a table row. The
// numeric series is [chan efficiency, proc efficiency, proc/chan step
// ratio].
func Transport(spec machine.Spec) (string, []float64, error) {
	return transportCompare(spec, defaultTransportParams())
}

func transportCompare(spec machine.Spec, p transportParams) (string, []float64, error) {
	build := func() (*hlo.Computation, error) {
		groups := topology.NewRing(p.devices).AxisGroups(0)
		c := hlo.NewComputation("transport")
		a := c.Parameter(0, "a", []int{p.m, p.k})
		w := c.Parameter(1, "w", []int{p.n, p.k}) // transposed: rhs packs
		full := c.AllGather(a, 0, groups)
		c.Einsum("mk,nk->mn", full, w)
		opts := core.DefaultOptions(spec)
		opts.UseCostModel = false
		if _, err := core.Apply(c, opts); err != nil {
			return nil, err
		}
		return c, nil
	}
	rng := rand.New(rand.NewSource(83))
	shards := make([]*tensor.Tensor, p.devices)
	for d := range shards {
		shards[d] = tensor.Rand(rng, p.m, p.k)
	}
	args := [][]*tensor.Tensor{shards, {tensor.Rand(rng, p.n, p.k)}}

	kinds := []runtime.TransportKind{runtime.TransportChan, runtime.TransportProc}
	steps := make([]float64, len(kinds))
	effs := make([]float64, len(kinds))
	breakdowns := make([]struct{ compute, wire, exposed float64 }, len(kinds))
	var refValues []*tensor.Tensor
	for i, kind := range kinds {
		c, err := build()
		if err != nil {
			return "", nil, err
		}
		// Trace every run so overlap efficiency comes from the same
		// span-stream attribution the daemon and traceviz report; the
		// tracing cost lands on both transports alike.
		ropts := runtime.Options{Spec: spec, TimeScale: p.timeScale, Transport: kind, Trace: true}
		for rep := 0; rep <= p.reps; rep++ {
			res, err := runtime.Run(c, p.devices, args, ropts)
			if err != nil {
				return "", nil, fmt.Errorf("transport %s: %w", kind, err)
			}
			if rep == 0 {
				// Warm-up: discard its time, pin bitwise equality across
				// transports — the whole point of the socket path is that
				// moving tensors between processes changes nothing.
				if refValues == nil {
					refValues = res.Values
				} else {
					for d := range res.Values {
						if !res.Values[d].Equal(refValues[d]) {
							return "", nil, fmt.Errorf("transport %s diverges bitwise from %s on device %d", kind, kinds[0], d)
						}
					}
				}
				continue
			}
			b := res.Breakdown
			if steps[i] == 0 || b.StepTime < steps[i] {
				steps[i] = b.StepTime
				breakdowns[i] = struct{ compute, wire, exposed float64 }{b.Compute, b.CollectiveWire, b.Exposed}
				effs[i] = sim.Attribute(res.Trace).OverlapEfficiency()
			}
		}
	}

	out := "Extension: fabric transport comparison on one decomposed site (measured, not simulated)\n"
	out += table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "transport\tstep time\tcompute\twire\texposed\toverlap efficiency")
		for i, kind := range kinds {
			b := breakdowns[i]
			fmt.Fprintf(w, "%s\t%.3f ms\t%.3f ms\t%.3f ms\t%.3f ms\t%.0f%%\n",
				kind, 1e3*steps[i], 1e3*b.compute, 1e3*b.wire, 1e3*b.exposed, 100*effs[i])
		}
	})
	out += fmt.Sprintf("proc/chan step ratio: %.2fx (results bit-identical across transports)\n", steps[1]/steps[0])
	return out, []float64{effs[0], effs[1], steps[1] / steps[0]}, nil
}
