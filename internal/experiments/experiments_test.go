package experiments

import (
	"strings"
	"testing"

	"overlap/internal/core"
	"overlap/internal/machine"
	"overlap/internal/models"
)

// The experiment tests assert the *shape* of the paper's results — who
// wins, in which direction each optimization moves, which models sit
// high or low — not absolute numbers.

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model sweep")
	}
	text, comps, err := Fig12(machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 6 {
		t.Fatalf("expected 6 models, got %d\n%s", len(comps), text)
	}
	var moe, dense Comparison
	for _, c := range comps {
		name := c.Baseline.Config.Name
		// Every model must speed up, within the paper's reported band
		// (1.14 - 1.38x).
		if s := c.Speedup(); s < 1.05 || s > 1.5 {
			t.Errorf("%s: speedup %.2fx outside the plausible band\n%s", name, s, text)
		}
		// Exposed communication must shrink (§6.1 reports 2-3x).
		if c.CommReduction() < 1.2 {
			t.Errorf("%s: comm reduction %.2fx too small", name, c.CommReduction())
		}
		switch c.Baseline.Config.Arch {
		case models.ArchMoE:
			moe = c
		case models.ArchDense:
			dense = c
		}
	}
	// Dense models reach >60% utilization; MoE stays far below (§6.1).
	if dense.Overlapped.Utilization < 0.60 {
		t.Errorf("dense overlapped utilization %.2f below 0.60\n%s", dense.Overlapped.Utilization, text)
	}
	if moe.Overlapped.Utilization > 0.50 {
		t.Errorf("MoE overlapped utilization %.2f implausibly high", moe.Overlapped.Utilization)
	}
}

func TestFig12PeakUtilization(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model sweep")
	}
	_, comps, err := Fig12(machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, c := range comps {
		if u := c.Overlapped.Utilization; u > best {
			best = u
		}
	}
	// The paper's headline: up to 72% of peak FLOPS.
	if best < 0.60 || best > 0.80 {
		t.Fatalf("peak overlapped utilization %.2f outside [0.60, 0.80]", best)
	}
}

func TestFig13WeakScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model sweep")
	}
	_, comps, err := Fig13(machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 6 {
		t.Fatalf("expected 6 GPT sizes, got %d", len(comps))
	}
	for _, c := range comps {
		if s := c.Speedup(); s < 1.1 || s > 1.4 {
			t.Errorf("%s: weak-scaling speedup %.2fx outside the paper's 1.1-1.4x band", c.Baseline.Config.Name, s)
		}
	}
}

func TestFig14UnrollingHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model sweep")
	}
	_, ratios, err := Fig14(machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, r := range ratios {
		sum += r
		if r > 1.02 {
			t.Errorf("model %d: unrolling clearly slowed the step (ratio %.3f)", i, r)
		}
	}
	if avg := sum / float64(len(ratios)); avg > 0.99 {
		t.Errorf("unrolling shows no average benefit (mean ratio %.3f)", avg)
	}
}

func TestFig15BidirectionalHelpsLargeModels(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model sweep")
	}
	_, ratios, err := Fig15(machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	// Small models see little effect (the paper: <5% for GPT_32B); the
	// largest models see clearly more.
	if ratios[0] < 0.90 {
		t.Errorf("GPT_32B gains %.1f%% from bidirectional transfer; expected a small effect", 100*(1-ratios[0]))
	}
	last := ratios[len(ratios)-1]
	if last > 0.97 {
		t.Errorf("GPT_1T gains only %.1f%% from bidirectional transfer; expected a clear effect", 100*(1-last))
	}
}

func TestFig16SchedulersComparable(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model sweep")
	}
	_, ratios, err := Fig16(machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	// The two schedulers land within a few percent of each other (the
	// paper reports a ~5% average edge for bottom-up; our simplified
	// top-down with cost rebalancing closes most of that gap).
	for i, r := range ratios {
		if r < 0.85 || r > 1.15 {
			t.Errorf("model %d: scheduler ratio %.3f outside ±15%%", i, r)
		}
	}
}

func TestFig1CommunicationFractions(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model sweep")
	}
	text, err := Fig1(machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "GPT_1T") || !strings.Contains(text, "communication") {
		t.Fatalf("Fig1 output malformed:\n%s", text)
	}
	// Baseline comm fractions: substantial for every model (the Fig 1
	// premise) — checked via the structured path.
	opts := core.BaselineOptions(machine.TPUv4())
	for _, cfg := range models.Table1() {
		run, err := RunModel(cfg, opts, false)
		if err != nil {
			t.Fatal(err)
		}
		f := run.Breakdown.CommFraction()
		if f < 0.15 || f > 0.85 {
			t.Errorf("%s: baseline comm fraction %.2f outside the plausible band", cfg.Name, f)
		}
	}
}

func TestInferenceLatency(t *testing.T) {
	text, comp, err := Inference(machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	if comp.Speedup() < 1.3 {
		t.Fatalf("inference improvement %.2fx below 1.3x\n%s", comp.Speedup(), text)
	}
}

func TestEnergyMatchesSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model sweep")
	}
	text, err := Energy(machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "energy reduction") {
		t.Fatalf("energy output malformed:\n%s", text)
	}
}

func TestTablesRender(t *testing.T) {
	t1, t2 := Table1(), Table2()
	for _, want := range []string{"GPT_1T", "GLaM_1T", "BigSSL_10B"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %s", want)
		}
	}
	for _, want := range []string{"GPT_32B", "GPT_512B"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %s", want)
		}
	}
}

func TestRunModelUtilizationBounds(t *testing.T) {
	cfg := models.Table2()[0]
	run, err := RunModel(cfg, core.DefaultOptions(machine.TPUv4()), true)
	if err != nil {
		t.Fatal(err)
	}
	if run.Utilization <= 0 || run.Utilization >= 1 {
		t.Fatalf("utilization %.2f out of (0,1)", run.Utilization)
	}
	if run.StepTime <= run.Breakdown.StepTime {
		t.Fatal("model step time must scale with layer count")
	}
}
