package core

import (
	"overlap/internal/hlo"
)

// MakeAsync splits every blocking CollectivePermute in the computation
// into a CollectivePermuteStart/CollectivePermuteDone pair (§5.2). The
// pair is left adjacent; the scheduling passes then pull starts early
// and push dones late to create overlap.
func MakeAsync(c *hlo.Computation) int {
	converted := 0
	c.WithRootPreserved(func() {
		for _, in := range c.Instructions() {
			if in.Op != hlo.OpCollectivePermute {
				continue
			}
			start := c.CollectivePermuteStart(in.Operands[0], in.Pairs)
			done := c.CollectivePermuteDone(start)
			c.ReplaceAllUsesWith(in, done)
			converted++
		}
		// Re-sort before DCE so the computation's true sink is back in root
		// position (appends put the new dones after it).
		c.ScheduleStableTopological()
		c.RemoveDeadCode()
	})
	return converted
}
