// Package sim executes SPMD computations on a simulated accelerator
// cluster, in two complementary ways:
//
//   - Interpret runs the program functionally with real tensor values on
//     every device, giving ground truth to prove graph rewrites
//     semantically equivalent.
//   - Simulate runs the program through a discrete-event timing model of
//     the chips and their interconnect, giving the step time and
//     compute/communication breakdown the paper's evaluation reports.
//
// Both executors process the computation's scheduled instruction list in
// lockstep across devices, which is exactly how an SPMD program executes:
// the same sequence everywhere, with per-device divergence coming only
// from partition-dependent offsets and collective data movement.
package sim

import (
	"fmt"

	"overlap/internal/collective"
	"overlap/internal/hlo"
	"overlap/internal/tensor"
)

// Interpret executes the computation on numDevices devices and returns
// the root instruction's value on each device. args[i][d] supplies the
// value of parameter index i on device d; parameters may also be
// supplied replicated with a single tensor (len(args[i]) == 1).
func Interpret(c *hlo.Computation, numDevices int, args [][]*tensor.Tensor) ([]*tensor.Tensor, error) {
	values, err := InterpretAll(c, numDevices, args)
	if err != nil {
		return nil, err
	}
	root := c.Root()
	if root == nil {
		return nil, fmt.Errorf("sim: empty computation %s", c.Name)
	}
	return values[root], nil
}

// InterpretSplitK is Interpret with an explicit kernel split-K factor
// (see InterpretAllSplitK), for cross-checking runs that carried a
// per-run factor instead of the process-wide setting.
func InterpretSplitK(c *hlo.Computation, numDevices int, args [][]*tensor.Tensor, splitK int) ([]*tensor.Tensor, error) {
	values, err := InterpretAllSplitK(c, numDevices, args, splitK)
	if err != nil {
		return nil, err
	}
	root := c.Root()
	if root == nil {
		return nil, fmt.Errorf("sim: empty computation %s", c.Name)
	}
	return values[root], nil
}

// InterpretAll executes the computation and returns every instruction's
// per-device value, letting callers inspect interior outputs (e.g. the
// operands of a result tuple).
func InterpretAll(c *hlo.Computation, numDevices int, args [][]*tensor.Tensor) (map[*hlo.Instruction][]*tensor.Tensor, error) {
	return InterpretAllSplitK(c, numDevices, args, tensor.SplitKInherit)
}

// InterpretAllSplitK is InterpretAll with an explicit kernel split-K
// factor for every einsum the interpretation evaluates:
// tensor.SplitKInherit follows the process-wide setting, 0/1 forces the
// split off, >= 2 forces that factor. Cross-checks of runs executed
// with a per-run factor use it so both sides reassociate contractions
// identically.
func InterpretAllSplitK(c *hlo.Computation, numDevices int, args [][]*tensor.Tensor, splitK int) (map[*hlo.Instruction][]*tensor.Tensor, error) {
	if numDevices <= 0 {
		return nil, fmt.Errorf("sim: need at least one device")
	}
	params := c.Parameters()
	if len(args) != len(params) {
		return nil, fmt.Errorf("sim: computation %s has %d parameters, got %d arguments", c.Name, len(params), len(args))
	}
	values := make(map[*hlo.Instruction][]*tensor.Tensor, c.NumInstructions())

	argFor := func(p *hlo.Instruction, dev int) (*tensor.Tensor, error) {
		set := args[p.ParamIndex]
		var v *tensor.Tensor
		switch len(set) {
		case 1:
			v = set[0]
		case numDevices:
			v = set[dev]
		default:
			return nil, fmt.Errorf("sim: parameter %d has %d values, want 1 or %d", p.ParamIndex, len(set), numDevices)
		}
		if !sameShape(v.Shape(), p.Shape) {
			return nil, fmt.Errorf("sim: parameter %d value shape %v, declared %v", p.ParamIndex, v.Shape(), p.Shape)
		}
		return v, nil
	}

	if err := runSequence(c.Instructions(), values, numDevices, 0, splitK, argFor); err != nil {
		return nil, err
	}
	return values, nil
}

// runSequence interprets one instruction sequence: the top-level program
// (iter 0) or a loop body at a given iteration, with parameters resolved
// by paramFor.
func runSequence(instrs []*hlo.Instruction, values map[*hlo.Instruction][]*tensor.Tensor, numDevices, iter, splitK int, paramFor func(p *hlo.Instruction, dev int) (*tensor.Tensor, error)) error {
	for _, in := range instrs {
		perDevice := make([]*tensor.Tensor, numDevices)
		switch in.Op {
		case hlo.OpParameter:
			for d := 0; d < numDevices; d++ {
				v, err := paramFor(in, d)
				if err != nil {
					return err
				}
				perDevice[d] = v
			}

		case hlo.OpConstant:
			for d := 0; d < numDevices; d++ {
				perDevice[d] = in.Literal
			}

		case hlo.OpAllGather, hlo.OpReduceScatter, hlo.OpAllReduce, hlo.OpAllToAll:
			src := values[in.Operands[0]]
			if err := evalGroupCollective(in, src, perDevice); err != nil {
				return err
			}

		case hlo.OpCollectivePermute:
			src := values[in.Operands[0]]
			out := collective.Permute(src, pairSlice(in.Pairs))
			copy(perDevice, out)

		case hlo.OpCollectivePermuteStart:
			// The start carries its operand; the matching done performs
			// the movement.
			copy(perDevice, values[in.Operands[0]])

		case hlo.OpCollectivePermuteDone:
			start := in.Operands[0]
			src := values[start.Operands[0]]
			out := collective.Permute(src, pairSlice(in.Pairs))
			copy(perDevice, out)

		case hlo.OpLoop:
			res, err := runLoop(in, values, numDevices, splitK)
			if err != nil {
				return err
			}
			perDevice = res

		default:
			for d := 0; d < numDevices; d++ {
				ops := make([]*tensor.Tensor, len(in.Operands))
				for i, op := range in.Operands {
					ops[i] = values[op][d]
				}
				v, err := EvalLocalSplitK(in, ops, d, iter, splitK)
				if err != nil {
					return err
				}
				perDevice[d] = v
			}
		}
		values[in] = perDevice
	}
	return nil
}

// runLoop interprets a counted loop: the body runs TripCount times with
// the carried per-device values threaded from the root tuple back into
// the parameters, and the iteration index feeding the body's dynamic
// offsets. Nested loops are rejected (the decomposition never emits
// them).
func runLoop(loop *hlo.Instruction, values map[*hlo.Instruction][]*tensor.Tensor, numDevices, splitK int) ([]*tensor.Tensor, error) {
	carried := make([][]*tensor.Tensor, len(loop.Operands))
	for i, op := range loop.Operands {
		carried[i] = values[op]
	}
	bodyInstrs := loop.Body.Instructions()
	for _, in := range bodyInstrs {
		if in.Op == hlo.OpLoop {
			return nil, fmt.Errorf("sim: nested loop %s unsupported", in.Name)
		}
	}
	root := loop.Body.Root()
	for it := 0; it < loop.TripCount; it++ {
		bodyValues := make(map[*hlo.Instruction][]*tensor.Tensor, len(bodyInstrs))
		resolve := func(p *hlo.Instruction, dev int) (*tensor.Tensor, error) {
			return carried[p.ParamIndex][dev], nil
		}
		if err := runSequence(bodyInstrs, bodyValues, numDevices, it, splitK, resolve); err != nil {
			return nil, fmt.Errorf("sim: loop %s iteration %d: %w", loop.Name, it, err)
		}
		for i, op := range root.Operands {
			carried[i] = bodyValues[op]
		}
	}
	return carried[loop.ResultIndex], nil
}

func evalGroupCollective(in *hlo.Instruction, src, out []*tensor.Tensor) error {
	for _, group := range in.Groups {
		inputs := make([]*tensor.Tensor, len(group))
		for i, dev := range group {
			if dev < 0 || dev >= len(src) {
				return fmt.Errorf("sim: %s group device %d out of range", in.Name, dev)
			}
			inputs[i] = src[dev]
		}
		switch in.Op {
		case hlo.OpAllGather:
			res := collective.AllGather(inputs, in.CollectiveAxis)
			for _, dev := range group {
				out[dev] = res
			}
		case hlo.OpReduceScatter:
			shards := collective.ReduceScatter(inputs, in.CollectiveAxis)
			for i, dev := range group {
				out[dev] = shards[i]
			}
		case hlo.OpAllReduce:
			res := collective.AllReduce(inputs)
			for _, dev := range group {
				out[dev] = res
			}
		case hlo.OpAllToAll:
			res := collective.AllToAll(inputs, in.CollectiveAxis, in.Axis)
			for i, dev := range group {
				out[dev] = res[i]
			}
		}
	}
	for d, v := range out {
		if v == nil {
			return fmt.Errorf("sim: device %d does not participate in %s", d, in.Name)
		}
	}
	return nil
}

// EvalLocal evaluates a device-local instruction (hlo.OpCode.
// IsDeviceLocal) on one device's operand values. pid and iter resolve
// partition- and iteration-dependent offsets. It is the shared execution
// hook: the lockstep interpreter and the concurrent goroutine runtime
// (internal/runtime) both evaluate local instructions through it, which
// is what makes their results bit-identical by construction.
func EvalLocal(in *hlo.Instruction, ops []*tensor.Tensor, pid, iter int) (*tensor.Tensor, error) {
	return EvalLocalSplitK(in, ops, pid, iter, tensor.SplitKInherit)
}

// EvalLocalSplitK is EvalLocal with an explicit kernel split-K factor
// for the einsums this instruction evaluates (tensor.SplitKInherit
// follows the process-wide setting). The concurrent runtime passes each
// run's resolved factor through here so concurrently executing runs
// with different tuned factors never read a shared global.
func EvalLocalSplitK(in *hlo.Instruction, ops []*tensor.Tensor, pid, iter, splitK int) (*tensor.Tensor, error) {
	switch in.Op {
	case hlo.OpZero:
		return tensor.New(in.Shape...), nil
	case hlo.OpTuple:
		return tensor.New(), nil // rank-0 placeholder; outputs are read by name
	case hlo.OpEinsum:
		return tensor.EinsumSplitK(splitK, in.EinsumSpec, ops[0], ops[1]), nil
	case hlo.OpAdd:
		return tensor.Add(ops[0], ops[1]), nil
	case hlo.OpMax:
		return tensor.Max(ops[0], ops[1]), nil
	case hlo.OpCopy:
		return ops[0].Clone(), nil
	case hlo.OpReshape:
		return tensor.Reshape(ops[0], in.Shape...), nil
	case hlo.OpTranspose:
		return tensor.Transpose(ops[0], in.Perm...), nil
	case hlo.OpConcat:
		return tensor.Concat(in.Axis, ops...), nil
	case hlo.OpPad:
		return tensor.Pad(ops[0], in.PadLow, in.PadHigh, in.PadValue), nil
	case hlo.OpSlice:
		return tensor.Slice(ops[0], in.Starts, in.Limits), nil
	case hlo.OpDynamicSlice:
		return tensor.DynamicSlice(ops[0], evalOffsets(in.Offsets, pid, iter), in.SliceSizes), nil
	case hlo.OpDynamicUpdateSlice:
		return tensor.DynamicUpdateSlice(ops[0], ops[1], evalOffsets(in.Offsets, pid, iter)), nil
	case hlo.OpFusion:
		return evalFusion(in, ops, pid, iter, splitK)
	}
	return nil, fmt.Errorf("sim: cannot evaluate %s locally", in.Op)
}

// evalFusion interprets a fusion body on one device. Fusion bodies are
// device-local by construction (the fusion pass never fuses collectives).
//
// Einsums whose only consumer is an Add in the same body — the shape
// FuseAccumulation produces for the decomposed ReduceScatter chain —
// are never materialized: the Add evaluates them with
// tensor.EinsumAddInto, accumulating the contracted terms directly on
// the accumulator instead of allocating a partial-result temporary and
// summing it elementwise. Both execution engines (the lockstep
// interpreter and the goroutine runtime) share this path via EvalLocal,
// so their bit-identical cross-check is unaffected.
func evalFusion(f *hlo.Instruction, ops []*tensor.Tensor, pid, iter, splitK int) (*tensor.Tensor, error) {
	deferred := fusionDeferredEinsums(f.Body)
	vals := make(map[*hlo.Instruction]*tensor.Tensor, f.Body.NumInstructions())
	for _, in := range f.Body.Instructions() {
		if in.Op == hlo.OpParameter {
			vals[in] = ops[in.ParamIndex]
			continue
		}
		if in.Op == hlo.OpConstant {
			vals[in] = in.Literal
			continue
		}
		if deferred[in] {
			continue // materialized fused into its consuming Add below
		}
		if in.Op == hlo.OpAdd && (deferred[in.Operands[0]] || deferred[in.Operands[1]]) {
			vals[in] = evalFusedAdd(f.Body, in, deferred, vals, splitK)
			continue
		}
		inner := make([]*tensor.Tensor, len(in.Operands))
		for i, op := range in.Operands {
			inner[i] = vals[op]
		}
		v, err := EvalLocalSplitK(in, inner, pid, iter, splitK)
		if err != nil {
			return nil, fmt.Errorf("sim: fusion %s: %w", f.Name, err)
		}
		vals[in] = v
	}
	return vals[f.Body.Root()], nil
}

// fusionDeferredEinsums returns the body einsums eligible for fused
// accumulation: consumed by exactly one instruction, that instruction
// is an Add in the same body with two distinct operands, and the einsum
// is not the body root. Returns nil (cheap) when the body has none.
func fusionDeferredEinsums(body *hlo.Computation) map[*hlo.Instruction]bool {
	var deferred map[*hlo.Instruction]bool
	root := body.Root()
	for _, in := range body.Instructions() {
		if in.Op != hlo.OpEinsum || in == root || in.NumUsers() != 1 {
			continue
		}
		u := in.Users()[0]
		if u.Op != hlo.OpAdd || u.Operands[0] == u.Operands[1] {
			continue
		}
		if deferred == nil {
			deferred = make(map[*hlo.Instruction]bool)
		}
		deferred[in] = true
	}
	return deferred
}

// evalFusedAdd evaluates an Add with at least one deferred-einsum
// operand. The non-einsum operand becomes the accumulator, mutated in
// place only when no other reader can observe it (a body-local value
// with a single user that is not the body root); parameter and constant
// values are cloned first, since they alias caller-owned tensors.
func evalFusedAdd(body *hlo.Computation, add *hlo.Instruction, deferred map[*hlo.Instruction]bool, vals map[*hlo.Instruction]*tensor.Tensor, splitK int) *tensor.Tensor {
	a, b := add.Operands[0], add.Operands[1]
	var acc *tensor.Tensor
	var fuse *hlo.Instruction
	if deferred[a] && deferred[b] {
		// Both operands are sole-use einsums: materialize the left one
		// as the accumulator base and fuse the right onto it.
		acc = tensor.EinsumSplitK(splitK, a.EinsumSpec, vals[a.Operands[0]], vals[a.Operands[1]])
		fuse = b
	} else {
		e, o := a, b
		if !deferred[e] {
			e, o = b, a
		}
		acc, fuse = vals[o], e
		if o.Op == hlo.OpParameter || o.Op == hlo.OpConstant || o.NumUsers() > 1 || o == body.Root() {
			acc = acc.Clone()
		}
	}
	return tensor.EinsumAddIntoSplitK(acc, fuse.EinsumSpec, vals[fuse.Operands[0]], vals[fuse.Operands[1]], splitK)
}

func evalOffsets(offsets []hlo.DynOffset, pid, iter int) []int {
	out := make([]int, len(offsets))
	for i, o := range offsets {
		out[i] = o.EvalIter(pid, iter)
	}
	return out
}

func pairSlice(pairs []hlo.SourceTargetPair) [][2]int {
	out := make([][2]int, len(pairs))
	for i, p := range pairs {
		out[i] = [2]int{p.Source, p.Target}
	}
	return out
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
