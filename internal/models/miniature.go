package models

import (
	"fmt"
	"strings"
)

// Miniature shrinks a Table 1/2 configuration onto a 1×devices ring
// while preserving its architecture and the divisibility constraints of
// its partitioning: every collective the full model's layer emits
// appears in the miniature too, just over small tensors. dim becomes
// the per-head dimension and scales every tensor; the result is small
// enough to execute with real tensors on the goroutine runtime.
func Miniature(cfg Config, devices, dim int) (Config, error) {
	if devices < 1 {
		return cfg, fmt.Errorf("models: miniature needs at least one device")
	}
	if dim < 1 {
		return cfg, fmt.Errorf("models: miniature needs a positive head dimension")
	}
	cfg.Name = strings.ToLower(cfg.Name) + "-mini"
	cfg.Layers = 1
	cfg.Chips = devices
	cfg.MeshX, cfg.MeshY = 1, devices
	cfg.HeadDim = dim
	cfg.ModelDim = dim * devices
	cfg.FFDim = 2 * cfg.ModelDim
	cfg.SeqLen = 4 * devices
	cfg.Batch = devices
	if cfg.Arch == ArchMoE {
		cfg.Experts = devices
	}
	return cfg, cfg.Validate()
}
