package hlo

import (
	"fmt"

	"overlap/internal/tensor"
)

// inferShape computes the result shape of an instruction from its
// operands and attributes. It is the single source of truth used both by
// the builder (to stamp shapes) and the verifier (to re-check them).
func inferShape(in *Instruction) ([]int, error) {
	switch in.Op {
	case OpParameter:
		return in.Shape, nil // parameters carry their declared shape

	case OpConstant:
		if in.Literal == nil {
			return nil, fmt.Errorf("constant without literal")
		}
		return in.Literal.Shape(), nil

	case OpZero:
		if len(in.Operands) != 0 {
			return nil, fmt.Errorf("zero takes no operands")
		}
		return in.Shape, nil

	case OpEinsum:
		if len(in.Operands) != 2 {
			return nil, fmt.Errorf("einsum needs 2 operands, has %d", len(in.Operands))
		}
		spec, err := tensor.ParseEinsum(in.EinsumSpec)
		if err != nil {
			return nil, err
		}
		return spec.OutputShape(in.Operands[0].Shape, in.Operands[1].Shape)

	case OpAdd, OpMax:
		if len(in.Operands) != 2 {
			return nil, fmt.Errorf("%s needs 2 operands", in.Op)
		}
		a, b := in.Operands[0].Shape, in.Operands[1].Shape
		if !sameShape(a, b) {
			return nil, fmt.Errorf("%s shape mismatch %v vs %v", in.Op, a, b)
		}
		return a, nil

	case OpCopy:
		return unary(in)

	case OpReshape:
		src, err := unary(in)
		if err != nil {
			return nil, err
		}
		if numElements(src) != numElements(in.Shape) {
			return nil, fmt.Errorf("reshape %v -> %v changes element count", src, in.Shape)
		}
		return in.Shape, nil

	case OpTranspose:
		src, err := unary(in)
		if err != nil {
			return nil, err
		}
		if len(in.Perm) != len(src) {
			return nil, fmt.Errorf("transpose perm %v rank mismatch for %v", in.Perm, src)
		}
		out := make([]int, len(src))
		for i, p := range in.Perm {
			if p < 0 || p >= len(src) {
				return nil, fmt.Errorf("transpose perm %v out of range", in.Perm)
			}
			out[i] = src[p]
		}
		return out, nil

	case OpConcat:
		if len(in.Operands) == 0 {
			return nil, fmt.Errorf("concatenate needs operands")
		}
		out := append([]int(nil), in.Operands[0].Shape...)
		if in.Axis < 0 || in.Axis >= len(out) {
			return nil, fmt.Errorf("concatenate axis %d out of range for %v", in.Axis, out)
		}
		for _, op := range in.Operands[1:] {
			if len(op.Shape) != len(out) {
				return nil, fmt.Errorf("concatenate rank mismatch")
			}
			for d := range out {
				if d == in.Axis {
					continue
				}
				if op.Shape[d] != out[d] {
					return nil, fmt.Errorf("concatenate shape mismatch %v vs %v", op.Shape, out)
				}
			}
			out[in.Axis] += op.Shape[in.Axis]
		}
		return out, nil

	case OpPad:
		src, err := unary(in)
		if err != nil {
			return nil, err
		}
		if len(in.PadLow) != len(src) || len(in.PadHigh) != len(src) {
			return nil, fmt.Errorf("pad config rank mismatch for %v", src)
		}
		out := make([]int, len(src))
		for i := range src {
			if in.PadLow[i] < 0 || in.PadHigh[i] < 0 {
				return nil, fmt.Errorf("negative padding unsupported")
			}
			out[i] = in.PadLow[i] + src[i] + in.PadHigh[i]
		}
		return out, nil

	case OpSlice:
		src, err := unary(in)
		if err != nil {
			return nil, err
		}
		if len(in.Starts) != len(src) || len(in.Limits) != len(src) {
			return nil, fmt.Errorf("slice bounds rank mismatch for %v", src)
		}
		out := make([]int, len(src))
		for i := range src {
			if in.Starts[i] < 0 || in.Limits[i] > src[i] || in.Starts[i] > in.Limits[i] {
				return nil, fmt.Errorf("slice bounds [%v,%v) invalid for %v", in.Starts, in.Limits, src)
			}
			out[i] = in.Limits[i] - in.Starts[i]
		}
		return out, nil

	case OpDynamicSlice:
		src, err := unary(in)
		if err != nil {
			return nil, err
		}
		if len(in.Offsets) != len(src) || len(in.SliceSizes) != len(src) {
			return nil, fmt.Errorf("dynamic-slice config rank mismatch for %v", src)
		}
		for i, s := range in.SliceSizes {
			if s < 0 || s > src[i] {
				return nil, fmt.Errorf("dynamic-slice size %v too large for %v", in.SliceSizes, src)
			}
		}
		return in.SliceSizes, nil

	case OpDynamicUpdateSlice:
		if len(in.Operands) != 2 {
			return nil, fmt.Errorf("dynamic-update-slice needs 2 operands")
		}
		base := in.Operands[0].Shape
		upd := in.Operands[1].Shape
		if len(base) != len(upd) || len(in.Offsets) != len(base) {
			return nil, fmt.Errorf("dynamic-update-slice rank mismatch %v vs %v", base, upd)
		}
		for i := range base {
			if upd[i] > base[i] {
				return nil, fmt.Errorf("dynamic-update-slice update %v larger than base %v", upd, base)
			}
		}
		return base, nil

	case OpAllGather:
		src, err := unary(in)
		if err != nil {
			return nil, err
		}
		g, err := groupSize(in)
		if err != nil {
			return nil, err
		}
		if in.CollectiveAxis < 0 || in.CollectiveAxis >= len(src) {
			return nil, fmt.Errorf("all-gather axis %d out of range for %v", in.CollectiveAxis, src)
		}
		out := append([]int(nil), src...)
		out[in.CollectiveAxis] *= g
		return out, nil

	case OpReduceScatter:
		src, err := unary(in)
		if err != nil {
			return nil, err
		}
		g, err := groupSize(in)
		if err != nil {
			return nil, err
		}
		if in.CollectiveAxis < 0 || in.CollectiveAxis >= len(src) {
			return nil, fmt.Errorf("reduce-scatter axis %d out of range for %v", in.CollectiveAxis, src)
		}
		if src[in.CollectiveAxis]%g != 0 {
			return nil, fmt.Errorf("reduce-scatter dim %d of %v not divisible by group size %d", in.CollectiveAxis, src, g)
		}
		out := append([]int(nil), src...)
		out[in.CollectiveAxis] /= g
		return out, nil

	case OpAllReduce:
		if _, err := groupSize(in); err != nil {
			return nil, err
		}
		return unary(in)

	case OpAllToAll:
		src, err := unary(in)
		if err != nil {
			return nil, err
		}
		g, err := groupSize(in)
		if err != nil {
			return nil, err
		}
		split, concat := in.CollectiveAxis, in.Axis
		if split < 0 || split >= len(src) || concat < 0 || concat >= len(src) {
			return nil, fmt.Errorf("all-to-all axes (%d,%d) out of range for %v", split, concat, src)
		}
		if src[split]%g != 0 {
			return nil, fmt.Errorf("all-to-all split dim %d of %v not divisible by group size %d", split, src, g)
		}
		out := append([]int(nil), src...)
		out[split] /= g
		out[concat] *= g
		return out, nil

	case OpCollectivePermute, OpCollectivePermuteStart, OpCollectivePermuteDone:
		src, err := unary(in)
		if err != nil {
			return nil, err
		}
		if in.Op != OpCollectivePermuteDone {
			seenSrc, seenDst := map[int]bool{}, map[int]bool{}
			for _, p := range in.Pairs {
				if seenSrc[p.Source] {
					return nil, fmt.Errorf("collective-permute duplicate source %d", p.Source)
				}
				if seenDst[p.Target] {
					return nil, fmt.Errorf("collective-permute duplicate target %d", p.Target)
				}
				seenSrc[p.Source], seenDst[p.Target] = true, true
			}
		} else if in.Operands[0].Op != OpCollectivePermuteStart {
			return nil, fmt.Errorf("collective-permute-done operand must be a start, got %s", in.Operands[0].Op)
		}
		return src, nil

	case OpTuple:
		if len(in.Operands) == 0 {
			return nil, fmt.Errorf("tuple needs at least one operand")
		}
		return nil, nil // rank-0 placeholder

	case OpLoop:
		if in.Body == nil {
			return nil, fmt.Errorf("loop without body")
		}
		if in.TripCount < 1 {
			return nil, fmt.Errorf("loop trip count %d < 1", in.TripCount)
		}
		params := in.Body.Parameters()
		if len(params) != len(in.Operands) {
			return nil, fmt.Errorf("loop has %d operands but body has %d parameters", len(in.Operands), len(params))
		}
		root := in.Body.Root()
		if root == nil || root.Op != OpTuple {
			return nil, fmt.Errorf("loop body root must be a tuple of the carried values")
		}
		if len(root.Operands) != len(params) {
			return nil, fmt.Errorf("loop body tuple has %d values, want %d", len(root.Operands), len(params))
		}
		for i, p := range params {
			if !sameShape(p.Shape, in.Operands[i].Shape) {
				return nil, fmt.Errorf("loop operand %d shape %v mismatches body parameter %v", i, in.Operands[i].Shape, p.Shape)
			}
			if !sameShape(root.Operands[i].Shape, p.Shape) {
				return nil, fmt.Errorf("loop carried value %d changes shape %v -> %v", i, p.Shape, root.Operands[i].Shape)
			}
		}
		if in.ResultIndex < 0 || in.ResultIndex >= len(params) {
			return nil, fmt.Errorf("loop result index %d out of range", in.ResultIndex)
		}
		return params[in.ResultIndex].Shape, nil

	case OpFusion:
		if in.Body == nil {
			return nil, fmt.Errorf("fusion without body")
		}
		params := in.Body.Parameters()
		if len(params) != len(in.Operands) {
			return nil, fmt.Errorf("fusion has %d operands but body has %d parameters", len(in.Operands), len(params))
		}
		for i, p := range params {
			if !sameShape(p.Shape, in.Operands[i].Shape) {
				return nil, fmt.Errorf("fusion operand %d shape %v mismatches body parameter %v", i, in.Operands[i].Shape, p.Shape)
			}
		}
		return in.Body.Root().Shape, nil
	}
	return nil, fmt.Errorf("unsupported opcode %v", in.Op)
}

func unary(in *Instruction) ([]int, error) {
	if len(in.Operands) != 1 {
		return nil, fmt.Errorf("%s needs exactly 1 operand, has %d", in.Op, len(in.Operands))
	}
	return in.Operands[0].Shape, nil
}

func groupSize(in *Instruction) (int, error) {
	if len(in.Groups) == 0 {
		return 0, fmt.Errorf("%s requires device groups", in.Op)
	}
	g := len(in.Groups[0])
	if g == 0 {
		return 0, fmt.Errorf("%s has an empty device group", in.Op)
	}
	seen := map[int]bool{}
	for _, grp := range in.Groups {
		if len(grp) != g {
			return 0, fmt.Errorf("%s has unevenly sized device groups", in.Op)
		}
		for _, d := range grp {
			if seen[d] {
				return 0, fmt.Errorf("%s lists device %d in two groups", in.Op, d)
			}
			seen[d] = true
		}
	}
	return g, nil
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func numElements(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}
