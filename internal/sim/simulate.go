package sim

import (
	"fmt"

	"overlap/internal/hlo"
	"overlap/internal/machine"
)

// Breakdown reports where a simulated training/inference step spent its
// time. Compute, CollectiveWire and Exposed are averages over devices;
// StepTime is the critical path (max finish time over devices).
type Breakdown struct {
	// StepTime is the wall-clock duration of one execution of the
	// computation.
	StepTime float64
	// Compute is the time spent executing local instructions.
	Compute float64
	// CollectiveWire is the total wire time of all communication the
	// device initiated, whether or not it was hidden.
	CollectiveWire float64
	// Exposed is the time the device sat idle waiting for communication
	// (blocking collectives plus unhidden asynchronous waits).
	Exposed float64
	// AsyncTransfers counts CollectivePermuteStart sends issued per
	// device.
	AsyncTransfers int
	// PeakInFlight is the maximum number of simultaneously outstanding
	// asynchronous transfers observed on any device.
	PeakInFlight int
}

// CommFraction returns exposed communication as a fraction of step time.
func (b Breakdown) CommFraction() float64 {
	if b.StepTime == 0 {
		return 0
	}
	return b.Exposed / b.StepTime
}

// Simulate runs the computation through the timing model on numDevices
// devices described by spec and returns the step breakdown.
//
// The model executes the scheduled instruction list position by position
// on all devices (SPMD lockstep). Local instructions advance a device's
// clock by their machine cost. A CollectivePermuteStart enqueues a
// transfer on the sender's outgoing path and costs (almost) nothing; the
// matching Done blocks the receiver until the transfer lands. Blocking
// collectives barrier their group and add the analytic ring cost. Each
// ordered device pair owns an independent path (transfers between the
// same pair serialize; the generated ring patterns use each neighbor
// link once per step, so this matches torus behaviour).
func Simulate(c *hlo.Computation, numDevices int, spec machine.Spec) (Breakdown, error) {
	if err := spec.Validate(); err != nil {
		return Breakdown{}, err
	}
	if numDevices <= 0 {
		return Breakdown{}, fmt.Errorf("sim: need at least one device")
	}

	st := &simState{
		spec:        spec,
		numDevices:  numDevices,
		now:         make([]float64, numDevices),
		compute:     make([]float64, numDevices),
		wire:        make([]float64, numDevices),
		exposed:     make([]float64, numDevices),
		outstanding: make([][]float64, numDevices),
		linkFree:    map[[2]int]float64{},
		arrivals:    map[*hlo.Instruction][]float64{},
	}
	for _, in := range c.Instructions() {
		if err := st.exec(in); err != nil {
			return Breakdown{}, err
		}
	}

	var b Breakdown
	for d := 0; d < numDevices; d++ {
		if st.now[d] > b.StepTime {
			b.StepTime = st.now[d]
		}
		b.Compute += st.compute[d] / float64(numDevices)
		b.CollectiveWire += st.wire[d] / float64(numDevices)
		b.Exposed += st.exposed[d] / float64(numDevices)
	}
	b.AsyncTransfers = st.asyncSends
	b.PeakInFlight = st.peakInFlight
	b.Record("sim")
	return b, nil
}

// simState carries the per-device clocks and transfer bookkeeping of one
// simulation.
type simState struct {
	spec         machine.Spec
	numDevices   int
	now          []float64
	compute      []float64
	wire         []float64
	exposed      []float64
	outstanding  [][]float64
	linkFree     map[[2]int]float64
	arrivals     map[*hlo.Instruction][]float64
	asyncSends   int
	peakInFlight int

	// Tracing (SimulateTrace): events recorded for the first
	// traceDevices devices; zero disables recording.
	traceDevices int
	trace        []TraceEvent
}

// exec advances every device's clock across one instruction.
func (st *simState) exec(in *hlo.Instruction) error {
	simInstructions.Inc()
	spec := st.spec
	numDevices := st.numDevices
	now := st.now
	wire := st.wire
	exposed := st.exposed
	outstanding := st.outstanding
	linkFree := st.linkFree
	arrivals := st.arrivals

	{
		switch in.Op {
		case hlo.OpCollectivePermuteStart:
			arr := make([]float64, numDevices)
			for d := range arr {
				arr[d] = -1
			}
			bytes := in.Operands[0].ByteSize()
			for d := 0; d < numDevices; d++ {
				tgt, ok := in.PairTarget(d)
				if !ok {
					continue
				}
				// Free completed transfer flags; stall if the async
				// budget (synchronization flags) is exhausted.
				live := outstanding[d][:0]
				for _, a := range outstanding[d] {
					if a > now[d] {
						live = append(live, a)
					}
				}
				outstanding[d] = live
				if len(outstanding[d]) >= spec.MaxInFlight {
					oldest := outstanding[d][0]
					if oldest > now[d] {
						exposed[d] += oldest - now[d]
						now[d] = oldest
					}
					outstanding[d] = outstanding[d][1:]
				}
				key := [2]int{d, tgt}
				depart := now[d]
				if f := linkFree[key]; f > depart {
					depart = f
				}
				t := spec.TransferTime(bytes, 1)
				arrival := depart + t
				linkFree[key] = arrival
				arr[tgt] = arrival
				outstanding[d] = append(outstanding[d], arrival)
				wire[d] += t
				st.record(d, TraceTIDTransfer, "transfer", in.Name, depart, t)
				if len(outstanding[d]) > st.peakInFlight {
					st.peakInFlight = len(outstanding[d])
				}
				if d == 0 {
					st.asyncSends++
				}
			}
			arrivals[in] = arr

		case hlo.OpCollectivePermuteDone:
			arr := arrivals[in.Operands[0]]
			if arr == nil {
				return fmt.Errorf("sim: %s executed before its start", in.Name)
			}
			for d := 0; d < numDevices; d++ {
				if arr[d] < 0 {
					continue // device receives nothing: zero result, no wait
				}
				if arr[d] > now[d] {
					exposed[d] += arr[d] - now[d]
					st.record(d, TraceTIDCompute, "stall", in.Name, now[d], arr[d]-now[d])
					now[d] = arr[d]
				}
			}

		case hlo.OpCollectivePermute:
			// Blocking permute: send at current time, wait for arrival.
			bytes := in.Operands[0].ByteSize()
			t := spec.TransferTime(bytes, 1)
			newNow := append([]float64(nil), now...)
			for d := 0; d < numDevices; d++ {
				src, ok := in.PairSource(d)
				if !ok {
					continue
				}
				arrival := now[src] + t
				if arrival > newNow[d] {
					exposed[d] += arrival - newNow[d]
					st.record(d, TraceTIDCompute, "collective", in.Name, newNow[d], arrival-newNow[d])
					newNow[d] = arrival
				}
			}
			for d := 0; d < numDevices; d++ {
				if _, sends := in.PairTarget(d); sends {
					wire[d] += t
				}
			}
			copy(now, newNow)

		case hlo.OpAllGather, hlo.OpReduceScatter, hlo.OpAllReduce, hlo.OpAllToAll:
			cost := spec.CollectiveTime(in)
			for _, group := range in.Groups {
				barrier := 0.0
				for _, d := range group {
					if now[d] > barrier {
						barrier = now[d]
					}
				}
				finish := barrier + cost
				for _, d := range group {
					exposed[d] += finish - now[d]
					st.record(d, TraceTIDCompute, "collective", in.Name, now[d], finish-now[d])
					now[d] = finish
					wire[d] += cost
				}
			}

		case hlo.OpLoop:
			// Execute the body TripCount times; each iteration's
			// transfers and compute are priced exactly like top-level
			// instructions. (The rolled Looped CollectiveEinsum keeps
			// blocking CollectivePermutes, so the loop exposes its
			// communication — which is why the optimized pipeline emits
			// the expanded form.)
			body := in.Body.Instructions()
			for it := 0; it < in.TripCount; it++ {
				for _, inner := range body {
					if err := st.exec(inner); err != nil {
						return fmt.Errorf("sim: loop %s iteration %d: %w", in.Name, it, err)
					}
				}
			}

		default:
			cost := spec.InstructionCost(in)
			for d := 0; d < numDevices; d++ {
				st.record(d, TraceTIDCompute, "compute", in.Name, now[d], cost)
				now[d] += cost
				st.compute[d] += cost
			}
		}
	}
	return nil
}
