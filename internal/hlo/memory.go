package hlo

// Peak-memory estimation over a schedule. The paper's scheduling pass
// starts from a memory-minimizing instruction order and "avoids
// dramatically changing the liveness of variables" (§5.2), and the
// unrolling optimization trades an extra accumulation buffer for
// eliminated copies (§5.4.1); this analysis makes both effects
// measurable.
//
// The model is interval-based: a buffer becomes live when its defining
// instruction executes and dies after its last user executes. Aliasing
// ops reuse their operand's storage:
//
//   - Reshape is a free re-interpretation;
//   - Tuple materializes nothing;
//   - DynamicUpdateSlice updates in place when it is the final user of
//     its base buffer (the accumulation chains the decomposition emits);
//   - CollectivePermuteDone hands over the receive buffer its Start
//     allocated.
//
// Loops account for their carried buffers plus the body's own peak;
// fusions materialize only their result.

// MemoryStats reports the live-byte profile of one computation.
type MemoryStats struct {
	// PeakBytes is the maximum simultaneously live bytes at any point of
	// the schedule.
	PeakBytes int64
	// PeakIndex is the schedule position where the peak occurs.
	PeakIndex int
	// ParameterBytes counts the computation inputs (live throughout).
	ParameterBytes int64
}

// PeakMemory estimates the peak live bytes of the computation under its
// current schedule.
func PeakMemory(c *Computation) MemoryStats {
	instrs := c.instrs
	pos := make(map[*Instruction]int, len(instrs))
	for i, in := range instrs {
		pos[in] = i
	}
	death := make([]int, len(instrs))
	for i, in := range instrs {
		d := i
		for _, u := range in.Users() {
			if p, ok := pos[u]; ok && p > d {
				d = p
			}
		}
		death[i] = d
	}

	// allocBytes[i] is the fresh storage instruction i materializes;
	// it is freed after position freeAt[i].
	alloc := make([]int64, len(instrs))
	freeAt := make([]int, len(instrs))
	var params int64
	for i, in := range instrs {
		freeAt[i] = death[i]
		switch in.Op {
		case OpParameter:
			params += in.ByteSize()
			alloc[i] = in.ByteSize()
			freeAt[i] = len(instrs) - 1 // inputs live for the whole step
		case OpTuple, OpReshape:
			alloc[i] = 0
		case OpCollectivePermuteStart:
			// The start allocates the receive buffer; the done aliases
			// it, so extend the lifetime to the done's own death.
			alloc[i] = in.ByteSize()
			for _, u := range in.Users() {
				if u.Op == OpCollectivePermuteDone {
					if p, ok := pos[u]; ok && death[p] > freeAt[i] {
						freeAt[i] = death[p]
					}
				}
			}
		case OpCollectivePermuteDone:
			alloc[i] = 0 // aliases the start's receive buffer
		case OpDynamicUpdateSlice:
			base := in.Operands[0]
			if p, ok := pos[base]; ok && death[p] == i {
				alloc[i] = 0 // in-place update of a dying base
			} else {
				alloc[i] = in.ByteSize()
			}
		case OpLoop:
			// Carried buffers live in the operands; the body's own
			// temporaries peak inside each iteration.
			alloc[i] = PeakMemory(in.Body).PeakBytes
		default:
			alloc[i] = in.ByteSize()
		}
	}

	// Sweep: +alloc at def, -alloc after freeAt.
	delta := make([]int64, len(instrs)+1)
	for i := range instrs {
		delta[i] += alloc[i]
		delta[freeAt[i]+1] -= alloc[i]
	}
	var live, peak int64
	peakIdx := 0
	for i := range instrs {
		live += delta[i]
		if live > peak {
			peak = live
			peakIdx = i
		}
	}
	return MemoryStats{PeakBytes: peak, PeakIndex: peakIdx, ParameterBytes: params}
}
