package runtime

import (
	"sync"
	"time"

	"overlap/internal/sim"
)

// chanLink is one directed (src,dst) connection of the in-process
// transport: a buffered channel plus a goroutine that imposes the
// modeled wire time. Because every parcel for the edge passes through
// one goroutine, transfers on the same link serialize — the property
// that makes the injected delays compose like real link occupancy.
type chanLink struct {
	src, dst int
	ch       chan parcel
	trace    []sim.TraceEvent
}

// chanTransport is the original fabric data plane: per-edge buffered Go
// channels serviced by link goroutines, all inside the parent process.
type chanTransport struct {
	eng   *engine
	fab   *fabric
	links map[[2]int]*chanLink
	wg    sync.WaitGroup
}

func newChanTransport(e *engine, f *fabric) *chanTransport {
	return &chanTransport{eng: e, fab: f, links: map[[2]int]*chanLink{}}
}

// start spins up one link goroutine per directed edge.
func (t *chanTransport) start(edges [][2]int) error {
	for _, edge := range edges {
		l := &chanLink{src: edge[0], dst: edge[1], ch: make(chan parcel, linkBuffer)}
		t.links[edge] = l
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serve(l)
		}()
	}
	return nil
}

// serve is one link goroutine: drain parcels in order, hold the wire for
// the modeled time, deliver into the destination mailbox. Sleeping here
// releases the OS thread, so device goroutines compute while transfers
// are in flight — including on a single-core host. The sleep selects
// against the engine's abort so a failed run never waits out an
// in-flight transfer, and the injector can drop, duplicate, or delay
// individual deliveries at this choke point.
func (t *chanTransport) serve(l *chanLink) {
	e := t.eng
	lf := e.injLink(l.src, l.dst)
	for p := range l.ch {
		start := e.since()
		wire := e.transferDelay(p.bytes)
		drop, dup, extra := e.faultActions(lf, p.key.start.Name)
		if drop {
			continue // lost on the wire: never delivered
		}
		wire += time.Duration(extra)
		if !e.sleep(wire) {
			continue // aborted mid-wire: keep draining without sleeping
		}
		if e.opts.Trace && l.src < e.traceWindow() {
			l.trace = append(l.trace, sim.TraceEvent{
				Name: p.key.start.Name, Cat: "transfer", Ph: "X",
				TS: start * 1e6, Dur: (e.since() - start) * 1e6,
				PID: l.src, TID: sim.TraceTIDTransfer,
			})
		}
		t.fab.deliver(l.dst, p.key, p.data, "")
		if dup != nil {
			t.fab.deliver(l.dst, p.key, p.data, dup.String())
		}
	}
}

// post enqueues a transfer on its link channel without waiting for the
// wire.
func (t *chanTransport) post(src, dst int, p parcel) bool {
	l := t.links[[2]int{src, dst}]
	select {
	case l.ch <- p:
		return true
	case <-t.eng.abort:
		return false
	}
}

// shutdown closes every link and joins the link goroutines.
func (t *chanTransport) shutdown() {
	for _, l := range t.links {
		close(l.ch)
	}
	t.wg.Wait()
}

// traceEvents merges the per-link transfer spans.
func (t *chanTransport) traceEvents() []sim.TraceEvent {
	var out []sim.TraceEvent
	for _, l := range t.links {
		out = append(out, l.trace...)
	}
	return out
}
