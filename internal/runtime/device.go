package runtime

import (
	"sync"

	"overlap/internal/hlo"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// devStatus is what a device was last doing, published for the deadline
// watchdog: the pipeline phase and when the device entered it. The
// instruction name lives beside it in device.statInstr.
type devStatus struct {
	phase Phase
	since float64
}

// device is one SPMD participant: a goroutine executing the scheduled
// instruction sequence against its own arena. All of its fields are
// goroutine-local while running, except the watchdog-facing status,
// which is published under statMu; the engine reads everything else
// only after the device has joined.
type device struct {
	id  int
	eng *engine

	// values is the top-level arena: every scheduled instruction's value
	// on this device (loop bodies use per-iteration scratch arenas).
	values map[*hlo.Instruction]*tensor.Tensor

	// execCount tracks per-instruction execution counts; it numbers
	// asynchronous transfer instances and collective generations, which
	// stay aligned across devices because SPMD executes the same
	// sequence everywhere.
	execCount map[*hlo.Instruction]int

	// seq counts every instruction this device has executed, in program
	// order with loop bodies counted once per iteration — the index
	// crash faults address.
	seq int

	// Measured seconds: local evaluation, initiated wire occupancy, and
	// time spent blocked on communication.
	compute, wire, exposed float64

	asyncSends   int
	outstanding  int
	peakInFlight int

	finished float64
	trace    []sim.TraceEvent

	statMu    sync.Mutex
	status    devStatus
	statInstr string
}

func newDevice(e *engine, id int) *device {
	return &device{
		id:        id,
		eng:       e,
		values:    make(map[*hlo.Instruction]*tensor.Tensor, e.comp.NumInstructions()),
		execCount: map[*hlo.Instruction]int{},
	}
}

// setStat publishes the phase the device is entering; the watchdog uses
// it to attribute deadline aborts to the device blocked longest in the
// most communication-bound phase.
func (d *device) setStat(phase Phase, instr string) {
	d.statMu.Lock()
	d.status = devStatus{phase: phase, since: d.eng.since()}
	d.statInstr = instr
	d.statMu.Unlock()
}

// clearStat marks the device idle (finished or failed).
func (d *device) clearStat() {
	d.statMu.Lock()
	d.status = devStatus{}
	d.statInstr = ""
	d.statMu.Unlock()
}

// stat returns the device's published status.
func (d *device) stat() (devStatus, string) {
	d.statMu.Lock()
	defer d.statMu.Unlock()
	return d.status, d.statInstr
}

// run executes the top-level sequence and records the device's total
// wall-clock. Any failure aborts the whole engine.
func (d *device) run(paramFor func(p *hlo.Instruction, dev int) *tensor.Tensor) {
	resolve := func(p *hlo.Instruction) *tensor.Tensor { return paramFor(p, d.id) }
	d.runSeq(d.eng.comp.Instructions(), d.values, 0, resolve)
	d.finished = d.eng.since()
	d.clearStat()
}

// runSeq executes one instruction sequence (the program, or a loop body
// at one iteration) into the given arena. It returns false when the run
// aborted — either this device failed or another one did.
func (d *device) runSeq(instrs []*hlo.Instruction, values map[*hlo.Instruction]*tensor.Tensor, iter int, resolve func(p *hlo.Instruction) *tensor.Tensor) bool {
	e := d.eng
	for _, in := range instrs {
		if e.inj != nil {
			if f, ok := e.inj.crash(d.id, d.seq); ok {
				e.inj.record(f, in.Name)
				rtFaultCrashes.Inc()
				e.fail(&RunError{
					Device: d.id, Instr: in.Name, Phase: PhaseCompute,
					Elapsed: e.sinceDur(), Fault: f.String(), Err: ErrInjectedCrash,
				})
				return false
			}
		}
		d.seq++
		rtInstructions.Inc()
		switch in.Op {
		case hlo.OpParameter:
			values[in] = resolve(in)

		case hlo.OpConstant:
			values[in] = in.Literal

		case hlo.OpAllGather, hlo.OpReduceScatter, hlo.OpAllReduce,
			hlo.OpAllToAll, hlo.OpCollectivePermute:
			d.setStat(PhaseRendezvous, in.Name)
			gen := d.bump(in)
			t0 := e.since()
			out, ok := e.rendezvous(in, gen, d.id, values[in.Operands[0]])
			if !ok {
				return false
			}
			wait := e.since() - t0
			d.exposed += wait
			d.wire += e.collectiveDelay(in).Seconds()
			rtCollectiveSpans.Observe(wait)
			d.span("collective", in.Name, t0, wait)
			values[in] = out

		case hlo.OpCollectivePermuteStart:
			// The start carries its operand (matching the interpreter);
			// if this device is a pair source, the tensor is posted to
			// the link without waiting for the wire.
			operand := values[in.Operands[0]]
			values[in] = operand
			inst := d.bump(in)
			if target, ok := in.PairTarget(d.id); ok {
				d.setStat(PhasePost, in.Name)
				bytes := in.Operands[0].ByteSize()
				if !e.fabric.post(d.id, target, mailKey{start: in, inst: inst}, operand, bytes) {
					return false
				}
				d.wire += e.transferDelay(bytes).Seconds()
				d.asyncSends++
				d.outstanding++
				if d.outstanding > d.peakInFlight {
					d.peakInFlight = d.outstanding
				}
			}

		case hlo.OpCollectivePermuteDone:
			start := in.Operands[0]
			inst := d.bump(in)
			t0 := e.since()
			var out *tensor.Tensor
			if _, ok := in.PairSource(d.id); ok {
				d.setStat(PhaseReceive, in.Name)
				t, alive := e.fabric.receive(d.id, mailKey{start: start, inst: inst})
				if !alive {
					return false
				}
				out = t.Clone()
			} else {
				// Non-targets get a zero tensor, mirroring the permute
				// kernel's zero fill.
				out = shapedZero(in.Shape)
			}
			wait := e.since() - t0
			d.exposed += wait
			rtStallSpans.Observe(wait)
			d.span("stall", in.Name, t0, wait)
			if _, ok := start.PairTarget(d.id); ok {
				d.outstanding--
			}
			values[in] = out

		case hlo.OpLoop:
			if !d.runLoop(in, values) {
				return false
			}

		default:
			ops := make([]*tensor.Tensor, len(in.Operands))
			for i, op := range in.Operands {
				ops[i] = values[op]
			}
			d.setStat(PhaseCompute, in.Name)
			t0 := e.since()
			v, err := sim.EvalLocalSplitK(in, ops, d.id, iter, e.splitK)
			if err != nil {
				e.fail(&RunError{
					Device: d.id, Instr: in.Name, Phase: PhaseCompute,
					Elapsed: e.sinceDur(), Err: err,
				})
				return false
			}
			dur := e.since() - t0
			d.compute += dur
			rtComputeSpans.Observe(dur)
			d.span("compute", in.Name, t0, dur)
			values[in] = v
		}
	}
	return true
}

// runLoop executes a counted loop on this device, threading the carried
// buffers from the body's root tuple back into its parameters, exactly
// like the interpreter's runLoop but device-local. Collectives inside
// the body synchronize through the engine as usual; the execution
// counters give each iteration a distinct generation.
func (d *device) runLoop(loop *hlo.Instruction, values map[*hlo.Instruction]*tensor.Tensor) bool {
	carried := make([]*tensor.Tensor, len(loop.Operands))
	for i, op := range loop.Operands {
		carried[i] = values[op]
	}
	bodyInstrs := loop.Body.Instructions()
	root := loop.Body.Root()
	for it := 0; it < loop.TripCount; it++ {
		bodyValues := make(map[*hlo.Instruction]*tensor.Tensor, len(bodyInstrs))
		resolve := func(p *hlo.Instruction) *tensor.Tensor { return carried[p.ParamIndex] }
		if !d.runSeq(bodyInstrs, bodyValues, it, resolve) {
			return false
		}
		for i, op := range root.Operands {
			carried[i] = bodyValues[op]
		}
	}
	values[loop] = carried[loop.ResultIndex]
	return true
}

// bump returns this device's execution count for the instruction and
// advances it.
func (d *device) bump(in *hlo.Instruction) int {
	n := d.execCount[in]
	d.execCount[in] = n + 1
	return n
}

// span records one compute-track trace event when tracing is on and the
// device is inside the recorded window.
func (d *device) span(cat, name string, start, dur float64) {
	if !d.eng.opts.Trace || d.id >= d.eng.traceWindow() || dur <= 0 {
		return
	}
	d.trace = append(d.trace, sim.TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: start * 1e6, Dur: dur * 1e6,
		PID: d.id, TID: sim.TraceTIDCompute,
	})
}
