package experiments

import (
	"encoding/json"
	"testing"

	"overlap/internal/sim"
)

// TestStructuredJSONGolden pins the overlapbench -json line schema byte
// for byte: renaming or reordering a field breaks downstream tracking
// tools, so it must fail here first.
func TestStructuredJSONGolden(t *testing.T) {
	s := Structured{
		Experiment: "fig12",
		Speedups:   []float64{1.25, 1.5},
		Models:     []string{"GPT_32B", "GLaM_1T"},
		Text:       "report",
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"experiment":"fig12","speedups":[1.25,1.5],"models":["GPT_32B","GLaM_1T"],"text":"report"}`
	if string(data) != want {
		t.Fatalf("structured JSON schema drifted:\n got %s\nwant %s", data, want)
	}

	// Optional fields must stay omitted for text-only experiments.
	data, err = json.Marshal(Structured{Experiment: "table1", Text: "t"})
	if err != nil {
		t.Fatal(err)
	}
	want = `{"experiment":"table1","text":"t"}`
	if string(data) != want {
		t.Fatalf("structured JSON omitempty drifted:\n got %s\nwant %s", data, want)
	}
}

// TestRatioAccessorsGuardZero checks the ratio-style accessors return 0
// instead of NaN/Inf on degenerate zero-time runs.
func TestRatioAccessorsGuardZero(t *testing.T) {
	var c Comparison
	if got := c.Speedup(); got != 0 {
		t.Fatalf("Speedup on zero step time = %v, want 0", got)
	}
	if got := c.CommReduction(); got != 0 {
		t.Fatalf("CommReduction on zero exposure = %v, want 0", got)
	}
	c.Baseline.Breakdown = sim.Breakdown{StepTime: 2, Exposed: 3}
	c.Overlapped.Breakdown = sim.Breakdown{StepTime: 1, Exposed: 1.5}
	if got := c.Speedup(); got != 2 {
		t.Fatalf("Speedup = %v, want 2", got)
	}
	if got := c.CommReduction(); got != 2 {
		t.Fatalf("CommReduction = %v, want 2", got)
	}
}
