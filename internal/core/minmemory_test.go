package core

import (
	"math/rand"
	"testing"

	"overlap/internal/hlo"
)

// TestMinMemoryReducesPeak: on a graph with two independent wide
// subtrees, the min-memory order must not exceed the naive build
// order's peak, and must beat a deliberately wide order.
func TestMinMemoryReducesPeak(t *testing.T) {
	build := func() *hlo.Computation {
		const chains, depth = 6, 4
		c := hlo.NewComputation("wide")
		a := c.Parameter(0, "a", []int{1024})
		// Build breadth-first: all of level 1, then all of level 2, ...
		// — the worst order for liveness, since every chain's
		// intermediate stays alive across the whole level.
		level := make([]*hlo.Instruction, chains)
		for i := range level {
			level[i] = a
		}
		for d := 0; d < depth; d++ {
			next := make([]*hlo.Instruction, chains)
			for i := range level {
				next[i] = c.Copy(level[i])
			}
			level = next
		}
		// Merge the chain ends through a running addition so an eager
		// (depth-first) order can free each end immediately; the
		// breadth-first build order keeps all of them alive at once.
		acc := level[0]
		for i := 1; i < chains; i++ {
			acc = c.Add(acc, level[i])
		}
		c.Tuple(acc)
		return c
	}
	wide := build()
	before := hlo.PeakMemory(wide)
	if err := ScheduleMinMemory(wide); err != nil {
		t.Fatal(err)
	}
	if err := wide.Verify(); err != nil {
		t.Fatal(err)
	}
	after := hlo.PeakMemory(wide)
	if after.PeakBytes > before.PeakBytes {
		t.Fatalf("min-memory order grew peak %d -> %d", before.PeakBytes, after.PeakBytes)
	}
	if after.PeakBytes >= before.PeakBytes {
		t.Fatalf("min-memory order did not improve the wide schedule (%d vs %d)",
			after.PeakBytes, before.PeakBytes)
	}
}

// TestMinMemoryPreservesSemanticsUnderFuzz reuses the random-program
// generator: min-memory scheduling must always produce a valid schedule.
func TestMinMemoryPreservesSemanticsUnderFuzz(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		c, _ := randomProgram(rng, n)
		if err := ScheduleMinMemory(c); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := c.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestPipelineStartsFromMinMemoryOrder: the full pipeline must keep peak
// memory within the §5.2 budget even on a multi-site layer.
func TestPipelineStartsFromMinMemoryOrder(t *testing.T) {
	const n = 8
	c := bigSite(n)
	if _, err := Apply(c, forceOpts(true, true, SchedulerBottomUp, true)); err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if pm := hlo.PeakMemory(c); pm.PeakBytes <= 0 {
		t.Fatal("degenerate peak")
	}
}
