package runtime

import (
	"math/rand"
	"testing"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/obs"
	"overlap/internal/sim"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// TestDecomposedRunReusesPacks verifies the pack cache end to end: a
// decomposed loop whose weight is stored transposed (the rhs must be
// permute-packed for every partial einsum) packs it once and serves
// every later iteration — across loop iterations, devices sharing the
// replicated tensor, and whole runs — from the plan's cache, while
// staying bit-identical to the lockstep interpreter.
func TestDecomposedRunReusesPacks(t *testing.T) {
	defer tensor.SetPackCache(true)
	tensor.SetPackCache(true)
	const n = 4
	c := hlo.NewComputation("packs")
	groups := topology.NewRing(n).AxisGroups(0)
	a := c.Parameter(0, "a", []int{8, 16})
	w := c.Parameter(1, "w", []int{8, 16}) // transposed weight: rhs packs
	full := c.AllGather(a, 0, groups)
	c.Einsum("mk,nk->mn", full, w)
	opts := core.DefaultOptions(machine.TPUv4())
	opts.UseCostModel = false
	if _, err := core.Apply(c, opts); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	shards := make([]*tensor.Tensor, n)
	for d := range shards {
		shards[d] = tensor.Rand(rng, 8, 16)
	}
	args := [][]*tensor.Tensor{shards, {tensor.Rand(rng, 8, 16)}}

	hits := obs.Default().Counter("overlap_kernel_pack_hits_total", "")
	misses := obs.Default().Counter("overlap_kernel_pack_misses_total", "")

	want, err := sim.Interpret(c, n, args)
	if err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := hits.Value(), misses.Value()
	res, err := Run(c, n, args, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for d := range want {
		if !res.Values[d].Equal(want[d]) {
			t.Fatalf("device %d diverges from the interpreter with the pack cache on", d)
		}
	}
	// The decomposed loop runs n partial einsums per device against the
	// one replicated weight; all but the first resolve from the cache
	// (the interpreter warm-up above already paid the cold miss).
	if gained := hits.Value() - hits0; gained < n {
		t.Fatalf("decomposed run gained only %g pack hits, want >= %d", gained, n)
	}
	if churn := misses.Value() - misses0; churn > 2 {
		t.Fatalf("decomposed run re-packed %g times; the weight should pack at most once", churn)
	}
}
