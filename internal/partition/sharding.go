// Package partition implements the intra-layer (tensor) model
// parallelism substrate of the reproduction: sharding specifications
// over a logical device mesh, einsum sharding propagation, and the
// collective insertion that produces the AllGather→Einsum and
// Einsum→ReduceScatter patterns (paper §2.2, Figs 2–3) that the overlap
// pass in internal/core then rewrites.
//
// The package follows GSPMD's data model — every tensor dimension is
// either replicated or sharded along one mesh axis, and einsum outputs
// may additionally be "partial sums" pending a reduction over mesh axes
// — but lowers a hand-annotated graph rather than running a full
// propagation fixpoint: the partitioning strategies of interest are the
// paper's, which the model builders state explicitly.
package partition

import (
	"fmt"

	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// Replicated marks a tensor dimension as not sharded.
const Replicated = -1

// Sharding maps each tensor dimension to the mesh axis it is partitioned
// along, or Replicated.
type Sharding struct {
	Axes []int
}

// ReplicatedSharding returns a fully replicated sharding of the given
// rank.
func ReplicatedSharding(rank int) Sharding {
	axes := make([]int, rank)
	for i := range axes {
		axes[i] = Replicated
	}
	return Sharding{Axes: axes}
}

// OnDim returns a sharding of the given rank with exactly dimension dim
// sharded along the given mesh axis.
func OnDim(rank, dim, axis int) Sharding {
	s := ReplicatedSharding(rank)
	s.Axes[dim] = axis
	return s
}

// OnDims returns a sharding with dims[i] sharded along axes[i].
func OnDims(rank int, dims, axes []int) Sharding {
	if len(dims) != len(axes) {
		panic("partition: OnDims needs matching dims and axes")
	}
	s := ReplicatedSharding(rank)
	for i, d := range dims {
		s.Axes[d] = axes[i]
	}
	return s
}

// Rank returns the tensor rank the sharding describes.
func (s Sharding) Rank() int { return len(s.Axes) }

// DimAxis returns the mesh axis dimension dim is sharded on, or
// Replicated.
func (s Sharding) DimAxis(dim int) int { return s.Axes[dim] }

// IsReplicated reports whether no dimension is sharded.
func (s Sharding) IsReplicated() bool {
	for _, a := range s.Axes {
		if a != Replicated {
			return false
		}
	}
	return true
}

// WithDim returns a copy with dimension dim re-assigned to axis (or
// Replicated).
func (s Sharding) WithDim(dim, axis int) Sharding {
	out := Sharding{Axes: append([]int(nil), s.Axes...)}
	out.Axes[dim] = axis
	return out
}

// Validate checks the sharding against a logical shape and mesh: sharded
// dimensions must be divisible by their axis size, and no mesh axis may
// shard two dimensions.
func (s Sharding) Validate(logical []int, mesh *topology.Mesh) error {
	if len(s.Axes) != len(logical) {
		return fmt.Errorf("partition: sharding rank %d does not match shape %v", len(s.Axes), logical)
	}
	used := map[int]bool{}
	for dim, axis := range s.Axes {
		if axis == Replicated {
			continue
		}
		if axis < 0 || axis >= mesh.Rank() {
			return fmt.Errorf("partition: dim %d sharded on unknown mesh axis %d", dim, axis)
		}
		if used[axis] {
			return fmt.Errorf("partition: mesh axis %d shards two dimensions", axis)
		}
		used[axis] = true
		if logical[dim]%mesh.Dim(axis) != 0 {
			return fmt.Errorf("partition: dim %d size %d not divisible by mesh axis %d size %d",
				dim, logical[dim], axis, mesh.Dim(axis))
		}
	}
	return nil
}

// ShardShape returns the per-device (local) shape of a logical tensor
// under this sharding.
func (s Sharding) ShardShape(logical []int, mesh *topology.Mesh) []int {
	if err := s.Validate(logical, mesh); err != nil {
		panic(err)
	}
	out := append([]int(nil), logical...)
	for dim, axis := range s.Axes {
		if axis != Replicated {
			out[dim] /= mesh.Dim(axis)
		}
	}
	return out
}

// String renders the sharding as, e.g., "{x,*}" for dim 0 on axis "x".
func (s Sharding) String() string {
	out := "{"
	for i, a := range s.Axes {
		if i > 0 {
			out += ","
		}
		if a == Replicated {
			out += "*"
		} else {
			out += fmt.Sprintf("ax%d", a)
		}
	}
	return out + "}"
}

// ShardTensor splits a full logical tensor into per-device local shards:
// device d receives the block selected by its mesh coordinates along
// each sharded dimension (replicated dimensions are not split).
func ShardTensor(full *tensor.Tensor, s Sharding, mesh *topology.Mesh) []*tensor.Tensor {
	if err := s.Validate(full.Shape(), mesh); err != nil {
		panic(err)
	}
	n := mesh.NumDevices()
	local := s.ShardShape(full.Shape(), mesh)
	out := make([]*tensor.Tensor, n)
	for d := 0; d < n; d++ {
		coord := mesh.Coord(d)
		starts := make([]int, full.Rank())
		limits := make([]int, full.Rank())
		for dim := range starts {
			if axis := s.Axes[dim]; axis != Replicated {
				starts[dim] = coord[axis] * local[dim]
			}
			limits[dim] = starts[dim] + local[dim]
		}
		out[d] = tensor.Slice(full, starts, limits)
	}
	return out
}

// UnshardTensor reassembles a full logical tensor from per-device
// shards, the inverse of ShardTensor. Replicated copies must agree; it
// panics if they do not (within exact equality), since disagreement
// means the SPMD program diverged.
func UnshardTensor(shards []*tensor.Tensor, s Sharding, logical []int, mesh *topology.Mesh) *tensor.Tensor {
	if len(shards) != mesh.NumDevices() {
		panic(fmt.Sprintf("partition: %d shards for %d devices", len(shards), mesh.NumDevices()))
	}
	full := tensor.New(logical...)
	local := s.ShardShape(logical, mesh)
	written := map[string]bool{}
	for d := 0; d < mesh.NumDevices(); d++ {
		coord := mesh.Coord(d)
		starts := make([]int, len(logical))
		for dim := range starts {
			if axis := s.Axes[dim]; axis != Replicated {
				starts[dim] = coord[axis] * local[dim]
			}
		}
		key := fmt.Sprint(starts)
		if written[key] {
			// A replicated copy of an already-written block: verify.
			existing := tensor.Slice(full, starts, addShapes(starts, local))
			if !existing.Equal(shards[d]) {
				panic(fmt.Sprintf("partition: replicated shards diverge at device %d", d))
			}
			continue
		}
		written[key] = true
		full = tensor.DynamicUpdateSlice(full, shards[d], starts)
	}
	return full
}

func addShapes(a, b []int) []int {
	out := make([]int, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}
