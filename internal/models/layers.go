package models

import (
	"fmt"

	"overlap/internal/hlo"
	"overlap/internal/partition"
)

// Mesh axis roles: x is the first (slow) axis, y the second. The 2D
// strategy shards tokens on y and the model/feature dimensions on x,
// following Fig 3; the 1D (speech) strategy uses y as the
// model-parallel ring and x for data parallelism.
const (
	axisX = 0
	axisY = 1
)

// BuildLayerStep constructs the per-device SPMD graph of ONE training
// step of ONE layer of the model: forward and backward passes of the
// feed-forward block and the attention block, with the collectives the
// partitioning strategy requires. Step time and FLOPs scale linearly in
// the layer count, so all throughput ratios are computed on this graph.
//
// Modeling notes (see DESIGN.md for the substitution table):
//   - Attention keys/values enter as parameters shaped [heads, seq,
//     headDim] rather than being produced by reshapes of the same
//     projection, preserving the FLOP count and locality of the
//     attention core while keeping the partitioned graph simple.
//   - The backward pass is emitted explicitly: for every forward
//     AllGather→Einsum there is a data-gradient Einsum→ReduceScatter on
//     the same mesh axis and a weight-gradient Einsum→ReduceScatter on
//     the token axis, matching "the AllGathers become ReduceScatters"
//     (§2.2).
//   - Weight gathers are re-materialized in the backward pass (fresh
//     AllGathers) as memory-saving compilers do.
func BuildLayerStep(cfg Config) (*hlo.Computation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Arch {
	case ArchDense, ArchEncDec:
		return buildDenseLayer(cfg)
	case ArchMoE:
		return buildMoELayer(cfg)
	case ArchSpeech:
		return buildSpeechLayer(cfg)
	}
	return nil, fmt.Errorf("models: %s has unknown architecture", cfg.Name)
}

// sink ties all step outputs together so dead-code elimination keeps
// every subgraph alive.
func sink(b *partition.Builder, outs ...*partition.Value) {
	instrs := make([]*hlo.Instruction, len(outs))
	for i, v := range outs {
		instrs[i] = v.Instr
	}
	b.Comp.Tuple(instrs...)
}

func buildDenseLayer(cfg Config) (*hlo.Computation, error) {
	mesh := cfg.Mesh()
	b := partition.NewBuilder(cfg.Name+".layer_step", mesh)
	e, d, f := cfg.Tokens(), cfg.ModelDim, cfg.FFDim
	h, t, s := cfg.Heads(), cfg.HeadDim, cfg.SeqLen

	shardED := partition.OnDims(2, []int{0, 1}, []int{axisY, axisX})

	act := b.Parameter("act_ffn", []int{e, d}, shardED)
	actAttn := b.Parameter("act_attn", []int{e, d}, shardED)
	w1 := b.Parameter("w1", []int{d, f}, partition.OnDims(2, []int{0, 1}, []int{axisY, axisX}))
	w2 := b.Parameter("w2", []int{f, d}, partition.OnDim(2, 0, axisX))
	wq := b.Parameter("wq", []int{d, h, t}, partition.OnDims(3, []int{0, 1}, []int{axisY, axisX}))
	wo := b.Parameter("wo", []int{h, t, d}, partition.OnDim(3, 0, axisX))
	keys := b.Parameter("keys", []int{h, s, t}, partition.OnDim(3, 0, axisX))
	values := b.Parameter("values", []int{h, s, t}, partition.OnDim(3, 0, axisX))
	dOut := b.Parameter("d_out", []int{e, d}, shardED)
	dOutAttn := b.Parameter("d_out_attn", []int{e, d}, shardED)

	// ---------------- forward: feed-forward block (Fig 3) ----------------
	actG := b.AllGather(act, 1) // x-ring: unshard D
	w1G := b.AllGather(w1, 0)   // y-ring: unshard D
	hid := b.Einsum("ed,df->ef", actG, w1G)
	ffPart := b.Einsum("ef,fd->ed", hid, w2) // contracts F (x-sharded): partial over x
	ffOut := b.ReduceScatter(ffPart, 1, axisX)

	// ---------------- forward: attention block ----------------
	attG := b.AllGather(actAttn, 1)
	wqG := b.AllGather(wq, 0)
	q := b.Einsum("ed,dht->het", attG, wqG)         // heads sharded on x, tokens on y
	scores := b.Einsum("het,hst->hes", q, keys)     // local
	ctx := b.Einsum("hes,hst->het", scores, values) // local
	oPart := b.Einsum("het,htd->ed", ctx, wo)       // contracts heads (x): partial over x
	attnOut := b.ReduceScatter(oPart, 1, axisX)

	// ---------------- backward: feed-forward block ----------------
	dOutG := b.AllGather(dOut, 1)
	dHid := b.Einsum("ed,fd->ef", dOutG, w2) // AllGather-einsum on the x-ring
	w1GB := b.AllGather(w1, 0)               // re-materialized weight gather
	dActPart := b.Einsum("ef,df->ed", dHid, w1GB)
	dAct := b.ReduceScatter(dActPart, 1, axisX)
	actGB := b.AllGather(act, 1)
	dW1Part := b.Einsum("ed,ef->df", actGB, dHid) // contracts tokens (y): partial over y
	dW1 := b.ReduceScatter(dW1Part, 0, axisY)
	dW2Part := b.Einsum("ef,ed->fd", hid, dOutG)
	dW2 := b.ReduceScatter(dW2Part, 1, axisY)

	// ---------------- backward: attention block ----------------
	dAttnG := b.AllGather(dOutAttn, 1)
	dCtx := b.Einsum("ed,htd->het", dAttnG, wo)
	dScores := b.Einsum("het,hst->hes", dCtx, values)
	dQ := b.Einsum("hes,hst->het", dScores, keys)
	attGB := b.AllGather(actAttn, 1)
	dWqPart := b.Einsum("ed,het->dht", attGB, dQ) // contracts tokens (y): partial over y
	dWq := b.ReduceScatter(dWqPart, 0, axisY)
	dWoPart := b.Einsum("het,ed->htd", ctx, dAttnG)
	dWo := b.ReduceScatter(dWoPart, 2, axisY)

	outs := []*partition.Value{ffOut, attnOut, dAct, dW1, dW2, dCtx, dWq, dWo}

	// Encoder-decoder models carry extra activation relayouts in the
	// backward pass (the T5 AllToAlls of §6.1).
	for i := 0; i < cfg.ExtraAllToAll; i++ {
		outs = append(outs, b.RelayoutAllToAll(dAct, axisY))
	}
	sink(b, outs...)
	return b.Comp, nil
}

func buildMoELayer(cfg Config) (*hlo.Computation, error) {
	mesh := cfg.Mesh()
	b := partition.NewBuilder(cfg.Name+".layer_step", mesh)
	e, d, f := cfg.Tokens(), cfg.ModelDim, cfg.FFDim
	h, t, s := cfg.Heads(), cfg.HeadDim, cfg.SeqLen
	p := cfg.Experts
	te := e / p // tokens per expert at capacity factor 1

	shardED := partition.OnDims(2, []int{0, 1}, []int{axisY, axisX})

	// ---------------- attention block (same as dense, fwd+bwd) --------
	actAttn := b.Parameter("act_attn", []int{e, d}, shardED)
	wq := b.Parameter("wq", []int{d, h, t}, partition.OnDims(3, []int{0, 1}, []int{axisY, axisX}))
	wo := b.Parameter("wo", []int{h, t, d}, partition.OnDim(3, 0, axisX))
	keys := b.Parameter("keys", []int{h, s, t}, partition.OnDim(3, 0, axisX))
	values := b.Parameter("values", []int{h, s, t}, partition.OnDim(3, 0, axisX))
	dOutAttn := b.Parameter("d_out_attn", []int{e, d}, shardED)

	attG := b.AllGather(actAttn, 1)
	wqG := b.AllGather(wq, 0)
	q := b.Einsum("ed,dht->het", attG, wqG)
	scores := b.Einsum("het,hst->hes", q, keys)
	ctx := b.Einsum("hes,hst->het", scores, values)
	oPart := b.Einsum("het,htd->ed", ctx, wo)
	attnOut := b.ReduceScatter(oPart, 1, axisX)

	dAttnG := b.AllGather(dOutAttn, 1)
	dCtx := b.Einsum("ed,htd->het", dAttnG, wo)
	dScores := b.Einsum("het,hst->hes", dCtx, values)
	dQ := b.Einsum("hes,hst->het", dScores, keys)
	attGB := b.AllGather(actAttn, 1)
	dWqPart := b.Einsum("ed,het->dht", attGB, dQ)
	dWq := b.ReduceScatter(dWqPart, 0, axisY)
	dWoPart := b.Einsum("het,ed->htd", ctx, dAttnG)
	dWo := b.ReduceScatter(dWoPart, 2, axisY)

	// ---------------- mixture-of-experts feed-forward ----------------
	// Dispatch and combine are activation-sized AllToAlls along the
	// token axis; they have no dependent einsum the decomposition could
	// attach to, so they stay blocking (the GLaM limitation §6.1 cites).
	actMoE := b.Parameter("act_moe", []int{e, d}, shardED)
	dispatched := b.RelayoutAllToAll(actMoE, axisY)

	routed := b.Parameter("routed", []int{p, te, d}, partition.OnDims(3, []int{0, 2}, []int{axisY, axisX}))
	we1 := b.Parameter("we1", []int{p, d, f}, partition.OnDims(3, []int{0, 2}, []int{axisY, axisX}))
	we2 := b.Parameter("we2", []int{p, f, d}, partition.OnDims(3, []int{0, 1}, []int{axisY, axisX}))
	routedG := b.AllGather(routed, 2) // x-ring gather of the expert input
	hid := b.Einsum("ptd,pdf->ptf", routedG, we1)
	ePart := b.Einsum("ptf,pfd->ptd", hid, we2) // contracts F (x): partial over x
	expertOut := b.ReduceScatter(ePart, 2, axisX)
	combined := b.RelayoutAllToAll(actMoE, axisY) // combine leg

	// Expert backward: data and weight gradients, as in the dense FFN.
	dExp := b.Parameter("d_expert", []int{p, te, d}, partition.OnDims(3, []int{0, 2}, []int{axisY, axisX}))
	dExpG := b.AllGather(dExp, 2)
	dHid := b.Einsum("ptd,pfd->ptf", dExpG, we2ForGrad(b, p, f, d))
	// The expert weight gradient contracts the per-expert token
	// dimension, which is unsharded: no reduction collective appears —
	// one less overlap site than the dense FFN.
	dWe1 := b.Einsum("ptd,ptf->pdf", routedG, dHid)

	sink(b, attnOut, dWq, dWo, dScores, dispatched, expertOut, combined, dWe1)
	return b.Comp, nil
}

// we2ForGrad declares the gradient-side copy of the second expert weight
// with the sharding the backward einsum needs: the contraction over the
// model dimension is local, and the feed-forward dimension stays sharded
// on x.
func we2ForGrad(b *partition.Builder, p, f, d int) *partition.Value {
	return b.Parameter("we2_grad", []int{p, f, d}, partition.OnDims(3, []int{0, 1}, []int{axisY, axisX}))
}

func buildSpeechLayer(cfg Config) (*hlo.Computation, error) {
	mesh := cfg.Mesh()
	b := partition.NewBuilder(cfg.Name+".layer_step", mesh)
	e, d, f := cfg.Tokens(), cfg.ModelDim, cfg.FFDim
	h, t, s := cfg.Heads(), cfg.HeadDim, cfg.SeqLen

	// 1D strategy (Fig 2): activations keep a batch shard on the
	// data-parallel x axis; weights are sharded along the model ring (y)
	// and gathered on demand before each einsum.
	shardE := partition.OnDim(2, 0, axisX)

	act := b.Parameter("act", []int{e, d}, shardE)
	w1 := b.Parameter("w1", []int{d, f}, partition.OnDim(2, 0, axisY))
	w2 := b.Parameter("w2", []int{f, d}, partition.OnDim(2, 0, axisY))
	wq := b.Parameter("wq", []int{d, h, t}, partition.OnDim(3, 0, axisY))
	keys := b.Parameter("keys", []int{h, s, t}, partition.ReplicatedSharding(3))
	values := b.Parameter("values", []int{h, s, t}, partition.ReplicatedSharding(3))
	dOut := b.Parameter("d_out", []int{e, d}, shardE)

	// Forward FFN: two AllGather→Einsum sites on the model ring.
	w1G := b.AllGather(w1, 0)
	hid := b.Einsum("ed,df->ef", act, w1G)
	w2G := b.AllGather(w2, 0)
	ffOut := b.Einsum("ef,fd->ed", hid, w2G)

	// Forward attention: projection gathered on the ring, local core.
	wqG := b.AllGather(wq, 0)
	q := b.Einsum("ed,dht->het", act, wqG)
	scores := b.Einsum("het,hst->hes", q, keys)
	ctx := b.Einsum("hes,hst->het", scores, values)

	// Backward: data gradients re-gather the weights on the ring;
	// weight gradients contract the batch dimension sharded on the
	// data-parallel axis, leaving partial sums resolved by AllReduce —
	// plain data parallelism, not overlappable by the technique.
	w2GB := b.AllGather(w2, 0)
	dHid := b.Einsum("ed,fd->ef", dOut, w2GB)
	w1GB := b.AllGather(w1, 0)
	dAct := b.Einsum("ef,df->ed", dHid, w1GB)
	dW1Part := b.Einsum("ed,ef->df", act, dHid) // contracts tokens (x): partial over x
	dW1 := b.AllReduce(dW1Part, axisX)
	dW2Part := b.Einsum("ef,ed->fd", hid, dOut)
	dW2 := b.AllReduce(dW2Part, axisX)

	sink(b, ffOut, ctx, dAct, dW1, dW2)
	return b.Comp, nil
}
