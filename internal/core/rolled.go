package core

import (
	"fmt"

	"overlap/internal/hlo"
)

// Rolled emission: the Looped CollectiveEinsum as an actual counted
// loop (hlo.OpLoop), the way a production compiler materializes it
// before unrolling. The body is one iteration of Algorithm 1 — a
// blocking CollectivePermute on the circulated buffer (with the
// loop-carried aliasing Copy §5.4.1 describes), the partial einsum, and
// the result update indexed by the induction variable. The rolled form
// is semantically identical to the expanded form but cannot overlap:
// asynchronous start/done pairs cannot straddle the loop back-edge, so
// the optimizing pipeline (Options.Rolled == false) emits the expanded
// sequence instead and lets the scheduler software-pipeline it.

// PosOffsetIter returns ((pos + iter + add) mod N) * scale, the
// loop-variant shard index of the rolled form.
func (r RingInfo) PosOffsetIter(add, scale int) hlo.DynOffset {
	return hlo.DynOffset{PIDFactor: 1, Div: r.Stride, IterFactor: 1, Add: add, Mod: r.N, Scale: scale}
}

// DecomposeRolled rewrites one site into a rolled Looped
// CollectiveEinsum. Only the unidirectional variants exist in rolled
// form; unrolling and bidirectional transfer are loop transformations
// that the expanded emitter applies.
func DecomposeRolled(c *hlo.Computation, p Pattern) error {
	var err error
	c.WithRootPreserved(func() { err = decomposeRolled(c, p) })
	return err
}

func decomposeRolled(c *hlo.Computation, p Pattern) error {
	var result *hlo.Instruction
	var root *hlo.Instruction
	switch p.Kind {
	case AllGatherEinsum:
		root = p.Einsum
		result = rolledAllGather(c, p)
	case EinsumReduceScatter:
		root = p.Collective
		result = rolledReduceScatter(c, p)
	default:
		return fmt.Errorf("core: unknown pattern kind %v", p.Kind)
	}
	c.ReplaceAllUsesWith(root, result)
	c.ScheduleStableTopological()
	c.RemoveDeadCode()
	return c.Verify()
}

// rolledAllGather emits:
//
//	loop(cur = shard, result = 0, other) x N:
//	  next    = collective-permute(copy(cur), shift-left)
//	  partial = einsum(cur, other-or-slice)
//	  result' = update(result, partial, f(pos, i))
func rolledAllGather(c *hlo.Computation, p Pattern) *hlo.Instruction {
	n := p.Ring.N
	shardOp := p.Collective.Operands[0]
	other := p.Einsum.Operands[1-p.Side]
	shard := shardOp.Shape[p.GatherDim]
	left := p.Ring.ShiftPairs(-1)

	body := hlo.NewComputation("rolled." + p.Einsum.Name)
	pCur := body.Parameter(0, "cur", shardOp.Shape)
	pRes := body.Parameter(1, "result", p.Einsum.Shape)
	pOther := body.Parameter(2, "other", other.Shape)

	next := body.CollectivePermute(body.Copy(pCur), left)
	var res *hlo.Instruction
	switch p.Case {
	case CaseNonContracting:
		partial := buildEinsumIn(body, p, pCur, pOther)
		off := staticOffsets(len(p.Einsum.Shape), p.OutDim, p.Ring.PosOffsetIter(0, partial.Shape[p.OutDim]))
		res = body.DynamicUpdateSlice(pRes, partial, off)
	case CaseContracting, CaseBatch:
		sizes := append([]int(nil), other.Shape...)
		sizes[p.OtherDim] = shard
		slice := body.DynamicSlice(pOther,
			staticOffsets(len(other.Shape), p.OtherDim, p.Ring.PosOffsetIter(0, shard)), sizes)
		partial := buildEinsumIn(body, p, pCur, slice)
		if p.Case == CaseContracting {
			res = body.Add(pRes, partial)
		} else {
			off := staticOffsets(len(p.Einsum.Shape), p.OutDim, p.Ring.PosOffsetIter(0, partial.Shape[p.OutDim]))
			res = body.DynamicUpdateSlice(pRes, partial, off)
		}
	}
	body.Tuple(next, res, pOther)

	zero := c.Zeros("", p.Einsum.Shape)
	return c.Loop(body, n, 1, shardOp, zero, other)
}

// rolledReduceScatter emits:
//
//	loop(acc = 0, lhs, rhs) x N:
//	  sent    = collective-permute(copy(acc), shift-left)
//	  xs      = dynamic-slice(X, f(pos, i+1))
//	  partial = einsum(..., xs, ...)
//	  acc'    = sent + partial
func rolledReduceScatter(c *hlo.Computation, p Pattern) *hlo.Instruction {
	n := p.Ring.N
	x := p.Einsum.Operands[p.SliceSide]
	other := p.Einsum.Operands[1-p.SliceSide]
	shard := x.Shape[p.SliceDim] / n
	left := p.Ring.ShiftPairs(-1)

	body := hlo.NewComputation("rolled." + p.Collective.Name)
	pAcc := body.Parameter(0, "acc", p.Collective.Shape)
	pX := body.Parameter(1, "x", x.Shape)
	pOther := body.Parameter(2, "other", other.Shape)

	sent := body.CollectivePermute(body.Copy(pAcc), left)
	sizes := append([]int(nil), x.Shape...)
	sizes[p.SliceDim] = shard
	xs := body.DynamicSlice(pX,
		staticOffsets(len(x.Shape), p.SliceDim, p.Ring.PosOffsetIter(1, shard)), sizes)
	partial := buildEinsumIn(body, p, xs, pOther)
	acc := body.Add(sent, partial)
	body.Tuple(acc, pX, pOther)

	zero := c.Zeros("", p.Collective.Shape)
	return c.Loop(body, n, 0, zero, x, other)
}

// buildEinsumIn is buildEinsum targeting an arbitrary computation (the
// loop body).
func buildEinsumIn(into *hlo.Computation, p Pattern, sideVal, otherVal *hlo.Instruction) *hlo.Instruction {
	side := p.Side
	if p.Kind == EinsumReduceScatter {
		side = p.SliceSide
	}
	if side == 0 {
		return into.Einsum(p.Einsum.EinsumSpec, sideVal, otherVal)
	}
	return into.Einsum(p.Einsum.EinsumSpec, otherVal, sideVal)
}
