package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseEinsumValid(t *testing.T) {
	s, err := ParseEinsum("bf,fh->bh")
	if err != nil {
		t.Fatal(err)
	}
	if s.Inputs[0] != "bf" || s.Inputs[1] != "fh" || s.Output != "bh" {
		t.Fatalf("parsed = %+v", s)
	}
	if s.String() != "bf,fh->bh" {
		t.Fatalf("String = %q", s.String())
	}
	if got := s.ContractedLabels(); got != "f" {
		t.Fatalf("ContractedLabels = %q, want f", got)
	}
	if got := s.BatchLabels(); got != "" {
		t.Fatalf("BatchLabels = %q, want empty", got)
	}
}

func TestParseEinsumBatchLabels(t *testing.T) {
	s, err := ParseEinsum("gbf,gfh->gbh")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.BatchLabels(); got != "g" {
		t.Fatalf("BatchLabels = %q, want g", got)
	}
	if got := s.ContractedLabels(); got != "f" {
		t.Fatalf("ContractedLabels = %q, want f", got)
	}
}

func TestParseEinsumErrors(t *testing.T) {
	bad := []string{
		"bf,fh",      // no arrow
		"bf,fh->bz",  // output label absent from operands
		"b1,1h->bh",  // non-letter label
		"bb,bh->bh",  // repeated label within operand
		"bf,fh->bhh", // repeated output label
		"a,b,c->abc", // three operands
		"->a",        // empty operand with unknown output label
	}
	for _, spec := range bad {
		if _, err := ParseEinsum(spec); err == nil {
			t.Errorf("ParseEinsum(%q) succeeded, want error", spec)
		}
	}
}

func TestEinsumMatmul(t *testing.T) {
	a := FromValues([]int{2, 3}, []float64{1, 2, 3, 4, 5, 6})
	b := FromValues([]int{3, 2}, []float64{7, 8, 9, 10, 11, 12})
	got := Einsum("ik,kj->ij", a, b)
	want := FromValues([]int{2, 2}, []float64{58, 64, 139, 154})
	if !got.Equal(want) {
		t.Fatalf("matmul = %v, want %v", got.Data(), want.Data())
	}
}

func TestEinsumTranspose(t *testing.T) {
	a := Iota(2, 3)
	got := Einsum("ij->ji", a)
	if !got.Equal(Transpose(a, 1, 0)) {
		t.Fatalf("einsum transpose = %v", got.Data())
	}
}

func TestEinsumSumReduction(t *testing.T) {
	a := Iota(2, 3) // 0..5
	got := Einsum("ij->i", a)
	want := FromValues([]int{2}, []float64{3, 12})
	if !got.Equal(want) {
		t.Fatalf("row sums = %v, want %v", got.Data(), want.Data())
	}
}

func TestEinsumBatchedMatmul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Rand(rng, 4, 2, 3)
	b := Rand(rng, 4, 3, 5)
	got := Einsum("gik,gkj->gij", a, b)
	// Reference: per-batch plain matmul.
	for g := 0; g < 4; g++ {
		ag := Slice(a, []int{g, 0, 0}, []int{g + 1, 2, 3})
		bg := Slice(b, []int{g, 0, 0}, []int{g + 1, 3, 5})
		ref := Einsum("ik,kj->ij", Reshape(ag, 2, 3), Reshape(bg, 3, 5))
		sub := Reshape(Slice(got, []int{g, 0, 0}, []int{g + 1, 2, 5}), 2, 5)
		if !sub.AllClose(ref, 1e-12) {
			t.Fatalf("batched matmul differs at batch %d", g)
		}
	}
}

func TestEinsumOuterProduct(t *testing.T) {
	a := FromValues([]int{2}, []float64{1, 2})
	b := FromValues([]int{3}, []float64{3, 4, 5})
	got := Einsum("i,j->ij", a, b)
	want := FromValues([]int{2, 3}, []float64{3, 4, 5, 6, 8, 10})
	if !got.Equal(want) {
		t.Fatalf("outer product = %v", got.Data())
	}
}

func TestEinsumZeroSizeDim(t *testing.T) {
	a := New(0, 3)
	b := New(3, 2)
	got := Einsum("ik,kj->ij", a, b)
	if got.Dim(0) != 0 || got.Dim(1) != 2 {
		t.Fatalf("zero-size einsum shape = %v", got.Shape())
	}
}

func TestOutputShapeAndFlops(t *testing.T) {
	s, err := ParseEinsum("bf,fh->bh")
	if err != nil {
		t.Fatal(err)
	}
	shape, err := s.OutputShape([]int{8, 4}, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if shape[0] != 8 || shape[1] != 16 {
		t.Fatalf("OutputShape = %v", shape)
	}
	flops, err := s.Flops([]int{8, 4}, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if flops != 2*8*4*16 {
		t.Fatalf("Flops = %d, want %d", flops, 2*8*4*16)
	}
	if _, err := s.OutputShape([]int{8, 4}, []int{5, 16}); err == nil {
		t.Fatal("mismatched contraction sizes must error")
	}
}

// Property: einsum is linear in its first operand.
func TestEinsumLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a1 := Rand(rng, m, k)
		a2 := Rand(rng, m, k)
		b := Rand(rng, k, n)
		lhs := Einsum("ik,kj->ij", Add(a1, a2), b)
		rhs := Add(Einsum("ik,kj->ij", a1, b), Einsum("ik,kj->ij", a2, b))
		return lhs.AllClose(rhs, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting the contracting dimension and summing the partial
// einsums reproduces the full einsum — the core identity behind the
// Einsum-ReduceScatter decomposition (paper §5.1 Case 2).
func TestEinsumContractionSplitIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		k := parts * (1 + rng.Intn(3))
		n := 1 + rng.Intn(4)
		a := Rand(rng, m, k)
		b := Rand(rng, k, n)
		full := Einsum("ik,kj->ij", a, b)
		aParts := Split(a, 1, parts)
		bParts := Split(b, 0, parts)
		acc := New(m, n)
		for p := 0; p < parts; p++ {
			acc = Add(acc, Einsum("ik,kj->ij", aParts[p], bParts[p]))
		}
		return acc.AllClose(full, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting a non-contracting dimension and concatenating the
// partial results reproduces the full einsum — the identity behind the
// AllGather-Einsum decomposition (paper §5.1 Case 1).
func TestEinsumNonContractingSplitIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := 1 + rng.Intn(4)
		m := parts * (1 + rng.Intn(3))
		k := 1 + rng.Intn(4)
		n := 1 + rng.Intn(4)
		a := Rand(rng, m, k)
		b := Rand(rng, k, n)
		full := Einsum("ik,kj->ij", a, b)
		aParts := Split(a, 0, parts)
		var partials []*Tensor
		for p := 0; p < parts; p++ {
			partials = append(partials, Einsum("ik,kj->ij", aParts[p], b))
		}
		return Concat(0, partials...).AllClose(full, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEinsumMatmul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Rand(rng, 64, 64)
	y := Rand(rng, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Einsum("ik,kj->ij", x, y)
	}
}
