package experiments

import (
	"strings"
	"testing"

	"overlap/internal/machine"
)

func TestMemoryExtensionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model sweep")
	}
	text, err := Memory(machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "GPT_1T") || !strings.Contains(text, "+") {
		t.Fatalf("memory table malformed:\n%s", text)
	}
	// Overlapping must grow memory (receive buffers, double buffering),
	// but not explode: growth lines must all parse below +150%.
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, "%") || strings.Contains(line, "growth") {
			continue
		}
		fields := strings.Fields(line)
		pct := fields[len(fields)-1]
		if strings.HasPrefix(pct, "+1") && len(pct) >= 7 { // +1xx.x%
			t.Fatalf("implausible memory growth %s in %q", pct, line)
		}
	}
}

func TestRolledExtensionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model sweep")
	}
	text, err := Rolled(machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	// The expanded form must beat the rolled loop on every row.
	rows := 0
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, "x") || !strings.Contains(line, "ms") {
			continue
		}
		rows++
		fields := strings.Fields(line)
		ratio := fields[len(fields)-1]
		if strings.HasPrefix(ratio, "0.") {
			t.Fatalf("expanded emission slower than rolled: %q", line)
		}
	}
	if rows != 3 {
		t.Fatalf("expected 3 rolled rows, got %d:\n%s", rows, text)
	}
}

func TestInferenceSweepCrossover(t *testing.T) {
	text, err := InferenceSweep(machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	// The sweep must show the crossover: small batches lose (the cost
	// model would reject them), mid-size batches win.
	if !strings.Contains(text, "0.") {
		t.Fatalf("sweep shows no losing configuration:\n%s", text)
	}
	if !strings.Contains(text, "1.4") && !strings.Contains(text, "1.3") {
		t.Fatalf("sweep shows no clear winning configuration:\n%s", text)
	}
}

func TestPipelineComposition(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model run")
	}
	text, err := Pipeline(machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "speedup 1.") {
		t.Fatalf("pipeline composition lost the intra-layer speedup:\n%s", text)
	}
	if !strings.Contains(text, "bubble") {
		t.Fatalf("pipeline output missing bubble accounting:\n%s", text)
	}
}

func TestGPUGeneralization(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model sweep")
	}
	text, err := GPU(machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, "x") || !strings.Contains(line, "%") {
			continue
		}
		rows++
		// Every row must still show a speedup ("the idea can also be
		// applied to other hardware ML systems"), just a smaller one
		// than on the TPU-like machine.
		fields := strings.Fields(line)
		ratio := fields[len(fields)-1]
		if !strings.HasPrefix(ratio, "1.") {
			t.Fatalf("GPU-model row lost the speedup: %q", line)
		}
	}
	if rows != 4 {
		t.Fatalf("expected 4 GPU rows, got %d:\n%s", rows, text)
	}
}
