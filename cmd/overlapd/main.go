// Command overlapd runs the overlap pipeline as a long-running service:
// an HTTP/JSON daemon that compiles programs into cacheable Plan
// artifacts and executes them on the concurrent goroutine runtime. The
// steady-state run path is a plan-cache lookup plus execution — zero
// compilation — while cold requests batch through a coalescing
// compiler so identical programs share one tune.
//
// Endpoints:
//
//	POST /v1/run      execute a model (or inline HLO program); returns
//	                  the measured breakdown, overlap efficiency, and a
//	                  result digest
//	POST /v1/compile  return the compiled Plan artifact (same JSON as
//	                  overlaptune -plan-out / overlaprun -plan-in)
//	GET  /v1/plans    list cached plan fingerprints
//	GET  /v1/runs     flight recorder: recent + kept (slowest/failed)
//	                  run traces, newest first
//	GET  /v1/runs/ID  one run's full trace artifact
//	                  (?format=json|chrome)
//	GET  /metrics     live Prometheus telemetry (overlap_serve_* et al)
//	GET  /healthz     liveness
//
// Usage:
//
//	overlapd -addr :8080
//	curl -s localhost:8080/v1/run -d '{"model":"GPT_32B","devices":4,"dim":4}'
//	overlapd -addr :8080 -debug-faults   # allow fault-injection requests
//	overlapd -addr :8080 -debug-addr localhost:6060   # net/http/pprof on a separate port
//
// Structured JSON logs (one object per line, "run_id"-keyed) go to
// stderr. SIGINT/SIGTERM drain gracefully: in-flight requests finish,
// then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"overlap"
)

func main() {
	// Served runs on the process transport re-execute this binary as
	// their per-device workers; the hook must run before anything else.
	overlap.MaybeTransportWorker()

	addr := flag.String("addr", ":8080", "listen address")
	maxBatch := flag.Int("max-batch", 8, "batcher flush size (requests)")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "batcher flush age: a partial batch waits at most this long")
	inbox := flag.Int("inbox", 256, "bounded request inbox; beyond it requests get 503")
	maxRuns := flag.Int("max-runs", 4, "admission limit: concurrent runtime executions sharing the kernel pool")
	planCache := flag.Int("plan-cache", 64, "in-memory compiled-plan LRU capacity")
	cachePath := flag.String("cache", "", "autotune decision cache file backing cold compiles (default: per-user cache dir)")
	noCache := flag.Bool("no-cache", false, "skip the on-disk decision cache")
	tuneTopK := flag.Int("topk", 2, "candidates executed for real per cold compile")
	tuneScale := flag.Float64("tune-timescale", 50, "wire-delay scale during cold-compile tuning")
	runScale := flag.Float64("run-timescale", 50, "wire-delay scale of served runs (negative disables injection)")
	deadline := flag.Duration("default-deadline", 60*time.Second, "run deadline when the request carries none")
	debugFaults := flag.Bool("debug-faults", false, "allow requests to inject deterministic faults (chaos testing)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof at this address on a separate mux (never on the serving port); empty disables")
	flightSize := flag.Int("flight-size", 64, "flight recorder: ring capacity of recent run traces served at /v1/runs")
	flightKeep := flag.Int("flight-keep", 8, "flight recorder: slowest/failed runs kept beyond the ring")
	traceDir := flag.String("trace-dir", "", "additionally write every recorded run trace to <dir>/<run-id>.json")
	kernelWorkers := flag.Int("kernel-workers", 0, "intra-op einsum kernel parallelism (0 = GOMAXPROCS); keyed into every plan fingerprint")
	kernelSplitK := flag.Int("kernel-splitk", 0, "split-K factor for skinny einsum kernels (0 = off); keyed into every plan fingerprint")
	transport := flag.String("transport", "chan", "fabric transport of served runs: chan (in-process channels) or proc (one worker process per device over Unix sockets); an operator decision, requests cannot override it")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	flag.Parse()

	overlap.SetKernelWorkers(*kernelWorkers)
	overlap.SetKernelSplitK(*kernelSplitK)
	tk, err := overlap.ParseTransport(*transport)
	if err != nil {
		fail(err)
	}
	// Structured logs to stderr: one JSON object per line, every line of
	// a run's story carrying its run_id.
	overlap.SetLogOutput(os.Stderr)

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fail(err)
		}
	}

	srv, err := overlap.NewServer(overlap.ServerConfig{
		MaxBatch:           *maxBatch,
		MaxWait:            *maxWait,
		InboxSize:          *inbox,
		MaxConcurrentRuns:  *maxRuns,
		PlanCacheSize:      *planCache,
		CachePath:          *cachePath,
		DisableDiskCache:   *noCache,
		TuneTopK:           *tuneTopK,
		TuneTimeScale:      *tuneScale,
		RunTimeScale:       *runScale,
		DefaultDeadline:    *deadline,
		DebugFaults:        *debugFaults,
		FlightRecorderSize: *flightSize,
		FlightKeep:         *flightKeep,
		TraceDir:           *traceDir,
		Transport:          tk,
	})
	if err != nil {
		fail(err)
	}

	if *debugAddr != "" {
		addr, err := startDebugServer(*debugAddr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("overlapd: pprof at http://%s/debug/pprof/ (debug mux, not on the serving port)\n", addr)
	}

	bound, err := srv.Start(*addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("overlapd: serving at http://%s (plans cached: %d, admission: %d, batch: %d/%s)\n",
		bound, *planCache, *maxRuns, *maxBatch, *maxWait)
	if *debugFaults {
		fmt.Println("overlapd: debug-faults enabled — requests may inject deterministic failures")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("overlapd: %s — draining in-flight requests\n", got)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fail(fmt.Errorf("shutdown: %w", err))
	}
	fmt.Println("overlapd: drained; bye")
}

// startDebugServer exposes net/http/pprof on its own mux and listener.
// The serving mux never registers these handlers, so the profiling
// surface exists only when (and where) the operator asks for it.
func startDebugServer(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debug listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "overlapd: %v\n", err)
	os.Exit(1)
}
