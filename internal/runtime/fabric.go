package runtime

import (
	"sync"

	"overlap/internal/hlo"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// mailKey addresses one asynchronous transfer instance: which
// CollectivePermuteStart produced it and the per-device execution count
// of that start. SPMD keeps the counters symmetric — the sender's k-th
// execution of a start pairs with the receiver's k-th execution of the
// matching done — so no further coordination is needed to match them.
type mailKey struct {
	start *hlo.Instruction
	inst  int
}

// parcel is one tensor in flight on a link.
type parcel struct {
	key   mailKey
	data  *tensor.Tensor
	bytes int64
}

// fabric owns transfer addressing: every device's mailbox set, the
// at-most-once bookkeeping, and the edge table. The movement between
// post and deliver — wire pacing, fault actions, and (for the process
// transport) the serialization across real sockets — belongs to the
// pluggable transport underneath.
type fabric struct {
	eng   *engine
	edges map[[2]int]bool
	tr    transport

	// starts maps instruction names back to the start instructions, so
	// transports that cross a process boundary (where instruction
	// pointers cannot travel) can re-derive the mailbox key from the
	// portable (name, inst) pair.
	starts map[string]*hlo.Instruction

	mailMu []sync.Mutex
	mail   []map[mailKey]chan *tensor.Tensor

	// delivered marks transfer instances delivered to each device but
	// not yet consumed, enforcing the at-most-once invariant the
	// capacity-1 mailboxes rely on. Entries are pruned when the device
	// consumes the instance — the consume advances the per-start
	// watermark below, so the map holds only in-flight instances
	// instead of growing by one entry per instance for the life of the
	// run (long training loops execute the same start thousands of
	// times).
	delivered []map[mailKey]bool

	// watermark[dst][start] is one past the last instance of start that
	// device dst consumed. Per (start, dst) pair instances are consumed
	// strictly in order — the receiver's k-th done blocks until
	// instance k arrives — so any delivery below the watermark can only
	// be a duplicate (injected or a fabric bug) and fails the run just
	// as a tracked duplicate would.
	watermark []map[*hlo.Instruction]int
}

// linkBuffer bounds parcels queued on one edge before the wire; a start
// only blocks posting if this many sends are already pending there,
// and even then the transport is always draining, so posting can
// stall but never deadlock.
const linkBuffer = 64

// newFabric discovers the directed edges used by any asynchronous
// permute in the program (including loop bodies) and constructs the
// configured transport for them. The transport's data plane is not
// started yet — engine.run starts it before launching devices, so a
// spawn failure surfaces as a run error instead of a hang.
func newFabric(e *engine) (*fabric, error) {
	f := &fabric{
		eng:       e,
		edges:     map[[2]int]bool{},
		starts:    map[string]*hlo.Instruction{},
		mailMu:    make([]sync.Mutex, e.n),
		mail:      make([]map[mailKey]chan *tensor.Tensor, e.n),
		delivered: make([]map[mailKey]bool, e.n),
		watermark: make([]map[*hlo.Instruction]int, e.n),
	}
	for d := 0; d < e.n; d++ {
		f.mail[d] = map[mailKey]chan *tensor.Tensor{}
		f.delivered[d] = map[mailKey]bool{}
		f.watermark[d] = map[*hlo.Instruction]int{}
	}
	e.comp.Walk(func(in *hlo.Instruction) {
		if in.Op != hlo.OpCollectivePermuteStart {
			return
		}
		f.starts[in.Name] = in
		for _, p := range in.Pairs {
			f.edges[[2]int{p.Source, p.Target}] = true
		}
	})
	tr, err := newTransport(e, f)
	if err != nil {
		return nil, err
	}
	f.tr = tr
	return f, nil
}

// start brings the transport's data plane up.
func (f *fabric) start() error {
	edges := make([][2]int, 0, len(f.edges))
	for e := range f.edges {
		edges = append(edges, e)
	}
	return f.tr.start(edges)
}

// deliver hands one parcel to its destination mailbox, enforcing
// at-most-once delivery per transfer instance. fault carries the
// injected-fault description when this delivery is itself the fault (a
// duplicate); a detected duplicate fails the run with a structured
// error attributed to the receiving device.
func (f *fabric) deliver(dst int, key mailKey, data *tensor.Tensor, fault string) {
	f.mailMu[dst].Lock()
	if f.delivered[dst][key] || key.inst < f.watermark[dst][key.start] {
		f.mailMu[dst].Unlock()
		f.eng.fail(&RunError{
			Device: dst, Instr: key.start.Name, Phase: PhaseReceive,
			Elapsed: f.eng.sinceDur(), Fault: fault, Err: ErrDuplicateDelivery,
		})
		return
	}
	f.delivered[dst][key] = true
	ch, ok := f.mail[dst][key]
	if !ok {
		ch = make(chan *tensor.Tensor, 1)
		f.mail[dst][key] = ch
	}
	f.mailMu[dst].Unlock()
	// The at-most-once mark above guarantees room in the capacity-1
	// mailbox, so this send cannot block in a healthy run; the abort arm
	// is belt-and-braces for faulted ones.
	select {
	case ch <- data:
	case <-f.eng.abort:
	}
}

// deliverNamed is deliver for transports that re-enter the parent from
// another process: the key arrives as the portable (name, inst) pair
// and is mapped back to the start instruction. fault is the injected
// fault the frame was marked with (a duplicated delivery carries its
// injection's description on both copies, so a detected duplicate is
// attributed identically to the in-process transport). An unknown name
// is a framing or routing bug and fails the run.
func (f *fabric) deliverNamed(dst int, name string, inst int, data *tensor.Tensor, fault string) {
	start, ok := f.starts[name]
	if !ok || dst < 0 || dst >= f.eng.n {
		f.eng.fail(&RunError{
			Device: dst, Instr: name, Phase: PhaseReceive,
			Elapsed: f.eng.sinceDur(),
			Err:     formatErr("transport delivered unknown transfer %q to device %d", name, dst),
		})
		return
	}
	f.deliver(dst, mailKey{start: start, inst: inst}, data, fault)
}

// post enqueues a transfer on its link without waiting for the wire.
// It reports false if the run aborted while the link queue was full, or
// if no link exists for the edge — a malformed program or a pair
// mutated after fabric construction — which fails the run with an error
// naming the edge instead of blocking forever.
func (f *fabric) post(src, dst int, key mailKey, data *tensor.Tensor, bytes int64) bool {
	if !f.edges[[2]int{src, dst}] {
		f.eng.fail(&RunError{
			Device: src, Instr: key.start.Name, Phase: PhasePost,
			Elapsed: f.eng.sinceDur(),
			Err:     formatErr("%w %d->%d (permute pair absent at fabric build time)", ErrMissingLink, src, dst),
		})
		return false
	}
	if !f.tr.post(src, dst, parcel{key: key, data: data, bytes: bytes}) {
		return false
	}
	rtTransfers.Inc()
	rtTransferBytes.Add(float64(bytes))
	return true
}

// receive blocks until the transfer addressed by key arrives at device
// dst, or the run aborts. A consumed instance is pruned from the
// mailbox and delivered maps and folded into the per-start watermark,
// so repeated instances of one start (loop iterations, training steps)
// occupy O(in-flight) memory, not O(instances).
func (f *fabric) receive(dst int, key mailKey) (*tensor.Tensor, bool) {
	select {
	case t := <-f.mailbox(dst, key):
		f.mailMu[dst].Lock()
		delete(f.mail[dst], key)
		delete(f.delivered[dst], key)
		f.watermark[dst][key.start] = key.inst + 1
		f.mailMu[dst].Unlock()
		return t, true
	case <-f.eng.abort:
		return nil, false
	}
}

// mailbox returns the single-parcel channel for one transfer instance at
// one device, creating it on first use by either side. Each key carries
// exactly one parcel (validation enforces unique pair sources, the
// fabric enforces at-most-once delivery), so delivery into the
// capacity-1 channel never blocks the transport.
func (f *fabric) mailbox(dev int, key mailKey) chan *tensor.Tensor {
	f.mailMu[dev].Lock()
	defer f.mailMu[dev].Unlock()
	ch, ok := f.mail[dev][key]
	if !ok {
		ch = make(chan *tensor.Tensor, 1)
		f.mail[dev][key] = ch
	}
	return ch
}

// shutdown winds the transport down. Called after all devices have
// returned: remaining parcels (possible only on abort) drain into
// mailboxes nobody reads, which cannot block because each key's channel
// has room for its one parcel and in-flight sleeps select against the
// abort.
func (f *fabric) shutdown() { f.tr.shutdown() }

// traceEvents merges the transport's transfer spans. Only called after
// shutdown, when nothing appends.
func (f *fabric) traceEvents() []sim.TraceEvent { return f.tr.traceEvents() }

// mailboxSizes reports the current entry counts of the addressing maps
// for one device — the boundedness the pruning in receive guarantees,
// pinned by the fabric tests.
func (f *fabric) mailboxSizes(dev int) (mail, delivered, watermarks int) {
	f.mailMu[dev].Lock()
	defer f.mailMu[dev].Unlock()
	return len(f.mail[dev]), len(f.delivered[dev]), len(f.watermark[dev])
}
