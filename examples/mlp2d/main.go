// mlp2d reproduces the Fig 3 scenario: a two-layer MLP partitioned
// along two mesh dimensions, with activations and weights AllGathered
// along different axes before the first einsum and a subgroup
// ReduceScatter resolving the partial sums of the second. The example
// prints the HLO before and after the overlap pipeline and the
// simulated step improvement, demonstrating both decomposition kinds
// (AllGather-Einsum and Einsum-ReduceScatter) on subgroup rings.
//
// Run with: go run ./examples/mlp2d
package main

import (
	"fmt"
	"log"
	"strings"

	"overlap"
	"overlap/internal/partition"
)

func buildMLP2D() (*overlap.Computation, *overlap.Mesh) {
	const (
		x, y = 0, 1  // mesh axes
		m, n = 4, 8  // mesh shape
		e    = 32768 // tokens
		d    = 4096  // model dim
		f    = 16384 // feed-forward dim
	)
	mesh := overlap.NewTorus2D(m, n)
	b := partition.NewBuilder("mlp2d", mesh)
	act := b.Parameter("act", []int{e, d}, partition.OnDims(2, []int{0, 1}, []int{y, x}))
	w1 := b.Parameter("w1", []int{d, f}, partition.OnDims(2, []int{0, 1}, []int{y, x}))
	w2 := b.Parameter("w2", []int{f, d}, partition.OnDim(2, 0, x))

	actG := b.AllGather(act, 1)             // unshard d along x
	w1G := b.AllGather(w1, 0)               // unshard d along y
	hid := b.Einsum("ed,df->ef", actG, w1G) // [e/n, f/m]
	part := b.Einsum("ef,fd->ed", hid, w2)  // partial sum over x
	out := b.ReduceScatter(part, 1, x)      // Fig 3's subgroup ReduceScatter
	b.Comp.Tuple(out.Instr)
	return b.Comp, mesh
}

func main() {
	spec := overlap.TPUv4()

	baseline, mesh := buildMLP2D()
	fmt.Println("=== baseline HLO (blocking collectives) ===")
	fmt.Print(clip(baseline.Format(), 12))

	baseBd, err := overlap.Simulate(baseline, mesh.NumDevices(), spec)
	if err != nil {
		log.Fatal(err)
	}

	overlapped, _ := buildMLP2D()
	report, err := overlap.Apply(overlapped, overlap.DefaultOptions(spec))
	if err != nil {
		log.Fatal(err)
	}
	overBd, err := overlap.Simulate(overlapped, mesh.NumDevices(), spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== after decomposition + bottom-up scheduling (first lines) ===")
	fmt.Print(clip(overlapped.Format(), 18))

	fmt.Printf("\nsites: found=%d decomposed=%d rejected=%d\n",
		report.SitesFound, report.SitesDecomposed, report.SitesRejected)
	for _, d := range report.Decisions {
		fmt.Printf("  %-22s comp=%.2fms comm=%.2fms ring=%.2fms enable=%v\n",
			d.Pattern.Kind.String(), 1e3*d.CompT, 1e3*d.CommT, 1e3*d.CommRing, d.Enable)
	}
	fmt.Printf("baseline:   %.3f ms (%.0f%% exposed communication)\n",
		1e3*baseBd.StepTime, 100*baseBd.CommFraction())
	fmt.Printf("overlapped: %.3f ms (%.0f%% exposed communication)\n",
		1e3*overBd.StepTime, 100*overBd.CommFraction())
	fmt.Printf("speedup:    %.2fx\n", baseBd.StepTime/overBd.StepTime)
}

func clip(s string, lines int) string {
	parts := strings.SplitN(s, "\n", lines+1)
	if len(parts) > lines {
		parts[lines] = "  ...\n"
	}
	return strings.Join(parts, "\n")
}
