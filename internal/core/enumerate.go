package core

import (
	"fmt"
	"strings"

	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/tensor"
)

// Fingerprint returns a stable textual identity of every knob that
// changes what Apply emits or how the result executes (KernelSplitK
// leaves the program text untouched but reassociates skinny
// contractions at run time, so it is part of the planned identity).
// The machine spec is deliberately excluded — it prices decisions but,
// with UseCostModel off, does not alter the rewrite — so autotune can
// key candidates by program shape and spec separately.
func (o Options) Fingerprint() string {
	b := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	return fmt.Sprintf("sched=%s unroll=%d bidi=%d rolled=%d cost=%d fuse=%d friendly=%d remat=%d splitar=%d concat=%d bucket=%d ksplit=%d",
		o.Scheduler, b(o.Unroll), b(o.Bidirectional), b(o.Rolled), b(o.UseCostModel),
		b(o.FuseAddIntoEinsum), b(o.OverlapFriendlyFusion), b(o.RematerializeGathers),
		b(o.SplitAllReduce), b(o.ConcatToPadMax), o.GradBucketBytes, o.KernelSplitK)
}

// EnumerateOptions returns the distinct pipeline configurations worth
// searching for programs on a ring of ringSize devices — the candidate
// space of the autotuner. Knob combinations that cannot change the
// emitted program are pruned:
//
//   - Bidirectional on an odd ring falls back to unidirectional, so only
//     even rings enumerate it;
//   - Rolled ignores Unroll, Bidirectional and the schedulers (start/done
//     pairs cannot straddle the loop back-edge), so exactly one rolled
//     candidate is emitted;
//   - OverlapFriendlyFusion only matters once FuseAddIntoEinsum is on;
//   - RematerializeGathers is a no-op unless c (optional) contains a
//     multi-consumer AllGather;
//   - SplitAllReduce and GradBucketBytes only act on ring AllReduces, so
//     they are enumerated only when c contains one (the training step's
//     DDP gradient reductions being the motivating case), and never
//     together in one candidate: bucketing consumes the gradient
//     AllReduces first, leaving the split pass nothing to do;
//   - KernelSplitK factors are enumerated only when c has a skinny
//     einsum site (few decomposed output rows against a large
//     contraction) — the only shape the kernel engine's split-K gate
//     accepts, so elsewhere every factor executes identically.
//
// Every candidate has UseCostModel off: the caller's search *replaces*
// the per-site analytic gate with a whole-program decision. The blocking
// baseline (do not call Apply at all) is not representable as an Options
// value and must be added by the caller.
func EnumerateOptions(spec machine.Spec, ringSize int, c *hlo.Computation) []Options {
	base := Options{Spec: spec}

	rolled := base
	rolled.Rolled = true
	out := []Options{rolled}

	bidis := []bool{false}
	if ringSize%2 == 0 && ringSize > 1 {
		bidis = append(bidis, true)
	}
	remats := []bool{false}
	if c == nil || hasMultiConsumerGather(c) {
		remats = append(remats, true)
	}
	type fusion struct{ fuse, friendly bool }
	fusions := []fusion{{false, false}, {true, false}, {true, true}}

	// (splitar, bucket) pairs: the plain program, the §2.1 identity
	// split, and two gradient-bucket sizes bracketing the
	// start-early/amortize-latency tradeoff.
	type reduceKnob struct {
		split  bool
		bucket int64
	}
	reduces := []reduceKnob{{false, 0}}
	if c != nil && hasRingAllReduce(c) {
		reduces = append(reduces, reduceKnob{true, 0},
			reduceKnob{false, 8 << 10}, reduceKnob{false, 512 << 10})
	}
	splitKs := []int{0}
	if c != nil && hasSkinnySite(c, ringSize) {
		splitKs = append(splitKs, 2, 4)
	}

	for _, sched := range []SchedulerKind{SchedulerBottomUp, SchedulerTopDown, SchedulerNone} {
		for _, unroll := range []bool{false, true} {
			for _, bidi := range bidis {
				for _, fu := range fusions {
					for _, remat := range remats {
						for _, red := range reduces {
							for _, ks := range splitKs {
								o := base
								o.Scheduler = sched
								o.Unroll = unroll
								o.Bidirectional = bidi
								o.FuseAddIntoEinsum = fu.fuse
								o.OverlapFriendlyFusion = fu.friendly
								o.RematerializeGathers = remat
								o.SplitAllReduce = red.split
								o.GradBucketBytes = red.bucket
								o.KernelSplitK = ks
								out = append(out, o)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// hasRingAllReduce reports whether any AllReduce's groups form a ring
// the bucketing/split passes could lower.
func hasRingAllReduce(c *hlo.Computation) bool {
	for _, in := range c.Instructions() {
		if in.Op != hlo.OpAllReduce {
			continue
		}
		if _, ok := RingFromGroups(in.Groups); ok {
			return true
		}
	}
	return false
}

// hasMultiConsumerGather reports whether any AllGather feeds more than
// one consumer — the only shape RematerializeGathers rewrites.
func hasMultiConsumerGather(c *hlo.Computation) bool {
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpAllGather && len(in.Users()) > 1 {
			return true
		}
	}
	return false
}

// Skinny-site thresholds, mirroring the kernel engine's split-K gate:
// a site is worth a split-K candidate when its decomposed partials have
// fewer output rows than the engine splits rows-wise and a contraction
// long enough to cut into worthwhile ranges.
const (
	skinnySiteMaxRows = 64
	skinnySiteMinK    = 256
)

// hasSkinnySite reports whether any einsum's output is row-starved
// relative to its contraction once decomposed over the ring — the
// shape where split-K factors can change execution at all. Deliberately
// conservative: the miniature programs used by golden and serving tests
// have tiny contractions and never enumerate the factor.
func hasSkinnySite(c *hlo.Computation, ringSize int) bool {
	for _, in := range c.Instructions() {
		if in.Op != hlo.OpEinsum || len(in.Operands) != 2 {
			continue
		}
		spec, err := tensor.ParseEinsum(in.EinsumSpec)
		if err != nil || len(spec.Inputs) != 2 {
			continue
		}
		lhs, out := spec.Inputs[0], spec.Output
		rows, k := 1, 1
		for i := 0; i < len(out); i++ {
			if strings.IndexByte(lhs, out[i]) >= 0 {
				rows *= in.Shape[i]
			}
		}
		for i := 0; i < len(lhs); i++ {
			if strings.IndexByte(out, lhs[i]) < 0 {
				k *= in.Operands[0].Shape[i]
			}
		}
		if ringSize > 1 {
			// The decomposed loop computes one ring-sized shard of the
			// output rows per partial einsum.
			rows = (rows + ringSize - 1) / ringSize
		}
		if rows < skinnySiteMaxRows && k >= skinnySiteMinK {
			return true
		}
	}
	return false
}
