package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// fixture builds a registry with one metric of each kind at known
// values, so exporter output is fully determined.
func fixture() *Registry {
	r := NewRegistry()
	r.Counter("overlap_demo_runs_total", "Demo runs.").Add(3)
	r.Gauge("overlap_demo_last_step_seconds", "Demo step time.").Set(0.25)
	h := r.Histogram("overlap_demo_span_seconds", "Demo spans.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.5)
	return r
}

// TestPrometheusGolden pins the Prometheus text rendering byte for
// byte: exporter drift fails here before it breaks scrapes.
func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := fixture().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP overlap_demo_last_step_seconds Demo step time.
# TYPE overlap_demo_last_step_seconds gauge
overlap_demo_last_step_seconds 0.25
# HELP overlap_demo_runs_total Demo runs.
# TYPE overlap_demo_runs_total counter
overlap_demo_runs_total 3
# HELP overlap_demo_span_seconds Demo spans.
# TYPE overlap_demo_span_seconds histogram
overlap_demo_span_seconds_bucket{le="0.001"} 1
overlap_demo_span_seconds_bucket{le="0.01"} 2
overlap_demo_span_seconds_bucket{le="+Inf"} 3
overlap_demo_span_seconds_sum 0.5055
overlap_demo_span_seconds_count 3
`
	if b.String() != want {
		t.Fatalf("prometheus rendering drifted:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestJSONGolden pins the metrics-JSON schema byte for byte.
func TestJSONGolden(t *testing.T) {
	data, err := fixture().JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{
 "metrics": [
  {
   "name": "overlap_demo_last_step_seconds",
   "type": "gauge",
   "help": "Demo step time.",
   "value": 0.25
  },
  {
   "name": "overlap_demo_runs_total",
   "type": "counter",
   "help": "Demo runs.",
   "value": 3
  },
  {
   "name": "overlap_demo_span_seconds",
   "type": "histogram",
   "help": "Demo spans.",
   "value": 0,
   "buckets": [
    {
     "le": "0.001",
     "count": 1
    },
    {
     "le": "0.01",
     "count": 2
    },
    {
     "le": "+Inf",
     "count": 3
    }
   ],
   "sum": 0.5055,
   "count": 3
  }
 ]
}`
	if string(data) != want {
		t.Fatalf("metrics JSON schema drifted:\n--- got ---\n%s\n--- want ---\n%s", data, want)
	}
}

// TestLintAcceptsExporterOutput closes the loop: whatever
// WritePrometheus emits must pass the in-tree lint CI runs.
func TestLintAcceptsExporterOutput(t *testing.T) {
	var b strings.Builder
	if err := fixture().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	n, err := LintPrometheus([]byte(b.String()))
	if err != nil {
		t.Fatalf("lint rejected exporter output: %v", err)
	}
	if n != 7 { // gauge + counter + 3 buckets + sum + count
		t.Fatalf("lint counted %d samples, want 7", n)
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad name":         "# TYPE 9bad counter\n9bad 1\n",
		"bad type":         "# TYPE x flavor\nx 1\n",
		"bad value":        "# TYPE x counter\nx one\n",
		"untyped sample":   "x 1\n",
		"unquoted label":   "# TYPE x counter\nx{a=1} 1\n",
		"missing bucket":   "# TYPE x histogram\nx_sum 1\nx_count 1\n",
		"duplicate type":   "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"malformed sample": "# TYPE x counter\nx\n",
	}
	for name, data := range cases {
		if _, err := LintPrometheus([]byte(data)); err == nil {
			t.Errorf("%s: lint accepted %q", name, data)
		}
	}
}

// TestServeMetrics scrapes a live /metrics endpoint end to end.
func TestServeMetrics(t *testing.T) {
	r := fixture()
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LintPrometheus(body); err != nil {
		t.Fatalf("scrape did not lint: %v", err)
	}
	if !strings.Contains(string(body), "overlap_demo_runs_total 3") {
		t.Fatalf("scrape missing counter sample:\n%s", body)
	}
}
