package runtime_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"time"

	"overlap/internal/hlo"
	"overlap/internal/runtime"
	"overlap/internal/tensor"
)

// TestParseFaults checks the CLI fault grammar round-trips through
// Fault.String and rejects malformed specs.
func TestParseFaults(t *testing.T) {
	cases := []struct {
		spec string
		want runtime.Fault
	}{
		{"crash:dev:2", runtime.Fault{Kind: runtime.FaultCrash, Device: 2}},
		{"crash:dev:1:40", runtime.Fault{Kind: runtime.FaultCrash, Device: 1, K: 40}},
		{"drop:link:0-1", runtime.Fault{Kind: runtime.FaultDrop, Src: 0, Dst: 1}},
		{"drop:link:3-0:2", runtime.Fault{Kind: runtime.FaultDrop, Src: 3, Dst: 0, K: 2}},
		{"dup:link:1-2:1", runtime.Fault{Kind: runtime.FaultDuplicate, Src: 1, Dst: 2, K: 1}},
		{"delay:link:0-1:50ms", runtime.Fault{Kind: runtime.FaultDelay, Src: 0, Dst: 1, K: -1, Delay: 50 * time.Millisecond}},
		{"delay:link:0-1:50ms:10ms", runtime.Fault{Kind: runtime.FaultDelay, Src: 0, Dst: 1, K: -1, Delay: 50 * time.Millisecond, Jitter: 10 * time.Millisecond}},
	}
	for _, c := range cases {
		plan, err := runtime.ParseFaults(c.spec)
		if err != nil {
			t.Fatalf("ParseFaults(%q): %v", c.spec, err)
		}
		if len(plan.Faults) != 1 || plan.Faults[0] != c.want {
			t.Fatalf("ParseFaults(%q) = %+v, want %+v", c.spec, plan.Faults, c.want)
		}
		// Round-trip: the rendered fault must parse back to itself.
		again, err := runtime.ParseFaults(plan.Faults[0].String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", plan.Faults[0], err)
		}
		if again.Faults[0] != c.want {
			t.Fatalf("round trip %q = %+v, want %+v", c.spec, again.Faults[0], c.want)
		}
	}

	multi, err := runtime.ParseFaults("crash:dev:0, drop:link:0-1:3")
	if err != nil || len(multi.Faults) != 2 {
		t.Fatalf("comma list parse: %v, %+v", err, multi)
	}
	if plan, err := runtime.ParseFaults(""); err != nil || plan != nil {
		t.Fatalf("empty spec: %v, %+v", err, plan)
	}

	for _, bad := range []string{
		"crash:dev", "crash:link:0-1", "crash:dev:x", "crash:dev:1:2:3",
		"drop:dev:1", "drop:link:01", "drop:link:a-b", "drop:link:0-1:x",
		"delay:link:0-1", "delay:link:0-1:nope", "delay:link:0-1:1ms:nope:extra",
		"explode:dev:1", "nonsense",
	} {
		if _, err := runtime.ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted a malformed spec", bad)
		}
	}
}

// stallProgram builds a two-device program whose structure guarantees a
// parcel is on the wire before the interesting instruction runs: device
// 0 posts 0->1, both devices then synchronize on an AllGather barrier
// (so the post has happened), an Add marks the crash point, and the
// done completes the transfer.
//
// Per-device instruction indices: 0 param, 1 start, 2 all-gather,
// 3 add, 4 done, 5 add (root).
func stallProgram() (*hlo.Computation, [][]*tensor.Tensor) {
	c := hlo.NewComputation("stall")
	a := c.Parameter(0, "a", []int{8, 8})
	start := c.CollectivePermuteStart(a, []hlo.SourceTargetPair{{Source: 0, Target: 1}})
	ag := c.AllGather(a, 0, [][]int{{0, 1}})
	c.Add(ag, ag)
	done := c.CollectivePermuteDone(start)
	c.Add(done, done)

	rng := rand.New(rand.NewSource(21))
	args := [][]*tensor.Tensor{{tensor.Rand(rng, 8, 8), tensor.Rand(rng, 8, 8)}}
	return c, args
}

// TestAbortReturnsBeforeWireDelay is the regression test for the
// fabric.serve abort bug: a link goroutine used to sleep out the full
// modeled wire time even after the run failed, so a failing run stalled
// in shutdown for up to the largest in-flight transfer. With a 10s
// injected wire occupancy and a device crash mid-run, Run must return
// the crash error in a small fraction of that.
func TestAbortReturnsBeforeWireDelay(t *testing.T) {
	c, args := stallProgram()
	opts := runtime.Options{Faults: &runtime.FaultPlan{Faults: []runtime.Fault{
		// The parcel posted by device 0 occupies the 0->1 wire for 10s.
		{Kind: runtime.FaultDelay, Src: 0, Dst: 1, K: -1, Delay: 10 * time.Second},
		// Device 1 crashes at the Add after the barrier, which the
		// barrier guarantees is after device 0's post.
		{Kind: runtime.FaultCrash, Device: 1, K: 3},
	}}}

	t0 := time.Now()
	_, err := runtime.Run(c, 2, args, opts)
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("Run succeeded, want injected crash")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("failing run took %s, should return well before the 10s wire delay", elapsed)
	}
	var re *runtime.RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a *RunError", err)
	}
	if !errors.Is(err, runtime.ErrInjectedCrash) || re.Device != 1 {
		t.Fatalf("error %v does not attribute the crash to device 1", re)
	}
}

// TestDeadlineDropAttribution pins RunContext's deadline path: a
// dropped delivery stalls the receiver forever, the context deadline
// fires, and the error is a *RunError attributing the stall to the
// receiving device in phase receive, naming the injected fault, and
// unwrapping to context.DeadlineExceeded.
func TestDeadlineDropAttribution(t *testing.T) {
	c, args := stallProgram()
	drop := runtime.Fault{Kind: runtime.FaultDrop, Src: 0, Dst: 1, K: 0}
	opts := runtime.Options{Faults: &runtime.FaultPlan{Faults: []runtime.Fault{drop}}}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := runtime.RunContext(ctx, c, 2, args, opts)
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("RunContext succeeded, want deadline abort")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline abort took %s to unwind", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not unwrap to context.DeadlineExceeded", err)
	}
	var re *runtime.RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a *RunError", err)
	}
	if re.Device != 1 || re.Phase != runtime.PhaseReceive {
		t.Fatalf("error %v, want device 1 phase receive", re)
	}
	if re.Fault != drop.String() {
		t.Fatalf("error fault %q, want %q", re.Fault, drop)
	}
	if re.Elapsed < 300*time.Millisecond {
		t.Fatalf("error elapsed %s is before the deadline", re.Elapsed)
	}
}

// TestDuplicateDeliveryDetected pins the fabric's at-most-once
// enforcement: an injected duplicate delivery is detected at the
// mailbox and fails the run with a structured error at the receiving
// device, rather than wedging the link goroutine on a full channel.
func TestDuplicateDeliveryDetected(t *testing.T) {
	c, args := stallProgram()
	dup := runtime.Fault{Kind: runtime.FaultDuplicate, Src: 0, Dst: 1, K: 0}
	opts := runtime.Options{Faults: &runtime.FaultPlan{Faults: []runtime.Fault{dup}}}

	_, err := runtime.Run(c, 2, args, opts)
	if err == nil {
		t.Fatal("Run succeeded, want duplicate-delivery error")
	}
	if !errors.Is(err, runtime.ErrDuplicateDelivery) {
		t.Fatalf("error %v does not unwrap to ErrDuplicateDelivery", err)
	}
	var re *runtime.RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a *RunError", err)
	}
	if re.Device != 1 || re.Phase != runtime.PhaseReceive || re.Fault != dup.String() {
		t.Fatalf("error %v, want device 1 phase receive fault %q", re, dup)
	}
}

// TestFaultPlanValidation checks that plans addressing devices or edges
// outside the run are rejected before any goroutine starts.
func TestFaultPlanValidation(t *testing.T) {
	c, args := stallProgram()
	bad := []runtime.FaultPlan{
		{Faults: []runtime.Fault{{Kind: runtime.FaultCrash, Device: 5}}},
		{Faults: []runtime.Fault{{Kind: runtime.FaultCrash, Device: 0, K: -1}}},
		{Faults: []runtime.Fault{{Kind: runtime.FaultDrop, Src: 0, Dst: 9}}},
		{Faults: []runtime.Fault{{Kind: runtime.FaultDrop, Src: -1, Dst: 1}}},
		{Faults: []runtime.Fault{{Kind: runtime.FaultDelay, Src: 0, Dst: 1, K: -1}}}, // no duration
		{Faults: []runtime.Fault{{Kind: "explode", Device: 0}}},
	}
	for _, plan := range bad {
		plan := plan
		if _, err := runtime.Run(c, 2, args, runtime.Options{Faults: &plan}); err == nil {
			t.Errorf("plan %s accepted, want validation error", &plan)
		}
	}
}

// TestDelayFaultPreservesResults checks that a small injected delay
// (with jitter) only slows the run down: the outputs stay bit-identical
// to an undelayed execution.
func TestDelayFaultPreservesResults(t *testing.T) {
	c, args := stallProgram()
	clean, err := runtime.Run(c, 2, args, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := runtime.Options{Faults: &runtime.FaultPlan{Seed: 3, Faults: []runtime.Fault{
		{Kind: runtime.FaultDelay, Src: 0, Dst: 1, K: -1, Delay: 10 * time.Millisecond, Jitter: 5 * time.Millisecond},
	}}}
	delayed, err := runtime.Run(c, 2, args, opts)
	if err != nil {
		t.Fatal(err)
	}
	for d := range clean.Values {
		if !delayed.Values[d].Equal(clean.Values[d]) {
			t.Fatalf("device %d: delay fault changed the answer", d)
		}
	}
}

// TestRunErrorMarshalJSON pins the machine-readable failure shape the
// serving daemon returns on a 5xx: device, instruction, phase, and the
// injected fault must each be individually addressable fields.
func TestRunErrorMarshalJSON(t *testing.T) {
	re := &runtime.RunError{
		Device:  2,
		Instr:   "%collective-permute-start.7",
		Phase:   runtime.PhaseReceive,
		Elapsed: 1500 * time.Microsecond,
		Fault:   "drop:link:0-1:0",
		Err:     context.DeadlineExceeded,
	}
	data, err := json.Marshal(re)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("RunError JSON does not parse: %v\n%s", err, data)
	}
	if got["device"] != float64(2) || got["phase"] != "receive" ||
		got["fault"] != "drop:link:0-1:0" || got["instruction"] != "%collective-permute-start.7" {
		t.Fatalf("RunError JSON lost attribution fields: %s", data)
	}
	if got["elapsed_ms"] != 1.5 {
		t.Fatalf("elapsed_ms = %v, want 1.5", got["elapsed_ms"])
	}
	if got["cause"] != context.DeadlineExceeded.Error() {
		t.Fatalf("cause = %v", got["cause"])
	}
}
