package overlap

// One benchmark per table and figure of the paper's evaluation section
// (see DESIGN.md's per-experiment index), plus micro-benchmarks of the
// pipeline stages. The figure benchmarks measure the full regeneration
// of the corresponding result — model graph construction, overlap
// pipeline, timing simulation across all configurations — and print the
// headline metric they reproduce.

import (
	"math/rand"
	"testing"

	"overlap/internal/core"
	"overlap/internal/experiments"
	"overlap/internal/machine"
	"overlap/internal/models"
	"overlap/internal/obs"
	"overlap/internal/runtime"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	spec := TPUv4()
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment(id, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Models regenerates Table 1.
func BenchmarkTable1Models(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2Models regenerates Table 2.
func BenchmarkTable2Models(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig1Breakdown regenerates the Figure 1 step-time breakdown.
func BenchmarkFig1Breakdown(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig12Overall regenerates Figure 12 (overall performance of
// the six applications) and reports the headline metrics.
func BenchmarkFig12Overall(b *testing.B) {
	spec := TPUv4()
	var bestUtil, avgSpeedup float64
	for i := 0; i < b.N; i++ {
		_, comps, err := experiments.Fig12(spec)
		if err != nil {
			b.Fatal(err)
		}
		bestUtil, avgSpeedup = 0, 0
		for _, c := range comps {
			if u := c.Overlapped.Utilization; u > bestUtil {
				bestUtil = u
			}
			avgSpeedup += c.Speedup() / float64(len(comps))
		}
	}
	b.ReportMetric(100*bestUtil, "peak-util-%")
	b.ReportMetric(avgSpeedup, "avg-speedup-x")
}

// BenchmarkFig13WeakScaling regenerates Figure 13.
func BenchmarkFig13WeakScaling(b *testing.B) {
	spec := TPUv4()
	var minS, maxS float64
	for i := 0; i < b.N; i++ {
		_, comps, err := experiments.Fig13(spec)
		if err != nil {
			b.Fatal(err)
		}
		minS, maxS = 10, 0
		for _, c := range comps {
			if s := c.Speedup(); s < minS {
				minS = s
			}
			if s := c.Speedup(); s > maxS {
				maxS = s
			}
		}
	}
	b.ReportMetric(minS, "min-speedup-x")
	b.ReportMetric(maxS, "max-speedup-x")
}

// BenchmarkFig14Unrolling regenerates the loop-unrolling ablation.
func BenchmarkFig14Unrolling(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15Bidirectional regenerates the bidirectional-transfer
// ablation.
func BenchmarkFig15Bidirectional(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16Schedulers regenerates the scheduler comparison.
func BenchmarkFig16Schedulers(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkEnergyReduction regenerates the §6.4 energy table.
func BenchmarkEnergyReduction(b *testing.B) { benchExperiment(b, "energy") }

// BenchmarkInferenceLatency regenerates the §7.1 inference case study
// and reports the latency improvement.
func BenchmarkInferenceLatency(b *testing.B) {
	spec := TPUv4()
	var improvement float64
	for i := 0; i < b.N; i++ {
		_, comp, err := experiments.Inference(spec)
		if err != nil {
			b.Fatal(err)
		}
		improvement = comp.Speedup()
	}
	b.ReportMetric(improvement, "latency-improvement-x")
}

// ---- pipeline-stage micro-benchmarks ----

func gpt32bLayer(b *testing.B) *Computation {
	b.Helper()
	c, err := models.BuildLayerStep(models.Table2()[0])
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkDecomposePipeline measures the full compiler pipeline
// (pattern finding, decomposition, fusion, async conversion, bottom-up
// scheduling) on one GPT_32B layer graph.
func BenchmarkDecomposePipeline(b *testing.B) {
	spec := machine.TPUv4()
	for i := 0; i < b.N; i++ {
		c := gpt32bLayer(b)
		if _, err := core.Apply(c, core.DefaultOptions(spec)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateLayer measures the discrete-event timing simulation
// of one overlapped GPT_32B layer across its 64 devices.
func BenchmarkSimulateLayer(b *testing.B) {
	spec := machine.TPUv4()
	c := gpt32bLayer(b)
	if _, err := core.Apply(c, core.DefaultOptions(spec)); err != nil {
		b.Fatal(err)
	}
	n := models.Table2()[0].Mesh().NumDevices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(c, n, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleBottomUp isolates the Algorithm 2 scheduler.
func BenchmarkScheduleBottomUp(b *testing.B) {
	spec := machine.TPUv4()
	prep := func() *Computation {
		c := gpt32bLayer(b)
		opts := core.DefaultOptions(spec)
		opts.Scheduler = core.SchedulerNone
		if _, err := core.Apply(c, opts); err != nil {
			b.Fatal(err)
		}
		core.MakeAsync(c)
		return c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := prep()
		b.StartTimer()
		if err := core.ScheduleBottomUp(c, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpretDecomposed measures the functional interpreter on a
// small decomposed site across 4 devices — the correctness half of the
// system.
func BenchmarkInterpretDecomposed(b *testing.B) {
	const n = 4
	c := NewComputation("interp")
	groups := NewRing(n).AxisGroups(0)
	a := c.Parameter(0, "a", []int{8, 16})
	w := c.Parameter(1, "w", []int{4, 24})
	full := c.AllGather(w, 0, groups)
	c.Einsum("bf,fh->bh", a, full)
	opts := core.DefaultOptions(machine.TPUv4())
	opts.UseCostModel = false
	if _, err := core.Apply(c, opts); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	args := [][]*tensor.Tensor{
		{tensor.Rand(rng, 8, 16)},
		{tensor.Rand(rng, 4, 24), tensor.Rand(rng, 4, 24), tensor.Rand(rng, 4, 24), tensor.Rand(rng, 4, 24)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Interpret(c, n, args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeRolledVsDecomposed measures — in real wall-clock on
// goroutine devices, not in the discrete-event simulator — one
// AllGather/einsum site executed as a rolled blocking loop versus the
// decomposed, bottom-up-scheduled program. The decomposed variant's
// asynchronous permutes ride the channel links while partial einsums
// compute, so its step-ms metric comes in well under the rolled one on
// ≥ 4 devices (the runtime package's wall-clock test asserts the gap).
func BenchmarkRuntimeRolledVsDecomposed(b *testing.B) {
	const n = 4
	const m, k, nn = 24, 64, 64
	groups := NewRing(n).AxisGroups(0)
	build := func() *Computation {
		c := NewComputation("bench")
		a := c.Parameter(0, "a", []int{m, k})
		w := c.Parameter(1, "w", []int{k, nn})
		full := c.AllGather(a, 0, groups)
		c.Einsum("mk,kn->mn", full, w)
		return c
	}
	rng := rand.New(rand.NewSource(17))
	shards := make([]*tensor.Tensor, n)
	for d := range shards {
		shards[d] = tensor.Rand(rng, m, k)
	}
	args := [][]*tensor.Tensor{shards, {tensor.Rand(rng, k, nn)}}
	ropts := runtime.Options{Spec: machine.TPUv4(), TimeScale: 30000}

	bench := func(b *testing.B, opts core.Options, ropts runtime.Options) {
		c := build()
		if _, err := core.Apply(c, opts); err != nil {
			b.Fatal(err)
		}
		var step float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := runtime.Run(c, n, args, ropts)
			if err != nil {
				b.Fatal(err)
			}
			step = res.Breakdown.StepTime
		}
		b.ReportMetric(step*1e3, "step-ms")
	}

	b.Run("rolled", func(b *testing.B) {
		bench(b, core.Options{Spec: machine.TPUv4(), Rolled: true, UseCostModel: false, Scheduler: core.SchedulerNone}, ropts)
	})
	b.Run("decomposed", func(b *testing.B) {
		opts := core.DefaultOptions(machine.TPUv4())
		opts.UseCostModel = false
		bench(b, opts, ropts)
	})
	// The decomposed case again with telemetry recording disabled: the
	// step-ms gap between this and "decomposed" bounds the metrics
	// registry's overhead on the runtime hot path (budget: < 5%).
	b.Run("decomposed-noinstr", func(b *testing.B) {
		obs.Default().SetEnabled(false)
		defer obs.Default().SetEnabled(true)
		opts := core.DefaultOptions(machine.TPUv4())
		opts.UseCostModel = false
		bench(b, opts, ropts)
	})
	// The decomposed case with per-instruction trace recording on — the
	// events every RunTrace artifact is built from. The step-ms gap
	// between this and "decomposed" bounds trace recording's overhead on
	// the runtime hot path (budget: < 5%, same bar as -noinstr).
	b.Run("decomposed-traced", func(b *testing.B) {
		opts := core.DefaultOptions(machine.TPUv4())
		opts.UseCostModel = false
		traced := ropts
		traced.Trace = true
		bench(b, opts, traced)
	})
}

// BenchmarkMetricsHotPath measures the per-update cost of the
// telemetry handles the executors bump from their hot paths.
func BenchmarkMetricsHotPath(b *testing.B) {
	r := obs.NewRegistry()
	c := r.Counter("bench_total", "")
	g := r.Gauge("bench_gauge", "")
	h := r.Histogram("bench_seconds", "", obs.TimeBuckets())
	b.Run("counter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Set(float64(i))
		}
	})
	b.Run("histogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Observe(1e-4)
		}
	})
}

// ---- extension benchmarks ----

// BenchmarkMemoryExtension regenerates the peak-memory ablation.
func BenchmarkMemoryExtension(b *testing.B) { benchExperiment(b, "memory") }

// BenchmarkRolledExtension regenerates the rolled-vs-expanded ablation.
func BenchmarkRolledExtension(b *testing.B) { benchExperiment(b, "rolled") }

// BenchmarkInferenceSweep regenerates the §7.1 future-work batch sweep.
func BenchmarkInferenceSweep(b *testing.B) { benchExperiment(b, "inference-sweep") }

// BenchmarkPipelineComposition regenerates the §7.3 composition study.
func BenchmarkPipelineComposition(b *testing.B) { benchExperiment(b, "pipeline") }

// BenchmarkGPUGeneralization regenerates the §7.2 GPU-cluster study.
func BenchmarkGPUGeneralization(b *testing.B) { benchExperiment(b, "gpu") }
