package runtime_test

import (
	"math/rand"
	"strings"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/runtime"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// TestDeviceGoroutinePanicBecomesError pins the engine's panic
// containment: a kernel panic inside one device goroutine (here induced
// by corrupting an einsum spec after the program is built, which the
// preflight validator does not parse) must surface as an error from Run
// — naming the device and the panic — rather than crash the process or
// deadlock the peer devices blocked on collective rendezvous.
func TestDeviceGoroutinePanicBecomesError(t *testing.T) {
	const n = 4
	rng := rand.New(rand.NewSource(42))
	groups := topology.NewRing(n).AxisGroups(0)

	c := hlo.NewComputation("panic")
	a := c.Parameter(0, "a", []int{4, 6})
	b := c.Parameter(1, "b", []int{6, 5})
	full := c.AllGather(a, 0, groups)
	ein := c.Einsum("mk,kn->mn", full, b)

	// Corrupt the spec after building: validate() checks shapes and
	// operand wiring, not spec text, so the failure happens mid-run
	// inside the device goroutine's kernel call.
	ein.EinsumSpec = "not a spec"

	args := [][]*tensor.Tensor{
		make([]*tensor.Tensor, n),
		make([]*tensor.Tensor, n),
	}
	for d := 0; d < n; d++ {
		args[0][d] = tensor.Rand(rng, 4, 6)
		args[1][d] = tensor.Rand(rng, 6, 5)
	}

	res, err := runtime.Run(c, n, args, runtime.Options{})
	if err == nil {
		t.Fatalf("Run succeeded (%v), want panic surfaced as error", res)
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("Run error %q does not mention the panic", err)
	}
	if !strings.Contains(err.Error(), "device") {
		t.Fatalf("Run error %q does not name the failing device", err)
	}
}
