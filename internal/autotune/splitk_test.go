package autotune_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	"overlap/internal/autotune"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// skinnySite builds a decomposition site whose partial einsums are
// skinny — 4 output rows per shard against a 512-long contraction —
// so core.EnumerateOptions enumerates kernel split-K factors and the
// runtime's split-K gate actually fires during stage 2.
func skinnySite(n int, seed int64) (*hlo.Computation, [][]*tensor.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	groups := topology.NewRing(n).AxisGroups(0)
	const m, k, nn = 4, 512, 32
	c := hlo.NewComputation("skinny-site")
	a := c.Parameter(0, "a", []int{m, k})
	b := c.Parameter(1, "b", []int{k, nn})
	full := c.AllGather(a, 0, groups)
	c.Einsum("mk,kn->mn", full, b)
	perDevice := func(shape []int) []*tensor.Tensor {
		out := make([]*tensor.Tensor, n)
		for d := range out {
			out[d] = tensor.Rand(rng, shape...)
		}
		return out
	}
	return c, [][]*tensor.Tensor{perDevice([]int{m, k}), perDevice([]int{k, nn})}
}

// TestKeySensitiveToKernelSplitK pins the cache-identity contract: a
// SetKernelSplitK change must change every plan/decision cache key, or
// a factor flip could serve results computed under different bytes.
func TestKeySensitiveToKernelSplitK(t *testing.T) {
	defer tensor.SetKernelSplitK(0)
	c, _ := skinnySite(4, 40)
	spec := machine.TPUv4()
	tensor.SetKernelSplitK(0)
	k0 := autotune.Key(c, spec, 4)
	tensor.SetKernelSplitK(4)
	k4 := autotune.Key(c, spec, 4)
	if k0 == k4 {
		t.Fatalf("Key ignores the ambient split-K factor: %s", k0)
	}
}

// TestTuneSearchesSplitK runs the search on a skinny program and
// verifies the factor is a real dimension of it: split-K candidates
// are enumerated as distinct (not deduplicated away despite identical
// program text), at least one executes — bitwise cross-checked against
// the interpreter under its factor — and ApplyBest installs the
// winning factor process-wide.
func TestTuneSearchesSplitK(t *testing.T) {
	defer tensor.SetKernelSplitK(0)
	const n = 4
	c, args := skinnySite(n, 41)
	opts := autotune.Options{
		Spec:      machine.TPUv4(),
		TopK:      4,
		TimeScale: 50,
		CachePath: filepath.Join(t.TempDir(), "autotune.json"),
	}
	res, err := autotune.Tune(c, n, args, opts)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*autotune.Candidate{}
	for i := range res.Candidates {
		byName[res.Candidates[i].Name] = &res.Candidates[i]
	}
	enumerated, executed := 0, 0
	for _, cand := range res.Candidates {
		if cand.Baseline || cand.Opts.KernelSplitK == 0 {
			continue
		}
		enumerated++
		if cand.DuplicateOf != "" {
			// Dedup within one factor is fine (same text, same bytes);
			// dedup across factors would erase the search dimension.
			canon := byName[cand.DuplicateOf]
			if canon == nil || canon.Opts.KernelSplitK != cand.Opts.KernelSplitK {
				t.Fatalf("split-K candidate %s was deduplicated into %s despite a distinct factor",
					cand.Name, cand.DuplicateOf)
			}
			continue
		}
		if cand.Executed {
			executed++
			if !cand.Checked {
				t.Fatalf("split-K candidate %s executed without the interpreter cross-check", cand.Name)
			}
		}
	}
	if enumerated == 0 {
		t.Fatal("no split-K candidates enumerated for a skinny program")
	}
	if executed == 0 {
		t.Fatal("no split-K candidate reached stage 2 despite tying the best predicted time")
	}

	clone := c.Clone()
	if _, err := res.ApplyBest(clone); err != nil {
		t.Fatal(err)
	}
	want := res.Best.KernelSplitK
	if res.BestIsBaseline {
		want = 0
	}
	if got := tensor.KernelSplitK(); got != want && !(want == 1 && got == 0) {
		t.Fatalf("ApplyBest installed factor %d, winner says %d", got, want)
	}
}
