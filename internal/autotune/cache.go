package autotune

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/obs"
	"overlap/internal/tensor"
)

// cacheVersion invalidates every stored decision when the entry layout
// or the meaning of a knob changes. Version 2: keys gained the kernel
// worker count, which changes measured runtimes. Version 3: keys gained
// the telemetry-instrumentation toggle (recording overhead shifts
// measured spans) and entries encode knobs via core.Knobs. Version 4:
// the knob space gained GradBucketBytes (gradient bucketing), so
// decisions made over the smaller space are stale. Version 5: the knob
// space gained KernelSplitK (the kernel engine's planned split-K
// factor) and keys gained the ambient factor, so older decisions
// neither searched the factor nor recorded the environment it ran in.
const cacheVersion = 5

// DefaultCachePath returns where decisions persist when Options does
// not say otherwise: <user cache dir>/overlap/autotune.json, falling
// back to the temp dir when the platform reports no cache dir.
func DefaultCachePath() string {
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	return filepath.Join(base, "overlap", "autotune.json")
}

func cachePath(opts Options) string {
	if opts.CachePath != "" {
		return opts.CachePath
	}
	return DefaultCachePath()
}

// Key is the decision identity a (program, machine, environment) tuple
// tunes and caches under: program shape, machine spec, ring size, the
// einsum-kernel worker count (intra-op parallelism shifts measured
// compute spans, which shifts which overlap plan wins), the ambient
// kernel split-K factor (it changes the bytes any plan cached under
// this key will produce when executed outside a tune), and whether
// telemetry instrumentation is recording (its bounded overhead still
// moves measured spans). Anything else (TopK, repeats, wire scale) only
// affects how hard the search looks, not what it is searching for.
// Every plan- or decision-cache layer must key with this one function
// so a SetKernelWorkers, SetKernelSplitK or obs.SetEnabled change can
// never serve a stale decision.
func Key(c *hlo.Computation, spec machine.Spec, numDevices int) string {
	specFP := fmt.Sprintf("%x", sha256.Sum256([]byte(spec.Fingerprint())))[:16]
	instr := 0
	if obs.Default().Enabled() {
		instr = 1
	}
	return fmt.Sprintf("%s|%s|n=%d|kw=%d|ks=%d|obs=%d",
		ProgramFingerprint(c), specFP, numDevices, tensor.KernelWorkers(), tensor.KernelSplitK(), instr)
}

func cacheKey(c *hlo.Computation, spec machine.Spec, numDevices int) string {
	return Key(c, spec, numDevices)
}

// cacheEntry is one persisted decision.
type cacheEntry struct {
	BestName       string              `json:"best_name"`
	Baseline       bool                `json:"baseline,omitempty"`
	Options        core.Knobs          `json:"options"`
	PredictedSec   float64             `json:"predicted_sec"`
	MeasuredSec    float64             `json:"measured_sec"`
	Calibration    machine.Calibration `json:"calibration"`
	Residual       float64             `json:"residual"`
	Created        string              `json:"created"`
	Devices        int                 `json:"devices"`
	SpecName       string              `json:"spec_name"`
	SearchedUnique int                 `json:"searched_unique"`
}

// fill reconstitutes a warm-cache Result from a stored entry: the
// decision and calibration come back, but no candidates, because no
// search ran.
func (e cacheEntry) fill(res *Result, spec machine.Spec) {
	res.CacheHit = true
	res.BestName = e.BestName
	res.BestIsBaseline = e.Baseline
	res.Best = e.Options.Options(spec)
	res.PredictedWall = e.PredictedSec
	res.MeasuredWall = e.MeasuredSec
	res.Residual = e.Residual
	if e.Calibration != (machine.Calibration{}) {
		res.Calibration = e.Calibration
		res.CalibratedSpec = e.Calibration.Apply(spec)
	}
}

type cacheFile struct {
	Version int                   `json:"version"`
	Entries map[string]cacheEntry `json:"entries"`
}

// loadCache reads the cache file; a missing, unreadable, corrupt, or
// version-mismatched file degrades to an empty cache — tuning must
// never fail because a cache rotted. A file that exists but does not
// parse (e.g. truncated by a crash mid-write before writes were atomic)
// is counted as corrupt so the poisoning is visible in telemetry.
func loadCache(path string) cacheFile {
	empty := cacheFile{Version: cacheVersion, Entries: map[string]cacheEntry{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return empty
	}
	var f cacheFile
	if json.Unmarshal(data, &f) != nil || f.Entries == nil {
		atCacheCorrupt.Inc()
		return empty
	}
	if f.Version != cacheVersion {
		return empty
	}
	return f
}

func cacheLookup(path, key string) (cacheEntry, bool) {
	e, ok := loadCache(path).Entries[key]
	return e, ok
}

// cacheStore merges the decision into the cache file, creating the
// directory as needed. Concurrent tuners may interleave read-modify-
// write; the loser's other entries survive because the file is re-read
// immediately before writing.
func cacheStore(path, key string, res *Result) error {
	f := loadCache(path)
	f.Entries[key] = cacheEntry{
		BestName:       res.BestName,
		Baseline:       res.BestIsBaseline,
		Options:        res.Best.Knobs(),
		PredictedSec:   res.PredictedWall,
		MeasuredSec:    res.MeasuredWall,
		Calibration:    res.Calibration,
		Residual:       res.Residual,
		Created:        time.Now().UTC().Format(time.RFC3339),
		Devices:        deviceCount(key),
		SpecName:       res.CalibratedSpec.Name,
		SearchedUnique: countUnique(res.Candidates),
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// writeFileAtomic replaces path's contents via a temp file in the same
// directory and a rename, so a crash mid-write can never leave a
// half-written JSON that poisons every later run: readers see either
// the old cache or the new one, never a torn file.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".autotune-*.tmp")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil // committed: the deferred cleanup must not remove it
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

func deviceCount(key string) int {
	var n int
	if _, err := fmt.Sscanf(key[strings.LastIndex(key, "|n=")+3:], "%d", &n); err != nil {
		return 0
	}
	return n
}

func countUnique(cands []Candidate) int {
	n := 0
	for _, c := range cands {
		if c.Err == "" && c.DuplicateOf == "" {
			n++
		}
	}
	return n
}
