package hlo

import (
	"strings"
	"testing"

	"overlap/internal/tensor"
)

func ringGroups(n int) [][]int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return [][]int{g}
}

// buildMLPLayer constructs the Fig-2-style AllGather → Einsum pattern:
// activation shard [B/N, F], weight shard [F/N, H], gathered to [F, H].
func buildMLPLayer(t *testing.T) (*Computation, *Instruction, *Instruction) {
	t.Helper()
	c := NewComputation("layer")
	act := c.Parameter(0, "act", []int{4, 8})
	w := c.Parameter(1, "w", []int{2, 16})
	gathered := c.AllGather(w, 0, ringGroups(4))
	out := c.Einsum("bf,fh->bh", act, gathered)
	return c, gathered, out
}

func TestBuilderShapeInference(t *testing.T) {
	c, gathered, out := buildMLPLayer(t)
	if gathered.Shape[0] != 8 || gathered.Shape[1] != 16 {
		t.Fatalf("all-gather shape = %v, want [8 16]", gathered.Shape)
	}
	if out.Shape[0] != 4 || out.Shape[1] != 16 {
		t.Fatalf("einsum shape = %v, want [4 16]", out.Shape)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanicsOnBadEinsum(t *testing.T) {
	c := NewComputation("bad")
	a := c.Parameter(0, "a", []int{2, 3})
	b := c.Parameter(1, "b", []int{4, 5}) // contraction size mismatch
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched einsum did not panic")
		}
	}()
	c.Einsum("ik,kj->ij", a, b)
}

func TestUsersTracking(t *testing.T) {
	c := NewComputation("users")
	a := c.Parameter(0, "a", []int{2, 2})
	b := c.Parameter(1, "b", []int{2, 2})
	sum := c.Add(a, b)
	twice := c.Add(sum, sum) // same operand used twice
	if a.NumUsers() != 1 || !a.HasUser(sum) {
		t.Fatalf("a users = %v", a.Users())
	}
	if sum.NumUsers() != 1 {
		t.Fatalf("sum should have exactly one distinct user, got %d", sum.NumUsers())
	}
	// Replace sum with a fresh value in twice; both slots must move.
	repl := c.Copy(a)
	twice.ReplaceOperand(sum, repl)
	if sum.NumUsers() != 0 {
		t.Fatalf("sum still has users after replacement: %v", sum.Users())
	}
	if repl.NumUsers() != 1 || !repl.HasUser(twice) {
		t.Fatal("replacement user edge missing")
	}
}

func TestReplaceAllUsesWithAndDCE(t *testing.T) {
	c := NewComputation("dce")
	a := c.Parameter(0, "a", []int{2, 2})
	olds := c.Add(a, a)
	dead := c.Copy(olds)
	_ = dead
	news := c.Copy(a)
	root := c.Add(news, news)
	c.ReplaceAllUsesWith(olds, news)
	_ = root
	removed := c.RemoveDeadCode()
	if removed == 0 {
		t.Fatal("expected dead instructions to be removed")
	}
	for _, in := range c.Instructions() {
		if in == olds || in == dead {
			t.Fatalf("dead instruction %s survived DCE", in.Name)
		}
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSetScheduleValidation(t *testing.T) {
	c := NewComputation("sched")
	a := c.Parameter(0, "a", []int{2})
	b := c.Copy(a)
	d := c.Copy(b)
	// A reversed schedule must be rejected.
	if err := c.SetSchedule([]*Instruction{d, b, a}); err == nil {
		t.Fatal("invalid schedule accepted")
	}
	// Equivalent valid schedule accepted.
	if err := c.SetSchedule([]*Instruction{a, b, d}); err != nil {
		t.Fatal(err)
	}
	// Missing instruction rejected.
	if err := c.SetSchedule([]*Instruction{a, b}); err == nil {
		t.Fatal("short schedule accepted")
	}
	// Duplicate instruction rejected.
	if err := c.SetSchedule([]*Instruction{a, b, b}); err == nil {
		t.Fatal("duplicate schedule accepted")
	}
}

func TestScheduleStableTopological(t *testing.T) {
	c := NewComputation("topo")
	a := c.Parameter(0, "a", []int{2})
	b := c.Copy(a)
	d := c.Copy(b)
	// Force an out-of-order list, then restore.
	c.instrs = []*Instruction{d, a, b}
	c.ScheduleStableTopological()
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	got := c.Instructions()
	if got[0] != a || got[1] != b || got[2] != d {
		t.Fatalf("stable topo order = %v", got)
	}
}

func TestStableTopoPreservesIndependentOrder(t *testing.T) {
	c := NewComputation("stable")
	a := c.Parameter(0, "a", []int{2})
	x := c.Copy(a)
	y := c.Copy(a)
	z := c.Copy(a)
	c.ScheduleStableTopological()
	got := c.Instructions()
	if got[1] != x || got[2] != y || got[3] != z {
		t.Fatal("independent instructions reordered by stable topo sort")
	}
}

func TestVerifyCatchesBadUserEdge(t *testing.T) {
	c := NewComputation("broken")
	a := c.Parameter(0, "a", []int{2})
	b := c.Copy(a)
	// Corrupt the user map directly.
	a.removeUser(b)
	if err := c.Verify(); err == nil {
		t.Fatal("verifier missed a corrupted user edge")
	}
}

func TestVerifyCollectiveGroups(t *testing.T) {
	c := NewComputation("groups")
	a := c.Parameter(0, "a", []int{2, 4})
	bad := &Instruction{
		Op: OpAllGather, Operands: []*Instruction{a},
		CollectiveAxis: 0, Groups: [][]int{{0, 1}, {1, 2}}, // device 1 twice
		Shape: []int{4, 4},
	}
	c.add(bad)
	if err := c.Verify(); err == nil || !strings.Contains(err.Error(), "two groups") {
		t.Fatalf("verifier missed overlapping groups: %v", err)
	}
}

func TestDynOffsetEval(t *testing.T) {
	// ((pid + 1) mod 4) * 8
	o := DynOffset{PIDFactor: 1, Add: 1, Mod: 4, Scale: 8}
	wants := []int{8, 16, 24, 0}
	for pid, want := range wants {
		if got := o.Eval(pid); got != want {
			t.Fatalf("Eval(%d) = %d, want %d", pid, got, want)
		}
	}
	if got := Static(5).Eval(3); got != 5 {
		t.Fatalf("Static(5).Eval = %d", got)
	}
	// Negative intermediate values must wrap into [0, Mod).
	neg := DynOffset{PIDFactor: -1, Add: 0, Mod: 4, Scale: 1}
	if got := neg.Eval(1); got != 3 {
		t.Fatalf("negative wrap Eval = %d, want 3", got)
	}
}

func TestCollectivePermutePairHelpers(t *testing.T) {
	in := &Instruction{Op: OpCollectivePermute, Pairs: []SourceTargetPair{{1, 0}, {2, 1}, {0, 2}}}
	if s, ok := in.PairSource(1); !ok || s != 2 {
		t.Fatalf("PairSource(1) = %d,%v", s, ok)
	}
	if tgt, ok := in.PairTarget(0); !ok || tgt != 2 {
		t.Fatalf("PairTarget(0) = %d,%v", tgt, ok)
	}
	if _, ok := in.PairSource(9); ok {
		t.Fatal("PairSource for absent device must report false")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	c, _, _ := buildMLPLayer(t)
	clone := c.Clone()
	if err := clone.Verify(); err != nil {
		t.Fatal(err)
	}
	if clone.NumInstructions() != c.NumInstructions() {
		t.Fatal("clone instruction count differs")
	}
	// Mutating the clone must not affect the original.
	cloneRoot := clone.Root()
	clone.ReplaceAllUsesWith(cloneRoot, clone.Instructions()[0])
	if err := c.Verify(); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
	for i, in := range c.Instructions() {
		if clone.Instructions()[i] == in {
			t.Fatal("clone shares instruction objects with original")
		}
	}
}

func TestFusionShapeInference(t *testing.T) {
	body := NewComputation("fused_add")
	p0 := body.Parameter(0, "p0", []int{2, 2})
	p1 := body.Parameter(1, "p1", []int{2, 2})
	body.Add(p0, p1)

	c := NewComputation("main")
	a := c.Parameter(0, "a", []int{2, 2})
	b := c.Parameter(1, "b", []int{2, 2})
	f := c.Fusion("fadd", body, a, b)
	if f.Shape[0] != 2 || f.Shape[1] != 2 {
		t.Fatalf("fusion shape = %v", f.Shape)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFormatContainsScheduleOrder(t *testing.T) {
	c, _, _ := buildMLPLayer(t)
	text := c.Format()
	ag := strings.Index(text, "all-gather")
	ein := strings.Index(text, "einsum")
	if ag < 0 || ein < 0 || ag > ein {
		t.Fatalf("Format order wrong:\n%s", text)
	}
	if !strings.Contains(text, `spec="bf,fh->bh"`) {
		t.Fatalf("Format missing einsum spec:\n%s", text)
	}
}

func TestConstantAndZeros(t *testing.T) {
	c := NewComputation("const")
	z := c.Zeros("z", []int{2, 3})
	if z.Op != OpZero || z.NumElements() != 6 {
		t.Fatalf("Zeros = %s with %d elements", z.Op, z.NumElements())
	}
	if z.Literal != nil {
		t.Fatal("Zeros must not materialize a literal")
	}
	lit := c.Constant("k", tensor.Iota(2, 2))
	if lit.Shape[0] != 2 || lit.Shape[1] != 2 {
		t.Fatalf("constant shape = %v", lit.Shape)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestByteSizeAndNumElements(t *testing.T) {
	c := NewComputation("bytes")
	a := c.Parameter(0, "a", []int{8, 128})
	if a.NumElements() != 1024 {
		t.Fatalf("NumElements = %d", a.NumElements())
	}
	if a.ByteSize() != 4096 {
		t.Fatalf("ByteSize = %d", a.ByteSize())
	}
}

func TestCollectivePermuteDoneRequiresStart(t *testing.T) {
	c := NewComputation("async")
	a := c.Parameter(0, "a", []int{4})
	start := c.CollectivePermuteStart(a, []SourceTargetPair{{0, 1}, {1, 0}})
	done := c.CollectivePermuteDone(start)
	if len(done.Pairs) != 2 {
		t.Fatal("done must inherit the start's pairs")
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	// A done whose operand is not a start must fail verification.
	bad := NewComputation("bad")
	p := bad.Parameter(0, "p", []int{4})
	bad.add(&Instruction{Op: OpCollectivePermuteDone, Operands: []*Instruction{p}, Shape: []int{4}})
	if err := bad.Verify(); err == nil {
		t.Fatal("done without start passed verification")
	}
}
