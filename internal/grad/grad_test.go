package grad

import (
	"math/rand"
	"testing"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

func ringGroups(n int) [][]int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return [][]int{g}
}

// lossGraph builds a partitioned forward pass ending in a per-device
// scalar loss: out = einsum(AllGather(x), w); loss = <out, probe>.
// The global loss is the sum of the per-device losses.
func lossGraph(n int) (c *hlo.Computation, x, w, probe, seed, loss *hlo.Instruction) {
	c = hlo.NewComputation("loss")
	x = c.Parameter(0, "x", []int{2, 3})
	w = c.Parameter(1, "w", []int{3, 4})
	probe = c.Parameter(2, "probe", []int{2 * n, 4})
	seed = c.Parameter(3, "seed", nil)
	full := c.AllGather(x, 0, ringGroups(n))
	out := c.Einsum("mk,kn->mn", full, w)
	loss = c.Einsum("mn,mn->", out, probe)
	return
}

// globalLoss interprets the graph and sums the per-device losses.
func globalLoss(t *testing.T, c *hlo.Computation, lossIn *hlo.Instruction, n int, args [][]*tensor.Tensor) float64 {
	t.Helper()
	vals, err := sim.InterpretAll(c, n, args)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range vals[lossIn] {
		sum += v.At()
	}
	return sum
}

// TestGradMatchesFiniteDifferences validates the whole adjoint system —
// einsum transposes and the AllGather→ReduceScatter rule — against
// central finite differences of the global loss.
func TestGradMatchesFiniteDifferences(t *testing.T) {
	const n = 3
	c, x, w, _, seed, loss := lossGraph(n)
	grads, err := Append(c, loss, seed, []*hlo.Instruction{x, w})
	if err != nil {
		t.Fatal(err)
	}
	c.Tuple(grads[x], grads[w])

	rng := rand.New(rand.NewSource(61))
	mkArgs := func() [][]*tensor.Tensor {
		mk := func(shape ...int) []*tensor.Tensor {
			out := make([]*tensor.Tensor, n)
			for d := range out {
				out[d] = tensor.Rand(rng, shape...)
			}
			return out
		}
		return [][]*tensor.Tensor{mk(2, 3), mk(3, 4), mk(2*n, 4), {tensor.Scalar(1)}}
	}
	args := mkArgs()

	vals, err := sim.InterpretAll(c, n, args)
	if err != nil {
		t.Fatal(err)
	}
	gx := vals[grads[x]]
	gw := vals[grads[w]]

	const h = 1e-6
	fd := func(paramIdx, dev, elem int) float64 {
		orig := args[paramIdx][dev].Data()[elem]
		args[paramIdx][dev].Data()[elem] = orig + h
		plus := globalLoss(t, c, loss, n, args)
		args[paramIdx][dev].Data()[elem] = orig - h
		minus := globalLoss(t, c, loss, n, args)
		args[paramIdx][dev].Data()[elem] = orig
		return (plus - minus) / (2 * h)
	}
	for dev := 0; dev < n; dev++ {
		for e := 0; e < 6; e++ {
			want := fd(0, dev, e)
			got := gx[dev].Data()[e]
			if diff := abs(got - want); diff > 1e-4*(1+abs(want)) {
				t.Fatalf("d loss/d x[%d][%d]: grad %v vs fd %v", dev, e, got, want)
			}
		}
		for e := 0; e < 12; e++ {
			want := fd(1, dev, e)
			got := gw[dev].Data()[e]
			if diff := abs(got - want); diff > 1e-4*(1+abs(want)) {
				t.Fatalf("d loss/d w[%d][%d]: grad %v vs fd %v", dev, e, got, want)
			}
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestAllGatherAdjointIsReduceScatter proves the §2.2 claim
// structurally: the backward pass of a gathered-operand einsum contains
// a ReduceScatter on the same axis and groups.
func TestAllGatherAdjointIsReduceScatter(t *testing.T) {
	const n = 4
	c, x, _, _, seed, loss := lossGraph(n)
	grads, err := Append(c, loss, seed, []*hlo.Instruction{x})
	if err != nil {
		t.Fatal(err)
	}
	c.Tuple(grads[x])
	found := false
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpReduceScatter && in.CollectiveAxis == 0 && len(in.Groups[0]) == n {
			found = true
		}
	}
	if !found {
		t.Fatal("backward pass has no ReduceScatter for the forward AllGather")
	}
}

// TestBackwardCollectivesDecompose: the ReduceScatter the autodiff
// produced is itself a decomposition site for the overlap pipeline.
func TestBackwardCollectivesDecompose(t *testing.T) {
	const n = 4
	c, x, w, _, seed, loss := lossGraph(n)
	grads, err := Append(c, loss, seed, []*hlo.Instruction{x, w})
	if err != nil {
		t.Fatal(err)
	}
	c.Tuple(grads[x], grads[w])
	opts := core.DefaultOptions(machine.TPUv4())
	opts.UseCostModel = false
	opts.RematerializeGathers = true
	report, err := core.Apply(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.SitesFound < 2 {
		t.Fatalf("expected the forward AllGather and backward ReduceScatter sites, found %d", report.SitesFound)
	}
	if report.SitesDecomposed != report.SitesFound {
		t.Fatalf("decomposed %d of %d sites", report.SitesDecomposed, report.SitesFound)
	}
}

func TestCollectivePermuteAdjointReversesPairs(t *testing.T) {
	const n = 3
	c := hlo.NewComputation("cp")
	x := c.Parameter(0, "x", []int{2})
	seed := c.Parameter(1, "seed", []int{2})
	pairs := []hlo.SourceTargetPair{{Source: 0, Target: 2}, {Source: 1, Target: 0}, {Source: 2, Target: 1}}
	shifted := c.CollectivePermute(x, pairs)
	grads, err := Append(c, shifted, seed, []*hlo.Instruction{x})
	if err != nil {
		t.Fatal(err)
	}
	c.Tuple(grads[x])
	var rev *hlo.Instruction
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpCollectivePermute && in != shifted {
			rev = in
		}
	}
	if rev == nil {
		t.Fatal("no adjoint permute emitted")
	}
	for _, p := range rev.Pairs {
		if tgt, ok := shifted.PairTarget(p.Target); !ok || tgt != p.Source {
			t.Fatalf("pair %v is not the reversal of the forward permute", p)
		}
	}
}

func TestGradConcatSliceRoundTrip(t *testing.T) {
	// d/dx of Slice(Concat(x, y)) must route the cotangent back into
	// the right region.
	c := hlo.NewComputation("catslice")
	x := c.Parameter(0, "x", []int{2, 2})
	y := c.Parameter(1, "y", []int{2, 2})
	seed := c.Parameter(2, "seed", []int{2, 2})
	cat := c.Concat(0, x, y)
	sl := c.Slice(cat, []int{2, 0}, []int{4, 2}) // exactly y's region
	grads, err := Append(c, sl, seed, []*hlo.Instruction{x, y})
	if err != nil {
		t.Fatal(err)
	}
	c.Tuple(grads[x], grads[y])

	seedVal := tensor.Iota(2, 2)
	args := [][]*tensor.Tensor{{tensor.Iota(2, 2)}, {tensor.Iota(2, 2)}, {seedVal}}
	vals, err := sim.InterpretAll(c, 1, args)
	if err != nil {
		t.Fatal(err)
	}
	if !vals[grads[y]][0].Equal(seedVal) {
		t.Fatalf("dy = %v, want the seed", vals[grads[y]][0].Data())
	}
	if !vals[grads[x]][0].Equal(tensor.New(2, 2)) {
		t.Fatalf("dx = %v, want zeros", vals[grads[x]][0].Data())
	}
}

func TestGradUnusedParameterIsZero(t *testing.T) {
	c := hlo.NewComputation("unused")
	x := c.Parameter(0, "x", []int{2})
	u := c.Parameter(1, "unused", []int{2})
	seed := c.Parameter(2, "seed", []int{2})
	out := c.Add(x, x)
	grads, err := Append(c, out, seed, []*hlo.Instruction{x, u})
	if err != nil {
		t.Fatal(err)
	}
	if grads[u].Op != hlo.OpZero {
		t.Fatalf("unused parameter gradient is %s, want zero", grads[u].Op)
	}
}

func TestGradErrors(t *testing.T) {
	c := hlo.NewComputation("err")
	x := c.Parameter(0, "x", []int{2, 2})
	badSeed := c.Parameter(1, "s", []int{3})
	out := c.Add(x, x)
	if _, err := Append(c, out, badSeed, []*hlo.Instruction{x}); err == nil {
		t.Fatal("mismatched seed accepted")
	}
	// Unsupported op in the dependency cone.
	c2 := hlo.NewComputation("err2")
	a := c2.Parameter(0, "a", []int{4})
	s := c2.Parameter(1, "s", []int{4})
	ds := c2.DynamicSlice(a, []hlo.DynOffset{hlo.Static(0)}, []int{4})
	if _, err := Append(c2, ds, s, []*hlo.Instruction{a}); err == nil {
		t.Fatal("unsupported op differentiated")
	}
}
