// Package collective implements the reference (functional) semantics of
// the MPI-style collectives used by intra-layer model parallelism. The
// functions operate on one tensor per participating device, ordered by
// the device's position within its group, and return the post-collective
// value(s). The SPMD interpreter delegates to these, and the overlap
// decomposition's equivalence tests use them as ground truth.
package collective

import (
	"fmt"

	"overlap/internal/tensor"
)

// AllGather concatenates the group's shards along axis; every device
// receives the same result.
func AllGather(shards []*tensor.Tensor, axis int) *tensor.Tensor {
	if len(shards) == 0 {
		panic("collective: AllGather with no shards")
	}
	return tensor.Concat(axis, shards...)
}

// ReduceScatter element-wise sums the group's inputs and returns one
// shard of the sum per device, split along axis in group order.
func ReduceScatter(inputs []*tensor.Tensor, axis int) []*tensor.Tensor {
	sum := AllReduce(inputs)
	return tensor.Split(sum, axis, len(inputs))
}

// AllReduce element-wise sums the group's inputs; every device receives
// the full sum.
func AllReduce(inputs []*tensor.Tensor) *tensor.Tensor {
	if len(inputs) == 0 {
		panic("collective: AllReduce with no inputs")
	}
	acc := inputs[0].Clone()
	for _, in := range inputs[1:] {
		tensor.AddInPlace(acc, in)
	}
	return acc
}

// AllToAll splits every device's input into len(inputs) pieces along
// splitAxis and returns, for device j, the concatenation of piece j
// from every device (in group order) along concatAxis — the shard
// transpose used by mixture-of-experts dispatch.
func AllToAll(inputs []*tensor.Tensor, splitAxis, concatAxis int) []*tensor.Tensor {
	n := len(inputs)
	if n == 0 {
		panic("collective: AllToAll with no inputs")
	}
	pieces := make([][]*tensor.Tensor, n)
	for i, in := range inputs {
		pieces[i] = tensor.Split(in, splitAxis, n)
	}
	out := make([]*tensor.Tensor, n)
	for j := 0; j < n; j++ {
		row := make([]*tensor.Tensor, n)
		for i := 0; i < n; i++ {
			row[i] = pieces[i][j]
		}
		out[j] = tensor.Concat(concatAxis, row...)
	}
	return out
}

// Permute applies point-to-point transfers over global device ids:
// output[target] = input[source] for each pair, and a zero tensor of the
// input's shape for devices that are not the target of any pair (XLA
// CollectivePermute semantics).
func Permute(inputs []*tensor.Tensor, pairs [][2]int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(inputs))
	for _, p := range pairs {
		src, dst := p[0], p[1]
		if src < 0 || src >= len(inputs) || dst < 0 || dst >= len(inputs) {
			panic(fmt.Sprintf("collective: permute pair %v out of range for %d devices", p, len(inputs)))
		}
		if out[dst] != nil {
			panic(fmt.Sprintf("collective: permute target %d written twice", dst))
		}
		out[dst] = inputs[src].Clone()
	}
	for d := range out {
		if out[d] == nil {
			out[d] = tensor.New(inputs[d].Shape()...)
		}
	}
	return out
}
