package sim

import (
	"math"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/machine"
)

// testSpec returns a machine with round numbers so expected times are
// easy to derive by hand: 1e12 FLOP/s, 1e9 B/s links, no latency or
// overheads.
func testSpec() machine.Spec {
	return machine.Spec{
		Name:             "test",
		PeakFLOPS:        1e12,
		MatmulEfficiency: 1,
		EfficiencyKnee:   0, // efficiency curve disabled
		HBMBandwidth:     1e15,
		LinkBandwidth:    1e9,
		LinkLatency:      0,
		OpOverhead:       0,
		MaxInFlight:      4,
	}
}

func shiftLeftPairs(n int) []hlo.SourceTargetPair {
	pairs := make([]hlo.SourceTargetPair, n)
	for i := range pairs {
		pairs[i] = hlo.SourceTargetPair{Source: i, Target: (i + n - 1) % n}
	}
	return pairs
}

func TestSimulateComputeOnly(t *testing.T) {
	c := hlo.NewComputation("compute")
	a := c.Parameter(0, "a", []int{1024, 1024})
	b := c.Parameter(1, "b", []int{1024, 1024})
	c.Einsum("ik,kj->ij", a, b)
	res, err := Simulate(c, 2, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 * 1024 * 1024 * 1024 / 1e12 // 2*N^3 FLOPs at 1 TFLOP/s
	if math.Abs(res.StepTime-want)/want > 1e-9 {
		t.Fatalf("StepTime = %v, want %v", res.StepTime, want)
	}
	if res.Exposed != 0 || res.CollectiveWire != 0 {
		t.Fatalf("compute-only run has comm: %+v", res)
	}
}

func TestSimulateBlockingPermuteExposed(t *testing.T) {
	c := hlo.NewComputation("blocking")
	a := c.Parameter(0, "a", []int{1 << 20}) // 4 MiB
	c.CollectivePermute(a, shiftLeftPairs(4))
	res, err := Simulate(c, 4, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0 * (1 << 20) / 1e9 // bytes / link bandwidth
	if math.Abs(res.StepTime-want)/want > 1e-9 {
		t.Fatalf("StepTime = %v, want %v", res.StepTime, want)
	}
	if math.Abs(res.Exposed-want)/want > 1e-9 {
		t.Fatalf("Exposed = %v, want %v (fully blocking)", res.Exposed, want)
	}
}

// TestSimulateOverlapHidesTransfer is the core overlap arithmetic from
// Fig 4: with an async start before a long einsum and the done after it,
// the transfer is fully hidden and step time equals the compute time.
func TestSimulateOverlapHidesTransfer(t *testing.T) {
	spec := testSpec()
	build := func(async bool) *hlo.Computation {
		c := hlo.NewComputation("overlap")
		buf := c.Parameter(0, "buf", []int{1 << 20})
		a := c.Parameter(1, "a", []int{1024, 1024})
		b := c.Parameter(2, "b", []int{1024, 1024})
		if async {
			start := c.CollectivePermuteStart(buf, shiftLeftPairs(2))
			ein := c.Einsum("ik,kj->ij", a, b)
			got := c.Einsum("ik,kj->ij", ein, ein)
			last := c.Einsum("ik,kj->ij", got, got)
			_ = last
			done := c.CollectivePermuteDone(start)
			c.Copy(done)
		} else {
			c.CollectivePermute(buf, shiftLeftPairs(2))
			ein := c.Einsum("ik,kj->ij", a, b)
			got := c.Einsum("ik,kj->ij", ein, ein)
			c.Einsum("ik,kj->ij", got, got)
		}
		return c
	}
	asyncRes, err := Simulate(build(true), 2, spec)
	if err != nil {
		t.Fatal(err)
	}
	syncRes, err := Simulate(build(false), 2, spec)
	if err != nil {
		t.Fatal(err)
	}
	einTime := 3 * 2.0 * 1024 * 1024 * 1024 / 1e12
	transfer := 4.0 * (1 << 20) / 1e9
	if math.Abs(asyncRes.StepTime-einTime)/einTime > 1e-5 {
		t.Fatalf("async StepTime = %v, want %v (transfer hidden)", asyncRes.StepTime, einTime)
	}
	if asyncRes.Exposed > 1e-12 {
		t.Fatalf("async run exposed %v of comm", asyncRes.Exposed)
	}
	wantSync := einTime + transfer
	if math.Abs(syncRes.StepTime-wantSync)/wantSync > 1e-5 {
		t.Fatalf("sync StepTime = %v, want %v", syncRes.StepTime, wantSync)
	}
}

// When the transfer is longer than the overlapped compute, only the
// compute-sized portion hides; the remainder is exposed at the done.
func TestSimulatePartialOverlap(t *testing.T) {
	spec := testSpec()
	c := hlo.NewComputation("partial")
	buf := c.Parameter(0, "buf", []int{1 << 22}) // 16 MiB → 16.8ms
	a := c.Parameter(1, "a", []int{256, 256})
	b := c.Parameter(2, "b", []int{256, 256})
	start := c.CollectivePermuteStart(buf, shiftLeftPairs(2))
	ein := c.Einsum("ik,kj->ij", a, b) // ~33.6us
	_ = c.Einsum("ik,kj->ij", ein, ein)
	done := c.CollectivePermuteDone(start)
	c.Copy(done)
	res, err := Simulate(c, 2, spec)
	if err != nil {
		t.Fatal(err)
	}
	transfer := 4.0 * (1 << 22) / 1e9
	einTime := 2.0 * 256 * 256 * 256 / 1e12
	wantExposed := transfer - 2*einTime // two einsums execute before the done
	if math.Abs(res.Exposed-wantExposed)/wantExposed > 1e-6 {
		t.Fatalf("Exposed = %v, want %v", res.Exposed, wantExposed)
	}
}

func TestSimulateAllGatherBarrier(t *testing.T) {
	spec := testSpec()
	c := hlo.NewComputation("ag")
	x := c.Parameter(0, "x", []int{1 << 18})
	c.AllGather(x, 0, [][]int{{0, 1, 2, 3}})
	res, err := Simulate(c, 4, spec)
	if err != nil {
		t.Fatal(err)
	}
	want := spec.RingAllGatherTime(4*(1<<18)*4, 4)
	if math.Abs(res.StepTime-want)/want > 1e-9 {
		t.Fatalf("StepTime = %v, want %v", res.StepTime, want)
	}
	if math.Abs(res.Exposed-want)/want > 1e-9 {
		t.Fatal("blocking all-gather must be fully exposed")
	}
}

func TestSimulateInFlightBudgetStalls(t *testing.T) {
	spec := testSpec()
	spec.MaxInFlight = 1
	c := hlo.NewComputation("budget")
	x := c.Parameter(0, "x", []int{1 << 20})
	s1 := c.CollectivePermuteStart(x, shiftLeftPairs(2))
	s2 := c.CollectivePermuteStart(x, shiftLeftPairs(2))
	d1 := c.CollectivePermuteDone(s1)
	d2 := c.CollectivePermuteDone(s2)
	c.Add(d1, d2)
	res, err := Simulate(c, 2, spec)
	if err != nil {
		t.Fatal(err)
	}
	transfer := 4.0 * (1 << 20) / 1e9
	// With budget 1 the second start stalls until the first transfer
	// lands, so the two transfers serialize.
	if res.StepTime < 2*transfer*(1-1e-9) {
		t.Fatalf("StepTime = %v, want >= %v (serialized)", res.StepTime, 2*transfer)
	}
	if res.PeakInFlight != 1 {
		t.Fatalf("PeakInFlight = %d, want 1", res.PeakInFlight)
	}
}

func TestSimulateSamePairSerializes(t *testing.T) {
	// Two back-to-back async transfers on the same source→target path
	// must queue on the link even with budget available.
	spec := testSpec()
	c := hlo.NewComputation("linkq")
	x := c.Parameter(0, "x", []int{1 << 20})
	s1 := c.CollectivePermuteStart(x, shiftLeftPairs(2))
	s2 := c.CollectivePermuteStart(x, shiftLeftPairs(2))
	d1 := c.CollectivePermuteDone(s1)
	d2 := c.CollectivePermuteDone(s2)
	c.Add(d1, d2)
	res, err := Simulate(c, 2, spec)
	if err != nil {
		t.Fatal(err)
	}
	transfer := 4.0 * (1 << 20) / 1e9
	if res.StepTime < 2*transfer*(1-1e-9) {
		t.Fatalf("StepTime = %v, want >= %v", res.StepTime, 2*transfer)
	}
	if res.PeakInFlight != 2 {
		t.Fatalf("PeakInFlight = %d, want 2", res.PeakInFlight)
	}
}

func TestSimulateDoneBeforeStartErrors(t *testing.T) {
	c := hlo.NewComputation("bad")
	x := c.Parameter(0, "x", []int{4})
	start := c.CollectivePermuteStart(x, shiftLeftPairs(2))
	done := c.CollectivePermuteDone(start)
	_ = done
	// Corrupt the schedule by swapping start and done directly.
	instrs := c.Instructions()
	instrs[1], instrs[2] = instrs[2], instrs[1]
	bad := hlo.NewComputation("bad2")
	_ = bad
	// Simulate processes the stored order; rebuild by SetSchedule being
	// rejected proves the verifier guards this path.
	if err := c.SetSchedule(instrs); err == nil {
		t.Fatal("invalid start/done order accepted by SetSchedule")
	}
}

func TestBreakdownCommFraction(t *testing.T) {
	b := Breakdown{StepTime: 10, Exposed: 4}
	if got := b.CommFraction(); got != 0.4 {
		t.Fatalf("CommFraction = %v", got)
	}
	if (Breakdown{}).CommFraction() != 0 {
		t.Fatal("zero step time must give zero fraction")
	}
}

func TestSimulateEfficiencyCurve(t *testing.T) {
	// A small einsum must run at lower efficiency than a large one when
	// the knee is enabled.
	spec := testSpec()
	spec.EfficiencyKnee = 128
	small := hlo.NewComputation("small")
	a := small.Parameter(0, "a", []int{8, 8})
	b := small.Parameter(1, "b", []int{8, 8})
	small.Einsum("ik,kj->ij", a, b)
	res, err := Simulate(small, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	ideal := 2.0 * 8 * 8 * 8 / 1e12
	if res.StepTime <= ideal {
		t.Fatalf("small einsum ran at full efficiency: %v <= %v", res.StepTime, ideal)
	}
}
