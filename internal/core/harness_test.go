package core

import (
	"fmt"
	"math/rand"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/sim"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// siteKind enumerates the decomposable site shapes exercised by the
// equivalence suite.
type siteKind int

const (
	siteAGNonContracting siteKind = iota
	siteAGNonContractingRHS
	siteAGContracting
	siteAGBatch
	siteRS
	siteRSRHS
)

var siteKindNames = map[siteKind]string{
	siteAGNonContracting:    "ag-noncontracting",
	siteAGNonContractingRHS: "ag-noncontracting-rhs",
	siteAGContracting:       "ag-contracting",
	siteAGBatch:             "ag-batch",
	siteRS:                  "rs-lhs",
	siteRSRHS:               "rs-rhs",
}

// testCase bundles a buildable site with its per-device arguments.
type testCase struct {
	build func() *hlo.Computation
	args  [][]*tensor.Tensor
	n     int
}

// makeSite constructs a single-site computation over a ring of n
// devices with small randomized contents. groups may come from a 1D
// ring or one axis of a larger mesh.
func makeSite(kind siteKind, groups [][]int, nDevices int, rng *rand.Rand) testCase {
	n := len(groups[0])
	const m, k, nn, g = 4, 6, 5, 1 // per-shard base sizes (batch case scales g)
	perDevice := func(shape ...[]int) [][]*tensor.Tensor {
		out := make([][]*tensor.Tensor, len(shape))
		for p, s := range shape {
			out[p] = make([]*tensor.Tensor, nDevices)
			for d := 0; d < nDevices; d++ {
				out[p][d] = tensor.Rand(rng, s...)
			}
		}
		return out
	}
	switch kind {
	case siteAGNonContracting:
		build := func() *hlo.Computation {
			c := hlo.NewComputation("ag1")
			a := c.Parameter(0, "a", []int{m, k})
			b := c.Parameter(1, "b", []int{k, nn})
			full := c.AllGather(a, 0, groups)
			c.Einsum("mk,kn->mn", full, b)
			return c
		}
		return testCase{build, perDevice([]int{m, k}, []int{k, nn}), nDevices}
	case siteAGNonContractingRHS:
		build := func() *hlo.Computation {
			c := hlo.NewComputation("ag1r")
			a := c.Parameter(0, "a", []int{m, k})
			b := c.Parameter(1, "b", []int{k, nn})
			full := c.AllGather(b, 1, groups)
			c.Einsum("mk,kn->mn", a, full)
			return c
		}
		return testCase{build, perDevice([]int{m, k}, []int{k, nn}), nDevices}
	case siteAGContracting:
		build := func() *hlo.Computation {
			c := hlo.NewComputation("ag2")
			a := c.Parameter(0, "a", []int{m, k})
			b := c.Parameter(1, "b", []int{k * n, nn})
			full := c.AllGather(a, 1, groups) // contracting dim grows
			c.Einsum("mk,kn->mn", full, b)
			return c
		}
		// b must be identical across devices for the decomposition's
		// DynamicSlice to be meaningful — replicate it.
		args := perDevice([]int{m, k})
		bT := tensor.Rand(rng, k*n, nn)
		args = append(args, []*tensor.Tensor{bT})
		return testCase{build, args, nDevices}
	case siteAGBatch:
		build := func() *hlo.Computation {
			c := hlo.NewComputation("ag3")
			a := c.Parameter(0, "a", []int{g, m, k})
			b := c.Parameter(1, "b", []int{g * n, k, nn})
			full := c.AllGather(a, 0, groups)
			c.Einsum("gmk,gkn->gmn", full, b)
			return c
		}
		args := perDevice([]int{g, m, k})
		bT := tensor.Rand(rng, g*n, k, nn)
		args = append(args, []*tensor.Tensor{bT})
		return testCase{build, args, nDevices}
	case siteRS:
		build := func() *hlo.Computation {
			c := hlo.NewComputation("rs")
			a := c.Parameter(0, "a", []int{m * n, k})
			b := c.Parameter(1, "b", []int{k, nn})
			ein := c.Einsum("mk,kn->mn", a, b)
			c.ReduceScatter(ein, 0, groups)
			return c
		}
		return testCase{build, perDevice([]int{m * n, k}, []int{k, nn}), nDevices}
	case siteRSRHS:
		build := func() *hlo.Computation {
			c := hlo.NewComputation("rsr")
			a := c.Parameter(0, "a", []int{m, k})
			b := c.Parameter(1, "b", []int{k, nn * n})
			ein := c.Einsum("mk,kn->mn", a, b)
			c.ReduceScatter(ein, 1, groups)
			return c
		}
		return testCase{build, perDevice([]int{m, k}, []int{k, nn * n}), nDevices}
	}
	panic("unknown site kind")
}

// checkEquivalence asserts that applying the pipeline with the given
// options preserves the program's per-device semantics.
func checkEquivalence(t *testing.T, tc testCase, opts Options, label string) {
	t.Helper()
	base := tc.build()
	ref, err := sim.Interpret(base, tc.n, tc.args)
	if err != nil {
		t.Fatalf("%s: baseline interpret: %v", label, err)
	}
	transformed := tc.build()
	report, err := Apply(transformed, opts)
	if err != nil {
		t.Fatalf("%s: Apply: %v", label, err)
	}
	if report.SitesDecomposed == 0 {
		t.Fatalf("%s: pipeline decomposed nothing (found %d)", label, report.SitesFound)
	}
	got, err := sim.Interpret(transformed, tc.n, tc.args)
	if err != nil {
		t.Fatalf("%s: transformed interpret: %v\n%s", label, err, transformed.Format())
	}
	for d := range ref {
		if !got[d].AllClose(ref[d], 1e-9) {
			t.Fatalf("%s: device %d diverges by %v\n%s", label, d, got[d].MaxDifference(ref[d]), transformed.Format())
		}
	}
}

// forceOpts returns options that decompose unconditionally.
func forceOpts(unroll, bidi bool, sched SchedulerKind, fuse bool) Options {
	return Options{
		Spec:                  machine.TPUv4(),
		Unroll:                unroll,
		Bidirectional:         bidi,
		UseCostModel:          false,
		Scheduler:             sched,
		FuseAddIntoEinsum:     fuse,
		OverlapFriendlyFusion: true,
	}
}

func ringGroups(n int) [][]int {
	return topology.NewRing(n).AxisGroups(0)
}

func label(kind siteKind, n int, o Options) string {
	return fmt.Sprintf("%s/n=%d/unroll=%v/bidi=%v/sched=%v/fuse=%v",
		siteKindNames[kind], n, o.Unroll, o.Bidirectional, o.Scheduler, o.FuseAddIntoEinsum)
}
