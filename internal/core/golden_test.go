package core

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGoldenDecomposedHLO pins the exact textual form of the decomposed
// programs for the canonical 4-way sites: any change to the emitted
// structure (shard indices, permute pairs, fusion scopes, schedule)
// shows up as a golden diff. Run with -update to accept intentional
// changes.
func TestGoldenDecomposedHLO(t *testing.T) {
	cases := []struct {
		name string
		kind siteKind
		opts Options
	}{
		{"ag_noncontracting_uni", siteAGNonContracting, forceOpts(false, false, SchedulerNone, false)},
		{"ag_contracting_bidi", siteAGContracting, forceOpts(true, true, SchedulerNone, false)},
		{"rs_unrolled", siteRS, forceOpts(true, false, SchedulerNone, false)},
		{"rs_bidi_scheduled", siteRS, forceOpts(true, true, SchedulerBottomUp, true)},
		{"ag_rolled", siteAGNonContracting, rolledOpts()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1)) // content is irrelevant; structure is pinned
			site := makeSite(tc.kind, ringGroups(4), 4, rng)
			c := site.build()
			if _, err := Apply(c, tc.opts); err != nil {
				t.Fatal(err)
			}
			got := c.Format()
			path := filepath.Join("testdata", tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if string(want) != got {
				t.Fatalf("decomposed HLO changed; run with -update if intended.\n--- got ---\n%s", got)
			}
		})
	}
}
