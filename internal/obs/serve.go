package obs

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Handler returns an http.Handler that serves the registry in the
// Prometheus text format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Serve exposes the registry at http://addr/metrics in a background
// goroutine — the live-export path for long-running tuning sessions. It
// returns once the listener is bound (so a scrape racing the caller
// cannot miss it) along with the server for Shutdown and the resolved
// address, useful when addr left the port to the kernel (":0").
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
