package tensor

import (
	"math/rand"
	"testing"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Rank() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("shape = %v, want [2 3]", x.Shape())
	}
	if x.NumElements() != 6 {
		t.Fatalf("NumElements = %d, want 6", x.NumElements())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatalf("New tensor not zero filled: %v", x.Data())
		}
	}
}

func TestScalar(t *testing.T) {
	s := Scalar(3.5)
	if s.Rank() != 0 || s.NumElements() != 1 {
		t.Fatalf("scalar shape wrong: rank=%d n=%d", s.Rank(), s.NumElements())
	}
	if got := s.At(); got != 3.5 {
		t.Fatalf("At() = %v, want 3.5", got)
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7 {
		t.Fatalf("At(1,2,3) = %v, want 7", got)
	}
	// Row-major layout: offset of (1,2,3) in [2,3,4] is 1*12+2*4+3 = 23.
	if x.Data()[23] != 7 {
		t.Fatalf("row-major layout broken, data=%v", x.Data())
	}
}

func TestFromValuesLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromValues with wrong length did not panic")
		}
	}()
	FromValues([]int{2, 2}, []float64{1, 2, 3})
}

func TestIota(t *testing.T) {
	x := Iota(2, 2)
	want := []float64{0, 1, 2, 3}
	for i, v := range x.Data() {
		if v != want[i] {
			t.Fatalf("Iota data = %v, want %v", x.Data(), want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := Iota(2, 2)
	y := x.Clone()
	y.Set(99, 0, 0)
	if x.At(0, 0) == 99 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEqualAndAllClose(t *testing.T) {
	a := Iota(2, 3)
	b := Iota(2, 3)
	if !a.Equal(b) {
		t.Fatal("identical tensors not Equal")
	}
	b.Set(b.At(1, 2)+1e-12, 1, 2)
	if a.Equal(b) {
		t.Fatal("perturbed tensor reported Equal")
	}
	if !a.AllClose(b, 1e-9) {
		t.Fatal("tiny perturbation not AllClose at 1e-9")
	}
	if a.AllClose(b, 1e-15) {
		t.Fatal("AllClose tolerance not respected")
	}
	c := Iota(3, 2)
	if a.AllClose(c, 1) {
		t.Fatal("AllClose across different shapes must be false")
	}
}

func TestRandDeterministic(t *testing.T) {
	a := Rand(rand.New(rand.NewSource(42)), 3, 3)
	b := Rand(rand.New(rand.NewSource(42)), 3, 3)
	if !a.Equal(b) {
		t.Fatal("Rand with identical seeds differs")
	}
	for _, v := range a.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("Rand value %v outside [-1,1)", v)
		}
	}
}

func TestIndexIteratorCoversSpace(t *testing.T) {
	it := newIndexIterator([]int{2, 3})
	var got [][]int
	for idx, ok := it.next(); ok; idx, ok = it.next() {
		got = append(got, idx)
	}
	if len(got) != 6 {
		t.Fatalf("iterator yielded %d indices, want 6", len(got))
	}
	if got[0][0] != 0 || got[0][1] != 0 || got[5][0] != 1 || got[5][1] != 2 {
		t.Fatalf("iterator order wrong: %v", got)
	}
}

func TestIndexIteratorEmptySpace(t *testing.T) {
	it := newIndexIterator([]int{2, 0})
	if _, ok := it.next(); ok {
		t.Fatal("iterator over empty space yielded an index")
	}
}

func TestIndexIteratorScalar(t *testing.T) {
	it := newIndexIterator(nil)
	n := 0
	for _, ok := it.next(); ok; _, ok = it.next() {
		n++
	}
	if n != 1 {
		t.Fatalf("scalar space yielded %d indices, want 1", n)
	}
}

func TestNegativeShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with negative dim did not panic")
		}
	}()
	New(2, -1)
}

func TestOutOfBoundsIndexPanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds At did not panic")
		}
	}()
	x.At(2, 0)
}
