// Command overlapd runs the overlap pipeline as a long-running service:
// an HTTP/JSON daemon that compiles programs into cacheable Plan
// artifacts and executes them on the concurrent goroutine runtime. The
// steady-state run path is a plan-cache lookup plus execution — zero
// compilation — while cold requests batch through a coalescing
// compiler so identical programs share one tune.
//
// Endpoints:
//
//	POST /v1/run      execute a model (or inline HLO program); returns
//	                  the measured breakdown, overlap efficiency, and a
//	                  result digest
//	POST /v1/compile  return the compiled Plan artifact (same JSON as
//	                  overlaptune -plan-out / overlaprun -plan-in)
//	GET  /v1/plans    list cached plan fingerprints
//	GET  /metrics     live Prometheus telemetry (overlap_serve_* et al)
//	GET  /healthz     liveness
//
// Usage:
//
//	overlapd -addr :8080
//	curl -s localhost:8080/v1/run -d '{"model":"GPT_32B","devices":4,"dim":4}'
//	overlapd -addr :8080 -debug-faults   # allow fault-injection requests
//
// SIGINT/SIGTERM drain gracefully: in-flight requests finish, then the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"overlap"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxBatch := flag.Int("max-batch", 8, "batcher flush size (requests)")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "batcher flush age: a partial batch waits at most this long")
	inbox := flag.Int("inbox", 256, "bounded request inbox; beyond it requests get 503")
	maxRuns := flag.Int("max-runs", 4, "admission limit: concurrent runtime executions sharing the kernel pool")
	planCache := flag.Int("plan-cache", 64, "in-memory compiled-plan LRU capacity")
	cachePath := flag.String("cache", "", "autotune decision cache file backing cold compiles (default: per-user cache dir)")
	noCache := flag.Bool("no-cache", false, "skip the on-disk decision cache")
	tuneTopK := flag.Int("topk", 2, "candidates executed for real per cold compile")
	tuneScale := flag.Float64("tune-timescale", 50, "wire-delay scale during cold-compile tuning")
	runScale := flag.Float64("run-timescale", 50, "wire-delay scale of served runs (negative disables injection)")
	deadline := flag.Duration("default-deadline", 60*time.Second, "run deadline when the request carries none")
	debugFaults := flag.Bool("debug-faults", false, "allow requests to inject deterministic faults (chaos testing)")
	kernelWorkers := flag.Int("kernel-workers", 0, "intra-op einsum kernel parallelism (0 = GOMAXPROCS); keyed into every plan fingerprint")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	flag.Parse()

	overlap.SetKernelWorkers(*kernelWorkers)

	srv, err := overlap.NewServer(overlap.ServerConfig{
		MaxBatch:          *maxBatch,
		MaxWait:           *maxWait,
		InboxSize:         *inbox,
		MaxConcurrentRuns: *maxRuns,
		PlanCacheSize:     *planCache,
		CachePath:         *cachePath,
		DisableDiskCache:  *noCache,
		TuneTopK:          *tuneTopK,
		TuneTimeScale:     *tuneScale,
		RunTimeScale:      *runScale,
		DefaultDeadline:   *deadline,
		DebugFaults:       *debugFaults,
	})
	if err != nil {
		fail(err)
	}

	bound, err := srv.Start(*addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("overlapd: serving at http://%s (plans cached: %d, admission: %d, batch: %d/%s)\n",
		bound, *planCache, *maxRuns, *maxBatch, *maxWait)
	if *debugFaults {
		fmt.Println("overlapd: debug-faults enabled — requests may inject deterministic failures")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("overlapd: %s — draining in-flight requests\n", got)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fail(fmt.Errorf("shutdown: %w", err))
	}
	fmt.Println("overlapd: drained; bye")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "overlapd: %v\n", err)
	os.Exit(1)
}
