package core

import (
	"math/rand"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// fig11Graph reproduces the pattern of Fig 11: an Add whose operands
// are two einsums, one of which depends on an asynchronous
// CollectivePermuteDone.
func fig11Graph() (*hlo.Computation, *hlo.Instruction, *hlo.Instruction) {
	c := hlo.NewComputation("fig11")
	a := c.Parameter(0, "a", []int{8, 8})
	w := c.Parameter(1, "w", []int{8, 8})
	start := c.CollectivePermuteStart(a, []hlo.SourceTargetPair{{Source: 0, Target: 1}, {Source: 1, Target: 0}})
	done := c.CollectivePermuteDone(start)
	einIndependent := c.Einsum("mk,kn->mn", a, w)
	einWithDone := c.Einsum("mk,kn->mn", done, w)
	c.Add(einIndependent, einWithDone)
	return c, einIndependent, einWithDone
}

func TestFusionHeuristicPrefersDoneDependentEinsum(t *testing.T) {
	c, einFree, einDone := fig11Graph()
	formed := FuseAccumulation(c, true)
	if formed != 1 {
		t.Fatalf("formed %d fusions, want 1", formed)
	}
	// The independent einsum must survive standalone (it overlaps the
	// transfer); the done-dependent one must be inside the fusion.
	var fusion *hlo.Instruction
	sawFree, sawDone := false, false
	for _, in := range c.Instructions() {
		switch in {
		case einFree:
			sawFree = true
		case einDone:
			sawDone = true
		}
		if in.Op == hlo.OpFusion {
			fusion = in
		}
	}
	if fusion == nil {
		t.Fatal("no fusion instruction")
	}
	if !sawFree {
		t.Fatal("independent einsum was fused away (Fig 11a regression)")
	}
	if sawDone {
		t.Fatal("done-dependent einsum not fused (heuristic inactive)")
	}
}

func TestFusionDefaultTakesFirstOperand(t *testing.T) {
	c, einFree, _ := fig11Graph()
	FuseAccumulation(c, false)
	// With the naive heuristic the first operand (the independent
	// einsum) is fused — the bad decision of Fig 11a.
	for _, in := range c.Instructions() {
		if in == einFree {
			t.Fatal("default heuristic did not fuse the first einsum")
		}
	}
}

func TestFusionPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	build := func() *hlo.Computation {
		c, _, _ := fig11Graph()
		return c
	}
	args := [][]*tensor.Tensor{
		{tensor.Rand(rng, 8, 8), tensor.Rand(rng, 8, 8)},
		{tensor.Rand(rng, 8, 8)},
	}
	base := build()
	ref, err := sim.Interpret(base, 2, args)
	if err != nil {
		t.Fatal(err)
	}
	for _, friendly := range []bool{false, true} {
		fused := build()
		FuseAccumulation(fused, friendly)
		if err := fused.Verify(); err != nil {
			t.Fatal(err)
		}
		got, err := sim.Interpret(fused, 2, args)
		if err != nil {
			t.Fatal(err)
		}
		for d := range ref {
			if !got[d].AllClose(ref[d], 1e-12) {
				t.Fatalf("friendly=%v device %d diverges", friendly, d)
			}
		}
	}
}

func TestFusionRespectsGroupBoundaries(t *testing.T) {
	// Two tagged groups must not merge into one region even when the
	// dataflow would allow it.
	c := hlo.NewComputation("groups")
	a := c.Parameter(0, "a", []int{4, 4})
	b := c.Parameter(1, "b", []int{4, 4})
	c.NewBuildGroup()
	e1 := c.Einsum("mk,kn->mn", a, b)
	add1 := c.Add(e1, a)
	c.NewBuildGroup()
	e2 := c.Einsum("mk,kn->mn", add1, b)
	c.Add(e2, add1)
	c.SetBuildGroup(0)
	formed := FuseAccumulation(c, true)
	if formed != 2 {
		t.Fatalf("formed %d fusions, want 2 (one per group)", formed)
	}
}

func TestConcatToPadMaxRewriteEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	build := func() *hlo.Computation {
		c := hlo.NewComputation("cpm")
		a := c.Parameter(0, "a", []int{2, 3})
		b := c.Parameter(1, "b", []int{2, 3})
		w := c.Parameter(2, "w", []int{6, 4})
		cat := c.Concat(1, a, b)
		c.Einsum("mk,kn->mn", cat, w)
		return c
	}
	args := [][]*tensor.Tensor{
		{tensor.Rand(rng, 2, 3)}, {tensor.Rand(rng, 2, 3)}, {tensor.Rand(rng, 6, 4)},
	}
	base := build()
	ref, err := sim.Interpret(base, 1, args)
	if err != nil {
		t.Fatal(err)
	}
	rw := build()
	if n := RewriteConcatToPadMax(rw); n != 1 {
		t.Fatalf("rewrote %d concats, want 1", n)
	}
	for _, in := range rw.Instructions() {
		if in.Op == hlo.OpConcat {
			t.Fatal("concat survived the rewrite")
		}
	}
	got, err := sim.Interpret(rw, 1, args)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].AllClose(ref[0], 1e-12) {
		t.Fatal("pad/max rewrite changed the result")
	}
}

func TestConcatToPadMaxSkipsNonEinsumUsers(t *testing.T) {
	c := hlo.NewComputation("skip")
	a := c.Parameter(0, "a", []int{2, 3})
	b := c.Parameter(1, "b", []int{2, 3})
	cat := c.Concat(1, a, b)
	c.Copy(cat)
	if n := RewriteConcatToPadMax(c); n != 0 {
		t.Fatalf("rewrote %d concats feeding non-einsum users", n)
	}
}

func TestPipelineWithConcatRewrite(t *testing.T) {
	// Full pipeline with ConcatToPadMax on a bidirectional site must
	// stay semantically equivalent.
	rng := rand.New(rand.NewSource(11))
	tc := makeSite(siteAGNonContracting, ringGroups(4), 4, rng)
	opts := forceOpts(true, true, SchedulerBottomUp, true)
	opts.ConcatToPadMax = true
	checkEquivalence(t, tc, opts, "concat-padmax-pipeline")
}

func TestFusionSkipsMultiUserProducers(t *testing.T) {
	// An einsum with a second external user must not be pulled into the
	// region.
	c := hlo.NewComputation("multiuser")
	a := c.Parameter(0, "a", []int{4, 4})
	ein := c.Einsum("mk,kn->mn", a, a)
	add := c.Add(ein, a)
	// A collective user can never join a fusion region, so the einsum
	// must stay standalone.
	sent := c.CollectivePermute(ein, []hlo.SourceTargetPair{{Source: 0, Target: 1}, {Source: 1, Target: 0}})
	c.Add(add, sent)
	FuseAccumulation(c, true)
	found := false
	for _, in := range c.Instructions() {
		if in == ein {
			found = true
		}
	}
	if !found {
		t.Fatal("multi-user einsum was fused")
	}
}
