// Package wire is the frame codec of the process transport: it moves
// one asynchronous transfer — addressed by its start instruction's name
// and per-device execution count — across a Unix socket as one
// length-prefixed binary frame.
//
// Layout (all integers little-endian):
//
//	u32  payload length (bytes after this field)
//	u8   version (wireVersion)
//	u8   flags (drop / dup, pre-decided by the parent's injector)
//	u32  src device
//	u32  dst device
//	u64  modeled wire occupancy, nanoseconds
//	u16  start-instruction name length, then the name bytes
//	u16  fault description length, then the bytes (the injected fault
//	     a duplicated frame is attributed to; usually empty)
//	u32  inst (per-device execution count of the start)
//	u32  rank, then rank × u32 dims
//	     dims-product × u64 IEEE-754 float64 payload
//
// Writes assemble the whole frame in one pooled scratch buffer and hand
// it to the socket as a single Write, so a frame is never interleaved
// with another writer's on a shared socket as long as callers serialize
// Writes per socket (the transport does). Reads use the same pool for
// the raw bytes; the float64 payload is decoded into a fresh slice
// because the delivered tensor owns it for the rest of the run.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// Version pins the frame layout; a reader rejects frames from a
// mismatched writer instead of misparsing them.
const Version = 1

// Flags carried in a frame header: fault actions the parent decided
// (deterministically, from the run's seeded plan) that the worker must
// act out on the real socket.
const (
	// FlagDrop: lose the frame at the wire — the worker consumes it and
	// never forwards it to the peer.
	FlagDrop = 1 << 0
	// FlagDup: deliver twice — the worker writes the frame to the peer
	// two times back to back.
	FlagDup = 1 << 1
)

// MaxFrameBytes bounds one frame (1 GiB). A length prefix beyond it is
// a corrupt or hostile stream, rejected before any allocation.
const MaxFrameBytes = 1 << 30

// maxNameLen bounds the start-instruction name; hlo names are short.
const maxNameLen = 1 << 15

// Frame is one transfer instance in flight between processes.
type Frame struct {
	Src, Dst int
	// Name and Inst address the transfer instance: the start
	// instruction's name (portable across process boundaries, unlike
	// the *hlo.Instruction the in-process mailboxes key on) and the
	// per-device execution count.
	Name string
	Inst int
	// WireNS is the modeled wire occupancy the worker sleeps before
	// forwarding, in nanoseconds.
	WireNS int64
	// Flags carries pre-decided fault actions (FlagDrop, FlagDup).
	Flags uint8
	// Fault describes the injected fault behind a FlagDup/FlagDrop
	// frame (Fault.String form), so a detected duplicate delivery on
	// the far side is attributed to the injection that caused it.
	Fault string
	// Shape and Data are the tensor payload.
	Shape []int
	Data  []float64
}

// scratch pools the raw byte buffers of the encode/decode hot path.
var scratch = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getScratch(n int) *[]byte {
	p := scratch.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putScratch(p *[]byte) {
	*p = (*p)[:0]
	scratch.Put(p)
}

// encodedSize returns the payload length of f (bytes after the u32
// length prefix).
func encodedSize(f *Frame) int {
	return 1 + 1 + 4 + 4 + 8 + 2 + len(f.Name) + 2 + len(f.Fault) + 4 + 4 + 4*len(f.Shape) + 8*len(f.Data)
}

// WriteFrame encodes f and writes it to w as one length-prefixed frame
// in a single Write call.
func WriteFrame(w io.Writer, f *Frame) error {
	if len(f.Name) > maxNameLen || len(f.Fault) > maxNameLen {
		return fmt.Errorf("wire: name/fault string exceeds %d bytes", maxNameLen)
	}
	n := encodedSize(f)
	if n > MaxFrameBytes {
		return fmt.Errorf("wire: frame %d bytes exceeds %d", n, MaxFrameBytes)
	}
	p := getScratch(4 + n)
	defer putScratch(p)
	b := *p
	binary.LittleEndian.PutUint32(b, uint32(n))
	b[4] = Version
	b[5] = f.Flags
	binary.LittleEndian.PutUint32(b[6:], uint32(f.Src))
	binary.LittleEndian.PutUint32(b[10:], uint32(f.Dst))
	binary.LittleEndian.PutUint64(b[14:], uint64(f.WireNS))
	binary.LittleEndian.PutUint16(b[22:], uint16(len(f.Name)))
	off := 24 + copy(b[24:], f.Name)
	binary.LittleEndian.PutUint16(b[off:], uint16(len(f.Fault)))
	off += 2
	off += copy(b[off:], f.Fault)
	binary.LittleEndian.PutUint32(b[off:], uint32(f.Inst))
	off += 4
	binary.LittleEndian.PutUint32(b[off:], uint32(len(f.Shape)))
	off += 4
	for _, d := range f.Shape {
		binary.LittleEndian.PutUint32(b[off:], uint32(d))
		off += 4
	}
	for _, v := range f.Data {
		binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
		off += 8
	}
	_, err := w.Write(b)
	return err
}

// ReadFrame reads one frame from r into f, reusing f's Shape and Data
// capacity when present. io.EOF is returned untouched on a clean
// end-of-stream (no partial frame), so callers can distinguish an
// orderly peer close from a truncated frame.
func ReadFrame(r io.Reader, f *Frame) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("wire: truncated frame length: %w", err)
		}
		return err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < 30 || n > MaxFrameBytes {
		return fmt.Errorf("wire: frame length %d out of range [30, %d]", n, MaxFrameBytes)
	}
	p := getScratch(n)
	defer putScratch(p)
	b := *p
	if _, err := io.ReadFull(r, b); err != nil {
		return fmt.Errorf("wire: truncated frame body: %w", err)
	}
	if b[0] != Version {
		return fmt.Errorf("wire: frame version %d, want %d", b[0], Version)
	}
	f.Flags = b[1]
	f.Src = int(binary.LittleEndian.Uint32(b[2:]))
	f.Dst = int(binary.LittleEndian.Uint32(b[6:]))
	f.WireNS = int64(binary.LittleEndian.Uint64(b[10:]))
	nameLen := int(binary.LittleEndian.Uint16(b[18:]))
	if 20+nameLen+10 > n {
		return fmt.Errorf("wire: frame name length %d overruns frame of %d bytes", nameLen, n)
	}
	f.Name = string(b[20 : 20+nameLen])
	off := 20 + nameLen
	faultLen := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if off+faultLen+8 > n {
		return fmt.Errorf("wire: frame fault length %d overruns frame of %d bytes", faultLen, n)
	}
	f.Fault = string(b[off : off+faultLen])
	off += faultLen
	f.Inst = int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	rank := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if rank < 0 || off+4*rank > n {
		return fmt.Errorf("wire: frame rank %d overruns frame of %d bytes", rank, n)
	}
	f.Shape = resize(f.Shape, rank)
	elems := 1
	for i := range f.Shape {
		f.Shape[i] = int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		elems *= f.Shape[i]
	}
	if off+8*elems != n {
		return fmt.Errorf("wire: frame payload %d elements does not fill %d remaining bytes", elems, n-off)
	}
	f.Data = resizeF(f.Data, elems)
	for i := range f.Data {
		f.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	return nil
}

func resize(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
