// Package train builds and executes end-to-end training steps —
// forward pass, reverse-mode backward pass, and an SGD weight update in
// one SPMD program — and overlaps the gradient communication the
// backward pass produces with its remaining computation.
//
// The paper's §2.2 observation is that both decomposition kinds appear
// once you differentiate: "the AllGathers will become ReduceScatters".
// This package realizes that claim two ways:
//
//   - StrategyMegatron shards every weight row-wise across the ring and
//     AllGathers it before its forward einsum; grad.Append transposes
//     each gather into a weight-gradient einsum feeding a
//     ReduceScatter, so each layer's weight-gradient computation hides
//     that layer's gradient collective (SNIPPETS-style Megatron
//     LinearWithGradAccumulationAndAsyncCommunication).
//   - StrategyDDP replicates the weights and shards the batch; every
//     weight gradient needs a cross-device AllReduce, which
//     core.Options.GradBucketBytes groups into buckets lowered directly
//     to ring form so early buckets communicate while later layers'
//     backward einsums still compute (DDP-style bucketed overlap).
//
// Programs are ordinary hlo.Computations: the overlap pipeline, the
// autotuner, the goroutine runtime, the interpreter, and the serving
// daemon all apply unchanged, and the bitwise cross-check against
// sim.Interpret remains the invariant.
package train

import (
	"fmt"

	"overlap/internal/grad"
	"overlap/internal/hlo"
	"overlap/internal/models"
	"overlap/internal/partition"
	"overlap/internal/topology"
)

// Strategy selects how the training step is partitioned.
type Strategy int

const (
	// StrategyMegatron: weights sharded row-wise on the ring, gathered
	// forward, reduce-scattered backward (tensor-parallel/ZeRO flavor).
	StrategyMegatron Strategy = iota
	// StrategyDDP: weights replicated, batch sharded, per-weight
	// gradient AllReduces (data-parallel flavor).
	StrategyDDP
)

func (s Strategy) String() string {
	switch s {
	case StrategyMegatron:
		return "megatron"
	default:
		return "ddp"
	}
}

// ParseStrategy maps a CLI/JSON name to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "megatron", "":
		return StrategyMegatron, nil
	case "ddp":
		return StrategyDDP, nil
	default:
		return 0, fmt.Errorf("train: unknown strategy %q (want megatron or ddp)", name)
	}
}

// Config describes one training-step program: an L-layer linear MLP
// y = x·W1·W2·…, squared-error loss against a target, SGD update.
type Config struct {
	// Devices is the ring size.
	Devices int
	// Layers is the number of (W1, W2) FFN blocks.
	Layers int
	// Model and Hidden are the global model and FFN dimensions; Tokens
	// the global token count. All three must divide by Devices.
	Model, Hidden, Tokens int
	// Strategy selects the partitioning.
	Strategy Strategy
}

// FromModel miniaturizes a Table 1/2 configuration into a training
// Config: dimensions come from models.Miniature so the tensors stay
// executable, while Layers restores a multi-layer backward pass (the
// miniature itself is single-layer).
func FromModel(cfg models.Config, devices, dim, layers int, strategy Strategy) (Config, error) {
	mini, err := models.Miniature(cfg, devices, dim)
	if err != nil {
		return Config{}, err
	}
	if layers < 1 {
		layers = 1
	}
	out := Config{
		Devices:  devices,
		Layers:   layers,
		Model:    mini.ModelDim,
		Hidden:   mini.FFDim,
		Tokens:   mini.Tokens(),
		Strategy: strategy,
	}
	return out, out.Validate()
}

// Validate rejects configurations whose sharding would not divide.
func (cfg Config) Validate() error {
	if cfg.Devices < 1 || cfg.Layers < 1 {
		return fmt.Errorf("train: need at least one device and one layer")
	}
	if cfg.Model < 1 || cfg.Hidden < 1 || cfg.Tokens < 1 {
		return fmt.Errorf("train: dimensions must be positive")
	}
	for _, dim := range []struct {
		name string
		n    int
	}{{"model", cfg.Model}, {"hidden", cfg.Hidden}, {"tokens", cfg.Tokens}} {
		if dim.n%cfg.Devices != 0 {
			return fmt.Errorf("train: %s dim %d does not divide by %d devices", dim.name, dim.n, cfg.Devices)
		}
	}
	return nil
}

// NumWeights is the weight-matrix count: two per layer.
func (cfg Config) NumWeights() int { return 2 * cfg.Layers }

// Parameter-order constants for a built Program. Weights follow at
// index ParamWeight0 + i in build order (w1.0, w2.0, w1.1, …).
const (
	ParamX       = 0 // activations, token-sharded [tokens/N, model]
	ParamNegY    = 1 // negated targets, token-sharded (the graph has Add, not Sub)
	ParamSeed    = 2 // loss-cotangent seed, scalar 1
	ParamNegLR   = 3 // negated learning rate, scalar (update is w + (-lr)·g)
	ParamWeight0 = 4
)

// Program is a built training-step computation plus the metadata needed
// to feed and read it. The root is a positional tuple:
//
//	[0]               per-device partial loss (host sums across devices)
//	[1 … W]           updated weights, build order
//	[W+1 … 2W]        gradients, build order
//
// Positions survive the overlap pipeline (rewrites replace operands in
// place) and Format/Parse round-trips, so the executor, the serving
// daemon, and a decoded Plan artifact all agree on the layout.
type Program struct {
	Comp   *hlo.Computation
	Config Config
	// WeightLocal[i] is weight i's per-device parameter shape.
	WeightLocal [][]int
	// WeightGlobal[i] is weight i's logical shape.
	WeightGlobal [][]int
}

// RootLoss returns the per-device partial-loss root operand.
func (p *Program) RootLoss() *hlo.Instruction { return p.Comp.Root().Operands[0] }

// RootWeight returns updated weight i's root operand.
func (p *Program) RootWeight(i int) *hlo.Instruction { return p.Comp.Root().Operands[1+i] }

// RootGrad returns gradient i's root operand.
func (p *Program) RootGrad(i int) *hlo.Instruction {
	return p.Comp.Root().Operands[1+p.Config.NumWeights()+i]
}

// Build constructs the fwd+bwd+update program for cfg: the forward pass
// through partition.Builder (which inserts the strategy's collectives),
// the backward pass through grad.Append (which transposes them), and a
// plain SGD update w' = w + (-lr)·g appended by hand.
func Build(cfg Config) (*Program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mesh := topology.NewTorus2D(1, cfg.Devices)
	const axis = 1 // the ring, matching models.Miniature's 1×N mesh
	b := partition.NewBuilder(fmt.Sprintf("train-%s-l%d", cfg.Strategy, cfg.Layers), mesh)
	c := b.Comp

	d, f, e := cfg.Model, cfg.Hidden, cfg.Tokens
	tokens := partition.OnDim(2, 0, axis)
	x := b.Parameter("x", []int{e, d}, tokens)
	negy := b.Parameter("negy", []int{e, d}, tokens)
	seed := b.Parameter("seed", []int{}, partition.ReplicatedSharding(0))
	neglr := b.Parameter("neglr", []int{}, partition.ReplicatedSharding(0))

	prog := &Program{Comp: c, Config: cfg}
	var weights []*partition.Value
	act := x
	for l := 0; l < cfg.Layers; l++ {
		var w1, w2 *partition.Value
		if cfg.Strategy == StrategyMegatron {
			// Row-sharded weights: the forward gather is the collective
			// whose adjoint is the backward ReduceScatter, and the
			// reduce-scattered gradient lands exactly on the local shard
			// the SGD update writes (a ZeRO-style sharded update).
			rows := partition.OnDim(2, 0, axis)
			w1 = b.Parameter(fmt.Sprintf("w1.%d", l), []int{d, f}, rows)
			w2 = b.Parameter(fmt.Sprintf("w2.%d", l), []int{f, d}, rows)
			h := b.Einsum("ed,df->ef", act, b.AllGather(w1, 0))
			act = b.Einsum("ef,fd->ed", h, b.AllGather(w2, 0))
		} else {
			rep := partition.ReplicatedSharding(2)
			w1 = b.Parameter(fmt.Sprintf("w1.%d", l), []int{d, f}, rep)
			w2 = b.Parameter(fmt.Sprintf("w2.%d", l), []int{f, d}, rep)
			h := b.Einsum("ed,df->ef", act, w1)
			act = b.Einsum("ef,fd->ed", h, w2)
		}
		weights = append(weights, w1, w2)
		prog.WeightLocal = append(prog.WeightLocal,
			append([]int(nil), w1.Instr.Shape...), append([]int(nil), w2.Instr.Shape...))
		prog.WeightGlobal = append(prog.WeightGlobal, w1.Logical, w2.Logical)
	}

	// Squared-error loss: diff = act + (-y); loss = Σ diff². Contracting
	// the token label (sharded on the ring in both operands) leaves the
	// per-device value a partial sum — the host adds the devices up, so
	// no collective rides the loss path.
	diff := b.Add(act, negy)
	loss := b.Einsum("ed,ed->", diff, diff)

	wrt := make([]*hlo.Instruction, len(weights))
	for i, w := range weights {
		wrt[i] = w.Instr
	}
	grads, err := grad.Append(c, loss.Instr, seed.Instr, wrt)
	if err != nil {
		return nil, err
	}

	// DDP gradients are per-device partial sums over the local batch;
	// reduce them across the ring. (Megatron gradients arrive already
	// reduced: grad.Append transposed each forward AllGather into a
	// ReduceScatter.) These AllReduces are what GradBucketBytes groups.
	groups := mesh.AxisGroups(axis)
	outs := []*hlo.Instruction{loss.Instr}
	var gradOuts []*hlo.Instruction
	for i, w := range weights {
		g := grads[w.Instr]
		if cfg.Strategy == StrategyDDP {
			g = c.AllReduce(g, groups)
			g.Name = fmt.Sprintf("gsum.%d", i)
		}
		update := c.Einsum(",ab->ab", neglr.Instr, g)
		outs = append(outs, c.Add(w.Instr, update))
		gradOuts = append(gradOuts, g)
	}
	outs = append(outs, gradOuts...)
	c.Tuple(outs...)
	if err := c.Verify(); err != nil {
		return nil, fmt.Errorf("train: built program invalid: %w", err)
	}
	return prog, nil
}
