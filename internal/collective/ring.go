package collective

import (
	"fmt"

	"overlap/internal/tensor"
)

// Ring algorithms: the step-by-step point-to-point schedules that the
// decomposed Looped CollectiveEinsum's CollectivePermute chains follow,
// implemented directly on tensors. They justify two things used
// elsewhere:
//
//   - functionally, executing the N-1 (or N/2, bidirectional) shift
//     steps reproduces the direct AllGather/ReduceScatter semantics —
//     the identity behind the paper's Figures 6, 7, 9 and 10;
//   - analytically, each step moves exactly one shard per link
//     direction, which is the machine model's ring cost formula.

// RingAllGather runs the unidirectional ring algorithm: for N-1 steps
// every rank forwards the shard it most recently received to rank-1
// (circular shift left) while recording it into its output. The result
// on every rank equals AllGather(shards, axis).
func RingAllGather(shards []*tensor.Tensor, axis int) []*tensor.Tensor {
	n := len(shards)
	if n == 0 {
		panic("collective: RingAllGather with no shards")
	}
	// Each rank assembles its output from per-slot shards; slot r holds
	// rank r's original shard.
	slots := make([][]*tensor.Tensor, n)
	cur := make([]*tensor.Tensor, n)
	for r := 0; r < n; r++ {
		slots[r] = make([]*tensor.Tensor, n)
		slots[r][r] = shards[r]
		cur[r] = shards[r]
	}
	left := shiftLeftPairs(n)
	for step := 0; step < n-1; step++ {
		cur = Permute(cur, left)
		for r := 0; r < n; r++ {
			// After `step+1` left shifts, rank r holds the shard that
			// originated at rank (r + step + 1) mod n.
			slots[r][(r+step+1)%n] = cur[r]
		}
	}
	out := make([]*tensor.Tensor, n)
	for r := 0; r < n; r++ {
		out[r] = tensor.Concat(axis, slots[r]...)
	}
	return out
}

// RingReduceScatter runs the unidirectional ring algorithm: an
// accumulator circulates left for N steps; at step i rank r adds its
// contribution to shard (r + i + 1) mod N, so after the final step each
// rank holds the fully reduced shard matching its own rank — exactly
// the circulation of the paper's Figure 7.
func RingReduceScatter(inputs []*tensor.Tensor, axis int) []*tensor.Tensor {
	n := len(inputs)
	if n == 0 {
		panic("collective: RingReduceScatter with no inputs")
	}
	pieces := make([][]*tensor.Tensor, n)
	for r, in := range inputs {
		pieces[r] = tensor.Split(in, axis, n)
	}
	shardShape := pieces[0][0].Shape()
	acc := make([]*tensor.Tensor, n)
	for r := range acc {
		acc[r] = tensor.New(shardShape...)
	}
	left := shiftLeftPairs(n)
	for step := 0; step < n; step++ {
		acc = Permute(acc, left)
		for r := 0; r < n; r++ {
			shard := (r + step + 1) % n
			acc[r] = tensor.Add(acc[r], pieces[r][shard])
		}
	}
	return acc
}

// BidirectionalRingAllGather runs the §5.4.2 two-direction variant on an
// even-sized ring: a prologue shifts every shard right once, then each
// of the N/2 steps records two shards — one arriving from each direction
// — and forwards them onward. Total steps halve while each link
// direction carries one shard per step.
func BidirectionalRingAllGather(shards []*tensor.Tensor, axis int) []*tensor.Tensor {
	n := len(shards)
	if n == 0 || n%2 != 0 {
		panic(fmt.Sprintf("collective: bidirectional ring needs an even ring, got %d", n))
	}
	slots := make([][]*tensor.Tensor, n)
	ccw := make([]*tensor.Tensor, n)
	for r := 0; r < n; r++ {
		slots[r] = make([]*tensor.Tensor, n)
		ccw[r] = shards[r]
	}
	cw := Permute(shards, shiftRightPairs(n)) // prologue
	left := shiftLeftPairs(n)
	right := shiftRightPairs(n)
	for step := 0; step < n/2; step++ {
		for r := 0; r < n; r++ {
			slots[r][(r+step)%n] = ccw[r]
			slots[r][((r-1-step)%n+n)%n] = cw[r]
		}
		if step < n/2-1 {
			ccw = Permute(ccw, left)
			cw = Permute(cw, right)
		}
	}
	out := make([]*tensor.Tensor, n)
	for r := 0; r < n; r++ {
		out[r] = tensor.Concat(axis, slots[r]...)
	}
	return out
}

// RingStepCount returns the number of serialized shard transfers of each
// ring algorithm — the quantity the §5.5 cost model multiplies by the
// per-shard wire time.
func RingStepCount(n int, bidirectional bool, reduceScatter bool) int {
	switch {
	case n <= 1:
		return 0
	case bidirectional && n%2 == 0 && reduceScatter:
		return n/2 + 1 // epilogue alignment shift
	case bidirectional && n%2 == 0:
		return n / 2 // prologue + N/2-1 forwarding steps
	case reduceScatter:
		return n // Algorithm 1 sends every iteration
	default:
		return n - 1
	}
}

func shiftLeftPairs(n int) [][2]int {
	pairs := make([][2]int, n)
	for i := range pairs {
		pairs[i] = [2]int{i, (i + n - 1) % n}
	}
	return pairs
}

func shiftRightPairs(n int) [][2]int {
	pairs := make([][2]int, n)
	for i := range pairs {
		pairs[i] = [2]int{i, (i + 1) % n}
	}
	return pairs
}
