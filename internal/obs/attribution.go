package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Span is one timed interval from an execution's span stream, simulated
// or measured: a compute-track event (a local instruction, a blocking
// collective wait, or an exposed stall) or a transfer-engine event (one
// asynchronous transfer occupying its link). Times are seconds from the
// start of the step; Device follows the trace's pid convention (transfer
// spans sit on the sending device).
type Span struct {
	Device int
	Track  int
	Cat    string
	Name   string
	Start  float64
	Dur    float64
}

// Track values, matching the sim/runtime trace tid convention.
const (
	TrackCompute  = 0
	TrackTransfer = 1
)

// Span categories, matching the sim/runtime trace cat convention.
const (
	CatCompute    = "compute"
	CatCollective = "collective"
	CatStall      = "stall"
	CatTransfer   = "transfer"
)

// Attribution reports where one collective instruction's wire time went:
// how much of it ran under dependent computation (hidden) versus outside
// any compute span (exposed), and which compute instructions — the
// partial einsums of the decomposition — did the hiding.
type Attribution struct {
	// Name is the collective instruction (the start instruction for an
	// asynchronous pair).
	Name string `json:"name"`
	// Blocking marks a synchronous collective, whose recorded span is a
	// blocked wait and therefore entirely exposed.
	Blocking bool `json:"blocking"`
	// Wire is the instruction's total wire seconds summed over devices.
	Wire float64 `json:"wire"`
	// Hidden and Exposed partition Wire: time overlapped by the issuing
	// device's compute spans versus time it was not.
	Hidden  float64 `json:"hidden"`
	Exposed float64 `json:"exposed"`
	// Under lists the compute instructions the wire time hid beneath,
	// largest share first.
	Under []UnderShare `json:"under,omitempty"`
}

// UnderShare is one compute instruction's share of a collective's
// hidden time.
type UnderShare struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// HiddenFraction returns Hidden/Wire, or 0 for zero wire time.
func (a Attribution) HiddenFraction() float64 {
	if a.Wire == 0 {
		return 0
	}
	return a.Hidden / a.Wire
}

// ExposedFraction returns Exposed/Wire, or 0 for zero wire time.
func (a Attribution) ExposedFraction() float64 {
	if a.Wire == 0 {
		return 0
	}
	return a.Exposed / a.Wire
}

// AttributionReport is the per-collective overlap breakdown of one
// execution — the per-op analogue of the paper's Figure 9.
type AttributionReport struct {
	// Collectives lists every collective instruction seen in the span
	// stream, sorted by name.
	Collectives []Attribution `json:"collectives"`
	// TotalWire and TotalHidden aggregate over all collectives.
	TotalWire   float64 `json:"total_wire"`
	TotalHidden float64 `json:"total_hidden"`
	// StallSeconds totals the receiver-side stall spans (waits on
	// asynchronous dones), a device-level exposure complement to the
	// per-collective sender-side numbers.
	StallSeconds float64 `json:"stall_seconds"`
}

// OverlapEfficiency returns the aggregate hidden fraction
// TotalHidden/TotalWire, or 0 for a program with no wire time.
func (r AttributionReport) OverlapEfficiency() float64 {
	if r.TotalWire == 0 {
		return 0
	}
	return r.TotalHidden / r.TotalWire
}

// GroupBy rolls the per-instruction collectives up under key(name):
// rows mapping to the same key merge into one Attribution whose wire,
// hidden and exposed seconds are summed and whose Under shares are
// combined per compute instruction (largest first). Groups keep the
// order in which their keys first appear. The gradient-bucketing pass
// names every emitted permute "gbktK.…", so keying on the first
// name segment yields a per-bucket attribution — one row per gradient
// bucket instead of one per ring step.
func (r AttributionReport) GroupBy(key func(name string) string) []Attribution {
	index := map[string]int{}
	var out []Attribution
	for _, a := range r.Collectives {
		k := key(a.Name)
		i, ok := index[k]
		if !ok {
			i = len(out)
			index[k] = i
			out = append(out, Attribution{Name: k, Blocking: a.Blocking})
		}
		g := &out[i]
		g.Wire += a.Wire
		g.Hidden += a.Hidden
		g.Exposed += a.Exposed
		g.Blocking = g.Blocking && a.Blocking
		for _, u := range a.Under {
			found := false
			for j := range g.Under {
				if g.Under[j].Name == u.Name {
					g.Under[j].Seconds += u.Seconds
					found = true
					break
				}
			}
			if !found {
				g.Under = append(g.Under, u)
			}
		}
	}
	for i := range out {
		sort.Slice(out[i].Under, func(a, b int) bool {
			return out[i].Under[a].Seconds > out[i].Under[b].Seconds
		})
	}
	return out
}

// Attribute analyzes a span stream and reports, per collective
// instruction, how much of its wire time was hidden under which compute
// spans versus exposed.
//
// Asynchronous transfers are attributed on the sending device: the
// portion of each transfer span that overlaps the sender's own compute
// spans is hidden (the device kept computing while its transfer rode
// the wire), the rest is exposed. Blocking collectives appear in the
// stream as compute-track waits and are entirely exposed by
// construction. Devices outside the trace window simply contribute
// nothing; SPMD symmetry makes the recorded devices representative.
func Attribute(spans []Span) AttributionReport {
	byDevice := map[int][]Span{}
	maxDev := -1
	for _, s := range spans {
		byDevice[s.Device] = append(byDevice[s.Device], s)
		if s.Device > maxDev {
			maxDev = s.Device
		}
	}

	type acc struct {
		blocking              bool
		wire, hidden, exposed float64
		under                 map[string]float64
	}
	accs := map[string]*acc{}
	get := func(name string) *acc {
		a, ok := accs[name]
		if !ok {
			a = &acc{under: map[string]float64{}}
			accs[name] = a
		}
		return a
	}

	var report AttributionReport
	for dev := 0; dev <= maxDev; dev++ {
		devSpans := byDevice[dev]
		var compute []Span
		for _, s := range devSpans {
			if s.Track == TrackCompute && s.Cat == CatCompute {
				compute = append(compute, s)
			}
		}
		sort.Slice(compute, func(i, j int) bool { return compute[i].Start < compute[j].Start })

		for _, s := range devSpans {
			switch {
			case s.Track == TrackTransfer && s.Cat == CatTransfer:
				a := get(s.Name)
				a.wire += s.Dur
				hidden := 0.0
				for _, c := range compute {
					if c.Start >= s.Start+s.Dur {
						break
					}
					lo, hi := maxf(c.Start, s.Start), minf(c.Start+c.Dur, s.Start+s.Dur)
					if hi > lo {
						hidden += hi - lo
						a.under[c.Name] += hi - lo
					}
				}
				if hidden > s.Dur {
					hidden = s.Dur // overlapping compute spans cannot hide more than the wire
				}
				a.hidden += hidden
				a.exposed += s.Dur - hidden
			case s.Track == TrackCompute && s.Cat == CatCollective:
				a := get(s.Name)
				a.blocking = true
				a.wire += s.Dur
				a.exposed += s.Dur
			case s.Track == TrackCompute && s.Cat == CatStall:
				report.StallSeconds += s.Dur
			}
		}
	}

	names := make([]string, 0, len(accs))
	for name := range accs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := accs[name]
		att := Attribution{
			Name: name, Blocking: a.blocking,
			Wire: a.wire, Hidden: a.hidden, Exposed: a.exposed,
		}
		for under, sec := range a.under {
			att.Under = append(att.Under, UnderShare{Name: under, Seconds: sec})
		}
		sort.Slice(att.Under, func(i, j int) bool {
			if att.Under[i].Seconds != att.Under[j].Seconds {
				return att.Under[i].Seconds > att.Under[j].Seconds
			}
			return att.Under[i].Name < att.Under[j].Name
		})
		report.Collectives = append(report.Collectives, att)
		report.TotalWire += a.wire
		report.TotalHidden += a.hidden
	}
	return report
}

// Render draws the report as an aligned table: one row per collective
// with its wire/hidden/exposed split and the top compute spans that hid
// it, plus the aggregate overlap-efficiency line.
func (r AttributionReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %10s %10s %7s  %s\n",
		"collective", "wire-ms", "hidden-ms", "exposed-ms", "hidden%", "hidden under")
	for _, a := range r.Collectives {
		under := "-"
		if len(a.Under) > 0 {
			parts := make([]string, 0, 3)
			for i, u := range a.Under {
				if i == 3 {
					parts = append(parts, "…")
					break
				}
				parts = append(parts, u.Name)
			}
			under = strings.Join(parts, ", ")
		}
		if a.Blocking {
			under = "(blocking)"
		}
		fmt.Fprintf(&b, "%-28s %10.3f %10.3f %10.3f %6.1f%%  %s\n",
			a.Name, 1e3*a.Wire, 1e3*a.Hidden, 1e3*a.Exposed, 100*a.HiddenFraction(), under)
	}
	fmt.Fprintf(&b, "overlap efficiency %.1f%% (%0.3f of %0.3f wire-ms hidden); stalls %.3f ms\n",
		100*r.OverlapEfficiency(), 1e3*r.TotalHidden, 1e3*r.TotalWire, 1e3*r.StallSeconds)
	return b.String()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
