// Package experiments reproduces the paper's evaluation section: one
// runner per table and figure, each building the model's partitioned
// layer-step graph, applying (or not) the overlap pipeline, simulating
// it on the machine model, and reporting the same rows/series the paper
// plots. Absolute times come from the TPU-v4-like machine model; the
// reproduction target is the shape — who wins, by what factor, where
// the effect saturates.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/models"
	"overlap/internal/partition"
	"overlap/internal/sim"
	"overlap/internal/topology"
)

// Run is one simulated configuration of one model.
type Run struct {
	Config    models.Config
	Breakdown sim.Breakdown
	// DeviceFlops is the per-device model FLOP count of one layer step
	// (einsum work only, measured on the unmodified graph).
	DeviceFlops int64
	// Utilization is achieved FLOP/s over peak FLOP/s.
	Utilization float64
	// StepTime is the full-model training step estimate (layer time x
	// layer count).
	StepTime float64
	Report   core.Report
}

// RunModel builds cfg's layer graph, optionally applies the overlap
// pipeline, and simulates it.
func RunModel(cfg models.Config, opts core.Options, overlap bool) (Run, error) {
	c, err := models.BuildLayerStep(cfg)
	if err != nil {
		return Run{}, err
	}
	flops := deviceFlops(c)
	var report core.Report
	if overlap {
		report, err = core.Apply(c, opts)
		if err != nil {
			return Run{}, err
		}
	}
	bd, err := sim.Simulate(c, cfg.Mesh().NumDevices(), opts.Spec)
	if err != nil {
		return Run{}, err
	}
	util := 0.0
	if bd.StepTime > 0 {
		util = float64(flops) / opts.Spec.PeakFLOPS / bd.StepTime
	}
	return Run{
		Config:      cfg,
		Breakdown:   bd,
		DeviceFlops: flops,
		Utilization: util,
		StepTime:    bd.StepTime * float64(cfg.Layers),
		Report:      report,
	}, nil
}

// deviceFlops sums the einsum FLOPs of the per-device graph (fusions
// included), which is the model's useful work.
func deviceFlops(c *hlo.Computation) int64 {
	var total int64
	for _, in := range c.Instructions() {
		switch in.Op {
		case hlo.OpEinsum:
			f, _ := machine.EinsumStats(in)
			total += f
		case hlo.OpFusion:
			for _, inner := range in.Body.Instructions() {
				if inner.Op == hlo.OpEinsum {
					f, _ := machine.EinsumStats(inner)
					total += f
				}
			}
		}
	}
	return total
}

// Comparison holds the baseline/overlapped pair the evaluation figures
// are built from.
type Comparison struct {
	Baseline   Run
	Overlapped Run
}

// Speedup returns baseline step time over overlapped step time, or 0
// when the overlapped step time is zero (degenerate empty programs)
// rather than an Inf/NaN that would poison downstream series.
func (c Comparison) Speedup() float64 {
	if c.Overlapped.Breakdown.StepTime == 0 {
		return 0
	}
	return c.Baseline.Breakdown.StepTime / c.Overlapped.Breakdown.StepTime
}

// CommReduction returns the factor by which exposed communication time
// shrank (§6.1 reports 2-3x).
func (c Comparison) CommReduction() float64 {
	if c.Overlapped.Breakdown.Exposed == 0 {
		return 0
	}
	return c.Baseline.Breakdown.Exposed / c.Overlapped.Breakdown.Exposed
}

// Compare runs cfg without and with the overlap pipeline.
func Compare(cfg models.Config, opts core.Options) (Comparison, error) {
	base, err := RunModel(cfg, opts, false)
	if err != nil {
		return Comparison{}, err
	}
	over, err := RunModel(cfg, opts, true)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Baseline: base, Overlapped: over}, nil
}

func table(write func(w *tabwriter.Writer)) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	write(w)
	w.Flush()
	return b.String()
}

// Table1 prints the evaluated-applications table.
func Table1() string {
	return configTable("Table 1: evaluated applications", models.Table1())
}

// Table2 prints the weak-scaled GPT table.
func Table2() string {
	return configTable("Table 2: weak-scaled GPT models", models.Table2())
}

func configTable(title string, cfgs []models.Config) string {
	return title + "\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "model\tparams(B)\tlayers\td_model\td_ff\tbatch\tchips\tmesh\tarch")
		for _, c := range cfgs {
			fmt.Fprintf(w, "%s\t%.1f\t%d\t%d\t%d\t%d\t%d\t%dx%d\t%s\n",
				c.Name, c.ParamsB, c.Layers, c.ModelDim, c.FFDim, c.Batch, c.Chips, c.MeshX, c.MeshY, c.Arch)
		}
	})
}

// Fig1 reproduces the step-time breakdown of Figure 1: the fraction of
// the (baseline, non-overlapped) training step spent in communication.
func Fig1(spec machine.Spec) (string, error) {
	opts := core.BaselineOptions(spec)
	out := "Figure 1: training step time breakdown (baseline, no overlap)\n"
	var rows []string
	for _, cfg := range models.Table1() {
		run, err := RunModel(cfg, opts, false)
		if err != nil {
			return "", err
		}
		rows = append(rows, fmt.Sprintf("%s\t%.1f%%\t%.1f%%\t%.2f s",
			cfg.Name, 100*(1-run.Breakdown.CommFraction()), 100*run.Breakdown.CommFraction(), run.StepTime))
	}
	return out + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "model\tcompute\tcommunication\tstep time")
		for _, r := range rows {
			fmt.Fprintln(w, r)
		}
	}), nil
}

// Fig12 reproduces Figure 12: normalized throughput (fraction of peak
// FLOPS) with and without the proposed technique, plus the §6.1
// communication-cost-reduction columns.
func Fig12(spec machine.Spec) (string, []Comparison, error) {
	opts := core.DefaultOptions(spec)
	var comps []Comparison
	out := "Figure 12: performance of the evaluated applications\n"
	text := table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "model\tbaseline util\toverlap util\tspeedup\texposed comm reduction")
		for _, cfg := range models.Table1() {
			comp, err := Compare(cfg, opts)
			if err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", cfg.Name, err)
				continue
			}
			comps = append(comps, comp)
			fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.2fx\t%.1fx\n",
				cfg.Name,
				100*comp.Baseline.Utilization,
				100*comp.Overlapped.Utilization,
				comp.Speedup(),
				comp.CommReduction())
		}
	})
	return out + text, comps, nil
}

// Fig13 reproduces the weak-scaling study of Figure 13 on the Table 2
// GPT family.
func Fig13(spec machine.Spec) (string, []Comparison, error) {
	opts := core.DefaultOptions(spec)
	var comps []Comparison
	out := "Figure 13: performance of the weakly scaled GPT models\n"
	text := table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "model\tbaseline util\toverlap util\tspeedup")
		for _, cfg := range models.Table2() {
			comp, err := Compare(cfg, opts)
			if err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", cfg.Name, err)
				continue
			}
			comps = append(comps, comp)
			fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.2fx\n",
				cfg.Name, 100*comp.Baseline.Utilization, 100*comp.Overlapped.Utilization, comp.Speedup())
		}
	})
	return out + text, comps, nil
}

// ablation runs the Table 2 family under two option sets and reports
// stepTime(with)/stepTime(without) per model.
func ablation(spec machine.Spec, title string, with, without func(*core.Options)) (string, []float64, error) {
	var ratios []float64
	text := table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "model\twithout\twith\tnormalized time (with/without)")
		for _, cfg := range models.Table2() {
			optsOn := core.DefaultOptions(spec)
			with(&optsOn)
			optsOff := core.DefaultOptions(spec)
			without(&optsOff)
			on, err := RunModel(cfg, optsOn, true)
			if err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", cfg.Name, err)
				continue
			}
			off, err := RunModel(cfg, optsOff, true)
			if err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", cfg.Name, err)
				continue
			}
			r := on.Breakdown.StepTime / off.Breakdown.StepTime
			ratios = append(ratios, r)
			fmt.Fprintf(w, "%s\t%.3f ms\t%.3f ms\t%.3f\n",
				cfg.Name, 1e3*off.Breakdown.StepTime, 1e3*on.Breakdown.StepTime, r)
		}
	})
	return title + "\n" + text, ratios, nil
}

// Fig14 reproduces the loop-unrolling ablation of Figure 14.
func Fig14(spec machine.Spec) (string, []float64, error) {
	return ablation(spec, "Figure 14: effect of loop unrolling (per-layer step time)",
		func(o *core.Options) { o.Unroll = true },
		func(o *core.Options) { o.Unroll = false })
}

// Fig15 reproduces the bidirectional-transfer ablation of Figure 15.
func Fig15(spec machine.Spec) (string, []float64, error) {
	return ablation(spec, "Figure 15: effect of bidirectional data transfer (per-layer step time)",
		func(o *core.Options) { o.Bidirectional = true },
		func(o *core.Options) { o.Bidirectional = false })
}

// Fig16 reproduces the scheduler comparison of Figure 16.
func Fig16(spec machine.Spec) (string, []float64, error) {
	return ablation(spec, "Figure 16: bottom-up vs top-down scheduling (per-layer step time)",
		func(o *core.Options) { o.Scheduler = core.SchedulerBottomUp },
		func(o *core.Options) { o.Scheduler = core.SchedulerTopDown })
}

// Energy reproduces §6.4: energy consumption reduction equals the
// end-to-end step time ratio (computational units cannot sleep during
// synchronous communication).
func Energy(spec machine.Spec) (string, error) {
	opts := core.DefaultOptions(spec)
	out := "Section 6.4: energy consumption reduction (= step time ratio)\n"
	return out + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "model\tenergy reduction")
		for _, cfg := range models.Table1() {
			comp, err := Compare(cfg, opts)
			if err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", cfg.Name, err)
				continue
			}
			fmt.Fprintf(w, "%s\t%.2fx\n", cfg.Name, comp.Speedup())
		}
	}), nil
}

// buildInferenceChain constructs a multi-layer 2-way model-parallel
// MLP serving graph (the §7.1 recommendation-model stand-in): weights
// sharded across the 2-device ring and AllGathered before each einsum,
// activations replicated, layers chained so one layer's gathers can
// overlap the previous layer's computation.
func buildInferenceChain(layers, e, d, f int) *hlo.Computation {
	mesh := topology.NewRing(2)
	b := partition.NewBuilder("recsys_inference", mesh)
	act := b.Parameter("act", []int{e, d}, partition.ReplicatedSharding(2))
	cur := act
	for l := 0; l < layers; l++ {
		w1 := b.Parameter(fmt.Sprintf("w1_%d", l), []int{d, f}, partition.OnDim(2, 0, 0))
		w2 := b.Parameter(fmt.Sprintf("w2_%d", l), []int{f, d}, partition.OnDim(2, 0, 0))
		h := b.Einsum("ed,df->ef", cur, b.AllGather(w1, 0))
		cur = b.Einsum("ef,fd->ed", h, b.AllGather(w2, 0))
	}
	b.Comp.Tuple(cur.Instr)
	return b.Comp
}

// Inference reproduces the §7.1 case study: latency improvement of a
// small model served with 2-way intra-layer model parallelism. The
// overlap feature is force-enabled: the §5.5 estimate conservatively
// assumes loop prologues cannot be hidden, but in a chained multi-layer
// serving graph they overlap the previous layer's computation.
func Inference(spec machine.Spec) (string, Comparison, error) {
	const layers, e, d, f = 8, 2688, 4096, 16384
	base := buildInferenceChain(layers, e, d, f)
	flops := deviceFlops(base)
	bb, err := sim.Simulate(base, 2, spec)
	if err != nil {
		return "", Comparison{}, err
	}
	over := buildInferenceChain(layers, e, d, f)
	opts := core.DefaultOptions(spec)
	opts.UseCostModel = false
	report, err := core.Apply(over, opts)
	if err != nil {
		return "", Comparison{}, err
	}
	ob, err := sim.Simulate(over, 2, spec)
	if err != nil {
		return "", Comparison{}, err
	}
	comp := Comparison{
		Baseline:   Run{Breakdown: bb, DeviceFlops: flops, StepTime: bb.StepTime},
		Overlapped: Run{Breakdown: ob, DeviceFlops: flops, StepTime: ob.StepTime, Report: report},
	}
	out := fmt.Sprintf("Section 7.1: 2-way model-parallel inference latency (%d-layer MLP)\nbaseline %.3f ms  overlapped %.3f ms  improvement %.2fx\n",
		layers, 1e3*bb.StepTime, 1e3*ob.StepTime, comp.Speedup())
	return out, comp, nil
}
