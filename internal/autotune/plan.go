package autotune

import (
	"encoding/json"
	"fmt"
	"time"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/tensor"
)

// PlanVersion pins the serialized Plan schema; bump it whenever a field
// changes meaning so stale artifacts are rejected instead of silently
// misread. The golden test in plan_test.go pins the JSON layout.
const PlanVersion = 1

// Plan is the immutable compiled artifact the serving path executes: the
// fully transformed (partitioned, decomposed, scheduled) program text,
// the knob configuration that produced it, and the calibration the tune
// fitted — everything needed to run the program with zero further
// compilation. A Plan is a pure function of its Fingerprint (program
// shape, machine spec, device count, kernel workers, instrumentation
// toggle), which is exactly what makes it cacheable: the daemon's LRU,
// the on-disk decision cache, and the -plan-out/-plan-in CLI round-trip
// all carry this one artifact.
type Plan struct {
	// Version is PlanVersion at encode time; Decode rejects mismatches.
	Version int `json:"version"`
	// Fingerprint is the autotune cache key the plan was compiled under
	// (see Key).
	Fingerprint string `json:"fingerprint"`
	// Devices is the ring size the program was compiled for.
	Devices int `json:"devices"`
	// SpecName names the machine spec (the spec itself is part of the
	// fingerprint, not the artifact).
	SpecName string `json:"spec_name"`
	// BestName is the winning candidate's label; Baseline marks the
	// untransformed blocking program.
	BestName string `json:"best_name"`
	Baseline bool   `json:"baseline,omitempty"`
	// Knobs is the winning configuration (meaningless when Baseline).
	Knobs core.Knobs `json:"knobs"`
	// Program is the transformed computation in hlo.Format text — the
	// schedule-bearing source of truth the runtime executes.
	Program string `json:"program"`
	// PredictedSec and MeasuredSec are the winner's simulated and
	// measured step times from compile time.
	PredictedSec float64 `json:"predicted_sec"`
	MeasuredSec  float64 `json:"measured_sec"`
	// Calibration is the fitted machine rescaling (identity when the
	// tune did not calibrate).
	Calibration machine.Calibration `json:"calibration"`
	// Created is the compile timestamp (RFC 3339, UTC); empty in golden
	// fixtures.
	Created string `json:"created,omitempty"`
}

// Compile runs the full pipeline — tune (answering from the decision
// cache when warm), apply the winner to a clone, capture the schedule —
// and freezes the result into a Plan. c is not modified.
func Compile(c *hlo.Computation, numDevices int, args [][]*tensor.Tensor, opts Options) (*Plan, error) {
	res, err := Tune(c, numDevices, args, opts)
	if err != nil {
		return nil, err
	}
	return PlanFromResult(c, numDevices, res)
}

// PlanFromResult freezes an already-computed tuning decision into a
// Plan without re-searching: the winner is applied to a clone of c and
// the transformed schedule captured as text. This is the path the CLIs
// use after reporting a Tune, so -plan-out costs one Apply, not a
// second search.
func PlanFromResult(c *hlo.Computation, numDevices int, res *Result) (*Plan, error) {
	transformed := c.Clone()
	if _, err := res.ApplyBest(transformed); err != nil {
		return nil, fmt.Errorf("autotune: applying tuned options: %w", err)
	}
	return &Plan{
		Version:      PlanVersion,
		Fingerprint:  res.Fingerprint,
		Devices:      numDevices,
		SpecName:     res.CalibratedSpec.Name,
		BestName:     res.BestName,
		Baseline:     res.BestIsBaseline,
		Knobs:        res.Best.Knobs(),
		Program:      transformed.Format(),
		PredictedSec: res.PredictedWall,
		MeasuredSec:  res.MeasuredWall,
		Calibration:  res.Calibration,
		Created:      time.Now().UTC().Format(time.RFC3339),
	}, nil
}

// Computation parses the plan's transformed program back into an
// executable computation. Each call returns a fresh graph, so callers
// that share a Plan across goroutines can also choose per-caller
// isolation; the parse is deterministic (Format∘Parse is the identity
// on Format output, pinned by the hlo round-trip tests).
func (p *Plan) Computation() (*hlo.Computation, error) {
	c, err := hlo.Parse(p.Program)
	if err != nil {
		return nil, fmt.Errorf("autotune: plan program does not parse: %w", err)
	}
	return c, nil
}

// Options reconstitutes the plan's pipeline configuration against a
// live machine spec.
func (p *Plan) Options(spec machine.Spec) core.Options { return p.Knobs.Options(spec) }

// EncodeJSON serializes the plan with stable field order and a trailing
// newline, suitable for -plan-out files and HTTP responses.
func (p *Plan) EncodeJSON() ([]byte, error) {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodePlan parses a serialized Plan, rejecting version mismatches and
// artifacts whose embedded program no longer parses — a truncated or
// hand-edited plan must fail loudly here, not misexecute later.
func DecodePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("autotune: plan does not parse: %w", err)
	}
	if p.Version != PlanVersion {
		return nil, fmt.Errorf("autotune: plan version %d, want %d (recompile the plan)", p.Version, PlanVersion)
	}
	if _, err := p.Computation(); err != nil {
		return nil, err
	}
	if p.Devices < 1 {
		return nil, fmt.Errorf("autotune: plan has no device count")
	}
	return &p, nil
}
