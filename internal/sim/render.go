package sim

import (
	"fmt"
	"sort"
	"strings"
)

// RenderTimeline draws the traced execution as a fixed-width ASCII
// gantt: one compute row and one transfer row per device, with time
// bucketed into width columns. Legend:
//
//	#  compute (einsums, fusions, element-wise)
//	C  blocking collective / exposed collective wait
//	.  stall waiting for an asynchronous transfer
//	=  asynchronous transfer in flight (transfer-engine track)
//
// Overlap is visible directly: '=' under '#' is hidden communication;
// '=' under '.' or 'C' is exposed.
func RenderTimeline(events []TraceEvent, width int) string {
	if len(events) == 0 {
		return "(no events)\n"
	}
	if width < 10 {
		width = 10
	}
	end := 0.0
	maxDev := 0
	for _, e := range events {
		if f := e.TS + e.Dur; f > end {
			end = f
		}
		if e.PID > maxDev {
			maxDev = e.PID
		}
	}
	if end == 0 {
		return "(empty timeline)\n"
	}
	bucket := end / float64(width)

	type track struct{ compute, transfer []byte }
	rows := make([]track, maxDev+1)
	for d := range rows {
		rows[d] = track{
			compute:  []byte(strings.Repeat(" ", width)),
			transfer: []byte(strings.Repeat(" ", width)),
		}
	}
	glyph := func(cat string) byte {
		switch cat {
		case "compute":
			return '#'
		case "collective":
			return 'C'
		case "stall":
			return '.'
		case "transfer":
			return '='
		}
		return '?'
	}
	// Paint longer events first so short stalls stay visible on top.
	sorted := append([]TraceEvent(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Dur > sorted[j].Dur })
	for _, e := range sorted {
		row := rows[e.PID].compute
		if e.TID == TraceTIDTransfer {
			row = rows[e.PID].transfer
		}
		lo := int(e.TS / bucket)
		hi := int((e.TS + e.Dur) / bucket)
		if hi >= width {
			hi = width - 1
		}
		for x := lo; x <= hi && x < width; x++ {
			row[x] = glyph(e.Cat)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "time: 0 .. %.3f ms  (one column = %.1f us)\n", end/1e3, bucket)
	b.WriteString("legend: # compute   C collective/wait   . stall   = transfer in flight\n")
	for d := range rows {
		fmt.Fprintf(&b, "dev %2d comp |%s|\n", d, rows[d].compute)
		fmt.Fprintf(&b, "       xfer |%s|\n", rows[d].transfer)
	}
	return b.String()
}
