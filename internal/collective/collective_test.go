package collective

import (
	"math/rand"
	"testing"
	"testing/quick"

	"overlap/internal/tensor"
)

func randShards(seed int64, n, rows, cols int) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Tensor, n)
	for i := range out {
		out[i] = tensor.Rand(rng, rows, cols)
	}
	return out
}

func TestAllGatherConcatenatesInOrder(t *testing.T) {
	a := tensor.Iota(1, 2)
	b := tensor.Scale(tensor.Iota(1, 2), 10)
	got := AllGather([]*tensor.Tensor{a, b}, 0)
	want := tensor.FromValues([]int{2, 2}, []float64{0, 1, 0, 10})
	if !got.Equal(want) {
		t.Fatalf("AllGather = %v", got.Data())
	}
}

func TestAllReduceSums(t *testing.T) {
	in := randShards(1, 3, 2, 2)
	got := AllReduce(in)
	want := tensor.Add(tensor.Add(in[0], in[1]), in[2])
	if !got.Equal(want) {
		t.Fatalf("AllReduce wrong")
	}
	// Inputs must not be mutated.
	fresh := randShards(1, 3, 2, 2)
	for i := range in {
		if !in[i].Equal(fresh[i]) {
			t.Fatal("AllReduce mutated an input")
		}
	}
}

func TestReduceScatterIsAllReduceThenSplit(t *testing.T) {
	in := randShards(2, 4, 8, 3)
	shards := ReduceScatter(in, 0)
	if len(shards) != 4 {
		t.Fatalf("ReduceScatter returned %d shards", len(shards))
	}
	full := AllReduce(in)
	back := tensor.Concat(0, shards...)
	if !back.Equal(full) {
		t.Fatal("ReduceScatter shards do not reassemble the AllReduce")
	}
}

// Property: AllReduce == AllGather along a fresh axis is impossible here,
// but the paper's identity AllReduce = ReduceScatter ∘ AllGather holds:
// gathering the ReduceScatter shards reproduces the AllReduce.
func TestAllReduceEqualsReduceScatterThenAllGather(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		rows := n * (1 + rng.Intn(3))
		in := randShards(seed+7, n, rows, 1+rng.Intn(4))
		rs := ReduceScatter(in, 0)
		ag := AllGather(rs, 0)
		return ag.AllClose(AllReduce(in), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllTranspose(t *testing.T) {
	// Two devices, each with a [2,1] tensor split along axis 0.
	d0 := tensor.FromValues([]int{2, 1}, []float64{1, 2})
	d1 := tensor.FromValues([]int{2, 1}, []float64{3, 4})
	out := AllToAll([]*tensor.Tensor{d0, d1}, 0, 0)
	if !out[0].Equal(tensor.FromValues([]int{2, 1}, []float64{1, 3})) {
		t.Fatalf("AllToAll out[0] = %v", out[0].Data())
	}
	if !out[1].Equal(tensor.FromValues([]int{2, 1}, []float64{2, 4})) {
		t.Fatalf("AllToAll out[1] = %v", out[1].Data())
	}
}

// Property: AllToAll is an involution (applying it twice restores the
// original shards).
func TestAllToAllInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		rows := n * (1 + rng.Intn(2))
		in := randShards(seed+3, n, rows, 1+rng.Intn(3))
		twice := AllToAll(AllToAll(in, 0, 0), 0, 0)
		for i := range in {
			if !twice[i].Equal(in[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteShiftLeft(t *testing.T) {
	in := []*tensor.Tensor{tensor.Scalar(10), tensor.Scalar(11), tensor.Scalar(12)}
	// Circular shift left: {0,2},{1,0},{2,1}.
	out := Permute(in, [][2]int{{0, 2}, {1, 0}, {2, 1}})
	if out[0].At() != 11 || out[1].At() != 12 || out[2].At() != 10 {
		t.Fatalf("Permute shift = %v %v %v", out[0].At(), out[1].At(), out[2].At())
	}
}

func TestPermuteNonTargetGetsZeros(t *testing.T) {
	in := []*tensor.Tensor{tensor.Scalar(5), tensor.Scalar(6)}
	out := Permute(in, [][2]int{{0, 1}})
	if out[0].At() != 0 {
		t.Fatalf("non-target output = %v, want 0", out[0].At())
	}
	if out[1].At() != 5 {
		t.Fatalf("target output = %v, want 5", out[1].At())
	}
}

func TestPermuteDuplicateTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate permute target did not panic")
		}
	}()
	in := []*tensor.Tensor{tensor.Scalar(1), tensor.Scalar(2)}
	Permute(in, [][2]int{{0, 1}, {1, 1}})
}

// Property: a full cyclic permutation applied N times is the identity.
func TestPermuteCycleOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		in := randShards(seed, n, 2, 2)
		pairs := make([][2]int, n)
		for i := range pairs {
			pairs[i] = [2]int{i, (i + n - 1) % n}
		}
		cur := in
		for k := 0; k < n; k++ {
			cur = Permute(cur, pairs)
		}
		for i := range in {
			if !cur[i].Equal(in[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
