package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"overlap/internal/sim"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

func TestShardingBasics(t *testing.T) {
	mesh := topology.NewTorus2D(2, 4)
	s := OnDims(2, []int{0, 1}, []int{0, 1})
	if s.String() != "{ax0,ax1}" {
		t.Fatalf("String = %q", s.String())
	}
	local := s.ShardShape([]int{8, 16}, mesh)
	if local[0] != 4 || local[1] != 4 {
		t.Fatalf("ShardShape = %v, want [4 4]", local)
	}
	if ReplicatedSharding(2).String() != "{*,*}" {
		t.Fatal("replicated string wrong")
	}
	if !ReplicatedSharding(3).IsReplicated() || s.IsReplicated() {
		t.Fatal("IsReplicated wrong")
	}
}

func TestShardingValidate(t *testing.T) {
	mesh := topology.NewTorus2D(2, 4)
	if err := OnDim(2, 0, 0).Validate([]int{8, 8}, mesh); err != nil {
		t.Fatal(err)
	}
	if err := OnDim(2, 0, 0).Validate([]int{7, 8}, mesh); err == nil {
		t.Fatal("indivisible dim accepted")
	}
	if err := OnDim(2, 0, 5).Validate([]int{8, 8}, mesh); err == nil {
		t.Fatal("unknown axis accepted")
	}
	if err := OnDims(2, []int{0, 1}, []int{0, 0}).Validate([]int{8, 8}, mesh); err == nil {
		t.Fatal("axis sharding two dims accepted")
	}
	if err := OnDim(1, 0, 0).Validate([]int{8, 8}, mesh); err == nil {
		t.Fatal("rank mismatch accepted")
	}
}

func TestShardUnshardRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mesh := topology.NewTorus2D(1+rng.Intn(3), 1+rng.Intn(3))
		// Divisible by both axis sizes so every tested sharding is valid.
		rows := mesh.Dim(0) * mesh.Dim(1) * (1 + rng.Intn(3))
		cols := mesh.Dim(0) * mesh.Dim(1) * (1 + rng.Intn(3))
		full := tensor.Rand(rng, rows, cols)
		shardings := []Sharding{
			ReplicatedSharding(2),
			OnDim(2, 0, 0),
			OnDim(2, 1, 1),
			OnDims(2, []int{0, 1}, []int{0, 1}),
			OnDims(2, []int{0, 1}, []int{1, 0}),
		}
		for _, s := range shardings {
			shards := ShardTensor(full, s, mesh)
			back := UnshardTensor(shards, s, full.Shape(), mesh)
			if !back.Equal(full) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestShardTensorReplicatedDimCopies(t *testing.T) {
	mesh := topology.NewRing(2)
	full := tensor.Iota(4, 2)
	shards := ShardTensor(full, ReplicatedSharding(2), mesh)
	if !shards[0].Equal(full) || !shards[1].Equal(full) {
		t.Fatal("replicated sharding must copy the full tensor")
	}
}

func TestUnshardDetectsDivergence(t *testing.T) {
	mesh := topology.NewRing(2)
	a := tensor.Iota(2, 2)
	b := tensor.Scale(tensor.Iota(2, 2), 3)
	defer func() {
		if recover() == nil {
			t.Fatal("diverged replicated shards not detected")
		}
	}()
	UnshardTensor([]*tensor.Tensor{a, b}, ReplicatedSharding(2), []int{2, 2}, mesh)
}

// buildMLP1D lowers the Fig 2 strategy: one mesh axis, activations
// sharded on batch, weights sharded on their first dimension and
// AllGathered before each einsum.
func buildMLP1D(mesh *topology.Mesh, b, f, h int) (*Builder, *Value, [3]*Value) {
	bld := NewBuilder("mlp1d", mesh)
	act := bld.Parameter("act", []int{b, f}, OnDim(2, 0, 0))
	w1 := bld.Parameter("w1", []int{f, h}, OnDim(2, 0, 0))
	w2 := bld.Parameter("w2", []int{h, f}, OnDim(2, 0, 0))
	w1g := bld.AllGather(w1, 0)
	h1 := bld.Einsum("bf,fh->bh", act, w1g)
	w2g := bld.AllGather(w2, 0)
	out := bld.Einsum("bh,hf->bf", h1, w2g)
	return bld, out, [3]*Value{act, w1, w2}
}

func TestMLP1DMatchesLogical(t *testing.T) {
	const n, B, F, H = 4, 8, 12, 16
	mesh := topology.NewRing(n)
	bld, out, params := buildMLP1D(mesh, B, F, H)
	if err := bld.Comp.Verify(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	actF := tensor.Rand(rng, B, F)
	w1F := tensor.Rand(rng, F, H)
	w2F := tensor.Rand(rng, H, F)
	args := [][]*tensor.Tensor{
		ShardTensor(actF, params[0].Sharding, mesh),
		ShardTensor(w1F, params[1].Sharding, mesh),
		ShardTensor(w2F, params[2].Sharding, mesh),
	}
	got, err := sim.Interpret(bld.Comp, n, args)
	if err != nil {
		t.Fatal(err)
	}
	logical := tensor.Einsum("bh,hf->bf", tensor.Einsum("bf,fh->bh", actF, w1F), w2F)
	full := UnshardTensor(got, out.Sharding, out.Logical, mesh)
	if !full.AllClose(logical, 1e-10) {
		t.Fatalf("1D partitioned MLP differs from logical result by %v", full.MaxDifference(logical))
	}
}

// buildMLP2D lowers the Fig 3 strategy on an [M,N] mesh: activations
// [B,F] sharded (B:y, F:x); weights 2D-sharded; both einsum inputs
// AllGathered along different axes; the second einsum contracts a
// both-sharded dimension and ReduceScatters the partial result along x.
func buildMLP2D(mesh *topology.Mesh, b, f, h int) (*Builder, *Value, [3]*Value) {
	const x, y = 0, 1
	bld := NewBuilder("mlp2d", mesh)
	act := bld.Parameter("act", []int{b, f}, OnDims(2, []int{0, 1}, []int{y, x}))
	w1 := bld.Parameter("w1", []int{f, h}, OnDims(2, []int{0, 1}, []int{y, x}))
	w2 := bld.Parameter("w2", []int{h, f}, OnDim(2, 0, x))

	actG := bld.AllGather(act, 1)            // unshard F (was on x)
	w1g := bld.AllGather(w1, 0)              // unshard F (was on y)
	h1 := bld.Einsum("bf,fh->bh", actG, w1g) // [B/Y, H/X], sharded (B:y, H:x)

	// Second einsum contracts H, which both operands shard on x → the
	// result is a partial sum over x, resolved by a subgroup
	// ReduceScatter along x that also shards F (Fig 3).
	part := bld.Einsum("bh,hf->bf", h1, w2)
	out := bld.ReduceScatter(part, 1, x)
	return bld, out, [3]*Value{act, w1, w2}
}

func TestMLP2DMatchesLogical(t *testing.T) {
	const M, N, B, F, H = 2, 3, 6, 12, 4
	mesh := topology.NewTorus2D(M, N)
	bld, out, params := buildMLP2D(mesh, B, F, H)
	if err := bld.Comp.Verify(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	actF := tensor.Rand(rng, B, F)
	w1F := tensor.Rand(rng, F, H)
	w2F := tensor.Rand(rng, H, F)
	args := [][]*tensor.Tensor{
		ShardTensor(actF, params[0].Sharding, mesh),
		ShardTensor(w1F, params[1].Sharding, mesh),
		ShardTensor(w2F, params[2].Sharding, mesh),
	}
	got, err := sim.Interpret(bld.Comp, mesh.NumDevices(), args)
	if err != nil {
		t.Fatal(err)
	}
	logical := tensor.Einsum("bh,hf->bf", tensor.Einsum("bf,fh->bh", actF, w1F), w2F)
	full := UnshardTensor(got, out.Sharding, out.Logical, mesh)
	if !full.AllClose(logical, 1e-10) {
		t.Fatalf("2D partitioned MLP differs from logical result by %v", full.MaxDifference(logical))
	}
}

func TestEinsumPropagationPartial(t *testing.T) {
	mesh := topology.NewRing(4)
	bld := NewBuilder("partial", mesh)
	a := bld.Parameter("a", []int{8, 8}, OnDim(2, 1, 0))
	b := bld.Parameter("b", []int{8, 8}, OnDim(2, 0, 0))
	p := bld.Einsum("ik,kj->ij", a, b)
	if !p.IsPartial() || p.Partial[0] != 0 {
		t.Fatalf("both-sharded contraction must be partial, got %+v", p)
	}
	if !p.Sharding.IsReplicated() {
		t.Fatalf("output sharding = %v, want replicated", p.Sharding)
	}
	red := bld.AllReduce(p, 0)
	if red.IsPartial() {
		t.Fatal("AllReduce did not clear partial state")
	}
}

func TestEinsumPropagationErrors(t *testing.T) {
	mesh := topology.NewRing(4)
	cases := []func(b *Builder){
		// Contracted label sharded on one side only.
		func(b *Builder) {
			a := b.Parameter("a", []int{8, 8}, OnDim(2, 1, 0))
			c := b.Parameter("b", []int{8, 8}, ReplicatedSharding(2))
			b.Einsum("ik,kj->ij", a, c)
		},
		// Partial operand fed into another einsum.
		func(b *Builder) {
			a := b.Parameter("a", []int{8, 8}, OnDim(2, 1, 0))
			c := b.Parameter("b", []int{8, 8}, OnDim(2, 0, 0))
			p := b.Einsum("ik,kj->ij", a, c)
			d := b.Parameter("d", []int{8, 8}, ReplicatedSharding(2))
			b.Einsum("ik,kj->ij", p, d)
		},
		// AllGather of a replicated dim.
		func(b *Builder) {
			a := b.Parameter("a", []int{8, 8}, ReplicatedSharding(2))
			b.AllGather(a, 0)
		},
		// ReduceScatter without partial state.
		func(b *Builder) {
			a := b.Parameter("a", []int{8, 8}, ReplicatedSharding(2))
			b.ReduceScatter(a, 0, 0)
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f(NewBuilder("err", mesh))
		}()
	}
}

func TestAllToAllReshard(t *testing.T) {
	// Move sharding from dim 1 to dim 0 with an AllToAll, then verify
	// against ShardTensor of the target sharding.
	const n = 2
	mesh := topology.NewRing(n)
	bld := NewBuilder("a2a", mesh)
	v := bld.Parameter("v", []int{4, 4}, OnDim(2, 1, 0))
	moved := bld.AllToAll(v, 0, 1, 0)
	if moved.Sharding.DimAxis(0) != 0 || moved.Sharding.DimAxis(1) != Replicated {
		t.Fatalf("resharded = %v", moved.Sharding)
	}
	full := tensor.Iota(4, 4)
	args := [][]*tensor.Tensor{ShardTensor(full, v.Sharding, mesh)}
	got, err := sim.Interpret(bld.Comp, n, args)
	if err != nil {
		t.Fatal(err)
	}
	want := ShardTensor(full, moved.Sharding, mesh)
	for d := 0; d < n; d++ {
		if !got[d].Equal(want[d]) {
			t.Fatalf("device %d after AllToAll = %v, want %v", d, got[d].Data(), want[d].Data())
		}
	}
}

// TestRandomizedMLPStrategies sweeps random mesh shapes and layer sizes
// through both partitioning strategies and checks the partitioned
// program against the logical two-layer MLP — the generalization of the
// fixed Fig 2 / Fig 3 tests.
func TestRandomizedMLPStrategies(t *testing.T) {
	for seed := int64(300); seed < 320; seed++ {
		rng := rand.New(rand.NewSource(seed))

		// 1D strategy on a random ring.
		n := 2 + rng.Intn(5)
		b := n * (1 + rng.Intn(3))
		f := n * (1 + rng.Intn(3))
		h := n * (1 + rng.Intn(3))
		mesh := topology.NewRing(n)
		bld, out, params := buildMLP1D(mesh, b, f, h)
		checkAgainstLogical(t, bld, out, params, mesh, b, f, h, seed)

		// 2D strategy on a random torus.
		mx := 1 + rng.Intn(3)
		my := 1 + rng.Intn(3)
		mesh2 := topology.NewTorus2D(mx, my)
		lcm := mx * my
		b2 := my * (1 + rng.Intn(2))
		f2 := lcm * (1 + rng.Intn(2))
		h2 := mx * (1 + rng.Intn(2))
		bld2, out2, params2 := buildMLP2D(mesh2, b2, f2, h2)
		checkAgainstLogical(t, bld2, out2, params2, mesh2, b2, f2, h2, seed)
	}
}

func checkAgainstLogical(t *testing.T, bld *Builder, out *Value, params [3]*Value, mesh *topology.Mesh, b, f, h int, seed int64) {
	t.Helper()
	if err := bld.Comp.Verify(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	rng := rand.New(rand.NewSource(seed + 1000))
	actF := tensor.Rand(rng, b, f)
	w1F := tensor.Rand(rng, f, h)
	w2F := tensor.Rand(rng, h, f)
	args := [][]*tensor.Tensor{
		ShardTensor(actF, params[0].Sharding, mesh),
		ShardTensor(w1F, params[1].Sharding, mesh),
		ShardTensor(w2F, params[2].Sharding, mesh),
	}
	got, err := sim.Interpret(bld.Comp, mesh.NumDevices(), args)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	logical := tensor.Einsum("bh,hf->bf", tensor.Einsum("bf,fh->bh", actF, w1F), w2F)
	full := UnshardTensor(got, out.Sharding, out.Logical, mesh)
	if !full.AllClose(logical, 1e-9) {
		t.Fatalf("seed %d: partitioned MLP differs by %v (mesh %v, b=%d f=%d h=%d)",
			seed, full.MaxDifference(logical), mesh, b, f, h)
	}
}
