package train_test

import (
	"context"
	"strings"
	"testing"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/obs"
	"overlap/internal/sim"
	"overlap/internal/tensor"
	"overlap/internal/train"
)

func testConfig(s train.Strategy) train.Config {
	return train.Config{Devices: 4, Layers: 2, Model: 8, Hidden: 16, Tokens: 16, Strategy: s}
}

// overlapOptions is the fully-enabled pipeline for training programs:
// cost model off (miniature shapes never clear the modeled threshold)
// and gather rematerialization on (the backward weight-grad einsum
// shares the forward gather; duplicating it restores the
// single-consumer pattern the decomposition matches).
func overlapOptions() core.Options {
	o := core.DefaultOptions(machine.TPUv4())
	o.UseCostModel = false
	o.RematerializeGathers = true
	return o
}

func countOps(c *hlo.Computation, op hlo.OpCode) int {
	n := 0
	for _, in := range c.Instructions() {
		if in.Op == op {
			n++
		}
	}
	return n
}

// TestBuildStructure pins the §2.2 shape of each strategy's program:
// Megatron's forward AllGathers get transposed into backward
// ReduceScatters, DDP's replicated weights need per-weight AllReduces.
func TestBuildStructure(t *testing.T) {
	mega, err := train.Build(testConfig(train.StrategyMegatron))
	if err != nil {
		t.Fatal(err)
	}
	w := mega.Config.NumWeights()
	if got := countOps(mega.Comp, hlo.OpAllGather); got < w {
		t.Errorf("megatron: %d AllGathers, want >= %d (one per weight forward)", got, w)
	}
	if got := countOps(mega.Comp, hlo.OpReduceScatter); got != w {
		t.Errorf("megatron: %d ReduceScatters, want %d (one per weight gradient)", got, w)
	}
	if got := countOps(mega.Comp, hlo.OpAllReduce); got != 0 {
		t.Errorf("megatron: %d AllReduces, want 0", got)
	}

	ddp, err := train.Build(testConfig(train.StrategyDDP))
	if err != nil {
		t.Fatal(err)
	}
	if got := countOps(ddp.Comp, hlo.OpAllReduce); got != w {
		t.Errorf("ddp: %d AllReduces, want %d (one per weight gradient)", got, w)
	}
	named := 0
	for _, in := range ddp.Comp.Instructions() {
		if strings.HasPrefix(in.Name, "gsum.") {
			named++
		}
	}
	if named != w {
		t.Errorf("ddp: %d gsum.* gradient reductions, want %d", named, w)
	}
	if got := countOps(ddp.Comp, hlo.OpAllGather); got != 0 {
		t.Errorf("ddp: %d AllGathers in a collective-free forward, want 0", got)
	}
}

// TestLossDecreases runs real SGD steps per strategy, bitwise-checked
// against the interpreter, and requires a decreasing loss trajectory.
func TestLossDecreases(t *testing.T) {
	for _, s := range []train.Strategy{train.StrategyMegatron, train.StrategyDDP} {
		res, err := train.Run(context.Background(), testConfig(s), train.Options{
			Steps: 4, Check: true, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if len(res.Steps) != 4 {
			t.Fatalf("%s: %d steps, want 4", s, len(res.Steps))
		}
		for i, st := range res.Steps {
			if !st.Checked {
				t.Fatalf("%s: step %d not checked", s, i)
			}
			if i > 0 && st.Loss >= res.Steps[i-1].Loss {
				t.Fatalf("%s: loss did not decrease at step %d: %v", s, i, lossesOf(res))
			}
		}
		t.Logf("%s losses: %v", s, lossesOf(res))
	}
}

func lossesOf(res *train.Result) []float64 {
	out := make([]float64, len(res.Steps))
	for i, st := range res.Steps {
		out[i] = st.Loss
	}
	return out
}

// trainVariant is one (pipeline, label) cell of the bitwise grid.
type trainVariant struct {
	name string
	opts *core.Options
}

func megatronVariants() []trainVariant {
	base := overlapOptions()
	topdown := overlapOptions()
	topdown.Scheduler = core.SchedulerTopDown
	plain := overlapOptions()
	plain.Unroll, plain.Bidirectional = false, false
	noSched := overlapOptions()
	noSched.Scheduler = core.SchedulerNone
	return []trainVariant{
		{"baseline", nil},
		{"overlap", &base},
		{"topdown", &topdown},
		{"no-unroll", &plain},
		{"no-schedule", &noSched},
	}
}

func ddpVariants() []trainVariant {
	split := overlapOptions()
	split.SplitAllReduce = true
	bucketBig := overlapOptions()
	bucketBig.GradBucketBytes = 1 << 20
	bucketSmall := overlapOptions()
	bucketSmall.GradBucketBytes = 600
	bucketNoSched := overlapOptions()
	bucketNoSched.GradBucketBytes = 1 << 20
	bucketNoSched.Scheduler = core.SchedulerNone
	return []trainVariant{
		{"baseline", nil},
		{"split-allreduce", &split},
		{"bucket-1M", &bucketBig},
		{"bucket-600B", &bucketSmall},
		{"bucket-no-schedule", &bucketNoSched},
	}
}

// TestGradientsBitIdenticalAcrossConfigs is the dyadic-exactness
// acceptance: every overlap configuration — rolled baseline, decomposed
// loops, bucketed ring all-reduce — and every kernel worker count must
// produce byte-identical first-step gradients and updated weights. Each
// step is additionally checked bitwise against the interpreter, and the
// loss trajectories must agree across configs to the last bit at step
// one and to float tolerance afterwards.
func TestGradientsBitIdenticalAcrossConfigs(t *testing.T) {
	defer tensor.SetKernelWorkers(0)
	for _, tc := range []struct {
		strategy train.Strategy
		variants []trainVariant
	}{
		{train.StrategyMegatron, megatronVariants()},
		{train.StrategyDDP, ddpVariants()},
	} {
		var wantGrad, wantWeight string
		var wantLoss []float64
		for _, v := range tc.variants {
			for _, workers := range []int{1, 3} {
				tensor.SetKernelWorkers(workers)
				res, err := train.Run(context.Background(), testConfig(tc.strategy), train.Options{
					Pipeline: v.opts, Steps: 2, Check: true, Seed: 9,
				})
				if err != nil {
					t.Fatalf("%s/%s: %v", tc.strategy, v.name, err)
				}
				first := res.Steps[0]
				if wantGrad == "" {
					wantGrad, wantWeight, wantLoss = first.GradDigest, first.WeightDigest, lossesOf(res)
					continue
				}
				if first.GradDigest != wantGrad {
					t.Errorf("%s/%s kw=%d: step-1 gradient digest diverges", tc.strategy, v.name, workers)
				}
				if first.WeightDigest != wantWeight {
					t.Errorf("%s/%s kw=%d: step-1 weight digest diverges", tc.strategy, v.name, workers)
				}
				for i, l := range lossesOf(res) {
					if d := l - wantLoss[i]; d > 1e-9 || d < -1e-9 {
						t.Errorf("%s/%s kw=%d: step-%d loss %v != %v", tc.strategy, v.name, workers, i, l, wantLoss[i])
					}
				}
			}
		}
	}
}

// attributionFor applies opts to cfg's program and attributes a
// deterministic simulated trace — the modeled analogue of the runtime's
// span stream, same machinery as the paper's Figure 9 analysis.
func attributionFor(t *testing.T, cfg train.Config, opts core.Options) (obs.AttributionReport, *train.Program, core.Report) {
	t.Helper()
	prog, err := train.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := core.Apply(prog.Comp, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, events, err := sim.SimulateTrace(prog.Comp, cfg.Devices, machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	return sim.Attribute(events), prog, report
}

// TestTrainOverlapAttribution is the issue's attribution acceptance: on
// the miniature multi-layer model at 4 devices, at least half of the
// gradient-collective wire time must hide under backward computation.
//
// For DDP every collective in the transformed program IS a gradient
// bucket, so the aggregate OverlapEfficiency is exactly the
// gradient-collective hidden fraction; the per-bucket rollup must also
// show a partially-hidden bucket whose hiding spans are einsum work.
func TestTrainOverlapAttribution(t *testing.T) {
	cfg := testConfig(train.StrategyDDP)
	cfg.Model, cfg.Hidden, cfg.Tokens, cfg.Layers = 32, 128, 64, 2
	opts := overlapOptions()
	opts.GradBucketBytes = 16 << 10
	rep, _, report := attributionFor(t, cfg, opts)
	if len(report.Buckets) < 2 {
		t.Fatalf("want >= 2 gradient buckets, got %+v", report.Buckets)
	}
	if eff := rep.OverlapEfficiency(); eff < 0.5 {
		t.Fatalf("gradient-collective overlap efficiency %.2f < 0.5\n%s", eff, rep.Render())
	}
	buckets := rep.GroupBy(train.BucketKey)
	sawHidden := false
	for _, b := range buckets {
		if !strings.HasPrefix(b.Name, "gbkt") {
			t.Errorf("non-bucket collective %q in a bucketed DDP program", b.Name)
			continue
		}
		if b.Hidden > 0 && len(b.Under) > 0 {
			sawHidden = true
		}
	}
	if !sawHidden {
		t.Fatalf("no bucket reports hidden wire time:\n%s", rep.Render())
	}
}

// TestMegatronBackwardHidesReduceScatter: the Megatron path's backward
// ReduceScatters, decomposed into looped CollectiveEinsums, must also
// clear the 50% aggregate bar, with einsum spans doing the hiding.
func TestMegatronBackwardHidesReduceScatter(t *testing.T) {
	cfg := testConfig(train.StrategyMegatron)
	cfg.Model, cfg.Hidden, cfg.Tokens, cfg.Layers = 32, 128, 64, 2
	rep, _, _ := attributionFor(t, cfg, overlapOptions())
	if eff := rep.OverlapEfficiency(); eff < 0.5 {
		t.Fatalf("megatron overlap efficiency %.2f < 0.5\n%s", eff, rep.Render())
	}
	hidden := false
	for _, a := range rep.Collectives {
		if a.Hidden > 0 {
			for _, u := range a.Under {
				if strings.Contains(u.Name, "einsum") || strings.Contains(u.Name, "fusion") {
					hidden = true
				}
			}
		}
	}
	if !hidden {
		t.Fatalf("no collective hidden under einsum compute:\n%s", rep.Render())
	}
}
