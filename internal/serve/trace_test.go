package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"overlap/internal/obs"
)

// getTrace fetches GET /v1/runs/{id} and decodes the artifact.
func getTrace(t *testing.T, ts *httptest.Server, id string) *obs.RunTrace {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/runs/%s: status %d", id, resp.StatusCode)
	}
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	trace, err := obs.DecodeRunTrace(raw)
	if err != nil {
		t.Fatalf("trace does not decode: %v", err)
	}
	return trace
}

// checkWireVerdicts asserts what /v1/runs/{id} promises: every wire
// span carries a verdict consistent with obs.Attribute over the same
// spans — the artifact's stamps are the analyzer's conclusions, not a
// second opinion.
func checkWireVerdicts(t *testing.T, trace *obs.RunTrace) {
	t.Helper()
	if trace.Attribution == nil {
		t.Fatal("trace has no attribution report")
	}
	spans := make([]obs.Span, 0, len(trace.Spans))
	for _, s := range trace.Spans {
		spans = append(spans, obs.Span{
			Device: s.Device, Track: s.Track, Cat: s.Cat, Name: s.Name,
			Start: s.StartMS / 1e3, Dur: s.DurMS / 1e3,
		})
	}
	rep := obs.Attribute(spans)
	byName := map[string]obs.Attribution{}
	for _, a := range rep.Collectives {
		byName[a.Name] = a
	}
	wire := 0
	for _, s := range trace.Spans {
		isWire := (s.Track == obs.TrackTransfer && s.Cat == obs.CatTransfer) ||
			(s.Track == obs.TrackCompute && s.Cat == obs.CatCollective)
		if !isWire {
			continue
		}
		wire++
		a, ok := byName[s.Name]
		if !ok {
			t.Errorf("%s: wire span not in re-derived attribution", s.Name)
			continue
		}
		want := obs.VerdictPartial
		switch {
		case a.Blocking || a.Hidden == 0:
			want = obs.VerdictExposed
		case a.Exposed <= 1e-12*a.Wire:
			want = obs.VerdictHidden
		}
		if s.Verdict != want {
			t.Errorf("%s: span verdict %q, attribution derives %q", s.Name, s.Verdict, want)
		}
	}
	if wire == 0 {
		t.Error("trace has no wire spans to attribute")
	}
}

// TestServeRunTraceEndpoints drives the acceptance criterion: a served
// run returns a run ID, /v1/runs lists it, /v1/runs/{id} returns a
// trace whose wire spans carry attribution consistent with
// obs.Attribute — for both the layer ("run") and "train" scenarios —
// and the Chrome format renders from the same artifact.
func TestServeRunTraceEndpoints(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	reqs := []struct {
		scenario string
		req      Request
	}{
		{"run", miniatureRequest()},
		{"train", Request{Model: "GPT_32B", Devices: 4, Dim: 2, Scenario: "train", Layers: 1}},
	}
	for _, tc := range reqs {
		rr, _, _, err := postRun(ts, tc.req)
		if err != nil {
			t.Fatalf("%s: %v", tc.scenario, err)
		}
		if rr.RunID == "" {
			t.Fatalf("%s: response carries no run_id", tc.scenario)
		}

		trace := getTrace(t, ts, rr.RunID)
		if trace.ID != rr.RunID {
			t.Errorf("trace id %s, response said %s", trace.ID, rr.RunID)
		}
		if trace.Scenario != tc.scenario {
			t.Errorf("trace scenario %q, want %q", trace.Scenario, tc.scenario)
		}
		if trace.Status != obs.StatusOK {
			t.Errorf("%s: trace status %q", tc.scenario, trace.Status)
		}
		if len(trace.Stages) != 4 {
			t.Errorf("%s: %d stages, want queue/plan/admission/run", tc.scenario, len(trace.Stages))
		}
		checkWireVerdicts(t, trace)

		// Chrome export from the same artifact.
		resp, err := http.Get(ts.URL + "/v1/runs/" + rr.RunID + "?format=chrome")
		if err != nil {
			t.Fatal(err)
		}
		var chrome struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
			Metadata    map[string]any    `json:"metadata"`
		}
		err = json.NewDecoder(resp.Body).Decode(&chrome)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: chrome format does not parse: %v", tc.scenario, err)
		}
		if chrome.Metadata["run_id"] != rr.RunID {
			t.Errorf("%s: chrome metadata run_id %v", tc.scenario, chrome.Metadata["run_id"])
		}
		if len(chrome.TraceEvents) != len(trace.Spans)+len(trace.Stages) {
			t.Errorf("%s: chrome has %d events, artifact has %d spans + %d stages",
				tc.scenario, len(chrome.TraceEvents), len(trace.Spans), len(trace.Stages))
		}
	}

	// /v1/runs lists both, newest first.
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Runs []RunSummary `json:"runs"`
		Size int          `json:"size"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if listing.Size < 2 || len(listing.Runs) != listing.Size {
		t.Fatalf("listing has %d runs (size %d), want >= 2", len(listing.Runs), listing.Size)
	}
	if listing.Runs[0].Scenario != "train" {
		t.Errorf("listing is not newest-first: leads with scenario %q", listing.Runs[0].Scenario)
	}

	// Unknown IDs and bad formats answer 4xx, not 5xx.
	if resp, err := http.Get(ts.URL + "/v1/runs/r-does-not-exist"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown run id: status %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestServeFailedRunTrace pins the failure path: an injected-fault run
// answers 5xx with the run ID in the body, its trace is retrievable
// with status "failed" and the full queue/plan/admission/run breakdown,
// and the failed-run histogram sees it.
func TestServeFailedRunTrace(t *testing.T) {
	cfg := testConfig()
	cfg.DebugFaults = true
	_, ts := newTestServer(t, cfg)

	// Warm the plan first so the failure is a run failure, not a compile
	// failure.
	if _, _, _, err := postRun(ts, miniatureRequest()); err != nil {
		t.Fatal(err)
	}

	before := svFailedRunSeconds.Count()
	req := miniatureRequest()
	req.Fault = "crash:dev:1"
	req.DeadlineMS = 30000
	_, status, raw, err := postRun(ts, req)
	if err == nil || status != http.StatusServiceUnavailable {
		t.Fatalf("injected crash answered status %d, want 503", status)
	}
	var body struct {
		Error    string `json:"error"`
		RunID    string `json:"run_id"`
		RunError *struct {
			Phase string `json:"phase"`
			RunID string `json:"run_id"`
		} `json:"run_error"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("5xx body does not parse: %v\n%s", err, raw)
	}
	if body.RunID == "" {
		t.Fatal("5xx body carries no run_id")
	}
	if body.RunError == nil || body.RunError.RunID != body.RunID {
		t.Errorf("run_error.run_id does not match body run_id %s", body.RunID)
	}
	if !strings.Contains(body.Error, "[run "+body.RunID+"]") {
		t.Errorf("error string %q does not carry the run id", body.Error)
	}

	trace := getTrace(t, ts, body.RunID)
	if trace.Status != obs.StatusFailed {
		t.Errorf("failed run's trace has status %q", trace.Status)
	}
	if trace.Error == nil || trace.Error.Cause == "" {
		t.Error("failed trace carries no error attribution")
	}
	if len(trace.Stages) != 4 {
		t.Errorf("failed trace has %d stages, want the full breakdown", len(trace.Stages))
	}
	if got := svFailedRunSeconds.Count() - before; got != 1 {
		t.Errorf("failed-run histogram count moved by %d, want 1", got)
	}
}

// TestServeTraceDir verifies the durable twin: with TraceDir set, every
// recorded run also lands as <dir>/<id>.json and decodes.
func TestServeTraceDir(t *testing.T) {
	cfg := testConfig()
	cfg.TraceDir = t.TempDir()
	_, ts := newTestServer(t, cfg)

	rr, _, _, err := postRun(ts, miniatureRequest())
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(cfg.TraceDir, rr.RunID+".json"))
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	trace, err := obs.DecodeRunTrace(data)
	if err != nil {
		t.Fatalf("trace file does not decode: %v", err)
	}
	if trace.ID != rr.RunID {
		t.Errorf("trace file id %s, want %s", trace.ID, rr.RunID)
	}
}

// TestServeRunIDSanitized pins the trace endpoint's path-traversal
// defense: the run id from the URL reaches a filepath.Join against
// TraceDir (the disk-fallback read), so anything that is not exactly an
// obs.NewRunID — "..", separators, encoded separators, hex of the wrong
// length or case — must 404 before any filesystem access. The handler
// is driven directly so mux path cleaning cannot mask a weak check.
func TestServeRunIDSanitized(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	cfg.TraceDir = filepath.Join(dir, "traces")
	if err := os.Mkdir(cfg.TraceDir, 0o755); err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// A trace-shaped secret OUTSIDE TraceDir: a traversal that slips
	// through the id check would serve it with a 200.
	secret := &obs.RunTrace{Version: obs.RunTraceVersion, ID: "r-aaaaaaaaaaaaaaaa", Model: "OUT-OF-DIR-SECRET"}
	data, err := secret.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "secret.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{
		"../secret",               // plain traversal
		"..%2fsecret",             // encoded separator (stays raw when the mux is bypassed)
		"..",                      // parent directory
		"secret",                  // wrong shape entirely
		"r-AAAAAAAAAAAAAAAA",      // uppercase hex is not what NewRunID mints
		"r-aaaaaaaaaaaaaaa",       // 15 hex digits
		"r-aaaaaaaaaaaaaaaaa",     // 17 hex digits
		"r-aaaaaaaaaaaaaaaa/x",    // suffixed path segment
		"r-aaaaaaaaaaaaaaaa.json", // extension smuggling
	} {
		r := httptest.NewRequest(http.MethodGet, "/v1/runs/"+id, nil)
		// Undo the parser's own normalization so the handler sees the
		// hostile id verbatim, as it would from a client that does not
		// clean paths.
		r.URL.Path = "/v1/runs/" + id
		w := httptest.NewRecorder()
		s.handleRunByID(w, r)
		if w.Code != http.StatusNotFound {
			t.Errorf("id %q: status %d, want 404", id, w.Code)
		}
		if strings.Contains(w.Body.String(), secret.Model) {
			t.Errorf("id %q: response leaked the out-of-dir artifact", id)
		}
	}

	// The disk fallback itself works for a well-formed id: a trace
	// present only in TraceDir (e.g. evicted from the recorder) is
	// served from its durable twin.
	inside := &obs.RunTrace{Version: obs.RunTraceVersion, ID: "r-0123456789abcdef"}
	data, err = inside.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cfg.TraceDir, inside.ID+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodGet, "/v1/runs/"+inside.ID, nil)
	w := httptest.NewRecorder()
	s.handleRunByID(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("disk fallback: status %d, want 200 (body %s)", w.Code, w.Body.String())
	}
	got, err := obs.DecodeRunTrace(w.Body.Bytes())
	if err != nil {
		t.Fatalf("disk fallback body does not decode: %v", err)
	}
	if got.ID != inside.ID {
		t.Fatalf("disk fallback served trace %q, want %q", got.ID, inside.ID)
	}
}
