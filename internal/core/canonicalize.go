package core

import (
	"overlap/internal/hlo"
)

// CanonicalizeAllReduce rewrites each AllReduce into the equivalent
// ReduceScatter followed by AllGather (§2.1: "AllReduce can be
// considered as a ReduceScatter followed by an AllGather"). On its own
// the pair costs the same wire time; its value is that both halves are
// decomposition targets — the ReduceScatter can pair with a producing
// einsum and the AllGather with a consuming one — where the fused
// AllReduce pairs with neither. The split needs a dimension divisible
// by the group size; AllReduces without one are left alone.
//
// It returns the number of AllReduces rewritten.
func CanonicalizeAllReduce(c *hlo.Computation) int {
	rewritten := 0
	c.WithRootPreserved(func() {
		for _, in := range c.Instructions() {
			if in.Op != hlo.OpAllReduce {
				continue
			}
			g := len(in.Groups[0])
			axis := -1
			for dim, size := range in.Shape {
				if g > 0 && size%g == 0 {
					axis = dim
					break
				}
			}
			if axis < 0 || g <= 1 {
				continue
			}
			rs := c.ReduceScatter(in.Operands[0], axis, in.Groups)
			ag := c.AllGather(rs, axis, in.Groups)
			c.ReplaceAllUsesWith(in, ag)
			rewritten++
		}
		c.ScheduleStableTopological()
		c.RemoveDeadCode()
	})
	return rewritten
}

// RematerializeGathers gives every user of a multi-consumer AllGather
// its own copy of the gather. Backward passes naturally share the
// forward pass's gathered operands (the weight gradient reuses the
// gathered activation), which both pins a large buffer across the whole
// step and hides the AllGather from the decomposition's
// single-consumer pattern; re-gathering per consumer is the standard
// memory-saving choice and restores one decomposable site per einsum.
//
// It returns the number of gathers duplicated.
func RematerializeGathers(c *hlo.Computation) int {
	duplicated := 0
	c.WithRootPreserved(func() {
		for _, in := range c.Instructions() {
			if in.Op != hlo.OpAllGather || in.NumUsers() <= 1 {
				continue
			}
			for _, u := range in.Users() {
				clone := c.AllGather(in.Operands[0], in.CollectiveAxis, in.Groups)
				u.ReplaceOperand(in, clone)
				duplicated++
			}
		}
		c.ScheduleStableTopological()
		c.RemoveDeadCode()
	})
	return duplicated
}
