package obs_test

// Acceptance test for the overlap-attribution analyzer on a real
// program: the decomposed + scheduled miniature GPT ring must show
// collectives hidden under the partial einsums of the decomposition,
// while the rolled blocking baseline must show its collectives exposed.
// This is the per-op analogue of the paper's Figure 9, asserted.

import (
	"testing"

	"overlap/internal/core"
	"overlap/internal/machine"
	"overlap/internal/models"
	"overlap/internal/obs"
	"overlap/internal/sim"
)

// gptRingAttribution builds the miniature GPT layer step, applies the
// given pipeline options, and attributes its simulated trace.
func gptRingAttribution(t *testing.T, devices int, configure func(*core.Options) bool) obs.AttributionReport {
	t.Helper()
	cfg, err := models.Miniature(models.Table2()[0], devices, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := models.BuildLayerStep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions(machine.TPUv4())
	if configure(&opts) {
		if _, err := core.Apply(c, opts); err != nil {
			t.Fatal(err)
		}
	}
	_, events, err := sim.SimulateTrace(c, devices, machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	return sim.Attribute(events)
}

func TestAttributionDecomposedHidesRolledExposes(t *testing.T) {
	const devices = 4

	decomposed := gptRingAttribution(t, devices, func(o *core.Options) bool {
		o.UseCostModel = false // miniature shapes would not pass the full-size gate
		return true
	})
	rolled := gptRingAttribution(t, devices, func(o *core.Options) bool {
		*o = core.Options{Spec: o.Spec, Rolled: true, UseCostModel: false, Scheduler: core.SchedulerNone}
		return true
	})

	// The decomposed schedule must hide at least one collective's wire
	// time majority under compute.
	hidden := 0
	for _, a := range decomposed.Collectives {
		if a.Wire > 0 && a.HiddenFraction() >= 0.5 {
			hidden++
			if len(a.Under) == 0 {
				t.Errorf("collective %s is %0.f%% hidden but attributes no compute spans",
					a.Name, 100*a.HiddenFraction())
			}
		}
	}
	if hidden == 0 {
		t.Fatalf("decomposed program hides no collective >= 50%%:\n%s", decomposed.Render())
	}

	// The rolled baseline keeps blocking permutes: every collective with
	// wire time must be >= 90% exposed (in fact 100%).
	if len(rolled.Collectives) == 0 {
		t.Fatal("rolled program attributed no collectives")
	}
	for _, a := range rolled.Collectives {
		if a.Wire > 0 && a.ExposedFraction() < 0.9 {
			t.Errorf("rolled collective %s only %0.1f%% exposed", a.Name, 100*a.ExposedFraction())
		}
	}

	// And the aggregate scalar must order the two programs correctly.
	if decomposed.OverlapEfficiency() <= rolled.OverlapEfficiency() {
		t.Fatalf("overlap efficiency: decomposed %.2f <= rolled %.2f",
			decomposed.OverlapEfficiency(), rolled.OverlapEfficiency())
	}
	if decomposed.OverlapEfficiency() < 0.5 {
		t.Fatalf("decomposed overlap efficiency %.2f < 0.5:\n%s",
			decomposed.OverlapEfficiency(), decomposed.Render())
	}
}
