package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// traceSpans is the fixed span stream the artifact tests build from:
// one device with two partial einsums, a fully hidden transfer, a
// partially hidden transfer, a blocking all-gather, and a stall on the
// second device.
func traceSpans() []Span {
	return []Span{
		{Device: 0, Track: TrackCompute, Cat: CatCompute, Name: "einsum.p0", Start: 0, Dur: 0.010},
		{Device: 0, Track: TrackCompute, Cat: CatCompute, Name: "einsum.p1", Start: 0.010, Dur: 0.005},
		{Device: 0, Track: TrackTransfer, Cat: CatTransfer, Name: "collective-permute-start.1", Start: 0, Dur: 0.008},
		{Device: 0, Track: TrackTransfer, Cat: CatTransfer, Name: "collective-permute-start.2", Start: 0.012, Dur: 0.008},
		{Device: 0, Track: TrackCompute, Cat: CatCollective, Name: "all-gather.3", Start: 0.020, Dur: 0.004},
		{Device: 1, Track: TrackCompute, Cat: CatStall, Name: "stall.collective-permute-done.4", Start: 0.002, Dur: 0.004},
	}
}

func goldenTrace() *RunTrace {
	t := NewRunTrace("r-00000000000000ab", "run", traceSpans())
	t.Model = "gpt_32b-mini"
	t.Fingerprint = "fp-1234"
	t.Devices = 2
	t.Stages = []RunStage{
		{Name: "queue", StartMS: 0, DurMS: 0.5},
		{Name: "plan", StartMS: 0.5, DurMS: 1.25},
		{Name: "admission", StartMS: 1.75, DurMS: 0.25},
		{Name: "run", StartMS: 2, DurMS: 24},
	}
	t.StepMS = 24
	t.TotalMS = 26
	return t
}

// goldenJSON pins the RunTrace schema: any field rename, reorder, or
// type change breaks this byte-for-byte comparison. Extend the schema
// by adding fields (and regenerating), never by repurposing these.
const goldenJSON = `{
 "version": 1,
 "id": "r-00000000000000ab",
 "scenario": "run",
 "model": "gpt_32b-mini",
 "fingerprint": "fp-1234",
 "devices": 2,
 "status": "ok",
 "stages": [
  {
   "name": "queue",
   "start_ms": 0,
   "dur_ms": 0.5
  },
  {
   "name": "plan",
   "start_ms": 0.5,
   "dur_ms": 1.25
  },
  {
   "name": "admission",
   "start_ms": 1.75,
   "dur_ms": 0.25
  },
  {
   "name": "run",
   "start_ms": 2,
   "dur_ms": 24
  }
 ],
 "spans": [
  {
   "device": 0,
   "track": 0,
   "cat": "compute",
   "name": "einsum.p0",
   "start_ms": 0,
   "dur_ms": 10
  },
  {
   "device": 0,
   "track": 0,
   "cat": "compute",
   "name": "einsum.p1",
   "start_ms": 10,
   "dur_ms": 5
  },
  {
   "device": 0,
   "track": 0,
   "cat": "collective",
   "name": "all-gather.3",
   "start_ms": 20,
   "dur_ms": 4,
   "verdict": "exposed"
  },
  {
   "device": 0,
   "track": 1,
   "cat": "transfer",
   "name": "collective-permute-start.1",
   "start_ms": 0,
   "dur_ms": 8,
   "verdict": "hidden",
   "hidden_fraction": 1,
   "under": [
    "einsum.p0"
   ]
  },
  {
   "device": 0,
   "track": 1,
   "cat": "transfer",
   "name": "collective-permute-start.2",
   "start_ms": 12,
   "dur_ms": 8,
   "verdict": "partially-hidden",
   "hidden_fraction": 0.3749999999999999,
   "under": [
    "einsum.p1"
   ]
  },
  {
   "device": 1,
   "track": 0,
   "cat": "stall",
   "name": "stall.collective-permute-done.4",
   "start_ms": 2,
   "dur_ms": 4
  }
 ],
 "attribution": {
  "collectives": [
   {
    "name": "all-gather.3",
    "blocking": true,
    "wire": 0.004,
    "hidden": 0,
    "exposed": 0.004
   },
   {
    "name": "collective-permute-start.1",
    "blocking": false,
    "wire": 0.008,
    "hidden": 0.008,
    "exposed": 0,
    "under": [
     {
      "name": "einsum.p0",
      "seconds": 0.008
     }
    ]
   },
   {
    "name": "collective-permute-start.2",
    "blocking": false,
    "wire": 0.008,
    "hidden": 0.002999999999999999,
    "exposed": 0.005000000000000001,
    "under": [
     {
      "name": "einsum.p1",
      "seconds": 0.002999999999999999
     }
    ]
   }
  ],
  "total_wire": 0.02,
  "total_hidden": 0.011,
  "stall_seconds": 0.004
 },
 "step_ms": 24,
 "total_ms": 26,
 "overlap_efficiency": 0.5499999999999999
}
`

func TestRunTraceGoldenJSON(t *testing.T) {
	data, err := goldenTrace().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != goldenJSON {
		t.Errorf("RunTrace encoding drifted from the pinned schema.\ngot:\n%s\nwant:\n%s", data, goldenJSON)
	}
}

func TestRunTraceRoundTrip(t *testing.T) {
	orig := goldenTrace()
	data, err := orig.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRunTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := back.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("decode + re-encode is not byte-identical")
	}
}

func TestRunTraceChromeDeterminism(t *testing.T) {
	tr := goldenTrace()
	first, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	second, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("encoding the same trace twice is not byte-identical")
	}

	// The Chrome export must also survive the JSON round trip unchanged:
	// both exports come from one artifact, not parallel code paths.
	data, err := tr.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRunTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	third, err := back.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, third) {
		t.Error("Chrome export differs after a JSON round trip")
	}

	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(first, &parsed); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if got := parsed.Metadata["run_id"]; got != "r-00000000000000ab" {
		t.Errorf("metadata run_id = %v", got)
	}
	wantEvents := len(tr.Spans) + len(tr.Stages)
	if len(parsed.TraceEvents) != wantEvents {
		t.Errorf("chrome trace has %d events, want %d", len(parsed.TraceEvents), wantEvents)
	}
}

// TestRunTraceVerdictsMatchAttribution asserts the per-span stamps are
// exactly the analyzer's conclusions: every wire span's verdict and
// hidden fraction re-derive from Attribute over the same spans.
func TestRunTraceVerdictsMatchAttribution(t *testing.T) {
	spans := traceSpans()
	tr := NewRunTrace("r-0000000000000001", "run", spans)
	rep := Attribute(spans)
	byName := map[string]Attribution{}
	for _, a := range rep.Collectives {
		byName[a.Name] = a
	}
	wireSpans := 0
	for _, s := range tr.Spans {
		isWire := (s.Track == TrackTransfer && s.Cat == CatTransfer) ||
			(s.Track == TrackCompute && s.Cat == CatCollective)
		if !isWire {
			if s.Verdict != "" {
				t.Errorf("%s: non-wire span carries verdict %q", s.Name, s.Verdict)
			}
			continue
		}
		wireSpans++
		a, ok := byName[s.Name]
		if !ok {
			t.Errorf("%s: wire span missing from attribution report", s.Name)
			continue
		}
		want := VerdictPartial
		switch {
		case a.Blocking || a.Hidden == 0:
			want = VerdictExposed
		case a.Exposed <= 1e-12*a.Wire:
			want = VerdictHidden
		}
		if s.Verdict != want {
			t.Errorf("%s: verdict %q, attribution says %q", s.Name, s.Verdict, want)
		}
		if s.HiddenFraction != a.HiddenFraction() {
			t.Errorf("%s: hidden fraction %v, attribution says %v", s.Name, s.HiddenFraction, a.HiddenFraction())
		}
	}
	if wireSpans != 3 {
		t.Fatalf("expected 3 wire spans in the fixture, saw %d", wireSpans)
	}
	if tr.OverlapEfficiency != rep.OverlapEfficiency() {
		t.Errorf("trace efficiency %v, report %v", tr.OverlapEfficiency, rep.OverlapEfficiency())
	}
}

func TestDecodeRunTraceRejects(t *testing.T) {
	if _, err := DecodeRunTrace([]byte(`{"version": 99, "id": "r-1", "status": "ok"}`)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch not rejected: %v", err)
	}
	if _, err := DecodeRunTrace([]byte(`{"version": 1, "status": "ok"}`)); err == nil ||
		!strings.Contains(err.Error(), "id") {
		t.Errorf("missing id not rejected: %v", err)
	}
	if _, err := DecodeRunTrace([]byte(`not json`)); err == nil {
		t.Error("garbage not rejected")
	}
}

func TestRunTraceSetError(t *testing.T) {
	tr := NewRunTrace("r-0000000000000002", "run", nil)
	if tr.Status != StatusOK {
		t.Fatalf("fresh trace status %q", tr.Status)
	}
	tr.SetError(RunTraceError{Device: 2, Instruction: "collective-permute-done.9", Phase: "receive", Cause: "injected"})
	if tr.Status != StatusFailed || tr.Error == nil || tr.Error.Device != 2 {
		t.Errorf("SetError did not mark the trace failed: %+v", tr)
	}
}

func TestNewRunIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRunID()
		if !strings.HasPrefix(id, "r-") || len(id) != 18 {
			t.Fatalf("malformed run id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate run id %q", id)
		}
		seen[id] = true
	}
}
