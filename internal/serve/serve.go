// Package serve turns the overlap pipeline into a long-running service:
// a daemon that accepts compile, tune, and run jobs over HTTP/JSON and
// answers them from a compiled-plan cache instead of re-running the
// partition → decompose → schedule pipeline per invocation.
//
// The pipeline's decisions are pure functions of the (program, machine
// spec, device count, kernel workers, instrumentation) fingerprint —
// exactly the property a serving system exploits. The daemon layers
// three mechanisms on that purity:
//
//   - a compiled Plan artifact (autotune.Plan): the transformed,
//     scheduled program frozen to text with its knobs and calibration,
//     held in an in-memory LRU keyed by the autotune fingerprint and
//     backed by the on-disk decision cache, so the steady-state run
//     path is one map lookup plus runtime execution — zero compilation;
//   - a channel-based request batcher: a bounded inbox flushed at
//     MaxBatch requests or MaxWait after the first, grouping requests
//     by fingerprint so N simultaneous callers with identical programs
//     share exactly one compile (batcher.go);
//   - an admission-control semaphore bounding concurrent runtime
//     executions, so served runs share the process-wide einsum kernel
//     worker pool instead of oversubscribing it.
//
// Failures degrade, never cascade: a run that fails (injected fault,
// deadline) returns the structured *runtime.RunError as JSON with a
// 5xx, the daemon keeps serving, and the plan cache is untouched — a
// failed run says nothing about the plan that produced it.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"overlap/internal/autotune"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/models"
	"overlap/internal/obs"
	"overlap/internal/runtime"
	"overlap/internal/sim"
	"overlap/internal/tensor"
	"overlap/internal/train"
)

// Config tunes the daemon. The zero value serves with sane defaults on
// the TPU-v4 spec.
type Config struct {
	// Spec is the machine model plans are compiled and executed
	// against; zero means machine.TPUv4().
	Spec machine.Spec

	// MaxBatch flushes the batcher when this many requests have
	// collected (default 8); MaxWait flushes a partial batch this long
	// after its first request (default 2ms).
	MaxBatch int
	MaxWait  time.Duration

	// InboxSize bounds the batcher inbox; requests beyond it are
	// rejected with 503 (default 256).
	InboxSize int

	// MaxConcurrentRuns bounds runtime executions holding the kernel
	// worker pool at once (default 4).
	MaxConcurrentRuns int

	// PlanCacheSize bounds the in-memory compiled-plan LRU (default 64).
	PlanCacheSize int

	// CachePath / DisableDiskCache control the autotune decision cache
	// backing the plan cache (empty path = per-user default).
	CachePath        string
	DisableDiskCache bool

	// TuneTopK and TuneTimeScale shape cold-path compiles (defaults 2
	// and 50); RunTimeScale is the wire-delay injection scale of served
	// runs (default 50; negative disables injection).
	TuneTopK      int
	TuneTimeScale float64
	RunTimeScale  float64

	// DefaultDeadline bounds runs that do not carry their own
	// deadline_ms (default 60s).
	DefaultDeadline time.Duration

	// DebugFaults allows requests to carry fault-injection specs; off,
	// such requests are rejected — chaos is an operator decision, not a
	// caller one.
	DebugFaults bool

	// FlightRecorderSize bounds the in-memory ring of recent run traces
	// served at /v1/runs (default 64); FlightKeep bounds the kept set of
	// slowest/failed runs that survive ring wraparound (default 8).
	FlightRecorderSize int
	FlightKeep         int

	// TraceDir, when set, additionally writes every recorded run trace
	// to <TraceDir>/<run-id>.json — the durable twin of the in-memory
	// flight recorder.
	TraceDir string

	// Transport selects the runtime fabric served runs execute over
	// (chan in-process links by default, proc for per-device worker
	// processes over Unix sockets). An operator decision, not a caller
	// one — requests cannot override it.
	Transport runtime.TransportKind
}

func (c Config) withDefaults() Config {
	if c.Spec.Name == "" {
		c.Spec = machine.TPUv4()
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.InboxSize <= 0 {
		c.InboxSize = 256
	}
	if c.MaxConcurrentRuns <= 0 {
		c.MaxConcurrentRuns = 4
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 64
	}
	if c.TuneTopK <= 0 {
		c.TuneTopK = 2
	}
	if c.TuneTimeScale == 0 {
		c.TuneTimeScale = 50
	}
	if c.RunTimeScale == 0 {
		c.RunTimeScale = 50
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 64
	}
	if c.FlightKeep <= 0 {
		c.FlightKeep = 8
	}
	return c
}

// Server is the overlap-as-a-service daemon. Create with New, attach
// with Handler or Start, stop with Shutdown.
type Server struct {
	cfg      Config
	plans    *planCache
	batch    *batcher
	recorder *flightRecorder
	slots    chan struct{} // admission semaphore
	mux      *http.ServeMux
	httpSrv  *http.Server
	draining atomic.Bool
	// drainMu is the drain barrier: every in-flight handler holds a read
	// lock, and Shutdown's write lock acquires only once they have all
	// finished. (A WaitGroup cannot express this — Add would race Wait
	// when a request slips past the draining gate at counter zero.)
	drainMu sync.RWMutex
}

// New builds a daemon from the config; it starts serving once attached
// to a listener (Start) or a mux (Handler).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		plans:    newPlanCache(cfg.PlanCacheSize),
		recorder: newFlightRecorder(cfg.FlightRecorderSize, cfg.FlightKeep),
		slots:    make(chan struct{}, cfg.MaxConcurrentRuns),
	}
	s.batch = newBatcher(s.plans, cfg.InboxSize, cfg.MaxBatch, cfg.MaxWait)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/run", s.guard(s.handleRun))
	s.mux.HandleFunc("/v1/compile", s.guard(s.handleCompile))
	s.mux.HandleFunc("/v1/plans", s.guard(s.handlePlans))
	s.mux.HandleFunc("/v1/runs", s.guard(s.handleRuns))
	s.mux.HandleFunc("/v1/runs/", s.guard(s.handleRunByID))
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.Handle("/metrics", obs.Default().Handler())
	return s, nil
}

// Handler exposes the daemon's routes (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (":0" picks a free port), serves in a background
// goroutine, and returns the resolved address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown drains gracefully: new requests are refused, every in-flight
// request (including queued compiles its waiters still hold) completes
// and is answered, then the batcher stops. Safe to call without Start
// (test servers driving Handler directly).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	done := make(chan struct{})
	go func() {
		s.drainMu.Lock()
		defer s.drainMu.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.batch.close()
	return err
}

// guard wraps a handler with the drain gate, the in-flight waitgroup,
// and request counting.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("serve: draining"))
			return
		}
		s.drainMu.RLock()
		defer s.drainMu.RUnlock()
		// Re-check inside the lock: a request that passed the fast gate
		// just as draining flipped must still be refused, not raced.
		if s.draining.Load() {
			s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("serve: draining"))
			return
		}
		svRequests.Inc()
		h(w, r)
	}
}

// Request is one compile or run job. Either Model (a Table 1/2 name,
// miniaturized to Devices×Dim) or Program (hlo.Format text) names the
// computation.
type Request struct {
	Model   string `json:"model,omitempty"`
	Dim     int    `json:"dim,omitempty"`
	Program string `json:"program,omitempty"`
	Devices int    `json:"devices"`

	// Scenario selects the program family: "" (or "layer") builds the
	// forward layer step; "train" builds the fwd+bwd+SGD training step
	// via internal/train. Training programs compile, cache, and serve
	// through the same plan machinery as inference layers.
	Scenario string `json:"scenario,omitempty"`
	// Strategy partitions the training step ("megatron" or "ddp");
	// train scenario only.
	Strategy string `json:"strategy,omitempty"`
	// Layers is the training step's layer count (default 2); train
	// scenario only.
	Layers int `json:"layers,omitempty"`

	// Seed generates the run's replicated random arguments (default 42).
	Seed int64 `json:"seed,omitempty"`
	// TimescaleOverride replaces the server's RunTimeScale for this run
	// (0 keeps the server default; negative disables injection).
	Timescale float64 `json:"timescale,omitempty"`
	// DeadlineMS bounds the run (0 = server default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Check cross-checks the run bit-for-bit against the lockstep
	// interpreter before answering.
	Check bool `json:"check,omitempty"`

	// Fault and FaultSeed inject a deterministic FaultPlan
	// (ParseFaults grammar); rejected unless the server runs with
	// DebugFaults.
	Fault     string `json:"fault,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
}

// RunResponse is the answer to /v1/run.
type RunResponse struct {
	// RunID is this execution's identity: the key its flight-recorder
	// trace (GET /v1/runs/{id}), structured log lines, and runtime
	// telemetry all correlate under.
	RunID       string `json:"run_id"`
	Fingerprint string `json:"fingerprint"`
	// Plan is where the plan came from: hit, miss, or coalesced.
	Plan      string `json:"plan"`
	BestName  string `json:"best_name"`
	Devices   int    `json:"devices"`
	BatchSize int    `json:"batch_size"`

	BreakdownMS       BreakdownMS `json:"breakdown_ms"`
	OverlapEfficiency float64     `json:"overlap_efficiency"`
	// Digest is sha256 over every device's root tensor bytes — callers
	// verify bit-identity across replicas and against the interpreter
	// without shipping tensors.
	Digest   string   `json:"digest"`
	Checked  bool     `json:"checked,omitempty"`
	TimingMS TimingMS `json:"timing_ms"`
}

// BreakdownMS is the measured step decomposition in milliseconds.
type BreakdownMS struct {
	Step    float64 `json:"step"`
	Compute float64 `json:"compute"`
	Wire    float64 `json:"wire"`
	Exposed float64 `json:"exposed"`
}

// TimingMS decomposes where the request's latency went, in
// milliseconds.
type TimingMS struct {
	Queue     float64 `json:"queue"`
	Plan      float64 `json:"plan"`
	Admission float64 `json:"admission"`
	Run       float64 `json:"run"`
	Total     float64 `json:"total"`
}

// errorBody is every non-200 response: a cause, and for runtime
// failures the full structured attribution.
type errorBody struct {
	Error       string            `json:"error"`
	RunError    *runtime.RunError `json:"run_error,omitempty"`
	Fingerprint string            `json:"fingerprint,omitempty"`
	// RunID correlates a failed run with its flight-recorder trace and
	// log lines (set on failures that reached execution).
	RunID string `json:"run_id,omitempty"`
}

// handleRun serves POST /v1/run: acquire the plan (cache, coalesced, or
// compiled), take an admission slot, execute on the concurrent runtime,
// answer with the measured breakdown and overlap attribution.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, err := s.decodeRequest(w, r)
	if err != nil {
		return
	}
	comp, key, err := s.resolve(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	ctx, cancel := s.runContext(r, req)
	defer cancel()

	out, err := s.acquirePlan(ctx, req, comp, key)
	if err != nil {
		s.writePlanError(w, key, err)
		return
	}

	// Admission: served runs share the kernel worker pool; bound how
	// many hold it at once.
	admStart := time.Now()
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("serve: admission wait exceeded deadline: %w", ctx.Err()))
		return
	}
	admWait := time.Since(admStart)
	svAdmissionWait.Observe(admWait.Seconds())
	svInflight.Add(1)
	defer func() { svInflight.Add(-1); <-s.slots }()

	runID := obs.NewRunID()
	args := Args(out.plan.comp, req.Seed)
	// The plan's tuned split-K factor rides in the run's own options
	// (explicit even when off), so concurrent runs of differently tuned
	// plans — and plan compiles applying ApplyBest mid-flight — cannot
	// bleed into this execution through the process-global knob.
	ropts := runtime.Options{
		Spec: s.cfg.Spec, TimeScale: s.runTimeScale(req), Trace: true, RunID: runID,
		Transport:    s.cfg.Transport,
		KernelSplitK: runtime.ExplicitSplitK(out.plan.plan.Knobs.KernelSplitK),
	}
	if req.Fault != "" {
		plan, err := runtime.ParseFaults(req.Fault)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		plan.Seed = req.FaultSeed
		ropts.Faults = plan
	}

	runStart := time.Now()
	res, err := runtime.RunContext(ctx, out.plan.comp, out.plan.plan.Devices, args, ropts)
	runDur := time.Since(runStart)
	svRunSeconds.Observe(runDur.Seconds())
	timing := TimingMS{
		Queue:     out.queueWait.Seconds() * 1e3,
		Plan:      out.planWait.Seconds() * 1e3,
		Admission: admWait.Seconds() * 1e3,
		Run:       runDur.Seconds() * 1e3,
	}
	if err != nil {
		// Graceful degradation: a failed run is this request's failure
		// alone. The structured attribution goes back as JSON, the
		// daemon keeps serving, and the plan stays cached — it is a
		// pure function of the fingerprint and a run failure says
		// nothing about it. The failure still leaves a trace: its
		// queue/plan/admission/run breakdown is recorded under the run
		// ID, and the failed-run latency histogram sees it.
		timing.Total = time.Since(start).Seconds() * 1e3
		svFailedRunSeconds.Observe(time.Since(start).Seconds())
		var re *runtime.RunError
		if errors.As(err, &re) {
			svRunErrors.Inc()
			trace := s.newTrace(runID, req, key, out.plan.plan.Devices, start, timing, nil)
			trace.SetError(obs.RunTraceError{
				Device:      re.Device,
				Instruction: re.Instr,
				Phase:       string(re.Phase),
				Fault:       re.Fault,
				Cause:       re.Error(),
			})
			s.record(trace)
			obs.Log().Error("serve.run", "run_id", runID, "fingerprint", key,
				"scenario", scenarioLabel(req.Scenario), "status", "failed",
				"total_ms", timing.Total, "error", re.Error())
			s.writeJSON(w, http.StatusServiceUnavailable,
				errorBody{Error: re.Error(), RunError: re, Fingerprint: key, RunID: runID})
			return
		}
		obs.Log().Error("serve.run", "run_id", runID, "fingerprint", key,
			"scenario", scenarioLabel(req.Scenario), "status", "failed", "error", err.Error())
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}

	outputs := Outputs(out.plan.comp, res.All, out.plan.plan.Devices)
	checked := false
	if req.Check {
		// The interpreter must reassociate contractions with the same
		// split-K factor the run carried for bitwise equality to hold.
		wantAll, err := sim.InterpretAllSplitK(out.plan.comp, out.plan.plan.Devices, args,
			out.plan.plan.Knobs.KernelSplitK)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		want := Outputs(out.plan.comp, wantAll, out.plan.plan.Devices)
		for i := range want {
			if !outputs[i].Equal(want[i]) {
				s.writeError(w, http.StatusInternalServerError,
					fmt.Errorf("serve: output %d diverges bitwise from the interpreter", i))
				return
			}
		}
		checked = true
	}

	b := res.Breakdown
	timing.Total = time.Since(start).Seconds() * 1e3
	trace := s.newTrace(runID, req, key, out.plan.plan.Devices, start, timing, res.Trace)
	trace.StepMS = b.StepTime * 1e3
	s.record(trace)
	obs.Log().Info("serve.run", "run_id", runID, "fingerprint", key,
		"scenario", scenarioLabel(req.Scenario), "status", "ok", "plan", out.source,
		"step_ms", trace.StepMS, "total_ms", timing.Total,
		"overlap_efficiency", trace.OverlapEfficiency)

	s.writeJSON(w, http.StatusOK, RunResponse{
		RunID:       runID,
		Fingerprint: key,
		Plan:        out.source,
		BestName:    out.plan.plan.BestName,
		Devices:     out.plan.plan.Devices,
		BatchSize:   out.batchSize,
		BreakdownMS: BreakdownMS{
			Step:    b.StepTime * 1e3,
			Compute: b.Compute * 1e3,
			Wire:    b.CollectiveWire * 1e3,
			Exposed: b.Exposed * 1e3,
		},
		OverlapEfficiency: trace.OverlapEfficiency,
		Digest:            Digest(outputs),
		Checked:           checked,
		TimingMS:          timing,
	})
}

// scenarioLabel normalizes a request scenario onto the trace artifact's
// vocabulary: forward layer steps are "run", training steps "train".
func scenarioLabel(s string) string {
	if s == "train" {
		return "train"
	}
	return "run"
}

// newTrace assembles the run-scoped trace artifact for one served run:
// executor spans (with attribution verdicts) when the run produced
// them, plus the serve-path stage breakdown and request metadata.
func (s *Server) newTrace(runID string, req *Request, key string, devices int, start time.Time, timing TimingMS, events []sim.TraceEvent) *obs.RunTrace {
	trace := obs.NewRunTrace(runID, scenarioLabel(req.Scenario), sim.Spans(events))
	trace.Model = req.Model
	trace.Fingerprint = key
	trace.Devices = devices
	trace.Start = start.UTC().Format(time.RFC3339Nano)
	trace.TotalMS = timing.Total
	cursor := 0.0
	for _, st := range []struct {
		name string
		dur  float64
	}{{"queue", timing.Queue}, {"plan", timing.Plan}, {"admission", timing.Admission}, {"run", timing.Run}} {
		trace.Stages = append(trace.Stages, obs.RunStage{Name: st.name, StartMS: cursor, DurMS: st.dur})
		cursor += st.dur
	}
	return trace
}

// record stores a trace in the flight recorder and, when TraceDir is
// configured, writes its durable JSON twin.
func (s *Server) record(trace *obs.RunTrace) {
	s.recorder.record(trace)
	if s.cfg.TraceDir == "" {
		return
	}
	data, err := trace.EncodeJSON()
	if err == nil {
		err = os.WriteFile(filepath.Join(s.cfg.TraceDir, trace.ID+".json"), data, 0o644)
	}
	if err != nil {
		obs.Log().Error("serve.trace_write", "run_id", trace.ID, "error", err.Error())
	}
}

// handleRuns serves GET /v1/runs: the flight recorder's contents,
// newest first.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: %s needs GET", r.URL.Path))
		return
	}
	runs := s.recorder.list()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"runs": runs,
		"size": len(runs),
	})
}

// runIDPattern is the exact shape obs.NewRunID mints: "r-" plus 16 hex
// digits. The run id from the URL is attacker-controlled and ends up in
// a TraceDir filesystem path below, so anything else — including "..",
// separators in any encoding, or oversized ids — is rejected before any
// filepath.Join ever sees it.
var runIDPattern = regexp.MustCompile(`^r-[0-9a-f]{16}$`)

// handleRunByID serves GET /v1/runs/{id}?format=json|chrome: the full
// trace artifact of one recorded run, as stable JSON (default) or as a
// Chrome trace file loadable in Perfetto. Runs evicted from the
// in-memory recorder are re-read from their durable TraceDir twin when
// one is configured.
func (s *Server) handleRunByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: %s needs GET", r.URL.Path))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/runs/")
	if !runIDPattern.MatchString(id) {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("serve: no run id in %s", r.URL.Path))
		return
	}
	trace := s.recorder.get(id)
	if trace == nil && s.cfg.TraceDir != "" {
		if data, err := os.ReadFile(filepath.Join(s.cfg.TraceDir, id+".json")); err == nil {
			if t, err := obs.DecodeRunTrace(data); err == nil {
				trace = t
			}
		}
	}
	if trace == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("serve: run %s is not in the flight recorder (evicted or never recorded)", id))
		return
	}
	var (
		data []byte
		err  error
	)
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		data, err = trace.EncodeJSON()
	case "chrome":
		data, err = trace.ChromeTrace()
	default:
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown trace format %q (want json or chrome)", format))
		return
	}
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleCompile serves POST /v1/compile: acquire (or build) the plan
// and return the serialized artifact itself — the same bytes
// overlaptune -plan-out writes and overlaprun -plan-in executes.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeRequest(w, r)
	if err != nil {
		return
	}
	comp, key, err := s.resolve(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.runContext(r, req)
	defer cancel()
	out, err := s.acquirePlan(ctx, req, comp, key)
	if err != nil {
		s.writePlanError(w, key, err)
		return
	}
	data, err := out.plan.plan.EncodeJSON()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Overlap-Plan", out.source)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handlePlans serves GET /v1/plans: the cached fingerprints, hottest
// first.
func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: %s needs GET", r.URL.Path))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"plans": s.plans.keys(),
		"size":  s.plans.len(),
	})
}

// decodeRequest parses and validates the POST body; on failure it has
// already written the error response.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*Request, error) {
	if r.Method != http.MethodPost {
		err := fmt.Errorf("serve: %s needs POST", r.URL.Path)
		s.writeError(w, http.StatusMethodNotAllowed, err)
		return nil, err
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return nil, err
	}
	if req.Devices < 1 {
		err := fmt.Errorf("serve: request needs devices >= 1")
		s.writeError(w, http.StatusBadRequest, err)
		return nil, err
	}
	if (req.Model == "") == (req.Program == "") {
		err := fmt.Errorf("serve: request needs exactly one of model or program")
		s.writeError(w, http.StatusBadRequest, err)
		return nil, err
	}
	switch req.Scenario {
	case "", "layer":
	case "train":
		if req.Program != "" {
			err := fmt.Errorf("serve: the train scenario builds its program from a model; inline HLO is not accepted")
			s.writeError(w, http.StatusBadRequest, err)
			return nil, err
		}
	default:
		err := fmt.Errorf("serve: unknown scenario %q (want layer or train)", req.Scenario)
		s.writeError(w, http.StatusBadRequest, err)
		return nil, err
	}
	if req.Fault != "" && !s.cfg.DebugFaults {
		err := fmt.Errorf("serve: fault injection requires the daemon's debug-faults flag")
		s.writeError(w, http.StatusForbidden, err)
		return nil, err
	}
	if req.Seed == 0 {
		req.Seed = 42
	}
	if req.Dim == 0 {
		req.Dim = 8
	}
	return &req, nil
}

// resolve builds the request's computation (a miniaturized named model
// or inline HLO text) and its cache fingerprint. Graph construction is
// cheap and deliberately not cached — compilation (tune + transform +
// schedule) is what the plan cache elides.
func (s *Server) resolve(req *Request) (*hlo.Computation, string, error) {
	var comp *hlo.Computation
	if req.Scenario == "train" {
		cfg, err := models.ByName(req.Model)
		if err != nil {
			return nil, "", err
		}
		strategy, err := train.ParseStrategy(req.Strategy)
		if err != nil {
			return nil, "", err
		}
		layers := req.Layers
		if layers == 0 {
			layers = 2
		}
		tc, err := train.FromModel(cfg, req.Devices, req.Dim, layers, strategy)
		if err != nil {
			return nil, "", err
		}
		prog, err := train.Build(tc)
		if err != nil {
			return nil, "", err
		}
		comp = prog.Comp
	} else if req.Program != "" {
		c, err := hlo.Parse(req.Program)
		if err != nil {
			return nil, "", fmt.Errorf("serve: program does not parse: %w", err)
		}
		comp = c
	} else {
		cfg, err := models.ByName(req.Model)
		if err != nil {
			return nil, "", err
		}
		mini, err := models.Miniature(cfg, req.Devices, req.Dim)
		if err != nil {
			return nil, "", err
		}
		c, err := models.BuildLayerStep(mini)
		if err != nil {
			return nil, "", err
		}
		comp = c
	}
	return comp, autotune.Key(comp, s.cfg.Spec, req.Devices), nil
}

// acquirePlan funnels the request through the batcher: identical
// fingerprints coalesce onto one compile, the plan cache answers warm
// requests with zero compilation.
func (s *Server) acquirePlan(ctx context.Context, req *Request, comp *hlo.Computation, key string) (planOutcome, error) {
	devices, seed := req.Devices, req.Seed
	return s.batch.submit(ctx, key, func() (*cachedPlan, error) {
		plan, err := autotune.Compile(comp, devices, Args(comp, seed), autotune.Options{
			Spec:         s.cfg.Spec,
			TopK:         s.cfg.TuneTopK,
			TimeScale:    s.cfg.TuneTimeScale,
			CachePath:    s.cfg.CachePath,
			DisableCache: s.cfg.DisableDiskCache,
			Calibrate:    true,
		})
		if err != nil {
			return nil, err
		}
		exec, err := plan.Computation()
		if err != nil {
			return nil, err
		}
		return &cachedPlan{plan: plan, comp: exec}, nil
	})
}

func (s *Server) runContext(r *http.Request, req *Request) (context.Context, context.CancelFunc) {
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), deadline)
}

func (s *Server) runTimeScale(req *Request) float64 {
	if req.Timescale != 0 {
		return req.Timescale
	}
	return s.cfg.RunTimeScale
}

func (s *Server) writePlanError(w http.ResponseWriter, key string, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, errOverloaded) {
		status = http.StatusServiceUnavailable
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		status = http.StatusGatewayTimeout
	}
	svErrors.Inc()
	s.writeJSON(w, status, errorBody{Error: err.Error(), Fingerprint: key})
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	svErrors.Inc()
	s.writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Args generates the replicated random per-parameter arguments the
// serving convention uses (one tensor per parameter, seeded), shared by
// the daemon, its clients, and the CLIs so a caller can reproduce a
// served run bit for bit.
func Args(c *hlo.Computation, seed int64) [][]*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	params := c.Parameters()
	args := make([][]*tensor.Tensor, len(params))
	for i, p := range params {
		args[i] = []*tensor.Tensor{tensor.Rand(rng, p.Shape...)}
	}
	return args
}

// Outputs flattens a computation's real per-device output tensors in
// deterministic order: the root's operands when the root is a tuple (a
// tuple value carries no payload of its own), else the root itself.
// Both runtime Result.All and sim.InterpretAll satisfy the map shape.
func Outputs(c *hlo.Computation, all map[*hlo.Instruction][]*tensor.Tensor, devices int) []*tensor.Tensor {
	roots := []*hlo.Instruction{c.Root()}
	if c.Root().Op == hlo.OpTuple {
		roots = c.Root().Operands
	}
	out := make([]*tensor.Tensor, 0, len(roots)*devices)
	for d := 0; d < devices; d++ {
		for _, in := range roots {
			out = append(out, all[in][d])
		}
	}
	return out
}

// Digest hashes every output tensor's bytes into one hex sha256 — the
// cheap bit-identity witness responses carry.
func Digest(values []*tensor.Tensor) string {
	h := sha256.New()
	var buf [8]byte
	for _, t := range values {
		for _, v := range t.Data() {
			bits := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				buf[i] = byte(bits >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
