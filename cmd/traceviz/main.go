// Command traceviz renders the execution of one model layer as an
// ASCII timeline, making the overlap visible in a terminal: transfers
// ('=') running under compute ('#') are hidden communication, transfers
// under stalls ('.') are exposed.
//
// By default the timeline comes from the discrete-event simulator's
// predicted trace of the full-size model. With -run the layer is scaled
// to a miniature and executed for real on the concurrent goroutine
// runtime, so measured and predicted timelines render through the same
// view and can be compared side by side.
//
// Usage:
//
//	traceviz -model GPT_32B               # baseline (blocking), simulated
//	traceviz -model GPT_32B -overlap      # decomposed + scheduled
//	traceviz -model GPT_32B -overlap -width 160
//	traceviz -model GPT_32B -overlap -run # measured on goroutine devices
//	traceviz -model GPT_32B -overlap -attrib   # per-collective attribution table
//	traceviz -model GPT_32B -link-gbs 200      # machine-spec override
//	traceviz -trace-in run.json                # render a recorded RunTrace artifact
//	                                           # (overlaprun -trace-out / overlapd /v1/runs/{id})
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"overlap"
	"overlap/internal/models"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

func main() {
	model := flag.String("model", "GPT_32B", "model name from Table 1 or Table 2")
	apply := flag.Bool("overlap", false, "apply the overlap pipeline first")
	width := flag.Int("width", 120, "timeline width in columns")
	run := flag.Bool("run", false, "execute a miniature on the goroutine runtime and render the measured trace")
	devices := flag.Int("devices", 4, "ring size for -run (goroutine devices)")
	dim := flag.Int("dim", 8, "miniature per-head dimension for -run")
	timeScale := flag.Float64("timescale", 2000, "wire-delay scale for -run")
	attrib := flag.Bool("attrib", false, "print the per-collective overlap attribution under the timeline")
	linkGBs := flag.Float64("link-gbs", 0, "override per-direction link bandwidth (GB/s, 4-byte-element equivalent)")
	peakTF := flag.Float64("peak-tflops", 0, "override per-chip peak TFLOP/s")
	traceIn := flag.String("trace-in", "", "render a recorded RunTrace artifact (from overlaprun/overlaptrain -trace-out or overlapd /v1/runs/{id}) instead of building a model")
	flag.Parse()

	if *traceIn != "" {
		if err := renderArtifact(*traceIn, *width, *attrib); err != nil {
			fail(err)
		}
		return
	}

	spec := overlap.TPUv4()
	if *linkGBs != 0 {
		spec.LinkBandwidth = *linkGBs * 1e9
	}
	if *peakTF != 0 {
		spec.PeakFLOPS = *peakTF * 1e12
	}
	if err := spec.Validate(); err != nil {
		fail(err)
	}

	cfg, err := models.ByName(*model)
	if err != nil {
		fail(err)
	}
	if *run {
		var merr error
		if cfg, merr = overlap.Miniature(cfg, *devices, *dim); merr != nil {
			fail(merr)
		}
	}
	c, err := overlap.BuildLayerStep(cfg)
	if err != nil {
		fail(err)
	}
	if *apply {
		opts := overlap.DefaultOptions(spec)
		if *run {
			// Miniature shapes would not pass the cost model, which
			// prices the full-size tensors; decompose unconditionally.
			opts.UseCostModel = false
		}
		if _, err := overlap.Apply(c, opts); err != nil {
			fail(err)
		}
	}

	var (
		bd     overlap.Breakdown
		events []overlap.TraceEvent
		source string
	)
	if *run {
		res, rerr := overlap.Run(c, *devices, randomArgs(c), overlap.RunOptions{
			Spec: spec, TimeScale: *timeScale, Trace: true,
		})
		if rerr != nil {
			fail(rerr)
		}
		bd, events, source = res.Breakdown, res.Trace, "measured"
	} else {
		bd, events, err = sim.SimulateTrace(c, cfg.Mesh().NumDevices(), spec)
		if err != nil {
			fail(err)
		}
		source = "simulated"
	}
	fmt.Printf("%s, one layer step (%s): %.3f ms, %.0f%% exposed communication\n",
		cfg.Name, source, 1e3*bd.StepTime, 100*bd.CommFraction())
	fmt.Print(sim.RenderTimeline(events, *width))
	if *attrib {
		fmt.Print(overlap.Attribute(events).Render())
	}
}

// renderArtifact reads a serialized RunTrace and renders it through the
// same timeline view: the artifact's spans convert back onto the
// Chrome-trace tracks the renderer reads, its embedded attribution and
// verdicts print without re-analysis.
func renderArtifact(path string, width int, attrib bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	trace, err := overlap.DecodeRunTrace(data)
	if err != nil {
		return err
	}
	events := make([]overlap.TraceEvent, 0, len(trace.Spans))
	for _, s := range trace.Spans {
		events = append(events, overlap.TraceEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: s.StartMS * 1e3, Dur: s.DurMS * 1e3,
			PID: s.Device, TID: s.Track,
		})
	}
	header := fmt.Sprintf("run %s (%s, %s)", trace.ID, trace.Scenario, trace.Status)
	if trace.Model != "" {
		header += ", model " + trace.Model
	}
	if trace.StepMS > 0 {
		header += fmt.Sprintf(": %.3f ms step", trace.StepMS)
	}
	fmt.Println(header)
	if trace.Error != nil {
		fmt.Printf("failed: device %d %s (phase %s): %s\n",
			trace.Error.Device, trace.Error.Instruction, trace.Error.Phase, trace.Error.Cause)
	}
	for _, st := range trace.Stages {
		fmt.Printf("stage %-10s %8.3f ms\n", st.Name, st.DurMS)
	}
	fmt.Print(sim.RenderTimeline(events, width))
	if attrib && trace.Attribution != nil {
		fmt.Print(trace.Attribution.Render())
	}
	return nil
}

// randomArgs supplies one replicated random tensor per parameter, the
// same convention overlaprun uses.
func randomArgs(c *overlap.Computation) [][]*tensor.Tensor {
	rng := rand.New(rand.NewSource(42))
	params := c.Parameters()
	args := make([][]*tensor.Tensor, len(params))
	for i, p := range params {
		args[i] = []*tensor.Tensor{tensor.Rand(rng, p.Shape...)}
	}
	return args
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "traceviz: %v\n", err)
	os.Exit(1)
}
