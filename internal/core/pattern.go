// Package core implements the paper's contribution: decomposing an
// AllGather or ReduceScatter together with its dependent einsum into a
// Looped CollectiveEinsum — a sequence of partial einsums interleaved
// with point-to-point CollectivePermutes (§4–§5.1) — followed by the
// asynchronous CollectivePermuteStart/Done conversion and the
// instruction scheduling that actually hides the transfers (§5.2), the
// loop-unrolling and bidirectional-transfer optimizations (§5.4), the
// fusion-friendliness rewrites (§5.4.3), and the cost model that
// auto-enables the feature per site (§5.5).
package core

import (
	"strings"

	"overlap/internal/hlo"
	"overlap/internal/tensor"
)

// PatternKind distinguishes the two decomposable collective/einsum
// pairings.
type PatternKind int

const (
	// AllGatherEinsum is a blocking AllGather feeding an einsum operand.
	AllGatherEinsum PatternKind = iota
	// EinsumReduceScatter is an einsum whose (partial-sum) result feeds
	// a blocking ReduceScatter.
	EinsumReduceScatter
)

func (k PatternKind) String() string {
	if k == AllGatherEinsum {
		return "allgather-einsum"
	}
	return "einsum-reducescatter"
}

// AGCase is the AllGather-Einsum sub-case from §5.1, determined by the
// role of the gathered dimension's label in the einsum.
type AGCase int

const (
	// CaseNonContracting (Case 1): the gathered dimension survives into
	// the output and appears only in the gathered operand. Partial
	// results are DynamicUpdateSliced into the final result.
	CaseNonContracting AGCase = iota
	// CaseContracting (Case 2): the gathered dimension is summed away.
	// The other operand is DynamicSliced along the matching contracting
	// dimension and partial results are accumulated with an Addition.
	CaseContracting
	// CaseBatch (Case 3): the gathered dimension is an einsum batch
	// dimension. The other operand is DynamicSliced along its batch
	// dimension and partials are DynamicUpdateSliced into the result.
	CaseBatch
)

func (c AGCase) String() string {
	switch c {
	case CaseNonContracting:
		return "non-contracting"
	case CaseContracting:
		return "contracting"
	default:
		return "batch"
	}
}

// Pattern is one decomposition site: the collective/einsum pair plus the
// pre-computed geometry the rewrite needs.
type Pattern struct {
	Kind PatternKind

	// Einsum is the dependent computation; Collective is the AllGather
	// (operand side) or ReduceScatter (user side).
	Einsum     *hlo.Instruction
	Collective *hlo.Instruction

	// Ring describes the cyclic device groups of the collective.
	Ring RingInfo

	// AllGather-Einsum fields.
	Case      AGCase
	Side      int // einsum operand index fed by the AllGather
	GatherDim int // dimension of the gathered operand
	OtherDim  int // matching dim of the other operand (cases 2, 3), else -1
	OutDim    int // output dim updated per iteration (cases 1, 3), else -1

	// Einsum-ReduceScatter fields.
	ScatterDim int // output dim the ReduceScatter shards
	SliceSide  int // operand carrying the scattered label
	SliceDim   int // dim of that operand to DynamicSlice
}

// RingInfo captures the cyclic structure of a collective's device
// groups: every group must be an arithmetic progression in device ids
// with a common stride, so a device's ring position is computable as
// (pid / Stride) mod N — the closed form the decomposition's dynamic
// offsets use.
type RingInfo struct {
	N      int
	Stride int
	Groups [][]int
}

// RingFromGroups validates the group structure and returns its ring
// description. ok is false when the groups cannot be expressed as a
// common-stride ring (the decomposition then leaves the site alone).
func RingFromGroups(groups [][]int) (RingInfo, bool) {
	if len(groups) == 0 || len(groups[0]) == 0 {
		return RingInfo{}, false
	}
	n := len(groups[0])
	if n == 1 {
		return RingInfo{}, false // degenerate: nothing to decompose
	}
	stride := 0
	if n > 1 {
		stride = groups[0][1] - groups[0][0]
	}
	if stride <= 0 {
		return RingInfo{}, false
	}
	for _, g := range groups {
		if len(g) != n {
			return RingInfo{}, false
		}
		for k, dev := range g {
			if k > 0 && g[k]-g[k-1] != stride {
				return RingInfo{}, false
			}
			// The position extraction identity the DynOffsets rely on.
			if (dev/stride)%n != k {
				return RingInfo{}, false
			}
		}
	}
	return RingInfo{N: n, Stride: stride, Groups: groups}, true
}

// PosOffset returns the symbolic offset ((pos + add) mod N) * scale
// where pos is the device's ring position.
func (r RingInfo) PosOffset(add, scale int) hlo.DynOffset {
	return hlo.DynOffset{PIDFactor: 1, Div: r.Stride, Add: add, Mod: r.N, Scale: scale}
}

// ShiftPairs returns the source→target pairs of a cyclic shift by delta
// ring positions within every group.
func (r RingInfo) ShiftPairs(delta int) []hlo.SourceTargetPair {
	var pairs []hlo.SourceTargetPair
	for _, g := range r.Groups {
		for k, src := range g {
			dst := g[((k+delta)%r.N+r.N)%r.N]
			pairs = append(pairs, hlo.SourceTargetPair{Source: src, Target: dst})
		}
	}
	return pairs
}

// FindPatterns scans the computation for decomposable sites. When an
// einsum has several collective candidates (two gathered operands, or a
// gathered operand plus a ReduceScatter user), chooseCandidate keeps the
// one the paper's §5.5 rule prefers and the others are left blocking.
func FindPatterns(c *hlo.Computation, chooser CandidateChooser) []Pattern {
	byEinsum := map[*hlo.Instruction][]Pattern{}
	for _, in := range c.Instructions() {
		switch in.Op {
		case hlo.OpAllGather:
			for _, u := range in.Users() {
				if p, ok := matchAllGatherEinsum(in, u); ok {
					byEinsum[u] = append(byEinsum[u], p)
				}
			}
		case hlo.OpReduceScatter:
			if p, ok := matchEinsumReduceScatter(in); ok {
				byEinsum[p.Einsum] = append(byEinsum[p.Einsum], p)
			}
		}
	}
	var out []Pattern
	for _, in := range c.Instructions() {
		cands := byEinsum[in]
		if len(cands) == 0 {
			continue
		}
		if len(cands) == 1 {
			out = append(out, cands[0])
			continue
		}
		out = append(out, chooser.Choose(cands))
	}
	return out
}

func matchAllGatherEinsum(ag, user *hlo.Instruction) (Pattern, bool) {
	if user.Op != hlo.OpEinsum || ag.NumUsers() != 1 {
		return Pattern{}, false
	}
	ring, ok := RingFromGroups(ag.Groups)
	if !ok {
		return Pattern{}, false
	}
	spec, err := tensor.ParseEinsum(user.EinsumSpec)
	if err != nil || len(spec.Inputs) != 2 {
		return Pattern{}, false
	}
	side := -1
	for i, op := range user.Operands {
		if op == ag {
			side = i
		}
	}
	if side < 0 {
		return Pattern{}, false
	}
	gDim := ag.CollectiveAxis
	label := spec.Inputs[side][gDim]
	other := spec.Inputs[1-side]
	inOutput := strings.IndexByte(spec.Output, label)
	inOther := strings.IndexByte(other, label)

	p := Pattern{
		Kind:       AllGatherEinsum,
		Einsum:     user,
		Collective: ag,
		Ring:       ring,
		Side:       side,
		GatherDim:  gDim,
		OtherDim:   -1,
		OutDim:     -1,
		ScatterDim: -1,
	}
	switch {
	case inOutput >= 0 && inOther < 0:
		p.Case = CaseNonContracting
		p.OutDim = inOutput
	case inOutput < 0 && inOther >= 0:
		p.Case = CaseContracting
		p.OtherDim = inOther
	case inOutput >= 0 && inOther >= 0:
		p.Case = CaseBatch
		p.OtherDim = inOther
		p.OutDim = inOutput
	default:
		// Label summed away but absent from the other operand: the
		// gather cannot be turned into per-shard partial products.
		return Pattern{}, false
	}
	// The shard circulates whole, so the gathered dim of the operand
	// must split evenly (guaranteed by AllGather shape inference).
	return p, true
}

func matchEinsumReduceScatter(rs *hlo.Instruction) (Pattern, bool) {
	ein := rs.Operands[0]
	if ein.Op != hlo.OpEinsum || ein.NumUsers() != 1 {
		return Pattern{}, false
	}
	ring, ok := RingFromGroups(rs.Groups)
	if !ok {
		return Pattern{}, false
	}
	spec, err := tensor.ParseEinsum(ein.EinsumSpec)
	if err != nil || len(spec.Inputs) != 2 {
		return Pattern{}, false
	}
	sDim := rs.CollectiveAxis
	label := spec.Output[sDim]
	inL := strings.IndexByte(spec.Inputs[0], label)
	inR := strings.IndexByte(spec.Inputs[1], label)
	// The paper requires the scattered dim to be non-contracting: it
	// must come from exactly one operand (a batch label would appear in
	// both).
	var side, dim int
	switch {
	case inL >= 0 && inR < 0:
		side, dim = 0, inL
	case inR >= 0 && inL < 0:
		side, dim = 1, inR
	default:
		return Pattern{}, false
	}
	if ein.Operands[side].Shape[dim]%ring.N != 0 {
		return Pattern{}, false
	}
	return Pattern{
		Kind:       EinsumReduceScatter,
		Einsum:     ein,
		Collective: rs,
		Ring:       ring,
		Side:       -1,
		GatherDim:  -1,
		OtherDim:   -1,
		OutDim:     -1,
		ScatterDim: sDim,
		SliceSide:  side,
		SliceDim:   dim,
	}, true
}
