package core

import (
	"math"
	"math/rand"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/sim"
	"overlap/internal/topology"
)

// randomSite builds one AllGather-Einsum site with the given shard
// shape on an n-device ring: gather a's ring dimension, contract the
// result against a local operand.
func randomSite(rows, k, cols, n int) *hlo.Computation {
	groups := topology.NewRing(n).AxisGroups(0)
	c := hlo.NewComputation("fidelity")
	a := c.Parameter(0, "a", []int{rows, k})
	b := c.Parameter(1, "b", []int{k, cols})
	full := c.AllGather(a, 0, groups)
	c.Einsum("mk,kn->mn", full, b)
	return c
}

// TestCostModelFidelity checks the §5.5 analytic enable decision
// against the timing simulator's verdict on randomized sites: for each
// site, Evaluate's Enable bit should match whether the decomposed
// program actually simulates no slower than the blocking original.
// Disagreements are tolerated only when the two simulated step times
// are within a near-tie band — there the analytic estimate is allowed
// to round either way — and those are logged, not failed.
func TestCostModelFidelity(t *testing.T) {
	const (
		trials   = 80
		nearTie  = 0.25 // relative step-time gap below which disagreement is a logged tie
		baseSeed = 7
	)
	rng := rand.New(rand.NewSource(baseSeed))
	spec := machine.TPUv4()
	rings := []int{2, 3, 4, 5, 8}

	agreements, ties := 0, 0
	for i := 0; i < trials; i++ {
		// Realistically sized sites: at toy shapes the per-instruction
		// overhead (which §5.5's estimate deliberately ignores) dominates
		// and decomposition never pays.
		n := rings[rng.Intn(len(rings))]
		rows := 256 << rng.Intn(4)  // per-device gathered rows: 256..2048
		k := 1024 << rng.Intn(4)    // contraction dim: 1024..8192
		cols := 1024 << rng.Intn(4) // output cols: 1024..8192
		c := randomSite(rows, k, cols, n)

		opts := DefaultOptions(spec)
		opts.UseCostModel = false
		opts.Bidirectional = rng.Intn(2) == 0
		opts.Unroll = rng.Intn(2) == 0

		pats := FindPatterns(c, FirstChooser{})
		if len(pats) != 1 {
			t.Fatalf("trial %d: found %d patterns, want 1", i, len(pats))
		}
		d := Evaluate(pats[0], opts)

		base, err := sim.Simulate(c.Clone(), n, spec)
		if err != nil {
			t.Fatalf("trial %d: simulate blocking: %v", i, err)
		}
		dec := c.Clone()
		if _, err := Apply(dec, opts); err != nil {
			t.Fatalf("trial %d: apply: %v", i, err)
		}
		over, err := sim.Simulate(dec, n, spec)
		if err != nil {
			t.Fatalf("trial %d: simulate decomposed: %v", i, err)
		}

		simBetter := over.StepTime <= base.StepTime
		if d.Enable == simBetter {
			agreements++
			continue
		}
		gap := math.Abs(over.StepTime-base.StepTime) / base.StepTime
		if gap <= nearTie {
			ties++
			t.Logf("trial %d (n=%d rows=%d k=%d cols=%d bidi=%v unroll=%v): "+
				"near-tie disagreement — Enable=%v but sim %.3gs vs %.3gs (gap %.1f%%)",
				i, n, rows, k, cols, opts.Bidirectional, opts.Unroll,
				d.Enable, over.StepTime, base.StepTime, 100*gap)
			continue
		}
		t.Errorf("trial %d (n=%d rows=%d k=%d cols=%d bidi=%v unroll=%v): "+
			"cost model said Enable=%v but simulator measured decomposed %.3gs vs blocking %.3gs (gap %.1f%%)",
			i, n, rows, k, cols, opts.Bidirectional, opts.Unroll,
			d.Enable, over.StepTime, base.StepTime, 100*gap)
	}
	t.Logf("cost model agreed with the simulator on %d/%d randomized sites (%d near-tie disagreements)",
		agreements, trials, ties)
	if agreements == 0 {
		t.Error("cost model never agreed with the simulator")
	}
}
