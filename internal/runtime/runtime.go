// Package runtime executes SPMD computations concurrently: each logical
// device is a goroutine with its own tensor arena, ring links are
// buffered Go channels serviced by per-link goroutines, and the
// asynchronous CollectivePermuteStart/Done pair maps onto a genuinely
// non-blocking post + blocking wait. Where internal/sim *models* the
// overlap of communication with dependent computation, this package
// *performs* it: the schedule produced by internal/core decides how much
// wall-clock the in-flight transfers hide behind partial einsums.
//
// Correctness is anchored to the lockstep interpreter: local
// instructions evaluate through the shared sim.EvalLocal hook and group
// collectives through the same internal/collective kernels, so for any
// program both executors accept, the results are bit-identical by
// construction — the runtime tests cross-validate this on every golden
// decomposition case.
//
// Because Go cannot put a tensor on a real ICI link, wire time is
// *injected*: every transfer holds its (src,dst) link goroutine for the
// machine model's TransferTime scaled by Options.TimeScale, realized as
// a sleep. A sleeping link goroutine releases its OS thread, so device
// goroutines keep computing while transfers are "on the wire" — which is
// exactly the resource structure (compute engine vs transfer engine)
// whose overlap the paper exploits, and it holds even on a single-core
// host.
package runtime

import (
	"context"
	"fmt"
	"time"

	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/obs"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// Options configures a runtime execution.
type Options struct {
	// Spec supplies the wire-time model for injected transfer delays.
	// It is only consulted when TimeScale > 0.
	Spec machine.Spec

	// TimeScale converts modeled wire seconds into real slept seconds:
	// a transfer occupies its link for Spec wire time times TimeScale.
	// Zero (or negative) disables delay injection entirely — transfers
	// complete as fast as the channels move them — which is the right
	// setting for correctness tests.
	TimeScale float64

	// Trace records per-device, per-instruction wall-clock spans in the
	// sim.TraceEvent Chrome-trace format.
	Trace bool

	// TraceDevices bounds the devices recorded when tracing; zero means
	// sim.TraceMaxDevices, mirroring the simulator's window.
	TraceDevices int

	// Faults injects deterministic, seeded failures — link delays,
	// dropped or duplicated deliveries, device crashes — into the run.
	// Nil (or an empty plan) injects nothing. Every injected failure
	// surfaces as a structured *RunError, never a hang or wrong answer;
	// pair drop/delay plans with RunContext so a stalled transfer is
	// bounded by a deadline.
	Faults *FaultPlan

	// RunID correlates this execution with the caller's run-scoped
	// telemetry: it is echoed in Result.RunID and stamped into any
	// *RunError the run fails with, so traces, structured logs, and
	// failures all share one key. Empty mints a fresh obs.NewRunID.
	RunID string

	// Transport selects the fabric implementation transfers move over:
	// TransportChan (the default, also the zero value) keeps every
	// device in-process on buffered channels; TransportProc spawns one
	// OS worker process per communicating device and moves tensors as
	// length-prefixed frames over Unix sockets. Results are
	// bit-identical across transports — only the movement layer
	// changes.
	Transport TransportKind

	// KernelSplitK pins the GEMM split-K factor for this run: 0
	// inherits the ambient process-global setting
	// (tensor.SetKernelSplitK), 1 disables split-K reduction for the
	// run, and 2..64 forces that factor. Carrying the factor in the
	// run's options — instead of only in the process-global knob —
	// insulates concurrent runs from each other: applying one plan's
	// tuned factor can no longer change a plan already executing on
	// another goroutine.
	KernelSplitK int
}

// ExplicitSplitK converts a tuned split-K knob value (core.Knobs
// convention: < 2 means off) into the Options.KernelSplitK encoding,
// where the run must NOT fall back to the ambient global: off becomes
// the explicit 1, factors pass through.
func ExplicitSplitK(n int) int {
	if n < 2 {
		return 1
	}
	return n
}

// DefaultOptions returns options that inject wire delays from spec at a
// scale that makes overlap visible in wall-clock on commodity hosts:
// microsecond-class modeled transfers become millisecond-class sleeps.
// It panics on an invalid machine spec (see machine.Spec.Validate),
// since the spec is consulted for every injected delay.
func DefaultOptions(spec machine.Spec) Options {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return Options{Spec: spec, TimeScale: 1000}
}

// Result is what one concurrent execution produced and measured.
type Result struct {
	// RunID is the execution's run identity (Options.RunID, or the
	// freshly minted one when the caller supplied none).
	RunID string

	// Values is the root instruction's value on each device.
	Values []*tensor.Tensor

	// All holds every top-level instruction's per-device values, like
	// sim.InterpretAll (loop-body interiors are not retained).
	All map[*hlo.Instruction][]*tensor.Tensor

	// Breakdown is the step decomposition measured from real
	// timestamps, in seconds of wall-clock: StepTime is the slowest
	// device's total, Compute/Exposed average the devices' measured
	// local-evaluation and communication-wait spans, CollectiveWire
	// averages the injected wire occupancy each device initiated.
	Breakdown sim.Breakdown

	// Trace holds the recorded spans when Options.Trace was set, on the
	// same pid/tid tracks the simulator emits.
	Trace []sim.TraceEvent
}

// Run executes the computation on numDevices goroutine devices and
// returns the per-device results with measured timings. args follows
// sim.Interpret's convention: args[i][d] is parameter i's value on
// device d, and len(args[i]) == 1 supplies one replicated tensor.
func Run(c *hlo.Computation, numDevices int, args [][]*tensor.Tensor, opts Options) (*Result, error) {
	return RunContext(context.Background(), c, numDevices, args, opts)
}

// RunContext is Run with a deadline: when ctx expires or is cancelled,
// the run aborts — every blocked device, link, and rendezvous wakes —
// and the error is a *RunError attributing the stall to a device,
// instruction, and phase (and, under fault injection, to the fault that
// caused it), with the context error available via errors.Is. This is
// how a stalled transfer or livelocked rendezvous surfaces as a
// structured failure instead of hanging forever.
func RunContext(ctx context.Context, c *hlo.Computation, numDevices int, args [][]*tensor.Tensor, opts Options) (*Result, error) {
	if err := validate(c, numDevices, args, opts); err != nil {
		return nil, err
	}
	if err := opts.Faults.validate(numDevices); err != nil {
		return nil, err
	}
	if opts.RunID == "" {
		opts.RunID = obs.NewRunID()
	}
	eng, err := newEngine(c, numDevices, opts)
	if err != nil {
		return nil, err
	}
	return eng.run(ctx, args)
}

// transferDelay returns the injected wire occupancy of one point-to-point
// transfer of the given size.
func (e *engine) transferDelay(bytes int64) time.Duration {
	if e.opts.TimeScale <= 0 {
		return 0
	}
	return time.Duration(e.opts.Spec.TransferTime(bytes, 1) * e.opts.TimeScale * 1e9)
}

// collectiveDelay returns the injected wire occupancy of one blocking
// collective instruction.
func (e *engine) collectiveDelay(in *hlo.Instruction) time.Duration {
	if e.opts.TimeScale <= 0 {
		return 0
	}
	return time.Duration(e.opts.Spec.CollectiveTime(in) * e.opts.TimeScale * 1e9)
}

func shapedZero(shape []int) *tensor.Tensor { return tensor.New(shape...) }

func formatErr(format string, a ...interface{}) error {
	return fmt.Errorf("runtime: "+format, a...)
}
