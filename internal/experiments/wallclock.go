package experiments

import (
	"fmt"
	"math/rand"
	"text/tabwriter"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/runtime"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// wallclockParams sizes the measured site. The defaults make one run
// large enough (hundreds of MFLOPs, a 16 MiB packed weight) that the
// kernel-engine differences dominate scheduling noise; the test uses a
// miniature configuration.
type wallclockParams struct {
	devices int
	m, k, n int // per-shard partial-einsum shape
	reps    int // measured repetitions (plus one warm-up)
	splitK  int // factor for the split-K variant
}

func defaultWallclockParams() wallclockParams {
	return wallclockParams{devices: 4, m: 4, k: 8192, n: 256, reps: 3, splitK: 4}
}

// Wallclock measures the kernel engine on real hardware rather than in
// the simulator: one decomposed AllGather/einsum site whose weight is
// stored transposed (so every partial einsum packs its rhs) executed by
// the concurrent runtime, comparing the rolled loop, the expanded form,
// expanded with the pack cache disabled, and expanded with split-K. It
// reports measured step time — wall-clock, host-dependent, regenerated
// with the benchmark files rather than pinned by tests.
func Wallclock(spec machine.Spec) (string, []float64, error) {
	return wallclock(spec, defaultWallclockParams())
}

func wallclock(spec machine.Spec, p wallclockParams) (string, []float64, error) {
	build := func() *hlo.Computation {
		groups := topology.NewRing(p.devices).AxisGroups(0)
		c := hlo.NewComputation("wallclock")
		a := c.Parameter(0, "a", []int{p.m, p.k})
		w := c.Parameter(1, "w", []int{p.n, p.k}) // transposed: rhs packs
		full := c.AllGather(a, 0, groups)
		c.Einsum("mk,nk->mn", full, w)
		return c
	}
	rng := rand.New(rand.NewSource(71))
	shards := make([]*tensor.Tensor, p.devices)
	for d := range shards {
		shards[d] = tensor.Rand(rng, p.m, p.k)
	}
	args := [][]*tensor.Tensor{shards, {tensor.Rand(rng, p.n, p.k)}}

	// The ambient kernel knobs are process-global; run each variant
	// under its own setting and restore the caller's afterwards.
	prevSplit := tensor.KernelSplitK()
	defer tensor.SetKernelSplitK(prevSplit)
	defer tensor.SetPackCache(true)

	type variant struct {
		name      string
		rolled    bool
		packCache bool
		splitK    int
	}
	variants := []variant{
		{"rolled loop", true, true, 0},
		{"expanded", false, true, 0},
		{"expanded, pack cache off", false, false, 0},
		{fmt.Sprintf("expanded, split-K %d", p.splitK), false, true, p.splitK},
	}

	times := make([]float64, len(variants))
	var firstValues []*tensor.Tensor
	for i, v := range variants {
		c := build()
		opts := core.DefaultOptions(spec)
		opts.UseCostModel = false
		opts.Rolled = v.rolled
		if _, err := core.Apply(c, opts); err != nil {
			return "", nil, err
		}
		tensor.SetPackCache(v.packCache)
		tensor.SetKernelSplitK(v.splitK)
		best := 0.0
		for rep := 0; rep <= p.reps; rep++ {
			res, err := runtime.Run(c, p.devices, args, runtime.Options{Transport: DefaultTransport})
			if err != nil {
				return "", nil, err
			}
			if rep == 0 {
				// Warm-up populates the pack cache and the scheduler; its
				// time is discarded. Variants that keep the ascending-k
				// contract (every one but split-K, which reassociates by
				// design) must agree bit for bit.
				if v.splitK == 0 {
					if firstValues == nil {
						firstValues = res.Values
					} else {
						for d := range res.Values {
							if !res.Values[d].Equal(firstValues[d]) {
								return "", nil, fmt.Errorf("wallclock: variant %q diverges bitwise on device %d", v.name, d)
							}
						}
					}
				}
				continue
			}
			if best == 0 || res.Breakdown.StepTime < best {
				best = res.Breakdown.StepTime
			}
		}
		times[i] = best
	}

	base := times[1] // expanded form is the reference point
	normalized := make([]float64, len(variants))
	out := "Extension: measured kernel-engine wall-clock of one decomposed site (not simulated)\n"
	out += table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "configuration\tstep time\tnormalized (vs expanded)")
		for i, v := range variants {
			normalized[i] = times[i] / base
			fmt.Fprintf(w, "%s\t%.3f ms\t%.2fx\n", v.name, 1e3*times[i], normalized[i])
		}
	})
	return out, normalized, nil
}
