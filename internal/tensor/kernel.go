package tensor

import (
	"fmt"
	"strings"
	"sync"
)

// This file is the einsum kernel engine: any two-operand einsum whose
// labels classify cleanly into batch/M/N/K groups is lowered to a
// canonical batched-GEMM form — permute-packed into contiguous scratch
// buffers when the operand layout requires it — and executed by a
// cache-blocked microkernel with stride-1 inner loops and register
// accumulation, optionally partitioned across the process-wide worker
// pool (see parallel.go). Specs that do not lower (single-operand
// reductions, labels summed within one operand) fall back to the
// odometer reference path in einsum.go.
//
// Determinism contract: for every output element the contracted terms
// are accumulated in ascending flattened-K order — exactly the order
// the odometer reference uses — and each element is written by exactly
// one worker. Kernel results are therefore byte-identical to
// einsumReference and byte-identical across any worker count.

// gemmPlan is the shape-independent lowering of one einsum spec. Plans
// are cached per spec string (the compiler emits a small, fixed set of
// specs per program), so the steady-state dispatch path allocates
// nothing.
type gemmPlan struct {
	ok bool // lowerable to GEMM form

	// Label groups in canonical order: batch, m and n follow the
	// output's label order; k follows ContractedLabels() order (first
	// appearance in the inputs), which is what fixes the accumulation
	// order to match the reference.
	nBatch, nM, nN, nK int

	// lhsPerm maps packed [batch, m, k] dimension i to the operand
	// dimension holding that label; rhsPerm maps packed [batch, k, n];
	// outPerm maps packed [batch, m, n] to output dimensions.
	lhsPerm, rhsPerm, outPerm []int

	// Direct layouts: the operand (or output) is already row-major in
	// packed order, so its backing array is used without copying.
	lhsDirect, rhsDirect, outDirect bool

	// Persistent pack caches for the non-direct input sides (nil when
	// the side is direct or the spec does not lower). Plans live for
	// the process, so a pack cached here survives across loop
	// iterations and steps — the decomposed loop packs each recurring
	// weight shard once instead of once per iteration.
	lhsPack, rhsPack *packCache
}

// buildPlan classifies the spec's labels and constructs the packing
// permutations. A spec lowers when it has two operands and every label
// falls into one of the four GEMM groups:
//
//	batch — in lhs, rhs and the output
//	M     — in lhs and the output only
//	N     — in rhs and the output only
//	K     — in lhs and rhs only (contracted)
//
// A label present in exactly one operand and absent from the output
// (a sum within a single operand) has no GEMM group; such specs keep
// the reference path.
func buildPlan(spec EinsumSpec) *gemmPlan {
	p := &gemmPlan{}
	if len(spec.Inputs) != 2 {
		return p
	}
	lhs, rhs, out := spec.Inputs[0], spec.Inputs[1], spec.Output
	var batch, m, n, k []byte
	for i := 0; i < len(out); i++ {
		c := out[i]
		inL := strings.IndexByte(lhs, c) >= 0
		inR := strings.IndexByte(rhs, c) >= 0
		switch {
		case inL && inR:
			batch = append(batch, c)
		case inL:
			m = append(m, c)
		default:
			n = append(n, c) // parser guarantees presence in some operand
		}
	}
	for i := 0; i < len(lhs); i++ {
		c := lhs[i]
		if strings.IndexByte(out, c) >= 0 {
			continue
		}
		if strings.IndexByte(rhs, c) < 0 {
			return p // summed within lhs alone: not GEMM-shaped
		}
		k = append(k, c)
	}
	for i := 0; i < len(rhs); i++ {
		c := rhs[i]
		if strings.IndexByte(out, c) < 0 && strings.IndexByte(lhs, c) < 0 {
			return p // summed within rhs alone
		}
	}

	p.nBatch, p.nM, p.nN, p.nK = len(batch), len(m), len(n), len(k)
	lhsOrder := string(batch) + string(m) + string(k)
	rhsOrder := string(batch) + string(k) + string(n)
	outOrder := string(batch) + string(m) + string(n)
	p.lhsPerm = labelPositions(lhsOrder, lhs)
	p.rhsPerm = labelPositions(rhsOrder, rhs)
	p.outPerm = labelPositions(outOrder, out)
	p.lhsDirect = lhsOrder == lhs
	p.rhsDirect = rhsOrder == rhs
	p.outDirect = outOrder == out
	if !p.lhsDirect {
		p.lhsPack = newPackCache()
	}
	if !p.rhsDirect {
		p.rhsPack = newPackCache()
	}
	p.ok = true
	return p
}

// labelPositions returns, for each label of want, its dimension index
// in have.
func labelPositions(want, have string) []int {
	pos := make([]int, len(want))
	for i := 0; i < len(want); i++ {
		pos[i] = strings.IndexByte(have, want[i])
	}
	return pos
}

// sizes derives the flattened GEMM extents from the operand shapes.
func (p *gemmPlan) sizes(lhs, rhs *Tensor) (B, M, K, N int) {
	B, M, K, N = 1, 1, 1, 1
	for i := 0; i < p.nBatch; i++ {
		B *= lhs.shape[p.lhsPerm[i]]
	}
	for i := 0; i < p.nM; i++ {
		M *= lhs.shape[p.lhsPerm[p.nBatch+i]]
	}
	for i := 0; i < p.nK; i++ {
		K *= lhs.shape[p.lhsPerm[p.nBatch+p.nM+i]]
	}
	for i := 0; i < p.nN; i++ {
		N *= rhs.shape[p.rhsPerm[p.nBatch+p.nK+i]]
	}
	return
}

// check validates operand and output shapes against the plan without
// allocating: ranks match the spec, shared labels agree across
// operands, and out carries the induced output extents.
func (p *gemmPlan) check(out, lhs, rhs *Tensor) error {
	if len(lhs.shape) != len(p.lhsPerm) || len(rhs.shape) != len(p.rhsPerm) {
		return fmt.Errorf("tensor: einsum operand rank mismatch: got %v and %v", lhs.shape, rhs.shape)
	}
	if len(out.shape) != len(p.outPerm) {
		return fmt.Errorf("tensor: einsum output rank %d, want %d", len(out.shape), len(p.outPerm))
	}
	for i := 0; i < p.nBatch; i++ {
		l, r := lhs.shape[p.lhsPerm[i]], rhs.shape[p.rhsPerm[i]]
		if l != r {
			return fmt.Errorf("tensor: einsum batch size mismatch %d vs %d", l, r)
		}
		if o := out.shape[p.outPerm[i]]; o != l {
			return fmt.Errorf("tensor: einsum output batch size %d, want %d", o, l)
		}
	}
	for i := 0; i < p.nK; i++ {
		l, r := lhs.shape[p.lhsPerm[p.nBatch+p.nM+i]], rhs.shape[p.rhsPerm[p.nBatch+i]]
		if l != r {
			return fmt.Errorf("tensor: einsum contraction size mismatch %d vs %d", l, r)
		}
	}
	for i := 0; i < p.nM; i++ {
		if o, l := out.shape[p.outPerm[p.nBatch+i]], lhs.shape[p.lhsPerm[p.nBatch+i]]; o != l {
			return fmt.Errorf("tensor: einsum output size %d, want %d", o, l)
		}
	}
	for i := 0; i < p.nN; i++ {
		if o, r := out.shape[p.outPerm[p.nBatch+p.nM+i]], rhs.shape[p.rhsPerm[p.nBatch+p.nK+i]]; o != r {
			return fmt.Errorf("tensor: einsum output size %d, want %d", o, r)
		}
	}
	return nil
}

// run accumulates spec(lhs, rhs) into out — out's existing contents are
// the accumulator, so callers computing a fresh einsum pass a zeroed
// tensor. Packed input operands come from the plan's persistent pack
// cache (or pooled scratch when it is disabled); the accumulator is
// pre-packed into pooled scratch when the output layout is not direct,
// which keeps the per-element accumulation order identical to the
// reference in every case. The accumulator pack is never cached: the
// kernel itself mutates it.
func (p *gemmPlan) run(out, lhs, rhs *Tensor, workers, splitK int) {
	B, M, K, N := p.sizes(lhs, rhs)
	if B*M*N == 0 {
		return // no output elements (K == 0 alone leaves out unchanged below)
	}

	a := lhs.data
	var aBuf *[]float64
	if !p.lhsDirect {
		a, aBuf = packedOperand(p.lhsPack, lhs, p.lhsPerm, B*M*K)
	}
	b := rhs.data
	var bBuf *[]float64
	if !p.rhsDirect {
		b, bBuf = packedOperand(p.rhsPack, rhs, p.rhsPerm, B*K*N)
	}
	c := out.data
	var cBuf *[]float64
	if !p.outDirect {
		cBuf = getBuf(B * M * N)
		permCopy(*cBuf, out, p.outPerm, true)
		c = *cBuf
	}

	gemm(c, a, b, B, M, K, N, workers, splitK)

	if cBuf != nil {
		permCopy(*cBuf, out, p.outPerm, false)
		putBuf(cBuf)
	}
	if aBuf != nil {
		putBuf(aBuf)
	}
	if bBuf != nil {
		putBuf(bBuf)
	}
	out.noteMutation()
}

// permCopy moves elements between a tensor and a packed row-major
// buffer whose dimension order is t's dims permuted by perm. toPacked
// true packs t into packed; false scatters packed back into t. The
// innermost packed dimension is copied with stride-1 fast paths.
func permCopy(packed []float64, t *Tensor, perm []int, toPacked bool) {
	rank := len(perm)
	if rank == 0 {
		if toPacked {
			packed[0] = t.data[0]
		} else {
			t.data[0] = packed[0]
		}
		return
	}
	// Stack-backed scratch for the walk: einsum rank is bounded by the
	// 52 distinct labels, so heap allocations here (which would dominate
	// the packed accumulate path's steady state) are avoidable.
	var dimsArr, stridesArr, odoArr [52]int
	dims, strides := dimsArr[:rank], stridesArr[:rank]
	total := 1
	for i, pd := range perm {
		dims[i] = t.shape[pd]
		strides[i] = t.strides[pd]
		total *= dims[i]
	}
	if total == 0 {
		return
	}
	inner := dims[rank-1]
	innerStride := strides[rank-1]
	odo := odoArr[:rank-1]
	off := 0
	for d := 0; d < total; d += inner {
		row := packed[d : d+inner]
		switch {
		case innerStride == 1 && toPacked:
			copy(row, t.data[off:off+inner])
		case innerStride == 1:
			copy(t.data[off:off+inner], row)
		case toPacked:
			o := off
			for j := range row {
				row[j] = t.data[o]
				o += innerStride
			}
		default:
			o := off
			for j := range row {
				t.data[o] = row[j]
				o += innerStride
			}
		}
		for i := rank - 2; i >= 0; i-- {
			odo[i]++
			off += strides[i]
			if odo[i] < dims[i] {
				break
			}
			odo[i] = 0
			off -= dims[i] * strides[i]
		}
	}
}

// gemmParallelMinFlops is the work floor below which partitioning the
// output across workers costs more than it saves (the dispatch is a few
// microseconds; this is roughly a 64^3 matmul).
const gemmParallelMinFlops = 1 << 19

// gemm executes C[g,i,j] += sum_k A[g,i,k]*B[g,k,j] over contiguous
// row-major buffers, choosing a strategy by shape:
//
//   - split-K tree reduction when a factor is planned and the shape is
//     skinny (splitk.go) — byte-identical across worker counts for a
//     fixed factor, reassociated relative to factor 0;
//   - row partition when the output has at least as many rows as
//     columns — each row owned by one worker, ascending-k, so bytes
//     match the reference at any worker count;
//   - column partition for skinny outputs (few rows, many columns) —
//     each column range owned by one worker, still ascending-k per
//     element, so bytes again match the reference exactly.
//
// Only the split-K factor — a planned, fingerprinted decision — ever
// changes result bytes; the worker count and the rows/columns choice
// never do.
func gemm(c, a, b []float64, B, M, K, N, workers, splitK int) {
	rows := B * M
	if s := splitFactor(rows, K, N, splitK); s > 1 {
		gemmSplitK(c, a, b, B, M, K, N, s, workers)
		return
	}
	flops := 2 * int64(rows) * int64(K) * int64(N)
	if workers > 1 && flops >= gemmParallelMinFlops {
		switch {
		case rows >= N && rows > 1:
			parallelRows(rows, workers, func(lo, hi int) {
				gemmRows(c, a, b, M, K, N, lo, hi)
			})
			return
		case N > 1:
			parallelRows(N, workers, func(lo, hi int) {
				gemmCols(c, a, b, B, M, K, N, lo, hi)
			})
			return
		}
	}
	gemmRows(c, a, b, M, K, N, 0, rows)
}

// gemmRows computes output rows [lo, hi) — row r is batch r/M, row r%M.
// Rows within one batch are processed four at a time so each streamed
// row of B feeds four register accumulating C rows.
func gemmRows(c, a, b []float64, M, K, N, lo, hi int) {
	if K == 0 || N == 0 {
		return
	}
	r := lo
	for r < hi {
		g, i := r/M, r%M
		span := hi - r
		if left := M - i; left < span {
			span = left
		}
		bmat := b[g*K*N : (g+1)*K*N]
		aoff := (g*M + i) * K
		coff := (g*M + i) * N
		for span >= 4 {
			gemm4Rows(c[coff:coff+4*N], a[aoff:aoff+4*K], bmat, K, K, N)
			span -= 4
			r += 4
			aoff += 4 * K
			coff += 4 * N
		}
		for ; span > 0; span-- {
			gemmRow(c[coff:coff+N], a[aoff:aoff+K], bmat, K, N)
			r++
			aoff += K
			coff += N
		}
	}
}

// gemm4Rows updates four C rows against the shared B panel: one load of
// each B row feeds four multiply-accumulates, quartering the B memory
// traffic of the single-row kernel. K is the panel length; aStride the
// distance between consecutive A rows (== K on the full matrix, larger
// when a split-K chunk reads a K-subrange of each row).
func gemm4Rows(c, a, b []float64, K, aStride, N int) {
	c0 := c[0*N : 1*N]
	c1 := c[1*N : 2*N]
	c2 := c[2*N : 3*N]
	c3 := c[3*N : 4*N]
	for p := 0; p < K; p++ {
		brow := b[p*N : p*N+N]
		a0, a1, a2, a3 := a[p], a[aStride+p], a[2*aStride+p], a[3*aStride+p]
		for j, bv := range brow {
			c0[j] += a0 * bv
			c1[j] += a1 * bv
			c2[j] += a2 * bv
			c3[j] += a3 * bv
		}
	}
}

// gemmRow updates one C row, unrolling K by four. The unrolled body
// adds each term separately so the per-element accumulation order stays
// k-ascending (a fused sum would round differently).
func gemmRow(crow, arow, b []float64, K, N int) {
	p := 0
	for ; p+4 <= K; p += 4 {
		a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
		b0 := b[p*N : p*N+N]
		b1 := b[(p+1)*N : (p+1)*N+N]
		b2 := b[(p+2)*N : (p+2)*N+N]
		b3 := b[(p+3)*N : (p+3)*N+N]
		for j := range b0 {
			s := crow[j]
			s += a0 * b0[j]
			s += a1 * b1[j]
			s += a2 * b2[j]
			s += a3 * b3[j]
			crow[j] = s
		}
	}
	for ; p < K; p++ {
		ap := arow[p]
		brow := b[p*N : p*N+N]
		for j, bv := range brow {
			crow[j] += ap * bv
		}
	}
}

// gemmCols computes output columns [lo, hi) of every row — the
// partition axis for skinny outputs, where too few rows exist to feed
// the worker pool. Each element still accumulates its K terms in
// ascending order and is written by exactly one worker, so the bytes
// match the reference at any worker count.
func gemmCols(c, a, b []float64, B, M, K, N, lo, hi int) {
	w := hi - lo
	if K == 0 || w <= 0 {
		return
	}
	for g := 0; g < B; g++ {
		bmat := b[g*K*N:]
		for i := 0; i < M; i++ {
			r := g*M + i
			arow := a[r*K : r*K+K]
			crow := c[r*N+lo : r*N+hi]
			p := 0
			for ; p+4 <= K; p += 4 {
				a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
				b0 := bmat[p*N+lo : p*N+lo+w]
				b1 := bmat[(p+1)*N+lo : (p+1)*N+lo+w]
				b2 := bmat[(p+2)*N+lo : (p+2)*N+lo+w]
				b3 := bmat[(p+3)*N+lo : (p+3)*N+lo+w]
				for j := range b0 {
					s := crow[j]
					s += a0 * b0[j]
					s += a1 * b1[j]
					s += a2 * b2[j]
					s += a3 * b3[j]
					crow[j] = s
				}
			}
			for ; p < K; p++ {
				ap := arow[p]
				brow := bmat[p*N+lo : p*N+lo+w]
				for j, bv := range brow {
					crow[j] += ap * bv
				}
			}
		}
	}
}

// ---- spec/plan cache and dispatch ----

// einsumEntry is the cached compilation of one spec string: the parsed
// form, its GEMM plan, or the parse error. The cache is unbounded but
// keyed by compiler-emitted spec strings, of which any program has a
// small fixed set.
type einsumEntry struct {
	spec EinsumSpec
	plan *gemmPlan
	err  error
}

var einsumCache sync.Map // spec string -> *einsumEntry

func einsumLookup(spec string) (*einsumEntry, error) {
	if v, ok := einsumCache.Load(spec); ok {
		e := v.(*einsumEntry)
		return e, e.err
	}
	parsed, err := ParseEinsum(spec)
	e := &einsumEntry{spec: parsed, err: err}
	if err == nil {
		e.plan = buildPlan(parsed)
	}
	einsumCache.Store(spec, e)
	return e, e.err
}

// EinsumAddInto accumulates spec(lhs, rhs) into acc in place and
// returns acc. It is the fused form of Add(acc, Einsum(spec, lhs, rhs))
// that the executors use for the decomposed ReduceScatter accumulation
// chain: no partial-result temporary is materialized, the contracted
// terms land directly on the circulating accumulator shard (packing
// scratch, when the layout needs it, comes from the buffer pool). Each
// element accumulates its terms in ascending contraction order on top
// of acc's prior value. Like Einsum, it panics on malformed specs or
// mismatched shapes.
func EinsumAddInto(acc *Tensor, spec string, lhs, rhs *Tensor) *Tensor {
	return EinsumAddIntoSplitK(acc, spec, lhs, rhs, SplitKInherit)
}

// EinsumAddIntoSplitK is EinsumAddInto with an explicit split-K factor
// for this call: SplitKInherit follows the process-wide setting, 0/1
// forces the split off, >= 2 forces that factor (clamped). Per-run
// executors use it so a tuned plan's factor travels with the run
// instead of through the mutable global.
func EinsumAddIntoSplitK(acc *Tensor, spec string, lhs, rhs *Tensor, splitK int) *Tensor {
	e, err := einsumLookup(spec)
	if err != nil {
		panic(err)
	}
	if len(e.spec.Inputs) != 2 {
		panic(fmt.Sprintf("tensor: EinsumAddInto needs a two-operand spec, got %q", spec))
	}
	t0, timed := kernelTimerStart()
	if e.plan.ok {
		if err := e.plan.check(acc, lhs, rhs); err != nil {
			panic(err)
		}
		e.plan.run(acc, lhs, rhs, KernelWorkers(), splitK)
		kernelGemmOps.Inc()
	} else {
		if err := checkReferenceShapes(e.spec, acc, lhs, rhs); err != nil {
			panic(err)
		}
		einsumReference(acc, e.spec, []*Tensor{lhs, rhs})
		kernelFallbackOps.Inc()
	}
	kernelAccumOps.Inc()
	kernelTimerEnd(t0, timed)
	return acc
}

// checkReferenceShapes validates an accumulate target against the
// spec's induced output shape on the fallback path.
func checkReferenceShapes(spec EinsumSpec, acc, lhs, rhs *Tensor) error {
	outShape, err := spec.OutputShape(lhs.shape, rhs.shape)
	if err != nil {
		return err
	}
	if len(outShape) != len(acc.shape) {
		return fmt.Errorf("tensor: EinsumAddInto accumulator rank %d, want %d", len(acc.shape), len(outShape))
	}
	for i := range outShape {
		if acc.shape[i] != outShape[i] {
			return fmt.Errorf("tensor: EinsumAddInto accumulator shape %v, want %v", acc.shape, outShape)
		}
	}
	return nil
}
