package autotune_test

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"overlap/internal/autotune"
	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/models"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// site builds a canonical AllGather-Einsum decomposition site on a ring
// of n devices, with per-device random arguments.
func site(n int, seed int64) (*hlo.Computation, [][]*tensor.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	groups := topology.NewRing(n).AxisGroups(0)
	const m, k, nn = 8, 6, 10
	c := hlo.NewComputation("site")
	a := c.Parameter(0, "a", []int{m, k})
	b := c.Parameter(1, "b", []int{k, nn})
	full := c.AllGather(a, 0, groups)
	c.Einsum("mk,kn->mn", full, b)
	perDevice := func(shape []int) []*tensor.Tensor {
		out := make([]*tensor.Tensor, n)
		for d := range out {
			out[d] = tensor.Rand(rng, shape...)
		}
		return out
	}
	return c, [][]*tensor.Tensor{perDevice([]int{m, k}), perDevice([]int{k, nn})}
}

// miniArgs supplies one replicated random tensor per parameter.
func miniArgs(c *hlo.Computation, seed int64) [][]*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	params := c.Parameters()
	args := make([][]*tensor.Tensor, len(params))
	for i, p := range params {
		args[i] = []*tensor.Tensor{tensor.Rand(rng, p.Shape...)}
	}
	return args
}

func tuneOpts(t *testing.T) autotune.Options {
	t.Helper()
	return autotune.Options{
		Spec:      machine.TPUv4(),
		TopK:      2,
		TimeScale: 50,
		CachePath: filepath.Join(t.TempDir(), "autotune.json"),
	}
}

// defaultEquivalent returns the measured wall-clock of the candidate
// standing in for the paper's DefaultOptions configuration (directly or
// as the canonical representative it deduplicated into), and whether
// one was executed.
func defaultEquivalent(res *autotune.Result, spec machine.Spec) (float64, bool) {
	want := core.DefaultOptions(spec)
	want.UseCostModel = false
	fp := want.Fingerprint()
	canonical := ""
	for _, cand := range res.Candidates {
		if !cand.Baseline && cand.Err == "" && cand.Opts.Fingerprint() == fp {
			canonical = cand.Name
			if cand.DuplicateOf != "" {
				canonical = cand.DuplicateOf
			}
		}
	}
	for _, cand := range res.Candidates {
		if cand.Name == canonical && cand.Executed {
			return cand.MeasuredWall, true
		}
	}
	return 0, false
}

// TestTuneSite runs the search end to end on a single decomposition
// site and checks the structural guarantees: candidates enumerated and
// ranked, the default configuration measured, every executed candidate
// cross-checked, and the winner no slower than any measured candidate.
func TestTuneSite(t *testing.T) {
	const n = 4
	c, args := site(n, 1)
	opts := tuneOpts(t)
	res, err := autotune.Tune(c, n, args, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("cold tune reported a cache hit")
	}
	if res.Executions == 0 {
		t.Fatal("cold tune executed nothing")
	}
	if res.BestName == "" {
		t.Fatal("no winner")
	}
	if len(res.Candidates) < 10 {
		t.Fatalf("only %d candidates enumerated", len(res.Candidates))
	}
	var executed int
	for _, cand := range res.Candidates {
		if !cand.Executed {
			continue
		}
		executed++
		if !cand.Checked {
			t.Errorf("%s executed without interpreter cross-check", cand.Name)
		}
		if cand.MeasuredWall < res.MeasuredWall {
			t.Errorf("%s measured %v, faster than winner %v", cand.Name, cand.MeasuredWall, res.MeasuredWall)
		}
	}
	if executed < 2 {
		t.Fatalf("stage 2 executed %d candidates, want >= 2", executed)
	}
	defWall, ok := defaultEquivalent(res, opts.Spec)
	if !ok {
		t.Fatal("DefaultOptions configuration was not measured")
	}
	if res.MeasuredWall > defWall {
		t.Fatalf("winner measured %v slower than DefaultOptions %v", res.MeasuredWall, defWall)
	}
}

// TestWarmCacheZeroExecutions pins the decision cache contract: a
// second Tune of the same (program, spec, devices) returns the stored
// decision and performs zero runtime executions.
func TestWarmCacheZeroExecutions(t *testing.T) {
	const n = 4
	c, args := site(n, 2)
	opts := tuneOpts(t)
	opts.Calibrate = true

	cold, err := autotune.Tune(c, n, args, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := autotune.Tune(c, n, args, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("second tune missed the cache")
	}
	if warm.Executions != 0 {
		t.Fatalf("warm tune performed %d runtime executions, want 0", warm.Executions)
	}
	if warm.BestIsBaseline != cold.BestIsBaseline || warm.BestName != cold.BestName {
		t.Fatalf("warm decision %q (baseline=%v) != cold %q (baseline=%v)",
			warm.BestName, warm.BestIsBaseline, cold.BestName, cold.BestIsBaseline)
	}
	if !warm.BestIsBaseline && warm.Best.Fingerprint() != cold.Best.Fingerprint() {
		t.Fatalf("warm options %s != cold %s", warm.Best.Fingerprint(), cold.Best.Fingerprint())
	}
	if warm.Calibration != cold.Calibration {
		t.Fatalf("calibration not restored from cache: %+v != %+v", warm.Calibration, cold.Calibration)
	}

	// A different device count is a different decision.
	other, err := autotune.Tune(c, n, args, autotune.Options{
		Spec: opts.Spec, TopK: 2, TimeScale: 50, CachePath: opts.CachePath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !other.CacheHit {
		t.Fatal("same key should still hit")
	}
	c2, args2 := site(2, 2)
	miss, err := autotune.Tune(c2, 2, args2, autotune.Options{
		Spec: opts.Spec, TopK: 2, TimeScale: 50, CachePath: opts.CachePath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if miss.CacheHit {
		t.Fatal("different ring size must not hit the cache")
	}
}

// TestCacheCorruptionTolerated checks a rotten cache file degrades to a
// cold tune instead of an error, and is repaired by the store.
func TestCacheCorruptionTolerated(t *testing.T) {
	const n = 4
	c, args := site(n, 3)
	opts := tuneOpts(t)
	if err := writeFile(opts.CachePath, "{not json"); err != nil {
		t.Fatal(err)
	}
	res, err := autotune.Tune(c, n, args, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("corrupt cache produced a hit")
	}
	warm, err := autotune.Tune(c, n, args, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("store did not repair the corrupt cache")
	}
}

// TestCalibration checks the fitted spec is valid and the reported
// residual is a finite relative error.
func TestCalibration(t *testing.T) {
	const n = 4
	c, args := site(n, 4)
	opts := tuneOpts(t)
	opts.Calibrate = true
	opts.TopK = 3
	res, err := autotune.Tune(c, n, args, opts)
	if err != nil {
		t.Fatal(err)
	}
	cal := res.Calibration
	if cal.ComputeScale <= 0 || cal.WireScale <= 0 || cal.OverheadScale <= 0 {
		t.Fatalf("non-positive calibration factors: %+v", cal)
	}
	if err := res.CalibratedSpec.Validate(); err != nil {
		t.Fatalf("calibrated spec invalid: %v", err)
	}
	if res.Residual < 0 || math.IsNaN(res.Residual) || math.IsInf(res.Residual, 0) {
		t.Fatalf("residual %v, want finite >= 0", res.Residual)
	}
	// The fit must actually move the spec: the runtime's Go compute is
	// orders of magnitude off the TPU model, so identity would mean the
	// fit did not run.
	if cal == machine.Identity() {
		t.Fatal("calibration came back exactly identity")
	}
}

func writeFile(path, content string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestTuneMiniatures pins the headline acceptance: for every Table 1/2
// model miniaturized onto 4- and 8-device rings, the tuned options'
// measured runtime is never slower than the DefaultOptions
// configuration measured in the same session, and at least one model
// strictly improves on it.
func TestTuneMiniatures(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature sweep is long")
	}
	spec := machine.TPUv4()
	seen := map[string]bool{}
	improved := 0
	for _, cfg := range append(models.Table1(), models.Table2()...) {
		if seen[cfg.Name] {
			continue // GPT_1T appears in both tables
		}
		seen[cfg.Name] = true
		for _, n := range []int{4, 8} {
			mini, err := models.Miniature(cfg, n, 2)
			if err != nil {
				t.Fatalf("%s/%d: %v", cfg.Name, n, err)
			}
			c, err := models.BuildLayerStep(mini)
			if err != nil {
				t.Fatalf("%s/%d: %v", cfg.Name, n, err)
			}
			args := miniArgs(c, int64(n))
			res, err := autotune.Tune(c, n, args, autotune.Options{
				Spec:      spec,
				TopK:      2,
				TimeScale: 25,
				CachePath: filepath.Join(t.TempDir(), "cache.json"),
			})
			if err != nil {
				t.Fatalf("%s/%d: %v", cfg.Name, n, err)
			}
			defWall, ok := defaultEquivalent(res, spec)
			if !ok {
				t.Fatalf("%s/%d: DefaultOptions configuration not measured", cfg.Name, n)
			}
			if res.MeasuredWall > defWall {
				t.Errorf("%s/%d: tuned %v slower than default %v", cfg.Name, n, res.MeasuredWall, defWall)
			}
			if res.MeasuredWall < defWall {
				improved++
			}
		}
	}
	if improved == 0 {
		t.Error("no model improved on DefaultOptions anywhere in the sweep")
	}
}
