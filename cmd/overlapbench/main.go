// Command overlapbench regenerates the paper's evaluation tables and
// figures on the simulated TPU-v4-like cluster.
//
// Usage:
//
//	overlapbench [flags] [experiment ...]
//
// With no arguments every experiment runs in presentation order. Known
// experiments: table1 table2 fig1 fig12 fig13 fig14 fig15 fig16 energy
// inference.
//
// With -json each experiment emits one JSON object per line (its id,
// headline speedup series, and rendered text), so benchmark
// trajectories can be tracked across revisions with standard tools.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"overlap"
)

func main() {
	// The wall-clock experiments can run on the process transport, which
	// re-executes this binary as its workers; hook before flag work.
	overlap.MaybeTransportWorker()

	linkGBs := flag.Float64("link-gbs", 0, "override per-direction link bandwidth (GB/s, 4-byte-element equivalent)")
	peakTF := flag.Float64("peak-tflops", 0, "override per-chip peak TFLOP/s")
	asJSON := flag.Bool("json", false, "emit one machine-readable JSON object per experiment")
	metricsOut := flag.String("metrics-out", "", "export telemetry to this file (Prometheus text, or JSON with a .json suffix)")
	kernelWorkers := flag.Int("kernel-workers", 0, "intra-op einsum kernel parallelism (0 = GOMAXPROCS); results are byte-identical for any value")
	kernelSplitK := flag.Int("kernel-splitk", 0, "split-K factor for skinny einsum kernels (0 = off); factors >= 2 reassociate the contraction deterministically")
	transport := flag.String("transport", "chan", "fabric transport for the wall-clock experiments: chan or proc (the transport experiment always measures both)")
	flag.Parse()

	overlap.SetKernelWorkers(*kernelWorkers)
	overlap.SetKernelSplitK(*kernelSplitK)
	tk, err := overlap.ParseTransport(*transport)
	if err != nil {
		fail(err)
	}
	overlap.SetExperimentTransport(tk)

	spec := overlap.TPUv4()
	if *linkGBs != 0 {
		spec.LinkBandwidth = *linkGBs * 1e9
	}
	if *peakTF != 0 {
		spec.PeakFLOPS = *peakTF * 1e12
	}
	if err := spec.Validate(); err != nil {
		fail(err)
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = overlap.ExperimentIDs()
	}
	enc := json.NewEncoder(os.Stdout)
	for _, id := range ids {
		out, err := overlap.RunExperimentStructured(id, spec)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			if err := enc.Encode(out); err != nil {
				fail(err)
			}
			continue
		}
		fmt.Println(out.Text)
	}
	if *metricsOut != "" {
		if err := overlap.Metrics().WriteFile(*metricsOut); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "overlapbench: %v\n", err)
	os.Exit(1)
}
