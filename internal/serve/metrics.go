package serve

import "overlap/internal/obs"

// Serving-side instrumentation handles, resolved once against the
// process-wide registry. The overlap_serve_* family answers the
// operational questions a long-running daemon gets asked: how deep is
// the queue, how well do requests coalesce, how often does the hot path
// skip compilation, how long do runs wait for an admission slot, and
// where each request's latency went.
var (
	svRequests = obs.Default().Counter("overlap_serve_requests_total",
		"Requests accepted by the daemon (all endpoints that reach a handler).")
	svErrors = obs.Default().Counter("overlap_serve_errors_total",
		"Requests that ended in an error response (4xx or 5xx).")
	svRunErrors = obs.Default().Counter("overlap_serve_run_errors_total",
		"Served runs that failed with a structured runtime error (5xx, daemon stays up).")
	svOverload = obs.Default().Counter("overlap_serve_overload_total",
		"Requests rejected because the batcher inbox was full (503).")
	svQueueDepth = obs.Default().Gauge("overlap_serve_queue_depth",
		"Requests currently waiting in the batcher inbox.")
	svBatchSize = obs.Default().Histogram("overlap_serve_batch_size",
		"Requests per batcher flush.", obs.ExpBuckets(1, 2, 7))
	svPlanHits = obs.Default().Counter("overlap_serve_plan_cache_hits_total",
		"Plan acquisitions answered by the in-memory plan cache (zero compilation).")
	svPlanMisses = obs.Default().Counter("overlap_serve_plan_cache_misses_total",
		"Plan acquisitions that had to compile (tune cache may still spare executions).")
	svPlanCoalesced = obs.Default().Counter("overlap_serve_plan_coalesced_total",
		"Plan acquisitions that joined a compile already in flight for the same fingerprint.")
	svPlanEvictions = obs.Default().Counter("overlap_serve_plan_cache_evictions_total",
		"Plans evicted from the in-memory LRU.")
	svCompiles = obs.Default().Counter("overlap_serve_compiles_total",
		"Plan compilations performed (tune + apply); the warm path keeps this flat.")
	svInflight = obs.Default().Gauge("overlap_serve_inflight_runs",
		"Runs currently holding an admission slot.")
	svAdmissionWait = obs.Default().Histogram("overlap_serve_admission_wait_seconds",
		"Time served runs waited for an admission slot.", obs.TimeBuckets())
	svQueueSeconds = obs.Default().Histogram("overlap_serve_queue_seconds",
		"Time requests spent in the batcher inbox before their flush.", obs.TimeBuckets())
	svPlanSeconds = obs.Default().Histogram("overlap_serve_plan_seconds",
		"Time from flush to plan availability (zero-ish on cache hits).", obs.TimeBuckets())
	svRunSeconds = obs.Default().Histogram("overlap_serve_run_seconds",
		"Wall-clock of the runtime execution phase of served runs.", obs.TimeBuckets())
	svFailedRunSeconds = obs.Default().Histogram("overlap_serve_failed_run_seconds",
		"End-to-end latency of served runs that failed (queue + plan + admission + run until abort).",
		obs.TimeBuckets())
	svTracesRecorded = obs.Default().Counter("overlap_serve_traces_recorded_total",
		"Run traces recorded into the flight recorder.")
	svTraceEvictions = obs.Default().Counter("overlap_serve_trace_evictions_total",
		"Run traces dropped when the flight-recorder ring wrapped (kept-set survivors excluded).")
)
