package core

import (
	"sort"

	"overlap/internal/hlo"
)

// ScheduleMinMemory reorders the computation with a greedy list
// scheduler that minimizes live bytes — the "existing instruction
// scheduling pass (which uses an algorithm that tries to minimize the
// memory usage)" whose output §5.2 feeds to the overlap schedulers. At
// every step it picks, among ready instructions, the one with the best
// immediate liveness delta: freed operand bytes minus allocated result
// bytes, breaking ties toward the original order.
//
// The pipeline runs it before the overlap scheduling pass so the
// bottom-up scheduler starts from the memory-friendly order the paper
// assumes (its tie-breaking falls back to that order).
func ScheduleMinMemory(c *hlo.Computation) error {
	instrs := c.Instructions()
	origPos := make(map[*hlo.Instruction]int, len(instrs))
	for i, in := range instrs {
		origPos[in] = i
	}
	opsLeft := make(map[*hlo.Instruction]int, len(instrs))
	usersLeft := make(map[*hlo.Instruction]int, len(instrs))
	for _, in := range instrs {
		seen := map[*hlo.Instruction]bool{}
		for _, op := range in.Operands {
			if !seen[op] {
				seen[op] = true
				opsLeft[in]++
			}
		}
		usersLeft[in] = in.NumUsers()
	}

	// delta estimates the immediate live-bytes change of scheduling in:
	// its own allocation minus operands whose last use this is.
	delta := func(in *hlo.Instruction) int64 {
		d := allocBytes(in)
		seen := map[*hlo.Instruction]bool{}
		for _, op := range in.Operands {
			if seen[op] {
				continue
			}
			seen[op] = true
			if usersLeft[op] == 1 && op.Op != hlo.OpParameter {
				d -= allocBytes(op)
			}
		}
		return d
	}

	var ready []*hlo.Instruction
	for _, in := range instrs {
		if opsLeft[in] == 0 {
			ready = append(ready, in)
		}
	}
	var order []*hlo.Instruction
	for len(order) < len(instrs) {
		if len(ready) == 0 {
			break
		}
		sort.SliceStable(ready, func(i, j int) bool {
			di, dj := delta(ready[i]), delta(ready[j])
			if di != dj {
				return di < dj
			}
			return origPos[ready[i]] < origPos[ready[j]]
		})
		cand := ready[0]
		ready = ready[1:]
		order = append(order, cand)
		seen := map[*hlo.Instruction]bool{}
		for _, op := range cand.Operands {
			if !seen[op] {
				seen[op] = true
				usersLeft[op]--
			}
		}
		for _, u := range cand.Users() {
			opsLeft[u]--
			if opsLeft[u] == 0 {
				ready = append(ready, u)
			}
		}
	}
	return c.SetSchedule(order)
}

// allocBytes mirrors the memory analysis' allocation rules for the
// common cases the greedy delta needs.
func allocBytes(in *hlo.Instruction) int64 {
	switch in.Op {
	case hlo.OpTuple, hlo.OpReshape, hlo.OpCollectivePermuteDone:
		return 0
	default:
		return in.ByteSize()
	}
}
