package experiments

import (
	"strings"
	"testing"

	"overlap/internal/machine"
	"overlap/internal/tensor"
)

// TestWallclockShape runs the measured-kernel experiment at miniature
// sizes: every variant must produce a positive time, the normalized
// series must line up with the variants, and the process-global kernel
// knobs must come back as they went in.
func TestWallclockShape(t *testing.T) {
	tensor.SetKernelSplitK(0)
	defer tensor.SetKernelSplitK(0)
	p := wallclockParams{devices: 2, m: 2, k: 256, n: 16, reps: 1, splitK: 4}
	text, normalized, err := wallclock(machine.TPUv4(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(normalized) != 4 {
		t.Fatalf("got %d normalized times, want 4", len(normalized))
	}
	for i, v := range normalized {
		if v <= 0 {
			t.Fatalf("variant %d has non-positive normalized time %g", i, v)
		}
	}
	for _, label := range []string{"rolled loop", "expanded", "pack cache off", "split-K 4"} {
		if !strings.Contains(text, label) {
			t.Fatalf("report is missing the %q variant:\n%s", label, text)
		}
	}
	if got := tensor.KernelSplitK(); got != 0 {
		t.Fatalf("wallclock leaked split-K factor %d", got)
	}
	if !tensor.PackCacheEnabled() {
		t.Fatal("wallclock leaked a disabled pack cache")
	}
}
