package autotune_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"overlap/internal/autotune"
	"overlap/internal/core"
	"overlap/internal/machine"
	"overlap/internal/obs"
	"overlap/internal/runtime"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

var updatePlanGolden = flag.Bool("update", false, "rewrite golden files")

// TestPlanGoldenJSON pins the serialized Plan schema — field names,
// order, and the version field — so the artifact the daemon serves, the
// CLIs round-trip, and a future reader decodes can never drift
// silently. Run with -update to accept intentional schema changes
// (which must also bump PlanVersion).
func TestPlanGoldenJSON(t *testing.T) {
	c, _ := site(2, 1)
	spec := machine.TPUv4()
	opts := core4DefaultKnobs()
	p := &autotune.Plan{
		Version:      autotune.PlanVersion,
		Fingerprint:  "fixedprog|fixedspec|n=2|kw=1|obs=1",
		Devices:      2,
		SpecName:     spec.Name,
		BestName:     "golden",
		Knobs:        opts,
		Program:      c.Format(),
		PredictedSec: 0.001,
		MeasuredSec:  0.002,
		Calibration:  machine.Identity(),
		// Created deliberately empty: golden fixtures are timeless.
	}
	got, err := p.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "plan.golden")
	if *updatePlanGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(want) != string(got) {
		t.Fatalf("Plan JSON schema changed; bump PlanVersion and run with -update if intended.\n--- got ---\n%s", got)
	}
	if !strings.Contains(string(got), `"version": 1`) {
		t.Fatal("serialized plan does not carry the version field")
	}

	back, err := autotune.DecodePlan(got)
	if err != nil {
		t.Fatalf("golden plan does not decode: %v", err)
	}
	if back.Fingerprint != p.Fingerprint || back.Program != p.Program {
		t.Fatal("golden plan did not round-trip")
	}
}

// TestPlanCompileExecutes compiles a plan end to end and proves the
// artifact is self-contained: decode from JSON, parse the embedded
// program, execute it on the runtime, and match the lockstep
// interpreter bit for bit.
func TestPlanCompileExecutes(t *testing.T) {
	c, args := site(4, 7)
	opts := tuneOpts(t)
	plan, err := autotune.Compile(c, 4, args, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Version != autotune.PlanVersion {
		t.Fatalf("compiled plan version %d, want %d", plan.Version, autotune.PlanVersion)
	}
	if plan.Fingerprint == "" || plan.Program == "" {
		t.Fatal("compiled plan is missing its fingerprint or program")
	}

	data, err := plan.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := autotune.DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := back.Computation()
	if err != nil {
		t.Fatal(err)
	}

	want, err := sim.Interpret(exec, 4, args)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(exec, 4, args, runtime.Options{Spec: opts.Spec, TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	for d := range want {
		if !res.Values[d].Equal(want[d]) {
			t.Fatalf("device %d: decoded plan diverges from the interpreter", d)
		}
	}
}

// TestDecodePlanRejects pins the failure modes: wrong version, torn
// JSON, and an embedded program that no longer parses must all error.
func TestDecodePlanRejects(t *testing.T) {
	c, args := site(2, 3)
	plan, err := autotune.Compile(c, 2, args, tuneOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	good, err := plan.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := autotune.DecodePlan(good[:len(good)/2]); err == nil {
		t.Fatal("truncated plan decoded")
	}
	if _, err := autotune.DecodePlan([]byte(strings.Replace(string(good),
		`"version": 1`, `"version": 99`, 1))); err == nil {
		t.Fatal("version-mismatched plan decoded")
	}
	corrupt := *plan
	corrupt.Program = "this is not an hlo computation"
	bad, err := corrupt.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := autotune.DecodePlan(bad); err == nil {
		t.Fatal("plan with a corrupt program decoded")
	}
}

// TestKeyTracksEnvironment pins that the decision/plan cache key moves
// with every input that moves measured runtimes: the program, the
// device count, the kernel-worker count, and the telemetry toggle. A
// key that failed to move across SetKernelWorkers served PR 4's tuning
// decisions stale; this is its regression test, extended to the obs
// toggle the serving layer flips.
func TestKeyTracksEnvironment(t *testing.T) {
	c, _ := site(4, 1)
	spec := machine.TPUv4()

	tensor.SetKernelWorkers(1)
	defer tensor.SetKernelWorkers(0)
	base := autotune.Key(c, spec, 4)

	if got := autotune.Key(c, spec, 8); got == base {
		t.Fatal("key ignored the device count")
	}
	tensor.SetKernelWorkers(2)
	if got := autotune.Key(c, spec, 4); got == base {
		t.Fatal("key ignored SetKernelWorkers — a tuned decision would be served stale")
	}
	tensor.SetKernelWorkers(1)

	obs.Default().SetEnabled(false)
	key := autotune.Key(c, spec, 4)
	obs.Default().SetEnabled(true)
	if key == base {
		t.Fatal("key ignored the obs instrumentation toggle")
	}
	if got := autotune.Key(c, spec, 4); got != base {
		t.Fatal("key is not a pure function of (program, spec, devices, kw, obs)")
	}
}

// TestTuneNoStaleHitAcrossKernelWorkers is the behavioral half of the
// keying regression: a decision cached under one kernel-worker count
// must not answer a tune performed under another.
func TestTuneNoStaleHitAcrossKernelWorkers(t *testing.T) {
	c, args := site(2, 5)
	opts := tuneOpts(t)

	tensor.SetKernelWorkers(1)
	defer tensor.SetKernelWorkers(0)
	first, err := autotune.Tune(c, 2, args, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first tune hit an empty cache")
	}

	tensor.SetKernelWorkers(2)
	second, err := autotune.Tune(c, 2, args, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHit {
		t.Fatal("stale hit: decision cached under kw=1 answered a kw=2 tune")
	}
	if first.Fingerprint == second.Fingerprint {
		t.Fatal("fingerprints identical across SetKernelWorkers")
	}

	// Same environment again: now the cache must answer.
	third, err := autotune.Tune(c, 2, args, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !third.CacheHit {
		t.Fatal("repeat tune in an unchanged environment missed the cache")
	}
}

// core4DefaultKnobs is the paper's default configuration as knobs, with
// a stable literal so the golden file does not depend on DefaultOptions
// drift.
func core4DefaultKnobs() (k core.Knobs) {
	k.Scheduler = "bottom-up"
	k.Unroll = true
	k.Bidirectional = true
	k.FuseAddIntoEinsum = true
	k.OverlapFriendlyFusion = true
	return k
}
