package train

import (
	"fmt"
	"math"
	"math/rand"

	"overlap/internal/partition"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// The training fixtures are dyadic rationals: every entry is k/2^4 with
// |k| ≤ 8, and the learning rate is a power of two. All the float64
// arithmetic a training step performs on such values — products, sums
// in any order, the SGD update — is then exact (the significand budget
// is bounded far below 53 bits for the miniature shapes), so the same
// gradients come out bit-identical no matter how a decomposition
// reorders the collective's additions. That is what lets the
// cross-config digest comparison demand equality instead of tolerance.
const (
	quantBits  = 4
	quantRange = 8
)

// quantRand fills a tensor with dyadic rationals k/2^quantBits, k
// uniform in [-quantRange, quantRange].
func quantRand(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	data := t.Data()
	scale := math.Ldexp(1, -quantBits)
	for i := range data {
		data[i] = float64(rng.Intn(2*quantRange+1)-quantRange) * scale
	}
	return t
}

// CheckLR rejects learning rates that are not powers of two in
// [2^-12, 1]: anything else breaks the dyadic-exactness contract above.
func CheckLR(lr float64) error {
	frac, exp := math.Frexp(lr)
	if frac != 0.5 || exp > 1 || exp < -11 {
		return fmt.Errorf("train: learning rate %g must be a power of two in [2^-12, 1] to keep the update arithmetic exact", lr)
	}
	return nil
}

// Args builds the deterministic training inputs for prog: token-sharded
// activations and negated targets, weights sharded or replicated per
// the strategy, the scalar cotangent seed (1) and negated learning
// rate. The layout follows the Param* constants; runtime and
// interpreter replicate single-entry lists, so replicated parameters
// carry one tensor.
func Args(prog *Program, seed int64, lr float64) ([][]*tensor.Tensor, error) {
	if err := CheckLR(lr); err != nil {
		return nil, err
	}
	cfg := prog.Config
	rng := rand.New(rand.NewSource(seed))
	mesh := topology.NewTorus2D(1, cfg.Devices)
	rows := partition.OnDim(2, 0, 1)

	x := quantRand(rng, cfg.Tokens, cfg.Model)
	y := quantRand(rng, cfg.Tokens, cfg.Model)
	negy := tensor.New(y.Shape()...)
	for i, v := range y.Data() {
		negy.Data()[i] = -v
	}

	args := make([][]*tensor.Tensor, ParamWeight0+cfg.NumWeights())
	args[ParamX] = partition.ShardTensor(x, rows, mesh)
	args[ParamNegY] = partition.ShardTensor(negy, rows, mesh)
	args[ParamSeed] = []*tensor.Tensor{tensor.Scalar(1)}
	args[ParamNegLR] = []*tensor.Tensor{tensor.Scalar(-lr)}
	for i := 0; i < cfg.NumWeights(); i++ {
		w := quantRand(rng, prog.WeightGlobal[i]...)
		// Scale by 2^-s with 2^s >= sqrt(fan_in): the usual
		// 1/sqrt(fan_in) initialization rounded to a power of two, so
		// activations stay O(1) through the layer chain without
		// spending any dyadic-exactness budget (the scale only shifts
		// exponents).
		scale := math.Ldexp(1, -weightShift(prog.WeightGlobal[i][0]))
		for j, v := range w.Data() {
			w.Data()[j] = v * scale
		}
		if cfg.Strategy == StrategyMegatron {
			args[ParamWeight0+i] = partition.ShardTensor(w, rows, mesh)
		} else {
			args[ParamWeight0+i] = []*tensor.Tensor{w}
		}
	}
	return args, nil
}

// weightShift returns the smallest s with 2^s >= sqrt(fanIn).
func weightShift(fanIn int) int {
	s := 0
	for 1<<(2*s) < fanIn {
		s++
	}
	return s
}
