// Command hlodump prints the per-layer SPMD program of one of the
// evaluated models before and/or after the overlap pipeline — useful
// for inspecting what the decomposition and the scheduler produced.
//
// Usage:
//
//	hlodump -model GPT_32B            # baseline HLO
//	hlodump -model GPT_32B -overlap   # after decomposition + scheduling
//	hlodump -in prog.hlo -devices 8   # parse a dump, verify, simulate
package main

import (
	"flag"
	"fmt"
	"os"

	"overlap"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/models"
	"overlap/internal/sim"
)

func main() {
	model := flag.String("model", "GPT_32B", "model name from Table 1 or Table 2")
	in := flag.String("in", "", "parse this HLO text file instead of building a model")
	devices := flag.Int("devices", 0, "with -in: simulate on this many devices")
	apply := flag.Bool("overlap", false, "apply the overlap pipeline before printing")
	scheduler := flag.String("scheduler", "bottom-up", "scheduler: bottom-up, top-down or none")
	traceOut := flag.String("trace", "", "also simulate and write a Chrome trace (chrome://tracing) to this file")
	flag.Parse()

	if *in != "" {
		raw, err := os.ReadFile(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hlodump: %v\n", err)
			os.Exit(1)
		}
		c, err := hlo.Parse(string(raw))
		if err != nil {
			fmt.Fprintf(os.Stderr, "hlodump: %v\n", err)
			os.Exit(1)
		}
		if err := c.Verify(); err != nil {
			fmt.Fprintf(os.Stderr, "hlodump: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hlodump: parsed %d instructions, peak memory %.2f MiB\n",
			c.NumInstructions(), float64(hlo.PeakMemory(c).PeakBytes)/(1<<20))
		if *devices > 0 {
			bd, err := sim.Simulate(c, *devices, machine.TPUv4())
			if err != nil {
				fmt.Fprintf(os.Stderr, "hlodump: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "hlodump: step %.3f ms, %.0f%% exposed communication\n",
				1e3*bd.StepTime, 100*bd.CommFraction())
		}
		fmt.Print(c.Format())
		return
	}

	cfg, err := models.ByName(*model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hlodump: %v\n", err)
		os.Exit(1)
	}
	c, err := overlap.BuildLayerStep(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hlodump: %v\n", err)
		os.Exit(1)
	}
	if *apply {
		opts := overlap.DefaultOptions(overlap.TPUv4())
		switch *scheduler {
		case "bottom-up":
			opts.Scheduler = overlap.SchedulerBottomUp
		case "top-down":
			opts.Scheduler = overlap.SchedulerTopDown
		case "none":
			opts.Scheduler = overlap.SchedulerNone
		default:
			fmt.Fprintf(os.Stderr, "hlodump: unknown scheduler %q\n", *scheduler)
			os.Exit(1)
		}
		report, err := overlap.Apply(c, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hlodump: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("// sites found=%d decomposed=%d rejected=%d fusions=%d\n",
			report.SitesFound, report.SitesDecomposed, report.SitesRejected, report.FusionsFormed)
	}
	if *traceOut != "" {
		_, events, err := sim.SimulateTrace(c, cfg.Mesh().NumDevices(), machine.TPUv4())
		if err != nil {
			fmt.Fprintf(os.Stderr, "hlodump: %v\n", err)
			os.Exit(1)
		}
		raw, err := sim.TraceJSON(events)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hlodump: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*traceOut, raw, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hlodump: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hlodump: wrote %d trace events to %s\n", len(events), *traceOut)
	}
	fmt.Print(c.Format())
}
