package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE header per
// metric followed by its samples, histograms expanded into cumulative
// _bucket{le="..."} series plus _sum and _count. Metrics appear sorted
// by name, so two scrapes of an unchanged registry are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, escapeHelp(m.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
			return err
		}
		switch m.Type {
		case "histogram":
			for _, b := range m.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, formatLE(b.LE), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", m.Name, formatValue(m.Sum), m.Name, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, formatValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// JSON renders the registry as a stable, machine-readable document:
// metrics sorted by name under a fixed top-level key, every field named
// by the MetricSnapshot schema. The schema is pinned by a golden test;
// extend it, don't mutate it.
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}{r.Snapshot()}, "", " ")
}

// WriteFile exports the registry to path: the Prometheus text format by
// default, the JSON document when path ends in ".json".
func (r *Registry) WriteFile(path string) error {
	var data []byte
	if strings.HasSuffix(path, ".json") {
		var err error
		if data, err = r.JSON(); err != nil {
			return err
		}
	} else {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			return err
		}
		data = []byte(b.String())
	}
	return os.WriteFile(path, data, 0o644)
}

func escapeHelp(help string) string {
	help = strings.ReplaceAll(help, "\\", `\\`)
	return strings.ReplaceAll(help, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus parsers expect.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLE renders a bucket bound for its le label.
func formatLE(v float64) string { return formatValue(v) }
