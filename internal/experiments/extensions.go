package experiments

import (
	"fmt"
	"text/tabwriter"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/models"
	"overlap/internal/sim"
)

// The experiments in this file go beyond the paper's evaluation section:
// ablations its design discussion implies (rolled vs expanded emission,
// peak-memory cost of overlapping) and the studies its §7 leaves as
// future work (inference workload sweep, composition with pipeline
// parallelism).

// Memory reports the per-device peak-memory estimate of one layer step
// before and after the overlap pipeline: the §5.2/§5.4.1 design
// constraint that overlapping must not blow up liveness, quantified.
func Memory(spec machine.Spec) (string, error) {
	opts := core.DefaultOptions(spec)
	out := "Extension: per-device peak memory of one layer step (GiB)\n"
	return out + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "model\tbaseline\toverlapped\tgrowth")
		for _, cfg := range models.Table2() {
			base, err := models.BuildLayerStep(cfg)
			if err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", cfg.Name, err)
				continue
			}
			basePeak := hlo.PeakMemory(base).PeakBytes
			over, err := models.BuildLayerStep(cfg)
			if err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", cfg.Name, err)
				continue
			}
			if _, err := core.Apply(over, opts); err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", cfg.Name, err)
				continue
			}
			overPeak := hlo.PeakMemory(over).PeakBytes
			fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%+.1f%%\n",
				cfg.Name, gib(basePeak), gib(overPeak),
				100*(float64(overPeak)/float64(basePeak)-1))
		}
	}), nil
}

func gib(b int64) float64 { return float64(b) / (1 << 30) }

// Rolled contrasts the three emission levels of one site-rich layer:
// blocking baseline, rolled Looped CollectiveEinsum (decomposed but not
// overlappable, with the per-iteration aliasing copies), and the
// expanded + scheduled form the paper deploys. It quantifies why the
// paper's implementation unrolls and software-pipelines the loop.
func Rolled(spec machine.Spec) (string, error) {
	out := "Extension: rolled loop vs expanded+scheduled emission (per-layer step time)\n"
	return out + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "model\tbaseline\trolled loop\texpanded+scheduled\tspeedup (expanded vs rolled)")
		for _, cfg := range models.Table2()[:3] {
			times := make([]float64, 3)
			for i, mode := range []string{"baseline", "rolled", "expanded"} {
				c, err := models.BuildLayerStep(cfg)
				if err != nil {
					fmt.Fprintf(w, "%s\terror: %v\n", cfg.Name, err)
					continue
				}
				opts := core.DefaultOptions(spec)
				switch mode {
				case "baseline":
					opts = core.BaselineOptions(spec)
				case "rolled":
					opts.Rolled = true
				}
				if mode != "baseline" {
					if _, err := core.Apply(c, opts); err != nil {
						fmt.Fprintf(w, "%s\terror: %v\n", cfg.Name, err)
						continue
					}
				}
				bd, err := sim.Simulate(c, cfg.Mesh().NumDevices(), spec)
				if err != nil {
					fmt.Fprintf(w, "%s\terror: %v\n", cfg.Name, err)
					continue
				}
				times[i] = bd.StepTime
			}
			fmt.Fprintf(w, "%s\t%.1f ms\t%.1f ms\t%.1f ms\t%.2fx\n",
				cfg.Name, 1e3*times[0], 1e3*times[1], 1e3*times[2], times[1]/times[2])
		}
	}), nil
}

// InferenceSweep is the thorough §7.1 study the paper leaves to future
// work: serving latency improvement across batch sizes of the 2-way
// model-parallel MLP.
func InferenceSweep(spec machine.Spec) (string, error) {
	out := "Extension (§7.1 future work): inference latency improvement across batch sizes\n"
	return out + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "batch rows\tbaseline\toverlapped\timprovement")
		for _, e := range []int{128, 512, 1344, 2688, 5376, 10752} {
			base := buildInferenceChain(8, e, 4096, 16384)
			bb, err := sim.Simulate(base, 2, spec)
			if err != nil {
				fmt.Fprintf(w, "%d\terror: %v\n", e, err)
				continue
			}
			over := buildInferenceChain(8, e, 4096, 16384)
			opts := core.DefaultOptions(spec)
			opts.UseCostModel = false
			if _, err := core.Apply(over, opts); err != nil {
				fmt.Fprintf(w, "%d\terror: %v\n", e, err)
				continue
			}
			ob, err := sim.Simulate(over, 2, spec)
			if err != nil {
				fmt.Fprintf(w, "%d\terror: %v\n", e, err)
				continue
			}
			fmt.Fprintf(w, "%d\t%.3f ms\t%.3f ms\t%.2fx\n",
				e, 1e3*bb.StepTime, 1e3*ob.StepTime, bb.StepTime/ob.StepTime)
		}
	}), nil
}

// GPU reproduces the §7.2 generalization argument: the same graphs and
// passes on a GPU-cluster-like machine model. NVLink's higher
// bandwidth-to-FLOPS ratio leaves less to hide, so the speedups shrink
// but stay positive — "the idea can also be applied to other hardware
// ML systems, such as GPU clusters".
func GPU(_ machine.Spec) (string, error) {
	gpu := machine.GPUCluster()
	opts := core.DefaultOptions(gpu)
	out := "Extension (§7.2): the technique on a GPU-cluster-like machine model\n"
	return out + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "model\tbaseline util\toverlap util\tspeedup")
		for _, cfg := range models.Table2()[:4] {
			comp, err := Compare(cfg, opts)
			if err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", cfg.Name, err)
				continue
			}
			fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.2fx\n",
				cfg.Name, 100*comp.Baseline.Utilization, 100*comp.Overlapped.Utilization, comp.Speedup())
		}
	}), nil
}

// Pipeline composes the technique with pipeline parallelism (§7.3): a
// GPipe-style schedule with P stages and M microbatches, where every
// stage internally uses intra-layer model parallelism. Stage time comes
// from the simulated layer step (scaled to the microbatch); the overall
// step is (M + P - 1) stage slots plus the inter-stage activation
// transfers, so the intra-layer speedup carries through diluted by the
// pipeline bubble.
func Pipeline(spec machine.Spec) (string, error) {
	const stages, micro = 4, 16
	cfg := models.Table2()[0] // GPT_32B shapes per stage
	layersPerStage := cfg.Layers / stages

	run := func(overlapOn bool) (float64, error) {
		c, err := models.BuildLayerStep(cfg)
		if err != nil {
			return 0, err
		}
		if overlapOn {
			if _, err := core.Apply(c, core.DefaultOptions(spec)); err != nil {
				return 0, err
			}
		}
		bd, err := sim.Simulate(c, cfg.Mesh().NumDevices(), spec)
		if err != nil {
			return 0, err
		}
		// One microbatch processes 1/micro of the batch: compute and
		// communication both scale with the token count.
		stageSlot := bd.StepTime * float64(layersPerStage) / float64(micro)
		// Inter-stage activation send per microbatch boundary.
		actBytes := int64(cfg.Tokens()/micro/cfg.MeshY) * int64(cfg.ModelDim/cfg.MeshX) * 4
		send := spec.TransferTime(actBytes, 1)
		slots := float64(micro + stages - 1)
		return slots * (stageSlot + send), nil
	}

	baseline, err := run(false)
	if err != nil {
		return "", err
	}
	overlapped, err := run(true)
	if err != nil {
		return "", err
	}
	bubble := float64(stages-1) / float64(micro+stages-1)
	return fmt.Sprintf(
		"Extension (§7.3): composition with pipeline parallelism (GPipe, %d stages x %d microbatches, GPT_32B stages)\n"+
			"baseline step  %.1f ms\noverlapped step %.1f ms\nspeedup %.2fx (pipeline bubble fraction %.0f%%)\n",
		stages, micro, 1e3*baseline, 1e3*overlapped, baseline/overlapped, 100*bubble), nil
}
