// Package overlap reproduces "Overlap Communication with Dependent
// Computation via Decomposition in Large Deep Learning Models"
// (Wang et al., ASPLOS 2023) as a self-contained Go library.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/hlo — the XLA-HLO-like dataflow IR the passes operate on;
//   - internal/partition — intra-layer (tensor) model parallelism:
//     shardings, einsum propagation, collective insertion;
//   - internal/core — the paper's contribution: Looped CollectiveEinsum
//     decomposition, asynchronous CollectivePermute scheduling, loop
//     unrolling, bidirectional transfer, fusion rewrites, cost model;
//   - internal/sim — a functional SPMD interpreter (correctness) and a
//     discrete-event timing simulator (performance);
//   - internal/machine — the TPU-v4-like machine model;
//   - internal/models — the paper's Table 1 / Table 2 workloads;
//   - internal/experiments — runners that regenerate every evaluation
//     table and figure.
//
// Quick start:
//
//	c := overlap.NewComputation("layer")
//	act := c.Parameter(0, "act", []int{128, 512})
//	w := c.Parameter(1, "w", []int{128, 1024})
//	full := c.AllGather(w, 0, overlap.NewRing(4).AxisGroups(0))
//	c.Einsum("bf,fh->bh", act, full)
//
//	opts := overlap.DefaultOptions(overlap.TPUv4())
//	report, err := overlap.Apply(c, opts) // decompose + schedule
package overlap

import (
	"context"
	"io"
	"log/slog"
	"net/http"

	"overlap/internal/autotune"
	"overlap/internal/core"
	"overlap/internal/experiments"
	"overlap/internal/grad"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/models"
	"overlap/internal/obs"
	"overlap/internal/runtime"
	"overlap/internal/serve"
	"overlap/internal/sim"
	"overlap/internal/tensor"
	"overlap/internal/topology"
	"overlap/internal/train"
)

// Re-exported core types. The aliases keep one set of definitions while
// giving users a single import.
type (
	// Computation is an SPMD program: a scheduled dataflow graph.
	Computation = hlo.Computation
	// Instruction is one node of a Computation.
	Instruction = hlo.Instruction
	// Options configures the overlap pipeline (§5).
	Options = core.Options
	// Report summarizes what the pipeline did.
	Report = core.Report
	// Decision is the §5.5 cost-model verdict for one site.
	Decision = core.Decision
	// MachineSpec describes the simulated accelerator.
	MachineSpec = machine.Spec
	// Mesh is a logical device mesh (ring / torus).
	Mesh = topology.Mesh
	// Breakdown is the simulated step-time decomposition.
	Breakdown = sim.Breakdown
	// ModelConfig is one evaluated workload (Tables 1-2).
	ModelConfig = models.Config
	// Tensor is a dense float64 tensor (used by the interpreter).
	Tensor = tensor.Tensor
	// SchedulerKind selects the §5.2 scheduling approach.
	SchedulerKind = core.SchedulerKind
	// MemoryStats reports a schedule's live-byte profile.
	MemoryStats = hlo.MemoryStats
	// RunOptions configures the concurrent goroutine runtime.
	RunOptions = runtime.Options
	// RunResult is a concurrent execution's values and measured timings.
	RunResult = runtime.Result
	// RunError is the structured failure of an aborted runtime
	// execution: device, instruction, phase, elapsed wall-clock, and —
	// under fault injection — the fault that caused it.
	RunError = runtime.RunError
	// FaultPlan is a deterministic, seeded set of faults to inject into
	// a runtime execution (see RunOptions.Faults).
	FaultPlan = runtime.FaultPlan
	// Fault is one injected failure in a FaultPlan.
	Fault = runtime.Fault
	// TransportKind selects the runtime fabric transfers move over:
	// TransportChan (in-process channels) or TransportProc (per-device
	// worker processes over Unix sockets). See RunOptions.Transport.
	TransportKind = runtime.TransportKind
	// TraceEvent is one Chrome-trace span (simulated or measured).
	TraceEvent = sim.TraceEvent
	// AutotuneOptions configures the profile-guided variant search.
	AutotuneOptions = autotune.Options
	// AutotuneResult is what one Autotune call decided and measured.
	AutotuneResult = autotune.Result
	// Calibration rescales a MachineSpec to track measured runtimes.
	Calibration = machine.Calibration
	// MetricsRegistry is the telemetry registry all executors record
	// into (counters, gauges, histograms; Prometheus/JSON exporters).
	MetricsRegistry = obs.Registry
	// AttributionReport is the per-collective overlap breakdown the
	// attribution analyzer produces from a span stream.
	AttributionReport = obs.AttributionReport
	// CollectiveAttribution is one collective's hidden/exposed split.
	CollectiveAttribution = obs.Attribution
	// RunTrace is the run-scoped trace artifact: one execution's
	// identity, serve-path stages, executor spans (wire spans stamped
	// with their attribution verdict), and attribution report —
	// exportable as stable JSON and as a Chrome trace.
	RunTrace = obs.RunTrace
	// RunSpan is one executor span of a RunTrace.
	RunSpan = obs.RunSpan
	// RunStage is one coarse serve-path interval of a RunTrace.
	RunStage = obs.RunStage
	// RunTraceError is a failed run's attribution inside a RunTrace.
	RunTraceError = obs.RunTraceError
	// Plan is the immutable compiled artifact the serving path executes:
	// the transformed scheduled program plus the knobs and calibration
	// that produced it, keyed by the autotune fingerprint.
	Plan = autotune.Plan
	// ServerConfig configures the overlap-as-a-service daemon.
	ServerConfig = serve.Config
	// Server is the long-running compile/tune/run daemon (cmd/overlapd).
	Server = serve.Server
	// TrainConfig describes one training-step program (devices, layers,
	// dimensions, partitioning strategy).
	TrainConfig = train.Config
	// TrainStrategy selects the training partitioning (Megatron / DDP).
	TrainStrategy = train.Strategy
	// TrainOptions configures a multi-step training run.
	TrainOptions = train.Options
	// TrainResult is a completed training run: per-step losses, bitwise
	// gradient digests, and the final step's overlap attribution.
	TrainResult = train.Result
	// TrainProgram is a built fwd+bwd+update computation plus the
	// metadata needed to feed and read it.
	TrainProgram = train.Program
)

// Scheduler kinds (§5.2).
const (
	SchedulerBottomUp = core.SchedulerBottomUp
	SchedulerTopDown  = core.SchedulerTopDown
	SchedulerNone     = core.SchedulerNone
)

// Training partitioning strategies (§2.2's two decomposition sources).
const (
	TrainMegatron = train.StrategyMegatron
	TrainDDP      = train.StrategyDDP
)

// NewComputation returns an empty SPMD computation.
func NewComputation(name string) *Computation { return hlo.NewComputation(name) }

// NewRing returns a 1D device mesh of n chips.
func NewRing(n int) *Mesh { return topology.NewRing(n) }

// NewTorus2D returns an m-by-n 2D device mesh.
func NewTorus2D(m, n int) *Mesh { return topology.NewTorus2D(m, n) }

// TPUv4 returns the TPU-v4-like machine specification the evaluation
// uses.
func TPUv4() MachineSpec { return machine.TPUv4() }

// DefaultOptions returns the paper's deployed configuration: decompose
// + bottom-up schedule + unrolling + bidirectional transfer + fusion,
// gated by the cost model.
func DefaultOptions(spec MachineSpec) Options { return core.DefaultOptions(spec) }

// BaselineOptions returns a configuration with the feature off.
func BaselineOptions(spec MachineSpec) Options { return core.BaselineOptions(spec) }

// Apply runs the overlap pipeline on the computation in place and
// returns what it did.
func Apply(c *Computation, opts Options) (Report, error) { return core.Apply(c, opts) }

// Simulate runs the computation through the timing model on numDevices
// devices.
func Simulate(c *Computation, numDevices int, spec MachineSpec) (Breakdown, error) {
	return sim.Simulate(c, numDevices, spec)
}

// Interpret executes the computation functionally and returns the root
// value on each device; args[i] holds parameter i's per-device values
// (or a single replicated tensor).
func Interpret(c *Computation, numDevices int, args [][]*Tensor) ([]*Tensor, error) {
	return sim.Interpret(c, numDevices, args)
}

// Run executes the computation concurrently: one goroutine per device,
// channel-backed links, genuinely asynchronous CollectivePermutes. The
// result carries per-device values bit-identical to Interpret's plus a
// breakdown and optional Chrome trace measured from real timestamps.
func Run(c *Computation, numDevices int, args [][]*Tensor, opts RunOptions) (*RunResult, error) {
	return runtime.Run(c, numDevices, args, opts)
}

// RunContext is Run with a deadline: when ctx expires or is cancelled
// the execution aborts cleanly — every blocked device, link, and
// rendezvous goroutine joins — and the error is a *RunError attributing
// the stall to a device, instruction, and phase instead of hanging
// forever. Pair it with RunOptions.Faults to bound injected link stalls.
func RunContext(ctx context.Context, c *Computation, numDevices int, args [][]*Tensor, opts RunOptions) (*RunResult, error) {
	return runtime.RunContext(ctx, c, numDevices, args, opts)
}

// ParseFaults parses a comma-separated fault-injection spec (e.g.
// "drop:link:0-1,crash:dev:2:40") into a FaultPlan for
// RunOptions.Faults. An empty spec returns a nil plan.
func ParseFaults(spec string) (*FaultPlan, error) { return runtime.ParseFaults(spec) }

// DefaultRunOptions returns runtime options that inject wire delays
// from spec at a scale that makes overlap visible in wall-clock.
func DefaultRunOptions(spec MachineSpec) RunOptions { return runtime.DefaultOptions(spec) }

// Transport kinds for RunOptions.Transport.
const (
	// TransportChan keeps every device in-process on buffered channels
	// (the default).
	TransportChan = runtime.TransportChan
	// TransportProc spawns one OS worker process per communicating
	// device and moves tensors as length-prefixed frames over Unix
	// sockets. Results stay bit-identical to TransportChan.
	TransportProc = runtime.TransportProc
)

// ParseTransport maps a CLI/API string ("", "chan", "proc") onto a
// TransportKind for RunOptions.Transport.
func ParseTransport(s string) (TransportKind, error) { return runtime.ParseTransport(s) }

// MaybeTransportWorker turns the current process into a process-
// transport worker when the transport's environment variable is set,
// and never returns in that case. Any main that can execute a
// TransportProc run must call it first thing, because the transport
// spawns workers by re-executing the current binary. It returns
// immediately (and costs nothing) in ordinary processes.
func MaybeTransportWorker() { runtime.MaybeWorker() }

// Autotune searches the pipeline's variant space (scheduler, unrolling,
// bidirectional transfer, rolled loops, fusion heuristics, gather
// rematerialization) for the configuration that executes the
// computation fastest: candidates are ranked by the timing simulator,
// the best few are run for real on the goroutine runtime (cross-checked
// against the interpreter), and the winner is picked by measured
// wall-clock. Decisions persist in a JSON cache keyed by (program,
// machine spec, device count), so re-tuning an unchanged program
// returns instantly without executing anything. c is not modified;
// apply the winner with result.ApplyBest(c).
func Autotune(c *Computation, numDevices int, args [][]*Tensor, opts AutotuneOptions) (*AutotuneResult, error) {
	return autotune.Tune(c, numDevices, args, opts)
}

// CompilePlan runs the full pipeline — tune (answering from the
// decision cache when warm), apply the winner, capture the schedule —
// and freezes the result into an immutable, serializable Plan: the
// artifact the daemon caches, the CLIs round-trip via -plan-out /
// -plan-in, and Plan.Computation re-executes with zero compilation.
func CompilePlan(c *Computation, numDevices int, args [][]*Tensor, opts AutotuneOptions) (*Plan, error) {
	return autotune.Compile(c, numDevices, args, opts)
}

// DecodePlan parses a serialized Plan, rejecting version mismatches and
// artifacts whose embedded program no longer parses.
func DecodePlan(data []byte) (*Plan, error) { return autotune.DecodePlan(data) }

// PlanFromResult freezes an already-computed Autotune decision into a
// Plan without re-searching (one Apply on a clone of c).
func PlanFromResult(c *Computation, numDevices int, res *AutotuneResult) (*Plan, error) {
	return autotune.PlanFromResult(c, numDevices, res)
}

// PlanKey returns the fingerprint a computation compiles and caches
// under: program shape, machine spec, device count, kernel workers, and
// the telemetry toggle — every input that moves measured runtimes.
func PlanKey(c *Computation, spec MachineSpec, numDevices int) string {
	return autotune.Key(c, spec, numDevices)
}

// NewServer builds the overlap-as-a-service daemon: an HTTP/JSON server
// whose hot path is plan-cache lookup + runtime execution, with request
// batching (identical fingerprints share one compile) and admission
// control (bounded concurrent runs over the shared kernel pool). Start
// it with Server.Start and stop it with Server.Shutdown.
func NewServer(cfg ServerConfig) (*Server, error) { return serve.New(cfg) }

// Miniature shrinks a Table 1/2 model onto a 1×devices ring small
// enough to execute with real tensors, preserving its architecture and
// collective structure; dim is the miniature per-head dimension.
func Miniature(cfg ModelConfig, devices, dim int) (ModelConfig, error) {
	return models.Miniature(cfg, devices, dim)
}

// TraceJSON renders trace events (simulated or measured) as a Chrome
// trace file loadable in Perfetto.
func TraceJSON(events []TraceEvent) ([]byte, error) { return sim.TraceJSON(events) }

// NewRunID mints a fresh run identity ("r-" + 16 hex chars) — the key a
// run's trace, structured logs, metrics, and failure correlate under.
func NewRunID() string { return obs.NewRunID() }

// NewRunTrace assembles the run-scoped trace artifact from a measured
// (or simulated) trace-event stream: the attribution analyzer runs
// once, every wire span is stamped with its verdict (hidden /
// partially-hidden / exposed) and the compute that hid it, and the full
// report is embedded. Scenario is "run" for layer steps, "train" for
// training steps.
func NewRunTrace(id, scenario string, events []TraceEvent) *RunTrace {
	return obs.NewRunTrace(id, scenario, sim.Spans(events))
}

// DecodeRunTrace parses a serialized RunTrace artifact (a CLI
// -trace-out file or a daemon /v1/runs/{id} body), rejecting version
// mismatches.
func DecodeRunTrace(data []byte) (*RunTrace, error) { return obs.DecodeRunTrace(data) }

// Log returns the process-wide structured logger: JSON records, keyed
// by "run_id" wherever a run is involved. Silent until SetLogOutput
// installs a sink.
func Log() *slog.Logger { return obs.Log() }

// SetLogOutput directs the process-wide structured logger at w (JSON
// lines); pass io.Discard to silence it again.
func SetLogOutput(w io.Writer) { obs.SetLogOutput(w) }

// Metrics returns the process-wide telemetry registry. The simulator,
// the concurrent runtime, and the autotuner all record into it; export
// it with WritePrometheus/JSON/WriteFile or serve it with ServeMetrics.
func Metrics() *MetricsRegistry { return obs.Default() }

// SetKernelWorkers sets the process-wide intra-op parallelism of the
// einsum kernel engine: how many goroutines each sufficiently large
// einsum partitions its output across. n <= 0 restores the default
// (GOMAXPROCS). The setting changes only execution speed — kernel
// results are byte-identical for every worker count.
func SetKernelWorkers(n int) { tensor.SetKernelWorkers(n) }

// KernelWorkers returns the effective intra-op kernel worker count.
func KernelWorkers() int { return tensor.KernelWorkers() }

// SetKernelSplitK sets the process-wide split-K factor of the einsum
// kernel engine: skinny GEMMs (too few output rows to feed the worker
// pool) partition their contraction into n ranges reduced by a
// fixed-shape binary tree. n <= 1 disables splitting (the default).
// Unlike the worker count, the factor is part of a result's numeric
// identity — for a fixed factor results are byte-identical across
// worker counts and runs, but different factors reassociate the
// contraction and round differently — which is why the autotuner
// searches it as a planned knob (Options.KernelSplitK) rather than
// deriving it from the machine.
func SetKernelSplitK(n int) { tensor.SetKernelSplitK(n) }

// KernelSplitK returns the configured split-K factor (0 when off).
func KernelSplitK() int { return tensor.KernelSplitK() }

// SetKernelPackCache enables or disables the kernel engine's
// persistent operand-pack cache (on by default). The cache changes
// only where packed operand bytes come from, never the result bytes;
// the toggle exists for A/B measurement and leak-hunting.
func SetKernelPackCache(on bool) { tensor.SetPackCache(on) }

// Attribute runs the overlap-attribution analyzer over a trace
// (simulated or measured) and reports, per collective instruction, how
// much of its wire time was hidden under which partial einsum versus
// exposed — the per-op analogue of the paper's Figure 9 — plus the
// aggregate overlap-efficiency scalar.
func Attribute(events []TraceEvent) AttributionReport { return sim.Attribute(events) }

// ServeMetrics exposes the process-wide registry at http://addr/metrics
// in the Prometheus text format and returns the server (for Shutdown)
// and the resolved listen address.
func ServeMetrics(addr string) (*http.Server, string, error) { return obs.Serve(addr, obs.Default()) }

// Gradients appends the backward pass of root (seeded with seed) to the
// computation and returns the gradient instruction for every wrt entry.
// Forward AllGathers become backward ReduceScatters (and vice versa),
// so the overlap pipeline applies to the result.
// Train builds cfg's fwd+bwd+SGD training-step program, optionally
// applies the overlap pipeline (TrainOptions.Pipeline), and executes
// the requested number of steps on the goroutine runtime, feeding each
// step's updated weights into the next.
func Train(ctx context.Context, cfg TrainConfig, opts TrainOptions) (*TrainResult, error) {
	return train.Run(ctx, cfg, opts)
}

// BuildTrainStep constructs cfg's training-step program without running
// it — the entry point for tuning, compiling, or serving the program.
func BuildTrainStep(cfg TrainConfig) (*TrainProgram, error) { return train.Build(cfg) }

// ParseTrainStrategy maps a CLI/JSON name ("megatron", "ddp") to a
// TrainStrategy.
func ParseTrainStrategy(name string) (TrainStrategy, error) { return train.ParseStrategy(name) }

func Gradients(c *Computation, root, seed *Instruction, wrt []*Instruction) (map[*Instruction]*Instruction, error) {
	return grad.Append(c, root, seed, wrt)
}

// PeakMemory estimates the peak live bytes of the computation under its
// current schedule.
func PeakMemory(c *Computation) MemoryStats { return hlo.PeakMemory(c) }

// ParseHLO reads a computation back from its Format text.
func ParseHLO(text string) (*Computation, error) { return hlo.Parse(text) }

// Table1Models returns the six production workloads of Table 1.
func Table1Models() []ModelConfig { return models.Table1() }

// Table2Models returns the weak-scaled GPT family of Table 2.
func Table2Models() []ModelConfig { return models.Table2() }

// BuildLayerStep builds the partitioned per-layer training-step graph
// of a Table 1/2 model.
func BuildLayerStep(cfg ModelConfig) (*Computation, error) {
	return models.BuildLayerStep(cfg)
}

// SetExperimentTransport selects the fabric transport the wall-clock
// experiments execute on. The "transport" comparison experiment ignores
// it and always measures both.
func SetExperimentTransport(t TransportKind) { experiments.DefaultTransport = t }

// ExperimentIDs lists the experiments RunExperiment accepts, in
// presentation order.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentResult is one experiment's report plus its numeric series.
type ExperimentResult = experiments.Structured

// RunExperiment regenerates one of the paper's tables or figures and
// returns its textual report.
func RunExperiment(id string, spec MachineSpec) (string, error) {
	s, err := RunExperimentStructured(id, spec)
	return s.Text, err
}

// RunExperimentStructured regenerates one experiment and returns both
// its textual report and its machine-readable series, for tracking
// results across revisions.
func RunExperimentStructured(id string, spec MachineSpec) (ExperimentResult, error) {
	return experiments.RunStructured(id, spec)
}
