package sim

import (
	"encoding/json"
	"fmt"

	"overlap/internal/hlo"
	"overlap/internal/machine"
)

// TraceEvent is one complete ("X") event in the Chrome trace format
// (chrome://tracing, Perfetto): timestamps and durations are in
// microseconds, pid groups a device, tid separates the compute pipe
// from the transfer engine.
type TraceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

const (
	// TraceTIDCompute and TraceTIDTransfer are the tid values of the
	// two per-device tracks: the compute pipe and the transfer engine.
	// The concurrent runtime (internal/runtime) emits events on the
	// same tracks so real and simulated traces line up in Perfetto.
	TraceTIDCompute  = 0
	TraceTIDTransfer = 1

	// TraceMaxDevices bounds the recorded devices: events for devices
	// with pid >= TraceMaxDevices are deliberately dropped. SPMD
	// programs are symmetric, so a handful of adjacent devices shows
	// the whole picture without gigabyte traces.
	TraceMaxDevices = 8
)

// SimulateTrace runs the timing simulation and additionally returns a
// per-device event timeline for the first few devices: compute spans,
// blocking collective spans, asynchronous transfer spans (on the
// transfer-engine track) and exposed stalls. Only devices
// 0..TraceMaxDevices-1 are recorded; events for devices beyond the
// window are dropped, not merged.
func SimulateTrace(c *hlo.Computation, numDevices int, spec machine.Spec) (Breakdown, []TraceEvent, error) {
	if err := spec.Validate(); err != nil {
		return Breakdown{}, nil, err
	}
	if numDevices <= 0 {
		return Breakdown{}, nil, fmt.Errorf("sim: need at least one device")
	}
	st := &simState{
		spec:         spec,
		numDevices:   numDevices,
		now:          make([]float64, numDevices),
		compute:      make([]float64, numDevices),
		wire:         make([]float64, numDevices),
		exposed:      make([]float64, numDevices),
		outstanding:  make([][]float64, numDevices),
		linkFree:     map[[2]int]float64{},
		arrivals:     map[*hlo.Instruction][]float64{},
		traceDevices: numDevices,
	}
	if st.traceDevices > TraceMaxDevices {
		st.traceDevices = TraceMaxDevices
	}
	for _, in := range c.Instructions() {
		if err := st.exec(in); err != nil {
			return Breakdown{}, nil, err
		}
	}
	var b Breakdown
	for d := 0; d < numDevices; d++ {
		if st.now[d] > b.StepTime {
			b.StepTime = st.now[d]
		}
		b.Compute += st.compute[d] / float64(numDevices)
		b.CollectiveWire += st.wire[d] / float64(numDevices)
		b.Exposed += st.exposed[d] / float64(numDevices)
	}
	b.AsyncTransfers = st.asyncSends
	b.PeakInFlight = st.peakInFlight
	b.Record("sim")
	return b, st.trace, nil
}

// TraceJSON renders the events as a Chrome trace file.
func TraceJSON(events []TraceEvent) ([]byte, error) {
	return json.MarshalIndent(struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}{events}, "", " ")
}

// record appends a span for device d when tracing is on and the device
// is within the recorded window.
func (st *simState) record(d int, tid int, cat, name string, start, dur float64) {
	if d >= st.traceDevices || dur <= 0 {
		return
	}
	st.trace = append(st.trace, TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: start * 1e6, Dur: dur * 1e6,
		PID: d, TID: tid,
	})
}
