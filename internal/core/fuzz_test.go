package core

import (
	"fmt"
	"math/rand"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/runtime"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// The fuzz suite generates random SPMD programs containing chained
// einsums, element-wise ops and collectives, runs the full pipeline
// under randomized options, and checks every invariant at once:
// verifier cleanliness, semantic equivalence on all devices, schedule
// validity, text round-trip stability and memory-analysis sanity.

// randomProgram builds a random valid computation over a ring of n
// devices. Returned args feed its parameters with per-device values.
func randomProgram(rng *rand.Rand, n int) (*hlo.Computation, [][]*tensor.Tensor) {
	c := hlo.NewComputation(fmt.Sprintf("fuzz_%d", rng.Int63()))
	groups := ringGroups(n)

	type val struct {
		in *hlo.Instruction
	}
	var pool []val
	var args [][]*tensor.Tensor
	paramIdx := 0

	dim := func() int { return (1 + rng.Intn(3)) * 2 } // 2,4,6
	newParam := func(shape []int) *hlo.Instruction {
		p := c.Parameter(paramIdx, fmt.Sprintf("p%d", paramIdx), shape)
		paramIdx++
		vals := make([]*tensor.Tensor, n)
		for d := range vals {
			vals[d] = tensor.Rand(rng, shape...)
		}
		args = append(args, vals)
		pool = append(pool, val{p})
		return p
	}

	// Seed the pool.
	for i := 0; i < 2+rng.Intn(2); i++ {
		newParam([]int{dim(), dim()})
	}

	steps := 6 + rng.Intn(8)
	for s := 0; s < steps; s++ {
		pick := pool[rng.Intn(len(pool))].in
		switch rng.Intn(6) {
		case 0: // einsum with a fresh compatible parameter
			k := pick.Shape[1]
			rhs := newParam([]int{k, dim()})
			pool = append(pool, val{c.Einsum("mk,kn->mn", pick, rhs)})
		case 1: // element-wise add with itself (always compatible)
			pool = append(pool, val{c.Add(pick, pick)})
		case 2: // AllGather feeding an einsum: a decomposable site
			shard := newParam([]int{dim(), dim()})
			full := c.AllGather(shard, 0, groups)
			other := newParam([]int{full.Shape[1], dim()})
			pool = append(pool, val{c.Einsum("mk,kn->mn", full, other)})
		case 3: // einsum feeding a ReduceScatter: the other site kind
			m := n * dim()
			lhs := newParam([]int{m, dim()})
			rhs := newParam([]int{lhs.Shape[1], dim()})
			ein := c.Einsum("mk,kn->mn", lhs, rhs)
			pool = append(pool, val{c.ReduceScatter(ein, 0, groups)})
		case 4: // AllReduce (only the SplitAllReduce pass can touch it)
			pool = append(pool, val{c.AllReduce(pick, groups)})
		case 5: // copy chain
			pool = append(pool, val{c.Copy(pick)})
		}
	}

	// Pin everything live.
	sinks := make([]*hlo.Instruction, 0, len(pool))
	for _, v := range pool {
		if v.in.NumUsers() == 0 && v.in.Op != hlo.OpParameter {
			sinks = append(sinks, v.in)
		}
	}
	if len(sinks) == 0 {
		sinks = append(sinks, pool[len(pool)-1].in)
	}
	c.Tuple(sinks...)
	return c, args
}

func randomOptions(rng *rand.Rand) Options {
	opts := Options{
		Spec:                  machine.TPUv4(),
		Unroll:                rng.Intn(2) == 0,
		Bidirectional:         rng.Intn(2) == 0,
		Rolled:                rng.Intn(4) == 0,
		UseCostModel:          false,
		Scheduler:             []SchedulerKind{SchedulerNone, SchedulerBottomUp, SchedulerTopDown}[rng.Intn(3)],
		FuseAddIntoEinsum:     rng.Intn(2) == 0,
		OverlapFriendlyFusion: rng.Intn(2) == 0,
		ConcatToPadMax:        rng.Intn(3) == 0,
		SplitAllReduce:        rng.Intn(2) == 0,
	}
	return opts
}

func TestPipelineFuzz(t *testing.T) {
	const seeds = 60
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 2 + rng.Intn(4)
			c, args := randomProgram(rng, n)
			if err := c.Verify(); err != nil {
				t.Fatalf("generated program invalid: %v", err)
			}

			// Reference values on every device, read from every tuple
			// operand (the root itself is a placeholder).
			refAll, err := sim.InterpretAll(c, n, args)
			if err != nil {
				t.Fatalf("baseline interpret: %v", err)
			}
			root := c.Root()
			refs := make([][]*tensor.Tensor, len(root.Operands))
			for i, op := range root.Operands {
				refs[i] = refAll[op]
			}

			opts := randomOptions(rng)
			report, err := Apply(c, opts)
			if err != nil {
				t.Fatalf("Apply(%+v): %v", opts, err)
			}
			_ = report
			if err := c.Verify(); err != nil {
				t.Fatalf("pipeline output invalid: %v", err)
			}

			gotAll, err := sim.InterpretAll(c, n, args)
			if err != nil {
				t.Fatalf("transformed interpret: %v", err)
			}
			newRoot := c.Root()
			if len(newRoot.Operands) != len(refs) {
				t.Fatalf("tuple arity changed: %d vs %d", len(newRoot.Operands), len(refs))
			}
			for i, op := range newRoot.Operands {
				got := gotAll[op]
				for d := 0; d < n; d++ {
					if !got[d].AllClose(refs[i][d], 1e-9) {
						t.Fatalf("output %d device %d diverged by %v (opts %+v)",
							i, d, got[d].MaxDifference(refs[i][d]), opts)
					}
				}
			}

			// The timing simulation must accept the schedule.
			if _, err := sim.Simulate(c, n, opts.Spec); err != nil {
				t.Fatalf("simulate: %v", err)
			}
			// The memory analysis must not panic and must be positive.
			if pm := hlo.PeakMemory(c); pm.PeakBytes <= 0 {
				t.Fatalf("degenerate peak memory %d", pm.PeakBytes)
			}
			// The text form must round-trip.
			text := c.Format()
			parsed, err := hlo.Parse(text)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if parsed.Format() != text {
				t.Fatal("format/parse round trip unstable")
			}
		})
	}
}

// TestRuntimeSeedCorpus pins a small deterministic corpus of fuzzer
// programs through the concurrent goroutine runtime: each seed's
// program is decomposed with the bidirectional + unrolled combination
// (the most intricate transfer pattern the pipeline emits) and executed
// for real, and every tuple output on every device must be bit-identical
// to the lockstep interpreter's. The fixed seeds keep the corpus stable
// so a runtime regression reproduces immediately.
func TestRuntimeSeedCorpus(t *testing.T) {
	const n = 4 // bidirectional needs an even ring
	seeds := []int64{3, 11, 27}
	decomposed := 0
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, args := randomProgram(rng, n)
			report, err := Apply(c, forceOpts(true, true, SchedulerBottomUp, true))
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			decomposed += report.SitesDecomposed

			want, err := sim.InterpretAll(c, n, args)
			if err != nil {
				t.Fatalf("interpret: %v", err)
			}
			res, err := runtime.Run(c, n, args, runtime.Options{})
			if err != nil {
				t.Fatalf("runtime: %v", err)
			}
			root := c.Root()
			for i, op := range root.Operands {
				for d := 0; d < n; d++ {
					if !res.All[op][d].Equal(want[op][d]) {
						t.Fatalf("output %d device %d: runtime diverges bitwise from interpreter", i, d)
					}
				}
			}
		})
	}
	if decomposed == 0 {
		t.Fatal("seed corpus decomposed no sites; pick seeds that exercise the pipeline")
	}
}
