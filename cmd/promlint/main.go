// Command promlint validates files against the Prometheus text
// exposition format using the in-tree checker (internal/obs). CI runs
// it over the telemetry the CLIs export with -metrics-out, so exporter
// drift fails the build instead of silently breaking scrapes.
//
// Usage:
//
//	promlint metrics.prom [more.prom ...]
//
// It prints one "ok" line per valid file and exits non-zero on the
// first malformed one.
package main

import (
	"fmt"
	"os"

	"overlap/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: promlint <file> [file ...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fail(path, err)
		}
		n, err := obs.LintPrometheus(data)
		if err != nil {
			fail(path, err)
		}
		fmt.Printf("ok: %s (%d samples)\n", path, n)
	}
}

func fail(path string, err error) {
	fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", path, err)
	os.Exit(1)
}
