package core

import (
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/topology"
)

func TestRingFromGroupsValid(t *testing.T) {
	r, ok := RingFromGroups([][]int{{0, 1, 2, 3}})
	if !ok || r.N != 4 || r.Stride != 1 {
		t.Fatalf("ring = %+v ok=%v", r, ok)
	}
	// 2x4 mesh, axis 0 groups: stride 4.
	mesh := topology.NewTorus2D(2, 4)
	r, ok = RingFromGroups(mesh.AxisGroups(0))
	if !ok || r.N != 2 || r.Stride != 4 {
		t.Fatalf("mesh axis ring = %+v ok=%v", r, ok)
	}
}

func TestRingFromGroupsRejectsIrregular(t *testing.T) {
	cases := [][][]int{
		{},                  // no groups
		{{0}},               // degenerate single-device group
		{{0, 2, 3}},         // uneven stride
		{{0, 1}, {2, 3, 4}}, // mismatched sizes
		{{1, 0}},            // negative stride
		{{0, 1}, {3, 4}},    // position identity broken for {3,4}
	}
	for i, groups := range cases {
		if _, ok := RingFromGroups(groups); ok {
			t.Errorf("case %d accepted: %v", i, groups)
		}
	}
}

func TestRingShiftPairsAndOffsets(t *testing.T) {
	mesh := topology.NewTorus2D(2, 3)
	r, ok := RingFromGroups(mesh.AxisGroups(1))
	if !ok {
		t.Fatal("axis-1 groups rejected")
	}
	pairs := r.ShiftPairs(-1)
	if len(pairs) != 6 {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		// Same x coordinate, y shifted by -1.
		cs, cd := mesh.Coord(p.Source), mesh.Coord(p.Target)
		if cs[0] != cd[0] || cd[1] != (cs[1]+2)%3 {
			t.Fatalf("bad pair %v", p)
		}
	}
	off := r.PosOffset(1, 10)
	// Device 4 = coord (1,1): position 1 → ((1+1)%3)*10 = 20.
	if got := off.Eval(4); got != 20 {
		t.Fatalf("PosOffset eval = %d, want 20", got)
	}
}

func TestFindPatternsClassifiesCases(t *testing.T) {
	groups := ringGroups(4)
	type want struct {
		kind PatternKind
		c    AGCase
	}
	cases := []struct {
		name  string
		build func(c *hlo.Computation)
		want  want
	}{
		{"case1", func(c *hlo.Computation) {
			a := c.Parameter(0, "a", []int{4, 8})
			b := c.Parameter(1, "b", []int{8, 6})
			full := c.AllGather(a, 0, groups)
			c.Einsum("mk,kn->mn", full, b)
		}, want{AllGatherEinsum, CaseNonContracting}},
		{"case2", func(c *hlo.Computation) {
			a := c.Parameter(0, "a", []int{4, 8})
			b := c.Parameter(1, "b", []int{32, 6})
			full := c.AllGather(a, 1, groups)
			c.Einsum("mk,kn->mn", full, b)
		}, want{AllGatherEinsum, CaseContracting}},
		{"case3", func(c *hlo.Computation) {
			a := c.Parameter(0, "a", []int{2, 4, 8})
			b := c.Parameter(1, "b", []int{8, 8, 6})
			full := c.AllGather(a, 0, groups)
			c.Einsum("gmk,gkn->gmn", full, b)
		}, want{AllGatherEinsum, CaseBatch}},
	}
	for _, tcase := range cases {
		c := hlo.NewComputation(tcase.name)
		tcase.build(c)
		ps := FindPatterns(c, FirstChooser{})
		if len(ps) != 1 {
			t.Fatalf("%s: %d patterns", tcase.name, len(ps))
		}
		if ps[0].Kind != tcase.want.kind || ps[0].Case != tcase.want.c {
			t.Fatalf("%s: got %v/%v", tcase.name, ps[0].Kind, ps[0].Case)
		}
	}
}

func TestFindPatternsSkipsMultiUserAllGather(t *testing.T) {
	c := hlo.NewComputation("shared_ag")
	a := c.Parameter(0, "a", []int{4, 8})
	b := c.Parameter(1, "b", []int{8, 6})
	full := c.AllGather(a, 0, ringGroups(4))
	c.Einsum("mk,kn->mn", full, b)
	c.Copy(full) // second user
	if ps := FindPatterns(c, FirstChooser{}); len(ps) != 0 {
		t.Fatalf("matched a shared AllGather: %d patterns", len(ps))
	}
}

func TestFindPatternsSkipsBatchScatterDim(t *testing.T) {
	// ReduceScatter along a batch output dim (label in both operands)
	// is not a supported decomposition target.
	c := hlo.NewComputation("rs_batch")
	a := c.Parameter(0, "a", []int{4, 4, 8})
	b := c.Parameter(1, "b", []int{4, 8, 6})
	ein := c.Einsum("gmk,gkn->gmn", a, b)
	c.ReduceScatter(ein, 0, ringGroups(4))
	if ps := FindPatterns(c, FirstChooser{}); len(ps) != 0 {
		t.Fatalf("matched batch-dim reduce-scatter: %d patterns", len(ps))
	}
}

func TestFindPatternsSkipsNonEinsumProducers(t *testing.T) {
	c := hlo.NewComputation("rs_add")
	a := c.Parameter(0, "a", []int{8, 8})
	sum := c.Add(a, a)
	c.ReduceScatter(sum, 0, ringGroups(4))
	if ps := FindPatterns(c, FirstChooser{}); len(ps) != 0 {
		t.Fatal("matched reduce-scatter of a non-einsum")
	}
}

func TestFindPatternsEinsumWithAGAndRS(t *testing.T) {
	// One einsum with both an AllGather operand and a ReduceScatter
	// user: exactly one pattern must be chosen.
	c := hlo.NewComputation("both")
	a := c.Parameter(0, "a", []int{16, 8})
	b := c.Parameter(1, "b", []int{32, 24})
	full := c.AllGather(a, 1, ringGroups(4))
	ein := c.Einsum("mk,kn->mn", full, b)
	c.ReduceScatter(ein, 1, ringGroups(4))
	ps := FindPatterns(c, FirstChooser{})
	if len(ps) != 1 {
		t.Fatalf("%d patterns, want exactly 1 per einsum", len(ps))
	}
}

func TestPatternKindAndCaseStrings(t *testing.T) {
	if AllGatherEinsum.String() != "allgather-einsum" || EinsumReduceScatter.String() != "einsum-reducescatter" {
		t.Fatal("PatternKind strings wrong")
	}
	if CaseNonContracting.String() != "non-contracting" || CaseContracting.String() != "contracting" || CaseBatch.String() != "batch" {
		t.Fatal("AGCase strings wrong")
	}
}
