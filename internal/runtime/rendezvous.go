package runtime

import (
	"overlap/internal/collective"
	"overlap/internal/hlo"
	"overlap/internal/tensor"
)

// rvKey names one instance of a blocking collective: the instruction,
// which of its device groups is rendezvousing (-1 for CollectivePermute,
// which synchronizes all devices), and the per-device execution count of
// that instruction (its "generation" — a collective inside a loop body
// runs once per iteration, and fast devices may reach generation k+1
// before slow ones have read generation k's output).
type rvKey struct {
	in    *hlo.Instruction
	group int
	gen   int
}

// genState accumulates one generation of one collective group: inputs
// arrive positionally, the last arriver injects the modeled wire delay
// and computes the group result with the same internal/collective
// kernels the lockstep interpreter uses, and done releases the waiters.
type genState struct {
	inputs  []*tensor.Tensor
	arrived int
	outputs []*tensor.Tensor
	done    chan struct{}
	read    int
}

// rendezvous runs device pid's side of a blocking collective: deposit
// the input, wait for the group, return this device's share of the
// result. It returns false when the run aborted while waiting.
func (e *engine) rendezvous(in *hlo.Instruction, gen, pid int, input *tensor.Tensor) (*tensor.Tensor, bool) {
	group, groupIdx, pos := e.groupOf(in, pid)

	key := rvKey{in: in, group: groupIdx, gen: gen}
	e.mu.Lock()
	gs, ok := e.gens[key]
	if !ok {
		gs = &genState{
			inputs: make([]*tensor.Tensor, len(group)),
			done:   make(chan struct{}),
		}
		e.gens[key] = gs
	}
	gs.inputs[pos] = input
	gs.arrived++
	last := gs.arrived == len(group)
	e.mu.Unlock()

	if last {
		// The whole group is blocked here, so the group's wire time is
		// serialized with its devices: one injected delay per instance.
		// The sleep is abort-aware — on a failed run the waiters are
		// released by the abort channel, not by gs.done.
		if !e.sleep(e.collectiveDelay(in)) {
			return nil, false
		}
		gs.outputs = collectiveResult(in, gs.inputs)
		close(gs.done)
	} else {
		select {
		case <-gs.done:
		case <-e.abort:
			return nil, false
		}
	}

	out := gs.outputs[pos]
	e.mu.Lock()
	gs.read++
	if gs.read == len(group) {
		delete(e.gens, key)
	}
	e.mu.Unlock()
	return out, true
}

// groupOf resolves which rendezvous group device pid joins for the
// instruction and its position within it. CollectivePermute synchronizes
// every device (its kernel consumes all per-device inputs and zero-fills
// non-targets); group collectives use the instruction's device groups.
// Validation guarantees membership exists.
func (e *engine) groupOf(in *hlo.Instruction, pid int) (group []int, groupIdx, pos int) {
	if in.Op == hlo.OpCollectivePermute {
		group = make([]int, e.n)
		for d := range group {
			group[d] = d
		}
		return group, -1, pid
	}
	for gi, g := range in.Groups {
		for i, d := range g {
			if d == pid {
				return g, gi, i
			}
		}
	}
	panic(formatErr("device %d has no group for %s", pid, in.Name))
}

// collectiveResult computes one group instance's per-position outputs,
// dispatching to the same kernels sim's interpreter uses so both
// executors produce bit-identical tensors.
func collectiveResult(in *hlo.Instruction, inputs []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(inputs))
	switch in.Op {
	case hlo.OpAllGather:
		res := collective.AllGather(inputs, in.CollectiveAxis)
		for i := range out {
			out[i] = res
		}
	case hlo.OpReduceScatter:
		copy(out, collective.ReduceScatter(inputs, in.CollectiveAxis))
	case hlo.OpAllReduce:
		res := collective.AllReduce(inputs)
		for i := range out {
			out[i] = res
		}
	case hlo.OpAllToAll:
		copy(out, collective.AllToAll(inputs, in.CollectiveAxis, in.Axis))
	case hlo.OpCollectivePermute:
		copy(out, collective.Permute(inputs, pairSlice(in.Pairs)))
	default:
		panic(formatErr("%s is not a blocking collective", in.Op))
	}
	return out
}

func pairSlice(pairs []hlo.SourceTargetPair) [][2]int {
	out := make([][2]int, len(pairs))
	for i, p := range pairs {
		out[i] = [2]int{p.Source, p.Target}
	}
	return out
}
