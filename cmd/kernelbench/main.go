// Command kernelbench sweeps the einsum kernel engine over square
// matmuls plus the skinny shapes the decomposed loop actually runs
// (few output rows, long contraction) and writes a machine-readable
// report. CI runs the short sweep on every push and uploads the JSON
// next to the telemetry artifacts, so kernel regressions show up as a
// diffable number rather than a feeling. The per-size reference timing
// (odometer path) is included so the report carries its own speedup
// baseline; sizes whose reference run would be too slow carry an
// explicit ref_skipped marker instead of silently dropping the fields.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"overlap"
	"overlap/internal/tensor"
)

type sizeResult struct {
	Size        int     `json:"size"`
	NsPerOp     int64   `json:"ns_per_op"`
	GFLOPs      float64 `json:"gflops"`
	RefNsPerOp  int64   `json:"ref_ns_per_op,omitempty"`
	RefGFLOPs   float64 `json:"ref_gflops,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
	RefSkipped  bool    `json:"ref_skipped,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// skinnyResult is one skinny-GEMM measurement: M output rows against a
// K-long contraction (N fixed), under one kernel strategy. SplitK 0 is
// the reference-order engine; factors >= 2 run the deterministic
// split-K tree. Packed entries store the rhs operand transposed
// ("mk,nk->mn") so every execution exercises the permute-pack path —
// and, across benchmark iterations, the persistent pack cache.
type skinnyResult struct {
	M                 int     `json:"m"`
	K                 int     `json:"k"`
	N                 int     `json:"n"`
	SplitK            int     `json:"split_k"`
	Packed            bool    `json:"packed,omitempty"`
	NsPerOp           int64   `json:"ns_per_op"`
	GFLOPs            float64 `json:"gflops"`
	RefNsPerOp        int64   `json:"ref_ns_per_op,omitempty"`
	RefGFLOPs         float64 `json:"ref_gflops,omitempty"`
	Speedup           float64 `json:"speedup,omitempty"`
	RefSkipped        bool    `json:"ref_skipped,omitempty"`
	PackCacheOff      bool    `json:"pack_cache_off,omitempty"`
	SpeedupVsSplitOff float64 `json:"speedup_vs_split_off,omitempty"`
	SpeedupVsNoCache  float64 `json:"speedup_vs_no_cache,omitempty"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
}

type report struct {
	Workers    int            `json:"kernel_workers"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	PackCache  bool           `json:"pack_cache"`
	Sizes      []sizeResult   `json:"sizes"`
	Skinny     []skinnyResult `json:"skinny"`
}

func main() {
	short := flag.Bool("short", false, "sweep sizes 32-128 only and skip reference timings above 64")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	workers := flag.Int("workers", 0, "kernel worker count (0 = GOMAXPROCS)")
	kernelSplitK := flag.Int("kernel-splitk", 0, "ambient split-K factor for the square sweep (0 = off); the skinny sweep sets its own factors")
	packCache := flag.Bool("pack-cache", true, "enable the persistent operand-pack cache")
	skinnySplitK := flag.Int("skinny-splitk", 4, "split-K factor the skinny sweep measures against factor 0")
	flag.Parse()

	overlap.SetKernelWorkers(*workers)
	overlap.SetKernelSplitK(*kernelSplitK)
	overlap.SetKernelPackCache(*packCache)

	sizes := []int{32, 64, 128, 256, 512}
	refCeiling := 256 // reference is O(n^3) scalar; cap how long we wait
	if *short {
		sizes = []int{32, 64, 128}
		refCeiling = 64
	}

	rep := report{
		Workers:    overlap.KernelWorkers(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PackCache:  *packCache,
	}
	for _, size := range sizes {
		rng := rand.New(rand.NewSource(1))
		x := tensor.Rand(rng, size, size)
		y := tensor.Rand(rng, size, size)
		flops := 2 * float64(size) * float64(size) * float64(size)

		kr := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tensor.Einsum("ik,kj->ij", x, y)
			}
		})
		res := sizeResult{
			Size:        size,
			NsPerOp:     kr.NsPerOp(),
			GFLOPs:      flops / float64(kr.NsPerOp()),
			AllocsPerOp: kr.AllocsPerOp(),
			BytesPerOp:  kr.AllocedBytesPerOp(),
		}
		if size <= refCeiling {
			rr := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tensor.ReferenceEinsum("ik,kj->ij", x, y)
				}
			})
			res.RefNsPerOp = rr.NsPerOp()
			res.RefGFLOPs = flops / float64(rr.NsPerOp())
			res.Speedup = float64(rr.NsPerOp()) / float64(kr.NsPerOp())
		} else {
			res.RefSkipped = true
		}
		rep.Sizes = append(rep.Sizes, res)
		fmt.Fprintf(os.Stderr, "matmul%-4d %10d ns/op %8.2f GFLOP/s", size, res.NsPerOp, res.GFLOPs)
		if res.Speedup != 0 {
			fmt.Fprintf(os.Stderr, "  %5.1fx vs reference", res.Speedup)
		}
		fmt.Fprintln(os.Stderr)
	}

	rep.Skinny = skinnySweep(*skinnySplitK)
	overlap.SetKernelSplitK(*kernelSplitK)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// skinnySweep measures the decomposed loop's shapes — M in {1, 4, 16}
// output rows against contractions of 1k and 4k, N fixed at 256 —
// under four strategies per shape: the reference-order engine, the
// split-K tree at the given factor, and the reference-order engine
// with the rhs stored transposed (the permute-pack path) both with the
// persistent pack cache and without it. The cached/uncached pair is
// the decomposed loop's before/after: with the cache, the recurring
// weight shard packs once instead of once per iteration.
func skinnySweep(factor int) []skinnyResult {
	const n = 256
	cacheWas := tensor.PackCacheEnabled()
	defer tensor.SetPackCache(cacheWas)
	var out []skinnyResult
	for _, m := range []int{1, 4, 16} {
		for _, k := range []int{1024, 4096} {
			rng := rand.New(rand.NewSource(1))
			x := tensor.Rand(rng, m, k)
			y := tensor.Rand(rng, k, n)
			yT := tensor.Rand(rng, n, k) // transposed weight: rhs packs
			flops := 2 * float64(m) * float64(k) * float64(n)

			base := skinnyBench(m, k, n, 0, false, "mk,kn->mn", x, y, flops)
			split := skinnyBench(m, k, n, factor, false, "mk,kn->mn", x, y, flops)
			split.SpeedupVsSplitOff = float64(base.NsPerOp) / float64(split.NsPerOp)
			tensor.SetPackCache(true)
			packed := skinnyBench(m, k, n, 0, true, "mk,nk->mn", x, yT, flops)
			tensor.SetPackCache(false)
			packedCold := skinnyBench(m, k, n, 0, true, "mk,nk->mn", x, yT, flops)
			tensor.SetPackCache(cacheWas)
			packedCold.PackCacheOff = true
			packed.SpeedupVsNoCache = float64(packedCold.NsPerOp) / float64(packed.NsPerOp)
			out = append(out, base, split, packed, packedCold)

			fmt.Fprintf(os.Stderr,
				"skinny m=%-2d k=%-4d %9d ns/op | splitk%d %9d ns/op (%4.2fx) | packed %9d ns/op (%4.2fx vs no cache)\n",
				m, k, base.NsPerOp, factor, split.NsPerOp, split.SpeedupVsSplitOff,
				packed.NsPerOp, packed.SpeedupVsNoCache)
		}
	}
	return out
}

// skinnyBench runs one skinny benchmark under the given split-K factor
// (restored by the caller) and annotates it with its scalar-reference
// baseline. Skinny references are cheap — the work is O(M·K·N) with
// tiny M — so they are never skipped.
func skinnyBench(m, k, n, factor int, packed bool, spec string, x, y *tensor.Tensor, flops float64) skinnyResult {
	overlap.SetKernelSplitK(factor)
	kr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tensor.Einsum(spec, x, y)
		}
	})
	rr := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.ReferenceEinsum(spec, x, y)
		}
	})
	return skinnyResult{
		M:           m,
		K:           k,
		N:           n,
		SplitK:      factor,
		Packed:      packed,
		NsPerOp:     kr.NsPerOp(),
		GFLOPs:      flops / float64(kr.NsPerOp()),
		RefNsPerOp:  rr.NsPerOp(),
		RefGFLOPs:   flops / float64(rr.NsPerOp()),
		Speedup:     float64(rr.NsPerOp()) / float64(kr.NsPerOp()),
		AllocsPerOp: kr.AllocsPerOp(),
		BytesPerOp:  kr.AllocedBytesPerOp(),
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "kernelbench:", err)
	os.Exit(1)
}
