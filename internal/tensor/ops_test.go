package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddSubMulMax(t *testing.T) {
	a := FromValues([]int{2, 2}, []float64{1, 2, 3, 4})
	b := FromValues([]int{2, 2}, []float64{4, 3, 2, 1})
	if got := Add(a, b); !got.Equal(FromValues([]int{2, 2}, []float64{5, 5, 5, 5})) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(a, b); !got.Equal(FromValues([]int{2, 2}, []float64{-3, -1, 1, 3})) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); !got.Equal(FromValues([]int{2, 2}, []float64{4, 6, 6, 4})) {
		t.Fatalf("Mul = %v", got)
	}
	if got := Max(a, b); !got.Equal(FromValues([]int{2, 2}, []float64{4, 3, 3, 4})) {
		t.Fatalf("Max = %v", got)
	}
}

func TestAddInPlaceAccumulates(t *testing.T) {
	a := Iota(2, 2)
	b := Iota(2, 2)
	got := AddInPlace(a, b)
	if got != a {
		t.Fatal("AddInPlace must return its receiver")
	}
	if !a.Equal(Scale(Iota(2, 2), 2)) {
		t.Fatalf("AddInPlace result = %v", a.Data())
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	Add(New(2, 2), New(2, 3))
}

func TestSliceBasic(t *testing.T) {
	x := Iota(3, 4)
	s := Slice(x, []int{1, 1}, []int{3, 3})
	want := FromValues([]int{2, 2}, []float64{5, 6, 9, 10})
	if !s.Equal(want) {
		t.Fatalf("Slice = %v, want %v", s.Data(), want.Data())
	}
}

func TestSliceFullIsIdentity(t *testing.T) {
	x := Iota(3, 4)
	s := Slice(x, []int{0, 0}, []int{3, 4})
	if !s.Equal(x) {
		t.Fatal("full Slice must equal the input")
	}
}

func TestDynamicSliceClamping(t *testing.T) {
	x := Iota(4)
	// Start 3 with size 2 exceeds the bound; XLA clamps the start to 2.
	s := DynamicSlice(x, []int{3}, []int{2})
	if !s.Equal(FromValues([]int{2}, []float64{2, 3})) {
		t.Fatalf("clamped DynamicSlice = %v", s.Data())
	}
	// Negative starts clamp to zero.
	s = DynamicSlice(x, []int{-5}, []int{2})
	if !s.Equal(FromValues([]int{2}, []float64{0, 1})) {
		t.Fatalf("negative-start DynamicSlice = %v", s.Data())
	}
}

func TestDynamicUpdateSlice(t *testing.T) {
	x := New(2, 4)
	u := FromValues([]int{2, 2}, []float64{1, 2, 3, 4})
	got := DynamicUpdateSlice(x, u, []int{0, 2})
	want := FromValues([]int{2, 4}, []float64{0, 0, 1, 2, 0, 0, 3, 4})
	if !got.Equal(want) {
		t.Fatalf("DynamicUpdateSlice = %v, want %v", got.Data(), want.Data())
	}
	if x.At(0, 2) != 0 {
		t.Fatal("DynamicUpdateSlice mutated its input")
	}
}

func TestDynamicUpdateSliceClamps(t *testing.T) {
	x := New(4)
	u := FromValues([]int{2}, []float64{7, 8})
	got := DynamicUpdateSlice(x, u, []int{9})
	want := FromValues([]int{4}, []float64{0, 0, 7, 8})
	if !got.Equal(want) {
		t.Fatalf("clamped DynamicUpdateSlice = %v", got.Data())
	}
}

func TestConcatAxis0And1(t *testing.T) {
	a := Iota(1, 2)
	b := Scale(Iota(1, 2), 10)
	c0 := Concat(0, a, b)
	if !c0.Equal(FromValues([]int{2, 2}, []float64{0, 1, 0, 10})) {
		t.Fatalf("Concat axis 0 = %v", c0.Data())
	}
	c1 := Concat(1, a, b)
	if !c1.Equal(FromValues([]int{1, 4}, []float64{0, 1, 0, 10})) {
		t.Fatalf("Concat axis 1 = %v", c1.Data())
	}
}

func TestSplitConcatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := Rand(rng, 4, 6)
	for axis := 0; axis < 2; axis++ {
		parts := Split(x, axis, 2)
		back := Concat(axis, parts...)
		if !back.Equal(x) {
			t.Fatalf("Split/Concat round trip failed on axis %d", axis)
		}
	}
}

func TestPadThenSliceRecovers(t *testing.T) {
	x := Iota(2, 3)
	p := Pad(x, []int{1, 0}, []int{0, 2}, -1)
	if got := p.Shape(); got[0] != 3 || got[1] != 5 {
		t.Fatalf("Pad shape = %v, want [3 5]", got)
	}
	if p.At(0, 0) != -1 || p.At(2, 4) != -1 {
		t.Fatal("Pad fill value missing")
	}
	back := Slice(p, []int{1, 0}, []int{3, 3})
	if !back.Equal(x) {
		t.Fatal("Slice of Pad does not recover the original")
	}
}

// TestConcatAsMaxOfPads verifies the fusion-friendliness identity from
// §5.4.3 of the paper: Concat(a, b) == Max(PadHigh(a), PadLow(b)) when
// padding with -Inf-like small values is replaced by zero-padding of
// non-negative data. Here we use the exact rewrite on shifted data.
func TestConcatAsMaxOfPads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Rand(rng, 2, 3)
	b := Rand(rng, 2, 3)
	// Shift into positive territory so zero-padding acts as the identity
	// element of Max, mirroring the pad-with-lowest trick.
	a = Add(a, Scale(onesLike(a), 2))
	b = Add(b, Scale(onesLike(b), 2))
	concat := Concat(1, a, b)
	rewritten := Max(
		Pad(a, []int{0, 0}, []int{0, 3}, 0),
		Pad(b, []int{0, 3}, []int{0, 0}, 0),
	)
	if !concat.Equal(rewritten) {
		t.Fatal("Concat != Max(PadHigh, PadLow) rewrite")
	}
}

func onesLike(t *Tensor) *Tensor {
	o := New(t.Shape()...)
	for i := range o.Data() {
		o.Data()[i] = 1
	}
	return o
}

func TestReshapePreservesData(t *testing.T) {
	x := Iota(2, 6)
	y := Reshape(x, 3, 4)
	for i := range x.Data() {
		if x.Data()[i] != y.Data()[i] {
			t.Fatal("Reshape permuted data")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape changing element count did not panic")
		}
	}()
	Reshape(x, 5, 5)
}

func TestTranspose(t *testing.T) {
	x := Iota(2, 3)
	y := Transpose(x, 1, 0)
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("Transpose shape = %v", y.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if x.At(i, j) != y.At(j, i) {
				t.Fatal("Transpose values wrong")
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := Rand(rng, 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4))
		return Transpose(Transpose(x, 2, 0, 1), 1, 2, 0).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DynamicUpdateSlice(zeros, shard_i, offset_i) summed over all
// shards equals the original tensor — the invariant behind the AllGather
// decomposition's result assembly.
func TestShardedUpdateReassembles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := 1 + rng.Intn(4)
		rows := parts * (1 + rng.Intn(3))
		cols := 1 + rng.Intn(5)
		x := Rand(rng, rows, cols)
		shards := Split(x, 0, parts)
		acc := New(rows, cols)
		for i, s := range shards {
			acc = Add(acc, DynamicUpdateSlice(New(rows, cols), s, []int{i * rows / parts, 0}))
		}
		return acc.Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The pair below documents why Add/Sub/Mul/Max use direct loops: the
// zipWith combinator pays a per-element indirect call that blocks
// vectorization. Compare ns/op between the two.
func BenchmarkElementwiseAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Rand(rng, 256, 256)
	y := Rand(rng, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add(x, y)
	}
}

func BenchmarkElementwiseZipWith(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Rand(rng, 256, 256)
	y := Rand(rng, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zipWith(x, y, func(p, q float64) float64 { return p + q })
	}
}
