package overlap

import (
	"math/rand"
	"strings"
	"testing"

	"overlap/internal/tensor"
)

// TestFacadeEndToEnd drives the public API exactly as the README's
// quickstart does: build, apply, simulate, interpret.
func TestFacadeEndToEnd(t *testing.T) {
	const n = 4
	build := func() *Computation {
		c := NewComputation("facade")
		groups := NewRing(n).AxisGroups(0)
		act := c.Parameter(0, "act", []int{8, 16})
		w := c.Parameter(1, "w", []int{4, 24})
		full := c.AllGather(w, 0, groups)
		c.Einsum("bf,fh->bh", act, full)
		return c
	}
	spec := TPUv4()

	baseline := build()
	baseBd, err := Simulate(baseline, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	overlapped := build()
	opts := DefaultOptions(spec)
	opts.UseCostModel = false
	report, err := Apply(overlapped, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.SitesDecomposed != 1 {
		t.Fatalf("report = %+v", report)
	}
	overBd, err := Simulate(overlapped, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	if overBd.StepTime <= 0 || baseBd.StepTime <= 0 {
		t.Fatal("degenerate step times")
	}

	rng := rand.New(rand.NewSource(5))
	args := [][]*Tensor{
		{tensor.Rand(rng, 8, 16)},
		{tensor.Rand(rng, 4, 24), tensor.Rand(rng, 4, 24), tensor.Rand(rng, 4, 24), tensor.Rand(rng, 4, 24)},
	}
	want, err := Interpret(baseline, n, args)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Interpret(overlapped, n, args)
	if err != nil {
		t.Fatal(err)
	}
	for d := range want {
		if !got[d].AllClose(want[d], 1e-9) {
			t.Fatalf("device %d diverged", d)
		}
	}
}

func TestFacadeModelAccessors(t *testing.T) {
	if len(Table1Models()) != 6 || len(Table2Models()) != 6 {
		t.Fatal("table accessors wrong")
	}
	c, err := BuildLayerStep(Table2Models()[0])
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInstructions() == 0 {
		t.Fatal("empty layer graph")
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	if _, err := RunExperiment("nope", TPUv4()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	out, err := RunExperiment("table1", TPUv4())
	if err != nil || !strings.Contains(out, "GPT_1T") {
		t.Fatalf("table1 = %v, %v", out, err)
	}
	if len(ExperimentIDs()) != 17 {
		t.Fatalf("ExperimentIDs = %v", ExperimentIDs())
	}
}

func TestRunExperimentStructured(t *testing.T) {
	s, err := RunExperimentStructured("inference", TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	if s.Experiment != "inference" || len(s.Speedups) != 1 || s.Speedups[0] <= 0 {
		t.Fatalf("structured = %+v", s)
	}
	if !strings.Contains(s.Text, "improvement") {
		t.Fatalf("text = %q", s.Text)
	}
}

// TestFacadeAutotune drives Autotune + Miniature through the public
// API: tune a miniature layer, apply the winner, and confirm a re-tune
// against the same cache is a warm hit with zero executions.
func TestFacadeAutotune(t *testing.T) {
	cfg, err := Miniature(Table2Models()[0], 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := BuildLayerStep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var args [][]*Tensor
	for _, p := range c.Parameters() {
		args = append(args, []*Tensor{tensor.Rand(rng, p.Shape...)})
	}
	opts := AutotuneOptions{Spec: TPUv4(), TopK: 1, TimeScale: 25, CachePath: t.TempDir() + "/cache.json"}
	res, err := Autotune(c, 4, args, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions == 0 || res.MeasuredWall <= 0 {
		t.Fatalf("cold tune did not execute: %+v", res)
	}
	if _, err := res.ApplyBest(c.Clone()); err != nil {
		t.Fatalf("ApplyBest: %v", err)
	}
	warm, err := Autotune(c, 4, args, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || warm.Executions != 0 {
		t.Fatalf("warm tune re-executed: hit=%v executions=%d", warm.CacheHit, warm.Executions)
	}
	if warm.Best.Fingerprint() != res.Best.Fingerprint() {
		t.Fatal("warm decision differs from cold decision")
	}
}

func TestRunExperimentInference(t *testing.T) {
	out, err := RunExperiment("inference", TPUv4())
	if err != nil || !strings.Contains(out, "improvement") {
		t.Fatalf("inference = %q, %v", out, err)
	}
}
