package tensor

import (
	"time"

	"overlap/internal/obs"
)

// Kernel-engine telemetry, resolved once against the process-wide
// registry. The executors run many small einsums per step, so every
// handle here is an allocation-free atomic (see internal/obs); the
// per-kernel timer is skipped entirely while recording is disabled.
var (
	kernelGemmOps = obs.Default().Counter("overlap_kernel_gemm_total",
		"Einsum executions lowered to the blocked GEMM kernel.")
	kernelFallbackOps = obs.Default().Counter("overlap_kernel_fallback_total",
		"Einsum executions on the odometer reference path (spec did not lower to GEMM).")
	kernelAccumOps = obs.Default().Counter("overlap_kernel_fused_accumulate_total",
		"Fused EinsumAddInto executions (no partial-result temporary materialized).")
	kernelPoolReusedBytes = obs.Default().Counter("overlap_kernel_pool_reused_bytes_total",
		"Scratch bytes served from the kernel buffer pool.")
	kernelPoolFreshBytes = obs.Default().Counter("overlap_kernel_pool_fresh_bytes_total",
		"Scratch bytes freshly allocated on kernel buffer-pool misses.")
	kernelSpanSeconds = obs.Default().Histogram("overlap_kernel_span_seconds",
		"Wall-clock duration of individual einsum kernel executions.", obs.TimeBuckets())
	kernelPackHits = obs.Default().Counter("overlap_kernel_pack_hits_total",
		"Kernel operand packs served from the persistent per-plan pack cache.")
	kernelPackMisses = obs.Default().Counter("overlap_kernel_pack_misses_total",
		"Kernel operand packs recomputed on pack-cache misses (cold or invalidated).")
	kernelPackBytes = obs.Default().Counter("overlap_kernel_pack_bytes_total",
		"Bytes permute-packed into pack-cache entries on misses.")
	kernelPackEvictions = obs.Default().Counter("overlap_kernel_pack_evictions_total",
		"Pack-cache entries evicted in LRU order when a plan side exceeded its bound.")
	kernelSplitKOps = obs.Default().Counter("overlap_kernel_splitk_total",
		"GEMM executions on the deterministic split-K tree-reduction path.")
)

// kernelTimerStart returns the start timestamp of one kernel execution
// and whether timing is on; kernelTimerEnd records the span. Split into
// two plain calls (rather than a returned closure) so the hot path
// stays allocation-free.
func kernelTimerStart() (time.Time, bool) {
	if !obs.Default().Enabled() {
		return time.Time{}, false
	}
	return time.Now(), true
}

func kernelTimerEnd(t0 time.Time, timed bool) {
	if timed {
		kernelSpanSeconds.Observe(time.Since(t0).Seconds())
	}
}
