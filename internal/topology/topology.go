// Package topology models the logical device meshes that intra-layer
// model parallelism partitions over: 1D rings and multi-dimensional
// meshes/tori of accelerator chips, with the per-axis subgroup and
// neighbor arithmetic that collectives and the overlap decomposition
// rely on.
//
// Devices are numbered 0..N-1 in row-major order over the mesh
// coordinates, matching how a compiler lays out logical partition ids.
package topology

import "fmt"

// Mesh is a logical d-dimensional device mesh. On TPU-like systems each
// axis corresponds to a physical torus dimension, so every device has a
// direct bidirectional link to its neighbor (with wraparound) along each
// axis.
type Mesh struct {
	names []string
	dims  []int
}

// New returns a mesh with the given named axis sizes. It panics on
// non-positive dimensions or mismatched name/size counts: mesh layouts
// are static configuration, so a bad one is a programming error.
func New(names []string, dims []int) *Mesh {
	if len(names) != len(dims) || len(dims) == 0 {
		panic(fmt.Sprintf("topology: mesh needs matching axis names %v and dims %v", names, dims))
	}
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("topology: non-positive mesh dimension in %v", dims))
		}
	}
	return &Mesh{
		names: append([]string(nil), names...),
		dims:  append([]int(nil), dims...),
	}
}

// NewRing returns a 1-dimensional mesh of n devices with axis name "x".
func NewRing(n int) *Mesh { return New([]string{"x"}, []int{n}) }

// NewTorus2D returns an m-by-n mesh with axes "x" (slow, size m) and "y"
// (fast, size n).
func NewTorus2D(m, n int) *Mesh { return New([]string{"x", "y"}, []int{m, n}) }

// NewTorus3D returns an l-by-m-by-n mesh with axes "x", "y", "z" — the
// physical topology of a TPU v4 pod slice.
func NewTorus3D(l, m, n int) *Mesh { return New([]string{"x", "y", "z"}, []int{l, m, n}) }

// Rank returns the number of mesh axes.
func (m *Mesh) Rank() int { return len(m.dims) }

// Dim returns the size of the given axis.
func (m *Mesh) Dim(axis int) int { return m.dims[axis] }

// Dims returns a copy of all axis sizes.
func (m *Mesh) Dims() []int { return append([]int(nil), m.dims...) }

// AxisName returns the name of the given axis.
func (m *Mesh) AxisName(axis int) string { return m.names[axis] }

// AxisByName returns the index of the named axis, or -1.
func (m *Mesh) AxisByName(name string) int {
	for i, n := range m.names {
		if n == name {
			return i
		}
	}
	return -1
}

// NumDevices returns the total device count.
func (m *Mesh) NumDevices() int {
	n := 1
	for _, d := range m.dims {
		n *= d
	}
	return n
}

// Coord returns the mesh coordinates of a device id.
func (m *Mesh) Coord(device int) []int {
	if device < 0 || device >= m.NumDevices() {
		panic(fmt.Sprintf("topology: device %d out of range for mesh %v", device, m.dims))
	}
	coord := make([]int, len(m.dims))
	for i := len(m.dims) - 1; i >= 0; i-- {
		coord[i] = device % m.dims[i]
		device /= m.dims[i]
	}
	return coord
}

// DeviceAt returns the device id at the given coordinates.
func (m *Mesh) DeviceAt(coord []int) int {
	if len(coord) != len(m.dims) {
		panic(fmt.Sprintf("topology: coordinate rank %d does not match mesh %v", len(coord), m.dims))
	}
	dev := 0
	for i, c := range coord {
		if c < 0 || c >= m.dims[i] {
			panic(fmt.Sprintf("topology: coordinate %v out of range for mesh %v", coord, m.dims))
		}
		dev = dev*m.dims[i] + c
	}
	return dev
}

// AxisStride returns the device-id distance between neighbors along the
// given axis — the Div factor for extracting that axis's coordinate from
// a partition id as (pid / stride) % dim.
func (m *Mesh) AxisStride(axis int) int {
	stride := 1
	for i := axis + 1; i < len(m.dims); i++ {
		stride *= m.dims[i]
	}
	return stride
}

// AxisGroups returns the device groups that vary along the given axis
// with all other coordinates fixed: one group per "line" of the mesh,
// each ordered by the axis coordinate. These are the replica groups of a
// subgroup collective along that axis.
func (m *Mesh) AxisGroups(axis int) [][]int {
	if axis < 0 || axis >= len(m.dims) {
		panic(fmt.Sprintf("topology: axis %d out of range for mesh %v", axis, m.dims))
	}
	var groups [][]int
	others := append([]int(nil), m.dims...)
	others[axis] = 1
	it := make([]int, len(m.dims))
	for {
		group := make([]int, m.dims[axis])
		coord := append([]int(nil), it...)
		for k := 0; k < m.dims[axis]; k++ {
			coord[axis] = k
			group[k] = m.DeviceAt(coord)
		}
		groups = append(groups, group)
		// Advance the iterator over the non-axis coordinates.
		i := len(it) - 1
		for ; i >= 0; i-- {
			it[i]++
			if it[i] < others[i] {
				break
			}
			it[i] = 0
		}
		if i < 0 {
			return groups
		}
	}
}

// ShiftPairs returns the source→target pairs of a cyclic shift by delta
// along the given axis: every device sends to the device whose axis
// coordinate is (own + delta) mod dim. delta = -1 reproduces the paper's
// {0,N-1},{1,0},{2,1},... circular-shift-left pattern on a ring.
func (m *Mesh) ShiftPairs(axis, delta int) [][2]int {
	n := m.NumDevices()
	pairs := make([][2]int, 0, n)
	for dev := 0; dev < n; dev++ {
		coord := m.Coord(dev)
		coord[axis] = mod(coord[axis]+delta, m.dims[axis])
		pairs = append(pairs, [2]int{dev, m.DeviceAt(coord)})
	}
	return pairs
}

// Neighbor returns the device one step (delta = ±1, or any shift) along
// axis from the given device, with wraparound.
func (m *Mesh) Neighbor(device, axis, delta int) int {
	coord := m.Coord(device)
	coord[axis] = mod(coord[axis]+delta, m.dims[axis])
	return m.DeviceAt(coord)
}

// HopDistance returns the minimum number of torus hops between two
// devices: the sum over axes of the wraparound-aware coordinate
// distance.
func (m *Mesh) HopDistance(a, b int) int {
	ca, cb := m.Coord(a), m.Coord(b)
	hops := 0
	for i := range ca {
		d := mod(ca[i]-cb[i], m.dims[i])
		if rev := m.dims[i] - d; rev < d {
			d = rev
		}
		hops += d
	}
	return hops
}

// LinksPerDevice returns the number of bidirectional torus links each
// device has: 2 per axis with size > 2, 1 per axis of size exactly 2,
// and 0 for degenerate size-1 axes.
func (m *Mesh) LinksPerDevice() int {
	links := 0
	for _, d := range m.dims {
		switch {
		case d >= 3:
			links += 2
		case d == 2:
			links++
		}
	}
	return links
}

// String renders the mesh as, e.g., "mesh[x=4,y=8]".
func (m *Mesh) String() string {
	s := "mesh["
	for i := range m.dims {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%d", m.names[i], m.dims[i])
	}
	return s + "]"
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}
