package hlo

import (
	"fmt"
	"strings"
)

// Format renders the computation in an HLO-text-like form, one scheduled
// instruction per line. Fusion bodies are printed indented beneath their
// fusion instruction.
func (c *Computation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s {\n", c.Name)
	for _, in := range c.instrs {
		b.WriteString("  ")
		b.WriteString(formatInstruction(in))
		b.WriteByte('\n')
		if in.Op == OpFusion || in.Op == OpLoop {
			for _, line := range strings.Split(in.Body.Format(), "\n") {
				if line == "" {
					continue
				}
				fmt.Fprintf(&b, "    | %s\n", line)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func formatInstruction(in *Instruction) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%%%s = f32%v %s(", in.Name, in.Shape, in.Op)
	for i, op := range in.Operands {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%%%s", op.Name)
	}
	b.WriteByte(')')
	for _, attr := range formatAttributes(in) {
		fmt.Fprintf(&b, ", %s", attr)
	}
	return b.String()
}

func formatAttributes(in *Instruction) []string {
	var attrs []string
	switch in.Op {
	case OpParameter:
		attrs = append(attrs, fmt.Sprintf("index=%d", in.ParamIndex))
	case OpConstant:
		attrs = append(attrs, fmt.Sprintf("value=%v", in.Literal.Data()))
	case OpEinsum:
		attrs = append(attrs, fmt.Sprintf("spec=%q", in.EinsumSpec))
	case OpConcat:
		attrs = append(attrs, fmt.Sprintf("axis=%d", in.Axis))
	case OpPad:
		attrs = append(attrs, fmt.Sprintf("low=%v high=%v value=%g", in.PadLow, in.PadHigh, in.PadValue))
	case OpSlice:
		attrs = append(attrs, fmt.Sprintf("bounds=[%v:%v]", in.Starts, in.Limits))
	case OpDynamicSlice:
		attrs = append(attrs, fmt.Sprintf("offsets=%s sizes=%v", formatOffsets(in.Offsets), in.SliceSizes))
	case OpDynamicUpdateSlice:
		attrs = append(attrs, fmt.Sprintf("offsets=%s", formatOffsets(in.Offsets)))
	case OpTranspose:
		attrs = append(attrs, fmt.Sprintf("perm=%v", in.Perm))
	case OpAllGather, OpReduceScatter, OpAllToAll:
		attrs = append(attrs, fmt.Sprintf("axis=%d groups=%v", in.CollectiveAxis, in.Groups))
	case OpAllReduce:
		attrs = append(attrs, fmt.Sprintf("groups=%v", in.Groups))
	case OpCollectivePermute, OpCollectivePermuteStart, OpCollectivePermuteDone:
		attrs = append(attrs, fmt.Sprintf("pairs=%s", formatPairs(in.Pairs)))
	case OpLoop:
		attrs = append(attrs, fmt.Sprintf("trip=%d result=%d", in.TripCount, in.ResultIndex))
	}
	return attrs
}

func formatOffsets(offsets []DynOffset) string {
	parts := make([]string, len(offsets))
	for i, o := range offsets {
		parts[i] = o.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatPairs(pairs []SourceTargetPair) string {
	parts := make([]string, len(pairs))
	for i, p := range pairs {
		parts[i] = fmt.Sprintf("{%d,%d}", p.Source, p.Target)
	}
	return "[" + strings.Join(parts, ",") + "]"
}
