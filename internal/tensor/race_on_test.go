//go:build race

package tensor

// raceEnabled reports that this binary was built with the race
// detector, under which sync.Pool deliberately drops items and
// allocation counts are not representative.
const raceEnabled = true
