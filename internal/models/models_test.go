package models

import (
	"math/rand"
	"testing"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/partition"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

func TestTableConfigsValidate(t *testing.T) {
	for _, cfg := range append(Table1(), Table2()...) {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("Meena_500B")
	if err != nil || c.Layers != 120 {
		t.Fatalf("ByName = %+v, %v", c, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestBuildLayerStepAllConfigs(t *testing.T) {
	for _, cfg := range append(Table1(), Table2()...) {
		c, err := BuildLayerStep(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := c.Verify(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		// Every model must contain decomposable sites.
		sites := core.FindPatterns(c, core.FirstChooser{})
		if len(sites) == 0 {
			t.Fatalf("%s: no overlap sites in layer graph", cfg.Name)
		}
	}
}

// tinyDense returns a laptop-scale dense config whose layer graph the
// functional interpreter can execute.
func tinyDense() Config {
	return Config{
		Name: "tiny", Arch: ArchDense, ParamsB: 0,
		Layers: 2, ModelDim: 12, FFDim: 24,
		Batch: 2, SeqLen: 6, HeadDim: 2,
		Chips: 6, MeshX: 2, MeshY: 3,
	}
}

func tinyMoE() Config {
	return Config{
		Name: "tiny_moe", Arch: ArchMoE,
		Layers: 2, ModelDim: 12, FFDim: 8,
		Batch: 3, SeqLen: 6, HeadDim: 2,
		Chips: 6, MeshX: 2, MeshY: 3,
		Experts: 3,
	}
}

func tinySpeech() Config {
	return Config{
		Name: "tiny_speech", Arch: ArchSpeech,
		Layers: 2, ModelDim: 8, FFDim: 16,
		Batch: 4, SeqLen: 4, HeadDim: 2,
		Chips: 6, MeshX: 2, MeshY: 2,
	}
}

// randomArgs builds per-device parameter values matching each
// parameter's local shape by sharding a random logical tensor. Since
// every parameter's local shape arises from a sharding of a logical
// tensor, we reconstruct per-device values directly from the local
// shapes (identical across devices is fine for an equivalence check —
// divergence would still surface through the collectives' structure).
func randomArgs(c *hlo.Computation, numDevices int, rng *rand.Rand) [][]*tensor.Tensor {
	params := c.Parameters()
	args := make([][]*tensor.Tensor, len(params))
	for i, p := range params {
		vals := make([]*tensor.Tensor, numDevices)
		for d := 0; d < numDevices; d++ {
			vals[d] = tensor.Rand(rng, p.Shape...)
		}
		args[i] = vals
	}
	return args
}

// TestLayerStepEquivalenceUnderOverlap is the end-to-end semantics
// check: the full overlap pipeline applied to a complete (tiny) layer
// training-step graph preserves every per-device output.
func TestLayerStepEquivalenceUnderOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, cfg := range []Config{tinyDense(), tinyMoE(), tinySpeech()} {
		n := cfg.MeshX * cfg.MeshY
		base, err := BuildLayerStep(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		args := randomArgs(base, n, rng)

		// Compare a named interior output (the tuple root is a
		// placeholder): re-root both graphs on each tuple operand.
		baseOuts := tupleOperandNames(base)
		refVals := interpretOutputs(t, base, n, args, baseOuts)

		over, err := BuildLayerStep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opts := core.DefaultOptions(machine.TPUv4())
		opts.UseCostModel = false
		report, err := core.Apply(over, opts)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if report.SitesDecomposed == 0 {
			t.Fatalf("%s: nothing decomposed", cfg.Name)
		}
		gotVals := interpretOutputs(t, over, n, args, baseOuts)
		for pos, ref := range refVals {
			got, ok := gotVals[pos]
			if !ok {
				t.Fatalf("%s: output %d missing after overlap", cfg.Name, pos)
			}
			for d := range ref {
				if !got[d].AllClose(ref[d], 1e-9) {
					t.Fatalf("%s: output %d device %d diverges by %v", cfg.Name, pos, d, got[d].MaxDifference(ref[d]))
				}
			}
		}
	}
}

// tupleOperandNames returns the names of the step outputs pinned by the
// final tuple. Collective outputs are renamed by the rewrite, so only
// outputs that survive (parameters aside) are compared; the rewritten
// graph is matched by position instead of name.
func tupleOperandNames(c *hlo.Computation) []string {
	root := c.Root()
	names := make([]string, len(root.Operands))
	for i, op := range root.Operands {
		names[i] = op.Name
	}
	return names
}

// interpretOutputs evaluates the computation and returns the per-device
// values of each tuple operand, keyed by output position.
func interpretOutputs(t *testing.T, c *hlo.Computation, n int, args [][]*tensor.Tensor, _ []string) map[int][]*tensor.Tensor {
	t.Helper()
	// Interpret the whole computation once, reading tuple operands.
	values, err := sim.InterpretAll(c, n, args)
	if err != nil {
		t.Fatal(err)
	}
	root := c.Root()
	out := make(map[int][]*tensor.Tensor, len(root.Operands))
	for i, op := range root.Operands {
		out[i] = values[op]
	}
	return out
}

func TestLayerGraphHasBothRingAxes(t *testing.T) {
	cfg := Table2()[0] // GPT_32B
	c, err := BuildLayerStep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sites := core.FindPatterns(c, core.FirstChooser{})
	strides := map[int]bool{}
	for _, p := range sites {
		strides[p.Ring.Stride] = true
	}
	if len(strides) < 2 {
		t.Fatalf("expected overlap sites on both mesh axes, strides %v", strides)
	}
	kinds := map[core.PatternKind]bool{}
	for _, p := range sites {
		kinds[p.Kind] = true
	}
	if !kinds[core.AllGatherEinsum] || !kinds[core.EinsumReduceScatter] {
		t.Fatalf("expected both site kinds, got %v", kinds)
	}
}

func TestSpeechLayerKeepsDataParallelAllReduce(t *testing.T) {
	c, err := BuildLayerStep(tinySpeech())
	if err != nil {
		t.Fatal(err)
	}
	allReduce := 0
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpAllReduce {
			allReduce++
		}
	}
	if allReduce != 2 {
		t.Fatalf("speech layer has %d all-reduces, want 2 (weight grads)", allReduce)
	}
}

func TestMoELayerHasAllToAll(t *testing.T) {
	c, err := BuildLayerStep(tinyMoE())
	if err != nil {
		t.Fatal(err)
	}
	a2a := 0
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpAllToAll {
			a2a++
		}
	}
	if a2a != 2 {
		t.Fatalf("MoE layer has %d all-to-alls, want 2 (dispatch+combine)", a2a)
	}
}

func TestPartitionShardShapesMatchParameters(t *testing.T) {
	// The local parameter shapes of the big configs must equal
	// logical/sharding arithmetic (guards against silent divisibility
	// bugs in the builders).
	cfg := Table1()[0]
	c, err := BuildLayerStep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mesh := cfg.Mesh()
	act := c.Find("act_ffn")
	want := partition.OnDims(2, []int{0, 1}, []int{1, 0}).ShardShape([]int{cfg.Tokens(), cfg.ModelDim}, mesh)
	if act.Shape[0] != want[0] || act.Shape[1] != want[1] {
		t.Fatalf("act shape %v, want %v", act.Shape, want)
	}
}
