package hlo

import (
	"fmt"

	"overlap/internal/tensor"
)

// The builder methods construct instructions with inferred shapes and
// append them to the computation's schedule. They panic on malformed
// graphs: callers are compiler passes and model builders, so a bad shape
// is a bug, not an input error.

func (c *Computation) build(in *Instruction) *Instruction {
	shape, err := inferShape(in)
	if err != nil {
		panic(fmt.Sprintf("hlo: building %s in %s: %v", in.Op, c.Name, err))
	}
	if in.Op != OpParameter && in.Op != OpReshape && in.Op != OpZero {
		in.Shape = shape
	}
	return c.add(in)
}

// Parameter declares computation input number index with the given shape.
func (c *Computation) Parameter(index int, name string, shape []int) *Instruction {
	return c.build(&Instruction{
		Op:         OpParameter,
		Name:       name,
		ParamIndex: index,
		Shape:      append([]int(nil), shape...),
	})
}

// Constant embeds a literal tensor.
func (c *Computation) Constant(name string, value *tensor.Tensor) *Instruction {
	return c.build(&Instruction{Op: OpConstant, Name: name, Literal: value})
}

// Zeros builds a zero-filled tensor of the given shape — the
// initialization value of decomposition accumulators. Unlike Constant it
// stores no literal, so model-scale shapes stay cheap to carry in the IR.
func (c *Computation) Zeros(name string, shape []int) *Instruction {
	return c.build(&Instruction{Op: OpZero, Name: name, Shape: append([]int(nil), shape...)})
}

// Einsum builds a two-operand Einstein summation with the given spec.
func (c *Computation) Einsum(spec string, lhs, rhs *Instruction) *Instruction {
	return c.build(&Instruction{Op: OpEinsum, EinsumSpec: spec, Operands: []*Instruction{lhs, rhs}})
}

// Add builds an element-wise addition.
func (c *Computation) Add(a, b *Instruction) *Instruction {
	return c.build(&Instruction{Op: OpAdd, Operands: []*Instruction{a, b}})
}

// Max builds an element-wise maximum.
func (c *Computation) Max(a, b *Instruction) *Instruction {
	return c.build(&Instruction{Op: OpMax, Operands: []*Instruction{a, b}})
}

// Copy builds an explicit buffer copy.
func (c *Computation) Copy(a *Instruction) *Instruction {
	return c.build(&Instruction{Op: OpCopy, Operands: []*Instruction{a}})
}

// Reshape reinterprets a's row-major data with a new shape.
func (c *Computation) Reshape(a *Instruction, shape ...int) *Instruction {
	return c.build(&Instruction{Op: OpReshape, Shape: append([]int(nil), shape...), Operands: []*Instruction{a}})
}

// Transpose permutes a's dimensions.
func (c *Computation) Transpose(a *Instruction, perm ...int) *Instruction {
	return c.build(&Instruction{Op: OpTranspose, Perm: append([]int(nil), perm...), Operands: []*Instruction{a}})
}

// Concat concatenates the operands along axis.
func (c *Computation) Concat(axis int, ops ...*Instruction) *Instruction {
	return c.build(&Instruction{Op: OpConcat, Axis: axis, Operands: append([]*Instruction(nil), ops...)})
}

// Pad pads a with value, low[i] elements before and high[i] after dim i.
func (c *Computation) Pad(a *Instruction, low, high []int, value float64) *Instruction {
	return c.build(&Instruction{
		Op: OpPad, Operands: []*Instruction{a},
		PadLow: append([]int(nil), low...), PadHigh: append([]int(nil), high...), PadValue: value,
	})
}

// Slice extracts a[starts:limits].
func (c *Computation) Slice(a *Instruction, starts, limits []int) *Instruction {
	return c.build(&Instruction{
		Op: OpSlice, Operands: []*Instruction{a},
		Starts: append([]int(nil), starts...), Limits: append([]int(nil), limits...),
	})
}

// DynamicSlice extracts a slice of the given sizes at partition-dependent
// offsets.
func (c *Computation) DynamicSlice(a *Instruction, offsets []DynOffset, sizes []int) *Instruction {
	return c.build(&Instruction{
		Op: OpDynamicSlice, Operands: []*Instruction{a},
		Offsets: append([]DynOffset(nil), offsets...), SliceSizes: append([]int(nil), sizes...),
	})
}

// DynamicUpdateSlice overwrites the slice of base at partition-dependent
// offsets with update.
func (c *Computation) DynamicUpdateSlice(base, update *Instruction, offsets []DynOffset) *Instruction {
	return c.build(&Instruction{
		Op: OpDynamicUpdateSlice, Operands: []*Instruction{base, update},
		Offsets: append([]DynOffset(nil), offsets...),
	})
}

// AllGather concatenates shards along axis across each device group.
func (c *Computation) AllGather(a *Instruction, axis int, groups [][]int) *Instruction {
	return c.build(&Instruction{Op: OpAllGather, Operands: []*Instruction{a}, CollectiveAxis: axis, Groups: copyGroups(groups)})
}

// ReduceScatter sums across each device group and keeps the shard along
// axis owned by each device's position in its group.
func (c *Computation) ReduceScatter(a *Instruction, axis int, groups [][]int) *Instruction {
	return c.build(&Instruction{Op: OpReduceScatter, Operands: []*Instruction{a}, CollectiveAxis: axis, Groups: copyGroups(groups)})
}

// AllReduce sums across each device group.
func (c *Computation) AllReduce(a *Instruction, groups [][]int) *Instruction {
	return c.build(&Instruction{Op: OpAllReduce, Operands: []*Instruction{a}, Groups: copyGroups(groups)})
}

// AllToAll splits a along splitAxis, exchanges the pieces across each
// group, and concatenates the received pieces along concatAxis — the
// shard transpose that re-shards one dimension onto another.
func (c *Computation) AllToAll(a *Instruction, splitAxis, concatAxis int, groups [][]int) *Instruction {
	return c.build(&Instruction{Op: OpAllToAll, Operands: []*Instruction{a}, CollectiveAxis: splitAxis, Axis: concatAxis, Groups: copyGroups(groups)})
}

// CollectivePermute transfers a along explicit source→target pairs.
func (c *Computation) CollectivePermute(a *Instruction, pairs []SourceTargetPair) *Instruction {
	return c.build(&Instruction{Op: OpCollectivePermute, Operands: []*Instruction{a}, Pairs: append([]SourceTargetPair(nil), pairs...)})
}

// CollectivePermuteStart begins an asynchronous permute of a.
func (c *Computation) CollectivePermuteStart(a *Instruction, pairs []SourceTargetPair) *Instruction {
	return c.build(&Instruction{Op: OpCollectivePermuteStart, Operands: []*Instruction{a}, Pairs: append([]SourceTargetPair(nil), pairs...)})
}

// CollectivePermuteDone completes the asynchronous permute started by
// start.
func (c *Computation) CollectivePermuteDone(start *Instruction) *Instruction {
	return c.build(&Instruction{Op: OpCollectivePermuteDone, Operands: []*Instruction{start}, Pairs: append([]SourceTargetPair(nil), start.Pairs...)})
}

// Loop builds a counted loop: body's parameters receive the carried
// values (initialized from inits), its root Tuple provides the next
// iteration's values, and the loop yields carried buffer resultIndex
// after tripCount iterations. Loop-invariant inputs are carried
// unchanged (the tuple re-lists their parameter).
func (c *Computation) Loop(body *Computation, tripCount, resultIndex int, inits ...*Instruction) *Instruction {
	return c.build(&Instruction{
		Op:          OpLoop,
		Body:        body,
		TripCount:   tripCount,
		ResultIndex: resultIndex,
		Operands:    append([]*Instruction(nil), inits...),
	})
}

// Tuple groups values as the computation result; it pins every operand
// subgraph as live for dead-code elimination.
func (c *Computation) Tuple(ops ...*Instruction) *Instruction {
	return c.build(&Instruction{Op: OpTuple, Operands: append([]*Instruction(nil), ops...)})
}

// AddBuilt registers a pre-constructed instruction, inferring and
// validating its shape — the entry point for pass code that clones
// instructions into new computations (e.g. fusion bodies).
func (c *Computation) AddBuilt(in *Instruction) *Instruction {
	return c.build(in)
}

// Fusion wraps body as a single fused instruction over the operands. The
// body's parameters must match the operands positionally.
func (c *Computation) Fusion(name string, body *Computation, ops ...*Instruction) *Instruction {
	return c.build(&Instruction{Op: OpFusion, Name: name, Body: body, Operands: append([]*Instruction(nil), ops...)})
}

func copyGroups(groups [][]int) [][]int {
	out := make([][]int, len(groups))
	for i, g := range groups {
		out[i] = append([]int(nil), g...)
	}
	return out
}
