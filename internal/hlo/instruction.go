package hlo

import (
	"fmt"

	"overlap/internal/tensor"
)

// DynOffset is a symbolic, partition- and iteration-dependent offset
// used by DynamicSlice and DynamicUpdateSlice. Its value on device pid
// at loop iteration iter is
//
//	((PIDFactor*(pid/Div) + IterFactor*iter + Add) mod Mod) * Scale
//
// with the division skipped when Div <= 1 and the modulo skipped when
// Mod == 0. The (pid/Div) mod Mod form extracts a device's coordinate
// along one axis of a row-major logical mesh, which is exactly the
// arithmetic the decomposition needs; IterFactor references the
// induction variable of an enclosing Loop (zero outside loops). Real
// XLA computes these offsets from PartitionId / induction-variable
// scalar ops; a closed-form expression keeps the IR small while
// preserving per-device behaviour.
type DynOffset struct {
	PIDFactor  int
	Div        int
	IterFactor int
	Add        int
	Mod        int
	Scale      int
}

// Eval returns the offset value for the given partition id outside any
// loop (iteration 0).
func (o DynOffset) Eval(pid int) int { return o.EvalIter(pid, 0) }

// EvalIter returns the offset value for the given partition id and loop
// iteration.
func (o DynOffset) EvalIter(pid, iter int) int {
	p := pid
	if o.Div > 1 {
		p /= o.Div
	}
	v := o.PIDFactor*p + o.IterFactor*iter + o.Add
	if o.Mod != 0 {
		v %= o.Mod
		if v < 0 {
			v += o.Mod
		}
	}
	return v * o.Scale
}

// Static returns an offset that evaluates to the constant v on every
// device.
func Static(v int) DynOffset { return DynOffset{Add: v, Scale: 1} }

func (o DynOffset) String() string {
	if o.PIDFactor == 0 && o.IterFactor == 0 && o.Mod == 0 {
		return fmt.Sprintf("%d", o.Add*o.Scale)
	}
	div := o.Div
	if div < 1 {
		div = 1
	}
	if o.IterFactor != 0 {
		return fmt.Sprintf("((%d*(pid/%d)+%d*i+%d)%%%d)*%d", o.PIDFactor, div, o.IterFactor, o.Add, o.Mod, o.Scale)
	}
	return fmt.Sprintf("((%d*(pid/%d)+%d)%%%d)*%d", o.PIDFactor, div, o.Add, o.Mod, o.Scale)
}

// SourceTargetPair names one point-to-point edge of a CollectivePermute.
type SourceTargetPair struct {
	Source int
	Target int
}

// Instruction is one node of the dataflow graph. Exported attribute
// fields are only meaningful for the opcodes that use them; the verifier
// enforces consistency.
type Instruction struct {
	ID       int
	Name     string
	Op       OpCode
	Shape    []int
	Operands []*Instruction

	// Group tags instructions that belong to one fusion scope (e.g. one
	// iteration of a Looped CollectiveEinsum). The fusion pass only
	// grows a region within the anchor's group; 0 means untagged.
	Group int

	users map[*Instruction]int // user -> number of operand slots referencing this

	// Parameter.
	ParamIndex int

	// Constant.
	Literal *tensor.Tensor

	// Einsum.
	EinsumSpec string

	// Concat.
	Axis int

	// Pad.
	PadLow, PadHigh []int
	PadValue        float64

	// Slice.
	Starts, Limits []int

	// DynamicSlice / DynamicUpdateSlice.
	Offsets    []DynOffset
	SliceSizes []int

	// Transpose.
	Perm []int

	// Collectives: device groups participating (each group runs an
	// independent instance of the collective — a subgroup collective
	// along one mesh axis has one group per line of the mesh).
	Groups [][]int
	// AllGather concat dimension / ReduceScatter scatter dimension /
	// AllToAll split+concat dimension.
	CollectiveAxis int

	// CollectivePermute (and Start/Done).
	Pairs []SourceTargetPair

	// Fusion: the fused subgraph. Its parameters correspond 1:1 with the
	// fusion instruction's operands; the last instruction in the body is
	// the fusion result.
	// Loop: the loop body; parameters receive the carried buffers, the
	// root Tuple provides the next iteration's values.
	Body *Computation

	// Loop: iteration count and which carried buffer the loop yields.
	TripCount   int
	ResultIndex int
}

// Users returns the instructions that use this one as an operand, in an
// unspecified order.
func (in *Instruction) Users() []*Instruction {
	out := make([]*Instruction, 0, len(in.users))
	for u := range in.users {
		out = append(out, u)
	}
	return out
}

// NumUsers returns the number of distinct user instructions.
func (in *Instruction) NumUsers() int { return len(in.users) }

// HasUser reports whether u uses in as an operand.
func (in *Instruction) HasUser(u *Instruction) bool {
	_, ok := in.users[u]
	return ok
}

// ReplaceOperand swaps every occurrence of old in the operand list for
// new, updating user tracking on both sides.
func (in *Instruction) ReplaceOperand(old, new *Instruction) {
	for i, op := range in.Operands {
		if op == old {
			in.Operands[i] = new
			old.removeUser(in)
			new.addUser(in)
		}
	}
}

func (in *Instruction) addUser(u *Instruction) {
	if in.users == nil {
		in.users = make(map[*Instruction]int)
	}
	in.users[u]++
}

func (in *Instruction) removeUser(u *Instruction) {
	if n := in.users[u]; n > 1 {
		in.users[u] = n - 1
	} else {
		delete(in.users, u)
	}
}

// NumElements returns the element count of the instruction's result.
func (in *Instruction) NumElements() int {
	n := 1
	for _, d := range in.Shape {
		n *= d
	}
	return n
}

// ByteSize returns the result size in bytes assuming 4-byte elements
// (the bf16-pair / f32 granularity the machine model uses).
func (in *Instruction) ByteSize() int64 { return int64(in.NumElements()) * 4 }

// GroupFor returns the collective group containing device pid, or nil if
// the device does not participate.
func (in *Instruction) GroupFor(pid int) []int {
	for _, g := range in.Groups {
		for _, d := range g {
			if d == pid {
				return g
			}
		}
	}
	return nil
}

// PairSource returns the source device sending to target under the
// instruction's permute pairs, and whether one exists.
func (in *Instruction) PairSource(target int) (int, bool) {
	for _, p := range in.Pairs {
		if p.Target == target {
			return p.Source, true
		}
	}
	return 0, false
}

// PairTarget returns the target device that source sends to, and whether
// one exists.
func (in *Instruction) PairTarget(source int) (int, bool) {
	for _, p := range in.Pairs {
		if p.Source == source {
			return p.Target, true
		}
	}
	return 0, false
}

func (in *Instruction) String() string {
	return fmt.Sprintf("%%%s = %s%v", in.Name, in.Op, in.Shape)
}
