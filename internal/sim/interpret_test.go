package sim

import (
	"math/rand"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/tensor"
)

func ring(n int) [][]int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return [][]int{g}
}

func TestInterpretAllGatherEinsum(t *testing.T) {
	// Fig 2 pattern: act [B/N? kept whole here], weight sharded on F.
	const n = 4
	c := hlo.NewComputation("ag_einsum")
	act := c.Parameter(0, "act", []int{3, 8})
	w := c.Parameter(1, "w", []int{2, 5})
	full := c.AllGather(w, 0, ring(n))
	c.Einsum("bf,fh->bh", act, full)

	rng := rand.New(rand.NewSource(1))
	actT := tensor.Rand(rng, 3, 8)
	wFull := tensor.Rand(rng, 8, 5)
	shards := tensor.Split(wFull, 0, n)

	got, err := Interpret(c, n, [][]*tensor.Tensor{{actT}, shards})
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.Einsum("bf,fh->bh", actT, wFull)
	for d := 0; d < n; d++ {
		if !got[d].AllClose(want, 1e-12) {
			t.Fatalf("device %d result differs from logical einsum", d)
		}
	}
}

func TestInterpretReduceScatter(t *testing.T) {
	const n = 3
	c := hlo.NewComputation("rs")
	x := c.Parameter(0, "x", []int{6, 2})
	c.ReduceScatter(x, 0, ring(n))

	rng := rand.New(rand.NewSource(2))
	ins := make([]*tensor.Tensor, n)
	sum := tensor.New(6, 2)
	for d := range ins {
		ins[d] = tensor.Rand(rng, 6, 2)
		sum = tensor.Add(sum, ins[d])
	}
	got, err := Interpret(c, n, [][]*tensor.Tensor{ins})
	if err != nil {
		t.Fatal(err)
	}
	wantShards := tensor.Split(sum, 0, n)
	for d := 0; d < n; d++ {
		if !got[d].AllClose(wantShards[d], 1e-12) {
			t.Fatalf("device %d reduce-scatter shard wrong", d)
		}
	}
}

func TestInterpretAllReduceSubgroups(t *testing.T) {
	// 2x2 mesh, all-reduce along the fast axis: groups {0,1} and {2,3}.
	c := hlo.NewComputation("ar")
	x := c.Parameter(0, "x", []int{2})
	c.AllReduce(x, [][]int{{0, 1}, {2, 3}})
	ins := []*tensor.Tensor{
		tensor.FromValues([]int{2}, []float64{1, 1}),
		tensor.FromValues([]int{2}, []float64{2, 2}),
		tensor.FromValues([]int{2}, []float64{10, 10}),
		tensor.FromValues([]int{2}, []float64{20, 20}),
	}
	got, err := Interpret(c, 4, [][]*tensor.Tensor{ins})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].At(0) != 3 || got[1].At(0) != 3 {
		t.Fatalf("group 0 sum = %v,%v want 3", got[0].At(0), got[1].At(0))
	}
	if got[2].At(0) != 30 || got[3].At(0) != 30 {
		t.Fatalf("group 1 sum = %v,%v want 30", got[2].At(0), got[3].At(0))
	}
}

func TestInterpretCollectivePermuteStartDone(t *testing.T) {
	const n = 3
	c := hlo.NewComputation("cp")
	x := c.Parameter(0, "x", nil)
	// Circular shift left.
	pairs := []hlo.SourceTargetPair{{Source: 0, Target: 2}, {Source: 1, Target: 0}, {Source: 2, Target: 1}}
	start := c.CollectivePermuteStart(x, pairs)
	c.CollectivePermuteDone(start)

	ins := []*tensor.Tensor{tensor.Scalar(10), tensor.Scalar(11), tensor.Scalar(12)}
	got, err := Interpret(c, n, [][]*tensor.Tensor{ins})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].At() != 11 || got[1].At() != 12 || got[2].At() != 10 {
		t.Fatalf("permute = %v %v %v", got[0].At(), got[1].At(), got[2].At())
	}
}

func TestInterpretDynamicSlicePerDevice(t *testing.T) {
	const n = 4
	c := hlo.NewComputation("ds")
	x := c.Parameter(0, "x", []int{8})
	// Device pid takes slice [pid*2 : pid*2+2].
	c.DynamicSlice(x, []hlo.DynOffset{{PIDFactor: 1, Mod: n, Scale: 2}}, []int{2})
	full := tensor.Iota(8)
	got, err := Interpret(c, n, [][]*tensor.Tensor{{full}})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < n; d++ {
		if got[d].At(0) != float64(2*d) || got[d].At(1) != float64(2*d+1) {
			t.Fatalf("device %d slice = %v", d, got[d].Data())
		}
	}
}

func TestInterpretFusionWithOffsets(t *testing.T) {
	const n = 2
	body := hlo.NewComputation("body")
	p := body.Parameter(0, "p", []int{4})
	s := body.DynamicSlice(p, []hlo.DynOffset{{PIDFactor: 1, Mod: n, Scale: 2}}, []int{2})
	body.Add(s, s)

	c := hlo.NewComputation("main")
	x := c.Parameter(0, "x", []int{4})
	c.Fusion("f", body, x)
	got, err := Interpret(c, n, [][]*tensor.Tensor{{tensor.Iota(4)}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].At(0) != 0 || got[0].At(1) != 2 {
		t.Fatalf("device 0 fusion = %v", got[0].Data())
	}
	if got[1].At(0) != 4 || got[1].At(1) != 6 {
		t.Fatalf("device 1 fusion = %v", got[1].Data())
	}
}

func TestInterpretAllToAll(t *testing.T) {
	const n = 2
	c := hlo.NewComputation("a2a")
	x := c.Parameter(0, "x", []int{2, 1})
	c.AllToAll(x, 0, 0, ring(n))
	ins := []*tensor.Tensor{
		tensor.FromValues([]int{2, 1}, []float64{1, 2}),
		tensor.FromValues([]int{2, 1}, []float64{3, 4}),
	}
	got, err := Interpret(c, n, [][]*tensor.Tensor{ins})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].At(0, 0) != 1 || got[0].At(1, 0) != 3 {
		t.Fatalf("a2a device 0 = %v", got[0].Data())
	}
}

func TestInterpretArgValidation(t *testing.T) {
	c := hlo.NewComputation("args")
	c.Parameter(0, "x", []int{2})
	if _, err := Interpret(c, 2, nil); err == nil {
		t.Fatal("missing args accepted")
	}
	if _, err := Interpret(c, 2, [][]*tensor.Tensor{{tensor.Iota(3)}}); err == nil {
		t.Fatal("wrong-shape arg accepted")
	}
	if _, err := Interpret(c, 2, [][]*tensor.Tensor{{tensor.Iota(2), tensor.Iota(2), tensor.Iota(2)}}); err == nil {
		t.Fatal("wrong arg multiplicity accepted")
	}
	if _, err := Interpret(c, 0, [][]*tensor.Tensor{{tensor.Iota(2)}}); err == nil {
		t.Fatal("zero devices accepted")
	}
}

func TestInterpretReplicatedParameterBroadcasts(t *testing.T) {
	c := hlo.NewComputation("bcast")
	x := c.Parameter(0, "x", []int{2})
	c.Add(x, x)
	got, err := Interpret(c, 3, [][]*tensor.Tensor{{tensor.Iota(2)}})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		if got[d].At(1) != 2 {
			t.Fatalf("device %d = %v", d, got[d].Data())
		}
	}
}
