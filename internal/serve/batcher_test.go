package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"overlap/internal/autotune"
)

func dummyPlan(name string) *cachedPlan {
	return &cachedPlan{plan: &autotune.Plan{BestName: name}}
}

// TestBatcherCoalescesIdenticalKeys: N concurrent submits with one
// fingerprint share a single build; exactly one caller is the miss.
func TestBatcherCoalescesIdenticalKeys(t *testing.T) {
	b := newBatcher(newPlanCache(4), 64, 8, 2*time.Millisecond)
	defer b.close()

	var builds atomic.Int64
	build := func() (*cachedPlan, error) {
		builds.Add(1)
		time.Sleep(20 * time.Millisecond) // long enough for every waiter to pile on
		return dummyPlan("shared"), nil
	}

	const n = 6
	var wg sync.WaitGroup
	outcomes := make([]planOutcome, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i], errs[i] = b.submit(context.Background(), "fp", build)
		}(i)
	}
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("%d identical submits ran %d builds, want 1", n, got)
	}
	sources := map[string]int{}
	for i := range outcomes {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if outcomes[i].plan.plan.BestName != "shared" {
			t.Fatalf("submit %d got the wrong plan", i)
		}
		sources[outcomes[i].source]++
	}
	if sources["miss"] != 1 || sources["miss"]+sources["coalesced"] != n {
		t.Fatalf("sources = %v, want one miss and %d coalesced", sources, n-1)
	}
}

// TestBatcherFlushesOnMaxBatch: a full batch flushes immediately, far
// before maxWait.
func TestBatcherFlushesOnMaxBatch(t *testing.T) {
	b := newBatcher(newPlanCache(4), 64, 2, time.Minute)
	defer b.close()
	build := func() (*cachedPlan, error) { return dummyPlan("x"), nil }

	done := make(chan planOutcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			out, err := b.submit(context.Background(), "fp", build)
			if err != nil {
				t.Error(err)
			}
			done <- out
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case out := <-done:
			if out.batchSize != 2 {
				t.Errorf("batchSize = %d, want 2", out.batchSize)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("submit did not return: batch never flushed before maxWait")
		}
	}
}

// TestBatcherFlushesOnMaxWait: a lone request flushes after maxWait
// even though the batch never fills.
func TestBatcherFlushesOnMaxWait(t *testing.T) {
	b := newBatcher(newPlanCache(4), 64, 8, 5*time.Millisecond)
	defer b.close()
	out, err := b.submit(context.Background(), "fp",
		func() (*cachedPlan, error) { return dummyPlan("x"), nil })
	if err != nil {
		t.Fatal(err)
	}
	if out.batchSize != 1 || out.source != "miss" {
		t.Fatalf("outcome = {batch %d, source %q}, want lone miss", out.batchSize, out.source)
	}
}

// TestBatcherAnswersFromCache: a cached fingerprint is a hit and never
// calls build.
func TestBatcherAnswersFromCache(t *testing.T) {
	cache := newPlanCache(4)
	cache.put("fp", dummyPlan("cached"))
	b := newBatcher(cache, 64, 8, time.Millisecond)
	defer b.close()

	out, err := b.submit(context.Background(), "fp",
		func() (*cachedPlan, error) { t.Error("build called on a hit"); return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out.source != "hit" || out.plan.plan.BestName != "cached" {
		t.Fatalf("outcome = {source %q, plan %q}, want cached hit", out.source, out.plan.plan.BestName)
	}
}

// TestBatcherFailedBuildNotCached: a failed compile propagates its error
// and stores nothing — the next submit retries instead of serving
// poison.
func TestBatcherFailedBuildNotCached(t *testing.T) {
	cache := newPlanCache(4)
	b := newBatcher(cache, 64, 8, time.Millisecond)
	defer b.close()

	var builds atomic.Int64
	failOnce := func() (*cachedPlan, error) {
		if builds.Add(1) == 1 {
			return nil, context.DeadlineExceeded
		}
		return dummyPlan("recovered"), nil
	}

	if _, err := b.submit(context.Background(), "fp", failOnce); err == nil {
		t.Fatal("failed build did not propagate its error")
	}
	if cache.len() != 0 {
		t.Fatalf("failed build was cached (len %d)", cache.len())
	}
	out, err := b.submit(context.Background(), "fp", failOnce)
	if err != nil {
		t.Fatalf("retry after failed build: %v", err)
	}
	if out.source != "miss" || out.plan.plan.BestName != "recovered" {
		t.Fatalf("retry outcome = {source %q}, want a fresh miss", out.source)
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2 (fail, then retry)", builds.Load())
	}
}

// TestBatcherOverload: with no loop draining the inbox, a full inbox
// fails fast with errOverloaded instead of queueing without bound. The
// batcher literal deliberately never starts loop().
func TestBatcherOverload(t *testing.T) {
	b := &batcher{
		cache:    newPlanCache(1),
		inbox:    make(chan *job, 1),
		done:     make(chan *flightResult),
		maxBatch: 1,
		maxWait:  time.Millisecond,
		closed:   make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the first submit parks its job and returns on ctx
	build := func() (*cachedPlan, error) { return dummyPlan("x"), nil }
	if _, err := b.submit(ctx, "fp", build); err != context.Canceled {
		t.Fatalf("first submit err = %v, want context.Canceled", err)
	}
	if _, err := b.submit(context.Background(), "fp2", build); err != errOverloaded {
		t.Fatalf("second submit err = %v, want errOverloaded", err)
	}
}

// TestBatcherCloseDrainsInflight: close() waits for running compiles
// and answers their waiters before returning.
func TestBatcherCloseDrainsInflight(t *testing.T) {
	b := newBatcher(newPlanCache(4), 64, 8, time.Millisecond)
	started := make(chan struct{})
	build := func() (*cachedPlan, error) {
		close(started)
		time.Sleep(20 * time.Millisecond)
		return dummyPlan("drained"), nil
	}

	result := make(chan planResult, 1)
	go func() {
		out, err := b.submit(context.Background(), "fp", build)
		result <- planResult{outcome: out, err: err}
	}()
	<-started
	b.close() // must block until the compile lands and the waiter is answered

	select {
	case r := <-result:
		if r.err != nil || r.outcome.plan.plan.BestName != "drained" {
			t.Fatalf("drained submit = {%v, %v}", r.outcome, r.err)
		}
	case <-time.After(time.Second):
		t.Fatal("close returned but the waiter was never answered")
	}
}
