package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(4)
	if r.NumDevices() != 4 || r.Rank() != 1 || r.Dim(0) != 4 {
		t.Fatalf("ring mis-sized: %v", r)
	}
	if r.AxisByName("x") != 0 || r.AxisByName("z") != -1 {
		t.Fatal("axis lookup broken")
	}
	if r.String() != "mesh[x=4]" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestCoordDeviceRoundTrip(t *testing.T) {
	m := NewTorus2D(3, 4)
	for dev := 0; dev < m.NumDevices(); dev++ {
		if got := m.DeviceAt(m.Coord(dev)); got != dev {
			t.Fatalf("round trip %d -> %v -> %d", dev, m.Coord(dev), got)
		}
	}
	// Row-major: device 5 in [3,4] is coord (1,1).
	c := m.Coord(5)
	if c[0] != 1 || c[1] != 1 {
		t.Fatalf("Coord(5) = %v, want [1 1]", c)
	}
}

func TestAxisStride(t *testing.T) {
	m := NewTorus2D(3, 4)
	if m.AxisStride(0) != 4 {
		t.Fatalf("AxisStride(0) = %d, want 4", m.AxisStride(0))
	}
	if m.AxisStride(1) != 1 {
		t.Fatalf("AxisStride(1) = %d, want 1", m.AxisStride(1))
	}
	// Coordinate extraction identity used by DynOffset: coord[axis] ==
	// (pid / stride) % dim.
	for dev := 0; dev < m.NumDevices(); dev++ {
		coord := m.Coord(dev)
		for axis := 0; axis < m.Rank(); axis++ {
			if got := (dev / m.AxisStride(axis)) % m.Dim(axis); got != coord[axis] {
				t.Fatalf("stride arithmetic broken: dev %d axis %d", dev, axis)
			}
		}
	}
}

func TestAxisGroups(t *testing.T) {
	m := NewTorus2D(2, 3)
	gy := m.AxisGroups(1)
	if len(gy) != 2 || len(gy[0]) != 3 {
		t.Fatalf("y groups = %v", gy)
	}
	if gy[0][0] != 0 || gy[0][2] != 2 || gy[1][0] != 3 {
		t.Fatalf("y groups content = %v", gy)
	}
	gx := m.AxisGroups(0)
	if len(gx) != 3 || len(gx[0]) != 2 {
		t.Fatalf("x groups = %v", gx)
	}
	if gx[0][0] != 0 || gx[0][1] != 3 || gx[2][1] != 5 {
		t.Fatalf("x groups content = %v", gx)
	}
}

func TestAxisGroupsPartitionAllDevices(t *testing.T) {
	f := func(a, b uint8) bool {
		m := New([]string{"x", "y"}, []int{1 + int(a)%4, 1 + int(b)%4})
		for axis := 0; axis < m.Rank(); axis++ {
			seen := map[int]bool{}
			for _, g := range m.AxisGroups(axis) {
				for _, d := range g {
					if seen[d] {
						return false
					}
					seen[d] = true
				}
			}
			if len(seen) != m.NumDevices() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftPairsRing(t *testing.T) {
	r := NewRing(4)
	pairs := r.ShiftPairs(0, -1)
	// The paper's pattern: {0,N-1}, {1,0}, {2,1}, {3,2}.
	want := [][2]int{{0, 3}, {1, 0}, {2, 1}, {3, 2}}
	for i, p := range pairs {
		if p != want[i] {
			t.Fatalf("ShiftPairs(-1) = %v, want %v", pairs, want)
		}
	}
	fwd := r.ShiftPairs(0, 1)
	for _, p := range fwd {
		if p[1] != (p[0]+1)%4 {
			t.Fatalf("ShiftPairs(+1) wrong: %v", fwd)
		}
	}
}

func TestShiftPairs2DAxis(t *testing.T) {
	m := NewTorus2D(2, 3)
	pairs := m.ShiftPairs(1, -1)
	for _, p := range pairs {
		cs, cd := m.Coord(p[0]), m.Coord(p[1])
		if cs[0] != cd[0] {
			t.Fatalf("axis-1 shift changed x coordinate: %v", p)
		}
		if cd[1] != (cs[1]+2)%3 {
			t.Fatalf("axis-1 shift wrong: %v", p)
		}
	}
}

func TestNeighborWraparound(t *testing.T) {
	r := NewRing(4)
	if r.Neighbor(0, 0, -1) != 3 {
		t.Fatal("wraparound neighbor wrong")
	}
	if r.Neighbor(3, 0, 1) != 0 {
		t.Fatal("forward wraparound neighbor wrong")
	}
}

func TestHopDistanceTorus(t *testing.T) {
	m := NewTorus2D(4, 4)
	// (0,0) to (3,3): wraparound makes each axis distance 1.
	a := m.DeviceAt([]int{0, 0})
	b := m.DeviceAt([]int{3, 3})
	if got := m.HopDistance(a, b); got != 2 {
		t.Fatalf("HopDistance = %d, want 2", got)
	}
	if m.HopDistance(a, a) != 0 {
		t.Fatal("self distance must be 0")
	}
	c := m.DeviceAt([]int{2, 0})
	if got := m.HopDistance(a, c); got != 2 {
		t.Fatalf("HopDistance to (2,0) = %d, want 2", got)
	}
}

func TestLinksPerDevice(t *testing.T) {
	if got := NewRing(8).LinksPerDevice(); got != 2 {
		t.Fatalf("ring links = %d, want 2", got)
	}
	if got := NewRing(2).LinksPerDevice(); got != 1 {
		t.Fatalf("2-ring links = %d, want 1", got)
	}
	if got := NewTorus2D(4, 8).LinksPerDevice(); got != 4 {
		t.Fatalf("torus links = %d, want 4", got)
	}
	if got := New([]string{"x"}, []int{1}).LinksPerDevice(); got != 0 {
		t.Fatalf("degenerate links = %d, want 0", got)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { New([]string{"x"}, []int{0}) },
		func() { New([]string{"x", "y"}, []int{2}) },
		func() { NewRing(4).Coord(4) },
		func() { NewRing(4).DeviceAt([]int{5}) },
		func() { NewRing(4).AxisGroups(1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTorus3D(t *testing.T) {
	m := NewTorus3D(2, 3, 4)
	if m.NumDevices() != 24 || m.Rank() != 3 {
		t.Fatalf("3D torus mis-sized: %v", m)
	}
	if m.AxisByName("z") != 2 {
		t.Fatal("z axis missing")
	}
	// Row-major strides: x=12, y=4, z=1.
	if m.AxisStride(0) != 12 || m.AxisStride(1) != 4 || m.AxisStride(2) != 1 {
		t.Fatalf("strides = %d %d %d", m.AxisStride(0), m.AxisStride(1), m.AxisStride(2))
	}
	groups := m.AxisGroups(2)
	if len(groups) != 6 || len(groups[0]) != 4 {
		t.Fatalf("z groups = %v", groups)
	}
}

// Property: HopDistance is a metric on the torus — symmetric, zero only
// on the diagonal, and satisfying the triangle inequality.
func TestHopDistanceIsMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewTorus3D(1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(3))
		n := m.NumDevices()
		a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		dab, dba := m.HopDistance(a, b), m.HopDistance(b, a)
		if dab != dba {
			return false
		}
		if (dab == 0) != (sameCoord(m, a, b)) {
			return false
		}
		return m.HopDistance(a, c) <= dab+m.HopDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sameCoord(m *Mesh, a, b int) bool {
	ca, cb := m.Coord(a), m.Coord(b)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}
