package runtime

import "overlap/internal/obs"

// Runtime-side instrumentation handles, resolved once against the
// process-wide registry. The per-device goroutines update them
// concurrently from the execution hot path, which is exactly the
// workload the registry's atomic handles are built for: no locks, no
// allocation, safe under -race.
var (
	rtInstructions = obs.Default().Counter("overlap_runtime_instructions_total",
		"Instructions executed across all runtime devices (loop bodies counted per iteration).")
	rtComputeSpans = obs.Default().Histogram("overlap_runtime_compute_span_seconds",
		"Wall-clock duration of local-instruction evaluations on runtime devices.", obs.TimeBuckets())
	rtStallSpans = obs.Default().Histogram("overlap_runtime_stall_span_seconds",
		"Wall-clock duration of waits on asynchronous transfer dones.", obs.TimeBuckets())
	rtCollectiveSpans = obs.Default().Histogram("overlap_runtime_collective_span_seconds",
		"Wall-clock duration of blocking-collective rendezvous waits.", obs.TimeBuckets())
	rtTransfers = obs.Default().Counter("overlap_runtime_transfers_total",
		"Asynchronous transfers posted onto link goroutines.")
	rtTransferBytes = obs.Default().Counter("overlap_runtime_transfer_bytes_total",
		"Payload bytes posted onto link goroutines.")
)

// Process-transport instrumentation: the serialization boundary the
// socket fabric adds over the in-process one, plus the worker fleet.
var (
	rtSerializeSpans = obs.Default().Histogram("overlap_runtime_serialize_span_seconds",
		"Wall-clock duration of tensor-frame encodes onto worker sockets.", obs.TimeBuckets())
	rtDeserializeSpans = obs.Default().Histogram("overlap_runtime_deserialize_span_seconds",
		"Wall-clock duration of tensor-frame decodes off worker sockets.", obs.TimeBuckets())
	rtWireFrames = obs.Default().Counter("overlap_runtime_wire_frames_total",
		"Tensor frames written to process-transport sockets by the parent.")
	rtWireFrameBytes = obs.Default().Counter("overlap_runtime_wire_frame_bytes_total",
		"Tensor payload bytes written to process-transport sockets by the parent.")
	rtTransportWorkers = obs.Default().Counter("overlap_runtime_transport_workers_total",
		"Worker processes spawned by the process transport.")
)

// Fault-injection and abort-path telemetry: how often injected faults
// fired (by kind), how often runs aborted (and why), and how fast the
// abort path wound the goroutine fleet down once the first error hit.
var (
	rtFaultInjections = obs.Default().Counter("overlap_runtime_fault_injections_total",
		"Injected faults that fired during runtime executions (all kinds).")
	rtFaultDrops = obs.Default().Counter("overlap_runtime_fault_drops_total",
		"Injected transfer deliveries dropped on the wire.")
	rtFaultDuplicates = obs.Default().Counter("overlap_runtime_fault_duplicates_total",
		"Injected duplicate transfer deliveries.")
	rtFaultDelays = obs.Default().Counter("overlap_runtime_fault_delays_total",
		"Injected extra wire delays applied to transfer deliveries.")
	rtFaultCrashes = obs.Default().Counter("overlap_runtime_fault_crashes_total",
		"Injected device crashes.")
	rtAborts = obs.Default().Counter("overlap_runtime_abort_total",
		"Runtime executions that aborted with an error.")
	rtAbortDeadlines = obs.Default().Counter("overlap_runtime_abort_deadline_total",
		"Runtime executions aborted by a context deadline or cancellation.")
	rtAbortJoin = obs.Default().Histogram("overlap_runtime_abort_join_seconds",
		"Wall-clock from the first failure to every device and link goroutine joined.", obs.TimeBuckets())
)
