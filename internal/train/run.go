package train

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strings"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/obs"
	"overlap/internal/runtime"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// Options configures a multi-step training run.
type Options struct {
	// Pipeline, when non-nil, is applied to the built program before
	// execution; nil keeps the blocking baseline (no overlap).
	Pipeline *core.Options
	// Steps is the number of training steps (default 1). Updated
	// weights feed the next step, so the loss trajectory is a real
	// gradient descent.
	Steps int
	// LR is the learning rate; must be a power of two (see CheckLR).
	// Zero defaults to 1/16.
	LR float64
	// Seed drives the deterministic dyadic data generation.
	Seed int64
	// Spec prices the injected wire delays; zero-value defaults to
	// machine.TPUv4().
	Spec machine.Spec
	// TimeScale stretches modeled wire seconds into real sleeps,
	// exactly as in runtime.Options.
	TimeScale float64
	// Check cross-checks every step's outputs bitwise against
	// sim.Interpret on the same program and arguments.
	Check bool
	// Attribution records a trace on the final step and attaches the
	// per-collective overlap attribution to the result.
	Attribution bool
	// Faults injects deterministic faults into every step's execution.
	Faults *runtime.FaultPlan
	// RunID correlates the whole training run: step s executes under
	// "<RunID>.s<s>" (echoed in StepStat.RunID and any RunError), and
	// the final-step trace artifact carries RunID itself. Empty mints a
	// fresh obs.NewRunID.
	RunID string
}

// StepStat is one training step's outcome.
type StepStat struct {
	// Loss is the global squared-error loss, summed over devices.
	Loss float64 `json:"loss"`
	// GradDigest is a sha256 over every gradient output's bytes on
	// every device — the cross-config bitwise-identity witness.
	GradDigest string `json:"grad_digest"`
	// WeightDigest hashes the updated weights the same way.
	WeightDigest string `json:"weight_digest"`
	// StepSeconds is the measured wall-clock step time.
	StepSeconds float64 `json:"step_seconds"`
	// Checked marks a step verified bitwise against the interpreter.
	Checked bool `json:"checked"`
	// RunID is the step's execution identity ("<run>.s<step>").
	RunID string `json:"run_id,omitempty"`
}

// Result is a completed training run.
type Result struct {
	Config Config      `json:"config"`
	Knobs  *core.Knobs `json:"knobs,omitempty"`
	// Report is the pipeline's rewrite summary (zero when no pipeline
	// ran); Report.Buckets lists the gradient buckets formed.
	Report core.Report `json:"-"`
	Steps  []StepStat  `json:"steps"`
	// Attribution is the final step's per-collective overlap breakdown
	// when Options.Attribution was set.
	Attribution *obs.AttributionReport `json:"attribution,omitempty"`
	// BucketAttribution rolls Attribution up per gradient bucket (rows
	// keyed "gbktK"), non-bucket collectives keep their own rows.
	BucketAttribution []obs.Attribution `json:"bucket_attribution,omitempty"`
	// Modeled is the discrete-event attribution of the same transformed
	// program on the machine model (sim.SimulateTrace): deterministic
	// and scale-consistent where the measured Attribution depends on
	// real kernel timings, so it is the witness CI asserts on.
	Modeled *obs.AttributionReport `json:"modeled,omitempty"`
	// ModeledBuckets rolls Modeled up per gradient bucket.
	ModeledBuckets []obs.Attribution `json:"modeled_buckets,omitempty"`
	// Trace is the final step's run-scoped trace artifact when
	// Options.Attribution was set: the measured spans with per-wire-span
	// verdicts, under the run's base ID.
	Trace *obs.RunTrace `json:"trace,omitempty"`
}

// FinalLoss returns the last step's loss (NaN-free by construction).
func (r *Result) FinalLoss() float64 {
	if len(r.Steps) == 0 {
		return 0
	}
	return r.Steps[len(r.Steps)-1].Loss
}

// Run builds cfg's training-step program, optionally applies the
// overlap pipeline, and executes opts.Steps SGD steps on the goroutine
// runtime, feeding each step's updated weights into the next. Gradients
// and updated weights are digested per step; with opts.Check every root
// output is compared bitwise against the interpreter.
func Run(ctx context.Context, cfg Config, opts Options) (*Result, error) {
	prog, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Config: cfg}
	if opts.Pipeline != nil {
		report, err := core.Apply(prog.Comp, *opts.Pipeline)
		if err != nil {
			return nil, err
		}
		res.Report = report
		k := opts.Pipeline.Knobs()
		res.Knobs = &k
	}
	return Execute(ctx, prog, res, opts)
}

// Execute runs the training loop over an already-transformed program —
// the entry point for compiled-plan and serving paths, where the
// computation arrived via autotune rather than core.Apply. The res
// argument carries any pipeline report; pass &Result{Config: …} when
// starting fresh.
func Execute(ctx context.Context, prog *Program, res *Result, opts Options) (*Result, error) {
	cfg := prog.Config
	spec := opts.Spec
	if spec.Name == "" {
		spec = machine.TPUv4()
	}
	lr := opts.LR
	if lr == 0 {
		lr = 1.0 / 16
	}
	steps := opts.Steps
	if steps < 1 {
		steps = 1
	}
	args, err := Args(prog, opts.Seed, lr)
	if err != nil {
		return nil, err
	}

	trGradBucketBytes.Set(bucketBytes(opts.Pipeline))
	trGradBuckets.Set(float64(len(res.Report.Buckets)))

	if opts.Attribution {
		_, events, err := sim.SimulateTrace(prog.Comp, cfg.Devices, spec)
		if err != nil {
			return nil, fmt.Errorf("train: modeled attribution: %w", err)
		}
		rep := sim.Attribute(events)
		res.Modeled = &rep
		res.ModeledBuckets = rep.GroupBy(BucketKey)
	}

	runID := opts.RunID
	if runID == "" {
		runID = obs.NewRunID()
	}

	n := cfg.Devices
	w := cfg.NumWeights()
	for step := 0; step < steps; step++ {
		stepID := fmt.Sprintf("%s.s%d", runID, step)
		ropts := runtime.Options{Spec: spec, TimeScale: opts.TimeScale, Faults: opts.Faults, RunID: stepID}
		last := step == steps-1
		if opts.Attribution && last {
			ropts.Trace = true
		}
		rres, err := runtime.RunContext(ctx, prog.Comp, n, args, ropts)
		if err != nil {
			obs.Log().Error("train.step", "run_id", stepID, "step", step, "error", err.Error())
			return nil, fmt.Errorf("train: step %d: %w", step, err)
		}

		loss := 0.0
		for _, t := range rres.All[prog.RootLoss()] {
			loss += t.At()
		}
		stat := StepStat{
			Loss:         loss,
			GradDigest:   digestOutputs(rres.All, gradOps(prog), n),
			WeightDigest: digestOutputs(rres.All, weightOps(prog), n),
			StepSeconds:  rres.Breakdown.StepTime,
			RunID:        stepID,
		}

		if opts.Check {
			want, err := sim.InterpretAll(prog.Comp, n, args)
			if err != nil {
				return nil, fmt.Errorf("train: step %d interpreter: %w", step, err)
			}
			for _, op := range prog.Comp.Root().Operands {
				for d := 0; d < n; d++ {
					if !rres.All[op][d].Equal(want[op][d]) {
						return nil, fmt.Errorf("train: step %d: %s on device %d diverges from the interpreter", step, op.Name, d)
					}
				}
			}
			stat.Checked = true
			trChecks.Inc()
		}

		trSteps.Inc()
		trLoss.Set(loss)
		trStepSeconds.Observe(stat.StepSeconds)
		res.Steps = append(res.Steps, stat)
		obs.Log().Info("train.step", "run_id", stepID, "step", step,
			"loss", loss, "step_seconds", stat.StepSeconds, "checked", stat.Checked)

		if opts.Attribution && last {
			rep := sim.Attribute(rres.Trace)
			res.Attribution = &rep
			res.BucketAttribution = rep.GroupBy(BucketKey)
			trGradWireSeconds.Set(rep.TotalWire)
			trGradHiddenSeconds.Set(rep.TotalHidden)

			trace := obs.NewRunTrace(runID, "train", sim.Spans(rres.Trace))
			trace.Devices = n
			trace.StepMS = rres.Breakdown.StepTime * 1e3
			res.Trace = trace
		}

		// The updated weights become the next step's parameters; x, the
		// targets, the seed and the learning rate stay fixed.
		for i := 0; i < w; i++ {
			args[ParamWeight0+i] = rres.All[prog.RootWeight(i)]
		}
	}
	return res, nil
}

// BucketKey maps a gradient-bucket instruction name ("gbkt3.…") to its
// bucket ("gbkt3") and leaves every other collective name untouched —
// the GroupBy key for per-bucket attribution.
func BucketKey(name string) string {
	if strings.HasPrefix(name, "gbkt") {
		if i := strings.IndexByte(name, '.'); i > 0 {
			return name[:i]
		}
	}
	return name
}

func gradOps(prog *Program) []*hlo.Instruction {
	w := prog.Config.NumWeights()
	out := make([]*hlo.Instruction, w)
	for i := range out {
		out[i] = prog.RootGrad(i)
	}
	return out
}

func weightOps(prog *Program) []*hlo.Instruction {
	w := prog.Config.NumWeights()
	out := make([]*hlo.Instruction, w)
	for i := range out {
		out[i] = prog.RootWeight(i)
	}
	return out
}

// digestOutputs hashes the named root operands' tensors across devices
// into one hex sha256, float bits taken verbatim: equal digests mean
// bit-identical values.
func digestOutputs(all map[*hlo.Instruction][]*tensor.Tensor, ops []*hlo.Instruction, n int) string {
	h := sha256.New()
	var buf [8]byte
	for _, op := range ops {
		for d := 0; d < n; d++ {
			for _, v := range all[op][d].Data() {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
				h.Write(buf[:])
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func bucketBytes(p *core.Options) float64 {
	if p == nil {
		return 0
	}
	return float64(p.GradBucketBytes)
}
