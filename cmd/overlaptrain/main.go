// Command overlaptrain executes end-to-end training steps — forward,
// backward, SGD update in one SPMD program — on the concurrent
// goroutine runtime, overlapping the gradient communication the
// backward pass produces with its remaining computation.
//
// Two partitioning strategies exercise the paper's §2.2 observation
// that differentiation turns forward AllGathers into backward
// ReduceScatters:
//
//   - megatron: weights row-sharded on the ring; the backward
//     weight-gradient einsums hide each layer's gradient collective.
//   - ddp: weights replicated, batch sharded; per-weight gradient
//     AllReduces are bucketed (-bucket-bytes) and lowered to an
//     asynchronous ring all-reduce that rides the links while later
//     layers' backward einsums still compute.
//
// Every step can be cross-checked bit-for-bit against the lockstep
// interpreter (-check), and the dyadic training fixtures make first-step
// gradients byte-identical across every overlap configuration.
//
// Usage:
//
//	overlaptrain -strategy ddp -steps 3 -check            # bucketed DDP vs interpreter
//	overlaptrain -strategy megatron -mode all             # baseline, rolled, overlap
//	overlaptrain -bucket-bytes 16384 -attrib              # per-bucket overlap attribution
//	overlaptrain -json BENCH_train.json                   # machine-readable snapshot
//	overlaptrain -metrics-out train.prom                  # telemetry export
//	overlaptrain -fault delay:link:0-1:50ms -deadline 30s # chaos under a deadline
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"overlap"
	"overlap/internal/models"
	"overlap/internal/train"
)

func main() {
	// Keep this binary usable as a proc-transport worker (the transport
	// re-executes its parent); a no-op in ordinary invocations.
	overlap.MaybeTransportWorker()

	model := flag.String("model", "GPT_32B", "model name from Table 1 or Table 2 (miniaturized)")
	devices := flag.Int("devices", 4, "ring size (goroutine devices)")
	dim := flag.Int("dim", 8, "miniature per-head dimension (scales every tensor)")
	layers := flag.Int("layers", 2, "FFN blocks in the training step (restores a multi-layer backward pass)")
	strategy := flag.String("strategy", "ddp", "partitioning strategy: megatron or ddp")
	mode := flag.String("mode", "all", "baseline, rolled, overlap, or all")
	steps := flag.Int("steps", 3, "SGD steps; each step's updated weights feed the next")
	lr := flag.Float64("lr", 0, "learning rate; must be a power of two (0 = 1/64)")
	bucketBytes := flag.Int64("bucket-bytes", 32<<10, "gradient bucket-size bound for the ddp overlap mode (0 = no bucketing)")
	seed := flag.Int64("seed", 1, "seed for the deterministic dyadic training data")
	timeScale := flag.Float64("timescale", 2000, "wire-delay scale: modeled seconds sleep this many times longer")
	check := flag.Bool("check", false, "cross-check every step bitwise against the lockstep interpreter")
	attrib := flag.Bool("attrib", false, "print the final step's per-bucket/per-collective overlap attribution")
	jsonOut := flag.String("json", "", "write the machine-readable benchmark snapshot (BENCH_train.json schema) to this file")
	traceOut := flag.String("trace-out", "", "write the overlap mode's final-step run trace artifact (RunTrace JSON, readable by traceviz -trace-in) to this file")
	metricsOut := flag.String("metrics-out", "", "export telemetry to this file (Prometheus text, or JSON with a .json suffix)")
	kernelWorkers := flag.Int("kernel-workers", 0, "intra-op einsum kernel parallelism (0 = GOMAXPROCS); results are byte-identical for any value")
	kernelSplitK := flag.Int("kernel-splitk", 0, "split-K factor for skinny einsum kernels (0 = off); factors >= 2 reassociate the contraction deterministically")
	faultSpec := flag.String("fault", "", "inject faults, comma-separated: crash:dev:D[:K], drop:link:S-D[:K], dup:link:S-D[:K], delay:link:S-D:DUR[:JITTER]")
	faultSeed := flag.Int64("fault-seed", 0, "seed for fault-injection jitter (deterministic per seed)")
	deadline := flag.Duration("deadline", 0, "abort a run that exceeds this wall-clock with a structured error (0 = no deadline)")
	flag.Parse()

	overlap.SetKernelWorkers(*kernelWorkers)
	overlap.SetKernelSplitK(*kernelSplitK)

	strat, err := overlap.ParseTrainStrategy(*strategy)
	if err != nil {
		fail(err)
	}
	faults, err := overlap.ParseFaults(*faultSpec)
	if err != nil {
		fail(err)
	}
	if faults != nil {
		faults.Seed = *faultSeed
		fmt.Printf("injecting faults: %s (seed %d)\n", faults, *faultSeed)
	}

	base, err := models.ByName(*model)
	if err != nil {
		fail(err)
	}
	cfg, err := train.FromModel(base, *devices, *dim, *layers, strat)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s training step: %d devices, %d layers, model %d, hidden %d, %d tokens, strategy %s\n",
		*model, cfg.Devices, cfg.Layers, cfg.Model, cfg.Hidden, cfg.Tokens, cfg.Strategy)

	modes := []string{"baseline", "rolled", "overlap"}
	if *mode != "all" {
		modes = []string{*mode}
	}

	out := benchOut{
		Model: *model, Devices: *devices, Dim: *dim, Layers: cfg.Layers,
		Strategy: cfg.Strategy.String(), Steps: *steps, TimeScale: *timeScale,
	}
	var runErr error
	var lastTrace *overlap.RunTrace
	for _, m := range modes {
		res, err := runMode(cfg, m, strat, *steps, *lr, *seed, *bucketBytes, *timeScale, *check, *attrib, faults, *deadline)
		if err != nil {
			runErr = err
			break
		}
		out.Modes = append(out.Modes, benchMode{Name: m, Result: res})
		if res.Trace != nil && (m == "overlap" || lastTrace == nil) {
			lastTrace = res.Trace
			lastTrace.Model = *model
		}
	}

	if *traceOut != "" && lastTrace != nil {
		data, err := lastTrace.EncodeJSON()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote run trace %s to %s\n", lastTrace.ID, *traceOut)
	}

	// Telemetry and the JSON snapshot are written even when a run
	// failed: a chaos run's abort counters are exactly the point.
	if *metricsOut != "" {
		if err := overlap.Metrics().WriteFile(*metricsOut); err != nil {
			fail(err)
		}
		fmt.Printf("wrote telemetry to %s\n", *metricsOut)
	}
	if *jsonOut != "" && len(out.Modes) > 0 {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote benchmark snapshot to %s\n", *jsonOut)
	}
	if runErr != nil {
		fail(runErr)
	}
}

// benchOut is the BENCH_train.json schema: the configuration plus one
// train.Result per executed mode (per-step losses, bitwise digests,
// knobs, and the final step's bucket attribution).
type benchOut struct {
	Model     string      `json:"model"`
	Devices   int         `json:"devices"`
	Dim       int         `json:"dim"`
	Layers    int         `json:"layers"`
	Strategy  string      `json:"strategy"`
	Steps     int         `json:"steps"`
	TimeScale float64     `json:"timescale"`
	Modes     []benchMode `json:"modes"`
}

type benchMode struct {
	Name   string        `json:"name"`
	Result *train.Result `json:"result"`
}

// pipelineFor maps a CLI mode to the overlap pipeline it runs: nil
// keeps the blocking baseline, "rolled" emits the decomposition as a
// blocking counted loop (the paper's no-overlap form), "overlap"
// decomposes and schedules — bucketing the gradient all-reduces for
// ddp, rematerializing the shared forward gathers for megatron so the
// backward weight-gradient einsums own their collectives.
func pipelineFor(mode string, strat overlap.TrainStrategy, bucketBytes int64) (*overlap.Options, error) {
	switch mode {
	case "baseline":
		return nil, nil
	case "rolled", "overlap":
		opts := overlap.DefaultOptions(overlap.TPUv4())
		// Miniature shapes never clear the full-size cost model.
		opts.UseCostModel = false
		opts.RematerializeGathers = true
		opts.Rolled = mode == "rolled"
		if strat == overlap.TrainDDP && mode == "overlap" {
			opts.GradBucketBytes = bucketBytes
		}
		return &opts, nil
	default:
		return nil, fmt.Errorf("unknown mode %q (want baseline, rolled, overlap, or all)", mode)
	}
}

func runMode(cfg overlap.TrainConfig, mode string, strat overlap.TrainStrategy, steps int, lr float64, seed, bucketBytes int64, timeScale float64, check, attrib bool, faults *overlap.FaultPlan, deadline time.Duration) (*overlap.TrainResult, error) {
	pipeline, err := pipelineFor(mode, strat, bucketBytes)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	res, err := overlap.Train(ctx, cfg, overlap.TrainOptions{
		Pipeline:    pipeline,
		Steps:       steps,
		LR:          lr,
		Seed:        seed,
		TimeScale:   timeScale,
		Check:       check,
		Attribution: true, // the final step's attribution feeds -attrib and -json
		Faults:      faults,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", mode, err)
	}

	for i, st := range res.Steps {
		mark := ""
		if st.Checked {
			mark = "  [checked]"
		}
		fmt.Printf("%-9s step %d  loss %12.6f  %8.2fms  grad %s%s\n",
			mode, i, st.Loss, st.StepSeconds*1e3, st.GradDigest[:12], mark)
	}
	if n := len(res.Steps); n > 1 {
		first, last := res.Steps[0].Loss, res.Steps[n-1].Loss
		verdict := "decreased"
		if last >= first {
			verdict = "DID NOT DECREASE"
		}
		fmt.Printf("%-9s loss %s over %d steps: %.6f -> %.6f\n", mode, verdict, n, first, last)
	}
	if len(res.Report.Buckets) > 0 {
		for _, b := range res.Report.Buckets {
			fmt.Printf("%-9s bucket %s: %d gradients, %d bytes\n", mode, b.Name, len(b.Members), b.Bytes)
		}
	}
	if attrib && res.Attribution != nil {
		printAttribution(res)
	}
	return res, nil
}

// printAttribution renders the final step's overlap attribution: the
// deterministic modeled per-bucket rollup first (one row per gradient
// bucket, the hiding einsums named, "partially hidden" marking rows
// with nonzero hidden time), then the measured per-collective table.
func printAttribution(res *overlap.TrainResult) {
	for _, b := range res.ModeledBuckets {
		under, verdict := "", "exposed"
		for i, u := range b.Under {
			if i == 2 {
				under += ", …"
				break
			}
			if i > 0 {
				under += ", "
			}
			under += u.Name
		}
		if b.Hidden > 0 {
			verdict = "partially hidden"
			if b.Exposed == 0 {
				verdict = "fully hidden"
			}
		}
		fmt.Printf("modeled   %s: wire %.3fms hidden %.3fms (%.0f%% hidden, %s) under %s\n",
			b.Name, b.Wire*1e3, b.Hidden*1e3, 100*b.HiddenFraction(), verdict, under)
	}
	if res.Modeled != nil {
		fmt.Printf("modeled   overlap efficiency %.1f%%\n", 100*res.Modeled.OverlapEfficiency())
	}
	fmt.Print(res.Attribution.Render())
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "overlaptrain: %v\n", err)
	os.Exit(1)
}
