// Command overlapbench regenerates the paper's evaluation tables and
// figures on the simulated TPU-v4-like cluster.
//
// Usage:
//
//	overlapbench [flags] [experiment ...]
//
// With no arguments every experiment runs in presentation order. Known
// experiments: table1 table2 fig1 fig12 fig13 fig14 fig15 fig16 energy
// inference.
package main

import (
	"flag"
	"fmt"
	"os"

	"overlap"
)

func main() {
	linkGBs := flag.Float64("link-gbs", 0, "override per-direction link bandwidth (GB/s, 4-byte-element equivalent)")
	peakTF := flag.Float64("peak-tflops", 0, "override per-chip peak TFLOP/s")
	flag.Parse()

	spec := overlap.TPUv4()
	if *linkGBs > 0 {
		spec.LinkBandwidth = *linkGBs * 1e9
	}
	if *peakTF > 0 {
		spec.PeakFLOPS = *peakTF * 1e12
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = overlap.ExperimentIDs()
	}
	for _, id := range ids {
		out, err := overlap.RunExperiment(id, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "overlapbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
