package runtime

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Phase names where in the execution pipeline a device was (or failed)
// when a run ended: evaluating a local instruction, posting a transfer
// onto its link, waiting for a transfer to arrive, or blocked in a
// blocking-collective rendezvous.
type Phase string

const (
	PhaseCompute    Phase = "compute"
	PhasePost       Phase = "post"
	PhaseReceive    Phase = "receive"
	PhaseRendezvous Phase = "rendezvous"
	// PhaseTransport marks failures of the transport layer itself —
	// spawning worker processes, the socket data plane — rather than of
	// any one device's pipeline position.
	PhaseTransport Phase = "transport"
)

// RunError is the structured failure every aborted run surfaces: which
// device the failure is attributed to (-1 when no single device is),
// the instruction it was executing, the pipeline phase, how much
// wall-clock had elapsed, and — when fault injection caused it — the
// injected fault in ParseFaults syntax. The underlying cause unwraps,
// so errors.Is(err, context.DeadlineExceeded) works on deadline aborts.
type RunError struct {
	Device  int
	Instr   string
	Phase   Phase
	Elapsed time.Duration
	Fault   string
	Err     error

	// RunID is the failed execution's run identity, stamped by the
	// engine when the run aborts so the failure correlates with the
	// run's trace and structured logs.
	RunID string
}

func (e *RunError) Error() string {
	var b strings.Builder
	b.WriteString("runtime: run failed")
	if e.Device >= 0 {
		fmt.Fprintf(&b, ": device %d", e.Device)
	}
	if e.Instr != "" {
		fmt.Fprintf(&b, ": %s", e.Instr)
	}
	if e.Phase != "" {
		fmt.Fprintf(&b, " (phase %s)", e.Phase)
	}
	fmt.Fprintf(&b, ": %v", e.Err)
	if e.Elapsed > 0 {
		fmt.Fprintf(&b, " [elapsed %s]", e.Elapsed.Round(time.Microsecond))
	}
	if e.Fault != "" {
		fmt.Fprintf(&b, " [injected: %s]", e.Fault)
	}
	if e.RunID != "" {
		fmt.Fprintf(&b, " [run %s]", e.RunID)
	}
	return b.String()
}

func (e *RunError) Unwrap() error { return e.Err }

// MarshalJSON renders the structured failure for machine consumers —
// the serving daemon's 5xx bodies and the exported chaos artifacts —
// keeping every attribution field (device, instruction, phase, injected
// fault) individually addressable instead of smeared into one string.
func (e *RunError) MarshalJSON() ([]byte, error) {
	cause := ""
	if e.Err != nil {
		cause = e.Err.Error()
	}
	return json.Marshal(struct {
		Device    int     `json:"device"`
		Instr     string  `json:"instruction,omitempty"`
		Phase     Phase   `json:"phase,omitempty"`
		ElapsedMS float64 `json:"elapsed_ms,omitempty"`
		Fault     string  `json:"fault,omitempty"`
		Cause     string  `json:"cause"`
		RunID     string  `json:"run_id,omitempty"`
	}{e.Device, e.Instr, e.Phase, float64(e.Elapsed) / float64(time.Millisecond), e.Fault, cause, e.RunID})
}

// Sentinel causes for injected faults, exposed so tests can assert on
// the failure class independent of message wording.
var (
	ErrInjectedCrash     = errors.New("injected device crash")
	ErrDuplicateDelivery = errors.New("duplicate transfer delivery")
	ErrMissingLink       = errors.New("no fabric link for edge")
	// ErrWorkerExit marks a process-transport worker that died (or whose
	// socket broke) while the run was still live.
	ErrWorkerExit = errors.New("transport worker exited for device")
)

// FaultKind classifies one injected fault.
type FaultKind string

const (
	// FaultDelay holds a link's wire for extra time (plus seeded jitter)
	// on matching deliveries.
	FaultDelay FaultKind = "delay"
	// FaultDrop loses a link's k-th delivery on the wire.
	FaultDrop FaultKind = "drop"
	// FaultDuplicate delivers a link's k-th parcel twice; the fabric
	// detects the at-most-once violation and fails the run.
	FaultDuplicate FaultKind = "dup"
	// FaultCrash kills a device at its k-th executed instruction.
	FaultCrash FaultKind = "crash"
)

// Fault is one injected failure. Link faults (delay/drop/dup) address a
// directed (Src,Dst) edge and the K-th parcel traversing it (K == -1
// means every parcel, allowed for delay only). Crash faults address a
// device and the K-th instruction it executes (loop-body instructions
// count once per iteration).
type Fault struct {
	Kind     FaultKind
	Src, Dst int
	Device   int
	K        int
	Delay    time.Duration
	Jitter   time.Duration
}

// String renders the fault in the syntax ParseFaults accepts.
func (f Fault) String() string {
	switch f.Kind {
	case FaultCrash:
		return fmt.Sprintf("crash:dev:%d:%d", f.Device, f.K)
	case FaultDelay:
		s := fmt.Sprintf("delay:link:%d-%d:%s", f.Src, f.Dst, f.Delay)
		if f.Jitter > 0 {
			s += ":" + f.Jitter.String()
		}
		if f.K >= 0 {
			s = fmt.Sprintf("%s@%d", s, f.K)
		}
		return s
	default:
		return fmt.Sprintf("%s:link:%d-%d:%d", f.Kind, f.Src, f.Dst, f.K)
	}
}

// FaultPlan is a deterministic, seeded set of faults to inject into one
// run: the same plan against the same program always fires the same
// faults at the same logical points (per-link delivery order and
// per-device instruction order are both program-determined), and Seed
// fixes the jitter stream of every delay fault.
type FaultPlan struct {
	Seed   int64
	Faults []Fault
}

func (p *FaultPlan) String() string {
	if p == nil || len(p.Faults) == 0 {
		return "none"
	}
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// validate rejects plans that address devices or edges outside the run.
func (p *FaultPlan) validate(n int) error {
	if p == nil {
		return nil
	}
	for _, f := range p.Faults {
		switch f.Kind {
		case FaultCrash:
			if f.Device < 0 || f.Device >= n {
				return formatErr("fault %s: device out of range [0,%d)", f, n)
			}
			if f.K < 0 {
				return formatErr("fault %s: instruction index must be >= 0", f)
			}
		case FaultDelay, FaultDrop, FaultDuplicate:
			if f.Src < 0 || f.Src >= n || f.Dst < 0 || f.Dst >= n {
				return formatErr("fault %s: link endpoint out of range [0,%d)", f, n)
			}
			if f.Kind != FaultDelay && f.K < 0 {
				return formatErr("fault %s: delivery index must be >= 0", f)
			}
			if f.Kind == FaultDelay && f.Delay <= 0 {
				return formatErr("fault %s: delay must be positive", f)
			}
		default:
			return formatErr("fault %s: unknown kind %q", f, f.Kind)
		}
	}
	return nil
}

// ParseFaults parses a comma-separated fault list:
//
//	crash:dev:D[:K]           crash device D at its K-th instruction (default 0)
//	drop:link:S-D[:K]         drop the K-th delivery on edge S->D (default 0)
//	dup:link:S-D[:K]          duplicate the K-th delivery on edge S->D (default 0)
//	delay:link:S-D:DUR[:JIT]  delay every delivery on S->D by DUR plus
//	                          seeded jitter uniform in [0,JIT)
//
// An empty spec returns a nil plan (no injection).
func ParseFaults(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	plan := &FaultPlan{}
	for _, one := range strings.Split(spec, ",") {
		f, err := parseFault(strings.TrimSpace(one))
		if err != nil {
			return nil, err
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan, nil
}

func parseFault(s string) (Fault, error) {
	parts := strings.Split(s, ":")
	bad := func(why string) (Fault, error) {
		return Fault{}, formatErr("fault %q: %s", s, why)
	}
	if len(parts) < 3 {
		return bad("want kind:scope:target, e.g. drop:link:0-1")
	}
	kind := FaultKind(parts[0])
	switch kind {
	case FaultCrash:
		if parts[1] != "dev" {
			return bad("crash faults address a device: crash:dev:D[:K]")
		}
		dev, err := strconv.Atoi(parts[2])
		if err != nil {
			return bad("device must be an integer")
		}
		k := 0
		if len(parts) > 3 {
			if k, err = strconv.Atoi(parts[3]); err != nil {
				return bad("instruction index must be an integer")
			}
		}
		if len(parts) > 4 {
			return bad("too many fields")
		}
		return Fault{Kind: kind, Device: dev, K: k}, nil

	case FaultDrop, FaultDuplicate, FaultDelay:
		if parts[1] != "link" {
			return bad("link faults address an edge: " + string(kind) + ":link:S-D")
		}
		src, dst, err := parseEdge(parts[2])
		if err != nil {
			return bad(err.Error())
		}
		f := Fault{Kind: kind, Src: src, Dst: dst, K: 0}
		rest := parts[3:]
		if kind == FaultDelay {
			f.K = -1 // every delivery
			if len(rest) == 0 {
				return bad("delay faults need a duration: delay:link:S-D:DUR[:JIT]")
			}
			if f.Delay, err = time.ParseDuration(rest[0]); err != nil {
				return bad("bad duration " + strconv.Quote(rest[0]))
			}
			if len(rest) > 1 {
				if f.Jitter, err = time.ParseDuration(rest[1]); err != nil {
					return bad("bad jitter " + strconv.Quote(rest[1]))
				}
			}
			if len(rest) > 2 {
				return bad("too many fields")
			}
			return f, nil
		}
		if len(rest) > 0 {
			if f.K, err = strconv.Atoi(rest[0]); err != nil {
				return bad("delivery index must be an integer")
			}
		}
		if len(rest) > 1 {
			return bad("too many fields")
		}
		return f, nil
	}
	return bad("unknown kind (want crash, drop, dup, or delay)")
}

func parseEdge(s string) (src, dst int, err error) {
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("edge must be S-D")
	}
	if src, err = strconv.Atoi(a); err != nil {
		return 0, 0, fmt.Errorf("edge source must be an integer")
	}
	if dst, err = strconv.Atoi(b); err != nil {
		return 0, 0, fmt.Errorf("edge target must be an integer")
	}
	return src, dst, nil
}

// linkFaults is the per-edge injection state, owned by that edge's
// single serve goroutine: a delivery counter, the drop/dup indices, the
// delay faults, and a seeded jitter stream. Because deliveries on one
// link are program-ordered, the whole thing is deterministic.
type linkFaults struct {
	count  int
	drops  map[int]Fault
	dups   map[int]Fault
	delays []Fault
	rng    *rand.Rand
}

// next returns the index of the delivery about to be served and
// advances the counter.
func (lf *linkFaults) next() int {
	k := lf.count
	lf.count++
	return k
}

// firedFault records one fault that actually triggered, with the
// instruction it hit, so deadline aborts can attribute a stall to the
// injected fault that caused it.
type firedFault struct {
	fault Fault
	instr string
}

// injector holds a run's compiled fault plan: per-device crash points,
// per-link fault state, and the record of faults that fired.
type injector struct {
	crashAt map[int]map[int]Fault
	links   map[[2]int]*linkFaults

	mu    sync.Mutex
	fired []firedFault
}

func newInjector(plan *FaultPlan) *injector {
	inj := &injector{
		crashAt: map[int]map[int]Fault{},
		links:   map[[2]int]*linkFaults{},
	}
	lf := func(f Fault) *linkFaults {
		edge := [2]int{f.Src, f.Dst}
		l, ok := inj.links[edge]
		if !ok {
			// Seed the jitter stream per link so concurrency between
			// links cannot perturb it.
			seed := plan.Seed ^ (int64(f.Src)<<32 | int64(f.Dst))
			l = &linkFaults{
				drops: map[int]Fault{},
				dups:  map[int]Fault{},
				rng:   rand.New(rand.NewSource(seed)),
			}
			inj.links[edge] = l
		}
		return l
	}
	for _, f := range plan.Faults {
		switch f.Kind {
		case FaultCrash:
			m, ok := inj.crashAt[f.Device]
			if !ok {
				m = map[int]Fault{}
				inj.crashAt[f.Device] = m
			}
			m[f.K] = f
		case FaultDrop:
			lf(f).drops[f.K] = f
		case FaultDuplicate:
			lf(f).dups[f.K] = f
		case FaultDelay:
			l := lf(f)
			l.delays = append(l.delays, f)
		}
	}
	return inj
}

// crash reports whether device dev should crash at instruction index k.
func (inj *injector) crash(dev, k int) (Fault, bool) {
	m, ok := inj.crashAt[dev]
	if !ok {
		return Fault{}, false
	}
	f, ok := m[k]
	return f, ok
}

// record notes a fired fault and bumps the fault telemetry.
func (inj *injector) record(f Fault, instr string) {
	rtFaultInjections.Inc()
	inj.mu.Lock()
	inj.fired = append(inj.fired, firedFault{fault: f, instr: instr})
	inj.mu.Unlock()
}

// firstStall returns the first fired fault that can stall a receiver
// (a drop or delay): the fault a deadline abort should be attributed
// to when nothing failed outright.
func (inj *injector) firstStall() (firedFault, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, ff := range inj.fired {
		if ff.fault.Kind == FaultDrop || ff.fault.Kind == FaultDelay {
			return ff, true
		}
	}
	return firedFault{}, false
}
