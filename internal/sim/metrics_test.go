package sim

import (
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/obs"
	"overlap/internal/topology"
)

// TestSimulateRecordsMetrics checks the simulator's reporting path: one
// Simulate call must bump the run counter, the instruction counter, and
// the last-run gauges in the process-wide registry.
func TestSimulateRecordsMetrics(t *testing.T) {
	r := obs.Default()
	runs := r.Counter("overlap_sim_runs_total", "")
	instrs := r.Counter("overlap_sim_instructions_total", "")
	lastStep := r.Gauge("overlap_sim_last_step_seconds", "")

	c := hlo.NewComputation("m")
	a := c.Parameter(0, "a", []int{8, 8})
	b := c.Parameter(1, "b", []int{8, 8})
	c.Einsum("ij,jk->ik", a, b)
	c.AllReduce(c.Root(), topology.NewRing(2).AxisGroups(0))

	runs0, instrs0 := runs.Value(), instrs.Value()
	bd, err := Simulate(c, 2, machine.TPUv4())
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Value() - runs0; got != 1 {
		t.Fatalf("run counter moved by %v, want 1", got)
	}
	if got := instrs.Value() - instrs0; got != 4 {
		t.Fatalf("instruction counter moved by %v, want 4", got)
	}
	if lastStep.Value() != bd.StepTime {
		t.Fatalf("last step gauge = %v, want %v", lastStep.Value(), bd.StepTime)
	}
}

// TestSpansConversion checks trace events convert to analyzer spans
// with microseconds scaled back to seconds.
func TestSpansConversion(t *testing.T) {
	spans := Spans([]TraceEvent{
		{Name: "x", Cat: "transfer", TS: 2e6, Dur: 5e5, PID: 3, TID: TraceTIDTransfer},
	})
	s := spans[0]
	if s.Device != 3 || s.Track != obs.TrackTransfer || s.Cat != obs.CatTransfer ||
		s.Name != "x" || s.Start != 2 || s.Dur != 0.5 {
		t.Fatalf("span = %+v", s)
	}
}
