package overlap_test

import (
	"fmt"
	"log"

	"overlap"
)

// ExampleApply decomposes a weight-gathered einsum on a 4-chip ring and
// reports what the pipeline did.
func ExampleApply() {
	const n = 4
	c := overlap.NewComputation("layer")
	groups := overlap.NewRing(n).AxisGroups(0)
	act := c.Parameter(0, "act", []int{8192, 2048})
	w := c.Parameter(1, "w", []int{512, 8192})
	full := c.AllGather(w, 0, groups)
	c.Einsum("bf,fh->bh", act, full)

	report, err := overlap.Apply(c, overlap.DefaultOptions(overlap.TPUv4()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sites found: %d, decomposed: %d\n", report.SitesFound, report.SitesDecomposed)
	// Output:
	// sites found: 1, decomposed: 1
}

// ExampleSimulate measures the step-time effect of overlapping on the
// same layer.
func ExampleSimulate() {
	const n = 4
	build := func() *overlap.Computation {
		c := overlap.NewComputation("layer")
		groups := overlap.NewRing(n).AxisGroups(0)
		act := c.Parameter(0, "act", []int{8192, 2048})
		w := c.Parameter(1, "w", []int{512, 8192})
		full := c.AllGather(w, 0, groups)
		c.Einsum("bf,fh->bh", act, full)
		return c
	}
	spec := overlap.TPUv4()
	base := build()
	baseBd, _ := overlap.Simulate(base, n, spec)
	over := build()
	if _, err := overlap.Apply(over, overlap.DefaultOptions(spec)); err != nil {
		log.Fatal(err)
	}
	overBd, _ := overlap.Simulate(over, n, spec)
	fmt.Printf("faster: %v\n", overBd.StepTime < baseBd.StepTime)
	// Output:
	// faster: true
}

// ExampleGradients derives a backward pass whose collectives are the
// transposed forward collectives.
func ExampleGradients() {
	const n = 2
	c := overlap.NewComputation("train")
	groups := overlap.NewRing(n).AxisGroups(0)
	x := c.Parameter(0, "x", []int{4, 8})
	w := c.Parameter(1, "w", []int{8, 8})
	probe := c.Parameter(2, "probe", []int{8, 8})
	seed := c.Parameter(3, "seed", nil)
	full := c.AllGather(x, 0, groups)
	out := c.Einsum("mk,kn->mn", full, w)
	loss := c.Einsum("mn,mn->", out, probe)
	grads, err := overlap.Gradients(c, loss, seed, []*overlap.Instruction{x})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dx op: %s\n", grads[x].Op)
	// Output:
	// dx op: reduce-scatter
}

// ExampleRunExperiment regenerates one of the paper's tables.
func ExampleRunExperiment() {
	out, err := overlap.RunExperiment("table2", overlap.TPUv4())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out[:31])
	// Output:
	// Table 2: weak-scaled GPT models
}
