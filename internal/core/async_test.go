package core

import (
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/machine"
)

func countOps(c *hlo.Computation, op hlo.OpCode) int {
	n := 0
	for _, in := range c.Instructions() {
		if in.Op == op {
			n++
		}
	}
	return n
}

// TestMakeAsyncIdempotent is the regression test for re-running the
// async conversion: the first call converts every blocking permute, and
// any further call must convert nothing and leave the computation —
// including a schedule the scheduling pass has already arranged —
// byte-for-byte unchanged, never double-wrapping Start/Done pairs.
func TestMakeAsyncIdempotent(t *testing.T) {
	build := func() *hlo.Computation {
		c := hlo.NewComputation("async")
		a := c.Parameter(0, "a", []int{4, 4})
		b := c.Parameter(1, "b", []int{4, 4})
		p := c.CollectivePermute(a, []hlo.SourceTargetPair{{Source: 0, Target: 1}, {Source: 1, Target: 0}})
		q := c.CollectivePermute(b, []hlo.SourceTargetPair{{Source: 1, Target: 0}, {Source: 0, Target: 1}})
		ein := c.Einsum("mk,kn->mn", p, q)
		c.Tuple(ein)
		return c
	}

	c := build()
	if got := MakeAsync(c); got != 2 {
		t.Fatalf("first MakeAsync converted %d permutes, want 2", got)
	}
	if starts := countOps(c, hlo.OpCollectivePermuteStart); starts != 2 {
		t.Fatalf("got %d starts after conversion, want 2", starts)
	}
	before := c.Format()

	if got := MakeAsync(c); got != 0 {
		t.Fatalf("second MakeAsync converted %d permutes, want 0", got)
	}
	if after := c.Format(); after != before {
		t.Fatalf("second MakeAsync changed the computation:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if starts, dones := countOps(c, hlo.OpCollectivePermuteStart), countOps(c, hlo.OpCollectivePermuteDone); starts != 2 || dones != 2 {
		t.Fatalf("start/done pairs double-wrapped: %d starts, %d dones", starts, dones)
	}

	// A scheduled program must also survive re-conversion untouched:
	// the guard must not re-sort the schedule the pass produced.
	if err := ScheduleBottomUp(c, machine.TPUv4()); err != nil {
		t.Fatal(err)
	}
	scheduled := c.Format()
	if got := MakeAsync(c); got != 0 {
		t.Fatalf("MakeAsync on scheduled program converted %d, want 0", got)
	}
	if c.Format() != scheduled {
		t.Fatal("MakeAsync disturbed an existing schedule")
	}
}
