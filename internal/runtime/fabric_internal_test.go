package runtime

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"overlap/internal/hlo"
	"overlap/internal/tensor"
)

// TestPostMissingLinkFailsFast pins the fabric's defense against edges
// absent at build time: posting on a (src,dst) pair with no link — a
// malformed program or pairs mutated after fabric construction — must
// fail the run with a structured error naming the edge, not send on a
// nil channel and block until some other failure aborts the run.
func TestPostMissingLinkFailsFast(t *testing.T) {
	c := hlo.NewComputation("missing-link")
	a := c.Parameter(0, "a", []int{2, 2})
	start := c.CollectivePermuteStart(a, []hlo.SourceTargetPair{{Source: 0, Target: 1}})
	c.CollectivePermuteDone(start)

	e, err := newEngine(c, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.fabric.start(); err != nil {
		t.Fatal(err)
	}
	defer e.fabric.shutdown()

	done := make(chan bool, 1)
	go func() {
		// Edge 0->3 was never built: only 0->1 appears in the program.
		done <- e.fabric.post(0, 3, mailKey{start: start}, tensor.New(2, 2), 16)
	}()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("post on a missing link reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("post on a missing link blocked instead of failing fast")
	}

	var re *RunError
	if !errors.As(e.err, &re) {
		t.Fatalf("engine error %v is not a *RunError", e.err)
	}
	if !errors.Is(re, ErrMissingLink) {
		t.Fatalf("error %v does not unwrap to ErrMissingLink", re)
	}
	if re.Device != 0 || re.Phase != PhasePost {
		t.Fatalf("error attributes device %d phase %s, want device 0 phase post", re.Device, re.Phase)
	}
	for _, frag := range []string{"0->3", start.Name} {
		if !strings.Contains(re.Error(), frag) {
			t.Fatalf("error %q does not name %q", re.Error(), frag)
		}
	}
}

// TestMailboxMapsBounded pins the fabric's watermark pruning: a loop
// executing the same permute start many times must leave the mailbox
// and delivered maps empty and the watermark map at one entry per
// distinct start — O(in-flight) bookkeeping, not one entry per
// instance for the life of the run. Before pruning, each consumed
// instance left its delivered mark behind forever, so this loop would
// end with as many entries as iterations.
func TestMailboxMapsBounded(t *testing.T) {
	const iters = 64
	body := hlo.NewComputation("body")
	p0 := body.Parameter(0, "p0", []int{4})
	start := body.CollectivePermuteStart(p0, []hlo.SourceTargetPair{{Source: 0, Target: 1}, {Source: 1, Target: 0}})
	done := body.CollectivePermuteDone(start)
	body.Tuple(done)

	c := hlo.NewComputation("bounded")
	x := c.Parameter(0, "x", []int{4})
	c.Loop(body, iters, 0, x)

	e, err := newEngine(c, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	args := [][]*tensor.Tensor{{tensor.Rand(rng, 4), tensor.Rand(rng, 4)}}
	if _, err := e.run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 2; d++ {
		mail, delivered, marks := e.fabric.mailboxSizes(d)
		if mail != 0 || delivered != 0 {
			t.Fatalf("device %d: %d mailbox and %d delivered entries survive the run, want 0/0", d, mail, delivered)
		}
		if marks > 1 {
			t.Fatalf("device %d: %d watermark entries for 1 distinct start across %d instances", d, marks, iters)
		}
	}
}

// TestInjectorJitterDeterministic pins the seeded jitter streams: the
// same plan always produces the same per-link jitter sequence, and a
// different seed produces a different one.
func TestInjectorJitterDeterministic(t *testing.T) {
	plan := func(seed int64) *FaultPlan {
		return &FaultPlan{Seed: seed, Faults: []Fault{
			{Kind: FaultDelay, Src: 0, Dst: 1, K: -1, Delay: time.Millisecond, Jitter: time.Millisecond},
			{Kind: FaultDelay, Src: 1, Dst: 2, K: -1, Delay: time.Millisecond, Jitter: time.Millisecond},
		}}
	}
	draw := func(p *FaultPlan) [][3]float64 {
		inj := newInjector(p)
		var out [][3]float64
		for _, edge := range [][2]int{{0, 1}, {1, 2}} {
			lf := inj.links[edge]
			out = append(out, [3]float64{lf.rng.Float64(), lf.rng.Float64(), lf.rng.Float64()})
		}
		return out
	}
	a, b := draw(plan(7)), draw(plan(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different jitter stream on edge %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(plan(8))
	if a[0] == c[0] && a[1] == c[1] {
		t.Fatal("different seeds produced identical jitter streams")
	}
}
