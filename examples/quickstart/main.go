// Quickstart: build a weight-gathered two-matmul layer on a 4-chip
// ring (the Fig 2 pattern), apply the overlap pipeline, prove the
// rewrite computes the same values, and show the simulated step-time
// improvement.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"overlap"
	"overlap/internal/tensor"
)

// buildLayer constructs the per-device program: each chip holds the
// full activation and one quarter of every weight matrix; weights are
// AllGathered on demand before each einsum.
func buildLayer(rows, dModel, dFF int) *overlap.Computation {
	const n = 4
	c := overlap.NewComputation("quickstart")
	groups := overlap.NewRing(n).AxisGroups(0)
	act := c.Parameter(0, "act", []int{rows, dModel})
	w1 := c.Parameter(1, "w1", []int{dModel / n, dFF})
	w2 := c.Parameter(2, "w2", []int{dFF / n, dModel})
	hidden := c.Einsum("bf,fh->bh", act, c.AllGather(w1, 0, groups))
	c.Einsum("bh,hf->bf", hidden, c.AllGather(w2, 0, groups))
	return c
}

func main() {
	const n = 4
	spec := overlap.TPUv4()

	// ---- Performance: model-scale shapes through the timing simulator.
	baseline := buildLayer(8192, 2048, 8192)
	baseBd, err := overlap.Simulate(baseline, n, spec)
	if err != nil {
		log.Fatal(err)
	}
	overlapped := buildLayer(8192, 2048, 8192)
	report, err := overlap.Apply(overlapped, overlap.DefaultOptions(spec))
	if err != nil {
		log.Fatal(err)
	}
	overBd, err := overlap.Simulate(overlapped, n, spec)
	if err != nil {
		log.Fatal(err)
	}

	// ---- Correctness: small shapes through the functional interpreter
	// on every simulated device.
	small := buildLayer(8, 16, 32)
	smallOver := buildLayer(8, 16, 32)
	if _, err := overlap.Apply(smallOver, forceAll(spec)); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	args := [][]*overlap.Tensor{
		shards(rng, n, 8, 16),
		shards(rng, n, 4, 32),
		shards(rng, n, 8, 16),
	}
	want, err := overlap.Interpret(small, n, args)
	if err != nil {
		log.Fatal(err)
	}
	got, err := overlap.Interpret(smallOver, n, args)
	if err != nil {
		log.Fatal(err)
	}
	for d := range want {
		if !got[d].AllClose(want[d], 1e-9) {
			log.Fatalf("device %d diverged by %v", d, got[d].MaxDifference(want[d]))
		}
	}

	fmt.Printf("sites found:       %d\n", report.SitesFound)
	fmt.Printf("sites decomposed:  %d\n", report.SitesDecomposed)
	fmt.Printf("fusions formed:    %d\n", report.FusionsFormed)
	fmt.Printf("baseline step:     %.3f ms (%.0f%% exposed communication)\n",
		1e3*baseBd.StepTime, 100*baseBd.CommFraction())
	fmt.Printf("overlapped step:   %.3f ms (%.0f%% exposed communication)\n",
		1e3*overBd.StepTime, 100*overBd.CommFraction())
	fmt.Printf("speedup:           %.2fx\n", baseBd.StepTime/overBd.StepTime)
	fmt.Println("per-device results identical: OK")
}

// forceAll decomposes every site regardless of the cost model, so the
// tiny correctness shapes exercise the same rewrite as the big ones.
func forceAll(spec overlap.MachineSpec) overlap.Options {
	opts := overlap.DefaultOptions(spec)
	opts.UseCostModel = false
	return opts
}

func shards(rng *rand.Rand, n, rows, cols int) []*overlap.Tensor {
	out := make([]*overlap.Tensor, n)
	for d := range out {
		out[d] = tensor.Rand(rng, rows, cols)
	}
	return out
}
