//go:build !unix

package runtime

// The process transport needs Unix sockets and fd inheritance; on other
// platforms constructing it fails cleanly and MaybeWorker is a no-op.

func newProcTransportChecked(e *engine, f *fabric) (transport, error) {
	return nil, formatErr("transport %q requires a unix platform", TransportProc)
}

// MaybeWorker is a no-op on platforms without the process transport.
func MaybeWorker() {}
