package tensor

// Deterministic split-K tree reduction for skinny GEMMs.
//
// The decomposed loop's partial einsums have small M (one shard of the
// output rows) against a large contraction K, so the row-partitioned
// worker path has almost nothing to split — at M = 1 it is fully
// serial no matter how many workers are available. Split-K partitions
// the contraction instead: the K axis is cut into S fixed ranges
// (boundaries s·K/S, a function of the shape and the configured factor
// only), each range is accumulated into a private zeroed accumulator
// in ascending-k order, and the partials are combined by a binary tree
// whose shape depends only on S:
//
//	gap = 1, 2, 4, ...:  part[i] += part[i+gap]  for i = 0, 2·gap, ...
//
// followed by one elementwise fold of part[0] onto the caller's
// accumulator. Workers only decide which goroutine computes which
// range — never the ranges, the tree, or any accumulation order — so
// for a fixed factor the result bytes are identical at every worker
// count and on every run. The factor itself is a *planned* decision
// (core.Options.KernelSplitK, searched by the autotuner): different
// factors legitimately round differently because the tree reassociates
// the contraction, exactly like the paper's decomposition reassociates
// the collective's reduction. Factor 0/1 keeps the engine on the
// row/column paths, which accumulate each element start-to-finish in
// ascending k and are therefore byte-identical to einsumReference.

const (
	// splitKMaxRows: above this many output rows the row partition
	// already feeds the pool, and splitting K would only buy the tree's
	// extra rounding and memory traffic.
	splitKMaxRows = 64
	// splitKMinChunk: each K range must be at least this long, or the
	// per-range dispatch and combine overhead dominates the work.
	splitKMinChunk = 16
	// splitKMinFlops: below this total work even a serial kernel
	// finishes faster than the partial buffers can be zeroed.
	splitKMinFlops = 1 << 16
)

// splitFactor returns the effective split-K factor for a GEMM with the
// given output rows and extents: the requested factor (SplitKInherit
// resolves to the process-wide setting) when the shape is skinny enough
// to benefit, otherwise 0. Deliberately independent of the worker
// count — eligibility must not change result bytes, and the worker
// count must never change results at all.
func splitFactor(rows, K, N, splitK int) int {
	s := effectiveSplitK(splitK)
	if s < 2 || rows >= splitKMaxRows || K < s*splitKMinChunk {
		return 0
	}
	if 2*int64(rows)*int64(K)*int64(N) < splitKMinFlops {
		return 0
	}
	return s
}

// gemmSplitK executes C[g,i,j] += sum_k A[g,i,k]·B[g,k,j] by
// partitioning K into s ranges with private accumulators and combining
// them in the fixed binary tree described above.
func gemmSplitK(c, a, b []float64, B, M, K, N, s, workers int) {
	rows := B * M
	out := rows * N
	parts := make([]*[]float64, s)
	for i := range parts {
		parts[i] = getZeroBuf(out)
	}
	parallelRows(s, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k0, k1 := i*K/s, (i+1)*K/s
			gemmChunk(*parts[i], a, b, B, M, K, N, k0, k1)
		}
	})
	for gap := 1; gap < s; gap *= 2 {
		for i := 0; i+gap < s; i += 2 * gap {
			addInto(*parts[i], *parts[i+gap])
		}
	}
	addInto(c[:out], *parts[0])
	for _, p := range parts {
		putBuf(p)
	}
	kernelSplitKOps.Inc()
}

// gemmChunk accumulates the K-range [k0, k1) of every output row into
// dst (rows laid out as the output, one row per M·N block). Within the
// range each element accumulates in ascending k, reusing the 4-row
// B-panel kernel where M allows.
func gemmChunk(dst, a, b []float64, B, M, K, N, k0, k1 int) {
	kLen := k1 - k0
	if kLen <= 0 || N == 0 {
		return
	}
	for g := 0; g < B; g++ {
		bmat := b[g*K*N+k0*N : g*K*N+k1*N]
		i := 0
		for ; i+4 <= M; i += 4 {
			r := g*M + i
			gemm4Rows(dst[r*N:(r+4)*N], a[r*K+k0:], bmat, kLen, K, N)
		}
		for ; i < M; i++ {
			r := g*M + i
			gemmRow(dst[r*N:(r+1)*N], a[r*K+k0:r*K+k0+kLen], bmat, kLen, N)
		}
	}
}

// addInto folds src into dst elementwise in ascending index order.
func addInto(dst, src []float64) {
	_ = dst[len(src)-1]
	for j, v := range src {
		dst[j] += v
	}
}
