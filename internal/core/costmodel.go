package core

import (
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/tensor"
)

// Decision is the §5.5 benefit estimate for one site. The feature is
// enabled when the blocking baseline (CompT + CommT) is no faster than
// the overlapped estimate max(CompT, CommRingT) + ExtraT.
type Decision struct {
	Pattern  Pattern
	CompT    float64 // original einsum execution time
	CompDec  float64 // summed partial-einsum time after decomposition
	CommT    float64 // original blocking collective wire time
	CommRing float64 // decomposed transfer time along the logical ring
	ExtraT   float64 // prologue/epilogue transfers, assumed unhidden
	Enable   bool
}

// Evaluate runs the cost model on one site under the given options.
func Evaluate(p Pattern, opts Options) Decision {
	spec := opts.Spec
	d := Decision{Pattern: p}
	d.CompT = spec.InstructionCost(p.Einsum)
	d.CommT = spec.CollectiveTime(p.Collective)

	// Per-step shard transfer: the circulated buffer is the gathered
	// operand's shard (AllGather) or the scattered result shard
	// (ReduceScatter).
	var shardBytes int64
	if p.Kind == AllGatherEinsum {
		shardBytes = p.Collective.Operands[0].ByteSize()
	} else {
		shardBytes = p.Collective.ByteSize()
	}
	step := spec.TransferTime(shardBytes, 1)

	n := p.Ring.N
	bidi := opts.Bidirectional && n%2 == 0
	switch {
	case p.Kind == AllGatherEinsum && bidi:
		// N/2-1 steps with both directions busy; the prologue shift is
		// charged as unhidden extra.
		d.CommRing = float64(n/2-1) * step
		d.ExtraT = step
	case p.Kind == AllGatherEinsum:
		d.CommRing = float64(n-1) * step
	case bidi: // Einsum-ReduceScatter, bidirectional
		d.CommRing = float64(n/2) * step
		d.ExtraT = step // alignment epilogue
	case opts.Unroll && n%2 == 0:
		// Unrolled dual chains: both chains send every unrolled step on
		// the same ring direction, so the wire still carries N shard
		// transfers; the alignment epilogue adds one more.
		d.CommRing = float64(n) * step
		d.ExtraT = step
	default:
		d.CommRing = float64(n) * step
	}

	d.CompDec = decomposedComputeTime(p, opts, bidi)
	d.Enable = d.CompT+d.CommT >= maxf(d.CompDec, d.CommRing)+d.ExtraT
	return d
}

// decomposedComputeTime estimates the summed execution time of the
// partial einsums the Looped CollectiveEinsum emits: the FLOPs are
// conserved, but each partial works on a 1/N (or 2/N, bidirectional)
// slice of one dimension, which can push it down the matrix-unit
// efficiency curve — an effect the enable decision must price in, since
// over-slicing a site makes the "overlapped" program slower than the
// blocking original. (The paper's §5.5 estimate uses the unsliced
// comp_t; we refine it because our machine model, like real matrix
// units, derates small tiles.)
func decomposedComputeTime(p Pattern, opts Options, bidi bool) float64 {
	flops, _ := machine.EinsumStats(p.Einsum)
	n := p.Ring.N
	steps := n
	sliceFactor := n
	if bidi {
		steps = n / 2
		if p.Kind == AllGatherEinsum && p.Case == CaseContracting {
			// Concatenated operands: each step computes a 2/N slice.
			sliceFactor = n / 2
		} else {
			// Two einsums per step, each on a 1/N slice.
			steps = n
		}
	}

	// Rebuild the M/N/K view with the sliced dimension shrunk.
	var side, dim int
	if p.Kind == AllGatherEinsum {
		side, dim = p.Side, p.GatherDim
	} else {
		side, dim = p.SliceSide, p.SliceDim
	}
	full := p.Einsum.Operands[side].Shape[dim]
	if p.Kind == AllGatherEinsum {
		// The circulated shard keeps the pre-gather size.
		full = p.Collective.Shape[p.Collective.CollectiveAxis]
	}
	sliced := full / sliceFactor
	if sliced < 1 {
		sliced = 1
	}
	_, minDim := partialEinsumStats(p, side, dim, sliced)
	perStep := opts.Spec.EinsumTime(flops/int64(steps), 0, minDim)
	return float64(steps) * perStep
}

// partialEinsumStats recomputes the effective matmul dims of the
// pattern's einsum with operand side's dimension dim resized to sliced.
func partialEinsumStats(p Pattern, side, dim, sliced int) (int64, int) {
	shapes := [2][]int{
		append([]int(nil), p.Einsum.Operands[0].Shape...),
		append([]int(nil), p.Einsum.Operands[1].Shape...),
	}
	shapes[side][dim] = sliced
	// Mirror the sliced size onto the other operand / output views by
	// reusing EinsumStats on a shallow clone.
	clone := &hlo.Instruction{
		Op:         hlo.OpEinsum,
		EinsumSpec: p.Einsum.EinsumSpec,
		Operands: []*hlo.Instruction{
			{Shape: shapes[0]},
			{Shape: shapes[1]},
		},
	}
	// Labels shared with the other operand must agree; shrink them too.
	label := labelAt(p.Einsum.EinsumSpec, side, dim)
	for s := 0; s < 2; s++ {
		for i := range shapes[s] {
			if labelAt(p.Einsum.EinsumSpec, s, i) == label {
				shapes[s][i] = sliced
			}
		}
	}
	return machine.EinsumStats(clone)
}

func labelAt(spec string, side, dim int) byte {
	parsed, err := tensor.ParseEinsum(spec)
	if err != nil {
		return 0
	}
	return parsed.Inputs[side][dim]
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// CandidateChooser picks which collective to overlap when an einsum has
// several candidates (§5.5, last paragraph).
type CandidateChooser interface {
	Choose(cands []Pattern) Pattern
}

// CostChooser implements the paper's rule: if the einsum is faster than
// every candidate collective, pick the candidate with the smaller
// circulated shard (smaller unhidden prologue/epilogue overhead);
// otherwise pick the collective with the longer estimated time, since
// hiding it buys the most.
type CostChooser struct {
	Spec machine.Spec
}

// Choose implements CandidateChooser.
func (cc CostChooser) Choose(cands []Pattern) Pattern {
	compT := cc.Spec.InstructionCost(cands[0].Einsum)
	// "The Einsum is faster than both collectives" (§5.5): neither
	// transfer can be fully hidden, so the tie-break minimizes the
	// unhidden prologue/epilogue overhead instead.
	einsumFasterThanBoth := true
	for _, p := range cands {
		if compT >= cc.Spec.CollectiveTime(p.Collective) {
			einsumFasterThanBoth = false
		}
	}
	best := cands[0]
	if einsumFasterThanBoth {
		for _, p := range cands[1:] {
			if shardSize(p) < shardSize(best) {
				best = p
			}
		}
		return best
	}
	for _, p := range cands[1:] {
		if cc.Spec.CollectiveTime(p.Collective) > cc.Spec.CollectiveTime(best.Collective) {
			best = p
		}
	}
	return best
}

func shardSize(p Pattern) int64 {
	if p.Kind == AllGatherEinsum {
		return p.Collective.Operands[0].ByteSize()
	}
	return p.Collective.ByteSize()
}

// FirstChooser always keeps the first candidate; used when the cost
// model is disabled.
type FirstChooser struct{}

// Choose implements CandidateChooser.
func (FirstChooser) Choose(cands []Pattern) Pattern { return cands[0] }

var _ CandidateChooser = CostChooser{}
var _ CandidateChooser = FirstChooser{}
