package obs

import (
	"io"
	"log/slog"
	"sync/atomic"
)

// The process-wide structured logger. Every subsystem that executes a
// run (serve, train, autotune, the runtime's failure path) logs through
// Log() with the run's ID as a "run_id" attribute, so a single grep of
// the JSON log stream reconstructs any run's story — and correlates it
// with the flight-recorder trace of the same ID. Until a sink is
// installed records are discarded, which keeps library users and tests
// silent by default; the daemon and CLIs opt in via SetLogOutput.
var logPtr atomic.Pointer[slog.Logger]

func init() {
	logPtr.Store(slog.New(slog.NewJSONHandler(io.Discard, nil)))
}

// Log returns the process-wide structured logger.
func Log() *slog.Logger { return logPtr.Load() }

// SetLogOutput directs the process-wide logger at w as JSON lines (one
// object per record, "run_id" keyed where a run is involved). Pass
// io.Discard to silence it again.
func SetLogOutput(w io.Writer) {
	logPtr.Store(slog.New(slog.NewJSONHandler(w, nil)))
}
