package sim

import (
	"fmt"

	"overlap/internal/obs"
)

// Simulator-side instrumentation handles, resolved once against the
// process-wide registry so the per-instruction hot path is a single
// atomic update.
var (
	simInstructions = obs.Default().Counter("overlap_sim_instructions_total",
		"Instructions executed by the discrete-event timing simulator (loop bodies counted per iteration).")
)

// Record publishes the breakdown into the process-wide metrics registry
// under the given scope ("sim" for simulated breakdowns, "runtime" for
// measured ones). It is the single reporting path every executor feeds:
// one run counter, a step-time histogram, last-run gauges for each
// component, and cumulative async-transfer counts, all named
// overlap_<scope>_*.
func (b Breakdown) Record(scope string) {
	r := obs.Default()
	name := func(suffix string) string { return fmt.Sprintf("overlap_%s_%s", scope, suffix) }
	r.Counter(name("runs_total"), "Executions recorded under this scope.").Inc()
	r.Histogram(name("step_seconds"), "Step-time distribution across runs.", obs.TimeBuckets()).Observe(b.StepTime)
	r.Gauge(name("last_step_seconds"), "Step time of the most recent run.").Set(b.StepTime)
	r.Gauge(name("last_compute_seconds"), "Per-device average compute time of the most recent run.").Set(b.Compute)
	r.Gauge(name("last_wire_seconds"), "Per-device average collective wire time of the most recent run.").Set(b.CollectiveWire)
	r.Gauge(name("last_exposed_seconds"), "Per-device average exposed communication of the most recent run.").Set(b.Exposed)
	r.Gauge(name("last_comm_fraction"), "Exposed communication fraction of the most recent run.").Set(b.CommFraction())
	r.Counter(name("async_transfers_total"), "Asynchronous transfers initiated per device, accumulated across runs.").Add(float64(b.AsyncTransfers))
	r.Gauge(name("last_peak_in_flight"), "Peak outstanding asynchronous transfers of the most recent run.").Set(float64(b.PeakInFlight))
}

// Spans converts a trace (simulated or measured — both use the same
// event schema) into the analyzer's span stream: microsecond timestamps
// become seconds, pid becomes the device, tid the track.
func Spans(events []TraceEvent) []obs.Span {
	out := make([]obs.Span, len(events))
	for i, e := range events {
		out[i] = obs.Span{
			Device: e.PID,
			Track:  e.TID,
			Cat:    e.Cat,
			Name:   e.Name,
			Start:  e.TS / 1e6,
			Dur:    e.Dur / 1e6,
		}
	}
	return out
}

// Attribute runs the overlap-attribution analyzer over a trace: per
// collective instruction, how much wire time was hidden under which
// compute spans versus exposed.
func Attribute(events []TraceEvent) obs.AttributionReport {
	return obs.Attribute(Spans(events))
}
