// Command kernelbench sweeps the einsum kernel engine over square
// matmuls and writes a machine-readable report. CI runs the short sweep
// on every push and uploads the JSON next to the telemetry artifacts,
// so kernel regressions show up as a diffable number rather than a
// feeling. The per-size reference timing (odometer path) is included so
// the report carries its own speedup baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"overlap"
	"overlap/internal/tensor"
)

type sizeResult struct {
	Size        int     `json:"size"`
	NsPerOp     int64   `json:"ns_per_op"`
	GFLOPs      float64 `json:"gflops"`
	RefNsPerOp  int64   `json:"ref_ns_per_op,omitempty"`
	RefGFLOPs   float64 `json:"ref_gflops,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	Workers    int          `json:"kernel_workers"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Sizes      []sizeResult `json:"sizes"`
}

func main() {
	short := flag.Bool("short", false, "sweep sizes 32-128 only and skip reference timings above 64")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	workers := flag.Int("workers", 0, "kernel worker count (0 = GOMAXPROCS)")
	flag.Parse()

	overlap.SetKernelWorkers(*workers)

	sizes := []int{32, 64, 128, 256, 512}
	refCeiling := 256 // reference is O(n^3) scalar; cap how long we wait
	if *short {
		sizes = []int{32, 64, 128}
		refCeiling = 64
	}

	rep := report{Workers: overlap.KernelWorkers(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, size := range sizes {
		rng := rand.New(rand.NewSource(1))
		x := tensor.Rand(rng, size, size)
		y := tensor.Rand(rng, size, size)
		flops := 2 * float64(size) * float64(size) * float64(size)

		kr := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tensor.Einsum("ik,kj->ij", x, y)
			}
		})
		res := sizeResult{
			Size:        size,
			NsPerOp:     kr.NsPerOp(),
			GFLOPs:      flops / float64(kr.NsPerOp()),
			AllocsPerOp: kr.AllocsPerOp(),
			BytesPerOp:  kr.AllocedBytesPerOp(),
		}
		if size <= refCeiling {
			rr := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tensor.ReferenceEinsum("ik,kj->ij", x, y)
				}
			})
			res.RefNsPerOp = rr.NsPerOp()
			res.RefGFLOPs = flops / float64(rr.NsPerOp())
			res.Speedup = float64(rr.NsPerOp()) / float64(kr.NsPerOp())
		}
		rep.Sizes = append(rep.Sizes, res)
		fmt.Fprintf(os.Stderr, "matmul%-4d %10d ns/op %8.2f GFLOP/s", size, res.NsPerOp, res.GFLOPs)
		if res.Speedup != 0 {
			fmt.Fprintf(os.Stderr, "  %5.1fx vs reference", res.Speedup)
		}
		fmt.Fprintln(os.Stderr)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "kernelbench:", err)
	os.Exit(1)
}
