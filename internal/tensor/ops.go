package tensor

import "fmt"

// The element-wise ops below use direct loops rather than a shared
// combinator taking a func(x, y float64): the per-element indirect call
// defeats bounds-check elimination and vectorization, roughly tripling
// the cost of the decomposed runtime's accumulate-heavy inner loops
// (see BenchmarkElementwiseAdd vs BenchmarkElementwiseZipWith).

// Add returns the element-wise sum of a and b, which must share a shape.
func Add(a, b *Tensor) *Tensor {
	out := newElementwise(a, b)
	bd := b.data
	for i, x := range a.data {
		out.data[i] = x + bd[i]
	}
	return out
}

// Sub returns the element-wise difference a - b.
func Sub(a, b *Tensor) *Tensor {
	out := newElementwise(a, b)
	bd := b.data
	for i, x := range a.data {
		out.data[i] = x - bd[i]
	}
	return out
}

// Mul returns the element-wise product of a and b.
func Mul(a, b *Tensor) *Tensor {
	out := newElementwise(a, b)
	bd := b.data
	for i, x := range a.data {
		out.data[i] = x * bd[i]
	}
	return out
}

// Max returns the element-wise maximum of a and b.
func Max(a, b *Tensor) *Tensor {
	out := newElementwise(a, b)
	bd := b.data
	for i, x := range a.data {
		y := bd[i]
		if !(x > y) {
			x = y
		}
		out.data[i] = x
	}
	return out
}

// newElementwise validates the shared shape and allocates the result.
func newElementwise(a, b *Tensor) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.shape, b.shape))
	}
	return New(a.shape...)
}

// AddInPlace accumulates b into a and returns a.
func AddInPlace(a, b *Tensor) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", a.shape, b.shape))
	}
	for i := range a.data {
		a.data[i] += b.data[i]
	}
	a.noteMutation()
	return a
}

// Scale returns a copy of t with every element multiplied by s.
func Scale(t *Tensor, s float64) *Tensor {
	c := t.Clone()
	for i := range c.data {
		c.data[i] *= s
	}
	return c
}

// zipWith is the generic element-wise combinator the exported ops used
// before they switched to direct loops. It is kept as the baseline for
// BenchmarkElementwiseZipWith, which documents the cost of the
// per-element indirect call.
func zipWith(a, b *Tensor, f func(x, y float64) float64) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.shape, b.shape))
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i], b.data[i])
	}
	return out
}

// Slice extracts the sub-tensor t[starts[0]:limits[0], ...]. Every
// dimension must satisfy 0 <= start <= limit <= dim.
func Slice(t *Tensor, starts, limits []int) *Tensor {
	if len(starts) != t.Rank() || len(limits) != t.Rank() {
		panic(fmt.Sprintf("tensor: Slice bounds rank mismatch for shape %v", t.shape))
	}
	outShape := make([]int, t.Rank())
	for i := range starts {
		if starts[i] < 0 || limits[i] > t.shape[i] || starts[i] > limits[i] {
			panic(fmt.Sprintf("tensor: Slice bounds [%v,%v) invalid for shape %v", starts, limits, t.shape))
		}
		outShape[i] = limits[i] - starts[i]
	}
	out := New(outShape...)
	it := newIndexIterator(outShape)
	src := make([]int, t.Rank())
	for idx, ok := it.next(); ok; idx, ok = it.next() {
		for i := range idx {
			src[i] = idx[i] + starts[i]
		}
		out.data[out.offset(idx)] = t.data[t.offset(src)]
	}
	return out
}

// DynamicSlice extracts a sub-tensor of the given sizes starting at
// starts, clamping the start offsets so the slice stays in bounds — the
// same semantics as XLA's DynamicSlice.
func DynamicSlice(t *Tensor, starts, sizes []int) *Tensor {
	if len(starts) != t.Rank() || len(sizes) != t.Rank() {
		panic(fmt.Sprintf("tensor: DynamicSlice rank mismatch for shape %v", t.shape))
	}
	clamped := make([]int, t.Rank())
	limits := make([]int, t.Rank())
	for i := range starts {
		s := starts[i]
		if s < 0 {
			s = 0
		}
		if s > t.shape[i]-sizes[i] {
			s = t.shape[i] - sizes[i]
		}
		clamped[i] = s
		limits[i] = s + sizes[i]
	}
	return Slice(t, clamped, limits)
}

// DynamicUpdateSlice returns a copy of t with the sub-tensor at starts
// overwritten by update, clamping starts as XLA does.
func DynamicUpdateSlice(t, update *Tensor, starts []int) *Tensor {
	if len(starts) != t.Rank() || update.Rank() != t.Rank() {
		panic(fmt.Sprintf("tensor: DynamicUpdateSlice rank mismatch %v vs %v", t.shape, update.shape))
	}
	clamped := make([]int, t.Rank())
	for i := range starts {
		s := starts[i]
		if s < 0 {
			s = 0
		}
		if s > t.shape[i]-update.shape[i] {
			s = t.shape[i] - update.shape[i]
		}
		clamped[i] = s
	}
	out := t.Clone()
	it := newIndexIterator(update.shape)
	dst := make([]int, t.Rank())
	for idx, ok := it.next(); ok; idx, ok = it.next() {
		for i := range idx {
			dst[i] = idx[i] + clamped[i]
		}
		out.data[out.offset(dst)] = update.data[update.offset(idx)]
	}
	return out
}

// Concat concatenates the given tensors along axis. All inputs must agree
// on every other dimension.
func Concat(axis int, tensors ...*Tensor) *Tensor {
	if len(tensors) == 0 {
		panic("tensor: Concat needs at least one input")
	}
	rank := tensors[0].Rank()
	if axis < 0 || axis >= rank {
		panic(fmt.Sprintf("tensor: Concat axis %d out of range for rank %d", axis, rank))
	}
	outShape := tensors[0].Shape()
	total := 0
	for _, t := range tensors {
		if t.Rank() != rank {
			panic("tensor: Concat rank mismatch")
		}
		for d := 0; d < rank; d++ {
			if d != axis && t.shape[d] != outShape[d] {
				panic(fmt.Sprintf("tensor: Concat shape mismatch %v vs %v on dim %d", t.shape, outShape, d))
			}
		}
		total += t.shape[axis]
	}
	outShape[axis] = total
	out := New(outShape...)
	offset := 0
	starts := make([]int, rank)
	for _, t := range tensors {
		starts[axis] = offset
		it := newIndexIterator(t.shape)
		dst := make([]int, rank)
		for idx, ok := it.next(); ok; idx, ok = it.next() {
			for i := range idx {
				dst[i] = idx[i] + starts[i]
			}
			out.data[out.offset(dst)] = t.data[t.offset(idx)]
		}
		offset += t.shape[axis]
	}
	return out
}

// Pad returns t padded with padValue: low[i] elements before and high[i]
// elements after dimension i. Negative padding is not supported.
func Pad(t *Tensor, low, high []int, padValue float64) *Tensor {
	if len(low) != t.Rank() || len(high) != t.Rank() {
		panic(fmt.Sprintf("tensor: Pad rank mismatch for shape %v", t.shape))
	}
	outShape := make([]int, t.Rank())
	for i := range outShape {
		if low[i] < 0 || high[i] < 0 {
			panic("tensor: Pad does not support negative padding")
		}
		outShape[i] = low[i] + t.shape[i] + high[i]
	}
	out := New(outShape...)
	for i := range out.data {
		out.data[i] = padValue
	}
	it := newIndexIterator(t.shape)
	dst := make([]int, t.Rank())
	for idx, ok := it.next(); ok; idx, ok = it.next() {
		for i := range idx {
			dst[i] = idx[i] + low[i]
		}
		out.data[out.offset(dst)] = t.data[t.offset(idx)]
	}
	return out
}

// Reshape returns a tensor with the same row-major data and a new shape.
// The element counts must match.
func Reshape(t *Tensor, shape ...int) *Tensor {
	out := New(shape...)
	if len(out.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape %v -> %v changes element count", t.shape, shape))
	}
	copy(out.data, t.data)
	return out
}

// Transpose permutes the dimensions of t according to perm, where
// output dimension i is input dimension perm[i].
func Transpose(t *Tensor, perm ...int) *Tensor {
	if len(perm) != t.Rank() {
		panic(fmt.Sprintf("tensor: Transpose perm %v rank mismatch for shape %v", perm, t.shape))
	}
	seen := make([]bool, t.Rank())
	outShape := make([]int, t.Rank())
	for i, p := range perm {
		if p < 0 || p >= t.Rank() || seen[p] {
			panic(fmt.Sprintf("tensor: Transpose perm %v is not a permutation", perm))
		}
		seen[p] = true
		outShape[i] = t.shape[p]
	}
	out := New(outShape...)
	it := newIndexIterator(outShape)
	src := make([]int, t.Rank())
	for idx, ok := it.next(); ok; idx, ok = it.next() {
		for i, p := range perm {
			src[p] = idx[i]
		}
		out.data[out.offset(idx)] = t.data[t.offset(src)]
	}
	return out
}

// Split partitions t into parts equal chunks along axis; the dimension
// size must be divisible by parts.
func Split(t *Tensor, axis, parts int) []*Tensor {
	if axis < 0 || axis >= t.Rank() {
		panic(fmt.Sprintf("tensor: Split axis %d out of range for shape %v", axis, t.shape))
	}
	if parts <= 0 || t.shape[axis]%parts != 0 {
		panic(fmt.Sprintf("tensor: cannot Split dim %d of shape %v into %d parts", axis, t.shape, parts))
	}
	chunk := t.shape[axis] / parts
	out := make([]*Tensor, parts)
	starts := make([]int, t.Rank())
	limits := t.Shape()
	for p := 0; p < parts; p++ {
		starts[axis] = p * chunk
		limits[axis] = (p + 1) * chunk
		out[p] = Slice(t, starts, limits)
	}
	return out
}
