package experiments

import (
	"os"
	"strings"
	"testing"

	"overlap/internal/machine"
	"overlap/internal/runtime"
)

// TestMain lets the proc transport re-execute this test binary as its
// per-device workers during the transport experiment.
func TestMain(m *testing.M) {
	runtime.MaybeWorker()
	os.Exit(m.Run())
}

// TestTransportShape runs the transport comparison at miniature sizes:
// both transports must produce positive step times, the efficiency
// series must be well-formed, and the report must carry one row per
// transport.
func TestTransportShape(t *testing.T) {
	p := transportParams{devices: 2, m: 2, k: 256, n: 16, reps: 1, timeScale: 50}
	text, series, err := transportCompare(machine.TPUv4(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("got %d series entries, want 3 (chan eff, proc eff, step ratio)", len(series))
	}
	for i, v := range series[:2] {
		if v < 0 || v > 1 {
			t.Fatalf("efficiency %d = %g out of [0,1]", i, v)
		}
	}
	if series[2] <= 0 {
		t.Fatalf("proc/chan step ratio %g is not positive", series[2])
	}
	for _, label := range []string{"chan", "proc", "overlap efficiency"} {
		if !strings.Contains(text, label) {
			t.Fatalf("report is missing %q:\n%s", label, text)
		}
	}
}
