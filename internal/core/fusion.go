package core

import (
	"math"

	"overlap/internal/hlo"
)

// fusableProducer lists the ops that may be folded into a fusion region
// alongside an einsum: cheap element-wise / data-movement producers that
// XLA's emitters inline into the consuming kernel. Collectives and
// asynchronous ops are never fusable, so fusions stay device-local.
func fusableProducer(op hlo.OpCode) bool {
	switch op {
	case hlo.OpDynamicSlice, hlo.OpSlice, hlo.OpConcat, hlo.OpPad,
		hlo.OpMax, hlo.OpAdd, hlo.OpReshape, hlo.OpZero,
		hlo.OpDynamicUpdateSlice, hlo.OpCopy, hlo.OpEinsum:
		return true
	}
	return false
}

// FuseAccumulation mirrors XLA's fusion pass on the shapes the
// decomposition emits: each result-update anchor (an Add or a
// DynamicUpdateSlice) absorbs its cheap producers — operand slicing,
// concatenation, padding, the partial einsum itself — into one fused
// kernel, eliminating the intermediate memory traffic. At most one
// einsum joins a region (kernels hold a single matrix contraction).
//
// When a region could absorb either of two einsums, the §5.4.3
// heuristic (overlapFriendly) prefers the one that already depends on
// an asynchronous CollectivePermuteDone: the other einsum then stays
// independent and can execute during the transfer (Fig 11b). With
// overlapFriendly false the first candidate in operand order is taken,
// reproducing the Fig 11a regression.
//
// It returns the number of fusion nodes formed.
func FuseAccumulation(c *hlo.Computation, overlapFriendly bool) int {
	formed := 0
	c.WithRootPreserved(func() {
		taken := map[*hlo.Instruction]bool{}
		instrs := c.Instructions()
		// Reverse schedule order so the last update of a chain anchors the
		// whole per-iteration block.
		for i := len(instrs) - 1; i >= 0; i-- {
			anchor := instrs[i]
			if taken[anchor] {
				continue
			}
			if anchor.Op != hlo.OpAdd && anchor.Op != hlo.OpDynamicUpdateSlice {
				continue
			}
			region := growRegion(anchor, taken, overlapFriendly)
			if len(region) < 2 {
				continue
			}
			if fuseRegion(c, anchor, region) {
				for m := range region {
					taken[m] = true
				}
				formed++
			}
		}
		c.ScheduleStableTopological()
		c.RemoveDeadCode()
	})
	return formed
}

// growRegion expands upward from anchor over fusable producers whose
// users all lie inside the region, admitting at most one einsum.
func growRegion(anchor *hlo.Instruction, taken map[*hlo.Instruction]bool, overlapFriendly bool) map[*hlo.Instruction]bool {
	region := map[*hlo.Instruction]bool{anchor: true}
	einsumChosen := anchor.Op == hlo.OpEinsum
	var einsumBanned map[*hlo.Instruction]bool

	for {
		var einsumCands []*hlo.Instruction
		var added bool
		for member := range region {
			for _, op := range member.Operands {
				if region[op] || taken[op] || !fusableProducer(op.Op) {
					continue
				}
				// Stay within the anchor's fusion scope (one loop
				// iteration of a decomposed collective-einsum).
				if op.Group != anchor.Group {
					continue
				}
				if !allUsersIn(op, region) {
					continue
				}
				if op.Op == hlo.OpEinsum {
					if !einsumChosen && !einsumBanned[op] {
						einsumCands = append(einsumCands, op)
					}
					continue
				}
				region[op] = true
				added = true
			}
		}
		if len(einsumCands) > 0 {
			chosen := einsumCands[0]
			if overlapFriendly {
				for _, cand := range einsumCands {
					if dependsOnDone(cand, 8) {
						chosen = cand
						break
					}
				}
			}
			region[chosen] = true
			einsumChosen = true
			if einsumBanned == nil {
				einsumBanned = map[*hlo.Instruction]bool{}
			}
			for _, cand := range einsumCands {
				if cand != chosen {
					einsumBanned[cand] = true
				}
			}
			added = true
		}
		if !added {
			return region
		}
	}
}

func allUsersIn(in *hlo.Instruction, region map[*hlo.Instruction]bool) bool {
	for _, u := range in.Users() {
		if !region[u] {
			return false
		}
	}
	return in.NumUsers() > 0
}

// dependsOnDone reports whether in transitively depends on a
// CollectivePermuteDone within the given depth.
func dependsOnDone(in *hlo.Instruction, depth int) bool {
	if depth == 0 {
		return false
	}
	for _, op := range in.Operands {
		if op.Op == hlo.OpCollectivePermuteDone {
			return true
		}
		if fusableProducer(op.Op) && dependsOnDone(op, depth-1) {
			return true
		}
	}
	return false
}

// fuseRegion replaces the region rooted at anchor with a fusion node
// whose body re-creates the member instructions over parameters for the
// external operands.
func fuseRegion(c *hlo.Computation, anchor *hlo.Instruction, region map[*hlo.Instruction]bool) bool {
	var members []*hlo.Instruction
	for _, in := range c.Instructions() {
		if region[in] {
			members = append(members, in)
		}
	}
	var externals []*hlo.Instruction
	extIndex := map[*hlo.Instruction]int{}
	for _, m := range members {
		for _, op := range m.Operands {
			if region[op] {
				continue
			}
			if _, ok := extIndex[op]; !ok {
				extIndex[op] = len(externals)
				externals = append(externals, op)
			}
		}
	}

	body := hlo.NewComputation("fused." + anchor.Name)
	mapping := map[*hlo.Instruction]*hlo.Instruction{}
	for i, ext := range externals {
		mapping[ext] = body.Parameter(i, ext.Name+".p", ext.Shape)
	}
	for _, m := range members {
		inner := &hlo.Instruction{
			Op:             m.Op,
			Name:           m.Name + ".f",
			Shape:          append([]int(nil), m.Shape...),
			EinsumSpec:     m.EinsumSpec,
			Axis:           m.Axis,
			PadLow:         append([]int(nil), m.PadLow...),
			PadHigh:        append([]int(nil), m.PadHigh...),
			PadValue:       m.PadValue,
			Starts:         append([]int(nil), m.Starts...),
			Limits:         append([]int(nil), m.Limits...),
			Offsets:        append([]hlo.DynOffset(nil), m.Offsets...),
			SliceSizes:     append([]int(nil), m.SliceSizes...),
			Perm:           append([]int(nil), m.Perm...),
			CollectiveAxis: m.CollectiveAxis,
		}
		if m.Literal != nil {
			inner.Literal = m.Literal.Clone()
		}
		for _, op := range m.Operands {
			repl, ok := mapping[op]
			if !ok {
				return false // region ordering bug; bail out safely
			}
			inner.Operands = append(inner.Operands, repl)
		}
		mapping[m] = body.AddBuilt(inner)
	}

	fusion := c.Fusion("fusion."+anchor.Name, body, externals...)
	c.ReplaceAllUsesWith(anchor, fusion)
	return true
}

// RewriteConcatToPadMax applies the §5.4.3 fusion-friendliness rewrite:
// a two-operand Concat feeding an einsum is replaced by
// Max(PadHigh(a), PadLow(b)) with -Inf fill, which the fusion pass can
// then fold into the einsum kernel. Returns the number of rewrites.
func RewriteConcatToPadMax(c *hlo.Computation) int {
	rewritten := 0
	c.WithRootPreserved(func() {
		for _, in := range c.Instructions() {
			if in.Op != hlo.OpConcat || len(in.Operands) != 2 {
				continue
			}
			onlyEinsumUsers := in.NumUsers() > 0
			for _, u := range in.Users() {
				if u.Op != hlo.OpEinsum {
					onlyEinsumUsers = false
				}
			}
			if !onlyEinsumUsers {
				continue
			}
			a, b := in.Operands[0], in.Operands[1]
			dim := in.Axis
			rank := len(in.Shape)
			zero := make([]int, rank)
			highA := make([]int, rank)
			highA[dim] = b.Shape[dim]
			lowB := make([]int, rank)
			lowB[dim] = a.Shape[dim]
			negInf := math.Inf(-1)
			pa := c.Pad(a, zero, highA, negInf)
			pb := c.Pad(b, lowB, zero, negInf)
			mx := c.Max(pa, pb)
			c.ReplaceAllUsesWith(in, mx)
			rewritten++
		}
		c.ScheduleStableTopological()
		c.RemoveDeadCode()
	})
	return rewritten
}

// SwapReshapeConcat applies the second §5.4.3 fusion-friendliness
// rewrite: Concat(Reshape(a), Reshape(b), ...) becomes
// Reshape(Concat(a, b, ...)) when every operand reshape only reshapes
// the non-concatenated suffix identically — moving the reshape past the
// concatenation lets the concatenation fuse with the einsum it feeds.
// The legality condition here is the simple common case: all reshapes
// share the input and output rank pattern and the concat axis maps to
// the same leading dimension. Returns the number of rewrites.
func SwapReshapeConcat(c *hlo.Computation) int {
	rewritten := 0
	c.WithRootPreserved(func() {
		for _, in := range c.Instructions() {
			if in.Op != hlo.OpConcat || len(in.Operands) < 2 {
				continue
			}
			ok := true
			var innerRank int
			for i, op := range in.Operands {
				if op.Op != hlo.OpReshape || op.NumUsers() != 1 {
					ok = false
					break
				}
				if i == 0 {
					innerRank = len(op.Operands[0].Shape)
				} else if len(op.Operands[0].Shape) != innerRank {
					ok = false
					break
				}
			}
			// Only the leading-axis concat with leading-dim-preserving
			// reshapes is handled: reshape [a, rest...] -> [a, rest'...].
			if !ok || in.Axis != 0 || innerRank == 0 {
				continue
			}
			for _, op := range in.Operands {
				if op.Operands[0].Shape[0] != op.Shape[0] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			inners := make([]*hlo.Instruction, len(in.Operands))
			for i, op := range in.Operands {
				inners[i] = op.Operands[0]
			}
			cat := c.Concat(0, inners...)
			out := c.Reshape(cat, in.Shape...)
			c.ReplaceAllUsesWith(in, out)
			rewritten++
		}
		c.ScheduleStableTopological()
		c.RemoveDeadCode()
	})
	return rewritten
}

// SwapReshapeSlice applies the third §5.4.3 rewrite: Slice(Reshape(x))
// becomes Reshape(Slice(x)) when the slice only restricts the leading
// dimension and the reshape preserves it — enabling the
// result-accumulation post-processing of the Einsum-ReduceScatter case
// to fuse. Returns the number of rewrites.
func SwapReshapeSlice(c *hlo.Computation) int {
	rewritten := 0
	c.WithRootPreserved(func() {
		for _, in := range c.Instructions() {
			if in.Op != hlo.OpSlice {
				continue
			}
			rs := in.Operands[0]
			if rs.Op != hlo.OpReshape || rs.NumUsers() != 1 {
				continue
			}
			src := rs.Operands[0]
			if len(src.Shape) == 0 || len(rs.Shape) == 0 || src.Shape[0] != rs.Shape[0] {
				continue
			}
			// The slice must be full on every dim except the leading one.
			full := true
			for d := 1; d < len(in.Shape); d++ {
				if in.Starts[d] != 0 || in.Limits[d] != rs.Shape[d] {
					full = false
					break
				}
			}
			if !full {
				continue
			}
			starts := make([]int, len(src.Shape))
			limits := append([]int(nil), src.Shape...)
			starts[0] = in.Starts[0]
			limits[0] = in.Limits[0]
			sliced := c.Slice(src, starts, limits)
			out := c.Reshape(sliced, in.Shape...)
			c.ReplaceAllUsesWith(in, out)
			rewritten++
		}
		c.ScheduleStableTopological()
		c.RemoveDeadCode()
	})
	return rewritten
}
