package tensor

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// randomGemmSpec builds a random lowerable two-operand spec: up to two
// labels in each of the batch/M/N/K groups, with operand and output
// dimension orders independently shuffled so packed (non-direct)
// layouts are exercised. Returns the spec text and the label universe.
func randomGemmSpec(rng *rand.Rand) (string, []byte) {
	pool := []byte("abcdefgh")
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	next := 0
	take := func(n int) []byte {
		out := pool[next : next+n]
		next += n
		return out
	}
	batch := take(rng.Intn(3))
	m := take(rng.Intn(3))
	n := take(rng.Intn(3))
	k := take(rng.Intn(3))

	shuffled := func(groups ...[]byte) string {
		var all []byte
		for _, g := range groups {
			all = append(all, g...)
		}
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		return string(all)
	}
	lhs := shuffled(batch, m, k)
	rhs := shuffled(batch, k, n)
	out := shuffled(batch, m, n)
	labels := append(append(append(append([]byte{}, batch...), m...), n...), k...)
	return lhs + "," + rhs + "->" + out, labels
}

// randomSizes assigns each label a size in [1,4], occasionally zero to
// cover empty iteration spaces.
func randomSizes(rng *rand.Rand, labels []byte) map[byte]int {
	sizes := map[byte]int{}
	for _, c := range labels {
		if rng.Intn(10) == 0 {
			sizes[c] = 0
		} else {
			sizes[c] = 1 + rng.Intn(4)
		}
	}
	return sizes
}

func tensorFor(rng *rand.Rand, labels string, sizes map[byte]int) *Tensor {
	shape := make([]int, len(labels))
	for i := 0; i < len(labels); i++ {
		shape[i] = sizes[labels[i]]
	}
	return Rand(rng, shape...)
}

// TestKernelMatchesReferenceFuzz is the differential test backing the
// kernel's bit-exactness contract: for randomized lowerable specs and
// shapes, the GEMM path must produce *exactly* the bytes of the
// odometer reference — same values, same rounding — both for fresh
// einsums and for fused accumulation onto a non-zero accumulator.
func TestKernelMatchesReferenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kernelUsed := 0
	for iter := 0; iter < 500; iter++ {
		spec, labels := randomGemmSpec(rng)
		sizes := randomSizes(rng, labels)
		parsed, err := ParseEinsum(spec)
		if err != nil {
			t.Fatalf("generated invalid spec %q: %v", spec, err)
		}
		lhs := tensorFor(rng, parsed.Inputs[0], sizes)
		rhs := tensorFor(rng, parsed.Inputs[1], sizes)

		e, err := einsumLookup(spec)
		if err != nil {
			t.Fatalf("einsumLookup(%q): %v", spec, err)
		}
		if !e.plan.ok {
			t.Fatalf("spec %q did not lower to GEMM", spec)
		}
		kernelUsed++

		got := Einsum(spec, lhs, rhs)
		want := ReferenceEinsum(spec, lhs, rhs)
		if !got.Equal(want) {
			t.Fatalf("spec %q lhs %v rhs %v: kernel differs from reference (max diff %g)",
				spec, lhs.Shape(), rhs.Shape(), got.MaxDifference(want))
		}

		acc := tensorFor(rng, parsed.Output, sizes)
		wantAcc := acc.Clone()
		einsumReference(wantAcc, parsed, []*Tensor{lhs, rhs})
		gotAcc := EinsumAddInto(acc.Clone(), spec, lhs, rhs)
		if !gotAcc.Equal(wantAcc) {
			t.Fatalf("spec %q: EinsumAddInto differs from reference accumulate (max diff %g)",
				spec, gotAcc.MaxDifference(wantAcc))
		}
	}
	if kernelUsed == 0 {
		t.Fatal("fuzz never exercised the kernel path")
	}
}

// TestKernelFallbackSpecs pins which spec shapes do NOT lower to GEMM
// and verifies they still evaluate correctly through the reference
// path, including via EinsumAddInto.
func TestKernelFallbackSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []string{
		"ab->ba",    // single operand: transpose
		"ab->a",     // single operand: reduction
		"ab,bc->bc", // 'a' summed within lhs alone
		"ab,ac->ab", // 'c' summed within rhs alone
	}
	for _, spec := range cases {
		e, err := einsumLookup(spec)
		if err != nil {
			t.Fatalf("einsumLookup(%q): %v", spec, err)
		}
		if e.plan.ok {
			t.Fatalf("spec %q unexpectedly lowered to GEMM", spec)
		}
		sizes := map[byte]int{'a': 3, 'b': 4, 'c': 5}
		ops := make([]*Tensor, len(e.spec.Inputs))
		for i, in := range e.spec.Inputs {
			ops[i] = tensorFor(rng, in, sizes)
		}
		got := Einsum(spec, ops...)
		want := ReferenceEinsum(spec, ops...)
		if !got.Equal(want) {
			t.Fatalf("fallback spec %q: Einsum differs from reference", spec)
		}
		if len(ops) == 2 {
			acc := tensorFor(rng, e.spec.Output, sizes)
			wantAcc := acc.Clone()
			einsumReference(wantAcc, e.spec, ops)
			if got := EinsumAddInto(acc.Clone(), spec, ops[0], ops[1]); !got.Equal(wantAcc) {
				t.Fatalf("fallback spec %q: EinsumAddInto differs from reference", spec)
			}
		}
	}
}

// TestKernelWorkerCountDeterminism verifies the partitioning contract:
// results are byte-identical for 1, 2 and GOMAXPROCS workers, on sizes
// large enough to cross the parallel threshold, for direct and packed
// layouts.
func TestKernelWorkerCountDeterminism(t *testing.T) {
	defer SetKernelWorkers(0)
	rng := rand.New(rand.NewSource(3))
	specs := []struct {
		spec     string
		lhs, rhs []int
	}{
		{"ik,kj->ij", []int{160, 160}, []int{160, 160}},      // fully direct
		{"ik,jk->ij", []int{160, 160}, []int{160, 160}},      // rhs packed
		{"gik,gkj->gij", []int{4, 96, 96}, []int{4, 96, 96}}, // batched
		{"ki,kj->ji", []int{160, 160}, []int{160, 160}},      // all packed
	}
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, tc := range specs {
		lhs := Rand(rng, tc.lhs...)
		rhs := Rand(rng, tc.rhs...)
		var base *Tensor
		for _, w := range counts {
			SetKernelWorkers(w)
			got := Einsum(tc.spec, lhs, rhs)
			if base == nil {
				base = got
				continue
			}
			if !got.Equal(base) {
				t.Fatalf("spec %q: %d workers produced different bytes than 1 worker", tc.spec, w)
			}
		}
		SetKernelWorkers(1)
		want := ReferenceEinsum(tc.spec, lhs, rhs)
		if !base.Equal(want) {
			t.Fatalf("spec %q: kernel differs from reference at parallel sizes", tc.spec)
		}
	}
}

// TestEinsumAddIntoSteadyStateAllocs pins the fused accumulate path at
// zero steady-state allocations for direct layouts: the spec/plan cache
// is warm, no output temporary is materialized, and no packing scratch
// is needed.
func TestEinsumAddIntoSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not representative under the race detector")
	}
	SetKernelWorkers(1)
	defer SetKernelWorkers(0)
	rng := rand.New(rand.NewSource(5))
	lhs := Rand(rng, 64, 64)
	rhs := Rand(rng, 64, 64)
	acc := New(64, 64)
	EinsumAddInto(acc, "ik,kj->ij", lhs, rhs) // warm the spec cache
	allocs := testing.AllocsPerRun(100, func() {
		EinsumAddInto(acc, "ik,kj->ij", lhs, rhs)
	})
	if allocs != 0 {
		t.Fatalf("EinsumAddInto direct path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestEinsumAddIntoPackedPathPoolsScratch pins that packing scratch is
// recycled: a packed-layout accumulate averages well under one
// allocation per run once the buffer pool is warm (three fresh
// data-sized buffers per run would be the unpooled cost).
func TestEinsumAddIntoPackedPathPoolsScratch(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool deliberately drops items under the race detector")
	}
	SetKernelWorkers(1)
	defer SetKernelWorkers(0)
	rng := rand.New(rand.NewSource(6))
	lhs := Rand(rng, 64, 64)
	rhs := Rand(rng, 64, 64)
	acc := New(64, 64)
	EinsumAddInto(acc, "ki,kj->ji", lhs, rhs) // warm spec cache and pool
	allocs := testing.AllocsPerRun(200, func() {
		EinsumAddInto(acc, "ki,kj->ji", lhs, rhs)
	})
	if allocs >= 1 {
		t.Fatalf("EinsumAddInto packed path allocates %.2f objects/op, want < 1 with pooled scratch", allocs)
	}
}

// BenchmarkEinsum sweeps square matmuls from 32 to 512, reporting
// GFLOP/s alongside ns/op. cmd/kernelbench runs the same sweep to emit
// BENCH_kernels.json in CI.
func BenchmarkEinsum(b *testing.B) {
	for _, size := range []int{32, 64, 128, 256, 512} {
		b.Run(fmt.Sprintf("matmul%d", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := Rand(rng, size, size)
			y := Rand(rng, size, size)
			flops := 2 * float64(size) * float64(size) * float64(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Einsum("ik,kj->ij", x, y)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

// BenchmarkEinsumReference is the pre-kernel baseline for the same
// shapes; the ratio to BenchmarkEinsum is the engine's speedup.
func BenchmarkEinsumReference(b *testing.B) {
	for _, size := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("matmul%d", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := Rand(rng, size, size)
			y := Rand(rng, size, size)
			flops := 2 * float64(size) * float64(size) * float64(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ReferenceEinsum("ik,kj->ij", x, y)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

// BenchmarkEinsumAddInto measures the fused accumulate against the
// unfused temporary-plus-AddInPlace pair it replaces in the decomposed
// ReduceScatter chain.
func BenchmarkEinsumAddInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Rand(rng, 128, 128)
	y := Rand(rng, 128, 128)
	acc := New(128, 128)
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EinsumAddInto(acc, "ik,kj->ij", x, y)
		}
	})
	b.Run("unfused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			AddInPlace(acc, Einsum("ik,kj->ij", x, y))
		}
	})
}
