package tensor

import (
	"sync"
	"sync/atomic"
)

// Persistent pack cache: the kernel engine's permute-packing of a
// non-direct operand is a pure function of (plan, tensor contents), so
// the packed buffer is a cacheable artifact. The decomposed loop is the
// motivating workload — every iteration re-runs the same partial-einsum
// spec against the same weight shard, and before this cache each
// iteration paid the full permCopy again (for skinny partials the pack
// costs as much as the GEMM itself). Entries live on the plan (plans
// are cached per spec string for the process lifetime) and are keyed by
// tensor identity + version, so a mutation anywhere — Set, writes
// through Data, in-place accumulation — invalidates by version
// mismatch and forces a repack.
//
// Ownership: cached buffers are owned by the cache and are never
// returned to the scratch pool, even on eviction — a concurrent kernel
// may still be reading an evicted buffer, and recycling it through the
// pool would let another kernel overwrite it mid-read. Evicted buffers
// are simply dropped for the GC. The cache is bounded (entries per
// plan side), so churn from non-recurring operands (the circulating
// activation shards) evicts in LRU order instead of growing without
// bound.

// packCacheMaxEntries bounds one plan side's cache. A program has a
// handful of persistent weight tensors per einsum spec (one per device
// goroutine at most), so a small bound holds every recurring operand
// while churning transient ones.
const packCacheMaxEntries = 64

// packCacheOn gates the cache process-wide (SetPackCache). On by
// default; the differential grid tests run both settings.
var packCacheOn atomic.Bool

func init() { packCacheOn.Store(true) }

// SetPackCache enables or disables the kernel engine's persistent
// operand-pack cache. Disabling only changes where packed bytes come
// from (always freshly packed scratch), never the result bytes.
func SetPackCache(on bool) { packCacheOn.Store(on) }

// PackCacheEnabled reports whether the pack cache is active.
func PackCacheEnabled() bool { return packCacheOn.Load() }

// packEntry is one cached packed operand: the packed row-major buffer
// and the tensor version it was packed from.
type packEntry struct {
	version uint64
	data    []float64
}

// packCache is one plan side's tensor→pack map with LRU eviction. The
// mutex guards the map and recency list only; packing itself happens
// outside the lock (two goroutines racing to fill the same key both
// pack — identical bytes — and one store wins).
type packCache struct {
	mu      sync.Mutex
	entries map[*Tensor]*packEntry
	recency []*Tensor // least recently used first
}

func newPackCache() *packCache {
	return &packCache{entries: make(map[*Tensor]*packEntry)}
}

// lookup returns the cached pack for t at its current version, or nil.
func (pc *packCache) lookup(t *Tensor, version uint64) []float64 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.entries[t]
	if !ok || e.version != version {
		return nil
	}
	pc.touch(t)
	return e.data
}

// store inserts or replaces t's pack, evicting the least recently used
// entry when the side is full.
func (pc *packCache) store(t *Tensor, version uint64, data []float64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if _, ok := pc.entries[t]; ok {
		pc.entries[t] = &packEntry{version: version, data: data}
		pc.touch(t)
		return
	}
	if len(pc.entries) >= packCacheMaxEntries {
		oldest := pc.recency[0]
		pc.recency = pc.recency[1:]
		delete(pc.entries, oldest)
		kernelPackEvictions.Inc()
	}
	pc.entries[t] = &packEntry{version: version, data: data}
	pc.recency = append(pc.recency, t)
}

// touch moves t to the most-recently-used end. Called with mu held.
func (pc *packCache) touch(t *Tensor) {
	for i, o := range pc.recency {
		if o == t {
			copy(pc.recency[i:], pc.recency[i+1:])
			pc.recency[len(pc.recency)-1] = t
			return
		}
	}
}

// packedOperand resolves one non-direct operand to its packed buffer:
// from the plan's cache when enabled and current, otherwise by packing
// — into a cache-owned buffer on a cacheable miss, or into pooled
// scratch when the cache is off. The second return is the pooled
// scratch to release after the kernel runs (nil when the bytes are
// cache-owned).
func packedOperand(pc *packCache, t *Tensor, perm []int, n int) ([]float64, *[]float64) {
	if pc == nil || !packCacheOn.Load() {
		buf := getBuf(n)
		permCopy(*buf, t, perm, true)
		return *buf, buf
	}
	version := t.Version()
	if data := pc.lookup(t, version); data != nil {
		kernelPackHits.Inc()
		return data, nil
	}
	kernelPackMisses.Inc()
	kernelPackBytes.Add(float64(8 * n))
	data := make([]float64, n)
	permCopy(data, t, perm, true)
	pc.store(t, version, data)
	return data, nil
}
