package collective

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the unidirectional ring AllGather reproduces the direct
// semantics on every rank, for arbitrary ring sizes and shard shapes.
func TestRingAllGatherMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		rows, cols := 1+rng.Intn(4), 1+rng.Intn(4)
		shards := randShards(seed+1, n, rows, cols)
		want := AllGather(shards, 0)
		got := RingAllGather(shards, 0)
		for r := 0; r < n; r++ {
			if !got[r].Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ring ReduceScatter reproduces the direct semantics,
// including the Fig 7 alignment (rank r ends with shard r).
func TestRingReduceScatterMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		rows := n * (1 + rng.Intn(3))
		inputs := randShards(seed+2, n, rows, 1+rng.Intn(4))
		want := ReduceScatter(inputs, 0)
		got := RingReduceScatter(inputs, 0)
		for r := 0; r < n; r++ {
			if !got[r].AllClose(want[r], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the bidirectional ring AllGather matches the direct
// semantics on even rings — the Figure 9 circulation.
func TestBidirectionalRingAllGatherMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 * (1 + rng.Intn(4))
		shards := randShards(seed+3, n, 1+rng.Intn(3), 1+rng.Intn(3))
		want := AllGather(shards, 0)
		got := BidirectionalRingAllGather(shards, 0)
		for r := 0; r < n; r++ {
			if !got[r].Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBidirectionalRingRejectsOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd ring accepted")
		}
	}()
	BidirectionalRingAllGather(randShards(1, 3, 2, 2), 0)
}

func TestRingStepCount(t *testing.T) {
	cases := []struct {
		n        int
		bidi, rs bool
		want     int
	}{
		{1, false, false, 0},
		{8, false, false, 7}, // AllGather: N-1
		{8, false, true, 8},  // ReduceScatter: N (Algorithm 1)
		{8, true, false, 4},  // bidirectional AllGather: N/2
		{8, true, true, 5},   // bidirectional RS: N/2 + epilogue
		{7, true, false, 6},  // odd ring falls back to unidirectional
	}
	for _, c := range cases {
		if got := RingStepCount(c.n, c.bidi, c.rs); got != c.want {
			t.Errorf("RingStepCount(%d, %v, %v) = %d, want %d", c.n, c.bidi, c.rs, got, c.want)
		}
	}
}

// The ring algorithm moves exactly n-1 shard-volumes through each rank —
// the bandwidth the machine model's RingAllGatherTime assumes.
func TestRingTrafficMatchesCostModel(t *testing.T) {
	const n = 6
	shards := randShards(9, n, 4, 4)
	out := RingAllGather(shards, 0)
	if out[0].Dim(0) != n*4 {
		t.Fatalf("gathered shape %v", out[0].Shape())
	}
	// Each rank receives n-1 shards of its output from the wire.
	recvBytes := (n - 1) * shards[0].NumElements()
	totalOut := out[0].NumElements()
	if recvBytes != totalOut*(n-1)/n {
		t.Fatalf("ring traffic %d != (n-1)/n of output %d", recvBytes, totalOut)
	}
}
