package hlo

import (
	"container/heap"
	"fmt"
)

// Computation is an SPMD program: a dataflow graph of instructions kept
// in an executable sequence. Every device runs the same sequence;
// per-device divergence comes only from partition-dependent DynOffsets
// and from collective semantics.
//
// The instruction list is the schedule. All mutating helpers keep the
// list a valid topological order (operands before users) except where
// documented.
type Computation struct {
	Name   string
	instrs []*Instruction
	nextID int

	buildGroup int
	groupSeq   int

	// root is the computation's result. Outside a WithRootPreserved
	// section it follows the builder convention (the last instruction
	// added); inside one it is pinned, following only explicit
	// ReplaceAllUsesWith replacements — which is how rewriting passes
	// append helper instructions without a dead branch becoming the
	// root and surviving dead-code elimination in the result's place.
	root      *Instruction
	trackRoot *Instruction
	tracking  bool
}

// WithRootPreserved runs a graph mutation with the current root pinned:
// instructions appended inside f do not become the root, but if f
// replaces the root via ReplaceAllUsesWith the pin follows the
// replacement. Every rewriting pass wraps its mutation in this.
func (c *Computation) WithRootPreserved(f func()) {
	if c.tracking {
		// Nested call inside an active preserved section: the outer
		// section already pins and follows the root.
		f()
		return
	}
	c.tracking = true
	c.trackRoot = c.Root()
	f()
	c.tracking = false
	c.root = c.trackRoot
	c.trackRoot = nil
}

// SetRoot pins the computation's result explicitly.
func (c *Computation) SetRoot(in *Instruction) { c.root = in }

// NewBuildGroup allocates a fresh fusion-group id and makes it the
// current build group: instructions added until the next SetBuildGroup
// call carry it. Rewrites that emit loop iterations use one group per
// iteration so the fusion pass scopes regions to a single iteration.
func (c *Computation) NewBuildGroup() int {
	c.groupSeq++
	c.buildGroup = c.groupSeq
	return c.buildGroup
}

// SetBuildGroup sets the group stamped on subsequently added
// instructions; 0 restores the untagged default.
func (c *Computation) SetBuildGroup(g int) { c.buildGroup = g }

// NewComputation returns an empty computation.
func NewComputation(name string) *Computation {
	return &Computation{Name: name}
}

// Instructions returns the scheduled instruction sequence. The returned
// slice is a copy; the instructions themselves are shared.
func (c *Computation) Instructions() []*Instruction {
	return append([]*Instruction(nil), c.instrs...)
}

// NumInstructions returns the length of the sequence.
func (c *Computation) NumInstructions() int { return len(c.instrs) }

// Walk calls f for every instruction of the computation and,
// recursively, of every fusion and loop body, in schedule order (each
// instruction immediately before its body's instructions). It is the
// traversal hook execution engines use to pre-plan resources — link
// channels, rendezvous state, arena sizing — before running.
func (c *Computation) Walk(f func(*Instruction)) {
	for _, in := range c.instrs {
		f(in)
		if in.Body != nil {
			in.Body.Walk(f)
		}
	}
}

// Root returns the computation's result: the explicitly tracked root,
// or the last instruction of the sequence under the builder convention.
func (c *Computation) Root() *Instruction {
	if c.tracking && c.trackRoot != nil {
		return c.trackRoot
	}
	if c.root != nil {
		return c.root
	}
	if len(c.instrs) == 0 {
		return nil
	}
	return c.instrs[len(c.instrs)-1]
}

// Parameters returns the parameter instructions ordered by ParamIndex.
func (c *Computation) Parameters() []*Instruction {
	var params []*Instruction
	for _, in := range c.instrs {
		if in.Op == OpParameter {
			params = append(params, in)
		}
	}
	for i := 0; i < len(params); i++ {
		for j := i + 1; j < len(params); j++ {
			if params[j].ParamIndex < params[i].ParamIndex {
				params[i], params[j] = params[j], params[i]
			}
		}
	}
	return params
}

// Find returns the first instruction with the given name, or nil.
func (c *Computation) Find(name string) *Instruction {
	for _, in := range c.instrs {
		if in.Name == name {
			return in
		}
	}
	return nil
}

// add registers a freshly built instruction at the end of the sequence,
// wiring user edges.
func (c *Computation) add(in *Instruction) *Instruction {
	in.ID = c.nextID
	c.nextID++
	if in.Group == 0 {
		in.Group = c.buildGroup
	}
	if in.Name == "" {
		in.Name = fmt.Sprintf("%s.%d", in.Op, in.ID)
	}
	for _, op := range in.Operands {
		op.addUser(in)
	}
	c.instrs = append(c.instrs, in)
	if !c.tracking {
		c.root = in
	}
	return in
}

// ReplaceAllUsesWith rewires every user of old to use new instead. The
// old instruction stays in the sequence (dead) until RemoveDeadCode.
func (c *Computation) ReplaceAllUsesWith(old, new *Instruction) {
	if old == new {
		return
	}
	for _, u := range old.Users() {
		u.ReplaceOperand(old, new)
	}
	if c.tracking && c.trackRoot == old {
		c.trackRoot = new
	}
	if c.root == old {
		c.root = new
	}
}

// RemoveDeadCode drops instructions with no users that are not the root
// and not parameters, iterating to a fixed point.
func (c *Computation) RemoveDeadCode() int {
	removed := 0
	for {
		root := c.Root()
		var live []*Instruction
		changed := false
		for _, in := range c.instrs {
			if in != root && in.Op != OpParameter && in.NumUsers() == 0 {
				for _, op := range in.Operands {
					op.removeUser(in)
				}
				removed++
				changed = true
				continue
			}
			live = append(live, in)
		}
		c.instrs = live
		if !changed {
			return removed
		}
	}
}

// SetSchedule replaces the instruction order. The new order must contain
// exactly the current instructions and be topologically valid.
func (c *Computation) SetSchedule(order []*Instruction) error {
	if len(order) != len(c.instrs) {
		return fmt.Errorf("hlo: schedule has %d instructions, computation has %d", len(order), len(c.instrs))
	}
	pos := make(map[*Instruction]int, len(order))
	for i, in := range order {
		if _, dup := pos[in]; dup {
			return fmt.Errorf("hlo: schedule lists %s twice", in.Name)
		}
		pos[in] = i
	}
	for _, in := range c.instrs {
		if _, ok := pos[in]; !ok {
			return fmt.Errorf("hlo: schedule is missing %s", in.Name)
		}
	}
	for i, in := range order {
		for _, op := range in.Operands {
			if pos[op] >= i {
				return fmt.Errorf("hlo: schedule places operand %s after user %s", op.Name, in.Name)
			}
		}
	}
	c.instrs = append(c.instrs[:0], order...)
	return nil
}

// stableTopoItem is a heap entry for ScheduleStableTopological.
type stableTopoItem struct {
	in   *Instruction
	prio int
}

type stableTopoHeap []stableTopoItem

func (h stableTopoHeap) Len() int            { return len(h) }
func (h stableTopoHeap) Less(i, j int) bool  { return h[i].prio < h[j].prio }
func (h stableTopoHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stableTopoHeap) Push(x interface{}) { *h = append(*h, x.(stableTopoItem)) }
func (h *stableTopoHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// ScheduleStableTopological re-sorts the sequence into a topological
// order that preserves the current relative order as far as dependencies
// allow (Kahn's algorithm with original position as priority). Rewriting
// passes call this after appending replacement instructions at the end.
func (c *Computation) ScheduleStableTopological() {
	origPos := make(map[*Instruction]int, len(c.instrs))
	for i, in := range c.instrs {
		origPos[in] = i
	}
	pending := make(map[*Instruction]int, len(c.instrs))
	h := &stableTopoHeap{}
	for _, in := range c.instrs {
		pending[in] = len(in.Operands)
		if len(in.Operands) == 0 {
			heap.Push(h, stableTopoItem{in, origPos[in]})
		}
	}
	var order []*Instruction
	for h.Len() > 0 {
		in := heap.Pop(h).(stableTopoItem).in
		order = append(order, in)
		for _, u := range in.Users() {
			// An instruction may use the same operand several times;
			// count each satisfied slot.
			slots := 0
			for _, op := range u.Operands {
				if op == in {
					slots++
				}
			}
			pending[u] -= slots
			if pending[u] == 0 {
				heap.Push(h, stableTopoItem{u, origPos[u]})
			}
		}
	}
	if len(order) != len(c.instrs) {
		panic("hlo: cycle detected in computation graph")
	}
	c.instrs = order
}

// Verify checks structural invariants: schedule validity, operand/user
// consistency, and per-op attribute/shape coherence.
func (c *Computation) Verify() error {
	seen := make(map[*Instruction]bool, len(c.instrs))
	for _, in := range c.instrs {
		for _, op := range in.Operands {
			if !seen[op] {
				return fmt.Errorf("hlo: %s uses %s before it is scheduled", in.Name, op.Name)
			}
			if !op.HasUser(in) {
				return fmt.Errorf("hlo: user edge %s -> %s missing", op.Name, in.Name)
			}
		}
		if err := verifyInstruction(in); err != nil {
			return err
		}
		if in.Op == OpFusion || in.Op == OpLoop {
			if err := in.Body.Verify(); err != nil {
				return fmt.Errorf("hlo: %s %s body: %w", in.Op, in.Name, err)
			}
		}
		seen[in] = true
	}
	return nil
}

func verifyInstruction(in *Instruction) error {
	want, err := inferShape(in)
	if err != nil {
		return fmt.Errorf("hlo: %s: %w", in.Name, err)
	}
	if len(want) != len(in.Shape) {
		return fmt.Errorf("hlo: %s shape %v, inferred %v", in.Name, in.Shape, want)
	}
	for i := range want {
		if want[i] != in.Shape[i] {
			return fmt.Errorf("hlo: %s shape %v, inferred %v", in.Name, in.Shape, want)
		}
	}
	return nil
}

// Clone returns a deep copy of the computation: new instruction objects,
// same structure and attributes, including fusion bodies.
func (c *Computation) Clone() *Computation {
	out := NewComputation(c.Name)
	out.nextID = c.nextID
	out.groupSeq = c.groupSeq
	mapping := make(map[*Instruction]*Instruction, len(c.instrs))
	for _, in := range c.instrs {
		cp := &Instruction{
			ID:             in.ID,
			Name:           in.Name,
			Op:             in.Op,
			Shape:          append([]int(nil), in.Shape...),
			Group:          in.Group,
			ParamIndex:     in.ParamIndex,
			EinsumSpec:     in.EinsumSpec,
			Axis:           in.Axis,
			PadLow:         append([]int(nil), in.PadLow...),
			PadHigh:        append([]int(nil), in.PadHigh...),
			PadValue:       in.PadValue,
			Starts:         append([]int(nil), in.Starts...),
			Limits:         append([]int(nil), in.Limits...),
			Offsets:        append([]DynOffset(nil), in.Offsets...),
			SliceSizes:     append([]int(nil), in.SliceSizes...),
			Perm:           append([]int(nil), in.Perm...),
			Pairs:          append([]SourceTargetPair(nil), in.Pairs...),
			CollectiveAxis: in.CollectiveAxis,
			TripCount:      in.TripCount,
			ResultIndex:    in.ResultIndex,
		}
		if in.Literal != nil {
			cp.Literal = in.Literal.Clone()
		}
		for _, g := range in.Groups {
			cp.Groups = append(cp.Groups, append([]int(nil), g...))
		}
		if in.Body != nil {
			cp.Body = in.Body.Clone()
		}
		for _, op := range in.Operands {
			mop, ok := mapping[op]
			if !ok {
				panic(fmt.Sprintf("hlo: clone saw operand %s before definition", op.Name))
			}
			cp.Operands = append(cp.Operands, mop)
			mop.addUser(cp)
		}
		mapping[in] = cp
		out.instrs = append(out.instrs, cp)
	}
	if c.root != nil {
		out.root = mapping[c.root]
	}
	return out
}
