package core

import (
	"container/heap"
	"sort"

	"overlap/internal/hlo"
	"overlap/internal/machine"
)

// latency estimates how long an instruction occupies its device (or,
// for a CollectivePermuteDone, how much time must elapse after the
// matching start for the transfer to land). The schedulers use it to
// decide how much computation to place inside each start/done window.
func latency(in *hlo.Instruction, spec machine.Spec) float64 {
	switch in.Op {
	case hlo.OpCollectivePermuteStart:
		return 0
	case hlo.OpCollectivePermuteDone:
		return spec.TransferTime(in.Operands[0].Operands[0].ByteSize(), 1)
	case hlo.OpAllGather, hlo.OpReduceScatter, hlo.OpAllReduce, hlo.OpAllToAll, hlo.OpCollectivePermute:
		return spec.CollectiveTime(in) + spec.InstructionCost(in)
	default:
		return spec.InstructionCost(in)
	}
}

// ScheduleBottomUp reorders the computation with the reverse list
// scheduler of Algorithm 2: instructions are scheduled from the graph
// roots backwards, prioritizing CollectivePermuteDones (so they land
// late in forward order) and holding each CollectivePermuteStart in a
// pending queue until enough reverse time — the transfer latency — has
// been covered by other work, which is what places computation between
// the start and the done. The in-flight budget bounds simultaneously
// outstanding transfers.
func ScheduleBottomUp(c *hlo.Computation, spec machine.Spec) error {
	instrs := c.Instructions()
	origPos := make(map[*hlo.Instruction]int, len(instrs))
	for i, in := range instrs {
		origPos[in] = i
	}

	// usersLeft counts distinct users not yet scheduled.
	usersLeft := make(map[*hlo.Instruction]int, len(instrs))
	for _, in := range instrs {
		usersLeft[in] = in.NumUsers()
	}

	readyTime := make(map[*hlo.Instruction]float64, len(instrs))
	var newSeq []*hlo.Instruction
	scheduled := make(map[*hlo.Instruction]bool, len(instrs))

	// rank orders the ready queue: smaller is better.
	rank := func(in *hlo.Instruction) int {
		switch {
		case in.Op == hlo.OpCollectivePermuteDone:
			return 0
		case in.Op == hlo.OpCollectivePermuteStart:
			// Once its time gate has passed (the pending queue holds a
			// start until enough reverse path — the transfer latency —
			// is covered), a start goes promptly so it lands early in
			// forward order, unlocking the upstream done.
			return 1
		case hasOperandOp(in, hlo.OpCollectivePermuteDone):
			return 2
		default:
			return 3
		}
	}
	less := func(a, b *hlo.Instruction) bool {
		ra, rb := rank(a), rank(b)
		if ra != rb {
			return ra < rb
		}
		// Reverse original order preserves the memory-pressure-friendly
		// input schedule among equals.
		return origPos[a] > origPos[b]
	}

	var ready []*hlo.Instruction
	pending := &pendingHeap{}
	currentTime := 0.0
	inFlight := 0

	computeReady := func(in *hlo.Instruction) float64 {
		t := 0.0
		for _, u := range in.Users() {
			if f := readyTime[u] + latency(u, spec); f > t {
				t = f
			}
		}
		return t
	}
	enqueue := func(in *hlo.Instruction) {
		rt := computeReady(in)
		if rt <= currentTime {
			ready = append(ready, in)
		} else {
			heap.Push(pending, pendingItem{in, rt})
		}
	}
	for _, in := range instrs {
		if in.NumUsers() == 0 {
			enqueue(in)
		}
	}

	schedule := func(in *hlo.Instruction) {
		scheduled[in] = true
		newSeq = append(newSeq, in)
		rt := computeReady(in)
		readyTime[in] = rt
		// Algorithm 2: current_time follows the candidate's critical
		// path, so the pending gate measures covered path length, not
		// the serial sum of all scheduled latencies. A done advances
		// the clock by zero — it occupies no device time; its transfer
		// latency gates only the matching start (via computeReady).
		advance := latency(in, spec)
		if in.Op == hlo.OpCollectivePermuteDone {
			advance = 0
		}
		currentTime = rt + advance
		switch in.Op {
		case hlo.OpCollectivePermuteDone:
			inFlight++
		case hlo.OpCollectivePermuteStart:
			inFlight--
		}
		seen := map[*hlo.Instruction]bool{}
		for _, op := range in.Operands {
			if seen[op] {
				continue
			}
			seen[op] = true
			usersLeft[op]--
			if usersLeft[op] == 0 {
				enqueue(op)
			}
		}
	}

	for len(newSeq) < len(instrs) {
		// Promote pending entries whose time has come.
		for pending.Len() > 0 && (*pending)[0].readyAt <= currentTime {
			ready = append(ready, heap.Pop(pending).(pendingItem).in)
		}
		var cand *hlo.Instruction
		if len(ready) > 0 {
			sort.SliceStable(ready, func(i, j int) bool { return less(ready[i], ready[j]) })
			idx := 0
			// Budget: avoid opening another async window when the flag
			// pool is exhausted, unless nothing else is ready.
			if ready[idx].Op == hlo.OpCollectivePermuteDone && inFlight >= spec.MaxInFlight {
				for k := range ready {
					if ready[k].Op != hlo.OpCollectivePermuteDone {
						idx = k
						break
					}
				}
			}
			cand = ready[idx]
			ready = append(ready[:idx], ready[idx+1:]...)
		} else if pending.Len() > 0 {
			it := heap.Pop(pending).(pendingItem)
			currentTime = it.readyAt
			cand = it.in
		} else {
			break
		}
		schedule(cand)
	}

	// Reverse into forward order.
	for i, j := 0, len(newSeq)-1; i < j; i, j = i+1, j-1 {
		newSeq[i], newSeq[j] = newSeq[j], newSeq[i]
	}
	return c.SetSchedule(newSeq)
}

type pendingItem struct {
	in      *hlo.Instruction
	readyAt float64
}

type pendingHeap []pendingItem

func (h pendingHeap) Len() int            { return len(h) }
func (h pendingHeap) Less(i, j int) bool  { return h[i].readyAt < h[j].readyAt }
func (h pendingHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x interface{}) { *h = append(*h, x.(pendingItem)) }
func (h *pendingHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

func hasOperandOp(in *hlo.Instruction, op hlo.OpCode) bool {
	for _, o := range in.Operands {
		if o.Op == op {
			return true
		}
	}
	return false
}

// ScheduleTopDown reorders the computation with the simpler forward
// heuristic of §5.2: a CollectivePermuteStart is scheduled as early as
// possible once its operands are placed, a CollectivePermuteDone as
// late as possible (only when no other instruction is ready), and
// everything else keeps its input order. The in-flight budget defers
// starts rather than dones.
func ScheduleTopDown(c *hlo.Computation, spec machine.Spec) error {
	instrs := c.Instructions()
	origPos := make(map[*hlo.Instruction]int, len(instrs))
	for i, in := range instrs {
		origPos[in] = i
	}
	opsLeft := make(map[*hlo.Instruction]int, len(instrs))
	for _, in := range instrs {
		seen := map[*hlo.Instruction]bool{}
		for _, op := range in.Operands {
			if !seen[op] {
				seen[op] = true
				opsLeft[in]++
			}
		}
	}

	var ready []*hlo.Instruction
	for _, in := range instrs {
		if opsLeft[in] == 0 {
			ready = append(ready, in)
		}
	}
	var newSeq []*hlo.Instruction
	inFlight := 0
	now := 0.0
	arrival := map[*hlo.Instruction]float64{} // start → estimated landing time

	// Rank: starts go as early as possible; dones whose transfer has
	// (by estimate) already landed are free to place; compute fills the
	// windows; dones still in flight go only when nothing else can (the
	// §5.2 "as late as possible" rule, refined with the runtime-cost
	// rebalancing estimate).
	rank := func(in *hlo.Instruction) int {
		switch in.Op {
		case hlo.OpCollectivePermuteStart:
			if inFlight >= spec.MaxInFlight {
				return 3 // flag pool exhausted: hold the start back
			}
			return 0
		case hlo.OpCollectivePermuteDone:
			if arrival[in.Operands[0]] <= now {
				return 1 // transfer already landed: placing it is free
			}
			return 4
		default:
			return 2
		}
	}

	for len(newSeq) < len(instrs) {
		if len(ready) == 0 {
			break
		}
		best := 0
		for k := 1; k < len(ready); k++ {
			rb, rk := rank(ready[best]), rank(ready[k])
			if rk < rb || (rk == rb && origPos[ready[k]] < origPos[ready[best]]) {
				best = k
			}
		}
		cand := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		newSeq = append(newSeq, cand)
		switch cand.Op {
		case hlo.OpCollectivePermuteStart:
			inFlight++
			arrival[cand] = now + latency(&hlo.Instruction{
				Op:       hlo.OpCollectivePermuteDone,
				Operands: []*hlo.Instruction{cand},
			}, spec)
		case hlo.OpCollectivePermuteDone:
			inFlight--
			if a := arrival[cand.Operands[0]]; a > now {
				now = a // stalled until the transfer landed
			}
		default:
			now += latency(cand, spec)
		}
		for _, u := range cand.Users() {
			opsLeft[u]--
			if opsLeft[u] == 0 {
				ready = append(ready, u)
			}
		}
	}
	return c.SetSchedule(newSeq)
}
