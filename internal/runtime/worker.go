//go:build unix

package runtime

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"overlap/internal/runtime/wire"
)

// socketpair returns both ends of a connected AF_UNIX stream pair as
// raw fds, close-on-exec so only deliberate ExtraFiles inheritance
// passes them to children. ForkLock guards the window between creating
// the raw fds and marking them, per the syscall package's contract.
func socketpair() ([2]int, error) {
	syscall.ForkLock.RLock()
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
	if err != nil {
		syscall.ForkLock.RUnlock()
		return fds, fmt.Errorf("socketpair: %w", err)
	}
	syscall.CloseOnExec(fds[0])
	syscall.CloseOnExec(fds[1])
	syscall.ForkLock.RUnlock()
	return fds, nil
}

// pollableFile wraps an owned socket fd as an *os.File registered with
// the runtime poller: the fd is switched to non-blocking first, so a
// concurrent Close reliably unblocks goroutines parked in Read/Write —
// the property every teardown path here leans on. Each socketpair end
// is its own file description, so flipping one side never affects the
// process holding the other.
func pollableFile(fd int, name string) (*os.File, error) {
	if err := syscall.SetNonblock(fd, true); err != nil {
		return nil, fmt.Errorf("set nonblock %s: %w", name, err)
	}
	return os.NewFile(uintptr(fd), name), nil
}

// MaybeWorker turns the current process into a transport worker when
// the process-transport environment variable is set, and never returns
// in that case. Every binary that can start a TransportProc run — the
// CLIs, the serving daemon, the test binaries via TestMain — must call
// it first thing in main, because the transport spawns workers by
// re-executing os.Executable().
//
// A process without the variable returns immediately, so the call is
// free for every ordinary invocation.
func MaybeWorker() {
	id := os.Getenv(workerEnv)
	if id == "" {
		return
	}
	dev, err := strconv.Atoi(id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "overlap worker: bad %s=%q: %v\n", workerEnv, id, err)
		os.Exit(2)
	}
	if err := runWorker(dev, os.Getenv(workerEdgesEnv)); err != nil {
		fmt.Fprintf(os.Stderr, "overlap worker %d: %v\n", dev, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// outEdge is one outgoing edge inside a worker: an unbounded queue of
// frames waiting for the wire, drained in order by one goroutine that
// sleeps the modeled wire time and writes to the edge socket. The queue
// is unbounded so the control reader never blocks on a slow wire —
// which is what keeps the parent's control writes prompt and teardown
// EOFs immediate.
type outEdge struct {
	dst  int
	sock *os.File

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*wire.Frame
	closed bool
}

func (o *outEdge) push(f *wire.Frame) {
	o.mu.Lock()
	o.queue = append(o.queue, f)
	o.mu.Unlock()
	o.cond.Signal()
}

func (o *outEdge) close() {
	o.mu.Lock()
	o.closed = true
	o.mu.Unlock()
	o.cond.Signal()
}

func (o *outEdge) pop() (*wire.Frame, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for len(o.queue) == 0 && !o.closed {
		o.cond.Wait()
	}
	if len(o.queue) == 0 {
		return nil, false
	}
	f := o.queue[0]
	o.queue = o.queue[1:]
	return f, true
}

// runWorker is the whole life of one worker process: read frames from
// the parent on the control socket (fd 3), act out each frame's wire
// time and pre-decided faults on its outgoing edge, and forward frames
// arriving from peer workers back up to the parent. It exits when the
// parent closes the control socket (normal teardown), on SIGTERM, or on
// an unrecoverable socket error.
func runWorker(dev int, edgeSpec string) error {
	control, err := pollableFile(3, "control")
	if err != nil {
		return err
	}
	out := map[int]*outEdge{}
	var inSocks []*os.File
	var inPeers []int
	for i, part := range strings.Split(edgeSpec, ",") {
		if part == "" {
			continue
		}
		var kind string
		var peer, fd int
		if _, err := fmt.Sscanf(part, "%1s:%d:%d", &kind, &peer, &fd); err != nil {
			return fmt.Errorf("bad edge spec %q: %w", part, err)
		}
		sock, err := pollableFile(fd, fmt.Sprintf("edge-%d", i))
		if err != nil {
			return err
		}
		switch kind {
		case "o":
			e := &outEdge{dst: peer, sock: sock}
			e.cond = sync.NewCond(&e.mu)
			out[peer] = e
		case "i":
			inSocks = append(inSocks, sock)
			inPeers = append(inPeers, peer)
		default:
			return fmt.Errorf("bad edge kind %q in %q", kind, part)
		}
	}

	// closed releases wire sleeps in flight once teardown starts, so a
	// worker never holds the run's shutdown hostage to a modeled delay.
	closedCh := make(chan struct{})
	var closeOnce sync.Once
	shut := func() { closeOnce.Do(func() { close(closedCh) }) }

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sigs
		shut()
		control.Close()
	}()

	var wg sync.WaitGroup
	// One drainer per outgoing edge: sleep the frame's wire occupancy
	// (abort-aware), then write it to the peer — twice for an injected
	// duplicate, never for an injected drop (discarded without holding
	// the wire, mirroring the channel transport's early continue).
	for _, e := range out {
		e := e
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer e.sock.Close()
			for {
				f, ok := e.pop()
				if !ok {
					return
				}
				if f.Flags&wire.FlagDrop != 0 {
					continue
				}
				if f.WireNS > 0 {
					t := time.NewTimer(time.Duration(f.WireNS))
					select {
					case <-t.C:
					case <-closedCh:
						t.Stop()
						continue
					}
				}
				writes := 1
				if f.Flags&wire.FlagDup != 0 {
					writes = 2
				}
				for i := 0; i < writes; i++ {
					if err := wire.WriteFrame(e.sock, f); err != nil {
						return
					}
				}
			}
		}()
	}

	// One forwarder per incoming edge: frames a peer worker finished
	// "transmitting" go straight up to the parent for delivery. The
	// control socket is shared by all forwarders, so writes serialize
	// under a mutex (frames are single Writes, but interleaving two
	// would still corrupt the stream).
	var ctlWriteMu sync.Mutex
	for i, sock := range inSocks {
		sock := sock
		_ = inPeers[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sock.Close()
			var f wire.Frame
			for {
				if err := wire.ReadFrame(sock, &f); err != nil {
					return
				}
				ctlWriteMu.Lock()
				err := wire.WriteFrame(control, &f)
				ctlWriteMu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}

	// Main loop: dispatch parent frames onto their outgoing edge. EOF is
	// the parent's orderly close (or our own SIGTERM handler's).
	var f wire.Frame
	var readErr error
	for {
		if err := wire.ReadFrame(control, &f); err != nil {
			if err != io.EOF && !strings.Contains(err.Error(), "file already closed") {
				readErr = err
			}
			break
		}
		e, ok := out[f.Dst]
		if !ok {
			readErr = fmt.Errorf("frame for unknown edge %d->%d", f.Src, f.Dst)
			break
		}
		// The loop reuses f's buffers, so the queued copy owns its own.
		g := f
		g.Shape = append([]int(nil), f.Shape...)
		g.Data = append([]float64(nil), f.Data...)
		e.push(&g)
	}

	shut()
	for _, e := range out {
		e.close()
	}
	wg.Wait()
	control.Close()
	return readErr
}
