package grad

import (
	"math/rand"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// TestGradDeepChainNoRecursion pins the iterative reachability walk: a
// ten-thousand-instruction dependency chain must differentiate without
// growing a call stack proportional to graph depth. The chain is pure
// accumulation (v += zeros), so the adjoint of the whole tower is the
// identity and d loss/d x must equal the probe bit for bit.
func TestGradDeepChainNoRecursion(t *testing.T) {
	const depth = 10000
	c := hlo.NewComputation("deep")
	x := c.Parameter(0, "x", []int{2, 2})
	probe := c.Parameter(1, "probe", []int{2, 2})
	seed := c.Parameter(2, "seed", nil)
	zero := c.Zeros("zero", []int{2, 2})
	v := x
	for i := 0; i < depth; i++ {
		v = c.Add(v, zero)
	}
	loss := c.Einsum("ab,ab->", v, probe)

	grads, err := Append(c, loss, seed, []*hlo.Instruction{x})
	if err != nil {
		t.Fatal(err)
	}
	c.Tuple(grads[x])
	if got := c.NumInstructions(); got < depth {
		t.Fatalf("chain collapsed to %d instructions, want >= %d", got, depth)
	}

	rng := rand.New(rand.NewSource(17))
	args := [][]*tensor.Tensor{
		{tensor.Rand(rng, 2, 2)},
		{tensor.Rand(rng, 2, 2)},
		{tensor.Scalar(1)},
	}
	vals, err := sim.InterpretAll(c, 1, args)
	if err != nil {
		t.Fatal(err)
	}
	if !vals[grads[x]][0].Equal(args[1][0]) {
		t.Fatalf("d loss/d x through the %d-deep chain is not the probe:\ngot  %v\nwant %v",
			depth, vals[grads[x]][0].Data(), args[1][0].Data())
	}
}

// randomChain appends steps random shape-preserving ops to v, drawing
// from the full adjoint menu: einsum contractions, adds, transposes,
// concat+slice round trips, gather/scatter and permute collectives.
// Einsums are capped so values stay in finite-difference range.
func randomChain(rng *rand.Rand, c *hlo.Computation, n int, v, x, w *hlo.Instruction, steps int) *hlo.Instruction {
	pairs := make([]hlo.SourceTargetPair, n)
	for i := range pairs {
		pairs[i] = hlo.SourceTargetPair{Source: i, Target: (i + 1) % n}
	}
	einsums := 0
	for s := 0; s < steps; s++ {
		switch op := rng.Intn(7); op {
		case 0: // contraction against the second parameter
			if einsums >= 2 {
				v = c.Add(v, x)
				continue
			}
			einsums++
			v = c.Einsum("ab,bc->ac", v, w)
		case 1:
			v = c.Add(v, x)
		case 2:
			v = c.Transpose(v, 1, 0)
		case 3: // concat then slice out the middle rows
			cat := c.Concat(0, v, v)
			v = c.Slice(cat, []int{2, 0}, []int{6, 4})
		case 4:
			v = c.AllReduce(v, ringGroups(n))
		case 5:
			v = c.CollectivePermute(v, pairs)
		case 6: // widen with a copy, then reduce-scatter back down
			cat := c.Concat(0, v, c.Copy(v))
			v = c.ReduceScatter(cat, 0, ringGroups(n))
		}
	}
	return v
}

// TestGradRandomizedDifferential fuzzes Append over random op chains and
// checks every gradient element against central finite differences of
// the global (device-summed) loss. Each trial exercises a different mix
// of einsum, add, transpose, concat/slice, all-reduce, permute and
// reduce-scatter adjoints composed in a different order.
func TestGradRandomizedDifferential(t *testing.T) {
	const n = 2
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(1000 + int64(trial)))
		c := hlo.NewComputation("fuzz")
		x := c.Parameter(0, "x", []int{4, 4})
		w := c.Parameter(1, "w", []int{4, 4})
		probe := c.Parameter(2, "probe", []int{4, 4})
		seed := c.Parameter(3, "seed", nil)
		v := randomChain(rng, c, n, x, x, w, 4)
		loss := c.Einsum("ab,ab->", v, probe)
		grads, err := Append(c, loss, seed, []*hlo.Instruction{x, w})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		c.Tuple(grads[x], grads[w])
		if err := c.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		mk := func(shape ...int) []*tensor.Tensor {
			out := make([]*tensor.Tensor, n)
			for d := range out {
				out[d] = tensor.Rand(rng, shape...)
			}
			return out
		}
		args := [][]*tensor.Tensor{mk(4, 4), mk(4, 4), mk(4, 4), {tensor.Scalar(1)}}

		vals, err := sim.InterpretAll(c, n, args)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		const h = 1e-5
		fd := func(param, dev, elem int) float64 {
			orig := args[param][dev].Data()[elem]
			args[param][dev].Data()[elem] = orig + h
			plus := globalLoss(t, c, loss, n, args)
			args[param][dev].Data()[elem] = orig - h
			minus := globalLoss(t, c, loss, n, args)
			args[param][dev].Data()[elem] = orig
			return (plus - minus) / (2 * h)
		}
		for param, g := range map[int]*hlo.Instruction{0: grads[x], 1: grads[w]} {
			for dev := 0; dev < n; dev++ {
				for e := 0; e < 16; e++ {
					want := fd(param, dev, e)
					got := vals[g][dev].Data()[e]
					if diff := abs(got - want); diff > 2e-3*(1+abs(want)) {
						t.Fatalf("trial %d: d loss/d p%d[%d][%d]: grad %v vs fd %v",
							trial, param, dev, e, got, want)
					}
				}
			}
		}
	}
}
