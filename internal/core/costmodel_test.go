package core

import (
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/machine"
)

// agSiteWithShapes builds an AllGather-Einsum site with explicit shard
// and weight shapes so tests can steer the compute/communication ratio.
func agSiteWithShapes(n, shardRows, k, cols int) (*hlo.Computation, Pattern) {
	c := hlo.NewComputation("cm")
	a := c.Parameter(0, "a", []int{shardRows, k})
	b := c.Parameter(1, "b", []int{k, cols})
	full := c.AllGather(a, 0, ringGroups(n))
	c.Einsum("mk,kn->mn", full, b)
	ps := FindPatterns(c, FirstChooser{})
	if len(ps) != 1 {
		panic("expected one pattern")
	}
	return c, ps[0]
}

func TestCostModelEnablesComputeBoundSite(t *testing.T) {
	// Large einsum, modest transfers: comp_t dominates, overlap wins.
	_, p := agSiteWithShapes(8, 256, 2048, 8192)
	opts := DefaultOptions(machine.TPUv4())
	d := Evaluate(p, opts)
	if !d.Enable {
		t.Fatalf("compute-bound site rejected: %+v", d)
	}
	if d.CompT <= 0 || d.CommT <= 0 || d.CommRing <= 0 {
		t.Fatalf("degenerate estimates: %+v", d)
	}
}

func TestCostModelRejectsCommBoundSite(t *testing.T) {
	// Tiny einsum, huge shard: the decomposed ring (half bandwidth,
	// unidirectional) is slower than the blocking collective and the
	// computation cannot cover it.
	_, p := agSiteWithShapes(8, 4096, 4096, 8)
	opts := DefaultOptions(machine.TPUv4())
	opts.Bidirectional = false
	d := Evaluate(p, opts)
	if d.Enable {
		t.Fatalf("communication-bound site accepted: %+v", d)
	}
}

func TestCostModelBidirectionalHalvesRingTime(t *testing.T) {
	_, p := agSiteWithShapes(8, 512, 1024, 1024)
	uni := DefaultOptions(machine.TPUv4())
	uni.Bidirectional = false
	bidi := DefaultOptions(machine.TPUv4())
	du := Evaluate(p, uni)
	db := Evaluate(p, bidi)
	if db.CommRing >= du.CommRing {
		t.Fatalf("bidirectional ring %.3g not below unidirectional %.3g", db.CommRing, du.CommRing)
	}
	if db.ExtraT <= 0 {
		t.Fatal("bidirectional variant must charge the prologue as extra")
	}
}

func TestCostModelRingSlowerThanCollective(t *testing.T) {
	// §5.5 premise: the unidirectional decomposed ring uses half of the
	// interconnect bandwidth, so comm_t_ring is roughly 2x comm_t.
	_, p := agSiteWithShapes(16, 1024, 1024, 1024)
	opts := DefaultOptions(machine.TPUv4())
	opts.Bidirectional = false
	d := Evaluate(p, opts)
	ratio := d.CommRing / d.CommT
	if ratio < 1.5 || ratio > 2.6 {
		t.Fatalf("ring/collective ratio = %.2f, want ~2", ratio)
	}
}

func TestPipelineCostModelGates(t *testing.T) {
	// With the cost model on, a communication-bound site stays blocking.
	c, _ := agSiteWithShapes(8, 4096, 4096, 8)
	opts := DefaultOptions(machine.TPUv4())
	opts.Bidirectional = false
	opts.Unroll = false
	report, err := Apply(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.SitesFound != 1 || report.SitesRejected != 1 || report.SitesDecomposed != 0 {
		t.Fatalf("report = %+v", report)
	}
	// The AllGather must still be present.
	found := false
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpAllGather {
			found = true
		}
	}
	if !found {
		t.Fatal("rejected site was rewritten anyway")
	}
}

func TestCostChooserPrefersLongerCollective(t *testing.T) {
	// An einsum with two AllGather candidates: the slower (bigger)
	// collective should be chosen when the einsum cannot beat both.
	c := hlo.NewComputation("two_ag")
	a := c.Parameter(0, "a", []int{64, 512})
	b := c.Parameter(1, "b", []int{512, 1024})
	fullA := c.AllGather(a, 0, ringGroups(8)) // 512x512 gathered
	fullB := c.AllGather(b, 1, ringGroups(8)) // 512x8192 gathered — bigger
	c.Einsum("mk,kn->mn", fullA, fullB)
	spec := machine.TPUv4()
	patterns := FindPatterns(c, CostChooser{Spec: spec})
	if len(patterns) != 1 {
		t.Fatalf("got %d patterns, want 1 (chooser must pick one)", len(patterns))
	}
	if patterns[0].Collective.Operands[0].Name != "b" {
		t.Fatalf("chooser picked %s, want the larger collective on b", patterns[0].Collective.Operands[0].Name)
	}
}

func TestCostChooserPrefersSmallerShardWhenEinsumFasterThanBoth(t *testing.T) {
	// When the einsum is faster than both collectives, neither transfer
	// can be fully hidden; §5.5 then minimizes the unhidden loop
	// prologue/epilogue by picking the smaller circulated shard.
	c := hlo.NewComputation("two_ag_slowlinks")
	a := c.Parameter(0, "a", []int{16, 512})
	b := c.Parameter(1, "b", []int{512, 64})
	fa := c.AllGather(a, 0, ringGroups(2))
	fb := c.AllGather(b, 1, ringGroups(2))
	c.Einsum("mk,kn->mn", fa, fb)
	spec := machine.TPUv4()
	spec.LinkBandwidth = 1e6 // slow links: einsum faster than both
	patterns := FindPatterns(c, CostChooser{Spec: spec})
	if len(patterns) != 1 {
		t.Fatalf("got %d patterns", len(patterns))
	}
	// Shards: a is 16x512 = 8192 elems, b is 512x64 = 32768 elems.
	if patterns[0].Collective.Operands[0].Name != "a" {
		t.Fatalf("chooser picked %s, want the smaller shard a", patterns[0].Collective.Operands[0].Name)
	}
}

func TestEvaluateReduceScatterCounts(t *testing.T) {
	// RS decomposition sends N shards (Algorithm 1 sends every
	// iteration), vs N-1 for AllGather.
	rng := ringGroups(4)
	c := hlo.NewComputation("rs_cm")
	a := c.Parameter(0, "a", []int{64, 128})
	b := c.Parameter(1, "b", []int{128, 256})
	ein := c.Einsum("mk,kn->mn", a, b)
	c.ReduceScatter(ein, 0, rng)
	ps := FindPatterns(c, FirstChooser{})
	if len(ps) != 1 {
		t.Fatal("no RS pattern")
	}
	opts := DefaultOptions(machine.TPUv4())
	opts.Bidirectional = false
	opts.Unroll = false
	d := Evaluate(ps[0], opts)
	shard := ps[0].Collective.ByteSize()
	wantRing := 4 * opts.Spec.TransferTime(shard, 1)
	if diff := d.CommRing - wantRing; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("RS ring time = %v, want %v", d.CommRing, wantRing)
	}
}
