package hlo

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"overlap/internal/tensor"
)

// Parse reads the text produced by Computation.Format back into a
// Computation, including fusion and loop bodies. Together with Format
// it gives the IR a stable textual exchange form: dumps from hlodump
// can be edited and re-loaded, and golden tests can assert on program
// text.
func Parse(text string) (*Computation, error) {
	lines := strings.Split(text, "\n")
	// Drop leading comment/blank lines (hlodump prefixes reports with
	// // comments) and trailing blanks.
	for len(lines) > 0 {
		t := strings.TrimSpace(lines[0])
		if t == "" || strings.HasPrefix(t, "//") {
			lines = lines[1:]
			continue
		}
		break
	}
	for len(lines) > 0 && strings.TrimSpace(lines[len(lines)-1]) == "" {
		lines = lines[:len(lines)-1]
	}
	c, rest, err := parseComputation(lines)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("hlo: trailing content after computation: %q", rest[0])
	}
	return c, nil
}

var (
	headerRe = regexp.MustCompile(`^(\S+) \{$`)
	instrRe  = regexp.MustCompile(`^  %(\S+) = f32\[([0-9 ]*)\] ([a-z-]+)\(([^)]*)\)(?:, (.*))?$`)
	offsetRe = regexp.MustCompile(`^\(\((-?\d+)\*\(pid/(\d+)\)\+(?:(-?\d+)\*i\+)?(-?\d+)\)%(-?\d+)\)\*(-?\d+)$`)
	pairRe   = regexp.MustCompile(`\{(-?\d+),(-?\d+)\}`)
)

// parseComputation consumes one "name { ... }" block from lines and
// returns the remaining lines.
func parseComputation(lines []string) (*Computation, []string, error) {
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("hlo: empty input")
	}
	m := headerRe.FindStringSubmatch(strings.TrimRight(lines[0], " "))
	if m == nil {
		return nil, nil, fmt.Errorf("hlo: expected computation header, got %q", lines[0])
	}
	c := NewComputation(m[1])
	byName := map[string]*Instruction{}
	i := 1
	for ; i < len(lines); i++ {
		line := strings.TrimRight(lines[i], " ")
		if line == "}" {
			return c, lines[i+1:], nil
		}
		im := instrRe.FindStringSubmatch(line)
		if im == nil {
			return nil, nil, fmt.Errorf("hlo: cannot parse instruction line %q", line)
		}
		name, shapeStr, opName, operandStr, attrStr := im[1], im[2], im[3], im[4], im[5]
		op, ok := opByName(opName)
		if !ok {
			return nil, nil, fmt.Errorf("hlo: unknown opcode %q", opName)
		}
		shape, err := parseInts(shapeStr)
		if err != nil {
			return nil, nil, fmt.Errorf("hlo: bad shape in %q: %w", line, err)
		}
		in := &Instruction{Op: op, Name: name, Shape: shape}
		for _, opName := range splitOperands(operandStr) {
			ref, ok := byName[strings.TrimPrefix(opName, "%")]
			if !ok {
				return nil, nil, fmt.Errorf("hlo: %s references undefined operand %s", name, opName)
			}
			in.Operands = append(in.Operands, ref)
		}
		if err := applyAttrs(in, attrStr); err != nil {
			return nil, nil, fmt.Errorf("hlo: %s: %w", name, err)
		}

		// A fusion or loop is followed by its indented body.
		if op == OpFusion || op == OpLoop {
			var bodyLines []string
			j := i + 1
			for ; j < len(lines); j++ {
				trimmed := lines[j]
				if !strings.HasPrefix(trimmed, "    | ") {
					break
				}
				bodyLines = append(bodyLines, strings.TrimPrefix(trimmed, "    | "))
			}
			body, rest, err := parseComputation(bodyLines)
			if err != nil {
				return nil, nil, fmt.Errorf("hlo: body of %s: %w", name, err)
			}
			if len(rest) != 0 {
				return nil, nil, fmt.Errorf("hlo: body of %s has trailing lines", name)
			}
			in.Body = body
			i = j - 1
		}

		built := c.build(in)
		byName[built.Name] = built
	}
	return nil, nil, fmt.Errorf("hlo: computation %s not closed", c.Name)
}

func opByName(name string) (OpCode, bool) {
	for op, n := range opNames {
		if n == name {
			return op, true
		}
	}
	return OpInvalid, false
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ", ")
	return parts
}

// applyAttrs decodes the printer's attribute text onto the instruction.
func applyAttrs(in *Instruction, attrs string) error {
	if attrs == "" {
		return nil
	}
	switch in.Op {
	case OpParameter:
		return scanInt(attrs, "index=%d", &in.ParamIndex)
	case OpConstant:
		vals, err := parseFloats(cut(attrs, "value="))
		if err != nil {
			return err
		}
		in.Literal = tensor.FromValues(in.Shape, vals)
		return nil
	case OpEinsum:
		spec, err := strconv.Unquote(cut(attrs, "spec="))
		if err != nil {
			return fmt.Errorf("bad einsum spec %q: %w", attrs, err)
		}
		in.EinsumSpec = spec
		return nil
	case OpConcat:
		return scanInt(attrs, "axis=%d", &in.Axis)
	case OpPad:
		lowStr, rest, ok := strings.Cut(cut(attrs, "low="), " high=")
		if !ok {
			return fmt.Errorf("bad pad attrs %q", attrs)
		}
		highStr, valStr, ok := strings.Cut(rest, " value=")
		if !ok {
			return fmt.Errorf("bad pad attrs %q", attrs)
		}
		var err error
		if in.PadLow, err = parseInts(strings.Trim(lowStr, "[]")); err != nil {
			return err
		}
		if in.PadHigh, err = parseInts(strings.Trim(highStr, "[]")); err != nil {
			return err
		}
		if in.PadValue, err = strconv.ParseFloat(valStr, 64); err != nil {
			return err
		}
		return nil
	case OpSlice:
		body := strings.TrimSuffix(strings.TrimPrefix(cut(attrs, "bounds="), "[["), "]]")
		startStr, limitStr, ok := strings.Cut(body, "]:[")
		if !ok {
			return fmt.Errorf("bad slice bounds %q", attrs)
		}
		var err error
		if in.Starts, err = parseInts(startStr); err != nil {
			return err
		}
		if in.Limits, err = parseInts(limitStr); err != nil {
			return err
		}
		return nil
	case OpDynamicSlice:
		offStr, sizeStr, ok := strings.Cut(cut(attrs, "offsets="), " sizes=")
		if !ok {
			return fmt.Errorf("bad dynamic-slice attrs %q", attrs)
		}
		var err error
		if in.Offsets, err = parseOffsets(offStr); err != nil {
			return err
		}
		if in.SliceSizes, err = parseInts(strings.Trim(sizeStr, "[]")); err != nil {
			return err
		}
		return nil
	case OpDynamicUpdateSlice:
		var err error
		in.Offsets, err = parseOffsets(cut(attrs, "offsets="))
		return err
	case OpTranspose:
		var err error
		in.Perm, err = parseInts(strings.Trim(cut(attrs, "perm="), "[]"))
		return err
	case OpAllGather, OpReduceScatter, OpAllToAll:
		axisStr, groupStr, ok := strings.Cut(cut(attrs, "axis="), " groups=")
		if !ok {
			return fmt.Errorf("bad collective attrs %q", attrs)
		}
		axis, err := strconv.Atoi(axisStr)
		if err != nil {
			return err
		}
		in.CollectiveAxis = axis
		if in.Op == OpAllToAll {
			in.Axis = axis // printer emits the split axis; concat axis matches for parsed text
		}
		in.Groups, err = parseGroups(groupStr)
		return err
	case OpAllReduce:
		var err error
		in.Groups, err = parseGroups(cut(attrs, "groups="))
		return err
	case OpCollectivePermute, OpCollectivePermuteStart, OpCollectivePermuteDone:
		for _, m := range pairRe.FindAllStringSubmatch(attrs, -1) {
			src, _ := strconv.Atoi(m[1])
			dst, _ := strconv.Atoi(m[2])
			in.Pairs = append(in.Pairs, SourceTargetPair{Source: src, Target: dst})
		}
		return nil
	case OpLoop:
		tripStr, resStr, ok := strings.Cut(cut(attrs, "trip="), " result=")
		if !ok {
			return fmt.Errorf("bad loop attrs %q", attrs)
		}
		var err error
		if in.TripCount, err = strconv.Atoi(tripStr); err != nil {
			return err
		}
		in.ResultIndex, err = strconv.Atoi(resStr)
		return err
	}
	return nil
}

func cut(s, prefix string) string {
	return strings.TrimPrefix(s, prefix)
}

func scanInt(s, format string, out *int) error {
	_, err := fmt.Sscanf(s, format, out)
	return err
}

func parseInts(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	fields := strings.Fields(s)
	out := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out[i] = v
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	s = strings.Trim(strings.TrimSpace(s), "[]")
	if s == "" {
		return nil, nil
	}
	fields := strings.Fields(s)
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", f)
		}
		out[i] = v
	}
	return out, nil
}

// parseOffsets decodes the printer's {expr,expr,...} offset list. Plain
// integers become constant offsets; the symbolic form recovers every
// DynOffset field.
func parseOffsets(s string) ([]DynOffset, error) {
	s = strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(s), "{"), "}")
	if s == "" {
		return nil, nil
	}
	// Split on commas that are not inside parentheses.
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])

	out := make([]DynOffset, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if v, err := strconv.Atoi(p); err == nil {
			out[i] = DynOffset{Add: v, Scale: 1}
			continue
		}
		m := offsetRe.FindStringSubmatch(p)
		if m == nil {
			return nil, fmt.Errorf("bad offset expression %q", p)
		}
		atoi := func(s string) int {
			v, _ := strconv.Atoi(s)
			return v
		}
		out[i] = DynOffset{
			PIDFactor:  atoi(m[1]),
			Div:        atoi(m[2]),
			IterFactor: atoi(m[3]), // empty → 0
			Add:        atoi(m[4]),
			Mod:        atoi(m[5]),
			Scale:      atoi(m[6]),
		}
	}
	return out, nil
}

// parseGroups decodes fmt's [][]int rendering, e.g. "[[0 1] [2 3]]".
func parseGroups(s string) ([][]int, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[[") || !strings.HasSuffix(s, "]]") {
		return nil, fmt.Errorf("bad groups %q", s)
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(s, "[["), "]]")
	var groups [][]int
	for _, g := range strings.Split(inner, "] [") {
		ints, err := parseInts(g)
		if err != nil {
			return nil, err
		}
		groups = append(groups, ints)
	}
	return groups, nil
}
