// Package obs is the unified telemetry subsystem: a lightweight metrics
// registry (counters, gauges, fixed-bucket histograms — zero-allocation
// on the hot path, safe for concurrent use by the per-device runtime
// goroutines), exporters for the Prometheus text exposition format and
// a stable JSON schema, an optional HTTP /metrics endpoint for
// long-running tuning sessions, and an overlap-attribution analyzer
// that consumes per-device span streams and reports, per collective
// instruction, how much of its wire time was hidden under which partial
// einsum versus exposed as a stall — the per-op analogue of the paper's
// Figure 9.
//
// The package is a leaf: it imports only the standard library, so the
// simulator (internal/sim), the concurrent runtime (internal/runtime)
// and the autotuner (internal/autotune) all instrument themselves
// through it without import cycles. They share one process-wide default
// registry (Default), which the overlap facade surfaces as
// overlap.Metrics and the CLIs export via -metrics-out / -serve.
package obs

import "sync"

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry that the simulator, the
// runtime and the autotuner record into. The first call creates it.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}
