package tensor

import (
	"fmt"
	"strings"
)

// EinsumSpec is a parsed Einstein-summation specification such as
// "bf,fh->bh". Each operand is described by a string of single-letter
// dimension labels; labels absent from the output are contracted
// (summed). A label may not repeat within a single operand.
type EinsumSpec struct {
	Inputs []string // one label string per operand
	Output string   // label string of the result
}

// ParseEinsum parses a spec of the form "lhs,rhs->out" (or a
// single-operand "in->out").
func ParseEinsum(spec string) (EinsumSpec, error) {
	parts := strings.Split(spec, "->")
	if len(parts) != 2 {
		return EinsumSpec{}, fmt.Errorf("einsum: spec %q must contain exactly one '->'", spec)
	}
	s := EinsumSpec{Inputs: strings.Split(parts[0], ","), Output: parts[1]}
	if len(s.Inputs) < 1 || len(s.Inputs) > 2 {
		return EinsumSpec{}, fmt.Errorf("einsum: spec %q must have one or two operands", spec)
	}
	seenAnywhere := map[byte]bool{}
	for _, in := range s.Inputs {
		seenHere := map[byte]bool{}
		for i := 0; i < len(in); i++ {
			c := in[i]
			if !isLabel(c) {
				return EinsumSpec{}, fmt.Errorf("einsum: invalid label %q in spec %q", c, spec)
			}
			if seenHere[c] {
				return EinsumSpec{}, fmt.Errorf("einsum: repeated label %q within one operand of %q", c, spec)
			}
			seenHere[c] = true
			seenAnywhere[c] = true
		}
	}
	for i := 0; i < len(s.Output); i++ {
		c := s.Output[i]
		if !isLabel(c) {
			return EinsumSpec{}, fmt.Errorf("einsum: invalid output label %q in spec %q", c, spec)
		}
		if !seenAnywhere[c] {
			return EinsumSpec{}, fmt.Errorf("einsum: output label %q not present in any operand of %q", c, spec)
		}
		if strings.Count(s.Output, string(c)) > 1 {
			return EinsumSpec{}, fmt.Errorf("einsum: repeated output label %q in %q", c, spec)
		}
	}
	return s, nil
}

func isLabel(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// String reassembles the canonical spec text.
func (s EinsumSpec) String() string {
	return strings.Join(s.Inputs, ",") + "->" + s.Output
}

// ContractedLabels returns the labels summed away by the spec, in
// first-appearance order.
func (s EinsumSpec) ContractedLabels() string {
	var out []byte
	seen := map[byte]bool{}
	for _, in := range s.Inputs {
		for i := 0; i < len(in); i++ {
			c := in[i]
			if !seen[c] && !strings.ContainsRune(s.Output, rune(c)) {
				out = append(out, c)
			}
			seen[c] = true
		}
	}
	return string(out)
}

// BatchLabels returns labels that appear in every operand and in the
// output (the einsum batch dimensions).
func (s EinsumSpec) BatchLabels() string {
	if len(s.Inputs) < 2 {
		return ""
	}
	var out []byte
	for i := 0; i < len(s.Inputs[0]); i++ {
		c := s.Inputs[0][i]
		if strings.ContainsRune(s.Inputs[1], rune(c)) && strings.ContainsRune(s.Output, rune(c)) {
			out = append(out, c)
		}
	}
	return string(out)
}

// OutputShape computes the result shape of applying the spec to operands
// with the given shapes, validating label-size consistency.
func (s EinsumSpec) OutputShape(shapes ...[]int) ([]int, error) {
	sizes, err := s.labelSizes(shapes)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(s.Output))
	for i := 0; i < len(s.Output); i++ {
		out[i] = sizes[s.Output[i]]
	}
	return out, nil
}

// Flops returns the floating-point operation count of evaluating the spec
// on the given operand shapes, using the standard 2*prod(label sizes)
// multiply-accumulate convention for two-operand einsums.
func (s EinsumSpec) Flops(shapes ...[]int) (int64, error) {
	sizes, err := s.labelSizes(shapes)
	if err != nil {
		return 0, err
	}
	total := int64(1)
	for _, size := range sizes {
		total *= int64(size)
	}
	if len(s.Inputs) == 2 {
		total *= 2
	}
	return total, nil
}

func (s EinsumSpec) labelSizes(shapes [][]int) (map[byte]int, error) {
	if len(shapes) != len(s.Inputs) {
		return nil, fmt.Errorf("einsum: %s expects %d operands, got %d", s, len(s.Inputs), len(shapes))
	}
	sizes := map[byte]int{}
	for op, labels := range s.Inputs {
		if len(labels) != len(shapes[op]) {
			return nil, fmt.Errorf("einsum: operand %d of %s has rank %d, want %d", op, s, len(shapes[op]), len(labels))
		}
		for i := 0; i < len(labels); i++ {
			c := labels[i]
			if prev, ok := sizes[c]; ok && prev != shapes[op][i] {
				return nil, fmt.Errorf("einsum: label %q size mismatch %d vs %d in %s", c, prev, shapes[op][i], s)
			}
			sizes[c] = shapes[op][i]
		}
	}
	return sizes, nil
}

// Einsum evaluates spec on the operands. It panics on malformed specs or
// mismatched shapes; the HLO verifier catches those earlier in compiler
// flows, so a failure here indicates an internal bug. The spec's parse
// and GEMM lowering are cached per spec string, so repeated executions
// (the interpreter and runtime evaluate the same instruction every step)
// skip straight to the kernel.
func Einsum(spec string, operands ...*Tensor) *Tensor {
	return EinsumSplitK(SplitKInherit, spec, operands...)
}

// EinsumSplitK is Einsum with an explicit split-K factor for this call:
// SplitKInherit follows the process-wide setting, 0/1 forces the split
// off, >= 2 forces that factor (clamped). Per-run executors use it so a
// tuned plan's factor travels with the run instead of through the
// mutable global.
func EinsumSplitK(splitK int, spec string, operands ...*Tensor) *Tensor {
	e, err := einsumLookup(spec)
	if err != nil {
		panic(err)
	}
	out, err := einsumExec(e, operands, splitK)
	if err != nil {
		panic(err)
	}
	return out
}

// ReferenceEinsum evaluates spec on the operands through the odometer
// reference path unconditionally, bypassing the GEMM kernel engine. It
// exists for differential tests and benchmarks (the kernel's results
// are byte-identical to it by contract); production callers use Einsum.
func ReferenceEinsum(spec string, operands ...*Tensor) *Tensor {
	e, err := einsumLookup(spec)
	if err != nil {
		panic(err)
	}
	out, err := newEinsumOutput(e.spec, operands)
	if err != nil {
		panic(err)
	}
	einsumReference(out, e.spec, operands)
	return out
}

// EinsumParsed evaluates a pre-parsed spec on the operands.
func EinsumParsed(spec EinsumSpec, operands ...*Tensor) (*Tensor, error) {
	e, err := einsumLookup(spec.String())
	if err != nil {
		return nil, err
	}
	return einsumExec(e, operands, SplitKInherit)
}

// newEinsumOutput validates the operand shapes and returns the zeroed
// result tensor.
func newEinsumOutput(spec EinsumSpec, operands []*Tensor) (*Tensor, error) {
	shapes := make([][]int, len(operands))
	for i, op := range operands {
		shapes[i] = op.shape
	}
	if _, err := spec.labelSizes(shapes); err != nil {
		return nil, err
	}
	outShape, err := spec.OutputShape(shapes...)
	if err != nil {
		return nil, err
	}
	return New(outShape...), nil
}

// einsumExec validates shapes and runs the fastest applicable path:
// the blocked GEMM kernel for lowerable two-operand specs, otherwise
// the odometer reference.
func einsumExec(e *einsumEntry, operands []*Tensor, splitK int) (*Tensor, error) {
	out, err := newEinsumOutput(e.spec, operands)
	if err != nil {
		return nil, err
	}
	t0, timed := kernelTimerStart()
	if len(operands) == 2 && e.plan.ok {
		e.plan.run(out, operands[0], operands[1], KernelWorkers(), splitK)
		kernelGemmOps.Inc()
	} else {
		einsumReference(out, e.spec, operands)
		kernelFallbackOps.Inc()
	}
	kernelTimerEnd(t0, timed)
	return out, nil
}

// einsumReference accumulates the spec's terms into out with the scalar
// odometer loop — the original correctness-substrate path, kept as the
// fallback for specs the GEMM engine cannot lower and as the oracle the
// kernel's differential tests compare against. It adds onto out's
// existing contents (a zeroed tensor yields the plain einsum), visiting
// each output element's contracted terms in row-major order over the
// contracted labels.
func einsumReference(out *Tensor, spec EinsumSpec, operands []*Tensor) {
	shapes := make([][]int, len(operands))
	for i, op := range operands {
		shapes[i] = op.shape
	}
	sizes, err := spec.labelSizes(shapes)
	if err != nil {
		panic(err) // callers validated already; this is an internal bug
	}

	// The iteration space is output labels followed by contracted labels.
	// For each operand (and the output) we precompute a per-position
	// stride so offsets can be maintained incrementally as the odometer
	// advances — O(1) work per step instead of re-deriving indices.
	labels := spec.Output + spec.ContractedLabels()
	dims := make([]int, len(labels))
	for i := 0; i < len(labels); i++ {
		dims[i] = sizes[labels[i]]
	}
	strideFor := func(opLabels string, strides []int) []int {
		res := make([]int, len(labels))
		for i := 0; i < len(labels); i++ {
			for j := 0; j < len(opLabels); j++ {
				if opLabels[j] == labels[i] {
					res[i] = strides[j]
				}
			}
		}
		return res
	}
	outStride := strideFor(spec.Output, out.strides)
	opStrides := make([][]int, len(operands))
	for i, op := range operands {
		opStrides[i] = strideFor(spec.Inputs[i], op.strides)
	}

	total := 1
	for _, d := range dims {
		total *= d
	}
	if total == 0 {
		return
	}
	odometer := make([]int, len(labels))
	offsets := make([]int, len(operands))
	outOff := 0
	for step := 0; ; step++ {
		term := 1.0
		for i, op := range operands {
			term *= op.data[offsets[i]]
		}
		out.data[outOff] += term
		// Advance the odometer, updating offsets incrementally.
		pos := len(labels) - 1
		for ; pos >= 0; pos-- {
			odometer[pos]++
			if odometer[pos] < dims[pos] {
				for i := range operands {
					offsets[i] += opStrides[i][pos]
				}
				outOff += outStride[pos]
				break
			}
			odometer[pos] = 0
			for i := range operands {
				offsets[i] -= (dims[pos] - 1) * opStrides[i][pos]
			}
			outOff -= (dims[pos] - 1) * outStride[pos]
		}
		if pos < 0 {
			break
		}
	}
}
