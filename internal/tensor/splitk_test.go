package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

// splitOracleMatmul is the scalar oracle for the split-K contract on a
// 2D matmul: K cut at the same i·K/s boundaries, each chunk
// accumulated per element in ascending k, chunks combined by the same
// fixed stride-doubling tree, folded onto a zero output. Written with
// plain loops and no shared code with the engine, so agreement is
// evidence rather than tautology.
func splitOracleMatmul(x, y *Tensor, s int) *Tensor {
	m, k, n := x.Dim(0), x.Dim(1), y.Dim(1)
	parts := make([][]float64, s)
	for i := range parts {
		p := make([]float64, m*n)
		k0, k1 := i*k/s, (i+1)*k/s
		for r := 0; r < m; r++ {
			for kk := k0; kk < k1; kk++ {
				a := x.At(r, kk)
				for c := 0; c < n; c++ {
					p[r*n+c] += a * y.At(kk, c)
				}
			}
		}
		parts[i] = p
	}
	for gap := 1; gap < s; gap *= 2 {
		for i := 0; i+gap < s; i += 2 * gap {
			for j := range parts[i] {
				parts[i][j] += parts[i+gap][j]
			}
		}
	}
	out := New(m, n)
	for j, v := range parts[0] {
		out.data[j] += v
	}
	return out
}

// TestSplitKMatchesOracleFuzz is the differential test backing split-K
// determinism: for randomized skinny shapes, factors and worker
// counts, the engine must produce exactly the oracle's bytes whenever
// the shape gate accepts the factor, and exactly the plain reference
// when it does not. The gate itself (splitFactor) is consulted
// directly, so a gate/dispatch mismatch fails here too.
func TestSplitKMatchesOracleFuzz(t *testing.T) {
	defer SetKernelSplitK(0)
	defer SetKernelWorkers(0)
	rng := rand.New(rand.NewSource(21))
	workerChoices := []int{1, 2, 3, runtime.GOMAXPROCS(0)}
	split := 0
	for iter := 0; iter < 200; iter++ {
		m := 1 + rng.Intn(8)
		k := 32 + rng.Intn(600)
		n := 1 + rng.Intn(64)
		s := 2 + rng.Intn(7)
		x := Rand(rng, m, k)
		y := Rand(rng, k, n)
		SetKernelSplitK(s)
		SetKernelWorkers(workerChoices[rng.Intn(len(workerChoices))])
		got := Einsum("mk,kn->mn", x, y)
		var want *Tensor
		if eff := splitFactor(m, k, n, SplitKInherit); eff > 1 {
			split++
			want = splitOracleMatmul(x, y, eff)
		} else {
			want = ReferenceEinsum("mk,kn->mn", x, y)
		}
		if !got.Equal(want) {
			t.Fatalf("m=%d k=%d n=%d s=%d: engine differs from oracle (max diff %g)",
				m, k, n, s, got.MaxDifference(want))
		}
	}
	if split == 0 {
		t.Fatal("fuzz never passed the split-K gate")
	}
}

// TestSplitKWorkerCountDeterminism pins the contract the factor is
// allowed to exist under: for a fixed factor, result bytes are
// identical at every worker count, for direct and packed layouts —
// and identical to the scalar oracle.
func TestSplitKWorkerCountDeterminism(t *testing.T) {
	defer SetKernelSplitK(0)
	defer SetKernelWorkers(0)
	rng := rand.New(rand.NewSource(22))
	const m, k, n = 4, 1024, 64
	x := Rand(rng, m, k)
	y := Rand(rng, k, n)
	yT := Rand(rng, n, k)
	counts := []int{1, 2, 3, 5, runtime.GOMAXPROCS(0)}
	for _, s := range []int{2, 3, 4, 5, 8} {
		SetKernelSplitK(s)
		if splitFactor(m, k, n, SplitKInherit) != s {
			t.Fatalf("factor %d did not pass the gate for m=%d k=%d n=%d", s, m, k, n)
		}
		want := splitOracleMatmul(x, y, s)
		for _, w := range counts {
			SetKernelWorkers(w)
			if got := Einsum("mk,kn->mn", x, y); !got.Equal(want) {
				t.Fatalf("factor %d, %d workers: bytes differ from oracle", s, w)
			}
		}
		// Packed rhs layout: same tree, packing must not change bytes.
		var base *Tensor
		for _, w := range counts {
			SetKernelWorkers(w)
			got := Einsum("mk,nk->mn", x, yT)
			if base == nil {
				base = got
			} else if !got.Equal(base) {
				t.Fatalf("factor %d, %d workers: packed-layout bytes vary with workers", s, w)
			}
		}
	}
}

// TestSplitKExactOnDyadicValues: on integer-valued operands every
// partial sum is exact, so reassociation cannot round differently and
// split-K must equal the plain reference bit for bit — the property
// the train package's dyadic gradient fixtures rely on.
func TestSplitKExactOnDyadicValues(t *testing.T) {
	defer SetKernelSplitK(0)
	rng := rand.New(rand.NewSource(23))
	const m, k, n = 2, 512, 32
	x, y := New(m, k), New(k, n)
	for i := range x.data {
		x.data[i] = float64(rng.Intn(17) - 8)
	}
	for i := range y.data {
		y.data[i] = float64(rng.Intn(17) - 8)
	}
	want := ReferenceEinsum("mk,kn->mn", x, y)
	for _, s := range []int{2, 4, 8} {
		SetKernelSplitK(s)
		if got := Einsum("mk,kn->mn", x, y); !got.Equal(want) {
			t.Fatalf("factor %d: integer-valued split-K differs from reference", s)
		}
	}
}

// TestSplitKCloseToReference bounds the reassociation error on random
// floats: different factors may legitimately round differently, but
// the tree reduction must stay within a few ulps of the ascending-k
// reference.
func TestSplitKCloseToReference(t *testing.T) {
	defer SetKernelSplitK(0)
	rng := rand.New(rand.NewSource(24))
	const m, k, n = 8, 2048, 32
	x := Rand(rng, m, k)
	y := Rand(rng, k, n)
	want := ReferenceEinsum("mk,kn->mn", x, y)
	for _, s := range []int{2, 4, 16} {
		SetKernelSplitK(s)
		got := Einsum("mk,kn->mn", x, y)
		if d := got.MaxDifference(want); d > 1e-10 {
			t.Fatalf("factor %d: split-K drifts %g from reference", s, d)
		}
	}
}

// TestSplitKAccumulatesOntoPrior verifies the fused-accumulate form:
// split-K lands on the accumulator as prior + tree(chunks), matching
// the oracle folded onto the same prior.
func TestSplitKAccumulatesOntoPrior(t *testing.T) {
	defer SetKernelSplitK(0)
	rng := rand.New(rand.NewSource(25))
	const m, k, n = 4, 512, 32
	x := Rand(rng, m, k)
	y := Rand(rng, k, n)
	acc := Rand(rng, m, n)
	want := acc.Clone()
	oracle := splitOracleMatmul(x, y, 4)
	for j := range want.data {
		want.data[j] += oracle.data[j]
	}
	SetKernelSplitK(4)
	if got := EinsumAddInto(acc.Clone(), "mk,kn->mn", x, y); !got.Equal(want) {
		t.Fatal("split-K EinsumAddInto differs from oracle folded onto the prior accumulator")
	}
}

// TestKernelStrategyGrid is the bitwise contract over the whole
// strategy space: for every (spec, split factor) cell, the result
// bytes are identical across worker counts and pack-cache settings,
// and the factor-0 cell equals the scalar reference exactly.
func TestKernelStrategyGrid(t *testing.T) {
	defer SetKernelSplitK(0)
	defer SetKernelWorkers(0)
	defer SetPackCache(true)
	rng := rand.New(rand.NewSource(26))
	specs := []struct {
		spec     string
		lhs, rhs []int
	}{
		{"mk,kn->mn", []int{8, 512}, []int{512, 64}}, // direct
		{"mk,nk->mn", []int{8, 512}, []int{64, 512}}, // rhs packed
		{"km,kn->mn", []int{512, 8}, []int{512, 64}}, // lhs packed
	}
	for _, tc := range specs {
		lhs := Rand(rng, tc.lhs...)
		rhs := Rand(rng, tc.rhs...)
		for _, s := range []int{0, 2, 4} {
			SetKernelSplitK(s)
			var base *Tensor
			for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				for _, cache := range []bool{true, false} {
					SetKernelWorkers(w)
					SetPackCache(cache)
					got := Einsum(tc.spec, lhs, rhs)
					if base == nil {
						base = got
					} else if !got.Equal(base) {
						t.Fatalf("%s splitk=%d workers=%d cache=%v: bytes differ within cell",
							tc.spec, s, w, cache)
					}
				}
			}
			if s == 0 {
				if want := ReferenceEinsum(tc.spec, lhs, rhs); !base.Equal(want) {
					t.Fatalf("%s splitk=0: differs from scalar reference", tc.spec)
				}
			}
		}
	}
}

// TestSplitFactorGate pins the eligibility rules: worker-independent,
// rows-bounded, chunk-floor and flops-floor gated.
func TestSplitFactorGate(t *testing.T) {
	defer SetKernelSplitK(0)
	SetKernelSplitK(4)
	cases := []struct {
		rows, k, n, want int
	}{
		{4, 1024, 64, 4},  // skinny: eligible
		{64, 1024, 64, 0}, // too many rows
		{4, 60, 64, 0},    // chunks below the floor (60 < 4*16)
		{1, 256, 8, 0},    // below the flops floor
		{1, 4096, 64, 4},  // single row, long K: the motivating shape
	}
	for _, tc := range cases {
		if got := splitFactor(tc.rows, tc.k, tc.n, SplitKInherit); got != tc.want {
			t.Errorf("splitFactor(%d,%d,%d) = %d, want %d", tc.rows, tc.k, tc.n, got, tc.want)
		}
	}
	SetKernelSplitK(0)
	if got := splitFactor(4, 1024, 64, SplitKInherit); got != 0 {
		t.Errorf("splitFactor with factor unset = %d, want 0", got)
	}
	SetKernelSplitK(1)
	if got := splitFactor(4, 1024, 64, SplitKInherit); got != 0 {
		t.Errorf("splitFactor with factor 1 = %d, want 0", got)
	}
}
