// inference reproduces the §7.1 case study: a small recommendation-
// style MLP served with 2-way intra-layer model parallelism, where
// hiding the weight gathers behind the previous layer's computation
// reduces serving latency.
//
// Run with: go run ./examples/inference
package main

import (
	"fmt"
	"log"

	"overlap"
)

func main() {
	out, err := overlap.RunExperiment("inference", overlap.TPUv4())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	fmt.Println()
	fmt.Println("Note: at 2-way parallelism the decomposed ring can use only one")
	fmt.Println("link direction per shard hop, so the model's latency improvement")
	fmt.Println("saturates near 1.5x; the paper reports 2x for its (undisclosed)")
	fmt.Println("in-house model. See EXPERIMENTS.md.")
}
