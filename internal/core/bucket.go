package core

import (
	"fmt"

	"overlap/internal/hlo"
)

// BucketInfo describes one gradient bucket the bucketing pass formed.
type BucketInfo struct {
	// Name is the bucket's instruction-name prefix ("gbkt0", "gbkt1",
	// …); every CollectivePermute the bucket emits carries it, so trace
	// spans and overlap attribution can be rolled up per bucket.
	Name string `json:"name"`
	// Bytes is the flattened payload size (4-byte elements, matching
	// hlo.Instruction.ByteSize), before ring padding.
	Bytes int64 `json:"bytes"`
	// Members lists the original AllReduce instruction names, in
	// schedule order.
	Members []string `json:"members"`
}

// BucketAllReduces is the DDP-style gradient-bucketing pass: it groups
// ring AllReduces — in a training step, the per-weight gradient
// reductions the backward pass emits — into byte-bounded buckets and
// lowers each bucket directly to ring form: flatten + concatenate the
// members, a reduce-scatter phase of N CollectivePermute/Add steps,
// then an all-gather phase of N DynamicUpdateSlice/CollectivePermute
// steps, and finally slice each member's gradient back out.
//
// The payoff is the same as torch.DDP's bucketed async all-reduce: the
// emitted permutes are made asynchronous and scheduled like every other
// decomposed collective, so an early-layer bucket's wire time hides
// under later layers' backward einsums instead of serializing after the
// whole backward pass. A blocking AllReduce (or the ReduceScatter the
// SplitAllReduce canonicalization would leave on a Concat) matches
// neither collective-einsum pattern, which is why the bucket pass emits
// the decomposed form itself rather than deferring to FindPatterns.
//
// maxBytes bounds each bucket's payload (a single larger gradient still
// gets its own bucket). Only AllReduces whose groups form a ring of at
// least two devices are touched; members are grouped in schedule order
// and a bucket is cut early if adding a candidate would create a cycle
// (the candidate transitively depends on a current member's result).
// Summation order within a shard follows ring position exactly as in
// the Einsum-ReduceScatter decomposition.
func BucketAllReduces(c *hlo.Computation, maxBytes int64) []BucketInfo {
	type candidate struct {
		in   *hlo.Instruction
		ring RingInfo
	}
	var cands []candidate
	for _, in := range c.Instructions() {
		if in.Op != hlo.OpAllReduce {
			continue
		}
		if ring, ok := RingFromGroups(in.Groups); ok {
			cands = append(cands, candidate{in, ring})
		}
	}
	if len(cands) == 0 {
		return nil
	}

	// dependsOn reports whether instruction a transitively consumes b.
	memo := map[*hlo.Instruction]map[*hlo.Instruction]bool{}
	var dependsOn func(a, b *hlo.Instruction) bool
	dependsOn = func(a, b *hlo.Instruction) bool {
		if a == b {
			return true
		}
		if hit, ok := memo[a]; ok {
			return hit[b]
		}
		seen := map[*hlo.Instruction]bool{}
		stack := []*hlo.Instruction{a}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, op := range cur.Operands {
				if !seen[op] {
					seen[op] = true
					stack = append(stack, op)
				}
			}
		}
		memo[a] = seen
		return seen[b]
	}

	// Greedy grouping in schedule order: same ring, byte bound, no
	// member-to-member dependency.
	var buckets [][]candidate
	var cur []candidate
	var curBytes int64
	flush := func() {
		if len(cur) > 0 {
			buckets = append(buckets, cur)
			cur, curBytes = nil, 0
		}
	}
	for _, cand := range cands {
		bytes := cand.in.ByteSize()
		sameRing := len(cur) > 0 && ringEqual(cur[0].ring, cand.ring)
		depends := false
		for _, m := range cur {
			if dependsOn(cand.in, m.in) {
				depends = true
				break
			}
		}
		if len(cur) > 0 && (!sameRing || depends || curBytes+bytes > maxBytes) {
			flush()
		}
		cur = append(cur, cand)
		curBytes += bytes
	}
	flush()

	var infos []BucketInfo
	c.WithRootPreserved(func() {
		for bi, members := range buckets {
			ins := make([]*hlo.Instruction, len(members))
			for i, m := range members {
				ins[i] = m.in
			}
			infos = append(infos, emitBucket(c, fmt.Sprintf("gbkt%d", bi), members[0].ring, ins))
		}
		c.ScheduleStableTopological()
		c.RemoveDeadCode()
	})
	return infos
}

// emitBucket lowers one bucket of same-ring AllReduces to the expanded
// ring all-reduce and splices the results back in place of the members.
func emitBucket(c *hlo.Computation, name string, ring RingInfo, members []*hlo.Instruction) BucketInfo {
	info := BucketInfo{Name: name}
	firstNew := c.NumInstructions()

	// Flatten and concatenate the member payloads into one rank-1
	// bucket, padded so the ring shard divides evenly.
	flats := make([]*hlo.Instruction, len(members))
	total := 0
	for i, m := range members {
		elems := m.NumElements()
		flats[i] = c.Reshape(m.Operands[0], elems)
		total += elems
		info.Bytes += m.ByteSize()
		info.Members = append(info.Members, m.Name)
	}
	bucket := flats[0]
	if len(flats) > 1 {
		bucket = c.Concat(0, flats...)
	}
	n := ring.N
	padded := (total + n - 1) / n * n
	if padded != total {
		bucket = c.Pad(bucket, []int{0}, []int{padded - total}, 0)
	}
	shard := padded / n
	left := ring.ShiftPairs(-1)

	// Reduce-scatter phase, mirroring decomposeReduceScatter: the
	// accumulator shard circular-shifts left every step while ring
	// position pos adds the slice for shard (pos + i + 1) mod N, so
	// after N steps each device holds the fully reduced shard matching
	// its own position.
	defer c.SetBuildGroup(0)
	acc := c.Zeros("", []int{shard})
	for i := 0; i < n; i++ {
		c.NewBuildGroup()
		sent := c.CollectivePermute(acc, left)
		part := c.DynamicSlice(bucket, []hlo.DynOffset{ring.PosOffset(i+1, shard)}, []int{shard})
		acc = c.Add(sent, part)
	}

	// All-gather phase, mirroring decomposeAllGather: the reduced shard
	// circular-shifts left while each device deposits the shard it
	// holds — shard (pos + i) mod N at step i — into the full bucket.
	full := c.Zeros("", []int{padded})
	curShard := acc
	for i := 0; i < n; i++ {
		c.NewBuildGroup()
		full = c.DynamicUpdateSlice(full, curShard, []hlo.DynOffset{ring.PosOffset(i, shard)})
		if i < n-1 {
			curShard = c.CollectivePermute(curShard, left)
		}
	}

	// Brand every emitted instruction with the bucket prefix — the
	// permutes' names flow into trace spans (via MakeAsync's
	// name-inheritance) and make per-bucket attribution rollups
	// possible; the ID suffix keeps names unique.
	instrs := c.Instructions()
	for _, in := range instrs[firstNew:] {
		in.Name = fmt.Sprintf("%s.%s.%d", name, in.Op, in.ID)
	}

	// Slice each member's reduced gradient back out.
	offset := 0
	for i, m := range members {
		elems := m.NumElements()
		sl := c.Slice(full, []int{offset}, []int{offset + elems})
		res := c.Reshape(sl, m.Shape...)
		res.Name = fmt.Sprintf("%s.out.%d", name, i)
		c.ReplaceAllUsesWith(m, res)
		offset += elems
	}
	return info
}

func ringEqual(a, b RingInfo) bool {
	if a.N != b.N || a.Stride != b.Stride || len(a.Groups) != len(b.Groups) {
		return false
	}
	for i := range a.Groups {
		if len(a.Groups[i]) != len(b.Groups[i]) {
			return false
		}
		for j := range a.Groups[i] {
			if a.Groups[i][j] != b.Groups[i][j] {
				return false
			}
		}
	}
	return true
}
