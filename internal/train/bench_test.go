package train_test

import (
	"context"
	"testing"

	"overlap/internal/core"
	"overlap/internal/train"
)

// wallClockConfig sizes the miniature model so the partial einsums take
// real CPU time, and the injected wire delays (TimeScale below) make a
// blocking collective expensive — the regime where overlap pays.
func wallClockConfig(s train.Strategy) train.Config {
	return train.Config{Devices: 4, Layers: 2, Model: 32, Hidden: 128, Tokens: 96, Strategy: s}
}

// wallClockTimeScale stretches the modeled microsecond-scale transfers
// into tens of milliseconds, far above goroutine-scheduling noise.
const wallClockTimeScale = 30000

func stepSeconds(t testing.TB, s train.Strategy, pipeline *core.Options) float64 {
	res, err := train.Run(context.Background(), wallClockConfig(s), train.Options{
		Pipeline: pipeline, Steps: 1, Seed: 5, TimeScale: wallClockTimeScale,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Steps[0].StepSeconds
}

// rolledMegatron is the paper's no-overlap baseline for the tensor-
// parallel path: the same decomposed program emitted as a counted loop
// with blocking permutes, so the wire totals match and the measured gap
// is purely the software pipelining.
func rolledMegatron() core.Options {
	o := overlapOptions()
	o.Rolled = true
	return o
}

// TestOverlappedTrainStepFasterWallClock is the issue's performance
// acceptance, measured on the goroutine runtime at 4 devices, minimum
// of two repeats per cell to absorb scheduler jitter:
//
//   - DDP: the bucketed asynchronous gradient all-reduce must beat the
//     sequential bwd→all-reduce baseline (blocking collectives after
//     the backward pass) by at least 5% wall-clock.
//   - Megatron: the decomposed + scheduled step must beat the rolled
//     (blocking-loop) form of the same program by at least 5% — the
//     paper's own rolled-vs-decomposed comparison. A blocking AllGather
//     is not the interesting baseline here: the runtime already grants
//     it full ring bandwidth with no per-chunk latency, so decomposing
//     it buys overlap, not wire time.
func TestOverlappedTrainStepFasterWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison with scaled wire delays")
	}
	bucketed := overlapOptions()
	bucketed.GradBucketBytes = 32 << 10
	mega := overlapOptions()
	rolled := rolledMegatron()
	for _, tc := range []struct {
		name           string
		strategy       train.Strategy
		baseline, opts *core.Options
	}{
		{"megatron-vs-rolled", train.StrategyMegatron, &rolled, &mega},
		{"ddp-bucketed-vs-blocking", train.StrategyDDP, nil, &bucketed},
	} {
		baseline, overlapped := 0.0, 0.0
		for r := 0; r < 2; r++ {
			b := stepSeconds(t, tc.strategy, tc.baseline)
			o := stepSeconds(t, tc.strategy, tc.opts)
			if r == 0 || b < baseline {
				baseline = b
			}
			if r == 0 || o < overlapped {
				overlapped = o
			}
		}
		t.Logf("%s: baseline %.1fms, overlapped %.1fms (%.2fx)",
			tc.name, baseline*1e3, overlapped*1e3, baseline/overlapped)
		if overlapped >= baseline*0.95 {
			t.Errorf("%s: overlapped step (%.1fms) did not beat baseline (%.1fms) by 5%%",
				tc.name, overlapped*1e3, baseline*1e3)
		}
	}
}

// BenchmarkTrainStep times one training step per configuration on the
// goroutine runtime with scaled wire delays — the sequential baseline
// against both overlapped strategies.
func BenchmarkTrainStep(b *testing.B) {
	bucketed := overlapOptions()
	bucketed.GradBucketBytes = 32 << 10
	mega := overlapOptions()
	rolled := rolledMegatron()
	for _, bc := range []struct {
		name     string
		strategy train.Strategy
		opts     *core.Options
	}{
		{"rolled-megatron", train.StrategyMegatron, &rolled},
		{"overlap-megatron", train.StrategyMegatron, &mega},
		{"sequential-ddp", train.StrategyDDP, nil},
		{"overlap-ddp-bucketed", train.StrategyDDP, &bucketed},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sec := stepSeconds(b, bc.strategy, bc.opts)
				b.ReportMetric(sec*1e3, "ms/step")
			}
		})
	}
}
