package autotune

import (
	"math"

	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/sim"
)

// calibrate fits the machine spec to the stage-2 measurements so that
// simulated and measured step times track each other, and records the
// residual error of the fit.
//
// The runtime realizes modeled wire seconds as TimeScale-scaled sleeps
// but evaluates compute as real Go tensor math, so the two domains
// drift apart by independent factors. The fit therefore estimates three
// parameters from the measured breakdowns:
//
//   - effective compute throughput, from the measured vs predicted
//     compute spans (a through-origin least-squares slope);
//   - effective link bandwidth, from the wire spans the same way;
//   - per-op overhead, from the per-instruction step-time residual that
//     remains after the first two corrections.
//
// Each factor becomes a machine.Calibration throughput multiplier; the
// residual is the RMS relative step-time error of the re-simulated,
// calibrated spec against the measurements.
func calibrate(res *Result, numDevices int, opts Options) {
	ts := opts.TimeScale
	if ts <= 0 {
		return // wall-clock has no modeled-seconds axis to fit against
	}
	measured := []*Candidate{}
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if c.Executed && c.transformed != nil {
			measured = append(measured, c)
		}
	}
	if len(measured) == 0 {
		return
	}

	var predC, measC, predW, measW []float64
	for _, c := range measured {
		predC = append(predC, c.Predicted.Compute*ts)
		measC = append(measC, c.Measured.Compute)
		predW = append(predW, c.Predicted.CollectiveWire*ts)
		measW = append(measW, c.Measured.CollectiveWire)
	}
	slopeC := clampSlope(originSlope(predC, measC))
	slopeW := clampSlope(originSlope(predW, measW))

	cal := machine.Calibration{
		ComputeScale:  1 / slopeC,
		WireScale:     1 / slopeW,
		OverheadScale: 1,
	}

	// With compute and wire corrected, attribute the remaining step-time
	// residual to per-instruction issue overhead.
	partial := cal.Apply(opts.Spec)
	var xs, rs []float64
	for _, c := range measured {
		bd, err := sim.Simulate(c.transformed, numDevices, partial)
		if err != nil {
			continue
		}
		xs = append(xs, float64(opsPerDevice(c.transformed))*ts)
		rs = append(rs, c.MeasuredWall-bd.StepTime*ts)
	}
	var delta, den float64
	for i := range xs {
		delta += xs[i] * rs[i]
		den += xs[i] * xs[i]
	}
	if den > 0 {
		delta /= den
	}
	if opts.Spec.OpOverhead > 0 && den > 0 {
		newOvh := opts.Spec.OpOverhead + delta
		if newOvh < 0 {
			newOvh = 0
		}
		cal.OverheadScale = clampSlope(newOvh / opts.Spec.OpOverhead)
	}

	res.Calibration = cal
	res.CalibratedSpec = cal.Apply(opts.Spec)

	// Residual: how well the calibrated simulator now predicts the
	// measured step times.
	var sq float64
	n := 0
	for _, c := range measured {
		bd, err := sim.Simulate(c.transformed, numDevices, res.CalibratedSpec)
		if err != nil || c.MeasuredWall <= 0 {
			continue
		}
		rel := (bd.StepTime*ts - c.MeasuredWall) / c.MeasuredWall
		sq += rel * rel
		n++
	}
	if n > 0 {
		res.Residual = math.Sqrt(sq / float64(n))
	}
}

// originSlope returns the least-squares slope of y ≈ s·x through the
// origin, or 1 when x carries no signal.
func originSlope(x, y []float64) float64 {
	var num, den float64
	for i := range x {
		num += x[i] * y[i]
		den += x[i] * x[i]
	}
	if den == 0 {
		return 1
	}
	return num / den
}

func clampSlope(s float64) float64 {
	if math.IsNaN(s) || s <= 1e-6 {
		return 1e-6
	}
	if s > 1e6 {
		return 1e6
	}
	return s
}

// opsPerDevice counts the instructions one device issues in a step,
// expanding rolled loops by their trip count.
func opsPerDevice(c *hlo.Computation) int {
	n := 0
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpLoop && in.Body != nil {
			n += in.TripCount * len(in.Body.Instructions())
			continue
		}
		n++
	}
	return n
}
