package runtime_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/runtime"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// splitKCase builds a GEMM big enough to clear every split-K gate
// (skinny rows, deep contraction), so the factor genuinely changes the
// reduction order — and therefore the bit pattern — of the result.
func splitKCase(t *testing.T) (*hlo.Computation, [][]*tensor.Tensor) {
	t.Helper()
	const m, k, n = 32, 512, 128
	c := hlo.NewComputation("splitk")
	a := c.Parameter(0, "a", []int{m, k})
	b := c.Parameter(1, "b", []int{k, n})
	c.Einsum("mk,kn->mn", a, b)
	rng := rand.New(rand.NewSource(23))
	return c, [][]*tensor.Tensor{{tensor.Rand(rng, m, k)}, {tensor.Rand(rng, k, n)}}
}

// TestRunKernelSplitKPinned pins the per-run split-K plumbing: a run
// carrying an explicit factor must match the interpreter run with the
// same factor, and the off/factor-4 results must actually differ
// bitwise (otherwise the concurrency test below would be vacuous).
func TestRunKernelSplitKPinned(t *testing.T) {
	c, args := splitKCase(t)
	run := func(k int) *tensor.Tensor {
		res, err := runtime.Run(c, 1, args, runtime.Options{KernelSplitK: k})
		if err != nil {
			t.Fatalf("split-K %d: %v", k, err)
		}
		return res.Values[0]
	}
	off, four := run(1), run(4)
	if off.Equal(four) {
		t.Fatal("split-K 4 did not change the reduction bit pattern; the shapes no longer clear the gates")
	}
	for _, k := range []int{1, 4} {
		want, err := sim.InterpretSplitK(c, 1, args, k)
		if err != nil {
			t.Fatal(err)
		}
		got := run(k)
		if !got.Equal(want[0]) {
			t.Fatalf("split-K %d: runtime diverges bitwise from interpreter by %v", k, got.MaxDifference(want[0]))
		}
	}
}

// TestConcurrentSplitKIsolation is the regression test for the
// process-global split-K race: two plans tuned to different factors
// executing concurrently — while a third goroutine flips the ambient
// global the way autotune.ApplyBest on an unrelated plan would — must
// each produce results bit-identical to their single-run executions.
// On the old code, where the executing kernel consulted the mutable
// process-wide knob mid-run, the flapping global bled into both plans'
// reductions; per-run Options.KernelSplitK insulates them. Run under
// -race this also pins the absence of the data race itself.
func TestConcurrentSplitKIsolation(t *testing.T) {
	c, args := splitKCase(t)
	single := map[int]*tensor.Tensor{}
	for _, k := range []int{1, 4} {
		res, err := runtime.Run(c, 1, args, runtime.Options{KernelSplitK: k})
		if err != nil {
			t.Fatal(err)
		}
		single[k] = res.Values[0]
	}

	prev := tensor.KernelSplitK()
	defer tensor.SetKernelSplitK(prev)

	const iters = 6
	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		// The ApplyBest stand-in: keep retuning the process-global knob
		// while both plans execute.
		defer flapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tensor.SetKernelSplitK([]int{0, 2, 4, 8}[i%4])
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 2*iters)
	for _, k := range []int{1, 4} {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := runtime.Run(c, 1, args, runtime.Options{KernelSplitK: k})
				if err != nil {
					errs <- err
					return
				}
				if !res.Values[0].Equal(single[k]) {
					errs <- fmt.Errorf("split-K %d iteration %d: concurrent result diverges bitwise from single-run by %v",
						k, i, res.Values[0].MaxDifference(single[k]))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	flapper.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
