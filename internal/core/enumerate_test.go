package core

import (
	"encoding/json"
	"strings"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/topology"
)

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(data)
}

func multiGatherProgram(n int) *hlo.Computation {
	groups := topology.NewRing(n).AxisGroups(0)
	c := hlo.NewComputation("multi")
	a := c.Parameter(0, "a", []int{4, 8})
	b := c.Parameter(1, "b", []int{8, 6})
	d := c.Parameter(2, "d", []int{8, 6})
	full := c.AllGather(a, 0, groups)
	e1 := c.Einsum("mk,kn->mn", full, b)
	e2 := c.Einsum("mk,kn->mn", full, d)
	c.Add(e1, e2)
	return c
}

func singleGatherProgram(n int) *hlo.Computation {
	groups := topology.NewRing(n).AxisGroups(0)
	c := hlo.NewComputation("single")
	a := c.Parameter(0, "a", []int{4, 8})
	b := c.Parameter(1, "b", []int{8, 6})
	full := c.AllGather(a, 0, groups)
	c.Einsum("mk,kn->mn", full, b)
	return c
}

func TestEnumerateOptionsPruning(t *testing.T) {
	spec := machine.TPUv4()

	even := EnumerateOptions(spec, 4, singleGatherProgram(4))
	odd := EnumerateOptions(spec, 5, singleGatherProgram(5))

	count := func(opts []Options, pred func(Options) bool) int {
		n := 0
		for _, o := range opts {
			if pred(o) {
				n++
			}
		}
		return n
	}

	if got := count(odd, func(o Options) bool { return o.Bidirectional }); got != 0 {
		t.Errorf("odd ring enumerated %d bidirectional candidates", got)
	}
	if got := count(even, func(o Options) bool { return o.Bidirectional }); got == 0 {
		t.Error("even ring enumerated no bidirectional candidates")
	}
	if got := count(even, func(o Options) bool { return o.Rolled }); got != 1 {
		t.Errorf("enumerated %d rolled candidates, want exactly 1", got)
	}
	if got := count(even, func(o Options) bool { return o.OverlapFriendlyFusion && !o.FuseAddIntoEinsum }); got != 0 {
		t.Errorf("%d candidates set the fusion heuristic without fusion", got)
	}
	if got := count(even, func(o Options) bool { return o.UseCostModel }); got != 0 {
		t.Errorf("%d candidates left the per-site cost-model gate on", got)
	}

	// RematerializeGathers only enumerates when the program has a
	// multi-consumer gather to rewrite.
	if got := count(even, func(o Options) bool { return o.RematerializeGathers }); got != 0 {
		t.Errorf("single-consumer program enumerated %d remat candidates", got)
	}
	multi := EnumerateOptions(spec, 4, multiGatherProgram(4))
	if got := count(multi, func(o Options) bool { return o.RematerializeGathers }); got == 0 {
		t.Error("multi-consumer program enumerated no remat candidates")
	}

	// The paper's default configuration must be representable in the
	// enumerated space (cost model off — the search is the gate).
	def := DefaultOptions(spec)
	def.UseCostModel = false
	found := false
	for _, o := range even {
		if o.Fingerprint() == def.Fingerprint() {
			found = true
		}
	}
	if !found {
		t.Error("DefaultOptions configuration missing from the enumeration")
	}

	// Fingerprints are unique within one enumeration.
	seen := map[string]bool{}
	for _, o := range even {
		fp := o.Fingerprint()
		if seen[fp] {
			t.Errorf("duplicate fingerprint %s", fp)
		}
		seen[fp] = true
	}
}

// skinnyProgram has an einsum whose decomposed partials are one output
// row against a 4096-long contraction — the shape the split-K gate
// accepts.
func skinnyProgram(n int) *hlo.Computation {
	groups := topology.NewRing(n).AxisGroups(0)
	c := hlo.NewComputation("skinny")
	a := c.Parameter(0, "a", []int{n, 4096})
	b := c.Parameter(1, "b", []int{4096, 64})
	full := c.AllGather(a, 0, groups)
	c.Einsum("mk,kn->mn", full, b)
	return c
}

func TestEnumerateOptionsSplitKGating(t *testing.T) {
	spec := machine.TPUv4()
	count := func(opts []Options, pred func(Options) bool) int {
		n := 0
		for _, o := range opts {
			if pred(o) {
				n++
			}
		}
		return n
	}

	// The miniature fat-shaped programs must not enumerate the factor —
	// every value executes identically there, and doubling the space
	// for nothing would slow every tune.
	fat := EnumerateOptions(spec, 4, singleGatherProgram(4))
	if got := count(fat, func(o Options) bool { return o.KernelSplitK != 0 }); got != 0 {
		t.Errorf("fat program enumerated %d split-K candidates", got)
	}

	skinny := EnumerateOptions(spec, 4, skinnyProgram(4))
	if got := count(skinny, func(o Options) bool { return o.KernelSplitK == 2 }); got == 0 {
		t.Error("skinny program enumerated no split-K=2 candidates")
	}
	if got := count(skinny, func(o Options) bool { return o.KernelSplitK == 4 }); got == 0 {
		t.Error("skinny program enumerated no split-K=4 candidates")
	}
	if got := count(skinny, func(o Options) bool { return o.Rolled && o.KernelSplitK != 0 }); got != 0 {
		t.Errorf("%d rolled candidates carry a split-K factor", got)
	}

	// Fingerprints must separate candidates that differ only in the
	// factor — the emitted program text is identical.
	seen := map[string]bool{}
	for _, o := range skinny {
		fp := o.Fingerprint()
		if seen[fp] {
			t.Fatalf("duplicate fingerprint %s", fp)
		}
		seen[fp] = true
	}
}

func TestKnobsRoundTripKernelSplitK(t *testing.T) {
	spec := machine.TPUv4()
	o := DefaultOptions(spec)
	o.KernelSplitK = 4
	back := o.Knobs().Options(spec)
	if back.KernelSplitK != 4 {
		t.Fatalf("KernelSplitK lost in Knobs round trip: got %d", back.KernelSplitK)
	}
	// The zero factor must be invisible in the serialized form so plan
	// artifacts written before the knob existed stay byte-identical.
	o.KernelSplitK = 0
	if data := mustJSON(t, o.Knobs()); strings.Contains(data, "kernel_split_k") {
		t.Fatalf("zero split-K factor serialized: %s", data)
	}
}

func TestOptionsFingerprint(t *testing.T) {
	spec := machine.TPUv4()
	a := DefaultOptions(spec)
	b := DefaultOptions(spec)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal options fingerprint differently")
	}
	b.Unroll = false
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("unroll change invisible to fingerprint")
	}
	// The spec is priced separately (cache key), not in the knobs.
	c := DefaultOptions(machine.GPUCluster())
	if a.Fingerprint() != c.Fingerprint() {
		t.Fatal("fingerprint depends on the machine spec")
	}
	if !strings.Contains(a.Fingerprint(), "sched=bottom-up") {
		t.Fatalf("fingerprint %q does not name the scheduler", a.Fingerprint())
	}
}

func TestDefaultOptionsRejectInvalidSpec(t *testing.T) {
	bad := machine.TPUv4()
	bad.LinkBandwidth = -1
	for name, construct := range map[string]func(){
		"default":  func() { DefaultOptions(bad) },
		"baseline": func() { BaselineOptions(bad) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%sOptions accepted an invalid spec", name)
				}
			}()
			construct()
		}()
	}
}
