package obs

import (
	"math"
	"strings"
	"testing"
)

func TestAttributeHiddenAndExposed(t *testing.T) {
	spans := []Span{
		// Device 0: a transfer fully covered by one einsum, another half
		// exposed, and a blocking collective.
		{Device: 0, Track: TrackCompute, Cat: CatCompute, Name: "einsum.p0", Start: 0, Dur: 10},
		{Device: 0, Track: TrackTransfer, Cat: CatTransfer, Name: "cp.start", Start: 2, Dur: 4},
		{Device: 0, Track: TrackTransfer, Cat: CatTransfer, Name: "cp.start.2", Start: 8, Dur: 4},
		{Device: 0, Track: TrackCompute, Cat: CatCollective, Name: "all-reduce", Start: 12, Dur: 5},
		{Device: 0, Track: TrackCompute, Cat: CatStall, Name: "cp.done", Start: 17, Dur: 1},
	}
	rep := Attribute(spans)
	if len(rep.Collectives) != 3 {
		t.Fatalf("got %d collectives, want 3", len(rep.Collectives))
	}
	byName := map[string]Attribution{}
	for _, a := range rep.Collectives {
		byName[a.Name] = a
	}

	cp := byName["cp.start"]
	if cp.Wire != 4 || cp.Hidden != 4 || cp.Exposed != 0 {
		t.Fatalf("cp.start = %+v, want fully hidden", cp)
	}
	if cp.HiddenFraction() != 1 {
		t.Fatalf("cp.start hidden fraction = %v", cp.HiddenFraction())
	}
	if len(cp.Under) != 1 || cp.Under[0].Name != "einsum.p0" || cp.Under[0].Seconds != 4 {
		t.Fatalf("cp.start under = %+v", cp.Under)
	}

	cp2 := byName["cp.start.2"]
	if cp2.Hidden != 2 || cp2.Exposed != 2 {
		t.Fatalf("cp.start.2 = %+v, want half hidden", cp2)
	}

	ar := byName["all-reduce"]
	if !ar.Blocking || ar.Exposed != 5 || ar.Hidden != 0 {
		t.Fatalf("all-reduce = %+v, want blocking fully exposed", ar)
	}
	if ar.ExposedFraction() != 1 {
		t.Fatalf("all-reduce exposed fraction = %v", ar.ExposedFraction())
	}

	if rep.StallSeconds != 1 {
		t.Fatalf("stall seconds = %v, want 1", rep.StallSeconds)
	}
	wantEff := (4.0 + 2.0) / (4 + 4 + 5)
	if math.Abs(rep.OverlapEfficiency()-wantEff) > 1e-12 {
		t.Fatalf("overlap efficiency = %v, want %v", rep.OverlapEfficiency(), wantEff)
	}
}

func TestAttributeAggregatesAcrossDevices(t *testing.T) {
	spans := []Span{
		{Device: 0, Track: TrackCompute, Cat: CatCompute, Name: "einsum", Start: 0, Dur: 4},
		{Device: 0, Track: TrackTransfer, Cat: CatTransfer, Name: "cp", Start: 0, Dur: 4},
		{Device: 1, Track: TrackTransfer, Cat: CatTransfer, Name: "cp", Start: 0, Dur: 4},
	}
	rep := Attribute(spans)
	if len(rep.Collectives) != 1 {
		t.Fatalf("got %d collectives, want 1 aggregated", len(rep.Collectives))
	}
	cp := rep.Collectives[0]
	// Device 0 hid its 4s under the einsum; device 1 had no compute, so
	// its 4s are exposed.
	if cp.Wire != 8 || cp.Hidden != 4 || cp.Exposed != 4 {
		t.Fatalf("aggregated = %+v", cp)
	}
}

func TestAttributeHiddenCappedByWire(t *testing.T) {
	// Two overlapping compute spans both cover the transfer; hidden time
	// must not double-count past the wire time.
	spans := []Span{
		{Device: 0, Track: TrackCompute, Cat: CatCompute, Name: "a", Start: 0, Dur: 10},
		{Device: 0, Track: TrackCompute, Cat: CatCompute, Name: "b", Start: 0, Dur: 10},
		{Device: 0, Track: TrackTransfer, Cat: CatTransfer, Name: "cp", Start: 1, Dur: 5},
	}
	rep := Attribute(spans)
	cp := rep.Collectives[0]
	if cp.Hidden != 5 || cp.Exposed != 0 {
		t.Fatalf("hidden = %v exposed = %v, want hidden capped at wire 5", cp.Hidden, cp.Exposed)
	}
}

func TestFractionsGuardZeroWire(t *testing.T) {
	var a Attribution
	if a.HiddenFraction() != 0 || a.ExposedFraction() != 0 {
		t.Fatal("zero wire must give zero fractions, not NaN")
	}
	var r AttributionReport
	if r.OverlapEfficiency() != 0 {
		t.Fatal("empty report must give zero efficiency, not NaN")
	}
}

func TestRenderAttributionTable(t *testing.T) {
	spans := []Span{
		{Device: 0, Track: TrackCompute, Cat: CatCompute, Name: "einsum.p1", Start: 0, Dur: 8},
		{Device: 0, Track: TrackTransfer, Cat: CatTransfer, Name: "cp.start", Start: 1, Dur: 4},
		{Device: 0, Track: TrackCompute, Cat: CatCollective, Name: "all-gather", Start: 8, Dur: 2},
	}
	out := Attribute(spans).Render()
	for _, want := range []string{"cp.start", "einsum.p1", "all-gather", "(blocking)", "overlap efficiency"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
