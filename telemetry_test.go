package overlap

// Facade-level tests of the telemetry subsystem: overlap.Metrics,
// overlap.Attribute and overlap.ServeMetrics wired over a real
// decomposed execution.

import (
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"overlap/internal/obs"
	"overlap/internal/tensor"
)

// tracedRun executes one small decomposed AllGather/einsum site on the
// goroutine runtime with tracing on.
func tracedRun(t *testing.T) *RunResult {
	t.Helper()
	const n = 4
	c := NewComputation("telemetry")
	groups := NewRing(n).AxisGroups(0)
	a := c.Parameter(0, "a", []int{8, 16})
	w := c.Parameter(1, "w", []int{16, 8})
	full := c.AllGather(a, 0, groups)
	c.Einsum("mk,kn->mn", full, w)
	opts := DefaultOptions(TPUv4())
	opts.UseCostModel = false
	if _, err := Apply(c, opts); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	shards := make([]*tensor.Tensor, n)
	for d := range shards {
		shards[d] = tensor.Rand(rng, 8, 16)
	}
	args := [][]*Tensor{shards, {tensor.Rand(rng, 16, 8)}}
	res, err := Run(c, n, args, RunOptions{Spec: TPUv4(), TimeScale: 2000, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFacadeAttribution(t *testing.T) {
	res := tracedRun(t)
	rep := Attribute(res.Trace)
	if len(rep.Collectives) == 0 || rep.TotalWire <= 0 {
		t.Fatalf("attribution found no collective wire time: %+v", rep)
	}
	if eff := rep.OverlapEfficiency(); eff < 0 || eff > 1 {
		t.Fatalf("overlap efficiency %v out of [0,1]", eff)
	}
	if !strings.Contains(rep.Render(), "overlap efficiency") {
		t.Fatal("rendered report missing the efficiency line")
	}
}

func TestFacadeMetricsExport(t *testing.T) {
	tracedRun(t)
	var b strings.Builder
	if err := Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"overlap_runtime_runs_total",
		"overlap_runtime_last_step_seconds",
		"overlap_runtime_compute_span_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus export missing %s", want)
		}
	}
	if _, err := obs.LintPrometheus([]byte(text)); err != nil {
		t.Fatalf("facade export does not lint: %v", err)
	}
	if data, err := Metrics().JSON(); err != nil || !strings.Contains(string(data), `"metrics"`) {
		t.Fatalf("JSON export broken: %v", err)
	}
}

func TestFacadeServeMetrics(t *testing.T) {
	tracedRun(t)
	srv, addr, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "overlap_runtime_runs_total") {
		t.Fatalf("scrape failed: status %d body %.200s", resp.StatusCode, body)
	}
}
