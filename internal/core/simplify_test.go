package core

import (
	"math/rand"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

func TestCSEDeduplicatesIdenticalOps(t *testing.T) {
	c := hlo.NewComputation("cse")
	a := c.Parameter(0, "a", []int{4, 4})
	e1 := c.Einsum("mk,kn->mn", a, a)
	e2 := c.Einsum("mk,kn->mn", a, a) // identical
	e3 := c.Einsum("mk,kn->nm", a, a) // different spec
	c.Tuple(c.Add(e1, e2), e3)
	removed := CSE(c)
	if removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	einsums := 0
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpEinsum {
			einsums++
		}
	}
	if einsums != 2 {
		t.Fatalf("%d einsums survive, want 2", einsums)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCSEDeduplicatesGathers(t *testing.T) {
	c := hlo.NewComputation("cse_ag")
	a := c.Parameter(0, "a", []int{4, 4})
	g1 := c.AllGather(a, 0, ringGroups(2))
	g2 := c.AllGather(a, 0, ringGroups(2))
	g3 := c.AllGather(a, 1, ringGroups(2)) // different axis
	c.Tuple(c.Add(g1, g2), g3)
	if removed := CSE(c); removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
}

func TestCSEKeepsDistinctConstants(t *testing.T) {
	c := hlo.NewComputation("cse_const")
	k1 := c.Constant("k1", tensor.FromValues([]int{2}, []float64{1, 2}))
	k2 := c.Constant("k2", tensor.FromValues([]int{2}, []float64{1, 3}))
	c.Tuple(k1, k2)
	if removed := CSE(c); removed != 0 {
		t.Fatalf("removed %d distinct constants", removed)
	}
}

func TestSimplifyRules(t *testing.T) {
	c := hlo.NewComputation("simp")
	a := c.Parameter(0, "a", []int{2, 3})
	z := c.Zeros("z", []int{2, 3})
	addZero := c.Add(a, z)                                   // → a
	doubleT := c.Transpose(c.Transpose(addZero, 1, 0), 1, 0) // → a-ish
	sameReshape := c.Reshape(doubleT, 2, 3)                  // → identity
	fullSlice := c.Slice(sameReshape, []int{0, 0}, []int{2, 3})
	noPad := c.Pad(fullSlice, []int{0, 0}, []int{0, 0}, 0)
	oneCat := c.Concat(0, noPad)
	c.Tuple(oneCat)
	n := Simplify(c)
	if n == 0 {
		t.Fatal("no rewrites applied")
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	// Everything should have collapsed to {parameter, tuple} (+ maybe a
	// dead zero removed).
	for _, in := range c.Instructions() {
		switch in.Op {
		case hlo.OpParameter, hlo.OpTuple:
		default:
			t.Fatalf("instruction %s survived simplification", in)
		}
	}
}

func TestSimplifyCopyChains(t *testing.T) {
	c := hlo.NewComputation("copies")
	a := c.Parameter(0, "a", []int{4})
	cur := c.Copy(a)
	for i := 0; i < 4; i++ {
		cur = c.Copy(cur)
	}
	c.Tuple(cur)
	Simplify(c)
	copies := 0
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpCopy {
			copies++
		}
	}
	if copies != 1 {
		t.Fatalf("%d copies survive, want 1", copies)
	}
}

func TestSimplifyIsIdempotent(t *testing.T) {
	c := hlo.NewComputation("idem")
	a := c.Parameter(0, "a", []int{2, 2})
	c.Tuple(c.Add(c.Copy(c.Copy(a)), c.Zeros("z", []int{2, 2})))
	Simplify(c)
	if n := Simplify(c); n != 0 {
		t.Fatalf("second pass applied %d rewrites", n)
	}
}

// Simplify and CSE must preserve semantics on arbitrary programs.
func TestSimplifyCSEFuzzEquivalence(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		c, args := randomProgram(rng, n)
		refAll, err := sim.InterpretAll(c, n, args)
		if err != nil {
			t.Fatal(err)
		}
		root := c.Root()
		refs := make([][]*tensor.Tensor, len(root.Operands))
		for i, op := range root.Operands {
			refs[i] = refAll[op]
		}
		Simplify(c)
		CSE(c)
		if err := c.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gotAll, err := sim.InterpretAll(c, n, args)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		newRoot := c.Root()
		for i, op := range newRoot.Operands {
			for d := 0; d < n; d++ {
				if !gotAll[op][d].AllClose(refs[i][d], 1e-12) {
					t.Fatalf("seed %d output %d device %d diverged", seed, i, d)
				}
			}
		}
	}
}
